"""Legacy setup shim.

Offline environments here lack the ``wheel`` package, which PEP-517 editable
installs need; this shim keeps ``pip install -e . --no-use-pep517
--no-build-isolation`` (and plain ``pip install -e .`` on full toolchains)
working.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
