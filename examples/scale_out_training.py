#!/usr/bin/env python
"""128-node DLRM training with fused embedding + All-to-All (Fig. 15).

Builds the per-node execution DAG of one hybrid-parallel DLRM training
iteration (Table II parameters) on a 2D-torus cluster, simulates it with
and without the fused kernels, and prints the per-phase schedule — showing
where the fused kernels collapse the exposed All-to-All.

Run:  python examples/scale_out_training.py
"""

from repro.astra import run_dlrm_scaleout, sweep_node_counts


def main() -> None:
    print("DLRM training pass, baseline vs fused (paper Fig. 15)")
    print(f"{'nodes':>6}  {'baseline':>10}  {'fused':>10}  {'norm':>6}  "
          f"{'reduction':>9}")
    for res in sweep_node_counts([16, 32, 64, 128]):
        print(f"{res.num_nodes:>6}  {res.baseline_time * 1e3:>8.2f}ms  "
              f"{res.fused_time * 1e3:>8.2f}ms  {res.normalized:>6.3f}  "
              f"{res.reduction_pct:>8.1f}%")
    print("paper: ~21% reduction at 128 nodes\n")

    res = run_dlrm_scaleout(128)
    print(f"exposed All-to-All in the baseline iteration: "
          f"{100 * res.exposed_a2a_fraction():.0f}% "
          f"(motivation claim [47]: >35%)\n")

    for label, spans in (("baseline", res.baseline_spans),
                         ("fused", res.fused_spans)):
        print(f"{label} schedule (128 nodes):")
        for name, (s, e) in sorted(spans.items(), key=lambda kv: kv[1]):
            bar = " " * int(40 * s / res.baseline_time) + \
                  "#" * max(1, int(40 * (e - s) / res.baseline_time))
            print(f"  {name:<22} {s * 1e3:7.2f} -> {e * 1e3:7.2f} ms |{bar}")
        print()


if __name__ == "__main__":
    main()
