#!/usr/bin/env python
"""A tour of the topology-aware collective-algorithm library.

The paper pits its fused kernels against exactly one schedule per
collective; real communication libraries pick among ring, tree, direct
and hierarchical schedules by message size and topology.  This example
shows the menu (``repro.collectives``) answering that "which schedule
wins where" question three ways:

1. **crossover curves** — AllReduce time vs payload for every schedule
   on a 4x2 cluster, from the analytic closed forms (thousands of
   evaluations per second), with the ``auto`` selector's pick alongside;
2. **a DES spot-check** — one payload re-run under the discrete-event
   engine per schedule, confirming the closed forms track the simulated
   schedules (the full per-algorithm grid lives in
   ``tests/collectives/``);
3. **an operator-level sweep** — the registered ``xalgo_alltoall``
   sweep, comparing the fused embedding+A2A operator against each
   baseline schedule on a 2-node x 2-GPU cluster.

Run:  python examples/collective_algos.py
"""

from repro.analytic import CommModel
from repro.collectives import CommTopology, select_allreduce
from repro.experiments import run_sweep
from repro.experiments.registry import get_sweep
from repro.fused.base import OpHarness
from repro.utils.units import fmt_bytes, fmt_time

SHAPE = (4, 2)                       # 4 nodes x 2 GPUs behind one NIC
ALGOS = ("direct", "ring", "tree", "hier")
PAYLOADS = (4 << 10, 64 << 10, 1 << 20, 16 << 20)


def crossover_table():
    nodes, gpn = SHAPE
    cm = CommModel("mi210", num_nodes=nodes, gpus_per_node=gpn)
    topo = CommTopology(nodes, gpn)
    print(f"AllReduce on {nodes}x{gpn} (times per schedule, * = auto's "
          f"pick):")
    header = "payload".ljust(10) + "".join(a.rjust(12) for a in ALGOS)
    print(header)
    for nbytes in PAYLOADS:
        n_elems = nbytes // 4
        picked = select_allreduce(topo, float(nbytes))
        cells = []
        for algo in ALGOS:
            t = cm.allreduce_time(float(nbytes), n_elems, algo=algo)
            mark = "*" if algo == picked else " "
            cells.append(f"{fmt_time(t)}{mark}".rjust(12))
        print(fmt_bytes(float(nbytes)).ljust(10) + "".join(cells))
    print()


def des_spot_check(nbytes: int = 64 << 10):
    nodes, gpn = SHAPE
    n_elems = nbytes // 4
    cm = CommModel("mi210", num_nodes=nodes, gpus_per_node=gpn)
    print(f"DES spot-check at {fmt_bytes(float(nbytes))}:")
    for algo in ALGOS:
        h = OpHarness(num_nodes=nodes, gpus_per_node=gpn)
        start = h.sim.now
        h.sim.run_process(h.comm.collectives.all_reduce_bytes(
            float(nbytes), n_elems, algorithm=algo))
        sim_t = h.sim.now - start
        ana_t = cm.allreduce_time(float(nbytes), n_elems, algo=algo)
        err = abs(ana_t - sim_t) / sim_t
        print(f"  {algo:<8} des {fmt_time(sim_t):>10}   analytic "
              f"{fmt_time(ana_t):>10}   err {100 * err:.4f}%")
    print()


def operator_sweep():
    print("Registered xalgo_alltoall sweep (fused embedding+A2A vs each "
          "baseline schedule, 2x2):")
    run = run_sweep(get_sweep("xalgo_alltoall"), store=None)
    fig = run.figure()
    for row in fig.rows:
        print(f"  {row.label:<22} fused {fmt_time(row.fused_time):>10}  "
              f"baseline {fmt_time(row.baseline_time):>10}  "
              f"normalized {row.fused_time / row.baseline_time:.3f}")
    print("  baseline_us_by_algo:", fig.extra["baseline_us_by_algo"])
    print("  best_algo_by_point: ", fig.extra["best_algo_by_point"])


if __name__ == "__main__":
    crossover_table()
    des_spot_check()
    operator_sweep()
