#!/usr/bin/env python
"""Quickstart: fuse an embedding + All-to-All and beat the baseline.

Runs the paper's flagship operator two ways on a simulated 2-node system —
as separate pooling kernels + an RCCL-like All-to-All (baseline), and as
one persistent fused kernel with GPU-initiated communication — verifies the
outputs are numerically identical, and reports the speedup.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.fused import (
    BaselineEmbeddingAllToAll,
    EmbeddingA2AConfig,
    FusedEmbeddingAllToAll,
    OpHarness,
)


def main() -> None:
    # A small functional configuration: 2 nodes x 1 GPU, 8 tables per GPU.
    cfg = EmbeddingA2AConfig(
        global_batch=128,
        tables_per_gpu=8,
        dim=32,
        pooling=10,
        rows_per_table=200,
        slice_vectors=16,
        functional=True,       # carry real tensors so we can verify
    )

    print("fused embedding + All-to-All (paper Section III-A)")
    print(f"  config: batch={cfg.global_batch}, tables/GPU="
          f"{cfg.tables_per_gpu}, dim={cfg.dim}, 2 nodes over InfiniBand")

    # Each run gets a fresh simulated cluster (clock starts at zero).
    fused_h = OpHarness(num_nodes=2, gpus_per_node=1)
    fused = fused_h.run(FusedEmbeddingAllToAll(fused_h, cfg))

    base_h = OpHarness(num_nodes=2, gpus_per_node=1)
    base = base_h.run(BaselineEmbeddingAllToAll(base_h, cfg))

    # Outputs: per-rank (local_batch, world*tables, dim) A2A results.
    for rank in range(2):
        np.testing.assert_allclose(fused.outputs[rank], base.outputs[rank],
                                   rtol=1e-5)
    print("  outputs: fused == baseline (verified)")

    print(f"  baseline: {base.elapsed * 1e6:9.1f} us "
          f"(pooling kernels, then All-to-All)")
    print(f"  fused:    {fused.elapsed * 1e6:9.1f} us "
          f"(single persistent kernel, overlapped)")
    print(f"  normalized execution time: "
          f"{fused.elapsed / base.elapsed:.3f} "
          f"({100 * (1 - fused.elapsed / base.elapsed):.1f}% faster)")

    # At paper scale the gap widens — rerun timing-only.
    big = EmbeddingA2AConfig(global_batch=1024, tables_per_gpu=256,
                             functional=False)
    fh = OpHarness(num_nodes=2, gpus_per_node=1)
    f = fh.run(FusedEmbeddingAllToAll(fh, big))
    bh = OpHarness(num_nodes=2, gpus_per_node=1)
    b = bh.run(BaselineEmbeddingAllToAll(bh, big))
    print(f"  at paper scale (1024|256): normalized "
          f"{f.elapsed / b.elapsed:.3f}  (paper Fig. 12 average: 0.69)")


if __name__ == "__main__":
    main()
