#!/usr/bin/env python
"""Sweep a fused operator across hardware platforms.

Shows the platform layer end-to-end:

1. the **catalog** — calibrated ``mi210`` plus plausible ``mi250x`` /
   ``mi300x`` / ``h100`` profiles, each with *derived* kernel resource
   footprints (the MI210 derivation reproduces the paper's 12.5% fused
   occupancy loss);
2. a **custom device** via :func:`repro.hw.generic` — any GpuSpec field
   is a knob;
3. running one operator on every platform through
   :class:`~repro.fused.base.OpHarness`'s ``platform=`` argument;
4. the registered cross-hardware sweeps (``python -m repro run
   xhw_embedding_a2a`` etc.) that do the same through the orchestrator,
   with content-addressed caching.

Run:  python examples/cross_hardware.py
"""

from repro.fused.base import OpHarness
from repro.fused.gemv_allreduce import (
    BaselineGemvAllReduce,
    FusedGemvAllReduce,
    GemvAllReduceConfig,
)
from repro.hw import generic, get_platform, list_platforms


def speedup_on(platform, cfg) -> float:
    """Baseline/fused time ratio for one operator on one platform."""
    h1 = OpHarness(num_nodes=1, gpus_per_node=4, platform=platform)
    fused = h1.run(FusedGemvAllReduce(h1, cfg)).elapsed
    h2 = OpHarness(num_nodes=1, gpus_per_node=4, platform=platform)
    base = h2.run(BaselineGemvAllReduce(h2, cfg)).elapsed
    return base / fused


if __name__ == "__main__":
    cfg = GemvAllReduceConfig(m=16384, n_per_gpu=4096, functional=False)

    print("GEMV+AllReduce 16k x 4k/GPU, fused-vs-baseline speedup:\n")
    for p in list_platforms():
        d = p.describe()
        print(f"  {p.name:<8} ({d['baseline_vgprs']}->{d['fused_vgprs']} "
              f"VGPRs, fused occupancy {100 * d['fused_occupancy']:.1f}%): "
              f"{speedup_on(p, cfg):.3f}x")

    # A what-if device: the calibrated MI210 with doubled HBM bandwidth.
    what_if = generic("mi210-2xhbm",
                      hbm_bandwidth=2 * get_platform("mi210").gpu.hbm_bandwidth)
    print(f"\n  {what_if.name}: {speedup_on(what_if, cfg):.3f}x "
          f"(custom generic() device)")
