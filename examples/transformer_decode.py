#!/usr/bin/env python
"""Transformer decode step with the fused GEMV + AllReduce operator.

Tensor-parallel feed-forward block (Megatron-style, paper Fig. 3): the
second linear layer's partial outputs are summed with an AllReduce that the
paper reports taking up to 46% of decode latency.  This example checks the
sharded block against the unsharded math, then times the fused operator
against the bulk-synchronous baseline on transformer-scale shapes via the
framework operator API (``torch.gemvAllReduceOp()``-style).

Run:  python examples/transformer_decode.py
"""

import numpy as np

from repro.frameworks.minitorch import gemv_all_reduce_op
from repro.fused import GemvAllReduceConfig
from repro.models import TensorParallelMlp, TransformerMlpConfig, dense_features


def main() -> None:
    # -- functional check of the tensor-parallel block ----------------------
    cfg = TransformerMlpConfig(hidden=128, ffn_multiplier=4,
                               tensor_parallel=4)
    mlp = TensorParallelMlp.create(cfg, rng=np.random.default_rng(7))
    x = dense_features(1, cfg.hidden, seed=8)  # one decode token
    full_w0 = np.concatenate(mlp.w0_shards, axis=1)
    full_w1 = np.concatenate(mlp.w1_shards, axis=0)
    from repro.ops import gelu

    reference = gelu(x @ full_w0) @ full_w1
    np.testing.assert_allclose(mlp(x), reference, rtol=1e-4, atol=1e-5)
    print(f"tensor-parallel MLP ({cfg.tensor_parallel} ranks) == unsharded "
          f"reference (verified)")

    # -- fused GEMV + AllReduce, small functional run --------------------------
    small = GemvAllReduceConfig(m=256, n_per_gpu=64)
    outs_fused, t_fused = gemv_all_reduce_op(small)
    outs_base, t_base = gemv_all_reduce_op(small, fused=False)
    np.testing.assert_allclose(outs_fused[0].numpy(), outs_base[0].numpy(),
                               rtol=1e-4)
    print("fused GEMV+AllReduce output == baseline output (verified)")

    # -- paper-scale decode shapes, timing only ------------------------------
    print("\ndecode-phase timing (4 GPUs, fp16), normalized to baseline:")
    print(f"{'M | N_total':>14}  {'fused':>10}  {'baseline':>10}  {'norm':>6}")
    for m in (8192, 16384, 32768, 65536):
        n_total = 16384
        cfg_t = GemvAllReduceConfig(m=m, n_per_gpu=n_total // 4,
                                    functional=False)
        _, tf = gemv_all_reduce_op(cfg_t)
        _, tb = gemv_all_reduce_op(cfg_t, fused=False)
        print(f"{cfg_t.label:>14}  {tf * 1e6:>8.1f}us  {tb * 1e6:>8.1f}us"
              f"  {tf / tb:>6.3f}")
    print("paper Fig. 9: average 0.87, down to 0.78; least benefit at 64k")


if __name__ == "__main__":
    main()
