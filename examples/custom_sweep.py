#!/usr/bin/env python
"""Define and run a custom experiment sweep end-to-end.

Shows the full orchestration surface on a user-defined scenario grid:

1. a **custom runner** — any function returning JSON-able metrics can be a
   scenario (here: fused-vs-baseline speedup across interconnect scaling);
2. a **declarative grid** over operator configs via ``grid_params``;
3. **cached, parallel execution** — the second ``run_sweep`` call serves
   every scenario from ``.repro-cache`` records without simulating;
4. the **baseline-comparison API** used for regression detection.

The same sweep is also reachable from the command line once registered:

    python examples/custom_sweep.py            # this script
    python -m repro list                       # the built-in sweeps

Because the parallel runner spawns worker processes that re-import this
file, the module level must stay import-safe: definitions (runners,
sweeps) at the top, execution strictly under ``if __name__ == "__main__"``.

Run:  python examples/custom_sweep.py
"""

import tempfile

from repro.experiments import (
    ResultStore,
    SweepSpec,
    compare_to_baseline,
    grid_params,
    register_sweep,
    report_json,
    run_sweep,
    runner,
    scenario,
)
from repro.fused import (
    BaselineEmbeddingAllToAll,
    EmbeddingA2AConfig,
    FusedEmbeddingAllToAll,
    OpHarness,
)


@runner("example_batch_vs_slice")
def batch_vs_slice(params):
    """One fused/baseline pair; the grid explores batch x slice size."""
    cfg = EmbeddingA2AConfig(global_batch=params["global_batch"],
                             tables_per_gpu=params["tables_per_gpu"],
                             slice_vectors=params["slice_vectors"],
                             functional=False)
    h1 = OpHarness(num_nodes=2, gpus_per_node=1)
    fused = h1.run(FusedEmbeddingAllToAll(h1, cfg))
    h2 = OpHarness(num_nodes=2, gpus_per_node=1)
    base = h2.run(BaselineEmbeddingAllToAll(h2, cfg))
    return {"fused_time": fused.elapsed, "baseline_time": base.elapsed}


#: The declarative grid: 2 batches x 2 slice sizes, tables held constant.
GRID = grid_params(global_batch=(256, 512), slice_vectors=(16, 32),
                   tables_per_gpu=32)

CUSTOM_SWEEP = register_sweep(SweepSpec.make(
    "example-batch-vs-slice",
    "Example",
    [scenario("example_batch_vs_slice",
              label=f"b={p['global_batch']}|sv={p['slice_vectors']}", **p)
     for p in GRID],
    assembler="rows",
    figure="Example",
    description="fused vs baseline across batch and slice granularity"))


def main() -> None:
    with tempfile.TemporaryDirectory() as cache_dir:
        store = ResultStore(cache_dir)   # real runs would use .repro-cache

        # First run simulates every scenario (2 workers, sharded).
        first = run_sweep(CUSTOM_SWEEP, store=store, workers=2)
        print(first.figure().render())
        print(f"\nfirst run:  {first.executed} executed, "
              f"{first.cache_hits} cached")

        # Second run: every record is served from the store.
        second = run_sweep(CUSTOM_SWEEP, store=store)
        print(f"second run: {second.executed} executed, "
              f"{second.cache_hits} cached")
        assert second.executed == 0
        assert report_json(second.report()) == report_json(first.report())

        # Regression detection: diff against a stored baseline report.
        diff = compare_to_baseline(second, first.report())
        print(f"baseline comparison: "
              f"{'match' if diff.ok else diff.render()}")


if __name__ == "__main__":
    main()
