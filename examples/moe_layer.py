#!/usr/bin/env python
"""Mixture-of-Experts layer with the fused GEMM + All-to-All combine.

Top-2 gating routes tokens to 4 expert GPUs; after the expert GEMMs, the
combine All-to-All returns outputs to the tokens' source ranks — the
collective the paper fuses using its Triton communication extension.  This
example shows the gating statistics, verifies the expert-parallel dataflow,
and times the Triton-written fused operator against the baseline.

Run:  python examples/moe_layer.py
"""

import numpy as np

from repro.frameworks.minitorch import gemm_all_to_all_op
from repro.fused import GemmA2AConfig
from repro.models import MoeLayer, MoeLayerConfig, token_batch


def main() -> None:
    cfg = MoeLayerConfig(tokens=256, model_dim=64, ffn_dim=96,
                         num_experts=4, top_k=2)
    layer = MoeLayer.create(cfg, rng=np.random.default_rng(3))
    x, _pos = token_batch(cfg.tokens, cfg.model_dim, seed=4)

    counts = layer.dispatch_counts(x)
    print(f"MoE layer: {cfg.num_experts} experts, top-{cfg.top_k} routing")
    print(f"  dispatch counts per expert: {counts.tolist()} "
          f"(total = tokens x top_k = {cfg.tokens * cfg.top_k})")
    out = layer(x)
    print(f"  functional forward: {x.shape} -> {out.shape}")

    # -- fused combine GEMM + All-to-All (small, functional) ---------------------
    small = layer.gemm_config(tokens_per_expert=512, functional=True)
    small = GemmA2AConfig(tokens=512, model_dim=64, ffn_dim=128,
                          block_m=64, block_n=128, functional=True)
    outs_fused, t_fused = gemm_all_to_all_op(small)
    outs_base, t_base = gemm_all_to_all_op(small, fused=False)
    np.testing.assert_allclose(outs_fused[0].numpy(), outs_base[0].numpy(),
                               rtol=1e-4)
    print("  fused GEMM+A2A output == baseline output (verified)")

    # -- paper-scale MoE shapes, timing only ------------------------------------
    print("\nMoE combine timing (4 GPUs, fp16), normalized to baseline:")
    print(f"{'tokens|model|ffn':>18}  {'fused':>9}  {'baseline':>9}  "
          f"{'norm':>6}")
    for tokens, ffn in ((2048, 8192), (4096, 8192), (4096, 14336)):
        cfg_t = GemmA2AConfig(tokens=tokens, model_dim=4096, ffn_dim=ffn,
                              functional=False)
        _, tf = gemm_all_to_all_op(cfg_t)
        _, tb = gemm_all_to_all_op(cfg_t, fused=False)
        print(f"{cfg_t.label:>18}  {tf * 1e3:>7.2f}ms  {tb * 1e3:>7.2f}ms"
              f"  {tf / tb:>6.3f}")
    print("paper Fig. 10: average 0.88, down to 0.80 (GEMM-dominated)")


if __name__ == "__main__":
    main()
