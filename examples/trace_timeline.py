#!/usr/bin/env python
"""Observability tour: capture a fused-kernel run, export it for Perfetto,
and read the run-metrics registry.

Three stops:

1. `TraceCapture` — profile harness-driven code that never heard of
   tracing: every simulated cluster built inside the context contributes
   a labelled run.
2. `chrome_trace_json` — the captured timeline as Chrome trace-event
   JSON; drop `trace_timeline.json` onto https://ui.perfetto.dev (or
   chrome://tracing) to fly through the persistent-WG schedule of the
   paper's Fig. 11.
3. `enable_metrics` — counters/gauges/timers from the engine, kernels,
   and orchestrator, with a guarantee: the simulated results are
   byte-identical with observability on or off.

Run:  python examples/trace_timeline.py
"""

from repro.fused import EmbeddingA2AConfig, FusedEmbeddingAllToAll, OpHarness
from repro.obs import TraceCapture, enable_metrics, write_chrome_trace
from repro.obs.metrics import reset_metrics


def run_op(label: str) -> float:
    cfg = EmbeddingA2AConfig(global_batch=256, tables_per_gpu=16,
                             functional=False, slice_vectors=8,
                             tasks_per_slice=8)
    h = OpHarness(num_nodes=2, gpus_per_node=1)
    return h.run(FusedEmbeddingAllToAll(h, cfg)).elapsed


def main() -> None:
    # -- 1. capture a run without touching the operator code ------------
    with TraceCapture() as cap:
        cap.begin_scenario("fused_emb_a2a 256|16")
        elapsed = run_op("fused")
    print(f"captured {cap.n_events} trace events from "
          f"{len(cap.runs)} simulated cluster(s); "
          f"simulated time {elapsed * 1e6:.1f} us")

    # -- 2. export for Perfetto / chrome://tracing ----------------------
    out = write_chrome_trace("trace_timeline.json", cap.runs)
    print(f"wrote {out} — open it at https://ui.perfetto.dev")
    trace = cap.runs[0][1]
    wg_spans = trace.spans("wg")
    puts = trace.filter(kind="put_issue")
    print(f"  {len(wg_spans)} WG spans, {len(puts)} GPU-initiated PUTs")

    # -- 3. run metrics -------------------------------------------------
    m = enable_metrics()
    run_op("again")            # same op, now with the registry live
    print("\nrun metrics (the same run, counted):")
    print(m.render())
    reset_metrics()            # back to the zero-cost NULL_METRICS path


if __name__ == "__main__":
    main()
