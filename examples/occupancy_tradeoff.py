#!/usr/bin/env python
"""Occupancy and scheduling trade-offs of fused kernels (Figs. 13 & 14).

Persistent fused kernels choose their own grid size, trading parallelism
against memory contention, and choose the order in which logical WGs run,
trading node skew against implementation simplicity.  This example sweeps
both knobs the way the paper's Section IV-C does.

Run:  python examples/occupancy_tradeoff.py
"""

from repro.fused import EmbeddingA2AConfig, FusedEmbeddingAllToAll, OpHarness


def occupancy_sweep() -> None:
    print("occupancy sweep (fused embedding+A2A, 1024|256, 2 nodes):")
    print(f"{'occupancy':>10}  {'time':>10}  {'vs 25%':>7}")
    times = {}
    for frac in (0.25, 0.375, 0.5, 0.625, 0.75, 0.875):
        cfg = EmbeddingA2AConfig(global_batch=1024, tables_per_gpu=256,
                                 functional=False,
                                 occupancy_of_baseline=frac)
        h = OpHarness(num_nodes=2, gpus_per_node=1)
        times[frac] = h.run(FusedEmbeddingAllToAll(h, cfg)).elapsed
        print(f"{100 * frac:>9.1f}%  {times[frac] * 1e3:>8.2f}ms  "
              f"{times[frac] / times[0.25]:>7.3f}")
    print(f"  25% -> 75%: {100 * (1 - times[0.75] / times[0.25]):.1f}% "
          f"faster (paper: 46%)")
    print(f"  75% -> 87.5%: {100 * (times[0.875] / times[0.75] - 1):.1f}% "
          f"slower (paper: 25%) — memory contention beats parallelism")


def scheduling_skew() -> None:
    print("\nscheduling policy vs node completion skew (2048|64, 2 nodes):")
    for sched in ("oblivious", "comm_aware"):
        cfg = EmbeddingA2AConfig(global_batch=2048, tables_per_gpu=64,
                                 functional=False, scheduler=sched)
        h = OpHarness(num_nodes=2, gpus_per_node=1)
        res = h.run(FusedEmbeddingAllToAll(h, cfg))
        ends = res.stats["rank_end_times"]
        skew = 100 * abs(ends[0] - ends[1]) / max(ends.values())
        print(f"  {sched:<11} node0={ends[0] * 1e3:7.2f}ms "
              f"node1={ends[1] * 1e3:7.2f}ms skew={skew:.2f}%")
    print("paper Fig. 14: ~7% skew oblivious, ~1% comm-aware")


if __name__ == "__main__":
    occupancy_sweep()
    scheduling_skew()
