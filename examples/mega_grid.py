#!/usr/bin/env python
"""A million-point design-space grid through the mega-batch engine.

The scalar analytic backend answers tens of thousands of scenarios per
second — plenty for the registered ~2,600-point ``dse_fused_frontier``
sweep, hopeless for a full factorial over seven axes.  The vectorized
mega-batch engine (``repro.analytic.batch``) evaluates the same closed
forms over NumPy scenario columns, bit-identical to the scalar oracle,
at over a million scenarios per second.  This example:

1. **evaluates a 1,036,800-point grid** (platform x topology x batch x
   tables x slice size x occupancy split x collective schedule) in one
   ``ScenarioBatch`` call;
2. **extracts per-platform Pareto frontiers** of (fused latency,
   fused-over-baseline speedup) with the O(n log n) ``pareto_mask``;
3. **refines the hardware itself**: ``explorer.refine`` searches the
   continuous ``generic()`` GPU geometry (CU count x HBM bandwidth) for
   undominated latency/area trade-offs on a fixed workload;
4. **spot-checks 3 frontier points under the DES** — the event-driven
   engine the closed forms abstract — to show the frontier is not an
   artifact of the analytic shortcuts.

Run:  python examples/mega_grid.py
"""

import time

import numpy as np

from repro.analytic import predict_embedding_a2a, refine
from repro.analytic.batch import ScenarioBatch
from repro.analytic.explorer import pareto_mask
from repro.experiments import run_scenario, scenario
from repro.hw.platform import generic

AXES = {
    "platform": ["mi210", "mi250x", "mi300x", "h100"],
    "num_nodes": [1, 2],
    "gpus_per_node": [1, 2, 4],
    "global_batch": [512 * k for k in range(1, 41)],
    "tables_per_gpu": [8, 12, 16, 20, 24, 28, 32, 40, 48, 56, 64, 80, 96,
                       112, 128, 160, 192, 224, 256, 288, 320, 352, 384,
                       416, 448, 480, 512],
    "slice_vectors": [4, 8, 16, 32, 64],
    "occupancy_of_baseline": [0.2, 0.4, 0.6, 0.75],
    "algo": [None, "pairwise"],
}


def axis_index_columns(axes):
    """Per-row axis value *indices* for a grid in product order (last axis
    fastest) — cheap even at a million rows."""
    names = list(axes)
    lengths = [len(axes[k]) for k in names]
    n = int(np.prod(lengths, dtype=np.int64))
    cols, inner = {}, n
    for k, ln in zip(names, lengths):
        inner //= ln
        outer = n // (ln * inner)
        cols[k] = np.tile(np.repeat(np.arange(ln), inner), outer)
    return n, cols


def point_params(axes, row):
    """The scenario parameters of one grid row (for the DES spot-check)."""
    names = list(axes)
    lengths = [len(axes[k]) for k in names]
    out, rem = {}, row
    for k, ln in zip(reversed(names), reversed(lengths)):
        out[k] = axes[k][rem % ln]
        rem //= ln
    return {k: out[k] for k in names}


def mega_grid():
    n = 1
    for v in AXES.values():
        n *= len(v)
    print(f"evaluating {n:,} scenarios ...")
    t0 = time.perf_counter()
    batch = ScenarioBatch.from_grid("embedding_a2a_pair", AXES)
    out = batch.evaluate()
    dt = time.perf_counter() - t0
    print(f"  {n:,} points in {dt:.2f}s -> {n / dt:,.0f} scenarios/s")
    return out


def platform_frontiers(out):
    fused, base = out["fused_time"], out["baseline_time"]
    speedup = base / fused
    objs = np.stack([fused, -speedup], axis=1)
    _, cols = axis_index_columns(AXES)
    plat_idx = cols["platform"]
    frontier_rows = []
    print("\nper-platform Pareto frontiers (fused latency vs speedup):")
    for pi, name in enumerate(AXES["platform"]):
        rows = np.flatnonzero(plat_idx == pi)
        front = rows[pareto_mask(objs[rows])]
        frontier_rows.extend(int(r) for r in front)
        best = front[np.argmax(speedup[front])]
        print(f"  {name:<8} {len(front):>3} undominated of {len(rows):,}   "
              f"best {speedup[best]:.2f}x at "
              f"{fused[best] * 1e6:,.0f}us fused")
    return frontier_rows, fused, speedup


def geometry_refine():
    """Search the continuous GPU geometry for a fixed workload: minimize
    (fused latency, CU count) — how small a device still wins big?"""
    def objective(cols):
        objs = np.empty((len(cols["num_cus"]), 2))
        for i, (cus, tbps) in enumerate(zip(cols["num_cus"],
                                            cols["hbm_tbps"])):
            plat = generic("probe", num_cus=int(round(cus)),
                           hbm_bandwidth=float(tbps) * 1e12)
            rec = predict_embedding_a2a(
                num_nodes=2, gpus_per_node=1, global_batch=4096,
                tables_per_gpu=64, platform=plat)
            objs[i] = (rec["fused_time"], round(cus))
        return objs

    front = refine(objective, {"num_cus": (64.0, 304.0),
                               "hbm_tbps": (1.2, 3.5)},
                   rounds=3, grid=5, max_regions=4)
    print("\ngeometry refinement (4096|64 on 2x1, minimize latency + CUs):")
    seen, shown = set(), 0
    # Successive rounds revisit lattice corners; show distinct designs.
    for point, (fused_t, cus) in front:
        key = (int(cus), round(point["hbm_tbps"], 2))
        if key in seen:
            continue
        seen.add(key)
        print(f"  {int(cus):>3} CUs @ {point['hbm_tbps']:.2f} TB/s "
              f"-> {fused_t * 1e6:,.0f}us fused")
        shown += 1
        if shown == 6:
            break
    return front


def des_spot_check(frontier_rows, fused):
    """Re-run three frontier points under the discrete-event engine."""
    # Pick the three cheapest-to-simulate frontier points.
    costed = sorted(frontier_rows,
                    key=lambda r: point_params(AXES, r)["global_batch"]
                    * point_params(AXES, r)["tables_per_gpu"])
    print("\nDES spot-check of 3 frontier points (analytic vs simulated):")
    for row in costed[:3]:
        p = point_params(AXES, row)
        if p["algo"] is None:
            p.pop("algo")
        spec = scenario("embedding_a2a_pair", **p)
        sim = run_scenario(spec)
        ratio = fused[row] / sim["fused_time"]
        print(f"  {p['platform']:<8} {p['num_nodes']}x{p['gpus_per_node']} "
              f"{p['global_batch']}|{p['tables_per_gpu']}: "
              f"analytic {fused[row] * 1e6:,.0f}us vs "
              f"DES {sim['fused_time'] * 1e6:,.0f}us "
              f"(ratio {ratio:.2f})")


def main():
    out = mega_grid()
    frontier_rows, fused, _speedup = platform_frontiers(out)
    geometry_refine()
    des_spot_check(frontier_rows, fused)


if __name__ == "__main__":
    main()
