#!/usr/bin/env python
"""DLRM forward pass: single-device reference vs distributed fused pipeline.

Builds a complete DLRM (bottom MLP, embedding tables, interaction, top MLP),
runs it on one device as ground truth, then executes the embedding +
All-to-All stage across a simulated 4-GPU node with the fused operator and
plugs its output into interaction + top MLP — demonstrating that the fused
operator's output layout ``{local batch, num_tables x dim}`` feeds the
interaction operator directly, as the paper describes.

Run:  python examples/dlrm_inference.py
"""

import numpy as np

from repro.fused import EmbeddingA2AConfig, FusedEmbeddingAllToAll, OpHarness
from repro.models import Dlrm, categorical_indices, dense_features
from repro.ops import interaction, sigmoid

WORLD = 4
TABLES_PER_GPU = 4
NUM_TABLES = WORLD * TABLES_PER_GPU
DIM = 16
POOLING = 6
ROWS = 100
BATCH = 64


def main() -> None:
    rng = np.random.default_rng(42)
    model = Dlrm.create(dense_dim=13, embedding_dim=DIM,
                        num_tables=NUM_TABLES, rows_per_table=ROWS,
                        bottom_sizes=[64], top_sizes=[64, 32], rng=rng)
    dense = dense_features(BATCH, 13, seed=1)
    indices = categorical_indices(BATCH, NUM_TABLES, POOLING, ROWS, seed=2)

    # -- ground truth on one device ------------------------------------------
    reference = model(dense, indices)
    print(f"single-device DLRM forward: batch={BATCH}, "
          f"{NUM_TABLES} tables, dim={DIM}")

    # -- distributed embedding + All-to-All stage ----------------------------
    # Tables are model-parallel: GPU r owns tables [r*T, (r+1)*T).
    cfg = EmbeddingA2AConfig(global_batch=BATCH,
                             tables_per_gpu=TABLES_PER_GPU, dim=DIM,
                             pooling=POOLING, rows_per_table=ROWS,
                             slice_vectors=8, functional=True)
    harness = OpHarness(num_nodes=1, gpus_per_node=WORLD)
    op = FusedEmbeddingAllToAll(harness, cfg)
    # Install the model's real tables and inputs in place of the random ones.
    for r in range(WORLD):
        for t in range(TABLES_PER_GPU):
            op.tables[r][t] = model.tables[r * TABLES_PER_GPU + t]
            op.indices[r][t] = indices[r * TABLES_PER_GPU + t]
    result = harness.run(op)
    print(f"fused embedding+A2A across {WORLD} GPUs: "
          f"{result.elapsed * 1e6:.1f} us simulated")

    # -- data-parallel interaction + top MLP on each rank's batch shard ----------
    local = BATCH // WORLD
    bottom_out = model.bottom_mlp(dense)
    predictions = np.empty(BATCH, np.float32)
    for rank in range(WORLD):
        shard = slice(rank * local, (rank + 1) * local)
        pooled = result.outputs[rank]            # (local, num_tables, dim)
        feats = interaction(bottom_out[shard], pooled)
        predictions[shard] = sigmoid(model.top_mlp(feats)[:, 0])

    np.testing.assert_allclose(predictions, reference, rtol=1e-4, atol=1e-6)
    print("distributed predictions == single-device reference (verified)")
    print(f"sample predictions: {np.round(predictions[:5], 4)}")


if __name__ == "__main__":
    main()
