#!/usr/bin/env python
"""Design-space exploration with the analytic backend.

The discrete-event simulator answers roughly one scenario per second; the
closed-form analytic backend answers tens of thousands.  That turns
"which configuration should I run?" from a budgeting exercise into a
single cheap sweep:

1. **run a big grid analytically** — hundreds of (platform, batch,
   tables, slice size, occupancy, topology) points in well under a
   second;
2. **validate a subsample against the DES** — re-run a handful of the
   same scenarios under ``backend="sim"`` and check the relative error
   (the full contract is enforced by ``python -m repro validate``);
3. **print the Pareto frontier** — per platform, the configurations no
   other config beats on both fused latency and fused-over-baseline
   speedup.

Run:  python examples/design_space.py
"""

from repro.experiments import run_scenario, run_sweep
from repro.experiments.figures import dse_fused_frontier_sweep

#: A few hundred points: a custom slice of the registered
#: ``dse_fused_frontier`` axes (the full grid is ~1,300 scenarios and
#: barely slower — tune freely).
SWEEP = dse_fused_frontier_sweep(
    name="example-dse",
    platforms=("mi210", "mi300x", "h100"),
    batches=(512, 1024, 2048, 4096),
    tables=(16, 64, 256),
    slices=(16, 32, 64),
    occupancies=(0.25, 0.5, 0.75),
    topologies=((2, 1),),
)

#: How many grid points to spot-check against the simulator.
VALIDATE_EVERY = 108


def main():
    import time

    t0 = time.perf_counter()
    run = run_sweep(SWEEP, store=None)
    analytic_wall = time.perf_counter() - t0
    fig = run.figure()
    print(f"analytic grid: {len(SWEEP)} scenarios in {analytic_wall:.2f}s "
          f"({len(SWEEP) / analytic_wall:,.0f} scenarios/s)")

    # -- validate a subsample against the DES ---------------------------
    print("\nDES spot-check (same scenarios, backend=sim):")
    worst = 0.0
    for outcome in run.outcomes[::VALIDATE_EVERY]:
        t0 = time.perf_counter()
        sim = run_scenario(outcome.spec.with_backend("sim"))
        des_wall = time.perf_counter() - t0
        ana = outcome.result
        sim_norm = sim["fused_time"] / sim["baseline_time"]
        ana_norm = ana["fused_time"] / ana["baseline_time"]
        err = abs(ana_norm - sim_norm) / sim_norm
        worst = max(worst, err)
        print(f"  {outcome.spec.label:<34} sim {sim_norm:.3f} "
              f"analytic {ana_norm:.3f}  err {100 * err:.2f}%  "
              f"(DES cost: {des_wall:.2f}s/scenario)")
    print(f"worst normalized-time error in subsample: {100 * worst:.2f}%")

    # -- the frontier ---------------------------------------------------
    print(f"\nPareto frontier ({fig.extra['n_frontier']} of "
          f"{fig.extra['n_scenarios']} configurations; per platform, "
          f"minimize latency / maximize speedup):")
    for point in fig.extra["frontier"]:
        print(f"  {point['label']:<34} {point['fused_us']:>10.1f} us  "
              f"{point['speedup']:.2f}x")
    print(f"\nbest speedup overall: {fig.extra['best_speedup']}")
    print(f"globally undominated: {', '.join(fig.extra['global_frontier'])}")


if __name__ == "__main__":
    main()
