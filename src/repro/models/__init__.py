"""Workload models: DLRM, tensor-parallel Transformer MLP, MoE."""

from .configs import (
    TABLE2_DLRM,
    TABLE2_TORUS,
    DlrmModelConfig,
    MoeLayerConfig,
    TorusNetworkConfig,
    TransformerMlpConfig,
)
from .datagen import categorical_indices, dense_features, token_batch
from .dlrm import Dlrm
from .moe import MoeLayer, top_k_gating
from .transformer import TensorParallelMlp

__all__ = [
    "Dlrm",
    "DlrmModelConfig",
    "MoeLayer",
    "MoeLayerConfig",
    "TABLE2_DLRM",
    "TABLE2_TORUS",
    "TensorParallelMlp",
    "TorusNetworkConfig",
    "TransformerMlpConfig",
    "categorical_indices",
    "dense_features",
    "token_batch",
    "top_k_gating",
]
