"""Megatron-style tensor-parallel transformer feed-forward block.

The paper's Fig. 3 workload: ``W0`` is partitioned column-wise, ``W1``
row-wise; each rank computes ``gelu(x @ W0_r) @ W1_r`` and an AllReduce
sums the partial outputs.  The decode (token) phase processes one token, so
the second layer is a GEMV — the operand of the fused GEMV + AllReduce
operator.  :meth:`TensorParallelMlp.gemv_config` maps the block onto that
operator's workload description.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..fused.gemv_allreduce import GemvAllReduceConfig
from ..ops.activation import gelu
from .configs import TransformerMlpConfig

__all__ = ["TensorParallelMlp"]


@dataclass
class TensorParallelMlp:
    """One FFN block sharded across ``world`` tensor-parallel ranks.

    When :meth:`create` owns the generator (no ``rng`` passed), weight
    shards are materialized lazily on first access: callers that only map
    the block onto a simulated workload (:meth:`gemv_config`) never pay for
    drawing paper-scale weight matrices — at ``hidden=8192`` that is half a
    billion gaussians.  A caller-supplied ``rng`` is consumed eagerly, as
    before, so the caller's stream position stays exactly where the eager
    API left it.
    """

    cfg: TransformerMlpConfig
    rng: np.random.Generator = field(repr=False)
    _weights: Optional[Tuple[List[np.ndarray], List[np.ndarray]]] = \
        field(default=None, init=False, repr=False)

    @classmethod
    def create(cls, cfg: TransformerMlpConfig,
               rng: Optional[np.random.Generator] = None
               ) -> "TensorParallelMlp":
        cfg.validate()
        mlp = cls(cfg, rng if rng is not None else np.random.default_rng(0))
        if rng is not None:
            mlp._materialize()
        return mlp

    def _materialize(self) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        if self._weights is None:
            cfg, rng = self.cfg, self.rng
            cols = cfg.shard_columns()
            scale0 = 1.0 / np.sqrt(cfg.hidden)
            scale1 = 1.0 / np.sqrt(cfg.ffn)
            w0 = [(rng.standard_normal((cfg.hidden, cols)) * scale0)
                  .astype(np.float32) for _ in range(cfg.tensor_parallel)]
            w1 = [(rng.standard_normal((cols, cfg.hidden)) * scale1)
                  .astype(np.float32) for _ in range(cfg.tensor_parallel)]
            self._weights = (w0, w1)
        return self._weights

    @property
    def w0_shards(self) -> List[np.ndarray]:
        """Per-rank ``(hidden, ffn/world)`` weight shards."""
        return self._materialize()[0]

    @property
    def w1_shards(self) -> List[np.ndarray]:
        """Per-rank ``(ffn/world, hidden)`` weight shards."""
        return self._materialize()[1]

    @property
    def world(self) -> int:
        return self.cfg.tensor_parallel

    @property
    def hidden(self) -> int:
        return self.cfg.hidden

    # -- functional ---------------------------------------------------------
    def partial_output(self, rank: int, x: np.ndarray) -> np.ndarray:
        """Rank-local computation: ``gelu(x @ W0_r) @ W1_r``."""
        h = gelu(x @ self.w0_shards[rank])
        return h @ self.w1_shards[rank]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Reference forward: AllReduce of the per-rank partials."""
        return np.sum(np.stack([self.partial_output(r, x)
                                for r in range(self.world)]), axis=0)

    __call__ = forward

    # -- mapping onto the fused operator -----------------------------------------
    def gemv_config(self, tile_rows: int = 16,
                    functional: bool = False) -> GemvAllReduceConfig:
        """Decode-phase second-layer GEMV + AllReduce workload.

        One token: the first layer's activation ``h`` is local to each
        rank; the second layer is ``W1_r.T``-style GEMV producing the
        hidden-sized partial that the AllReduce sums — M = hidden,
        N per GPU = ffn/world.
        """
        return GemvAllReduceConfig(
            m=self.cfg.hidden, n_per_gpu=self.cfg.shard_columns(),
            tile_rows=tile_rows, functional=functional)

    def decode_harness(self, platform=None, trace=None):
        """A single-node harness sized for this block's tensor-parallel
        world, on the given hardware ``platform`` (anything
        :func:`repro.hw.platform.get_platform` resolves; default MI210) —
        ready to run the :meth:`gemv_config` workload."""
        from ..fused.base import OpHarness
        return OpHarness(num_nodes=1, gpus_per_node=self.world,
                         platform=platform, trace=trace)
