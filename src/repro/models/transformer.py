"""Megatron-style tensor-parallel transformer feed-forward block.

The paper's Fig. 3 workload: ``W0`` is partitioned column-wise, ``W1``
row-wise; each rank computes ``gelu(x @ W0_r) @ W1_r`` and an AllReduce
sums the partial outputs.  The decode (token) phase processes one token, so
the second layer is a GEMV — the operand of the fused GEMV + AllReduce
operator.  :meth:`TensorParallelMlp.gemv_config` maps the block onto that
operator's workload description.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..fused.gemv_allreduce import GemvAllReduceConfig
from ..ops.activation import gelu
from .configs import TransformerMlpConfig

__all__ = ["TensorParallelMlp"]


@dataclass
class TensorParallelMlp:
    """One FFN block sharded across ``world`` tensor-parallel ranks."""

    w0_shards: List[np.ndarray]   #: per-rank (hidden, ffn/world)
    w1_shards: List[np.ndarray]   #: per-rank (ffn/world, hidden)

    @classmethod
    def create(cls, cfg: TransformerMlpConfig,
               rng: Optional[np.random.Generator] = None
               ) -> "TensorParallelMlp":
        cfg.validate()
        rng = rng if rng is not None else np.random.default_rng(0)
        cols = cfg.shard_columns()
        scale0 = 1.0 / np.sqrt(cfg.hidden)
        scale1 = 1.0 / np.sqrt(cfg.ffn)
        w0 = [(rng.standard_normal((cfg.hidden, cols)) * scale0)
              .astype(np.float32) for _ in range(cfg.tensor_parallel)]
        w1 = [(rng.standard_normal((cols, cfg.hidden)) * scale1)
              .astype(np.float32) for _ in range(cfg.tensor_parallel)]
        return cls(w0_shards=w0, w1_shards=w1)

    @property
    def world(self) -> int:
        return len(self.w0_shards)

    @property
    def hidden(self) -> int:
        return self.w0_shards[0].shape[0]

    # -- functional ---------------------------------------------------------
    def partial_output(self, rank: int, x: np.ndarray) -> np.ndarray:
        """Rank-local computation: ``gelu(x @ W0_r) @ W1_r``."""
        h = gelu(x @ self.w0_shards[rank])
        return h @ self.w1_shards[rank]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Reference forward: AllReduce of the per-rank partials."""
        return np.sum(np.stack([self.partial_output(r, x)
                                for r in range(self.world)]), axis=0)

    __call__ = forward

    # -- mapping onto the fused operator -----------------------------------------
    def gemv_config(self, tile_rows: int = 16,
                    functional: bool = False) -> GemvAllReduceConfig:
        """Decode-phase second-layer GEMV + AllReduce workload.

        One token: the first layer's activation ``h`` is local to each
        rank; the second layer is ``W1_r.T``-style GEMV producing the
        hidden-sized partial that the AllReduce sums — M = hidden,
        N per GPU = ffn/world.
        """
        return GemvAllReduceConfig(
            m=self.hidden, n_per_gpu=self.w1_shards[0].shape[0],
            tile_rows=tile_rows, functional=functional)
