"""Expert-parallel Mixture-of-Experts layer (top-k gating).

One expert FFN per GPU; a gating function routes each token to its top-k
experts (All-to-All dispatch), experts run their GEMMs, and the combine
All-to-All returns weighted outputs to the tokens' source ranks — the
collective the fused GEMM + All-to-All operator targets.  The paper
evaluates top-2 routing with uniform expert load; :meth:`MoeLayer.gemm_config`
maps the per-expert GEMM onto the fused operator's workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..fused.gemm_alltoall import GemmA2AConfig
from .configs import MoeLayerConfig

__all__ = ["MoeLayer", "top_k_gating"]


def top_k_gating(logits: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Top-k softmax gating.

    Args:
        logits: ``(tokens, experts)`` router scores.

    Returns:
        (indices ``(tokens, k)``, weights ``(tokens, k)`` summing to 1).
    """
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got {logits.shape}")
    if not (1 <= k <= logits.shape[1]):
        raise ValueError(f"k={k} out of range for {logits.shape[1]} experts")
    idx = np.argsort(-logits, axis=1)[:, :k]
    top = np.take_along_axis(logits, idx, axis=1)
    top = top - top.max(axis=1, keepdims=True)
    w = np.exp(top)
    w /= w.sum(axis=1, keepdims=True)
    return idx, w.astype(np.float32)


@dataclass
class MoeLayer:
    """An expert-parallel MoE layer: one (single-matrix) expert per rank.

    When :meth:`create` owns the generator (no ``rng`` passed), expert and
    router weights are materialized lazily on first access, so mapping a
    paper-scale layer onto a simulated workload (:meth:`gemm_config`) costs
    nothing.  A caller-supplied ``rng`` is consumed eagerly, as before, so
    the caller's stream position stays exactly where the eager API left it.
    """

    cfg: MoeLayerConfig
    rng: np.random.Generator = field(repr=False)
    top_k: int = 2
    _weights: Optional[Tuple[List[np.ndarray], np.ndarray]] = \
        field(default=None, init=False, repr=False)

    @classmethod
    def create(cls, cfg: MoeLayerConfig,
               rng: Optional[np.random.Generator] = None) -> "MoeLayer":
        cfg.validate()
        layer = cls(cfg, rng if rng is not None else np.random.default_rng(0),
                    top_k=cfg.top_k)
        if rng is not None:
            layer._materialize()
        return layer

    def _materialize(self) -> Tuple[List[np.ndarray], np.ndarray]:
        if self._weights is None:
            cfg, rng = self.cfg, self.rng
            scale = 1.0 / np.sqrt(cfg.model_dim)
            experts = [(rng.standard_normal((cfg.model_dim, cfg.ffn_dim))
                        * scale).astype(np.float32)
                       for _ in range(cfg.num_experts)]
            router = (rng.standard_normal((cfg.model_dim, cfg.num_experts))
                      * scale).astype(np.float32)
            self._weights = (experts, router)
        return self._weights

    @property
    def expert_weights(self) -> List[np.ndarray]:
        """Per-expert ``(model_dim, ffn_dim)`` weights."""
        return self._materialize()[0]

    @property
    def router(self) -> np.ndarray:
        """``(model_dim, experts)`` router weights."""
        return self._materialize()[1]

    @property
    def num_experts(self) -> int:
        return self.cfg.num_experts

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Reference forward pass (dense equivalent of dispatch/combine).

        Args:
            x: ``(tokens, model_dim)``.

        Returns:
            ``(tokens, ffn_dim)`` gate-weighted expert outputs.
        """
        if x.ndim != 2 or x.shape[1] != self.router.shape[0]:
            raise ValueError(f"bad input shape {x.shape}")
        idx, w = top_k_gating(x @ self.router, self.top_k)
        out = np.zeros((x.shape[0], self.expert_weights[0].shape[1]),
                       np.float32)
        for e in range(self.num_experts):
            mask = (idx == e)
            rows = mask.any(axis=1)
            if not rows.any():
                continue
            weight = (w * mask).sum(axis=1)[rows, None]
            out[rows] += weight * (x[rows] @ self.expert_weights[e])
        return out

    __call__ = forward

    def dispatch_counts(self, x: np.ndarray) -> np.ndarray:
        """Tokens routed to each expert (load-balance diagnostics)."""
        idx, _w = top_k_gating(x @ self.router, self.top_k)
        return np.bincount(idx.ravel(), minlength=self.num_experts)

    # -- mapping onto the fused operator ----------------------------------------
    def gemm_config(self, tokens_per_expert: int,
                    functional: bool = False,
                    block_m: int = 64, block_n: int = 128) -> GemmA2AConfig:
        """Per-expert combine GEMM workload (uniform top-k load, as the
        paper assumes)."""
        return GemmA2AConfig(
            tokens=tokens_per_expert,
            model_dim=self.cfg.model_dim,
            ffn_dim=self.cfg.ffn_dim,
            block_m=block_m, block_n=block_n, functional=functional)

    def expert_harness(self, platform=None, trace=None):
        """A single-node harness with one rank per expert, on the given
        hardware ``platform`` (anything
        :func:`repro.hw.platform.get_platform` resolves; default MI210) —
        ready to run the :meth:`gemm_config` workload."""
        from ..fused.base import OpHarness
        return OpHarness(num_nodes=1, gpus_per_node=self.num_experts,
                         platform=platform, trace=trace)
