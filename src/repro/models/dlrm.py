"""Functional DLRM (Naumov et al.) — the paper's motivating workload.

Bottom MLP over dense features, embedding-bag pooling over categorical
features, pairwise feature interaction, top MLP producing the CTR logit.
This single-process functional model is the ground truth against which the
distributed fused pipeline is verified, and supplies per-kernel costs to
the scale-out simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..ops.activation import sigmoid
from ..ops.embedding import embedding_pooling
from ..ops.interaction import interaction, interaction_output_dim
from ..ops.mlp import Mlp

__all__ = ["Dlrm"]


@dataclass
class Dlrm:
    """A complete (single-device) DLRM model."""

    bottom_mlp: Mlp
    tables: List[np.ndarray]          #: per-table (rows, dim) fp32
    top_mlp: Mlp
    pooling_mode: str = "sum"

    @classmethod
    def create(cls, dense_dim: int, embedding_dim: int, num_tables: int,
               rows_per_table: int, bottom_sizes: List[int],
               top_sizes: List[int],
               rng: Optional[np.random.Generator] = None) -> "Dlrm":
        """Build a DLRM with consistent layer plumbing.

        ``bottom_sizes``/``top_sizes`` are hidden sizes; input/output dims
        are derived (bottom ends at ``embedding_dim`` so the dense feature
        joins the interaction; top ends at 1 logit).
        """
        rng = rng if rng is not None else np.random.default_rng(0)
        bottom = Mlp.create([dense_dim, *bottom_sizes, embedding_dim],
                            rng=rng)
        tables = [
            (rng.standard_normal((rows_per_table, embedding_dim)) * 0.1)
            .astype(np.float32)
            for _ in range(num_tables)
        ]
        inter_dim = interaction_output_dim(num_tables, embedding_dim)
        top = Mlp.create([inter_dim, *top_sizes, 1], rng=rng)
        return cls(bottom_mlp=bottom, tables=tables, top_mlp=top)

    @property
    def num_tables(self) -> int:
        return len(self.tables)

    @property
    def embedding_dim(self) -> int:
        return self.tables[0].shape[1]

    def forward(self, dense: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Full forward pass.

        Args:
            dense: ``(batch, dense_dim)``.
            indices: ``(num_tables, batch, pooling)`` row ids.

        Returns:
            ``(batch,)`` click-through probabilities.
        """
        if indices.shape[0] != self.num_tables:
            raise ValueError(
                f"expected {self.num_tables} index tables, got "
                f"{indices.shape[0]}")
        if dense.shape[0] != indices.shape[1]:
            raise ValueError("dense/categorical batch mismatch")
        bottom_out = self.bottom_mlp(dense)                  # (B, dim)
        pooled = np.stack(
            [embedding_pooling(t, idx, mode=self.pooling_mode)
             for t, idx in zip(self.tables, indices)], axis=1)  # (B, T, dim)
        feats = interaction(bottom_out, pooled)
        logit = self.top_mlp(feats)[:, 0]
        return sigmoid(logit)

    __call__ = forward
