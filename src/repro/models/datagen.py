"""Synthetic input generators (the public DLRM repo's data generator role).

The paper uses the data generator shipped with the public DLRM code for its
kernel evaluations; this module reproduces its essentials: dense features
are standard normal, categorical lookups are uniform (or Zipf-skewed, which
the DLRM generator also supports) row ids with a fixed pooling factor.
All generators are deterministic given a seed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["dense_features", "categorical_indices", "token_batch"]


def dense_features(batch: int, dim: int, seed: int = 0) -> np.ndarray:
    """Dense (bottom-MLP) input: ``(batch, dim)`` standard normal fp32."""
    if batch < 1 or dim < 1:
        raise ValueError("batch and dim must be >= 1")
    rng = np.random.default_rng(seed)
    return rng.standard_normal((batch, dim)).astype(np.float32)


def categorical_indices(batch: int, num_tables: int, pooling: int,
                        rows_per_table: int, seed: int = 0,
                        zipf_alpha: float = 0.0) -> np.ndarray:
    """Sparse lookups: ``(num_tables, batch, pooling)`` int64 row ids.

    ``zipf_alpha > 0`` skews lookups toward hot rows (production embedding
    access patterns); 0 gives the uniform default.
    """
    if min(batch, num_tables, pooling, rows_per_table) < 1:
        raise ValueError("all dimensions must be >= 1")
    if zipf_alpha < 0:
        raise ValueError("zipf_alpha must be >= 0")
    rng = np.random.default_rng(seed)
    shape = (num_tables, batch, pooling)
    if zipf_alpha == 0.0:
        return rng.integers(0, rows_per_table, size=shape, dtype=np.int64)
    ranks = np.arange(1, rows_per_table + 1, dtype=np.float64)
    probs = ranks ** (-zipf_alpha)
    probs /= probs.sum()
    flat = rng.choice(rows_per_table, size=int(np.prod(shape)), p=probs)
    return flat.reshape(shape).astype(np.int64)


def token_batch(tokens: int, model_dim: int,
                seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Transformer/MoE token activations plus their source positions."""
    if tokens < 1 or model_dim < 1:
        raise ValueError("tokens and model_dim must be >= 1")
    rng = np.random.default_rng(seed)
    acts = (rng.standard_normal((tokens, model_dim)).astype(np.float32)
            / np.sqrt(model_dim))
    positions = np.arange(tokens, dtype=np.int64)
    return acts, positions
