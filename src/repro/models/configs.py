"""Model and system configurations from the paper's Tables I and II."""

from __future__ import annotations

from dataclasses import dataclass

from ..utils.units import GBIT_PER_S, NS

__all__ = ["DlrmModelConfig", "TorusNetworkConfig", "TABLE2_DLRM",
           "TABLE2_TORUS", "TransformerMlpConfig", "MoeLayerConfig"]


@dataclass(frozen=True)
class DlrmModelConfig:
    """DLRM model parameters (paper Table II, after Neo [47])."""

    embedding_dim: int = 92
    mlp_avg_size: int = 682
    mlp_layers: int = 43
    avg_pooling: int = 70
    total_tables: int = 856          #: Neo-scale production table count
    local_batch: int = 512           #: per-node batch (training)

    def validate(self) -> None:
        for field_name in ("embedding_dim", "mlp_avg_size", "mlp_layers",
                           "avg_pooling", "total_tables", "local_batch"):
            if getattr(self, field_name) < 1:
                raise ValueError(f"{field_name} must be >= 1")

    def tables_per_node(self, num_nodes: int) -> float:
        """Model-parallel table shard per node."""
        return self.total_tables / num_nodes

    def alltoall_bytes_per_node(self, itemsize: int = 4) -> float:
        """Per-node All-to-All receive volume for one forward pass."""
        return float(self.local_batch * self.total_tables
                     * self.embedding_dim * itemsize)


@dataclass(frozen=True)
class TorusNetworkConfig:
    """Scale-out network parameters (paper Table II: ASTRA-Sim setup)."""

    link_bandwidth: float = 200 * GBIT_PER_S   #: bytes/s per link
    link_latency: float = 700 * NS
    links_per_node: int = 4                    #: 2D torus: +/-x, +/-y

    def validate(self) -> None:
        if self.link_bandwidth <= 0 or self.link_latency < 0:
            raise ValueError("bad link parameters")
        if self.links_per_node < 1:
            raise ValueError("links_per_node must be >= 1")


#: The paper's Table II rows, verbatim.
TABLE2_DLRM = DlrmModelConfig()
TABLE2_TORUS = TorusNetworkConfig()


@dataclass(frozen=True)
class TransformerMlpConfig:
    """Tensor-parallel transformer feed-forward block (Megatron-style)."""

    hidden: int = 8192
    ffn_multiplier: int = 4
    tensor_parallel: int = 4

    @property
    def ffn(self) -> int:
        return self.hidden * self.ffn_multiplier

    def shard_columns(self) -> int:
        """First-layer column shard (W0 is split column-wise)."""
        return self.ffn // self.tensor_parallel

    def validate(self) -> None:
        if self.hidden < 1 or self.ffn_multiplier < 1:
            raise ValueError("bad transformer dims")
        if self.ffn % self.tensor_parallel:
            raise ValueError("ffn must divide across tensor_parallel ranks")


@dataclass(frozen=True)
class MoeLayerConfig:
    """Expert-parallel MoE layer (one expert per GPU, top-2 routing)."""

    tokens: int = 4096
    model_dim: int = 4096
    ffn_dim: int = 8192
    num_experts: int = 4
    top_k: int = 2

    def validate(self) -> None:
        if self.tokens % self.num_experts:
            raise ValueError("tokens must divide across experts")
        if not (1 <= self.top_k <= self.num_experts):
            raise ValueError("top_k out of range")
