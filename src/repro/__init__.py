"""repro — fused computation-collective operations for distributed ML.

A production-quality reproduction of "Optimizing Distributed ML Communication
with Fused Computation-Collective Operations" (SC'24, arXiv:2305.06942) on a
simulated multi-GPU substrate.

Layers (bottom-up):

* :mod:`repro.sim` — deterministic discrete-event engine.
* :mod:`repro.hw` — GPU / fabric / NIC / cluster hardware models.
* :mod:`repro.comm` — symmetric heap, GPU-initiated SHMEM API, baseline
  collective library.
* :mod:`repro.kernels` — kernel execution: grids, persistent workgroups,
  occupancy, scheduling policies.
* :mod:`repro.ops` — functional + costed operators (embedding, GEMM, GEMV...).
* :mod:`repro.fused` — the paper's fused operators.
* :mod:`repro.frameworks` — minitorch / mini-Triton integration layers.
* :mod:`repro.models` — DLRM / Transformer / MoE workloads.
* :mod:`repro.astra` — execution-graph scale-out training simulator.
* :mod:`repro.bench` — experiment harness regenerating every paper figure.
"""

__version__ = "1.0.0"
