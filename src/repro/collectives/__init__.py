"""Topology-aware collective-algorithm library.

A pluggable menu of AllReduce and All-to-All schedules, each implemented
against both evaluation engines — DES schedules over the
fabric/NIC/kernel machinery, and closed forms for the analytic backend —
plus a size/topology auto-selector (``algo="auto"``).  See ``base.py``
for the model and ``python -m repro algos`` for the catalog.
"""

from .base import (
    AUTO,
    PAIRWISE_MAX_BYTES,
    TREE_MAX_BYTES,
    AllReduceAlgorithm,
    AllToAllAlgorithm,
    CommTopology,
    algorithm_table,
    allreduce_names,
    alltoall_names,
    check_algo,
    default_allreduce,
    default_alltoall,
    get_allreduce,
    get_alltoall,
    register_allreduce,
    register_alltoall,
    resolve_allreduce,
    resolve_alltoall,
    select_allreduce,
    select_alltoall,
)
from .allreduce import (
    DirectAllReduce,
    HierarchicalAllReduce,
    RingAllReduce,
    TreeAllReduce,
)
from .alltoall import (
    FlatAllToAll,
    HierarchicalAllToAll,
    PairwiseAllToAll,
)

__all__ = [
    "AUTO",
    "TREE_MAX_BYTES",
    "PAIRWISE_MAX_BYTES",
    "AllReduceAlgorithm",
    "AllToAllAlgorithm",
    "CommTopology",
    "algorithm_table",
    "allreduce_names",
    "alltoall_names",
    "check_algo",
    "default_allreduce",
    "default_alltoall",
    "get_allreduce",
    "get_alltoall",
    "register_allreduce",
    "register_alltoall",
    "resolve_allreduce",
    "resolve_alltoall",
    "select_allreduce",
    "select_alltoall",
    "DirectAllReduce",
    "RingAllReduce",
    "TreeAllReduce",
    "HierarchicalAllReduce",
    "FlatAllToAll",
    "PairwiseAllToAll",
    "HierarchicalAllToAll",
]
