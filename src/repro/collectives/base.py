"""Collective-algorithm plumbing: topology, registries, auto-selection.

Real communication libraries pick a schedule per collective from a menu —
ring, tree, direct, hierarchical — based on message size and where the
ranks live.  This package is that menu for the repro's two transport
stacks.  Every algorithm is implemented twice, against the same
structural model:

* ``des_run(lib, topo, ...)`` — a discrete-event schedule driven through
  the :class:`~repro.comm.collectives.CollectiveLibrary` helpers (blit
  staging over :class:`~repro.hw.fabric.Fabric` links, GPU-direct RDMA
  through the shared :class:`~repro.hw.nic.Nic`, roofline reduce kernels).
* ``analytic_time(cm, topo, ...)`` — the closed form the analytic
  backend's :class:`~repro.analytic.comm.CommModel` evaluates, mirroring
  the DES schedule round for round (lock-stepped schedules agree exactly;
  the per-algorithm equivalence tests pin this).

Algorithms register by name at import time; ``"auto"`` resolves through
the size/topology selector below, and ``None`` resolves to the legacy
default schedule so every pre-existing caller (and cached result) is
untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "AUTO",
    "CommTopology",
    "AllReduceAlgorithm",
    "AllToAllAlgorithm",
    "register_allreduce",
    "register_alltoall",
    "get_allreduce",
    "get_alltoall",
    "allreduce_names",
    "alltoall_names",
    "check_algo",
    "default_allreduce",
    "default_alltoall",
    "select_allreduce",
    "select_alltoall",
    "resolve_allreduce",
    "resolve_alltoall",
    "TREE_MAX_BYTES",
    "PAIRWISE_MAX_BYTES",
]

#: Sentinel name: let :func:`select_allreduce` / :func:`select_alltoall`
#: pick the schedule from the topology and message size.
AUTO = "auto"

#: Above this AllReduce payload the tree's ``log2(p)`` full-buffer hops
#: lose to the ring's ``2(p-1)`` chunk hops (bandwidth-optimal), so the
#: selector switches tree -> ring.  The calibrated-NIC crossover sits
#: near 32-64 KB for 4-16 nodes.
TREE_MAX_BYTES = 32 * 1024

#: Below this per-pair All-to-All chunk the NIC's per-message overhead
#: dominates the wire time, and round-serialized pairwise exchange beats
#: the flat everyone-at-once incast.
PAIRWISE_MAX_BYTES = 64 * 1024


@dataclass(frozen=True)
class CommTopology:
    """Where the ranks live: ``num_nodes`` x ``gpus_per_node``, node-major.

    Rank numbering follows :func:`repro.hw.topology.build_cluster`: rank
    ``r`` sits on node ``r // gpus_per_node`` with local index
    ``r % gpus_per_node``.
    """

    num_nodes: int
    gpus_per_node: int

    def __post_init__(self) -> None:
        if self.num_nodes < 1 or self.gpus_per_node < 1:
            raise ValueError(
                f"topology counts must be >= 1, got {self.num_nodes}x"
                f"{self.gpus_per_node}")

    @property
    def world(self) -> int:
        return self.num_nodes * self.gpus_per_node

    def node_of(self, rank: int) -> int:
        return rank // self.gpus_per_node

    def local_index(self, rank: int) -> int:
        return rank % self.gpus_per_node

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def leader_of(self, rank: int) -> int:
        """First rank of ``rank``'s node (the hierarchical stage root)."""
        return self.node_of(rank) * self.gpus_per_node

    def leaders(self) -> List[int]:
        return [n * self.gpus_per_node for n in range(self.num_nodes)]

    def counterpart(self, rank: int, node: int) -> int:
        """The rank on ``node`` with the same local index as ``rank``."""
        return node * self.gpus_per_node + self.local_index(rank)

    def local_peers(self, rank: int) -> List[int]:
        """Same-node ranks other than ``rank`` (empty on 1-GPU nodes)."""
        n0 = self.leader_of(rank)
        return [r for r in range(n0, n0 + self.gpus_per_node) if r != rank]

    @classmethod
    def from_cluster(cls, cluster) -> "CommTopology":
        sizes = {len(node.gpus) for node in cluster.nodes}
        if len(sizes) != 1:
            raise ValueError(
                f"collective algorithms need uniform nodes, got GPU counts "
                f"{sorted(sizes)}")
        return cls(num_nodes=cluster.num_nodes, gpus_per_node=sizes.pop())


class AllReduceAlgorithm:
    """One AllReduce schedule (see the subclasses in ``allreduce.py``)."""

    #: Registry name.
    name: str = ""
    #: One-line description for ``python -m repro algos``.
    summary: str = ""

    def supports(self, topo: CommTopology) -> Optional[str]:
        """``None`` if the schedule runs on ``topo``, else the reason."""
        return None

    def des_run(self, lib, topo: CommTopology, nbytes: float, n_elems: int,
                itemsize: int):
        raise NotImplementedError

    def analytic_time(self, cm, topo: CommTopology, nbytes: float,
                      n_elems: int, itemsize: int) -> float:
        raise NotImplementedError


class AllToAllAlgorithm:
    """One All-to-All schedule (see the subclasses in ``alltoall.py``)."""

    name: str = ""
    summary: str = ""

    def supports(self, topo: CommTopology) -> Optional[str]:
        return None

    def des_run(self, lib, topo: CommTopology, chunk_bytes: float):
        raise NotImplementedError

    def analytic_time(self, cm, topo: CommTopology,
                      chunk_bytes: float) -> float:
        raise NotImplementedError


ALLREDUCE_ALGOS: Dict[str, AllReduceAlgorithm] = {}
ALLTOALL_ALGOS: Dict[str, AllToAllAlgorithm] = {}


def register_allreduce(algo: AllReduceAlgorithm) -> AllReduceAlgorithm:
    if not algo.name:
        raise ValueError("AllReduce algorithm needs a name")
    if algo.name == AUTO:
        raise ValueError(f"{AUTO!r} is reserved for the selector")
    ALLREDUCE_ALGOS[algo.name] = algo
    return algo


def register_alltoall(algo: AllToAllAlgorithm) -> AllToAllAlgorithm:
    if not algo.name:
        raise ValueError("All-to-All algorithm needs a name")
    if algo.name == AUTO:
        raise ValueError(f"{AUTO!r} is reserved for the selector")
    ALLTOALL_ALGOS[algo.name] = algo
    return algo


def allreduce_names() -> List[str]:
    return sorted(ALLREDUCE_ALGOS)


def alltoall_names() -> List[str]:
    return sorted(ALLTOALL_ALGOS)


def get_allreduce(name: str) -> AllReduceAlgorithm:
    try:
        return ALLREDUCE_ALGOS[name]
    except KeyError:
        raise KeyError(
            f"unknown AllReduce algorithm {name!r}; registered: "
            f"{allreduce_names()} (or {AUTO!r})") from None


def get_alltoall(name: str) -> AllToAllAlgorithm:
    try:
        return ALLTOALL_ALGOS[name]
    except KeyError:
        raise KeyError(
            f"unknown All-to-All algorithm {name!r}; registered: "
            f"{alltoall_names()} (or {AUTO!r})") from None


def check_algo(kind: str, name: Optional[str]) -> None:
    """Validate an ``algo`` knob *before* any simulation or cache write.

    ``None`` (the default schedule) and :data:`AUTO` are always valid;
    anything else must be a registered name of the right ``kind``
    (``"allreduce"`` or ``"alltoall"``).  Raises ``KeyError`` with the
    registered names, so a typo'd scenario fails fast instead of
    producing a cache record.
    """
    if name is None or name == AUTO:
        return
    if kind == "allreduce":
        get_allreduce(name)
    elif kind == "alltoall":
        get_alltoall(name)
    else:
        raise ValueError(f"unknown collective kind {kind!r}")


# ---------------------------------------------------------------------------
# Defaults and the size/topology auto-selector
# ---------------------------------------------------------------------------

def default_allreduce(topo: CommTopology) -> str:
    """The legacy schedule (what ``algo=None`` has always meant): the
    paper's direct two-phase AllReduce inside a fully-connected node,
    a ring across nodes."""
    return "direct" if topo.num_nodes == 1 else "ring"


def default_alltoall(topo: CommTopology) -> str:
    """The legacy schedule: the flat RCCL-like everyone-to-everyone."""
    return "flat"


def select_allreduce(topo: CommTopology, nbytes: float) -> str:
    """Size/topology heuristic for ``algo="auto"``.

    * single node — the fully-connected fabric makes the direct
      two-phase schedule both latency- and bandwidth-optimal;
    * small multi-node payloads (<= :data:`TREE_MAX_BYTES`) are
      latency/overhead-bound: stage onto node leaders when there are
      fabric peers to stage over (hierarchical), else take the
      ``log2(p)``-step tree;
    * large payloads are bandwidth-bound, where the ring's ``2(p-1)``
      ``n/p`` chunks are optimal and staging buys nothing.
    """
    if topo.num_nodes == 1:
        return "direct"
    if nbytes <= TREE_MAX_BYTES:
        return "hier" if topo.gpus_per_node > 1 else "tree"
    return "ring"


def select_alltoall(topo: CommTopology, chunk_bytes: float) -> str:
    """Size/topology heuristic for ``algo="auto"``.

    * single node — flat over the fully-connected fabric;
    * small multi-node chunks (<= :data:`PAIRWISE_MAX_BYTES`) are
      NIC-message-rate-bound: aggregate per node over the fabric
      (hierarchical, ``gpus_per_node`` times fewer NIC messages) when
      there are fabric peers, else serialize pairwise rounds;
    * large chunks are wire-bound, where flat's full-incast pipeline
      already saturates the NIC and staging only adds a fabric hop.
    """
    if topo.num_nodes == 1:
        return "flat"
    if chunk_bytes <= PAIRWISE_MAX_BYTES:
        return "hier" if topo.gpus_per_node > 1 else "pairwise"
    return "flat"


def _resolve(kind: str, name: Optional[str], topo: CommTopology,
             nbytes: float):
    if name is None:
        name = (default_allreduce(topo) if kind == "allreduce"
                else default_alltoall(topo))
    elif name == AUTO:
        name = (select_allreduce(topo, nbytes) if kind == "allreduce"
                else select_alltoall(topo, nbytes))
        from ..obs.metrics import get_metrics
        m = get_metrics()
        if m.enabled:
            m.inc(f"collectives.auto.{kind}.{name}")
    algo = get_allreduce(name) if kind == "allreduce" else get_alltoall(name)
    reason = algo.supports(topo)
    if reason is not None:
        raise ValueError(
            f"{kind} algorithm {name!r} does not support "
            f"{topo.num_nodes}x{topo.gpus_per_node}: {reason}")
    return algo


def resolve_allreduce(name: Optional[str], topo: CommTopology,
                      nbytes: float) -> AllReduceAlgorithm:
    """Name (or ``None``/``"auto"``) -> a supported algorithm object."""
    return _resolve("allreduce", name, topo, nbytes)


def resolve_alltoall(name: Optional[str], topo: CommTopology,
                     chunk_bytes: float) -> AllToAllAlgorithm:
    """Name (or ``None``/``"auto"``) -> a supported algorithm object."""
    return _resolve("alltoall", name, topo, chunk_bytes)


def algorithm_table() -> List[Tuple[str, str, str]]:
    """(kind, name, summary) rows for the CLI listing."""
    rows = [("allreduce", n, ALLREDUCE_ALGOS[n].summary)
            for n in allreduce_names()]
    rows += [("alltoall", n, ALLTOALL_ALGOS[n].summary)
             for n in alltoall_names()]
    return rows
