"""All-to-All schedules: flat, pairwise, hierarchical two-stage.

``flat`` is the legacy RCCL-like schedule (previously hard-coded in
``CollectiveLibrary.all_to_all_bytes``): every rank fires all of its
chunks at once, so a node's off-node chunks pile into the shared NIC.
``pairwise`` serializes the exchange into ``p-1`` barriered rounds;
``hier`` stages intra-node traffic over the fabric so the NIC carries
``gpus_per_node`` times fewer (and larger) messages.
"""

from __future__ import annotations

import numpy as np

from .base import (
    AllToAllAlgorithm,
    CommTopology,
    register_alltoall,
)

__all__ = ["FlatAllToAll", "PairwiseAllToAll", "HierarchicalAllToAll"]


class FlatAllToAll(AllToAllAlgorithm):
    """Everyone-to-everyone at once: per-destination chunks launched
    concurrently — dedicated fabric links intra-node, the shared NIC's
    TX/RX pipeline for the off-node incast."""

    name = "flat"
    summary = ("all chunks at once: dedicated fabric links intra-node, "
               "shared-NIC incast off-node (the RCCL-like baseline)")

    def des_run(self, lib, topo, chunk_bytes):
        world = topo.world
        launch = lib._launch_delay()

        def rank_proc(r):
            if launch:
                yield lib.sim.timeout(launch)
            evs = []
            for dst in range(world):
                if dst == r:
                    evs.append(lib.sim.timeout(
                        lib._local_copy_time(r, chunk_bytes)))
                else:
                    evs.append(lib._route(r, dst, chunk_bytes))
            yield lib.sim.all_of(evs)

        yield from lib._run_ranks(rank_proc(r) for r in range(world))

    def analytic_time(self, cm, topo, chunk_bytes):
        if topo.world == 1:
            return cm.launch() + cm.local_copy_time(chunk_bytes)
        longest = cm.local_copy_time(chunk_bytes)
        if topo.gpus_per_node > 1:
            longest = max(longest, cm.blit_route_time(chunk_bytes, False))
        remote_gpus = topo.world - topo.gpus_per_node
        if remote_gpus:
            longest = max(longest, cm.nic_pipeline_time(
                topo.gpus_per_node * remote_gpus, chunk_bytes))
        return cm.launch() + longest

    def analytic_time_batch(self, cm, topo, chunk_bytes):
        if topo.world == 1:
            return cm.launch() + cm.local_copy_time_batch(chunk_bytes)
        longest = cm.local_copy_time_batch(chunk_bytes)
        if topo.gpus_per_node > 1:
            longest = np.maximum(
                longest, cm.blit_route_time_batch(chunk_bytes, False))
        remote_gpus = topo.world - topo.gpus_per_node
        if remote_gpus:
            longest = np.maximum(longest, cm.nic_pipeline_time_batch(
                topo.gpus_per_node * remote_gpus, chunk_bytes))
        return cm.launch() + longest


def _pairwise_round_counts(topo: CommTopology, k: int):
    """(same-node sends, off-node sends) per node in round ``k``.

    Node-major rank layout makes every node's round-``k`` pattern a
    translate of node 0's, so counting one node's block suffices.
    """
    same = off = 0
    for r in range(topo.gpus_per_node):
        dst = (r + k) % topo.world
        if topo.node_of(dst) == 0:
            same += 1
        else:
            off += 1
    return same, off


class PairwiseAllToAll(AllToAllAlgorithm):
    """``p-1`` barriered rounds; in round ``k`` rank ``r`` exchanges with
    rank ``(r+k) mod p``.  One message per rank per round keeps the NIC's
    message pipeline shallow — the win when chunks are overhead-bound."""

    name = "pairwise"
    summary = ("p-1 barriered rounds, one (r -> r+k) message each: "
               "shallow NIC pipeline for overhead-bound chunks")

    def des_run(self, lib, topo, chunk_bytes):
        world = topo.world
        launch = lib._launch_delay()

        def local_proc(r):
            if launch:
                yield lib.sim.timeout(launch)
            yield lib.sim.timeout(lib._local_copy_time(r, chunk_bytes))

        yield from lib._run_ranks(local_proc(r) for r in range(world))
        for k in range(1, world):
            def round_proc(r, k=k):
                yield lib._route(r, (r + k) % world, chunk_bytes)
            yield from lib._run_ranks(round_proc(r) for r in range(world))

    def analytic_time(self, cm, topo, chunk_bytes):
        total = cm.launch() + cm.local_copy_time(chunk_bytes)
        for k in range(1, topo.world):
            same, off = _pairwise_round_counts(topo, k)
            longest = 0.0
            if same:
                longest = cm.blit_route_time(chunk_bytes, False)
            if off:
                longest = max(longest,
                              cm.nic_pipeline_time(off, chunk_bytes))
            total += longest
        return total

    def analytic_time_batch(self, cm, topo, chunk_bytes):
        total = cm.launch() + cm.local_copy_time_batch(chunk_bytes)
        for k in range(1, topo.world):
            same, off = _pairwise_round_counts(topo, k)
            longest = 0.0
            if same:
                longest = cm.blit_route_time_batch(chunk_bytes, False)
            if off:
                longest = np.maximum(longest, cm.nic_pipeline_time_batch(
                    off, chunk_bytes))
            total = total + longest
        return total


class HierarchicalAllToAll(AllToAllAlgorithm):
    """Two-stage exchange for multi-GPU nodes behind one shared NIC.

    Stage 1 (fabric): rank ``(n, g)`` sends each same-node peer ``(n, g')``
    one aggregated message — the peer's direct chunk plus the chunks bound
    for local index ``g'`` on every other node (``num_nodes`` chunks
    total).  Stage 2 (NIC): each rank sends its counterpart ``(m, g)`` on
    every other node one ``gpus_per_node``-chunk message carrying the
    whole node's traffic for that destination.  Same total bytes as
    ``flat``, but the NIC sees ``gpus_per_node`` times fewer messages.

    Degenerate shapes (one node, or 1-GPU nodes with no fabric peers to
    stage over) collapse to the flat schedule exactly.
    """

    name = "hier"
    summary = ("aggregate per-node over the fabric, then g/node-times "
               "fewer, larger NIC messages (multi-GPU nodes)")

    def des_run(self, lib, topo, chunk_bytes):
        if topo.num_nodes == 1 or topo.gpus_per_node == 1:
            yield from FLAT.des_run(lib, topo, chunk_bytes)
            return
        launch = lib._launch_delay()
        staged = topo.num_nodes * chunk_bytes
        bundled = topo.gpus_per_node * chunk_bytes

        def stage1_proc(r):
            if launch:
                yield lib.sim.timeout(launch)
            evs = [lib.sim.timeout(lib._local_copy_time(r, chunk_bytes))]
            evs += [lib._route(r, p, staged) for p in topo.local_peers(r)]
            yield lib.sim.all_of(evs)

        yield from lib._run_ranks(stage1_proc(r) for r in range(topo.world))

        def stage2_proc(r):
            evs = [lib._route(r, topo.counterpart(r, m), bundled)
                   for m in range(topo.num_nodes)
                   if m != topo.node_of(r)]
            yield lib.sim.all_of(evs)

        yield from lib._run_ranks(stage2_proc(r) for r in range(topo.world))

    def analytic_time(self, cm, topo, chunk_bytes):
        if topo.num_nodes == 1 or topo.gpus_per_node == 1:
            return FLAT.analytic_time(cm, topo, chunk_bytes)
        staged = topo.num_nodes * chunk_bytes
        bundled = topo.gpus_per_node * chunk_bytes
        stage1 = max(cm.local_copy_time(chunk_bytes),
                     cm.blit_route_time(staged, False))
        n_msgs = topo.gpus_per_node * (topo.num_nodes - 1)
        return cm.launch() + stage1 + cm.nic_pipeline_time(n_msgs, bundled)

    def analytic_time_batch(self, cm, topo, chunk_bytes):
        if topo.num_nodes == 1 or topo.gpus_per_node == 1:
            return FLAT.analytic_time_batch(cm, topo, chunk_bytes)
        staged = topo.num_nodes * chunk_bytes
        bundled = topo.gpus_per_node * chunk_bytes
        stage1 = np.maximum(cm.local_copy_time_batch(chunk_bytes),
                            cm.blit_route_time_batch(staged, False))
        n_msgs = topo.gpus_per_node * (topo.num_nodes - 1)
        return (cm.launch() + stage1
                + cm.nic_pipeline_time_batch(n_msgs, bundled))


FLAT = register_alltoall(FlatAllToAll())
PAIRWISE = register_alltoall(PairwiseAllToAll())
HIER = register_alltoall(HierarchicalAllToAll())
