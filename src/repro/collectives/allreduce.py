"""AllReduce schedules: direct, ring, binomial tree, hierarchical.

Each algorithm is a lock-stepped schedule expressed twice — as a DES
generator over :class:`~repro.comm.collectives.CollectiveLibrary`
helpers, and as the closed form :class:`~repro.analytic.comm.CommModel`
evaluates.  The barriers between rounds are what make the two engines
agree exactly: within a round every transfer runs on its own directed
fabric link or through the NIC pipeline the analytic model mirrors.

``direct`` and ``ring`` are the legacy schedules (previously hard-coded
in ``CollectiveLibrary.all_reduce_bytes``); their generators are the
same code relocated, so ``algo=None`` timings are bit-identical.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Tuple

import numpy as np

from .base import (
    AllReduceAlgorithm,
    CommTopology,
    register_allreduce,
)

__all__ = ["DirectAllReduce", "RingAllReduce", "TreeAllReduce",
           "HierarchicalAllReduce"]


def _chunked(nbytes: float, n_elems: int, world: int) -> Tuple[float, int]:
    return nbytes / world, max(1, n_elems // world)


def _route_max(cm, topo: CommTopology,
               sends: List[Tuple[int, int]], nbytes: float) -> float:
    """Closed-form duration of one barriered round of point-to-point sends.

    Same-node sends ride dedicated directed fabric links (blit-staged,
    no contention); off-node sends share each node's NIC TX engine and
    the destination's RX port, mirrored by the two-stage pipeline bound
    (exact when at most one off-node send touches each node, which holds
    for every schedule in this module on node-major rank layouts).
    """
    longest = 0.0
    off = [(s, d) for s, d in sends if not topo.same_node(s, d)]
    if len(off) < len(sends):
        longest = cm.blit_route_time(nbytes, remote_node=False)
    if off:
        s_max = max(Counter(topo.node_of(s) for s, _d in off).values())
        t_max = max(Counter(topo.node_of(d) for _s, d in off).values())
        longest = max(longest,
                      cm.nic_pipeline_time(s_max, nbytes, rx_msgs=t_max))
    return longest


def _route_max_batch(cm, topo: CommTopology,
                     sends: List[Tuple[int, int]], nbytes: np.ndarray):
    """Array twin of :func:`_route_max` — the round structure depends only
    on the (uniform) topology; the chunk size is the scenario column."""
    longest = 0.0
    off = [(s, d) for s, d in sends if not topo.same_node(s, d)]
    if len(off) < len(sends):
        longest = cm.blit_route_time_batch(nbytes, remote_node=False)
    if off:
        s_max = max(Counter(topo.node_of(s) for s, _d in off).values())
        t_max = max(Counter(topo.node_of(d) for _s, d in off).values())
        longest = np.maximum(
            longest, cm.nic_pipeline_time_batch(s_max, nbytes,
                                                rx_msgs=t_max))
    return longest


class DirectAllReduce(AllReduceAlgorithm):
    """The paper's two-phase direct schedule on a fully-connected fabric:
    reduce-scatter (every rank streams its copy of chunk ``j`` to rank
    ``j``), local reduction, all-gather of the reduced chunks."""

    name = "direct"
    summary = ("two-phase reduce-scatter + all-gather over dedicated "
               "per-pair links (the paper's scale-up schedule)")

    def des_run(self, lib, topo, nbytes, n_elems, itemsize):
        world = topo.world
        launch = lib._launch_delay()
        chunk_bytes, chunk_elems = _chunked(nbytes, n_elems, world)

        def rank_proc(r):
            if launch:
                yield lib.sim.timeout(launch)
            evs = [lib._route(r, dst, chunk_bytes)
                   for dst in range(world) if dst != r]
            yield lib.sim.all_of(evs)
            yield lib.sim.timeout(lib._reduce_time(
                r, chunk_elems, world, itemsize))
            evs = [lib._route(r, dst, chunk_bytes)
                   for dst in range(world) if dst != r]
            yield lib.sim.all_of(evs)

        yield from lib._run_ranks(rank_proc(r) for r in range(world))

    def analytic_time(self, cm, topo, nbytes, n_elems, itemsize):
        world = topo.world
        if world == 1:
            return cm.launch()
        chunk_bytes, chunk_elems = _chunked(nbytes, n_elems, world)
        phase = 0.0
        if topo.gpus_per_node > 1:
            phase = cm.blit_route_time(chunk_bytes, remote_node=False)
        remote_gpus = world - topo.gpus_per_node
        if remote_gpus:
            # Every rank streams a chunk to each off-node peer at once —
            # the same shared-NIC incast shape as the flat All-to-All.
            phase = max(phase, cm.nic_pipeline_time(
                topo.gpus_per_node * remote_gpus, chunk_bytes))
        return (cm.launch() + 2 * phase
                + cm.reduce_time(chunk_elems, world, itemsize))

    def analytic_time_batch(self, cm, topo, nbytes, n_elems, itemsize):
        world = topo.world
        if world == 1:
            return np.full(len(nbytes), cm.launch())
        chunk_bytes = nbytes / world
        chunk_elems = np.maximum(1, n_elems // world)
        phase = 0.0
        if topo.gpus_per_node > 1:
            phase = cm.blit_route_time_batch(chunk_bytes, remote_node=False)
        remote_gpus = world - topo.gpus_per_node
        if remote_gpus:
            phase = np.maximum(phase, cm.nic_pipeline_time_batch(
                topo.gpus_per_node * remote_gpus, chunk_bytes))
        return (cm.launch() + 2 * phase
                + cm.reduce_time_batch(chunk_elems, world, itemsize))


class RingAllReduce(AllReduceAlgorithm):
    """Bandwidth-optimal ring: ``2(p-1)`` lock-stepped rounds of ``n/p``
    chunks around the rank ring (reduce-scatter then all-gather)."""

    name = "ring"
    summary = ("2(p-1) lock-stepped n/p-chunk rounds around the rank "
               "ring (bandwidth-optimal, latency grows with p)")

    def des_run(self, lib, topo, nbytes, n_elems, itemsize):
        world = topo.world
        launch = lib._launch_delay()
        chunk_bytes, chunk_elems = _chunked(nbytes, n_elems, world)
        if launch:
            yield lib.sim.timeout(launch)
        for phase in range(2):
            for _ in range(world - 1):
                def rank_proc(r, reduce_phase=(phase == 0)):
                    yield lib._route(r, (r + 1) % world, chunk_bytes)
                    if reduce_phase:
                        yield lib.sim.timeout(lib._reduce_time(
                            r, chunk_elems, 2, itemsize))
                yield from lib._run_ranks(rank_proc(r)
                                          for r in range(world))

    def analytic_time(self, cm, topo, nbytes, n_elems, itemsize):
        world = topo.world
        if world == 1:
            return cm.launch()
        chunk_bytes, chunk_elems = _chunked(nbytes, n_elems, world)
        sends = [(r, (r + 1) % world) for r in range(world)]
        hop = _route_max(cm, topo, sends, chunk_bytes)
        reduce = cm.reduce_time(chunk_elems, 2, itemsize)
        return cm.launch() + (world - 1) * (2 * hop + reduce)

    def analytic_time_batch(self, cm, topo, nbytes, n_elems, itemsize):
        world = topo.world
        if world == 1:
            return np.full(len(nbytes), cm.launch())
        chunk_bytes = nbytes / world
        chunk_elems = np.maximum(1, n_elems // world)
        sends = [(r, (r + 1) % world) for r in range(world)]
        hop = _route_max_batch(cm, topo, sends, chunk_bytes)
        reduce = cm.reduce_time_batch(chunk_elems, 2, itemsize)
        return cm.launch() + (world - 1) * (2 * hop + reduce)


def _tree_rounds(world: int) -> List[Tuple[int, List[Tuple[int, int]]]]:
    """Binomial-tree reduce rounds: (distance, [(sender, receiver), ...])."""
    rounds = []
    d = 1
    while d < world:
        sends = [(r, r - d) for r in range(world) if r % (2 * d) == d]
        rounds.append((d, sends))
        d *= 2
    return rounds


class TreeAllReduce(AllReduceAlgorithm):
    """Binomial tree: ``ceil(log2 p)`` full-buffer reduce hops to rank 0,
    then the mirrored broadcast back down — latency-optimal for small
    payloads, ``log2(p)`` times the ring's bytes for large ones."""

    name = "tree"
    summary = ("binomial reduce-to-root + broadcast, 2*ceil(log2 p) "
               "full-buffer hops (latency-optimal for small payloads)")

    def des_run(self, lib, topo, nbytes, n_elems, itemsize):
        world = topo.world
        launch = lib._launch_delay()
        if launch:
            yield lib.sim.timeout(launch)

        def send_proc(src, dst):
            yield lib._route(src, dst, nbytes)

        rounds = _tree_rounds(world)
        for _d, sends in rounds:                    # reduce to rank 0
            yield from lib._run_ranks(send_proc(s, t) for s, t in sends)
            reduce = lib._reduce_time(sends[0][1], n_elems, 2, itemsize)
            if reduce:
                yield lib.sim.timeout(reduce)
        for _d, sends in reversed(rounds):          # broadcast back down
            yield from lib._run_ranks(send_proc(t, s) for s, t in sends)

    def analytic_time(self, cm, topo, nbytes, n_elems, itemsize):
        world = topo.world
        if world == 1:
            return cm.launch()
        reduce = cm.reduce_time(n_elems, 2, itemsize)
        total = cm.launch()
        for _d, sends in _tree_rounds(world):
            hop = _route_max(cm, topo, sends, nbytes)
            total += 2 * hop + reduce   # the broadcast mirrors each round
        return total

    def analytic_time_batch(self, cm, topo, nbytes, n_elems, itemsize):
        world = topo.world
        if world == 1:
            return np.full(len(nbytes), cm.launch())
        reduce = cm.reduce_time_batch(n_elems, 2, itemsize)
        total = cm.launch()
        for _d, sends in _tree_rounds(world):
            hop = _route_max_batch(cm, topo, sends, nbytes)
            total = total + (2 * hop + reduce)
        return total


class HierarchicalAllReduce(AllReduceAlgorithm):
    """Two-stage schedule for multi-GPU nodes behind one shared NIC:
    reduce onto each node's leader over the fabric, ring-AllReduce the
    leaders across the network, broadcast back over the fabric.  The NIC
    carries one rank's worth of traffic instead of ``gpus_per_node``.

    Degenerate shapes collapse to the flat schedules: one node ->
    ``direct``; one GPU per node (no fabric peers to stage over) ->
    ``ring``.
    """

    name = "hier"
    summary = ("fabric reduce to node leaders, leader ring across the "
               "NIC, fabric broadcast (multi-GPU nodes)")

    def des_run(self, lib, topo, nbytes, n_elems, itemsize):
        if topo.num_nodes == 1:
            yield from DIRECT.des_run(lib, topo, nbytes, n_elems, itemsize)
            return
        if topo.gpus_per_node == 1:
            yield from RING.des_run(lib, topo, nbytes, n_elems, itemsize)
            return
        launch = lib._launch_delay()
        if launch:
            yield lib.sim.timeout(launch)

        # Stage 1 — reduce onto each node's leader over dedicated links.
        def gather_proc(r):
            yield lib._route(r, topo.leader_of(r), nbytes)

        yield from lib._run_ranks(
            gather_proc(r) for r in range(topo.world)
            if r != topo.leader_of(r))
        yield lib.sim.timeout(lib._reduce_time(
            0, n_elems, topo.gpus_per_node, itemsize))

        # Stage 2 — ring AllReduce among the node leaders over the NIC.
        leaders = topo.leaders()
        chunk_bytes, chunk_elems = _chunked(nbytes, n_elems, topo.num_nodes)
        for phase in range(2):
            for _ in range(topo.num_nodes - 1):
                def leader_proc(i, reduce_phase=(phase == 0)):
                    yield lib._route(leaders[i],
                                     leaders[(i + 1) % len(leaders)],
                                     chunk_bytes)
                    if reduce_phase:
                        yield lib.sim.timeout(lib._reduce_time(
                            leaders[i], chunk_elems, 2, itemsize))
                yield from lib._run_ranks(leader_proc(i)
                                          for i in range(len(leaders)))

        # Stage 3 — broadcast the result back over the fabric.
        def bcast_proc(r):
            yield lib.sim.all_of([lib._route(r, p, nbytes)
                                  for p in topo.local_peers(r)])

        yield from lib._run_ranks(bcast_proc(r) for r in leaders)

    def analytic_time(self, cm, topo, nbytes, n_elems, itemsize):
        if topo.num_nodes == 1:
            return DIRECT.analytic_time(cm, topo, nbytes, n_elems, itemsize)
        if topo.gpus_per_node == 1:
            return RING.analytic_time(cm, topo, nbytes, n_elems, itemsize)
        fabric_hop = cm.blit_route_time(nbytes, remote_node=False)
        total = (cm.launch() + fabric_hop
                 + cm.reduce_time(n_elems, topo.gpus_per_node, itemsize))
        chunk_bytes, chunk_elems = _chunked(nbytes, n_elems, topo.num_nodes)
        hop = cm.blit_route_time(chunk_bytes, remote_node=True)
        reduce = cm.reduce_time(chunk_elems, 2, itemsize)
        total += (topo.num_nodes - 1) * (2 * hop + reduce)
        return total + fabric_hop

    def analytic_time_batch(self, cm, topo, nbytes, n_elems, itemsize):
        if topo.num_nodes == 1:
            return DIRECT.analytic_time_batch(cm, topo, nbytes, n_elems,
                                              itemsize)
        if topo.gpus_per_node == 1:
            return RING.analytic_time_batch(cm, topo, nbytes, n_elems,
                                            itemsize)
        fabric_hop = cm.blit_route_time_batch(nbytes, remote_node=False)
        total = (cm.launch() + fabric_hop
                 + cm.reduce_time_batch(n_elems, topo.gpus_per_node,
                                        itemsize))
        chunk_bytes = nbytes / topo.num_nodes
        chunk_elems = np.maximum(1, n_elems // topo.num_nodes)
        hop = cm.blit_route_time_batch(chunk_bytes, remote_node=True)
        reduce = cm.reduce_time_batch(chunk_elems, 2, itemsize)
        total = total + (topo.num_nodes - 1) * (2 * hop + reduce)
        return total + fabric_hop


DIRECT = register_allreduce(DirectAllReduce())
RING = register_allreduce(RingAllReduce())
TREE = register_allreduce(TreeAllReduce())
HIER = register_allreduce(HierarchicalAllReduce())
