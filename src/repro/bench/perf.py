"""Host-performance reporting for the simulation core.

The figure benchmarks measure *simulated* time, which is deterministic; this
module is about *host* wall-clock — how fast the engine chews through events.
``benchmarks/test_perf_engine.py`` measures the raw engine and the
persistent-kernel runtime and emits ``BENCH_engine.json`` at the repo root,
so the host-performance trajectory is tracked PR over PR alongside the
simulated results.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = ["time_call", "write_bench_report"]


def time_call(fn: Callable[..., Any], repeats: int = 1,
              setup: Optional[Callable[[], Any]] = None
              ) -> Tuple[Any, float]:
    """Time ``fn``; return ``(result, wall_seconds)``.

    With ``repeats > 1`` the call is repeated and the **best** (minimum)
    wall time is reported — the standard noise-rejection estimator for
    deterministic work, since scheduling jitter and cache cold-starts
    only ever add time.  The returned result is from the first call.

    ``setup``, if given, runs *untimed* before each repeat and its return
    value is passed to ``fn`` — use it to rebuild consumable state (a
    fresh simulator, a task list) without polluting the measurement.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    out = None
    best = float("inf")
    for i in range(repeats):
        if setup is not None:
            state = setup()
            t0 = time.perf_counter()
            this = fn(state)
        else:
            t0 = time.perf_counter()
            this = fn()
        elapsed = time.perf_counter() - t0
        if i == 0:
            out = this
        best = min(best, elapsed)
    return out, best


def write_bench_report(path, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Write a host-performance report as stable, diffable JSON."""
    data = {
        "schema": "repro.bench.engine/v1",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
    }
    data.update(payload)
    with open(path, "w") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")
    return data
