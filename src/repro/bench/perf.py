"""Host-performance reporting for the simulation core.

The figure benchmarks measure *simulated* time, which is deterministic; this
module is about *host* wall-clock — how fast the engine chews through events.
``benchmarks/test_perf_engine.py`` measures the raw engine and the
persistent-kernel runtime and emits ``BENCH_engine.json`` at the repo root,
so the host-performance trajectory is tracked PR over PR alongside the
simulated results.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Any, Callable, Dict, Tuple

__all__ = ["time_call", "write_bench_report"]


def time_call(fn: Callable[[], Any]) -> Tuple[Any, float]:
    """Run ``fn`` once; return ``(result, wall_seconds)``."""
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def write_bench_report(path, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Write a host-performance report as stable, diffable JSON."""
    data = {
        "schema": "repro.bench.engine/v1",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
    }
    data.update(payload)
    with open(path, "w") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")
    return data
