"""Experiment harness: paired fused/baseline runs and result tables.

Every figure regeneration boils down to: build a fresh simulated cluster,
run the fused operator, build another, run the baseline, and report the
normalized execution time — the paper's y-axis.  :class:`FigureResult`
carries the series plus the paper's reported aggregate for side-by-side
comparison in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..fused.base import OpHarness
from ..sim import TraceRecorder

__all__ = ["Row", "FigureResult", "compare"]


@dataclass(frozen=True)
class Row:
    """One configuration's outcome."""

    label: str
    fused_time: float
    baseline_time: float

    @property
    def normalized(self) -> float:
        return self.fused_time / self.baseline_time


@dataclass
class FigureResult:
    """A regenerated table/figure."""

    figure: str
    description: str
    rows: List[Row] = field(default_factory=list)
    paper_mean: Optional[float] = None    #: paper's average normalized time
    paper_best: Optional[float] = None    #: paper's best (lowest) value
    extra: Dict = field(default_factory=dict)

    def add(self, row: Row) -> None:
        self.rows.append(row)

    @property
    def mean_normalized(self) -> float:
        if not self.rows:
            raise ValueError("no rows")
        return sum(r.normalized for r in self.rows) / len(self.rows)

    @property
    def best_normalized(self) -> float:
        return min(r.normalized for r in self.rows)

    def render(self) -> str:
        """Human-readable table, matching the paper's figure semantics."""
        lines = [f"== {self.figure}: {self.description} =="]
        width = max((len(r.label) for r in self.rows), default=8)
        if self.rows:
            lines.append(f"{'config':<{width}}  {'fused':>12}  "
                         f"{'baseline':>12}  {'normalized':>10}")
            for r in self.rows:
                lines.append(
                    f"{r.label:<{width}}  {r.fused_time * 1e3:>10.3f}ms  "
                    f"{r.baseline_time * 1e3:>10.3f}ms  {r.normalized:>10.3f}")
            lines.append(f"{'mean':<{width}}  {'':>12}  {'':>12}  "
                         f"{self.mean_normalized:>10.3f}")
        if self.paper_mean is not None:
            lines.append(f"paper reports: mean {self.paper_mean:.2f}"
                         + (f", best {self.paper_best:.2f}"
                            if self.paper_best is not None else ""))
        for k, v in self.extra.items():
            lines.append(f"{k}: {v}")
        return "\n".join(lines)

    def summary(self) -> Dict[str, float]:
        """Machine-readable aggregates (attached to benchmark extra_info)."""
        out = {
            "mean_normalized": round(self.mean_normalized, 4),
            "best_normalized": round(self.best_normalized, 4),
        }
        if self.paper_mean is not None:
            out["paper_mean"] = self.paper_mean
        if self.paper_best is not None:
            out["paper_best"] = self.paper_best
        return out

    def to_json_dict(self) -> Dict:
        """Full machine-readable export (the experiment store's payload).

        Everything needed to reconstruct the figure: rows with exact
        (unrounded) times, paper aggregates, and the ``extra`` mapping.
        ``extra`` values must be JSON-representable — true for every
        figure this package produces.
        """
        return {
            "schema": "repro.bench.figure/v1",
            "figure": self.figure,
            "description": self.description,
            "rows": [
                {"label": r.label, "fused_time": r.fused_time,
                 "baseline_time": r.baseline_time}
                for r in self.rows
            ],
            "paper_mean": self.paper_mean,
            "paper_best": self.paper_best,
            "extra": dict(self.extra),
        }

    def to_json(self) -> str:
        """Stable JSON string form of :meth:`to_json_dict`."""
        import json
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json_dict(cls, payload: Dict) -> "FigureResult":
        """Inverse of :meth:`to_json_dict` (round-trips exactly)."""
        res = cls(figure=payload["figure"],
                  description=payload["description"],
                  paper_mean=payload.get("paper_mean"),
                  paper_best=payload.get("paper_best"),
                  extra=dict(payload.get("extra", {})))
        for row in payload.get("rows", ()):
            res.add(Row(label=row["label"], fused_time=row["fused_time"],
                        baseline_time=row["baseline_time"]))
        return res


def compare(label: str, fused_factory: Callable, baseline_factory: Callable,
            num_nodes: int, gpus_per_node: int,
            trace: Optional[TraceRecorder] = None,
            platform=None) -> Row:
    """Run one fused/baseline pair on fresh clusters; return the row.

    The factories receive the :class:`OpHarness` and return the operator
    instance to run.  ``platform`` selects the hardware for both runs
    (anything :func:`repro.hw.platform.get_platform` resolves; default:
    the calibrated MI210).
    """
    h1 = OpHarness(num_nodes=num_nodes, gpus_per_node=gpus_per_node,
                   trace=trace, platform=platform)
    fused = h1.run(fused_factory(h1))
    h2 = OpHarness(num_nodes=num_nodes, gpus_per_node=gpus_per_node,
                   platform=platform)
    base = h2.run(baseline_factory(h2))
    return Row(label=label, fused_time=fused.elapsed,
               baseline_time=base.elapsed)
