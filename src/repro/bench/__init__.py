"""Benchmark harness: regenerates every table and figure of the paper."""

from .figures import (
    fig8_embedding_a2a_intranode,
    fig9_gemv_allreduce,
    fig10_gemm_a2a,
    fig11_wg_timeline,
    fig12_embedding_a2a_internode,
    fig13_occupancy_sweep,
    fig14_scheduling_skew,
    fig15_scaleout,
    table1_setup,
    table2_setup,
)
from .harness import FigureResult, Row, compare
from .perf import time_call, write_bench_report

__all__ = [
    "FigureResult",
    "Row",
    "compare",
    "fig8_embedding_a2a_intranode",
    "fig9_gemv_allreduce",
    "fig10_gemm_a2a",
    "fig11_wg_timeline",
    "fig12_embedding_a2a_internode",
    "fig13_occupancy_sweep",
    "fig14_scheduling_skew",
    "fig15_scaleout",
    "table1_setup",
    "table2_setup",
    "time_call",
    "write_bench_report",
]
