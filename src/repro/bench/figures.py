"""Per-figure experiment definitions — one function per paper table/figure.

Each function regenerates the corresponding evaluation artifact on the
simulated substrate and returns a :class:`~repro.bench.harness.FigureResult`
whose rows mirror the paper's x-axis configurations.  EXPERIMENTS.md records
the paper-vs-measured comparison produced from these.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..fused.base import OpHarness
from ..fused.embedding_alltoall import (
    BaselineEmbeddingAllToAll,
    EmbeddingA2AConfig,
    FusedEmbeddingAllToAll,
)
from ..fused.gemm_alltoall import (
    BaselineGemmAllToAll,
    FusedGemmAllToAll,
    GemmA2AConfig,
)
from ..fused.gemv_allreduce import (
    BaselineGemvAllReduce,
    FusedGemvAllReduce,
    GemvAllReduceConfig,
)
from ..astra import run_dlrm_scaleout, sweep_node_counts
from ..hw.platform import PlatformLike, get_platform, \
    max_occupancy_of_baseline
from ..models.configs import TABLE2_DLRM, TABLE2_TORUS
from ..sim import TraceRecorder
from .harness import FigureResult, Row, compare

__all__ = [
    "table1_setup",
    "table2_setup",
    "fig8_embedding_a2a_intranode",
    "fig9_gemv_allreduce",
    "fig10_gemm_a2a",
    "fig11_wg_timeline",
    "fig12_embedding_a2a_internode",
    "fig13_occupancy_sweep",
    "fig14_scheduling_skew",
    "fig15_scaleout",
]

#: Default sweep grids (paper configuration labels: {batch | tables/GPU}).
FIG8_GRID: Sequence[Tuple[int, int]] = (
    (512, 64), (512, 256), (1024, 64), (1024, 256),
    (2048, 64), (2048, 256), (4096, 64), (4096, 256),
)
FIG12_GRID: Sequence[Tuple[int, int]] = (
    (256, 64), (256, 256), (512, 256), (1024, 64), (1024, 256),
    (2048, 256), (4096, 64), (4096, 256),
)
FIG9_GRID: Sequence[Tuple[int, int]] = (
    (8192, 8192), (8192, 16384), (16384, 8192), (16384, 16384),
    (32768, 8192), (32768, 16384), (65536, 8192), (65536, 16384),
)
FIG10_GRID: Sequence[Tuple[int, int, int]] = (
    (2048, 4096, 8192), (4096, 4096, 8192), (8192, 4096, 8192),
    (4096, 4096, 14336), (8192, 4096, 14336),
)


def table1_setup(platform: PlatformLike = None) -> FigureResult:
    """Table I: the simulated system's configuration (per platform)."""
    p = get_platform(platform)
    gpu, link, nic = p.gpu, p.link, p.nic
    res = FigureResult("Table I", "System setup (simulated substrate)")
    res.extra.update({
        "GPU": f"{gpu.name} model: {gpu.num_cus} CUs, "
               f"{gpu.hbm_bandwidth / 1e12:.2f} TB/s HBM, "
               f"{gpu.fp32_flops / 1e12:.1f}/{gpu.fp16_flops / 1e12:.0f} "
               f"TFLOP/s fp32/fp16",
        "Scale-up": f"{p.gpus_per_node} GPUs fully connected, "
                    f"{link.bandwidth / 1e9:.0f} GB/s "
                    f"{link.name} per link",
        "Scale-out": f"2 nodes x1 GPU over {nic.bandwidth / 1e9:.0f} GB/s "
                     f"{nic.name}",
        "Software": "repro SHMEM-like GPU-initiated comm + RCCL-like "
                    "baseline collectives",
    })
    return res


def table2_setup() -> FigureResult:
    """Table II: scale-out simulation parameters."""
    res = FigureResult("Table II", "Scale-out simulation setup")
    res.extra.update({
        "Embedding dimension": TABLE2_DLRM.embedding_dim,
        "MLP layers": f"avg size {TABLE2_DLRM.mlp_avg_size}, "
                      f"#layers {TABLE2_DLRM.mlp_layers}",
        "Avg pooling size": TABLE2_DLRM.avg_pooling,
        "Topology": f"2D torus, "
                    f"{TABLE2_TORUS.link_bandwidth * 8 / 1e9:.0f} Gb/s "
                    f"links, {TABLE2_TORUS.link_latency * 1e9:.0f} ns",
    })
    return res


def _embedding_figure(grid, num_nodes, gpus_per_node, figure, description,
                      paper_mean, paper_best,
                      platform: PlatformLike = None) -> FigureResult:
    res = FigureResult(figure, description, paper_mean=paper_mean,
                       paper_best=paper_best)
    for batch, tables in grid:
        cfg = EmbeddingA2AConfig(global_batch=batch, tables_per_gpu=tables,
                                 functional=False)
        res.add(compare(
            cfg.label,
            lambda h, cfg=cfg: FusedEmbeddingAllToAll(h, cfg),
            lambda h, cfg=cfg: BaselineEmbeddingAllToAll(h, cfg),
            num_nodes=num_nodes, gpus_per_node=gpus_per_node,
            platform=platform))
    return res


def fig8_embedding_a2a_intranode(grid=FIG8_GRID,
                                 platform: PlatformLike = None
                                 ) -> FigureResult:
    """Fig. 8: zero-copy fused embedding + A2A, 4 GPUs intra-node."""
    return _embedding_figure(
        grid, num_nodes=1, gpus_per_node=4, figure="Fig. 8",
        description="Normalized execution time, intra-node embedding+A2A",
        paper_mean=0.80, paper_best=0.68, platform=platform)


def fig12_embedding_a2a_internode(grid=FIG12_GRID,
                                  platform: PlatformLike = None
                                  ) -> FigureResult:
    """Fig. 12: fused embedding + A2A across 2 IB-connected nodes."""
    return _embedding_figure(
        grid, num_nodes=2, gpus_per_node=1, figure="Fig. 12",
        description="Normalized execution time, inter-node embedding+A2A",
        paper_mean=0.69, paper_best=0.42, platform=platform)


def fig9_gemv_allreduce(grid=FIG9_GRID, world: int = 4,
                        platform: PlatformLike = None) -> FigureResult:
    """Fig. 9: zero-copy fused GEMV + AllReduce, 4 GPUs."""
    res = FigureResult("Fig. 9",
                       "Normalized execution time, GEMV+AllReduce",
                       paper_mean=0.87, paper_best=0.78)
    for m, n_total in grid:
        cfg = GemvAllReduceConfig(m=m, n_per_gpu=n_total // world,
                                  functional=False)
        res.add(compare(
            cfg.label,
            lambda h, cfg=cfg: FusedGemvAllReduce(h, cfg),
            lambda h, cfg=cfg: BaselineGemvAllReduce(h, cfg),
            num_nodes=1, gpus_per_node=world, platform=platform))
    return res


def fig10_gemm_a2a(grid=FIG10_GRID, world: int = 4,
                   platform: PlatformLike = None) -> FigureResult:
    """Fig. 10: fused GEMM + A2A (Triton extension), 4 GPUs."""
    res = FigureResult("Fig. 10",
                       "Normalized execution time, GEMM+All-to-All",
                       paper_mean=0.88, paper_best=0.80)
    for tokens, model_dim, ffn in grid:
        cfg = GemmA2AConfig(tokens=tokens, model_dim=model_dim, ffn_dim=ffn,
                            functional=False)
        res.add(compare(
            cfg.label,
            lambda h, cfg=cfg: FusedGemmAllToAll(h, cfg),
            lambda h, cfg=cfg: BaselineGemmAllToAll(h, cfg),
            num_nodes=1, gpus_per_node=world, platform=platform))
    return res


def fig11_wg_timeline(batch: int = 512, tables: int = 32,
                      wgs_per_slice: int = 16,
                      timeline_width: int = 100,
                      platform: PlatformLike = None) -> FigureResult:
    """Fig. 11: persistent-WG execution timeline with put-issue markers.

    The paper profiles batch 2048, tables/GPU 256, slices of 16 WGs on the
    2-node setup, showing non-blocking PUTs issued mid-kernel, mostly by
    the last WG of each 16-WG cluster, ahead of local-slice computation.
    The default here scales the batch/tables down (the timeline shape is
    size-independent) so the trace stays small; pass the paper's values to
    reproduce it at full size.
    """
    trace = TraceRecorder()
    cfg = EmbeddingA2AConfig(global_batch=batch, tables_per_gpu=tables,
                             functional=False, slice_vectors=wgs_per_slice,
                             tasks_per_slice=wgs_per_slice)
    h = OpHarness(num_nodes=2, gpus_per_node=1, trace=trace,
                  platform=platform)
    result = h.run(FusedEmbeddingAllToAll(h, cfg))

    res = FigureResult("Fig. 11",
                       "Profiled timeline of persistent WGs (node 0)")
    puts = trace.filter(kind="put_issue",
                        predicate=lambda e: e.actor.startswith("gpu0"))
    [kernel_span] = [s for s in trace.spans("kernel")
                     if s.detail.get("kernel") == "fused_emb_a2a[0]"]
    kspan = kernel_span.end - kernel_span.start
    first_put = min(p.time for p in puts) - kernel_span.start
    last_put = max(p.time for p in puts) - kernel_span.start
    res.extra.update({
        "kernel_time": f"{kspan * 1e3:.3f} ms",
        "puts_issued_node0": len(puts),
        "first_put_at": f"{100 * first_put / kspan:.1f}% of kernel",
        "last_put_at": f"{100 * last_put / kspan:.1f}% of kernel",
        "elapsed": f"{result.elapsed * 1e3:.3f} ms",
    })
    actors = [f"gpu0/wg{i}" for i in range(0, 32)]
    res.extra["timeline"] = "\n" + trace.render_timeline(
        actors=actors, width=timeline_width)
    return res


#: The paper's Fig. 13 x-axis (fractions of *baseline* occupancy; the
#: last point is the MI210 fused kernel's register-pressure maximum).
FIG13_FRACTIONS: Sequence[float] = (0.25, 0.375, 0.5, 0.625, 0.75, 0.875)


def occupancy_fractions_for(platform: PlatformLike,
                            fractions: Optional[Sequence[float]] = None
                            ) -> Sequence[float]:
    """Resolve a Fig. 13 fraction grid against a platform's fused maximum.

    ``None`` means the paper's default grid clipped to what the
    platform's derived fused footprint can actually reach (on the MI210
    the grid passes through unchanged).  Explicit fractions are the
    caller's responsibility and pass through untouched.
    """
    if fractions is not None:
        return fractions
    max_frac = max_occupancy_of_baseline(get_platform(platform).gpu)
    return tuple(f for f in FIG13_FRACTIONS if f <= max_frac + 1e-9)


def fig13_occupancy_sweep(batch: int = 1024, tables: int = 256,
                          fractions: Optional[Sequence[float]] = None,
                          platform: PlatformLike = None) -> FigureResult:
    """Fig. 13: fused-kernel execution time across occupancy settings.

    x-axis is occupancy relative to the *baseline* kernel; 87.5% is the
    fused kernel's register-pressure maximum on the calibrated MI210 (the
    derived footprint of other platforms differs, and the default grid
    clips to each platform's own maximum).
    """
    fractions = occupancy_fractions_for(platform, fractions)
    res = FigureResult("Fig. 13", "Impact of WG occupancy on execution time")
    times = {}
    for frac in fractions:
        cfg = EmbeddingA2AConfig(global_batch=batch, tables_per_gpu=tables,
                                 functional=False,
                                 occupancy_of_baseline=frac)
        h = OpHarness(num_nodes=2, gpus_per_node=1, platform=platform)
        times[frac] = h.run(FusedEmbeddingAllToAll(h, cfg)).elapsed
    t_max = max(times.values())
    for frac in fractions:
        # Report as "fused time at occupancy f" vs the worst point, the
        # paper's bar-chart semantics (relative execution time).
        res.add(Row(label=f"{100 * frac:.1f}%", fused_time=times[frac],
                    baseline_time=t_max))
    if 0.25 in times and 0.75 in times and 0.875 in times:
        res.extra["reduction_25_to_75"] = (
            f"{100 * (1 - times[0.75] / times[0.25]):.1f}% "
            f"(paper: 46%)")
        res.extra["increase_75_to_875"] = (
            f"{100 * (times[0.875] / times[0.75] - 1):.1f}% "
            f"(paper: 25%)")
    return res


def fig14_scheduling_skew(grid: Sequence[Tuple[int, int]] = (
        (1024, 64), (2048, 32), (2048, 64)),
        platform: PlatformLike = None) -> FigureResult:
    """Fig. 14: per-node completion skew, comm-aware vs oblivious."""
    res = FigureResult(
        "Fig. 14", "Node execution-time skew by scheduling policy")
    skews = {"comm_aware": [], "oblivious": []}
    for sched in ("comm_aware", "oblivious"):
        for batch, tables in grid:
            cfg = EmbeddingA2AConfig(global_batch=batch,
                                     tables_per_gpu=tables,
                                     functional=False, scheduler=sched)
            h = OpHarness(num_nodes=2, gpus_per_node=1, platform=platform)
            out = h.run(FusedEmbeddingAllToAll(h, cfg))
            ends = out.stats["rank_end_times"]
            skew = abs(ends[0] - ends[1]) / max(ends.values())
            skews[sched].append(skew)
            res.add(Row(label=f"{sched} {batch}|{tables}",
                        fused_time=ends[0], baseline_time=ends[1]))
    res.extra["avg_skew_comm_aware"] = (
        f"{100 * sum(skews['comm_aware']) / len(skews['comm_aware']):.2f}% "
        f"(paper: ~1%)")
    res.extra["avg_skew_oblivious"] = (
        f"{100 * sum(skews['oblivious']) / len(skews['oblivious']):.2f}% "
        f"(paper: ~7%)")
    res.extra["skews"] = skews
    return res


def fig15_scaleout(node_counts: Sequence[int] = (16, 32, 64, 128),
                   platform: PlatformLike = None) -> FigureResult:
    """Fig. 15: full DLRM training pass at scale (ASTRA-style)."""
    res = FigureResult(
        "Fig. 15", "Scale-out DLRM training, fused vs baseline",
        paper_mean=0.79)
    for r in sweep_node_counts(list(node_counts), platform=platform):
        res.add(Row(label=f"{r.num_nodes} nodes", fused_time=r.fused_time,
                    baseline_time=r.baseline_time))
    r128 = run_dlrm_scaleout(128, platform=platform)
    res.extra["reduction_128_nodes"] = (
        f"{r128.reduction_pct:.1f}% (paper: ~21%)")
    res.extra["baseline_exposed_a2a_128"] = (
        f"{100 * r128.exposed_a2a_fraction():.0f}% "
        f"(motivation claim: >35%)")
    return res
