"""minitorch: the PyTorch-integration surface for the fused operators."""

from .ops import (
    OPS,
    embedding_all_to_all_op,
    gemm_all_to_all_op,
    gemv_all_reduce_op,
    get_op,
    register_op,
)
from .symmetric import SymmetricTensor, to_symmetric
from .tensor import Device, Tensor, tensor

__all__ = [
    "Device",
    "OPS",
    "SymmetricTensor",
    "Tensor",
    "embedding_all_to_all_op",
    "gemm_all_to_all_op",
    "gemv_all_reduce_op",
    "get_op",
    "register_op",
    "tensor",
    "to_symmetric",
]
