"""Registered fused operators (the paper's second PyTorch addition).

The paper exposes each fused kernel "as a new operator within PyTorch to be
transparently used by developers" — e.g. ``torch.embeddingAll2AllOp()``.
This module provides that operator registry: named entry points that hide
the persistent-kernel + GPU-initiated-communication machinery behind a
one-call API returning output tensors and the simulated execution time.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from ...fused.base import OpHarness
from ...fused.embedding_alltoall import (
    BaselineEmbeddingAllToAll,
    EmbeddingA2AConfig,
    FusedEmbeddingAllToAll,
)
from ...fused.gemm_alltoall import (
    BaselineGemmAllToAll,
    FusedGemmAllToAll,
    GemmA2AConfig,
)
from ...fused.gemv_allreduce import (
    BaselineGemvAllReduce,
    FusedGemvAllReduce,
    GemvAllReduceConfig,
)
from .tensor import Tensor

__all__ = ["OPS", "register_op", "get_op", "embedding_all_to_all_op",
           "gemv_all_reduce_op", "gemm_all_to_all_op"]

OPS: Dict[str, Callable] = {}


def register_op(name: str):
    """Register a fused operator under a torch-style name."""

    def deco(fn):
        if name in OPS:
            raise ValueError(f"operator {name!r} already registered")
        OPS[name] = fn
        return fn

    return deco


def get_op(name: str) -> Callable:
    try:
        return OPS[name]
    except KeyError:
        raise KeyError(f"unknown operator {name!r}; registered: "
                       f"{sorted(OPS)}") from None


def _wrap_outputs(outputs) -> List[Tensor]:
    return [Tensor(np.asarray(o), f"gpu:{r}")
            for r, o in enumerate(outputs)]


@register_op("embeddingAll2AllOp")
def embedding_all_to_all_op(cfg: EmbeddingA2AConfig, *, num_nodes: int = 1,
                            gpus_per_node: int = 4,
                            fused: bool = True) -> Tuple[List[Tensor], float]:
    """Fused embedding pooling + All-to-All as a framework operator.

    Returns ``(per-rank output tensors, simulated seconds)``.
    ``fused=False`` runs the bulk-synchronous baseline instead (for
    drop-in comparisons).
    """
    harness = OpHarness(num_nodes=num_nodes, gpus_per_node=gpus_per_node)
    op_cls = FusedEmbeddingAllToAll if fused else BaselineEmbeddingAllToAll
    result = harness.run(op_cls(harness, cfg))
    outs = _wrap_outputs(result.outputs) if result.outputs else []
    return outs, result.elapsed


@register_op("gemvAllReduceOp")
def gemv_all_reduce_op(cfg: GemvAllReduceConfig, *, gpus_per_node: int = 4,
                       fused: bool = True) -> Tuple[List[Tensor], float]:
    """Fused GEMV + AllReduce as a framework operator (scale-up only)."""
    harness = OpHarness(num_nodes=1, gpus_per_node=gpus_per_node)
    op_cls = FusedGemvAllReduce if fused else BaselineGemvAllReduce
    result = harness.run(op_cls(harness, cfg))
    outs = _wrap_outputs(result.outputs) if result.outputs else []
    return outs, result.elapsed


@register_op("gemmAll2AllOp")
def gemm_all_to_all_op(cfg: GemmA2AConfig, *, gpus_per_node: int = 4,
                       fused: bool = True) -> Tuple[List[Tensor], float]:
    """Fused GEMM + All-to-All (Triton extension) as a framework operator."""
    harness = OpHarness(num_nodes=1, gpus_per_node=gpus_per_node)
    op_cls = FusedGemmAllToAll if fused else BaselineGemmAllToAll
    result = harness.run(op_cls(harness, cfg))
    outs = _wrap_outputs(result.outputs) if result.outputs else []
    return outs, result.elapsed
