"""Symmetric-heap tensor API (the paper's first PyTorch addition).

``to_symmetric`` mirrors the paper's "new API for allocating device memory
in the symmetric heap and moving a tensor from the CPU's host memory to the
allocated device memory (similar to the existing ``torch.tensor.to()``
API)".  The returned :class:`SymmetricTensor` is NIC/fabric-registered by
construction (it lives on the communicator's symmetric heap), so fused
operators can target it with GPU-initiated puts.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ...comm.runtime import Communicator
from ...comm.symheap import SymmetricBuffer
from .tensor import Device, Tensor

__all__ = ["SymmetricTensor", "to_symmetric"]


class SymmetricTensor:
    """A tensor allocated at the same offset on every rank."""

    def __init__(self, buf: SymmetricBuffer, comm: Communicator):
        self.buf = buf
        self.comm = comm

    @property
    def shape(self):
        return self.buf.shape

    @property
    def dtype(self):
        return self.buf.dtype

    @property
    def world_size(self) -> int:
        return self.buf.world_size

    def on(self, rank: int) -> Tensor:
        """This allocation's instance on ``rank`` (shared storage)."""
        return Tensor(self.buf.local(rank), Device("gpu", rank))

    def numpy(self, rank: int) -> np.ndarray:
        return self.buf.local(rank)

    def free(self) -> None:
        self.buf.free()

    def __repr__(self) -> str:
        return (f"SymmetricTensor(shape={self.shape}, "
                f"dtype={self.dtype.name}, world={self.world_size})")


def to_symmetric(t: Union[Tensor, np.ndarray], comm: Communicator,
                 rank: int = 0) -> SymmetricTensor:
    """Allocate symmetric device memory and copy a host tensor into it.

    The payload lands on ``rank``'s instance; peers start zeroed (they are
    typically communication destinations).
    """
    data = t.numpy() if isinstance(t, Tensor) else np.asarray(t)
    buf = comm.alloc(data.shape, data.dtype)
    buf.local(rank)[...] = data
    return SymmetricTensor(buf, comm)
