"""Minimal PyTorch-like tensor for the framework-integration layer.

The paper integrates its fused operators into PyTorch by adding (1) an API
that allocates device memory on the symmetric heap and moves host tensors
into it, and (2) operator entry points (``torch.embeddingAll2AllOp()``-
style).  :class:`Tensor` provides just enough of the torch surface — data,
device placement, a ``.to()`` method — for that integration to be expressed
and tested faithfully.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

__all__ = ["Tensor", "Device", "tensor"]


class Device:
    """A placement: host CPU or a simulated GPU rank."""

    def __init__(self, kind: str, index: Optional[int] = None):
        if kind not in ("cpu", "gpu"):
            raise ValueError(f"unknown device kind {kind!r}")
        if kind == "gpu" and (index is None or index < 0):
            raise ValueError("gpu device needs a non-negative index")
        self.kind = kind
        self.index = index

    @classmethod
    def parse(cls, spec: Union[str, "Device"]) -> "Device":
        if isinstance(spec, Device):
            return spec
        if spec == "cpu":
            return cls("cpu")
        if spec.startswith("gpu:"):
            return cls("gpu", int(spec.split(":", 1)[1]))
        raise ValueError(f"cannot parse device {spec!r}")

    def __eq__(self, other) -> bool:
        return (isinstance(other, Device) and self.kind == other.kind
                and self.index == other.index)

    def __hash__(self):
        return hash((self.kind, self.index))

    def __repr__(self) -> str:
        return self.kind if self.kind == "cpu" else f"gpu:{self.index}"


class Tensor:
    """A NumPy-backed tensor with device placement."""

    def __init__(self, data: np.ndarray, device: Union[str, Device] = "cpu"):
        self._data = np.asarray(data)
        self.device = Device.parse(device)

    # -- torch-like surface -----------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self._data.shape

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    @property
    def ndim(self) -> int:
        return self._data.ndim

    def numpy(self) -> np.ndarray:
        """Host view of the data (torch's ``.cpu().numpy()``)."""
        return self._data

    def to(self, device: Union[str, Device]) -> "Tensor":
        """Move to a device (copy semantics, like torch)."""
        return Tensor(self._data.copy(), Device.parse(device))

    def clone(self) -> "Tensor":
        return Tensor(self._data.copy(), self.device)

    # -- arithmetic ----------------------------------------------------------
    def _coerce(self, other):
        return other._data if isinstance(other, Tensor) else other

    def __add__(self, other):
        return Tensor(self._data + self._coerce(other), self.device)

    def __sub__(self, other):
        return Tensor(self._data - self._coerce(other), self.device)

    def __mul__(self, other):
        return Tensor(self._data * self._coerce(other), self.device)

    def __matmul__(self, other):
        return Tensor(self._data @ self._coerce(other), self.device)

    def __getitem__(self, idx):
        return Tensor(self._data[idx], self.device)

    def __repr__(self) -> str:
        return (f"Tensor(shape={self.shape}, dtype={self.dtype.name}, "
                f"device={self.device})")


def tensor(data, device: Union[str, Device] = "cpu",
           dtype=None) -> Tensor:
    """Factory mirroring ``torch.tensor``."""
    arr = np.asarray(data, dtype=dtype)
    return Tensor(arr, device)
