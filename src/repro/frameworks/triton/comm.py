"""Communication actions queued by ``tl.comm`` and issued by the runtime.

The paper extends Triton with "the necessary communication primitives to
develop custom fused kernels" (a Python wrapper over ROC_SHMEM's scale-up
APIs).  Here the primitives compile to the same :class:`repro.comm.shmem`
operations the hand-written fused kernels use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

import numpy as np

from ...comm.shmem import FlagArray, ShmemContext

__all__ = ["PutTile", "Signal", "issue_actions"]


@dataclass
class PutTile:
    """Direct store of a computed tile into a peer rank's symmetric buffer."""

    symbuf: Any            #: SymmetricBuffer (or None in timing-only mode)
    value: np.ndarray
    dst_rank: int
    index: Any
    wire_bytes: float = None  #: override payload size (dtype narrowing)

    def nbytes(self) -> float:
        return float(self.wire_bytes if self.wire_bytes is not None
                     else self.value.nbytes)


@dataclass
class Signal:
    """Set a flag on a peer, optionally fenced behind this WG's puts."""

    flags: FlagArray
    dst_rank: int
    flag_idx: int
    after_all_puts: bool = True


def issue_actions(ctx: ShmemContext, actions: List,
                  pending_by_dst: dict) -> None:
    """Issue a program instance's queued comm actions through SHMEM.

    Puts are non-blocking.  A :class:`Signal` with ``after_all_puts`` is
    chained behind every put previously issued to the same destination
    (the PUT / fence / flag-PUT idiom); ``pending_by_dst`` carries the
    outstanding put events across program instances of the same kernel.
    """
    sim = ctx.sim
    for act in actions:
        if isinstance(act, PutTile):
            if act.symbuf is not None:
                act.symbuf.local(act.dst_rank)[act.index] = act.value
            ev = ctx.put_bytes(act.dst_rank, act.nbytes())
            pending_by_dst.setdefault(act.dst_rank, []).append(ev)
        elif isinstance(act, Signal):
            def fire(flags=act.flags, dst=act.dst_rank, idx=act.flag_idx):
                flag_ev = ctx.put_bytes(dst, 8.0)
                flag_ev.add_callback(lambda _e: flags.set(dst, idx))

            if act.after_all_puts:
                evs = [e for e in pending_by_dst.get(act.dst_rank, [])
                       if not e.processed]
                sim.all_of(evs).add_callback(lambda _e, f=fire: f())
            else:
                fire()
        else:
            raise TypeError(f"unknown comm action {act!r}")
