"""Mini-Triton tile language (`tl`).

A small, NumPy-backed subset of Triton's tile language, sufficient to write
blocked GEMM-style kernels the way Triton users do::

    @jit
    def kernel(A, B, Out, K, BLOCK_M, BLOCK_N):
        pid_m = tl.program_id(0)
        pid_n = tl.program_id(1)
        a = tl.load(A, rows=(pid_m * BLOCK_M, BLOCK_M))
        b = tl.load(B, cols=(pid_n * BLOCK_N, BLOCK_N))
        acc = tl.dot(a, b)
        tl.comm.put_tile(Out, acc, ...)        # the paper's extension

Each *program instance* executes against a :class:`TileContext` that (a)
performs the functional NumPy computation, (b) records the FLOPs and HBM
bytes the instance generated (used to cross-check the analytic cost models),
and (c) queues communication actions (see :mod:`repro.frameworks.triton.comm`)
for the simulated runtime to issue when the instance's compute time elapses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["TileContext", "program_id", "num_programs", "zeros", "full",
           "arange", "load", "store", "dot", "maximum", "where", "comm"]


class TritonError(RuntimeError):
    """Misuse of the tile language (e.g. ops outside a program instance)."""


@dataclass
class TileContext:
    """State of one executing program instance."""

    grid: Tuple[int, ...]
    grid_pos: Tuple[int, ...]
    flops: float = 0.0
    bytes: float = 0.0
    comm_actions: List = field(default_factory=list)
    comm_handle: Optional[object] = None  #: set by the runtime

    def axis(self, i: int) -> int:
        if not (0 <= i < len(self.grid)):
            raise TritonError(f"program_id axis {i} out of range for "
                              f"{len(self.grid)}-D grid")
        return self.grid_pos[i]


_STACK: List[TileContext] = []


def _ctx() -> TileContext:
    if not _STACK:
        raise TritonError(
            "tile-language op used outside a kernel program instance")
    return _STACK[-1]


def push_context(ctx: TileContext) -> None:
    _STACK.append(ctx)


def pop_context() -> TileContext:
    return _STACK.pop()


# ---------------------------------------------------------------------------
# Index / creation ops
# ---------------------------------------------------------------------------

def program_id(axis: int) -> int:
    """This instance's coordinate along a grid axis."""
    return _ctx().axis(axis)


def num_programs(axis: int) -> int:
    """Grid extent along an axis."""
    ctx = _ctx()
    if not (0 <= axis < len(ctx.grid)):
        raise TritonError(f"axis {axis} out of range")
    return ctx.grid[axis]


def zeros(shape, dtype=np.float32) -> np.ndarray:
    return np.zeros(shape, dtype=dtype)


def full(shape, value, dtype=np.float32) -> np.ndarray:
    return np.full(shape, value, dtype=dtype)


def arange(start: int, end: int) -> np.ndarray:
    if end <= start:
        raise TritonError(f"arange({start}, {end}) is empty")
    return np.arange(start, end)


# ---------------------------------------------------------------------------
# Memory ops (recorded)
# ---------------------------------------------------------------------------

def _resolve(tensor: np.ndarray, rows, cols) -> Tuple[slice, slice]:
    def to_slice(spec, extent):
        if spec is None:
            return slice(0, extent)
        off, length = spec
        if off < 0 or off + length > extent:
            raise TritonError(
                f"block [{off}, {off + length}) out of bounds for extent "
                f"{extent}")
        return slice(off, off + length)

    if tensor.ndim != 2:
        raise TritonError(f"load/store expect 2-D tensors, got {tensor.ndim}-D")
    return to_slice(rows, tensor.shape[0]), to_slice(cols, tensor.shape[1])


def load(tensor: np.ndarray, rows=None, cols=None) -> np.ndarray:
    """Load a ``(rows, cols)`` block; records the HBM read traffic."""
    r, c = _resolve(tensor, rows, cols)
    block = tensor[r, c]
    _ctx().bytes += block.nbytes
    return block.copy()


def store(tensor: np.ndarray, value: np.ndarray, rows=None, cols=None) -> None:
    """Store a block; records the HBM write traffic."""
    r, c = _resolve(tensor, rows, cols)
    if tensor[r, c].shape != value.shape:
        raise TritonError(
            f"store shape mismatch: block {tensor[r, c].shape} vs value "
            f"{value.shape}")
    tensor[r, c] = value
    _ctx().bytes += value.nbytes


# ---------------------------------------------------------------------------
# Compute ops (recorded)
# ---------------------------------------------------------------------------

def dot(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Tile matmul; records ``2 * m * n * k`` FLOPs."""
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise TritonError(f"dot shape mismatch: {a.shape} @ {b.shape}")
    _ctx().flops += 2.0 * a.shape[0] * a.shape[1] * b.shape[1]
    return a @ b


def maximum(a, b) -> np.ndarray:
    out = np.maximum(a, b)
    _ctx().flops += float(np.size(out))
    return out


def where(cond, a, b) -> np.ndarray:
    out = np.where(cond, a, b)
    _ctx().flops += float(np.size(out))
    return out


# ---------------------------------------------------------------------------
# Communication extension (the paper's contribution to Triton)
# ---------------------------------------------------------------------------

class _CommNamespace:
    """``tl.comm`` — GPU-initiated communication primitives.

    These do not move data immediately: they queue
    :class:`~repro.frameworks.triton.comm.PutTile` /
    :class:`~repro.frameworks.triton.comm.Signal` actions that the
    simulated runtime issues when this program instance's compute time has
    elapsed (matching intra-kernel GPU-initiated semantics: the stores
    leave the WG as it finishes its tile).
    """

    def put_tile(self, symbuf, value: np.ndarray, dst_rank: int,
                 index, wire_bytes: float = None) -> None:
        from .comm import PutTile
        _ctx().comm_actions.append(
            PutTile(symbuf=symbuf, value=np.asarray(value),
                    dst_rank=dst_rank, index=index, wire_bytes=wire_bytes))

    def signal(self, flags, dst_rank: int, flag_idx: int,
               after_all_puts: bool = True) -> None:
        from .comm import Signal
        _ctx().comm_actions.append(
            Signal(flags=flags, dst_rank=dst_rank, flag_idx=flag_idx,
                   after_all_puts=after_all_puts))


comm = _CommNamespace()
