"""Mini-Triton "compiler": turns tile programs into simulated kernel tasks.

Real Triton JIT-compiles a tile program per grid instance; here each grid
instance becomes one :class:`~repro.kernels.WgTask` executed by the
persistent-kernel runtime on the simulated GPU:

* the instance's *functional* effect runs in NumPy when the task executes,
* its *cost* is the analytic per-tile cost supplied by the caller (the
  recorded FLOPs/bytes from execution are kept alongside so tests can
  cross-check the two),
* its queued ``tl.comm`` actions are issued by the task's completion hook —
  non-blocking puts plus fenced flag signals, exactly like the hand-written
  fused kernels.

``JitFunction.interpret`` also provides Triton's CPU interpreter mode: run
the whole grid eagerly (no simulator), returning the recorded cost — used
for unit-testing tile programs in isolation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ...comm.shmem import ShmemContext
from ...hw.gpu import WgCost
from ...kernels.grid import WgTask
from . import language as tl_mod
from .comm import issue_actions
from .language import TileContext

__all__ = ["jit", "JitFunction", "build_tasks", "LaunchReport"]


class JitFunction:
    """A tile program wrapped for grid execution."""

    def __init__(self, fn: Callable):
        self.fn = fn
        self.__name__ = getattr(fn, "__name__", "kernel")
        self.__doc__ = fn.__doc__

    def run_instance(self, grid: Tuple[int, ...], pos: Tuple[int, ...],
                     *args, **kwargs) -> TileContext:
        """Execute one program instance; returns its context (cost, comm)."""
        ctx = TileContext(grid=tuple(grid), grid_pos=tuple(pos))
        tl_mod.push_context(ctx)
        try:
            self.fn(*args, **kwargs)
        finally:
            tl_mod.pop_context()
        return ctx

    def interpret(self, grid: Sequence[int], *args, **kwargs) -> "LaunchReport":
        """CPU interpreter mode: run every instance eagerly, apply comm
        actions' functional effects immediately, aggregate the cost."""
        report = LaunchReport()
        for pos in itertools.product(*(range(g) for g in grid)):
            ctx = self.run_instance(tuple(grid), pos, *args, **kwargs)
            report.add(pos, ctx)
            for act in ctx.comm_actions:
                from .comm import PutTile
                if isinstance(act, PutTile) and act.symbuf is not None:
                    act.symbuf.local(act.dst_rank)[act.index] = act.value
        return report

    def __call__(self, *args, **kwargs):
        raise TypeError(
            f"tile program {self.__name__!r} cannot be called directly; use "
            f".interpret(grid, ...) or build_tasks(...) for a simulated "
            f"launch")


def jit(fn: Callable) -> JitFunction:
    """Decorator: mark a function as a tile program."""
    return JitFunction(fn)


@dataclass
class LaunchReport:
    """Aggregated recorded cost of a grid execution."""

    flops: float = 0.0
    bytes: float = 0.0
    instances: int = 0
    per_instance: Dict[Tuple[int, ...], Tuple[float, float]] = field(
        default_factory=dict)

    def add(self, pos, ctx: TileContext) -> None:
        self.flops += ctx.flops
        self.bytes += ctx.bytes
        self.instances += 1
        self.per_instance[tuple(pos)] = (ctx.flops, ctx.bytes)


def build_tasks(kernel: JitFunction, grid: Sequence[int], args: tuple,
                *, cost: WgCost, shmem_ctx: ShmemContext,
                meta_fn: Optional[Callable[[Tuple[int, ...]], dict]] = None,
                report: Optional[LaunchReport] = None,
                kwargs: Optional[dict] = None) -> List[WgTask]:
    """Compile a grid launch into persistent-kernel tasks.

    Args:
        cost: analytic per-instance :class:`WgCost` (drives timing).
        shmem_ctx: this rank's SHMEM context for the comm actions.
        meta_fn: optional ``grid_pos -> meta dict`` (e.g. remote/dest tags
            consumed by the communication-aware scheduler).
        report: optional :class:`LaunchReport` filled as instances execute.
        kwargs: extra keyword arguments for the tile program.
    """
    kwargs = kwargs or {}
    spec = shmem_ctx.gpu.spec
    pending_by_dst: dict = {}
    tasks: List[WgTask] = []
    for task_id, pos in enumerate(
            itertools.product(*(range(g) for g in grid))):
        meta = meta_fn(pos) if meta_fn is not None else {}
        meta.setdefault("grid_pos", pos)
        task = WgTask(task_id=task_id, cost=cost, meta=meta)
        stash: dict = {}

        def compute(pos=pos, stash=stash):
            ctx = kernel.run_instance(tuple(grid), pos, *args, **kwargs)
            stash["actions"] = ctx.comm_actions
            if report is not None:
                report.add(pos, ctx)

        def hook(slot_ctx, task, stash=stash):
            actions = stash.pop("actions", [])
            if not actions:
                return None
            slot_ctx.record("put_issue", n_actions=len(actions),
                            **{k: v for k, v in task.meta.items()
                               if k != "grid_pos"})
            issue_actions(shmem_ctx, actions, pending_by_dst)
            yield slot_ctx.charge(spec.shmem_api_latency)

        task.compute = compute
        task.on_complete = hook
        tasks.append(task)
    return tasks
