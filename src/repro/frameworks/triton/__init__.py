"""Mini-Triton: a tile language + compiler with communication extensions.

The paper extends the Triton framework with communication primitives so
developers can write custom fused computation-collective kernels in a
Python-like language (Section III-D); the GEMM + All-to-All operator is
implemented this way.  This package mirrors that integration:

* :mod:`.language` (``tl``) — the tile ops, including the ``tl.comm``
  extension (``put_tile`` / ``signal``).
* :mod:`.compiler` — ``@jit`` and ``build_tasks`` lowering tile programs
  onto the simulated GPU's persistent-kernel runtime.
"""

from . import language as tl
from .comm import PutTile, Signal, issue_actions
from .compiler import JitFunction, LaunchReport, build_tasks, jit

__all__ = ["JitFunction", "LaunchReport", "PutTile", "Signal",
           "build_tasks", "issue_actions", "jit", "tl"]
