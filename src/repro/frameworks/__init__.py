"""ML-framework integration layers.

Submodules (imported on demand to avoid import cycles with the fused
operators they wrap):

* :mod:`repro.frameworks.minitorch` — PyTorch-like tensor/operator surface.
* :mod:`repro.frameworks.triton` — mini-Triton tile language with the
  communication extension.
"""

__all__ = ["minitorch", "triton"]


def __getattr__(name):
    if name in __all__:
        import importlib

        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
