"""Small shared helpers (units, validation)."""

from .units import (
    GB, GB_PER_S, GBIT_PER_S, GIB, KB, KIB, MB, MIB, MS, NS, US,
    fmt_bytes, fmt_time,
)

__all__ = [
    "GB", "GB_PER_S", "GBIT_PER_S", "GIB", "KB", "KIB", "MB", "MIB",
    "MS", "NS", "US", "fmt_bytes", "fmt_time",
]
