"""Unit helpers: the library's time unit is seconds, data unit is bytes.

These exist so hardware specs read like their datasheets
(``80 * GB_PER_S``, ``700 * NS``) instead of bare exponents.
"""

from __future__ import annotations

__all__ = [
    "KB", "MB", "GB", "TB",
    "KIB", "MIB", "GIB",
    "NS", "US", "MS",
    "GB_PER_S", "GBIT_PER_S",
    "KILO", "MEGA", "GIGA", "TERA",
    "fmt_bytes", "fmt_time",
]

KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

# Decimal byte sizes (datasheet convention for bandwidths).
KB = 1e3
MB = 1e6
GB = 1e9
TB = 1e12
# Binary byte sizes (memory capacity convention).
KIB = 1024.0
MIB = 1024.0 ** 2
GIB = 1024.0 ** 3

NS = 1e-9
US = 1e-6
MS = 1e-3

GB_PER_S = 1e9            # bytes per second
GBIT_PER_S = 1e9 / 8.0    # bits-per-second link quoted in bytes per second


def fmt_bytes(n: float) -> str:
    """Human-readable byte count (decimal units)."""
    for unit, name in ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if abs(n) >= unit:
            return f"{n / unit:.2f} {name}"
    return f"{n:.0f} B"


def fmt_time(t: float) -> str:
    """Human-readable duration."""
    if t == 0:
        return "0 s"
    if abs(t) >= 1.0:
        return f"{t:.3f} s"
    if abs(t) >= MS:
        return f"{t / MS:.3f} ms"
    if abs(t) >= US:
        return f"{t / US:.3f} us"
    return f"{t / NS:.1f} ns"
