"""``python -m repro`` entry point: the experiment orchestration CLI."""

import sys

from .experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
