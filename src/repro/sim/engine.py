"""Deterministic discrete-event simulation engine.

This is the substrate every hardware model in :mod:`repro.hw` runs on.  It is
a small, dependency-free engine in the style of SimPy: *processes* are Python
generators that ``yield`` :class:`Event` objects and are resumed when those
events trigger.  Determinism is guaranteed by a strict ``(time, priority,
sequence)`` ordering of the event heap — two runs of the same model with the
same seeds produce identical traces, which the reproduction relies on.

Typical usage::

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(5.0)
        return 42

    proc = sim.process(worker(sim))
    sim.run()
    assert proc.value == 42
    assert sim.now == 5.0
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Simulator",
    "SimulationError",
    "Interrupt",
]

#: Lazily-bound :func:`repro.obs.metrics.get_metrics` — the sim core must
#: not import the observability package at module load (obs sits above sim
#: in the layering), and the indirection costs one global test per
#: :meth:`Simulator.run` call.
_get_metrics: Optional[Callable] = None


def _metrics():
    global _get_metrics
    if _get_metrics is None:
        from ..obs.metrics import get_metrics
        _get_metrics = get_metrics
    return _get_metrics()


#: Scheduling priority for ordinary events.
PRIORITY_NORMAL = 1
#: Priority for events that must run before normal events at the same time
#: (used by resource releases so a release at time t is visible to a request
#: scheduled at the same t).
PRIORITY_URGENT = 0


class SimulationError(RuntimeError):
    """Raised for structural errors in a simulation (e.g. deadlock)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence within a simulation.

    An event starts *untriggered*; calling :meth:`succeed` (or :meth:`fail`)
    schedules it onto the simulator's event heap, after which all registered
    callbacks run at the scheduled simulation time.  Events may carry a
    ``value`` which yielding processes receive as the result of ``yield``.

    The callback list is created lazily on the first :meth:`add_callback` —
    most events in a large simulation (timeouts consumed by exactly one
    process) never need more than one, and many (batched kernel steps) none
    at all until they are yielded on.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = None
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled (value is final)."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("value of untriggered event is undefined")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to trigger successfully after ``delay``."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._value = value
        self._ok = True
        self.sim._schedule(self, delay=delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to trigger with a failure."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._value = exception
        self._ok = False
        self.sim._schedule(self, delay=delay)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event has already been processed the callback runs
        immediately (this makes waiting on already-completed events safe).
        """
        if self._processed:
            fn(self)
        elif self.callbacks is None:
            self.callbacks = [fn]
        else:
            self.callbacks.append(fn)

    def _process(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for fn in callbacks:
                fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        # Inlined Event.__init__ — timeouts are the most-allocated object in
        # a simulation and the extra super() call is measurable.
        self.sim = sim
        self.callbacks = None
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self.delay = delay
        sim._schedule(self, delay=delay)


class _Trigger:
    """Minimal already-succeeded schedulable: runs one callback when popped.

    Used to bootstrap processes without paying for a full :class:`Event`
    (callback list, triggered/processed bookkeeping).  Quacks like a
    processed successful event as far as :meth:`Process._resume` cares.
    """

    __slots__ = ("_callback",)

    _ok = True
    _value: Any = None

    def __init__(self, callback: Callable[["_Trigger"], None]):
        self._callback = callback

    def _process(self) -> None:
        self._callback(self)


class Process(Event):
    """A running generator coroutine; also an event that triggers on return.

    The wrapped generator may ``yield`` any :class:`Event`; the process is
    suspended until that event triggers, at which point the event's value is
    sent into the generator (or its exception thrown, if the event failed).
    When the generator returns, the process event succeeds with the returned
    value.
    """

    __slots__ = ("generator", "name", "_target")

    def __init__(self, sim: "Simulator", generator: Generator,
                 name: Optional[str] = None):
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        # Bootstrap: resume once at the current time.
        sim._schedule(_Trigger(self._resume))

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError("cannot interrupt a completed process")
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        hit = Event(self.sim)
        hit._ok = False
        hit._value = Interrupt(cause)
        hit._triggered = True
        self.sim._schedule(hit, priority=PRIORITY_URGENT)
        hit.add_callback(self._resume)

    def _resume(self, trigger: Event) -> None:
        self._target = None
        try:
            if trigger._ok:
                nxt = self.generator.send(trigger._value)
            else:
                nxt = self.generator.throw(trigger._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(nxt, Event):
            err = SimulationError(
                f"process {self.name!r} yielded non-event {nxt!r}")
            try:
                self.generator.throw(err)
            except StopIteration as stop:
                self.succeed(stop.value)
            except BaseException as exc:
                self.fail(exc)
            return
        if nxt.sim is not self.sim:
            self.fail(SimulationError("event belongs to another simulator"))
            return
        self._target = nxt
        nxt.add_callback(self._resume)


class _ConditionBase(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = tuple(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition spans multiple simulators")
        self._pending = len(self.events)
        if not self.events:
            self.succeed({})
        else:
            for ev in self.events:
                ev.add_callback(self._check)

    def _collect(self) -> dict:
        # Building the event->value dict is pure overhead in the (dominant)
        # case where no component event carries a value — the kernel/collective
        # layers use conditions purely as barriers.  Only collect when there
        # is actually a value to deliver.
        for ev in self.events:
            if ev._processed and ev._ok and ev._value is not None:
                return {e: e._value
                        for e in self.events if e._processed and e._ok}
        return {}

    def _check(self, ev: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AllOf(_ConditionBase):
    """Triggers when *all* component events have triggered successfully."""

    __slots__ = ()

    def _check(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev._ok:
            self.fail(ev._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class AnyOf(_ConditionBase):
    """Triggers when *any* component event triggers successfully."""

    __slots__ = ()

    def _collect(self) -> dict:
        # Unlike AllOf (where every component is in the dict by the time it
        # fires), AnyOf's dict identifies *which* event(s) won — so events
        # with a None value must still be collected.
        return {ev: ev._value for ev in self.events if ev._processed and ev._ok}

    def _check(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev._ok:
            self.fail(ev._value)
            return
        self.succeed(self._collect())


class Simulator:
    """Owns the simulated clock and the event heap."""

    def __init__(self):
        self._now: float = 0.0
        self._heap: list = []
        self._seq = 0

    @property
    def now(self) -> float:
        """Current simulation time (seconds, by library convention)."""
        return self._now

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event (trigger manually with ``succeed``)."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def timeout_at(self, when: float, value: Any = None) -> Event:
        """Create an event that triggers at the *absolute* time ``when``.

        Unlike ``timeout(when - now)``, the trigger time is exactly ``when``
        — no float round-trip through a delay.  The batched kernel fast path
        relies on this to land on the same timestamps the per-task slow path
        produces by repeated ``now + dur`` accumulation.
        """
        if when < self._now:
            raise ValueError(f"timeout_at({when}) is in the past "
                             f"(now={self._now})")
        ev = Event(self)
        ev._triggered = True
        ev._value = value
        self._seq += 1
        heapq.heappush(self._heap, (when, PRIORITY_NORMAL, self._seq, ev))
        return ev

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = PRIORITY_NORMAL) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("step() on empty schedule")
        t, _prio, _seq, event = heapq.heappop(self._heap)
        if t < self._now:  # pragma: no cover - guarded by construction
            raise SimulationError("time ran backwards")
        self._now = t
        event._process()

    def run(self, until: Optional[float] = None) -> float:
        """Run until the schedule drains or ``until`` is reached.

        Returns the final simulation time.
        """
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        m = _metrics()
        if m.enabled:
            return self._run_instrumented(until, m)
        # The event loop is the single hottest function in the library; it is
        # deliberately inlined (no step() call, hoisted locals) — worth ~15%
        # of end-to-end figure-regeneration time.
        heap = self._heap
        pop = heapq.heappop
        if until is None:
            while heap:
                t, _prio, _seq, event = pop(heap)
                self._now = t
                event._process()
        else:
            while heap:
                if heap[0][0] > until:
                    break
                t, _prio, _seq, event = pop(heap)
                self._now = t
                event._process()
            self._now = until
        return self._now

    def _run_instrumented(self, until: Optional[float], m) -> float:
        """The event loop with run-metrics bookkeeping (events processed,
        event-heap peak).  Identical scheduling semantics to :meth:`run` —
        the observability layer may count, never reorder."""
        heap = self._heap
        pop = heapq.heappop
        n = 0
        peak = len(heap)
        if until is None:
            while heap:
                if len(heap) > peak:
                    peak = len(heap)
                t, _prio, _seq, event = pop(heap)
                self._now = t
                event._process()
                n += 1
        else:
            while heap:
                if heap[0][0] > until:
                    break
                if len(heap) > peak:
                    peak = len(heap)
                t, _prio, _seq, event = pop(heap)
                self._now = t
                event._process()
                n += 1
            self._now = until
        m.inc("sim.events_processed", n)
        m.gauge_max("sim.heap_peak", peak)
        return self._now

    def run_process(self, generator: Generator, name: Optional[str] = None) -> Any:
        """Convenience: start a process, run to completion, return its value.

        Raises the process's exception if it failed, and
        :class:`SimulationError` if the schedule drained before the process
        finished (deadlock).
        """
        proc = self.process(generator, name=name)
        self.run()
        if not proc.triggered:
            raise SimulationError(
                f"deadlock: process {proc.name!r} never completed")
        if not proc.ok:
            raise proc._value
        return proc.value
