"""Deterministic discrete-event simulation core."""

from .engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .resources import FairShareLink, FifoChannel, Mailbox, Resource
from .trace import Span, TraceEvent, TraceRecorder

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "FairShareLink",
    "FifoChannel",
    "Interrupt",
    "Mailbox",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Span",
    "Timeout",
    "TraceEvent",
    "TraceRecorder",
]
