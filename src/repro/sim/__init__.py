"""Deterministic discrete-event simulation core."""

from .engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .resources import FairShareLink, FifoChannel, Mailbox, Resource
from .trace import NULL_TRACE, Span, TraceEvent, TraceRecorder

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "FairShareLink",
    "FifoChannel",
    "Interrupt",
    "Mailbox",
    "NULL_TRACE",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Span",
    "Timeout",
    "TraceEvent",
    "TraceRecorder",
]
