"""Structured trace recording for simulated executions.

The paper's Fig. 11 profiles the persistent-workgroup timeline of the fused
embedding + All-to-All kernel — when each logical WG starts/finishes, when
the non-blocking remote PUTs are issued, and when WGs wait on ``sliceRdy``
flags.  :class:`TraceRecorder` captures exactly those record types and can
render them as a text timeline or export series for plotting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

__all__ = ["TraceEvent", "TraceRecorder", "Span", "NULL_TRACE"]


@dataclass(frozen=True)
class TraceEvent:
    """A single timestamped record.

    Attributes:
        time: simulation time in seconds.
        kind: record type, e.g. ``"wg_start"``, ``"wg_end"``, ``"put_issue"``,
            ``"flag_set"``, ``"wait_start"``, ``"wait_end"``,
            ``"kernel_launch"``, ``"kernel_end"``.
        actor: who produced it (e.g. ``"gpu0/wg3"``).
        detail: free-form payload (slice id, byte counts, destinations...).
    """

    time: float
    kind: str
    actor: str
    detail: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Span:
    """A closed interval reconstructed from start/end trace events."""

    start: float
    end: float
    actor: str
    kind: str
    detail: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class TraceRecorder:
    """Append-only store of :class:`TraceEvent` with simple queries."""

    #: Pairs of (start-kind, end-kind) that `spans()` knows how to stitch.
    SPAN_KINDS = {
        "wg": ("wg_start", "wg_end"),
        "wait": ("wait_start", "wait_end"),
        "kernel": ("kernel_launch", "kernel_end"),
        "comm": ("comm_start", "comm_end"),
    }

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: list[TraceEvent] = []

    def record(self, time: float, kind: str, actor: str, **detail: Any) -> None:
        if not self.enabled:
            return
        self.events.append(TraceEvent(time, kind, actor, detail))

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    # -- queries ------------------------------------------------------------
    def filter(self, kind: Optional[str] = None, actor: Optional[str] = None,
               predicate: Optional[Callable[[TraceEvent], bool]] = None,
               ) -> list[TraceEvent]:
        out = []
        for ev in self.events:
            if kind is not None and ev.kind != kind:
                continue
            if actor is not None and ev.actor != actor:
                continue
            if predicate is not None and not predicate(ev):
                continue
            out.append(ev)
        return out

    def actors(self) -> list[str]:
        seen: dict[str, None] = {}
        for ev in self.events:
            seen.setdefault(ev.actor, None)
        return list(seen)

    def spans(self, which: str, actor: Optional[str] = None) -> list[Span]:
        """Stitch start/end event pairs into :class:`Span` objects.

        Events are matched per-actor with a stack, so re-entrant starts
        nest: a second ``wg_start`` before the first's ``wg_end`` opens an
        inner span and the outer one still closes against its own end
        (LIFO matching).  Unmatched trailing starts are dropped (the
        simulation ended mid-span).
        """
        if which not in self.SPAN_KINDS:
            raise KeyError(f"unknown span kind {which!r}; "
                           f"choose from {sorted(self.SPAN_KINDS)}")
        start_kind, end_kind = self.SPAN_KINDS[which]
        open_by_actor: dict[str, list[TraceEvent]] = {}
        out: list[Span] = []
        for ev in self.events:
            if actor is not None and ev.actor != actor:
                continue
            if ev.kind == start_kind:
                open_by_actor.setdefault(ev.actor, []).append(ev)
            elif ev.kind == end_kind:
                stack = open_by_actor.get(ev.actor)
                if stack:
                    st = stack.pop()
                    detail = dict(st.detail)
                    detail.update(ev.detail)
                    out.append(Span(st.time, ev.time, ev.actor, which, detail))
        return out

    # -- rendering ------------------------------------------------------------
    def render_timeline(self, actors: Optional[Iterable[str]] = None,
                        width: int = 80, span_kind: str = "wg",
                        marker_kind: str = "put_issue") -> str:
        """ASCII timeline: one row per actor, ``#`` spans, ``P`` markers.

        This is the textual analogue of the paper's Fig. 11.
        """
        actor_list = list(actors) if actors is not None else self.actors()
        if not self.events or not actor_list:
            return "(empty trace)"
        t0 = min(ev.time for ev in self.events)
        t1 = max(ev.time for ev in self.events)
        extent = t1 - t0

        def col(t: float) -> int:
            # A zero-extent trace (single event, or every event sharing one
            # timestamp) has no scale: clamp everything to a single column
            # instead of dividing by a fake epsilon extent.
            if extent <= 0.0:
                return 0
            return min(width - 1, int((t - t0) / extent * (width - 1)))

        lines = []
        label_w = max(len(a) for a in actor_list) + 1
        for a in actor_list:
            row = [" "] * width
            for sp in self.spans(span_kind, actor=a):
                for c in range(col(sp.start), col(sp.end) + 1):
                    row[c] = "#"
            for ev in self.filter(kind=marker_kind, actor=a):
                row[col(ev.time)] = "P"
            lines.append(f"{a:<{label_w}}|{''.join(row)}|")
        lines.append(f"{'':<{label_w}}|{'-' * width}|")
        lines.append(f"{'':<{label_w}} t0={t0:.3e}s  t1={t1:.3e}s")
        return "\n".join(lines)


class _NullTraceRecorder(TraceRecorder):
    """A permanently-disabled recorder whose ``record`` is a true no-op.

    Shared as the module-level :data:`NULL_TRACE` singleton by every
    component that is constructed without an explicit trace — one object for
    the whole process instead of a fresh disabled ``TraceRecorder`` per GPU,
    and zero per-record work on the hot path.  Do not enable it; pass a real
    :class:`TraceRecorder` where tracing is wanted.
    """

    @property
    def enabled(self) -> bool:  # type: ignore[override]
        return False

    @enabled.setter
    def enabled(self, value: bool) -> None:
        if value:
            raise ValueError(
                "NULL_TRACE cannot be enabled; pass a TraceRecorder() "
                "instance where tracing is wanted")

    def record(self, time: float, kind: str, actor: str,
               **detail: Any) -> None:
        return None


#: Process-wide disabled trace recorder (see :class:`_NullTraceRecorder`).
NULL_TRACE = _NullTraceRecorder(enabled=False)
