"""Shared-resource primitives for the simulation engine.

Three models cover every piece of hardware in :mod:`repro.hw`:

* :class:`Resource` — a counted semaphore with a FIFO wait queue (compute
  units, DMA engines, NIC queue pairs).
* :class:`FifoChannel` — a store-and-forward server: transfers are serviced
  one at a time at a fixed byte rate, each followed by a fixed latency
  (kernel-launch queues, PCIe-style ordered paths).
* :class:`FairShareLink` — a processor-sharing pipe: all in-flight transfers
  share the link bandwidth equally, which is the standard fluid model for
  xGMI/NVLink-style fabric links and captures the contention effects the
  paper reports for large AllReduce outputs (Fig. 9).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Optional

from .engine import Event, Simulator, SimulationError

__all__ = ["Resource", "FifoChannel", "FairShareLink", "Mailbox"]

# Relative tolerance when deciding a fluid transfer has drained.
_EPS = 1e-9


class Resource:
    """Counted semaphore with FIFO granting order.

    ``request()`` returns an event that triggers when a slot is granted;
    the holder must call ``release()`` exactly once.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiting: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiting)

    def request(self) -> Event:
        ev = self.sim.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
        else:
            self._waiting.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiting:
            nxt = self._waiting.popleft()
            nxt.succeed(self)  # slot transfers directly to the waiter
        else:
            self._in_use -= 1

    def acquire(self):
        """Process helper: ``yield from resource.acquire()``."""
        yield self.request()


class FifoChannel:
    """Single-server store-and-forward channel.

    Each transfer occupies the server for ``nbytes / bandwidth`` seconds (in
    arrival order); its completion event triggers ``latency`` seconds after
    its service ends.  Because service is serialized but the latency is
    pipelined, back-to-back messages see full bandwidth and a single latency
    each — matching a simple wire/DMA model.
    """

    def __init__(self, sim: Simulator, bandwidth: float, latency: float = 0.0,
                 name: str = ""):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.sim = sim
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.name = name
        self._free_at = 0.0
        self.bytes_sent = 0
        self.messages_sent = 0

    def transfer(self, nbytes: float, value: Any = None) -> Event:
        """Schedule ``nbytes`` through the channel; returns completion event."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        now = self.sim.now
        start = max(now, self._free_at)
        service = nbytes / self.bandwidth
        self._free_at = start + service
        done_in = (self._free_at + self.latency) - now
        self.bytes_sent += nbytes
        self.messages_sent += 1
        ev = self.sim.event()
        ev.succeed(value, delay=done_in)
        return ev

    @property
    def busy_until(self) -> float:
        return self._free_at


class _Flow:
    __slots__ = ("target", "event", "value", "nbytes", "start")

    def __init__(self, nbytes: float, event: Event, value: Any, start: float):
        self.nbytes = float(nbytes)
        self.target = 0.0   # cumulative link drain at which this flow is done
        self.event = event
        self.value = value
        self.start = start


class FairShareLink:
    """Processor-sharing fluid link: ``n`` concurrent flows each get ``B/n``.

    This is the model used for intra-node fabric links.  A flow's completion
    event fires when its last byte drains, plus a fixed propagation
    ``latency``.  The link keeps utilization statistics used by the
    benchmark reports.

    Internally flows are tracked against a *cumulative drain counter*: since
    every active flow drains at the same instantaneous rate ``B/n``, a flow
    that starts when the counter reads ``D`` completes when it reads
    ``D + nbytes``.  Advancing the clock is O(1) and the next completion is
    the top of a heap — fused kernels put hundreds of concurrent slices on a
    link, and the previous per-flow decrement loop was the single hottest
    spot in intra-node figure regenerations.
    """

    def __init__(self, sim: Simulator, bandwidth: float, latency: float = 0.0,
                 name: str = ""):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.sim = sim
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.name = name
        self._heap: list = []        # (target, seq, flow) — next finisher on top
        self._seq = 0
        self._drained = 0.0          # per-flow bytes drained this busy period
        self._last_t = 0.0
        self._version = 0
        self.bytes_sent = 0.0
        self.busy_time = 0.0

    # -- public API ---------------------------------------------------------
    def transfer(self, nbytes: float, value: Any = None) -> Event:
        """Start a flow of ``nbytes``; returns its completion event."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        ev = self.sim.event()
        if nbytes == 0:
            ev.succeed(value, delay=self.latency)
            return ev
        self._drain_to_now()
        fl = _Flow(nbytes, ev, value, self.sim.now)
        fl.target = self._drained + fl.nbytes
        self._seq += 1
        heapq.heappush(self._heap, (fl.target, self._seq, fl))
        self.bytes_sent += nbytes
        self._reschedule()
        return ev

    @property
    def active_flows(self) -> int:
        return len(self._heap)

    def current_rate_per_flow(self) -> float:
        """Instantaneous per-flow bandwidth (for diagnostics)."""
        n = len(self._heap)
        return self.bandwidth / n if n else self.bandwidth

    # -- fluid bookkeeping ----------------------------------------------------
    def _drain_to_now(self) -> None:
        now = self.sim.now
        dt = now - self._last_t
        self._last_t = now
        if dt <= 0 or not self._heap:
            return
        self.busy_time += dt
        self._drained += self.bandwidth / len(self._heap) * dt

    def _reschedule(self) -> None:
        self._version += 1
        heap = self._heap
        while heap:
            target, _seq, fl = heap[0]
            rem = target - self._drained
            if rem <= _EPS * max(fl.nbytes, 1.0):
                heapq.heappop(heap)
                fl.event.succeed(fl.value, delay=self.latency)
                continue
            dt = rem * len(heap) / self.bandwidth
            if self.sim.now + dt > self.sim.now:
                # The armed version rides along as the timer's value so no
                # per-timer closure is allocated; a stale timer (superseded
                # by a newer arrival) sees a version mismatch and dies.
                self.sim.timeout(dt, value=self._version).add_callback(
                    self._on_timer_event)
                return
            # Residue too small for the clock's float resolution to express
            # (epsilon-scale bytes left by cumulative drain rounding):
            # drain it inline and complete, instead of arming a timer that
            # would fire at the same timestamp forever.
            before = self._drained
            self._drained = before + rem
            if self._drained == before:
                # The residue is below the drain counter's own resolution;
                # the flow is done for every observable purpose.
                heapq.heappop(heap)
                fl.event.succeed(fl.value, delay=self.latency)
        # Idle: reset the drain epoch so the counter's float resolution does
        # not degrade over the lifetime of a long simulation.
        self._drained = 0.0

    def _on_timer_event(self, ev: Event) -> None:
        if ev._value != self._version:
            return  # a newer flow arrival superseded this timer
        self._drain_to_now()
        self._reschedule()


class Mailbox:
    """Unbounded FIFO queue for message passing between processes."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: deque = deque()
        self._getters: deque[Event] = deque()

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = self.sim.event()
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._items)
