"""Process-wide run-metrics registry: counters, gauges, wall-clock timers.

Mirrors the :data:`~repro.sim.trace.NULL_TRACE` pattern: instrumented call
sites ask :func:`get_metrics` for the active registry and get the no-op
:data:`NULL_METRICS` singleton unless metrics were opted into — via the
``REPRO_METRICS`` environment variable (any value other than empty/``0``)
or the :func:`enable_metrics` API.  Disabled-path cost is one attribute
test per *aggregate* record (hot loops hoist ``metrics.enabled`` exactly
like they hoist ``trace.enabled``), and a metrics-enabled run is guaranteed
not to change a single byte of sweep reports or cache records — metrics
read the run, they never feed back into it.

Timers measure *host* wall-clock (``time.perf_counter``) and double as
span recorders: every completed timer appends a ``(name, start, end)``
host-side span that :mod:`repro.obs.chrome` can export onto a dedicated
track next to the simulated-time trace.

The JSONL sink (:meth:`MetricsRegistry.write_jsonl`, auto-flushed at
process exit to ``$REPRO_METRICS_JSONL`` when set) appends one JSON object
per metric so long-running services can tail it.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = [
    "ENV_VAR",
    "JSONL_ENV_VAR",
    "MetricsRegistry",
    "NULL_METRICS",
    "disable_metrics",
    "enable_metrics",
    "get_metrics",
    "metrics_env_enabled",
    "reset_metrics",
]

#: Opt-in switch: any value other than ``""``/``"0"`` enables metrics.
ENV_VAR = "REPRO_METRICS"
#: Optional path; when set (and metrics are enabled) a snapshot is appended
#: as JSON lines at interpreter exit.
JSONL_ENV_VAR = "REPRO_METRICS_JSONL"

Number = Union[int, float]


class _Timer:
    """Context manager measuring one host wall-clock interval."""

    __slots__ = ("_registry", "_name", "_t0")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._registry._record_timer(self._name, self._t0,
                                     time.perf_counter())


class _NullTimer:
    """Shared do-nothing timer handed out by :data:`NULL_METRICS`."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_TIMER = _NullTimer()


class MetricsRegistry:
    """In-memory metric store.  All methods are cheap and allocation-light;
    none touch simulation state."""

    def __init__(self) -> None:
        self.counters: Dict[str, Number] = {}
        self.gauges: Dict[str, Number] = {}
        #: name -> [count, total_seconds]
        self.timers: Dict[str, List[float]] = {}
        #: completed host wall-clock spans: (name, start, end) in
        #: ``perf_counter`` seconds.
        self.host_spans: List[Tuple[str, float, float]] = []

    @property
    def enabled(self) -> bool:
        return True

    # -- recording ------------------------------------------------------
    def inc(self, name: str, value: Number = 1) -> None:
        """Add ``value`` to counter ``name`` (created at zero)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: Number) -> None:
        """Set gauge ``name`` to its latest observation."""
        self.gauges[name] = value

    def gauge_max(self, name: str, value: Number) -> None:
        """Keep the maximum observation of gauge ``name`` (peak tracking)."""
        cur = self.gauges.get(name)
        if cur is None or value > cur:
            self.gauges[name] = value

    def timer(self, name: str) -> _Timer:
        """``with metrics.timer("phase"):`` — host wall-clock interval."""
        return _Timer(self, name)

    def _record_timer(self, name: str, t0: float, t1: float) -> None:
        entry = self.timers.get(name)
        if entry is None:
            entry = self.timers[name] = [0, 0.0]
        entry[0] += 1
        entry[1] += t1 - t0
        self.host_spans.append((name, t0, t1))

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.timers.clear()
        self.host_spans.clear()

    # -- export ---------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-able snapshot (sorted keys; host spans excluded)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "timers": {name: {"count": int(c), "total_s": t}
                       for name, (c, t) in sorted(self.timers.items())},
        }

    def render(self) -> str:
        """Human-readable snapshot for ``python -m repro stats``."""
        lines: List[str] = []
        snap = self.snapshot()
        width = max((len(n) for section in snap.values() for n in section),
                    default=0)
        if snap["counters"]:
            lines.append("counters:")
            for name, v in snap["counters"].items():
                lines.append(f"  {name:<{width}}  {v:>14,}")
        if snap["gauges"]:
            lines.append("gauges:")
            for name, v in snap["gauges"].items():
                lines.append(f"  {name:<{width}}  {v:>14,}")
        if snap["timers"]:
            lines.append("timers:")
            for name, t in snap["timers"].items():
                lines.append(f"  {name:<{width}}  {t['total_s']:>11.3f} s  "
                             f"(x{t['count']})")
        if not lines:
            return "(no metrics recorded)"
        return "\n".join(lines)

    def write_jsonl(self, path: Union[str, os.PathLike]) -> int:
        """Append one JSON line per metric; returns the line count.

        Lines carry only ``kind``/``name``/value fields — no timestamps or
        hostnames — so repeated snapshots of a deterministic run are
        themselves deterministic.
        """
        snap = self.snapshot()
        lines = []
        for name, v in snap["counters"].items():
            lines.append({"kind": "counter", "name": name, "value": v})
        for name, v in snap["gauges"].items():
            lines.append({"kind": "gauge", "name": name, "value": v})
        for name, t in snap["timers"].items():
            lines.append({"kind": "timer", "name": name,
                          "count": t["count"], "total_s": t["total_s"]})
        with open(path, "a", encoding="utf-8") as f:
            for line in lines:
                f.write(json.dumps(line, sort_keys=True) + "\n")
        return len(lines)


class _NullMetricsRegistry(MetricsRegistry):
    """Permanently-disabled registry whose record calls are true no-ops.

    One shared instance (:data:`NULL_METRICS`) serves the whole process;
    its methods allocate nothing, so instrumented hot paths cost a single
    attribute test when metrics are off.
    """

    @property
    def enabled(self) -> bool:  # type: ignore[override]
        return False

    def inc(self, name: str, value: Number = 1) -> None:
        return None

    def gauge(self, name: str, value: Number) -> None:
        return None

    def gauge_max(self, name: str, value: Number) -> None:
        return None

    def timer(self, name: str) -> _NullTimer:  # type: ignore[override]
        return _NULL_TIMER


#: Process-wide disabled registry (see :class:`_NullMetricsRegistry`).
NULL_METRICS = _NullMetricsRegistry()

#: The active registry; ``None`` means "not yet resolved from the
#: environment" (the next :func:`get_metrics` call resolves it).
_active: Optional[MetricsRegistry] = None
_exit_sink_registered = False


def metrics_env_enabled() -> bool:
    """Whether ``REPRO_METRICS`` opts metrics in."""
    return os.environ.get(ENV_VAR, "") not in ("", "0")


def _register_exit_sink() -> None:
    """Flush the active registry to ``$REPRO_METRICS_JSONL`` at exit."""
    global _exit_sink_registered
    if _exit_sink_registered or not os.environ.get(JSONL_ENV_VAR):
        return
    import atexit

    def _flush() -> None:
        m = _active
        path = os.environ.get(JSONL_ENV_VAR)
        if m is not None and m.enabled and path:
            m.write_jsonl(path)

    atexit.register(_flush)
    _exit_sink_registered = True


def get_metrics() -> MetricsRegistry:
    """The process's active registry (:data:`NULL_METRICS` when disabled).

    The environment is consulted lazily on the first call (and again after
    :func:`reset_metrics`), so spawn-started worker processes inherit the
    opt-in through their environment with no extra plumbing.
    """
    global _active
    m = _active
    if m is None:
        m = MetricsRegistry() if metrics_env_enabled() else NULL_METRICS
        _active = m
        if m.enabled:
            _register_exit_sink()
    return m


def enable_metrics(
        registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install (and return) a live registry, ignoring the environment."""
    global _active
    _active = registry if registry is not None else MetricsRegistry()
    _register_exit_sink()
    return _active


def disable_metrics() -> None:
    """Install :data:`NULL_METRICS` (records are dropped from here on)."""
    global _active
    _active = NULL_METRICS


def reset_metrics() -> None:
    """Forget the active registry; the next :func:`get_metrics` re-reads
    the environment.  Intended for tests."""
    global _active
    _active = None
