"""Deterministic Chrome trace-event export of simulation traces.

Converts :class:`~repro.sim.trace.TraceRecorder` events into the Chrome
trace-event JSON format (the ``traceEvents`` array form) that Perfetto and
``chrome://tracing`` load directly — the paper's Fig. 11 persistent-WG
timeline as an interactive profiler view.

Mapping:

* each captured run (one :class:`TraceRecorder`, e.g. one operator's
  simulated cluster) becomes a Chrome *process* (``pid``), named by its
  capture label via ``process_name`` metadata;
* each trace actor (``gpu0``, ``gpu0/wg3``, ...) becomes a *thread*
  (``tid``) of that process, in first-seen order — the same order the
  ASCII timeline uses;
* start/end pairs the recorder knows how to stitch
  (:attr:`TraceRecorder.SPAN_KINDS`: ``wg``, ``wait``, ``kernel``,
  ``comm``) become complete (``"X"``) events carrying the merged span
  detail as ``args``;
* every other kind (``put_issue``, ``flag_set``, ...) becomes a
  thread-scoped instant (``"i"``) event;
* host-side wall-clock spans (from
  :attr:`repro.obs.metrics.MetricsRegistry.host_spans`) go onto a final
  dedicated ``host`` process, rebased so the first span starts at zero.

Simulated time is seconds; Chrome expects microseconds, so ``ts``/``dur``
are scaled by 1e6.  The export is deterministic: events are fully sorted,
labels and ids derive only from the trace, and no volatile field
(hostname, wall-clock date, OS pid) is emitted — two exports of the same
simulation are byte-identical, which CI exploits with a golden-trace
byte-compare.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Sequence,
    Tuple,
    Union,
)

from ..sim.trace import TraceRecorder

__all__ = [
    "EXPORT_SCHEMA",
    "chrome_trace_dict",
    "chrome_trace_json",
    "validate_chrome_trace",
    "write_chrome_trace",
]

#: Stamped into the export's ``otherData`` (the only provenance field).
EXPORT_SCHEMA = "repro.obs.chrome/v1"

#: Seconds (simulated) -> microseconds (Chrome's ts/dur unit).
_US = 1e6

#: Metadata record names Chrome/Perfetto understand.
_META_NAMES = ("process_name", "process_sort_index", "thread_name",
               "thread_sort_index")

Runs = Sequence[Tuple[str, TraceRecorder]]
HostSpans = Iterable[Tuple[str, float, float]]


def _jsonable(value: Any) -> Any:
    """Deterministic JSON-safe projection of a trace detail value."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def _args(detail: Dict[str, Any]) -> Dict[str, Any]:
    return {str(k): _jsonable(v) for k, v in sorted(detail.items())}


def _run_events(label: str, trace: TraceRecorder,
                pid: int) -> List[Dict[str, Any]]:
    """All Chrome events for one captured run (metadata + spans + instants)."""
    events: List[Dict[str, Any]] = [{
        "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
        "args": {"name": label},
    }, {
        "ph": "M", "pid": pid, "tid": 0, "name": "process_sort_index",
        "args": {"sort_index": pid},
    }]
    tids = {actor: i for i, actor in enumerate(trace.actors())}
    for actor, tid in tids.items():
        events.append({"ph": "M", "pid": pid, "tid": tid,
                       "name": "thread_name", "args": {"name": actor}})
        events.append({"ph": "M", "pid": pid, "tid": tid,
                       "name": "thread_sort_index",
                       "args": {"sort_index": tid}})

    span_bounds = set()
    for which, (start_kind, end_kind) in sorted(
            TraceRecorder.SPAN_KINDS.items()):
        span_bounds.update((start_kind, end_kind))
        for sp in trace.spans(which):
            events.append({
                "ph": "X", "pid": pid, "tid": tids[sp.actor],
                "ts": sp.start * _US, "dur": (sp.end - sp.start) * _US,
                "name": which, "cat": which, "args": _args(sp.detail),
            })
    for ev in trace.events:
        if ev.kind in span_bounds:
            continue
        events.append({
            "ph": "i", "pid": pid, "tid": tids[ev.actor], "ts": ev.time * _US,
            "s": "t", "name": ev.kind, "cat": ev.kind,
            "args": _args(ev.detail),
        })
    return events


def _host_events(host_spans: HostSpans, pid: int) -> List[Dict[str, Any]]:
    """Host wall-clock spans on a dedicated process, rebased to zero."""
    spans = list(host_spans)
    if not spans:
        return []
    t0 = min(s[1] for s in spans)
    events: List[Dict[str, Any]] = [{
        "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
        "args": {"name": "host"},
    }, {
        "ph": "M", "pid": pid, "tid": 0, "name": "process_sort_index",
        "args": {"sort_index": pid},
    }, {
        "ph": "M", "pid": pid, "tid": 0, "name": "thread_name",
        "args": {"name": "host wall-clock"},
    }]
    for name, start, end in spans:
        events.append({
            "ph": "X", "pid": pid, "tid": 0, "ts": (start - t0) * _US,
            "dur": (end - start) * _US, "name": name, "cat": "host",
            "args": {},
        })
    return events


def _sort_key(ev: Dict[str, Any]) -> Tuple:
    # Metadata (no ts) sorts ahead of its process's timed events; the final
    # canonical-JSON component makes the order total and deterministic.
    return (ev["pid"], ev.get("ts", -1.0), ev["tid"], ev["ph"], ev["name"],
            json.dumps(ev, sort_keys=True))


def _as_runs(runs: Union[TraceRecorder, Runs]) -> Runs:
    if isinstance(runs, TraceRecorder):
        return [("trace", runs)]
    return runs


def chrome_trace_dict(runs: Union[TraceRecorder, Runs],
                      host_spans: HostSpans = ()) -> Dict[str, Any]:
    """The export as a Python dict (see the module docstring for layout)."""
    run_list = _as_runs(runs)
    events: List[Dict[str, Any]] = []
    for pid, (label, trace) in enumerate(run_list):
        events.extend(_run_events(label, trace, pid))
    events.extend(_host_events(host_spans, pid=len(run_list)))
    events.sort(key=_sort_key)
    return {
        "displayTimeUnit": "ms",
        "otherData": {"exporter": EXPORT_SCHEMA},
        "traceEvents": events,
    }


def chrome_trace_json(runs: Union[TraceRecorder, Runs],
                      host_spans: HostSpans = ()) -> str:
    """Deterministic JSON text: one event per line (diffable goldens)."""
    data = chrome_trace_dict(runs, host_spans=host_spans)
    events = data["traceEvents"]
    lines = ['{"displayTimeUnit":"ms",'
             f'"otherData":{{"exporter":"{EXPORT_SCHEMA}"}},'
             '"traceEvents":[']
    last = len(events) - 1
    for i, ev in enumerate(events):
        text = json.dumps(ev, sort_keys=True, separators=(",", ":"))
        lines.append(" " + text + ("," if i < last else ""))
    lines.append("]}")
    return "\n".join(lines) + "\n"


def write_chrome_trace(path: Union[str, Path],
                       runs: Union[TraceRecorder, Runs],
                       host_spans: HostSpans = ()) -> Path:
    """Write the export to ``path``; returns the path."""
    path = Path(path)
    path.write_text(chrome_trace_json(runs, host_spans=host_spans),
                    encoding="utf-8")
    return path


def validate_chrome_trace(data: Any) -> int:
    """Schema-check an export; returns the event count or raises ValueError.

    Checks the subset of the Chrome trace-event format this module emits
    (object form with a ``traceEvents`` array of ``M``/``X``/``i`` events
    carrying the fields Perfetto needs).  Used by the test suite and CI to
    guarantee exports stay loadable.
    """
    errors: List[str] = []
    if not isinstance(data, dict):
        raise ValueError(f"trace must be a JSON object, got {type(data).__name__}")
    events = data.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace must carry a 'traceEvents' array")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("M", "X", "i"):
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("pid"), int) or not isinstance(
                ev.get("tid"), int):
            errors.append(f"{where}: pid/tid must be integers")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            errors.append(f"{where}: missing event name")
        if ph == "M":
            if ev.get("name") not in _META_NAMES:
                errors.append(f"{where}: unknown metadata {ev.get('name')!r}")
            if not isinstance(ev.get("args"), dict):
                errors.append(f"{where}: metadata needs args")
        else:
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"{where}: bad ts {ts!r}")
            if ph == "X":
                dur = ev.get("dur")
                if not isinstance(dur, (int, float)) or dur < 0:
                    errors.append(f"{where}: bad dur {dur!r}")
            if ph == "i" and ev.get("s") not in ("g", "p", "t"):
                errors.append(f"{where}: instant scope must be g/p/t")
    if errors:
        raise ValueError("invalid Chrome trace: " + "; ".join(errors[:10]))
    return len(events)
