"""Transparent trace capture for harness-driven runs.

Scenario runners build their simulated clusters through
:class:`~repro.fused.base.OpHarness`, which defaults to the no-op
:data:`~repro.sim.trace.NULL_TRACE`.  A :class:`TraceCapture` context
flips that default: every harness constructed inside it gets a live
:class:`~repro.sim.trace.TraceRecorder` (or registers the one it was
explicitly given), labelled and collected on the capture.  That is how
``python -m repro trace`` profiles any registered sweep without the
runners knowing they are being watched — runner results, store records,
and reports are untouched because tracing never alters simulated timing.

Outside a capture, :func:`harness_trace` is a passthrough (``None`` ->
``NULL_TRACE``), so the default path keeps its zero-cost behaviour.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..sim.trace import NULL_TRACE, TraceRecorder

__all__ = ["TraceCapture", "active_capture", "harness_trace"]

#: The capture currently in scope (at most one per process).
_active: Optional["TraceCapture"] = None


class TraceCapture:
    """Collects one labelled :class:`TraceRecorder` per harness built
    inside the ``with`` block.

    Labels are ``<scenario>/run<k>`` where the scenario prefix is set via
    :meth:`begin_scenario` (the trace CLI sets it to the sweep/scenario
    label) and ``k`` counts harnesses within that scenario — e.g. a
    fused/baseline comparison contributes ``run0`` and ``run1``.
    """

    def __init__(self) -> None:
        self.runs: List[Tuple[str, TraceRecorder]] = []
        self._scenario: Optional[str] = None
        self._run_in_scenario = 0

    def begin_scenario(self, label: str) -> None:
        """Start a new labelled group; subsequent harnesses attach to it."""
        self._scenario = label
        self._run_in_scenario = 0

    def attach(self, trace: Optional[TraceRecorder] = None) -> TraceRecorder:
        """Register (and return) the recorder for a newly-built harness."""
        if trace is None:
            trace = TraceRecorder()
        prefix = self._scenario if self._scenario is not None else "run"
        label = f"{prefix}/run{self._run_in_scenario}"
        self._run_in_scenario += 1
        self.runs.append((label, trace))
        return trace

    @property
    def n_events(self) -> int:
        return sum(len(trace) for _label, trace in self.runs)

    def __enter__(self) -> "TraceCapture":
        global _active
        if _active is not None:
            raise RuntimeError("a TraceCapture is already active")
        _active = self
        return self

    def __exit__(self, *exc: object) -> None:
        global _active
        _active = None


def active_capture() -> Optional[TraceCapture]:
    """The in-scope :class:`TraceCapture`, if any."""
    return _active


def harness_trace(trace: Optional[TraceRecorder]) -> TraceRecorder:
    """Resolve a harness's trace argument against the active capture.

    * no capture: ``trace`` itself, or :data:`NULL_TRACE` when ``None`` —
      the historical default, bit-for-bit;
    * capture active: a fresh recorder when ``None``, else the explicit
      recorder — registered with the capture either way.  An explicit
      :data:`NULL_TRACE` always means "tracing off" and is never captured.
    """
    if _active is None:
        return trace if trace is not None else NULL_TRACE
    if trace is NULL_TRACE:
        return NULL_TRACE
    return _active.attach(trace)
