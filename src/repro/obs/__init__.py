"""Unified observability layer: metrics, trace export, run capture.

The repro's evaluation layers run deterministic simulations whose *results*
are content-addressed and byte-stable — so observability must ride alongside
without ever touching them.  This package provides the three pieces:

* :mod:`repro.obs.metrics` — a process-wide run-metrics registry (counters,
  gauges, host wall-clock timers) following the ``NULL_TRACE`` pattern: a
  no-op :data:`~repro.obs.metrics.NULL_METRICS` singleton when disabled,
  opt-in via ``REPRO_METRICS`` or :func:`~repro.obs.metrics.enable_metrics`.
  Hot layers (engine event loop, kernel fast path, sweep execution, result
  store, batch engine, collective auto-selector) are instrumented against
  it; none of its data feeds cache keys or report bytes.
* :mod:`repro.obs.chrome` — deterministic export of
  :class:`~repro.sim.trace.TraceRecorder` events/spans (plus host-side
  wall-clock spans) to Chrome trace-event JSON, loadable in Perfetto or
  ``chrome://tracing`` — the paper's Fig. 11 profiler view, but in a real
  trace viewer instead of an 80-column ASCII strip.
* :mod:`repro.obs.capture` — a context manager that transparently hands a
  live :class:`TraceRecorder` to every :class:`~repro.fused.base.OpHarness`
  built inside it, so ``python -m repro trace`` can profile any registered
  sweep without the runners knowing.
"""

from .capture import TraceCapture, active_capture, harness_trace
from .chrome import (
    EXPORT_SCHEMA,
    chrome_trace_dict,
    chrome_trace_json,
    validate_chrome_trace,
    write_chrome_trace,
)
from .metrics import (
    NULL_METRICS,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_metrics,
    metrics_env_enabled,
    reset_metrics,
)

__all__ = [
    "EXPORT_SCHEMA",
    "MetricsRegistry",
    "NULL_METRICS",
    "TraceCapture",
    "active_capture",
    "chrome_trace_dict",
    "chrome_trace_json",
    "disable_metrics",
    "enable_metrics",
    "get_metrics",
    "harness_trace",
    "metrics_env_enabled",
    "reset_metrics",
    "validate_chrome_trace",
    "write_chrome_trace",
]
