"""Normalized-AST fingerprints and the mirror-parity manifest.

A *fingerprint* is the SHA-256 of a function's AST dumped without
positions and without docstrings: renaming a file, reflowing comments, or
editing a docstring leaves it unchanged, while any change to the code —
an operand swapped, a guard added, an operation reordered — changes it.
That is exactly the granularity the analytic engine's scalar/batch
mirrors need: the batch twins replicate the scalar expression *order*
(results are bit-identical, not merely close), so any code edit to either
side must be consciously re-blessed against the equivalence suite.

The manifest (``src/repro/lint/mirror_manifest.json``) commits one
fingerprint per mirrored function plus the explicit cross-module pairs
that no naming convention can discover (``ops.predict_*`` and their
``batch._*_core`` twins).  ``repro lint --update-manifest`` rewrites it.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .core import LintContext, SourceFile

__all__ = [
    "MANIFEST_RELPATH",
    "MANIFEST_SCHEMA",
    "Manifest",
    "fingerprint",
    "function_index",
    "resolve_ref",
]

MANIFEST_SCHEMA = "repro.lint.mirror-manifest/v1"
MANIFEST_RELPATH = "src/repro/lint/mirror_manifest.json"


def _strip_docstrings(node: ast.AST) -> ast.AST:
    """Remove docstring statements from every body in a (copied) subtree."""
    for sub in ast.walk(node):
        body = getattr(sub, "body", None)
        if (isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Module))
                and body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)):
            sub.body = body[1:] or [ast.Pass()]
    return node


def fingerprint(node: ast.AST) -> str:
    """Position- and docstring-independent content hash of a function."""
    # Round-trip through a fresh parse of the dumped source region is
    # unnecessary: ast.dump without attributes already drops positions.
    import copy

    clean = _strip_docstrings(copy.deepcopy(node))
    dump = ast.dump(clean, annotate_fields=True, include_attributes=False)
    return hashlib.sha256(dump.encode("utf-8")).hexdigest()


def function_index(src: SourceFile) -> Dict[str, ast.AST]:
    """``qualname -> def node`` for every (possibly nested) function."""
    index: Dict[str, ast.AST] = {}

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                index[qual] = child
                visit(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            else:
                visit(child, prefix)

    visit(src.tree, "")
    return index


def resolve_ref(ctx: LintContext, ref: str
                ) -> Tuple[Optional[SourceFile], Optional[ast.AST]]:
    """Resolve ``"repro.analytic.comm:CommModel.wg_time"`` to its node."""
    module, _, qualname = ref.partition(":")
    relpath = "src/" + module.replace(".", "/") + ".py"
    src = ctx.get_file(relpath)
    if src is None:
        return None, None
    return src, function_index(src).get(qualname)


@dataclass
class Manifest:
    """In-memory form of the committed mirror manifest."""

    #: explicit ``[scalar_ref, batch_ref]`` pairs (cross-module mirrors
    #: that the ``*_batch`` naming convention cannot discover)
    extra_pairs: List[Tuple[str, str]] = field(default_factory=list)
    #: ``"module:qualname" -> fingerprint`` for every blessed function
    fingerprints: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Manifest":
        if not path.is_file():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("schema") != MANIFEST_SCHEMA:
            raise ValueError(
                f"{path}: unknown manifest schema {data.get('schema')!r} "
                f"(expected {MANIFEST_SCHEMA!r})")
        return cls(
            extra_pairs=[(s, b) for s, b in data.get("extra_pairs", [])],
            fingerprints=dict(data.get("fingerprints", {})))

    def save(self, path: Path) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        data = {
            "schema": MANIFEST_SCHEMA,
            "extra_pairs": [list(p) for p in sorted(self.extra_pairs)],
            "fingerprints": dict(sorted(self.fingerprints.items())),
        }
        path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
