"""Rule ``determinism``: nothing volatile may feed cache keys or reports.

The orchestration layer's core guarantee is that serial, parallel, cached,
and re-run sweeps are *byte-identical* — cache keys are content hashes and
reports carry no volatile fields.  This rule statically bans the inputs
that would silently break that guarantee anywhere in the production tree:

* **wall clocks and entropy** — ``time.time``/``perf_counter``/
  ``datetime.now``/``os.urandom``/``uuid``/stdlib ``random``: banned
  everywhere except the two sanctioned host-timing modules
  (``bench/perf.py``, ``obs/metrics.py``), which exist to measure wall
  clock and never feed results back into records.
* **unseeded NumPy RNGs** — ``np.random.default_rng()`` without a seed
  and the legacy global-state ``np.random.*`` functions; workload data
  must derive from the scenario's :meth:`ScenarioSpec.stable_seed`.
* **unsorted serialization** — ``json.dumps``/``json.dump`` without
  ``sort_keys=True`` (exempt when immediately re-parsed by
  ``json.loads(...)``, a pure canonicalization round-trip).
* **unordered iteration** — iterating a set literal/comprehension (or
  materializing one via ``list``/``tuple``) whose order would leak into
  output; wrap in ``sorted(...)`` instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .core import Finding, LintContext, lint_rule
from .names import import_aliases, resolve_call

__all__ = ["ALLOWED_WALL_CLOCK_MODULES"]

#: Sanctioned host-timing sites: bench timers and the metrics registry's
#: perf counters.  Wall clock measured here never enters cache records.
ALLOWED_WALL_CLOCK_MODULES = frozenset({
    "src/repro/bench/perf.py",
    "src/repro/obs/metrics.py",
})

_BANNED_CALLS = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
}

#: Whole modules whose call surface is nondeterministic by design.
_BANNED_MODULES = ("random.", "secrets.")

#: Legacy numpy global-RNG functions (unseedable per call site).
_NUMPY_LEGACY = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "shuffle", "permutation", "choice", "normal", "standard_normal",
    "uniform", "bytes",
})


def _check_calls(src, aliases) -> Iterator[Finding]:
    wall_clock_ok = src.relpath in ALLOWED_WALL_CLOCK_MODULES
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        name = resolve_call(node.func, aliases)
        if name is None:
            continue
        if name in _BANNED_CALLS or name.startswith(_BANNED_MODULES):
            if wall_clock_ok:
                continue
            yield Finding(
                src.relpath, node.lineno, "determinism",
                f"call to {name}() is nondeterministic; cache keys and "
                f"reports must be reproducible (sanctioned host-timing "
                f"lives in bench/perf.py and obs/metrics.py)")
        elif name == "numpy.random.default_rng" and not (node.args
                                                         or node.keywords):
            yield Finding(
                src.relpath, node.lineno, "determinism",
                "numpy.random.default_rng() without a seed draws OS "
                "entropy; derive the seed from the scenario "
                "(ScenarioSpec.stable_seed())")
        elif (name.startswith("numpy.random.")
              and name.rsplit(".", 1)[1] in _NUMPY_LEGACY):
            yield Finding(
                src.relpath, node.lineno, "determinism",
                f"legacy global-state {name}() is unseeded at the call "
                f"site; use a seeded numpy.random.default_rng(seed)")


def _check_json(src, aliases) -> Iterator[Finding]:
    parents = src.parents
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        name = resolve_call(node.func, aliases)
        if name not in ("json.dumps", "json.dump"):
            continue
        sort_keys = any(
            kw.arg == "sort_keys"
            and isinstance(kw.value, ast.Constant) and kw.value.value is True
            for kw in node.keywords)
        if sort_keys:
            continue
        # A dumps immediately re-parsed by json.loads is a
        # canonicalization round-trip: key order never reaches bytes that
        # anyone keeps.
        parent = parents.get(node)
        if (isinstance(parent, ast.Call)
                and resolve_call(parent.func, aliases) == "json.loads"):
            continue
        yield Finding(
            src.relpath, node.lineno, "determinism",
            f"{name}(...) without sort_keys=True serializes dict insertion "
            f"order; cached records and reports must be byte-stable")


def _check_set_iteration(src) -> Iterator[Finding]:
    def is_set(node: ast.AST) -> bool:
        return isinstance(node, (ast.Set, ast.SetComp))

    msg = ("iteration order of a set is undefined across runs; sort it "
           "(sorted(...)) before it can influence output")
    for node in ast.walk(src.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)) and is_set(node.iter):
            yield Finding(src.relpath, node.iter.lineno, "determinism", msg)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                               ast.DictComp)):
            for gen in node.generators:
                if is_set(gen.iter):
                    yield Finding(src.relpath, gen.iter.lineno,
                                  "determinism", msg)
        elif (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and len(node.args) == 1 and is_set(node.args[0])):
            yield Finding(src.relpath, node.lineno, "determinism", msg)


@lint_rule(
    "determinism",
    "no wall clocks, entropy, unseeded RNGs, or unordered serialization "
    "in modules that feed cache keys and reports")
def check_determinism(ctx: LintContext) -> Iterator[Finding]:
    for src in ctx.files_under():
        aliases = import_aliases(src.tree)
        yield from _check_calls(src, aliases)
        yield from _check_json(src, aliases)
        yield from _check_set_iteration(src)
