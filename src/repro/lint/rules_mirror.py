"""Rule ``mirror-parity``: scalar closed forms and batch twins move together.

PR 6 vectorized the analytic engine by giving every scalar closed form a
NumPy twin that replicates its expression *order*, so results are
bit-identical (``tests/analytic/test_batch_equivalence.py`` asserts exact
``==``).  That contract is brittle in exactly one way: someone edits one
side and forgets the other, and nothing notices until the equivalence
suite runs — after the wrong numbers may already be in ``.repro-cache/``.

This rule catches the drift at diff time.  It discovers mirror pairs two
ways:

* **convention** — a function/method named ``X_batch`` in the analytic
  surface (``analytic/``, ``hw/memory.py``, ``collectives/``) pairs with
  the ``X`` defined in the same scope (class or module);
* **manifest** — explicit cross-module pairs (``ops.predict_*`` and
  their ``batch._*_core`` twins) listed under ``extra_pairs`` in
  ``src/repro/lint/mirror_manifest.json``.

Every function in a pair has a committed normalized-AST fingerprint
(:mod:`repro.lint.fingerprint`).  Any mismatch — an edited scalar, an
edited twin, a new unblessed pair, a stale manifest entry — fails the
gate until ``repro lint --update-manifest`` re-blesses the tree, which a
reviewer should only accept alongside a green batch-equivalence suite.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

from .core import Finding, LintContext, lint_rule
from .fingerprint import (
    MANIFEST_RELPATH,
    Manifest,
    fingerprint,
    function_index,
    resolve_ref,
)

#: Modules scanned for the ``X``/``X_batch`` naming convention.
_CONVENTION_SCOPE = (
    "src/repro/analytic/",
    "src/repro/hw/memory.py",
    "src/repro/collectives/",
)

_BLESS_HINT = ("run `python -m repro lint --update-manifest` to re-bless "
               "after verifying the batch-equivalence suite is green")


def _discover_pairs(ctx: LintContext) -> List[Tuple[str, str, int]]:
    """Convention pairs as ``(scalar_ref, batch_ref, batch_lineno)``."""
    pairs = []
    for src in ctx.files_under(*_CONVENTION_SCOPE):
        index = function_index(src)
        for qual in sorted(index):
            if not qual.endswith("_batch"):
                continue
            node = index[qual]
            scalar_qual = qual[: -len("_batch")]
            pairs.append((f"{src.module}:{scalar_qual}",
                          f"{src.module}:{qual}", node.lineno))
    return pairs


def _current_fingerprints(ctx: LintContext,
                          refs: List[str]) -> Dict[str, Tuple[str, str, int]]:
    """``ref -> (relpath, fingerprint, lineno)`` for refs that resolve."""
    out = {}
    for ref in refs:
        src, node = resolve_ref(ctx, ref)
        if src is None or node is None:
            continue
        out[ref] = (src.relpath, fingerprint(node), node.lineno)
    return out


@lint_rule(
    "mirror-parity",
    "scalar closed forms and their vectorized batch twins must match the "
    "committed fingerprint manifest")
def check_mirror_parity(ctx: LintContext) -> Iterator[Finding]:
    manifest_path = ctx.root / MANIFEST_RELPATH
    manifest = Manifest.load(manifest_path)

    pairs = _discover_pairs(ctx)
    tracked: List[str] = []
    for scalar_ref, batch_ref, lineno in pairs:
        src, node = resolve_ref(ctx, scalar_ref)
        if node is None:
            batch_src, _ = resolve_ref(ctx, batch_ref)
            yield Finding(
                batch_src.relpath if batch_src else MANIFEST_RELPATH,
                lineno, "mirror-parity",
                f"{batch_ref} has no scalar sibling "
                f"{scalar_ref.partition(':')[2]} in the same scope; every "
                f"*_batch twin mirrors a scalar closed form")
            continue
        tracked.extend([scalar_ref, batch_ref])
    for scalar_ref, batch_ref in manifest.extra_pairs:
        for ref in (scalar_ref, batch_ref):
            src, node = resolve_ref(ctx, ref)
            if node is None:
                yield Finding(
                    MANIFEST_RELPATH, 1, "mirror-parity",
                    f"manifest extra_pair member {ref} does not resolve; "
                    f"fix the pair or {_BLESS_HINT}")
            else:
                tracked.append(ref)

    current = _current_fingerprints(ctx, tracked)

    if ctx.update_manifest:
        before = dict(manifest.fingerprints)
        manifest.fingerprints = {ref: fp for ref, (_, fp, _) in
                                 sorted(current.items())}
        manifest.save(manifest_path)
        added = sorted(set(manifest.fingerprints) - set(before))
        changed = sorted(r for r in manifest.fingerprints
                         if r in before
                         and before[r] != manifest.fingerprints[r])
        removed = sorted(set(before) - set(manifest.fingerprints))
        for ref in added:
            ctx.notes.append(f"mirror-parity: blessed new mirror {ref}")
        for ref in changed:
            ctx.notes.append(f"mirror-parity: re-blessed edited {ref}")
        for ref in removed:
            ctx.notes.append(f"mirror-parity: dropped stale {ref}")
        if not (added or changed or removed):
            ctx.notes.append("mirror-parity: manifest already current")
        return

    for ref in sorted(set(tracked)):
        relpath, fp, lineno = current[ref]
        blessed = manifest.fingerprints.get(ref)
        if blessed is None:
            yield Finding(
                relpath, lineno, "mirror-parity",
                f"{ref} participates in a scalar/batch mirror pair but "
                f"has no blessed fingerprint; {_BLESS_HINT}")
        elif blessed != fp:
            yield Finding(
                relpath, lineno, "mirror-parity",
                f"{ref} changed since its mirror fingerprint was blessed "
                f"(its scalar/batch twin may now drift); {_BLESS_HINT}")
    for ref in sorted(set(manifest.fingerprints) - set(current)):
        yield Finding(
            MANIFEST_RELPATH, 1, "mirror-parity",
            f"manifest lists {ref} but it no longer exists; {_BLESS_HINT}")
