"""``python -m repro lint`` — the static invariant gate.

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage error (unknown rule,
missing tree).  ``--json`` emits the machine-readable findings document
(schema ``repro.lint.findings/v1``)::

    {
      "schema": "repro.lint.findings/v1",
      "root": "<absolute path that was linted>",
      "rules": ["determinism", ...],          // rules that ran, sorted
      "count": 2,
      "findings": [
        {"file": "src/repro/x.py", "line": 10,
         "rule": "determinism", "message": "..."},
        ...
      ],
      "notes": ["mirror-parity: blessed new mirror ...", ...]
    }

Findings are sorted by (file, line, rule, message) and paths are
repo-relative POSIX, so the document is byte-stable across runs and
machines — CI archives it as an artifact on failure.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .core import RULES, _ensure_rules_loaded, run_lint

FINDINGS_SCHEMA = "repro.lint.findings/v1"


def build_parser(parser: Optional[argparse.ArgumentParser] = None
                 ) -> argparse.ArgumentParser:
    """Populate ``parser`` (or a fresh one) with the lint options."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro lint",
            description="statically enforce the repo's determinism, "
                        "mirror-parity, and hot-path contracts")
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the repro.lint.findings/v1 JSON document")
    parser.add_argument(
        "--rules", default=None, metavar="a,b",
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--update-manifest", action="store_true",
        help="re-bless the mirror-parity fingerprint manifest from the "
             "current tree instead of checking against it")
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help="lint this tree instead of the installed repo root")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit")
    return parser


def run(args: argparse.Namespace) -> int:
    _ensure_rules_loaded()
    if args.list_rules:
        for rule_id in sorted(RULES):
            print(f"{rule_id:20s} {RULES[rule_id].summary}")
        return 0

    rules = None
    if args.rules is not None:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    root = Path(args.root) if args.root else None

    try:
        findings, ctx = run_lint(root=root, rules=rules,
                                 update_manifest=args.update_manifest)
    except (KeyError, FileNotFoundError, ValueError) as exc:
        msg = exc.args[0] if exc.args else str(exc)
        print(f"repro lint: {msg}", file=sys.stderr)
        return 2

    if args.as_json:
        doc = {
            "schema": FINDINGS_SCHEMA,
            "root": str(ctx.root),
            "rules": sorted(RULES) if rules is None else sorted(rules),
            "count": len(findings),
            "findings": [f.to_dict() for f in findings],
            "notes": list(ctx.notes),
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        for note in ctx.notes:
            print(note)
        for f in findings:
            print(f.render())
        if findings:
            n = len(findings)
            print(f"repro lint: {n} finding{'s' if n != 1 else ''}",
                  file=sys.stderr)
    return 1 if findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    return run(build_parser().parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
