"""Import-alias resolution shared by the lint rules.

The rules reason about *dotted origin names* ("what does this call
actually invoke?"), so ``from time import perf_counter as pc`` followed by
``pc()`` must resolve to ``time.perf_counter`` and ``import numpy as np``
followed by ``np.random.default_rng()`` to ``numpy.random.default_rng``.
Resolution is deliberately conservative: an attribute chain only resolves
when its root name was bound by an import statement in the same module —
``self.nic.latency`` never resolves, so object attributes can't collide
with banned stdlib names.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

__all__ = ["import_aliases", "resolve_call"]


def import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map every import-bound local name to its dotted origin.

    Relative imports resolve to a ``.``-prefixed origin (one dot per
    level), e.g. ``from ..obs.metrics import get_metrics`` yields
    ``{"get_metrics": "..obs.metrics.get_metrics"}`` — never confusable
    with an absolute stdlib name.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = origin
        elif isinstance(node, ast.ImportFrom):
            prefix = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{prefix}.{alias.name}" if prefix \
                    else alias.name
    return aliases


def resolve_call(func: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Dotted origin of a call target, or ``None`` if it doesn't resolve.

    Walks ``a.b.c`` down to its root :class:`ast.Name`; resolves only when
    that root is an import binding.
    """
    parts = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    origin = aliases.get(node.id)
    if origin is None:
        return None
    parts.append(origin)
    return ".".join(reversed(parts))
