"""Rule ``param-compat``: new scenario parameters default to absence.

The store's central invariant since PR 3: a scenario that never mentions
a parameter must keep exactly the content key it had before that
parameter existed.  ``backend`` and ``algo`` both follow the pattern —
the field defaults to ``None``, absence means legacy, and selecting the
default *removes* the key from the params mapping — so every pre-existing
cached record and golden report stays byte-identical.

This rule enforces the pattern structurally on the spec and workload
dataclasses that scenario params flow through: any field not listed in
the committed baseline (``src/repro/lint/param_baseline.json``, the
grandfathered seed-era fields) must carry a literal ``None`` default
(``= None`` or ``field(default=None)``).  A ``None``-defaulted field is
keyword-addressable at every call site and representable-by-absence in
the canonical params JSON — the two properties that keep old keys
stable.  Growing a new tracked config class requires adding its baseline
entry, which is the moment to decide which fields are key-bearing.
"""

from __future__ import annotations

import ast
import json
from typing import Dict, Iterator, List, Optional

from .core import Finding, LintContext, SourceFile, lint_rule

__all__ = ["BASELINE_RELPATH"]

BASELINE_RELPATH = "src/repro/lint/param_baseline.json"
BASELINE_SCHEMA = "repro.lint.param-baseline/v1"

#: Where tracked dataclasses live: the scenario spec itself plus the
#: fused-operator workload configs whose fields become scenario params.
_SPEC_FILE = "src/repro/experiments/specs.py"
_CONFIG_SCOPE = "src/repro/fused/"


def _is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _tracked_classes(ctx: LintContext) -> List[tuple]:
    """``(src, ClassDef, key)`` for every tracked dataclass."""
    out = []
    spec = ctx.get_file(_SPEC_FILE)
    if spec is not None:
        for node in spec.tree.body:
            if (isinstance(node, ast.ClassDef) and _is_dataclass(node)
                    and node.name in ("ScenarioSpec", "SweepSpec")):
                out.append((spec, node, f"{spec.module}:{node.name}"))
    for src in ctx.files_under(_CONFIG_SCOPE):
        for node in src.tree.body:
            if (isinstance(node, ast.ClassDef) and _is_dataclass(node)
                    and node.name.endswith("Config")):
                out.append((src, node, f"{src.module}:{node.name}"))
    return out


def _default_is_none(value: Optional[ast.AST]) -> bool:
    """Does this AnnAssign value denote a literal ``None`` default?"""
    if value is None:
        return False
    if isinstance(value, ast.Constant) and value.value is None:
        return True
    if isinstance(value, ast.Call):
        target = value.func
        name = target.attr if isinstance(target, ast.Attribute) else \
            getattr(target, "id", None)
        if name == "field":
            return any(kw.arg == "default"
                       and isinstance(kw.value, ast.Constant)
                       and kw.value.value is None
                       for kw in value.keywords)
    return False


def _load_baseline(ctx: LintContext) -> Optional[Dict[str, List[str]]]:
    path = ctx.root / BASELINE_RELPATH
    if not path.is_file():
        return None
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: unknown baseline schema {data.get('schema')!r}")
    return {k: list(v) for k, v in data.get("classes", {}).items()}


@lint_rule(
    "param-compat",
    "fields added to ScenarioSpec / fused op configs must default to "
    "None so legacy cache keys stay byte-identical")
def check_param_compat(ctx: LintContext) -> Iterator[Finding]:
    baseline = _load_baseline(ctx)
    if baseline is None:
        # A tree without the baseline (e.g. a test fixture that exercises
        # other rules) grandfathers nothing.
        baseline = {}
    src: SourceFile
    for src, node, key in _tracked_classes(ctx):
        if key not in baseline:
            yield Finding(
                src.relpath, node.lineno, "param-compat",
                f"dataclass {key} carries scenario parameters but has no "
                f"entry in {BASELINE_RELPATH}; list its key-bearing "
                f"fields there (new fields still must default to None)")
            continue
        grandfathered = set(baseline[key])
        for stmt in node.body:
            if not (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)):
                continue
            name = stmt.target.id
            if name in grandfathered or _default_is_none(stmt.value):
                continue
            yield Finding(
                src.relpath, stmt.lineno, "param-compat",
                f"{key}.{name} is a new field without a None default; "
                f"scenario parameters follow absence-means-legacy (the "
                f"backend/algo pattern) so pre-existing cache keys and "
                f"reports never change")
