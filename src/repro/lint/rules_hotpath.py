"""Rule ``hot-path-guards``: observability stays free when disabled.

PR 1 and PR 7 established the pattern that keeps the DES fast: trace and
metrics calls in the simulator's hot loops sit behind an ``.enabled``
test (``if self.trace.enabled:`` / ``if m.enabled:``), often hoisted into
a local (``tracing = self.trace.enabled``) so the loop pays one truth
test instead of an attribute chase plus a no-op call per event.  The
fast-path equivalence suites prove *correctness* is unchanged either way;
this rule protects the *performance* contract — a ``record``/``inc``
landing unguarded inside the event loop or a slot loop costs a real call
per iteration on the disabled path, exactly where the engine spends its
time.

Scope: the simulation core (``sim/``, minus ``sim/trace.py`` which
*implements* the no-op guard), the kernel runtime (``kernels/``), and the
collective schedules (``collectives/``).  A trace/metrics call inside a
``for``/``while`` loop must have an ancestor ``if`` whose test references
``.enabled`` — directly, or through a local name assigned from an
``.enabled`` expression anywhere in the enclosing function (the hoisted
form).  Calls outside loops are per-launch, O(1), and exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from .core import Finding, LintContext, lint_rule

#: Methods of TraceRecorder / MetricsRegistry that record per event.
_RECORDING_METHODS = frozenset({"inc", "gauge", "gauge_max", "record"})

_SCOPE = ("src/repro/sim/", "src/repro/kernels/", "src/repro/collectives/")
_EXCLUDE = ("src/repro/sim/trace.py",)

_FUNCS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _mentions_enabled(node: ast.AST, enabled_locals: Set[str]) -> bool:
    """Does this expression reference ``.enabled`` or a hoisted alias?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "enabled":
            return True
        if isinstance(sub, ast.Name) and sub.id in enabled_locals:
            return True
    return False


def _enabled_locals(func: ast.AST) -> Set[str]:
    """Names assigned (anywhere in ``func``) from an expression that
    references ``.enabled`` — the hoisted-guard idiom."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and _mentions_enabled(node.value, set()):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


@lint_rule(
    "hot-path-guards",
    "trace/metrics calls inside sim, kernel, and collective loops must "
    "sit behind an .enabled guard")
def check_hot_path_guards(ctx: LintContext) -> Iterator[Finding]:
    for src in ctx.files_under(*_SCOPE, exclude=_EXCLUDE):
        for node in ast.walk(src.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _RECORDING_METHODS):
                continue
            in_loop = False
            func = None
            # Walk outward to the innermost enclosing function; loops and
            # guards beyond it execute on a different cadence and don't
            # count.
            for ancestor in src.ancestors(node):
                if isinstance(ancestor, _FUNCS):
                    func = ancestor
                    break
                if isinstance(ancestor, (ast.For, ast.AsyncFor, ast.While)):
                    in_loop = True
            if not in_loop:
                continue
            enabled_locals = _enabled_locals(func) if func is not None \
                else set()
            is_guarded = False
            for ancestor in src.ancestors(node):
                if isinstance(ancestor, _FUNCS):
                    break
                if (isinstance(ancestor, ast.If)
                        and _mentions_enabled(ancestor.test, enabled_locals)):
                    is_guarded = True
                    break
            if not is_guarded:
                yield Finding(
                    src.relpath, node.lineno, "hot-path-guards",
                    f".{node.func.attr}(...) inside a loop without an "
                    f".enabled guard; hoist `if x.enabled:` (or a local "
                    f"alias) around it — disabled-path hot loops must "
                    f"cost one truth test, not a call per iteration")
