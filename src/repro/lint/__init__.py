"""Static invariant checker for the repro tree (``python -m repro lint``).

AST-based, stdlib-only.  See :mod:`repro.lint.core` for the engine and
the ``rules_*`` modules for the individual invariants.
"""

from .core import (
    RULES,
    Finding,
    LintContext,
    Rule,
    SourceFile,
    collect_files,
    detect_root,
    lint_rule,
    run_lint,
)
from .fingerprint import MANIFEST_RELPATH, Manifest, fingerprint

__all__ = [
    "Finding",
    "LintContext",
    "MANIFEST_RELPATH",
    "Manifest",
    "RULES",
    "Rule",
    "SourceFile",
    "collect_files",
    "detect_root",
    "fingerprint",
    "lint_rule",
    "run_lint",
]
