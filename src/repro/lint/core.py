"""Engine of ``repro lint``: file collection, suppressions, rule registry.

The linter is a purpose-built AST checker (stdlib :mod:`ast` only) that
statically enforces the repo's cross-cutting contracts *before* the
runtime byte-compare suites get a chance to catch drift: determinism of
everything that feeds cache keys and reports, scalar/batch mirror parity
in the analytic engine, ``.enabled`` guards around observability calls in
hot loops, the absence-means-legacy rule for scenario parameters, and
registry/layering integrity.

Findings are structured (file, line, rule, message) and deterministic:
repo-relative POSIX paths, sorted by (file, line, rule, message), so two
runs over the same tree are byte-identical — the same property the sweep
reports have.

Suppression
-----------

A finding is suppressed by a comment on the line it is anchored to::

    t0 = time.perf_counter()   # repro-lint: ignore[determinism]

``ignore[a,b]`` suppresses the named rules only; a bare
``# repro-lint: ignore`` suppresses every rule on that line.  Suppressions
are deliberately per-line so each one is visible next to the code it
excuses — there is no file- or directory-level escape hatch.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "RULES",
    "SourceFile",
    "collect_files",
    "detect_root",
    "lint_rule",
    "run_lint",
]

#: ``# repro-lint: ignore`` or ``# repro-lint: ignore[rule-a,rule-b]``.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<rules>[a-z0-9_,\- ]+)\])?")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a source line."""

    file: str       #: repo-relative POSIX path
    line: int       #: 1-indexed
    rule: str       #: rule id (kebab-case)
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {"file": self.file, "line": self.line,
                "rule": self.rule, "message": self.message}

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"


class SourceFile:
    """A parsed source file plus the lookups every rule needs."""

    def __init__(self, root: Path, path: Path):
        self.path = path
        self.relpath = path.relative_to(root).as_posix()
        self.text = path.read_text(encoding="utf-8")
        self.tree = ast.parse(self.text, filename=str(path))
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None
        self._suppressions: Optional[Dict[int, Optional[FrozenSet[str]]]] = None

    @property
    def module(self) -> str:
        """Dotted module name (``src/repro/sim/engine.py`` ->
        ``repro.sim.engine``)."""
        parts = list(Path(self.relpath).with_suffix("").parts)
        if parts and parts[0] == "src":
            parts = parts[1:]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child -> parent map over the whole tree (built lazily once)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        parents = self.parents
        while node in parents:
            node = parents[node]
            yield node

    @property
    def suppressions(self) -> Dict[int, Optional[FrozenSet[str]]]:
        """line -> suppressed rule ids (``None`` = all rules)."""
        if self._suppressions is None:
            table: Dict[int, Optional[FrozenSet[str]]] = {}
            for lineno, line in enumerate(self.text.splitlines(), start=1):
                m = _SUPPRESS_RE.search(line)
                if m is None:
                    continue
                names = m.group("rules")
                if names is None:
                    table[lineno] = None
                else:
                    table[lineno] = frozenset(
                        n.strip() for n in names.split(",") if n.strip())
            self._suppressions = table
        return self._suppressions

    def suppressed(self, line: int, rule: str) -> bool:
        if line not in self.suppressions:
            return False
        rules = self.suppressions[line]
        return rules is None or rule in rules


@dataclass
class LintContext:
    """Everything a rule check receives."""

    root: Path
    files: List[SourceFile]
    update_manifest: bool = False
    #: human-readable notes emitted by ``--update-manifest`` runs
    notes: List[str] = field(default_factory=list)

    def files_under(self, *prefixes: str,
                    exclude: Tuple[str, ...] = ()) -> List[SourceFile]:
        """Scanned files whose relpath starts with any prefix (all files
        when no prefix is given), minus exact ``exclude`` relpaths."""
        out = []
        for f in self.files:
            if f.relpath in exclude:
                continue
            if not prefixes or any(f.relpath.startswith(p) for p in prefixes):
                out.append(f)
        return out

    def get_file(self, relpath: str) -> Optional[SourceFile]:
        for f in self.files:
            if f.relpath == relpath:
                return f
        return None


@dataclass(frozen=True)
class Rule:
    """A registered invariant check."""

    id: str
    summary: str
    check: Callable[[LintContext], Iterable[Finding]]


RULES: Dict[str, Rule] = {}


def lint_rule(rule_id: str, summary: str) -> Callable[[Callable], Callable]:
    """Decorator: register ``fn(ctx) -> Iterable[Finding]`` as a rule."""

    def deco(fn: Callable[[LintContext], Iterable[Finding]]) -> Callable:
        if rule_id in RULES:
            raise ValueError(f"lint rule {rule_id!r} already registered")
        RULES[rule_id] = Rule(id=rule_id, summary=summary, check=fn)
        return fn

    return deco


def detect_root() -> Path:
    """The repo root this installation lints by default.

    Derived from the package location (``<root>/src/repro/lint/core.py``),
    so ``python -m repro lint`` works from any working directory.
    """
    return Path(__file__).resolve().parents[3]


def collect_files(root: Path) -> List[SourceFile]:
    """Parse every production source file under ``<root>/src/repro``."""
    src = root / "src" / "repro"
    if not src.is_dir():
        raise FileNotFoundError(f"no src/repro package under {root}")
    files = []
    for path in sorted(src.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        files.append(SourceFile(root, path))
    return files


def _ensure_rules_loaded() -> None:
    """Import the built-in rule modules (registration side effect)."""
    from . import rules_determinism  # noqa: F401
    from . import rules_hotpath  # noqa: F401
    from . import rules_mirror  # noqa: F401
    from . import rules_params  # noqa: F401
    from . import rules_registry  # noqa: F401


def run_lint(root: Optional[Path] = None,
             rules: Optional[Iterable[str]] = None,
             update_manifest: bool = False
             ) -> Tuple[List[Finding], LintContext]:
    """Run the selected rules (default: all) over ``root``'s tree.

    Returns the suppression-filtered, deterministically sorted findings
    plus the context (whose ``notes`` carry ``--update-manifest`` output).
    """
    _ensure_rules_loaded()
    root = detect_root() if root is None else Path(root).resolve()
    ctx = LintContext(root=root, files=collect_files(root),
                      update_manifest=update_manifest)
    selected = sorted(RULES) if rules is None else list(rules)
    unknown = [r for r in selected if r not in RULES]
    if unknown:
        raise KeyError(
            f"unknown lint rule(s) {unknown}; available: {sorted(RULES)}")
    findings: List[Finding] = []
    by_path = {f.relpath: f for f in ctx.files}
    for rule_id in selected:
        for finding in RULES[rule_id].check(ctx):
            src = by_path.get(finding.file)
            if src is not None and src.suppressed(finding.line, finding.rule):
                continue
            findings.append(finding)
    return sorted(findings), ctx
