"""Rules ``registry-integrity`` and ``layering``.

``registry-integrity`` — every runner/assembler *name* used when building
scenarios and sweeps must correspond to a ``@runner(...)``/
``@assembler(...)`` registration somewhere in the tree.  The registries
resolve lazily by string (worker processes re-import and re-resolve), so
a typo'd name survives import, passes ``list``, and only explodes when
the scenario finally executes — or worse, inside a spawn worker.  This
check cross-references the string literals statically.

``layering`` — the simulation core must stay importable without the
observability package: ``sim/`` modules may not import ``repro.obs`` at
module scope (PR 7 threaded metrics into the engine through a
lazily-bound ``_metrics()`` indirection for exactly this reason; obs sits
*above* sim in the layering and imports it back).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

from .core import Finding, LintContext, lint_rule

_FUNCS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _literal(node: ast.AST) -> str:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return ""


def _registrations(ctx: LintContext) -> Dict[str, set]:
    """Names registered via ``@runner("x")`` / ``@assembler("x")``."""
    names: Dict[str, set] = {"runner": set(), "assembler": set()}
    for src in ctx.files_under():
        for node in ast.walk(src.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for deco in node.decorator_list:
                if not (isinstance(deco, ast.Call)
                        and isinstance(deco.func, ast.Name)
                        and deco.func.id in names and deco.args):
                    continue
                name = _literal(deco.args[0])
                if name:
                    names[deco.func.id].add(name)
    return names


def _usages(ctx: LintContext) -> List[Tuple[str, str, str, int]]:
    """``(kind, name, relpath, lineno)`` for every literal runner or
    assembler reference at a scenario/sweep construction site."""
    out = []
    for src in ctx.files_under():
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            callee = func.attr if isinstance(func, ast.Attribute) else \
                getattr(func, "id", "")
            owner = ""
            if isinstance(func, ast.Attribute) and isinstance(func.value,
                                                              ast.Name):
                owner = func.value.id
            # scenario("runner", ...) / ScenarioSpec.make("runner", ...)
            if (callee == "scenario"
                    or (callee == "make" and owner == "ScenarioSpec")):
                if node.args:
                    name = _literal(node.args[0])
                    if name:
                        out.append(("runner", name, src.relpath,
                                    node.lineno))
            # runner= / assembler= keywords on any constructor-ish call
            # (ScenarioSpec(...), SweepSpec.make(...), MegaSweepSpec.make).
            for kw in node.keywords:
                if kw.arg in ("runner", "assembler"):
                    name = _literal(kw.value)
                    if name:
                        out.append((kw.arg, name, src.relpath, kw.value.lineno))
            # MegaSweepSpec.make(name, title, runner, ...) positional form.
            if (callee == "make" and owner == "MegaSweepSpec"
                    and len(node.args) >= 3):
                name = _literal(node.args[2])
                if name:
                    out.append(("runner", name, src.relpath,
                                node.args[2].lineno))
    return out


@lint_rule(
    "registry-integrity",
    "every runner/assembler name used by a sweep must resolve to a "
    "registration")
def check_registry_integrity(ctx: LintContext) -> Iterator[Finding]:
    registered = _registrations(ctx)
    for kind, name, relpath, lineno in _usages(ctx):
        if name not in registered[kind]:
            known = ", ".join(sorted(registered[kind])) or "(none)"
            yield Finding(
                relpath, lineno, "registry-integrity",
                f"{kind} {name!r} is not registered anywhere "
                f"(@{kind}(...) names: {known}); the lookup would only "
                f"fail at execution time, possibly inside a spawn worker")


@lint_rule(
    "layering",
    "sim/ must not import repro.obs at module scope (the engine binds "
    "metrics lazily)")
def check_layering(ctx: LintContext) -> Iterator[Finding]:
    for src in ctx.files_under("src/repro/sim/"):
        for node in ast.walk(src.tree):
            target = None
            if isinstance(node, ast.ImportFrom):
                # Resolve the relative form against this module's package.
                package = src.module.rsplit(".", 1)[0]  # repro.sim
                if node.level:
                    base = package.split(".")
                    if node.level > 1:
                        base = base[: -(node.level - 1)]
                    target = ".".join(base + ([node.module]
                                              if node.module else []))
                else:
                    target = node.module or ""
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.startswith("repro.obs"):
                        target = alias.name
                        break
            if not target or not target.startswith("repro.obs"):
                continue
            if any(isinstance(a, _FUNCS) for a in src.ancestors(node)):
                continue        # lazy, inside-function import: the pattern
            yield Finding(
                src.relpath, node.lineno, "layering",
                f"module-scope import of {target} from the simulation "
                f"core; obs sits above sim — bind it lazily inside the "
                f"function that needs it (see sim/engine.py:_metrics)")
