"""Element-wise activations with their (bandwidth-bound) cost model."""

from __future__ import annotations

import numpy as np
from numpy.typing import NDArray

from ..hw.gpu import WgCost

__all__ = ["relu", "gelu", "sigmoid", "elementwise_cost", "ACTIVATIONS"]


def relu(x: NDArray) -> NDArray:
    return np.maximum(x, 0)


def gelu(x: NDArray) -> NDArray:
    """Tanh-approximation GELU (the form transformer MLPs use)."""
    c = np.sqrt(2.0 / np.pi).astype(x.dtype) if hasattr(x, "dtype") else 0.7978845608
    x3 = x * x * x
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x3)))


def sigmoid(x: NDArray) -> NDArray:
    out = np.empty_like(x, dtype=np.result_type(x.dtype, np.float32))
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out.astype(x.dtype)


ACTIVATIONS = {"relu": relu, "gelu": gelu, "sigmoid": sigmoid, "none": lambda x: x}


def elementwise_cost(n_elems: int, itemsize: int = 4,
                     flops_per_elem: float = 1.0) -> WgCost:
    """Read + write every element once; a few FLOPs each."""
    if n_elems < 0:
        raise ValueError("n_elems must be >= 0")
    return WgCost(flops=flops_per_elem * n_elems,
                  bytes=2.0 * n_elems * itemsize, dtype="fp32")
