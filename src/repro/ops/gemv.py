"""Matrix-vector multiply (the transformer decode-phase operator).

The paper fuses GEMV with AllReduce for the token (decode) phase of
tensor-parallel transformer inference: each GPU holds a row-shard of the
second MLP weight matrix and produces a partial output vector.  GPU GEMV
kernels tile the *output* vector across WGs; each tile can be communicated
independently — the property the fused operator exploits.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..hw.gpu import WgCost

__all__ = ["gemv", "gemv_wg_cost", "split_tiles"]


def gemv(a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """``y = A @ x`` with shape checks. A: (M, N), x: (N,) -> y: (M,)."""
    if a.ndim != 2:
        raise ValueError(f"A must be 2-D, got {a.shape}")
    if x.ndim != 1:
        raise ValueError(f"x must be 1-D, got {x.shape}")
    if a.shape[1] != x.shape[0]:
        raise ValueError(f"shape mismatch: A {a.shape} @ x {x.shape}")
    return a @ x


def split_tiles(extent: int, tile: int) -> List[Tuple[int, int]]:
    """Split ``[0, extent)`` into contiguous tiles of at most ``tile``."""
    if extent < 1:
        raise ValueError(f"extent must be >= 1, got {extent}")
    if tile < 1:
        raise ValueError(f"tile must be >= 1, got {tile}")
    return [(s, min(s + tile, extent)) for s in range(0, extent, tile)]


def gemv_wg_cost(tile_rows: int, n_cols: int, itemsize: int = 4) -> WgCost:
    """Cost of one WG computing ``tile_rows`` output elements.

    Streams the ``tile_rows x n_cols`` weight block once (GEMV is
    memory-bound: weights are touched exactly once), reads the input vector
    (amortized across WGs sharing it via cache — charged once per tile),
    writes the tile, and performs a multiply-add per weight element.
    """
    if tile_rows < 1 or n_cols < 1:
        raise ValueError("tile_rows and n_cols must be >= 1")
    bytes_moved = float((tile_rows * n_cols + n_cols + tile_rows) * itemsize)
    flops = 2.0 * tile_rows * n_cols
    return WgCost(flops=flops, bytes=bytes_moved, dtype="fp32")
