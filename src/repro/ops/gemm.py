"""Tiled matrix-matrix multiply (MoE expert / transformer prompt operator).

The cost model follows the standard LDS-blocked GEMM: a ``BM x BN`` output
tile iterates over K in blocks, streaming ``K * (BM + BN)`` elements from
HBM and performing ``2 * BM * BN * K`` FLOPs.  With the paper's MoE shapes
these tiles are firmly compute-bound, which is why the paper reports the
GEMM dominating the fused GEMM + All-to-All runtime (Fig. 10).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..hw.gpu import WgCost
from .gemv import split_tiles

__all__ = ["gemm", "gemm_wg_cost", "gemm_tile_grid"]


def gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``C = A @ B`` with shape checks. A: (M, K), B: (K, N) -> C: (M, N)."""
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(f"A and B must be 2-D, got {a.shape} and {b.shape}")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: A {a.shape} @ B {b.shape}")
    return a @ b


def gemm_tile_grid(m: int, n: int, block_m: int = 128,
                   block_n: int = 128) -> List[Tuple[Tuple[int, int],
                                                     Tuple[int, int]]]:
    """Output tile grid: list of ((m0, m1), (n0, n1)) row/col ranges."""
    return [(rm, rn) for rm in split_tiles(m, block_m)
            for rn in split_tiles(n, block_n)]


def gemm_wg_cost(block_m: int, block_n: int, k: int,
                 itemsize: int = 4, dtype: str = "fp32") -> WgCost:
    """Cost of one WG computing a ``block_m x block_n`` output tile."""
    if block_m < 1 or block_n < 1 or k < 1:
        raise ValueError("tile dims and k must be >= 1")
    bytes_moved = float((k * (block_m + block_n)
                         + block_m * block_n) * itemsize)
    flops = 2.0 * block_m * block_n * k
    return WgCost(flops=flops, bytes=bytes_moved, dtype=dtype)
