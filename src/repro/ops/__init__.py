"""Functional + costed operators used by workloads and fused kernels."""

from .activation import ACTIVATIONS, elementwise_cost, gelu, relu, sigmoid
from .embedding import embedding_pooling, embedding_table_bytes, embedding_wg_cost
from .gemm import gemm, gemm_tile_grid, gemm_wg_cost
from .gemv import gemv, gemv_wg_cost, split_tiles
from .interaction import interaction, interaction_output_dim, interaction_wg_cost
from .mlp import Mlp, mlp_flops, mlp_time_on_gpu

__all__ = [
    "ACTIVATIONS",
    "Mlp",
    "elementwise_cost",
    "embedding_pooling",
    "embedding_table_bytes",
    "embedding_wg_cost",
    "gelu",
    "gemm",
    "gemm_tile_grid",
    "gemm_wg_cost",
    "gemv",
    "gemv_wg_cost",
    "interaction",
    "interaction_output_dim",
    "interaction_wg_cost",
    "mlp_flops",
    "mlp_time_on_gpu",
    "relu",
    "sigmoid",
    "split_tiles",
]
