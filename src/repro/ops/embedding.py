"""Embedding-bag pooling (the DLRM sparse operator).

Mirrors PyTorch's ``EmbeddingBag`` with sum/mean pooling, in the fixed
pooling-size form the DLRM data generator produces: a ``(batch, pooling)``
integer lookup matrix per table.  The per-WG cost model matches the paper's
work partitioning — one output embedding vector per logical WG
(``EmbeddingBag_updateOutputKernel_sum_mean``).
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ..hw.gpu import WgCost

__all__ = ["embedding_pooling", "embedding_wg_cost", "embedding_table_bytes"]


def embedding_pooling(table: np.ndarray, indices: np.ndarray,
                      mode: Literal["sum", "mean"] = "sum") -> np.ndarray:
    """Pool embedding rows: ``out[b] = reduce(table[indices[b]])``.

    Args:
        table: ``(num_rows, dim)`` embedding table.
        indices: ``(batch, pooling)`` integer row ids.
        mode: "sum" or "mean".

    Returns:
        ``(batch, dim)`` pooled output in the table's dtype.
    """
    if table.ndim != 2:
        raise ValueError(f"table must be 2-D, got shape {table.shape}")
    if indices.ndim != 2:
        raise ValueError(f"indices must be 2-D, got shape {indices.shape}")
    if not np.issubdtype(indices.dtype, np.integer):
        raise TypeError(f"indices must be integers, got {indices.dtype}")
    if indices.size and (indices.min() < 0 or indices.max() >= table.shape[0]):
        raise IndexError(
            f"indices out of range [0, {table.shape[0]}) for this table")
    gathered = table[indices]              # (batch, pooling, dim)
    if mode == "sum":
        return gathered.sum(axis=1, dtype=table.dtype)
    if mode == "mean":
        return gathered.mean(axis=1, dtype=table.dtype)
    raise ValueError(f"unknown pooling mode {mode!r}")


def embedding_wg_cost(pooling: int, dim: int, itemsize: int = 4) -> WgCost:
    """Cost of one logical WG producing one pooled output vector.

    Reads ``pooling`` rows of ``dim`` elements (gather — effectively
    uncoalesced, so counted at full size), writes one row, and performs
    ``pooling * dim`` adds.  Embedding pooling is memory-bound on every
    modern GPU, and its data-dependent row gathers pay the high-occupancy
    DRAM contention knee (``access="gather"``; paper Fig. 13).
    """
    if pooling < 1 or dim < 1:
        raise ValueError("pooling and dim must be >= 1")
    bytes_moved = float((pooling + 1) * dim * itemsize)
    flops = float(pooling * dim)
    return WgCost(flops=flops, bytes=bytes_moved, dtype="fp32",
                  access="gather")


def embedding_table_bytes(num_rows: int, dim: int, itemsize: int = 4) -> int:
    """Storage footprint of one table (capacity planning in examples)."""
    return num_rows * dim * itemsize
