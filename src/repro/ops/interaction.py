"""DLRM feature-interaction operator.

After the All-to-All, every rank holds its local batch's embedding vectors
from *all* tables plus the bottom-MLP output; the interaction op takes all
pairwise dot products between these feature vectors and concatenates them
with the dense feature (Naumov et al., 2019).  This is the consumer of the
fused embedding + All-to-All output layout ``{local batch,
num_features x dim}``.
"""

from __future__ import annotations

import numpy as np

from ..hw.gpu import WgCost

__all__ = ["interaction", "interaction_wg_cost", "interaction_output_dim"]


def interaction(dense: np.ndarray, embeddings: np.ndarray) -> np.ndarray:
    """Pairwise dot-product interaction.

    Args:
        dense: ``(batch, dim)`` bottom-MLP output.
        embeddings: ``(batch, num_features, dim)`` pooled embeddings.

    Returns:
        ``(batch, dim + F*(F+1)//2)`` where ``F = num_features + 1``
        (the dense vector participates as a feature, upper triangle
        excluding the diagonal plus the dense passthrough).
    """
    if dense.ndim != 2:
        raise ValueError(f"dense must be 2-D, got {dense.shape}")
    if embeddings.ndim != 3:
        raise ValueError(f"embeddings must be 3-D, got {embeddings.shape}")
    if dense.shape[0] != embeddings.shape[0]:
        raise ValueError("batch mismatch between dense and embeddings")
    if dense.shape[1] != embeddings.shape[2]:
        raise ValueError("dim mismatch between dense and embeddings")
    feats = np.concatenate([dense[:, None, :], embeddings], axis=1)
    gram = np.einsum("bfd,bgd->bfg", feats, feats)
    f = feats.shape[1]
    iu = np.triu_indices(f, k=1)
    pairs = gram[:, iu[0], iu[1]]
    return np.concatenate([dense, pairs], axis=1).astype(dense.dtype)


def interaction_output_dim(num_features: int, dim: int) -> int:
    """Output width of :func:`interaction` (F includes the dense vector)."""
    f = num_features + 1
    return dim + f * (f - 1) // 2


def interaction_wg_cost(num_features: int, dim: int,
                        itemsize: int = 4) -> WgCost:
    """Cost of one logical WG handling one batch element's interaction."""
    f = num_features + 1
    flops = float(f * f * dim)  # gram matrix
    bytes_moved = float((f * dim + f * (f - 1) // 2 + dim) * itemsize)
    return WgCost(flops=flops, bytes=bytes_moved, dtype="fp32")
