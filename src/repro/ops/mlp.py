"""Multi-layer perceptron: functional forward pass + device cost.

Used for DLRM's bottom/top MLP stacks and the transformer feed-forward
block.  The cost helper returns the *kernel-level* cost of executing the
whole MLP as a sequence of GEMM kernels on one GPU (used by the ASTRA-style
scale-out model, which needs per-layer times rather than per-WG tasks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..hw.gpu import Gpu, KernelResources, WgCost
from .activation import ACTIVATIONS
from .gemm import gemm, gemm_wg_cost

__all__ = ["Mlp", "mlp_flops", "mlp_time_on_gpu"]


@dataclass
class Mlp:
    """A dense MLP with per-layer weights and a shared activation."""

    weights: List[np.ndarray]
    biases: List[np.ndarray]
    activation: str = "relu"

    @classmethod
    def create(cls, layer_sizes: Sequence[int], activation: str = "relu",
               rng: np.random.Generator | None = None,
               dtype=np.float32) -> "Mlp":
        """Xavier-initialized MLP with dims ``layer_sizes[0] -> ... -> [-1]``."""
        if len(layer_sizes) < 2:
            raise ValueError("need at least input and output sizes")
        if activation not in ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        rng = rng if rng is not None else np.random.default_rng(0)
        ws, bs = [], []
        for fan_in, fan_out in zip(layer_sizes, layer_sizes[1:]):
            scale = np.sqrt(2.0 / (fan_in + fan_out))
            ws.append((rng.standard_normal((fan_in, fan_out)) * scale)
                      .astype(dtype))
            bs.append(np.zeros(fan_out, dtype=dtype))
        return cls(weights=ws, biases=bs, activation=activation)

    @property
    def layer_sizes(self) -> List[int]:
        return [self.weights[0].shape[0]] + [w.shape[1] for w in self.weights]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply all layers; activation after every layer but the last."""
        act = ACTIVATIONS[self.activation]
        h = x
        last = len(self.weights) - 1
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            h = gemm(h, w) + b
            if i != last:
                h = act(h)
        return h

    __call__ = forward


def mlp_flops(batch: int, layer_sizes: Sequence[int]) -> float:
    """Total GEMM FLOPs of one forward pass."""
    return sum(2.0 * batch * a * b
               for a, b in zip(layer_sizes, layer_sizes[1:]))


def mlp_time_on_gpu(gpu: Gpu, batch: int, layer_sizes: Sequence[int],
                    resources: KernelResources | None = None,
                    itemsize: int = 4, flop_efficiency: float = 0.6) -> float:
    """Closed-form execution time of the MLP, one kernel per layer.

    Whole-layer roofline: with LDS/L2 blocking, a well-tuned GEMM touches
    each operand from HBM approximately once, so the memory side uses the
    *unique* bytes of the layer (A + W + C) rather than per-tile slab
    re-reads; the compute side runs at ``flop_efficiency`` of peak (the
    sustained fraction of typical dense GEMM kernels on these layer sizes).
    """
    if batch < 1:
        raise ValueError("batch must be >= 1")
    if not (0.0 < flop_efficiency <= 1.0):
        raise ValueError("flop_efficiency must be in (0, 1]")
    total = 0.0
    peak = gpu.spec.flop_rate("fp32") * flop_efficiency
    bw = gpu.spec.hbm_bandwidth
    for fan_in, fan_out in zip(layer_sizes, layer_sizes[1:]):
        flops = 2.0 * batch * fan_in * fan_out
        unique = (batch * fan_in + fan_in * fan_out
                  + batch * fan_out) * itemsize
        total += (gpu.spec.kernel_launch_overhead
                  + max(flops / peak, unique / bw))
    return total
