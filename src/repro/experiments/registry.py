"""Name-based registries for scenario runners, assemblers, and sweeps.

Three registries back the orchestration subsystem:

* **runners** — functions executing one scenario: ``fn(params) -> dict``
  (or ``fn(params, seed) -> dict`` to receive the scenario's deterministic
  seed).  The returned mapping must be JSON-representable; it becomes the
  store's record payload.
* **assemblers** — functions turning a sweep's scenario results back into
  a :class:`~repro.bench.harness.FigureResult`:
  ``fn(sweep, specs, results, **assembler_params)``.
* **sweeps** — named :class:`~repro.experiments.specs.SweepSpec` instances
  (the ported paper figures/ablations plus any user registrations).

Lookup is by plain string so specs stay declarative and picklable: worker
processes re-resolve names against their own imported registry.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, List, Mapping

from .specs import ScenarioSpec, SweepSpec

__all__ = [
    "runner",
    "assembler",
    "register_sweep",
    "get_runner",
    "get_assembler",
    "get_sweep",
    "list_sweeps",
    "call_runner",
    "ensure_registered",
]

RUNNERS: Dict[str, Callable[..., Mapping[str, Any]]] = {}
ASSEMBLERS: Dict[str, Callable[..., Any]] = {}
SWEEPS: Dict[str, SweepSpec] = {}

#: Runners whose declared signature accepts the scenario seed.
_SEEDED: Dict[str, bool] = {}


def runner(name: str) -> Callable[[Callable], Callable]:
    """Decorator: register a scenario runner under ``name``."""

    def deco(fn: Callable) -> Callable:
        if name in RUNNERS and RUNNERS[name] is not fn:
            raise ValueError(f"runner {name!r} already registered")
        n_params = len(inspect.signature(fn).parameters)
        if n_params not in (1, 2):
            raise TypeError(
                f"runner {name!r} must accept (params) or (params, seed)")
        RUNNERS[name] = fn
        _SEEDED[name] = n_params == 2
        return fn

    return deco


def assembler(name: str) -> Callable[[Callable], Callable]:
    """Decorator: register a result assembler under ``name``."""

    def deco(fn: Callable) -> Callable:
        if name in ASSEMBLERS and ASSEMBLERS[name] is not fn:
            raise ValueError(f"assembler {name!r} already registered")
        ASSEMBLERS[name] = fn
        return fn

    return deco


def register_sweep(spec: SweepSpec, overwrite: bool = False) -> SweepSpec:
    """Register a sweep for lookup by name (CLI, tests, cache tooling)."""
    if spec.name in SWEEPS and not overwrite:
        raise ValueError(f"sweep {spec.name!r} already registered")
    labels = [s.label for s in spec.scenarios]
    if len(set(labels)) != len(labels):
        dupes = sorted({x for x in labels if labels.count(x) > 1})
        raise ValueError(
            f"sweep {spec.name!r} has duplicate scenario labels: {dupes}")
    SWEEPS[spec.name] = spec
    return spec


def get_runner(name: str) -> Callable[..., Mapping[str, Any]]:
    ensure_registered()
    try:
        return RUNNERS[name]
    except KeyError:
        raise KeyError(
            f"unknown runner {name!r}; registered: {sorted(RUNNERS)}"
        ) from None


def get_assembler(name: str) -> Callable[..., Any]:
    ensure_registered()
    try:
        return ASSEMBLERS[name]
    except KeyError:
        raise KeyError(
            f"unknown assembler {name!r}; registered: {sorted(ASSEMBLERS)}"
        ) from None


def get_sweep(name: str) -> SweepSpec:
    ensure_registered()
    try:
        return SWEEPS[name]
    except KeyError:
        raise KeyError(
            f"unknown sweep {name!r}; registered: {sorted(SWEEPS)}"
        ) from None


def list_sweeps() -> List[SweepSpec]:
    ensure_registered()
    return [SWEEPS[name] for name in sorted(SWEEPS)]


def call_runner(spec: ScenarioSpec) -> Mapping[str, Any]:
    """Execute one scenario through its registered runner."""
    fn = get_runner(spec.runner)
    if _SEEDED[spec.runner]:
        return fn(spec.params, spec.stable_seed())
    return fn(spec.params)


_registered = False
_registering = False


def ensure_registered() -> None:
    """Import the built-in figure/ablation registrations (idempotent).

    Worker processes call this on startup so name lookup works no matter
    which module spawned them.  The done-flag is only set once the import
    *succeeds*: a failed import propagates its real error again on the
    next call instead of leaving an empty registry behind.
    """
    global _registered, _registering
    if _registered or _registering:
        return
    _registering = True
    try:
        from . import figures  # noqa: F401  (import populates the registries)
        _registered = True
    finally:
        _registering = False
