"""``python -m repro`` — the command-line surface of the orchestrator.

Subcommands::

    list                      registered sweeps and their sizes
    platforms                 hardware catalog with derived quantities
    run SWEEP [SWEEP...]      execute sweeps (cache-aware, parallel)
    report SWEEP [SWEEP...]   render sweeps (fully-cached runs are instant)
    diff OLD NEW              compare two sweep report JSON files

``run``/``report`` share the cache flags: ``--cache DIR`` (default
``.repro-cache``), ``--no-cache``, ``--force``.  ``run all`` runs every
registered sweep.  ``diff`` exits non-zero when the reports disagree, so
it doubles as a CI regression gate against a committed baseline report.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .registry import get_sweep, list_sweeps
from .report import diff_reports, load_report, render_report, report_json
from .execution import default_workers, run_sweep
from .store import DEFAULT_CACHE_DIR, ResultStore

__all__ = ["main"]


def _resolve_names(names: Sequence[str]) -> List[str]:
    if "all" in names:
        return [s.name for s in list_sweeps()]
    return list(names)


def _make_store(args: argparse.Namespace) -> Optional[ResultStore]:
    if args.no_cache:
        return None
    return ResultStore(args.cache)


def _progress_printer(quiet: bool):
    if quiet:
        return None

    def progress(done, total, outcome):
        state = "cached" if outcome.cached else "ran"
        label = outcome.spec.label or outcome.spec.runner
        print(f"  [{done}/{total}] {label}: {state}", file=sys.stderr)

    return progress


def _cmd_list(args: argparse.Namespace) -> int:
    sweeps = list_sweeps()
    width = max(len(s.name) for s in sweeps)
    for sweep in sweeps:
        print(f"{sweep.name:<{width}}  {len(sweep):>3} scenario(s)  "
              f"{sweep.title}: {sweep.description}")
    return 0


def _cmd_platforms(args: argparse.Namespace) -> int:
    """Render the hardware catalog with its key derived quantities."""
    from ..hw.platform import list_platforms
    rows = [p.describe() for p in list_platforms()]
    header = (f"{'name':<10} {'CUs':>4} {'fp32':>7} {'fp16':>7} "
              f"{'HBM':>8} {'link':>7} {'nic':>6} {'g/node':>6} "
              f"{'vgprs':>9} {'fused occ':>9}")
    print(header)
    print("-" * len(header))
    for r in rows:
        print(f"{r['name']:<10} {r['num_cus']:>4} "
              f"{r['fp32_tflops']:>6.1f}T {r['fp16_tflops']:>6.0f}T "
              f"{r['hbm_tb_per_s']:>5.2f}TB/s "
              f"{r['link_gb_per_s']:>4.0f}GB {r['nic_gb_per_s']:>4.0f}GB "
              f"{r['gpus_per_node']:>6} "
              f"{r['baseline_vgprs']:>3}->{r['fused_vgprs']:<3} "
              f"{100 * r['fused_occupancy']:>8.1f}%")
    print("\nfp32/fp16: peak TFLOP/s; HBM: peak bandwidth; link/nic: "
          "per-link bandwidth;")
    print("vgprs: derived baseline->fused kernel registers/thread; "
          "fused occ: the fused")
    print("kernel's derived occupancy (the calibrated MI210 loses the "
          "paper's 12.5%).")
    return 0


def _run_and_render(args: argparse.Namespace, expect_cached: bool) -> int:
    store = _make_store(args)
    report_dir = getattr(args, "report_dir", None)
    if report_dir is not None:
        Path(report_dir).mkdir(parents=True, exist_ok=True)
    status = 0
    for name in _resolve_names(args.sweeps):
        sweep = get_sweep(name)
        print(f"== {name} ({len(sweep)} scenarios) ==", file=sys.stderr)
        run = run_sweep(sweep, store=store, workers=args.workers,
                        force=args.force,
                        progress=_progress_printer(args.quiet))
        report = run.report()
        print(render_report(report))
        print(f"{name}: {len(sweep)} scenarios, {run.cache_hits} cached, "
              f"{run.executed} executed", file=sys.stderr)
        print()
        if report_dir is not None:
            out = Path(report_dir) / f"{name}.json"
            out.write_text(report_json(report), encoding="utf-8")
            print(f"wrote {out}", file=sys.stderr)
        if expect_cached and run.executed:
            print(f"::error::{name}: expected a fully cached run but "
                  f"{run.executed} scenario(s) executed", file=sys.stderr)
            status = 1
    return status


def _cmd_run(args: argparse.Namespace) -> int:
    return _run_and_render(args, expect_cached=args.expect_cached)


def _cmd_report(args: argparse.Namespace) -> int:
    args.force = False
    return _run_and_render(args, expect_cached=False)


def _cmd_diff(args: argparse.Namespace) -> int:
    diff = diff_reports(load_report(args.old), load_report(args.new),
                        rtol=args.rtol)
    print(diff.render())
    return 0 if diff.ok else 1


def _add_cache_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache", default=DEFAULT_CACHE_DIR,
                        help="result-store directory "
                             f"(default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result store entirely")
    parser.add_argument("--workers", type=int, default=default_workers(),
                        help="worker processes for uncached scenarios "
                             "(default: $REPRO_WORKERS or 1)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-scenario progress lines")
    parser.add_argument("--report-dir", default=None,
                        help="also write <sweep>.json report files here")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run, cache, and compare the paper's evaluation sweeps.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered sweeps"
                   ).set_defaults(fn=_cmd_list)

    sub.add_parser(
        "platforms",
        help="list the hardware platform catalog (derived quantities)"
    ).set_defaults(fn=_cmd_platforms)

    p_run = sub.add_parser("run", help="execute sweeps")
    p_run.add_argument("sweeps", nargs="+",
                       help="sweep names (or 'all')")
    _add_cache_args(p_run)
    p_run.add_argument("--force", action="store_true",
                       help="re-execute scenarios even on cache hits")
    p_run.add_argument("--expect-cached", action="store_true",
                       help="fail unless every scenario is a cache hit "
                            "(CI cache-behaviour gate)")
    p_run.set_defaults(fn=_cmd_run)

    p_report = sub.add_parser(
        "report", help="render sweeps (cache-aware; cached runs are free)")
    p_report.add_argument("sweeps", nargs="+", help="sweep names (or 'all')")
    _add_cache_args(p_report)
    p_report.set_defaults(fn=_cmd_report)

    p_diff = sub.add_parser(
        "diff", help="compare two sweep report JSON files")
    p_diff.add_argument("old", help="baseline report path")
    p_diff.add_argument("new", help="candidate report path")
    p_diff.add_argument("--rtol", type=float, default=0.0,
                        help="allowed relative deviation per metric "
                             "(default: exact)")
    p_diff.set_defaults(fn=_cmd_diff)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)
