"""``python -m repro`` — the command-line surface of the orchestrator.

Subcommands::

    list [--json]             registered sweeps and their sizes
    platforms                 hardware catalog with derived quantities
    algos                     collective-algorithm catalog + selector
    run SWEEP [SWEEP...]      execute sweeps (cache-aware, parallel)
    report SWEEP [SWEEP...]   render sweeps (fully-cached runs are instant)
    diff OLD NEW              compare two sweep report JSON files
    validate                  analytic-vs-DES fidelity vs. accuracy budget
    cache stats               result-store size and per-sweep breakdown
    trace SWEEP [SWEEP...]    export a Chrome/Perfetto trace (--out FILE)
    stats SWEEP [SWEEP...]    run with live metrics; print the registry
    lint [--json]             static invariant checks (determinism,
                              mirror parity, hot-path guards, ...)

``run``/``report`` share the cache flags: ``--cache DIR`` (default
``.repro-cache``), ``--no-cache``, ``--force``.  ``run all`` runs every
registered sweep (mega sweeps — the axis-defined ``dse_mega`` grids
evaluated through the vectorized batch engine — are listed alongside and
run by name, but stay out of ``all``); ``--backend analytic`` re-keys and re-runs any sweep
under the closed-form engine.  ``diff`` exits non-zero when the reports
disagree, so it doubles as a CI regression gate against a committed
baseline report; ``validate`` exits non-zero when the analytic backend
drifts outside its declared accuracy budget.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .mega import find_mega, list_megas, run_mega
from .registry import get_sweep, list_sweeps
from .report import diff_reports, load_report, render_report, report_json
from .execution import default_workers, run_sweep
from .specs import (
    BACKENDS,
    DEFAULT_BACKEND,
    sweep_with_algo,
    sweep_with_backend,
)
from .store import DEFAULT_CACHE_DIR, ResultStore

__all__ = ["main"]


def _resolve_names(names: Sequence[str]) -> List[str]:
    if "all" in names:
        return [s.name for s in list_sweeps()]
    return list(names)


def _make_store(args: argparse.Namespace) -> Optional[ResultStore]:
    if args.no_cache:
        return None
    return ResultStore(args.cache)


def _progress_printer(quiet: bool):
    if quiet:
        return None

    def progress(done, total, outcome):
        state = "cached" if outcome.cached else "ran"
        label = outcome.spec.label or outcome.spec.runner
        print(f"  [{done}/{total}] {label}: {state}", file=sys.stderr)

    return progress


def _cmd_list(args: argparse.Namespace) -> int:
    sweeps = list_sweeps()
    if getattr(args, "json", False):
        print(json.dumps([
            {
                "name": s.name,
                "title": s.title,
                "description": s.description,
                "scenarios": len(s),
                "assembler": s.assembler,
                "backends": sorted({sc.backend for sc in s.scenarios}),
                "key": s.key(),
            }
            for s in sweeps
        ] + [
            {
                "name": m.name,
                "title": m.title,
                "description": m.description,
                "scenarios": len(m),
                "assembler": "mega",
                "backends": ["analytic"],
                "key": m.key(),
            }
            for m in list_megas()
        ], indent=2, sort_keys=True))
        return 0
    megas = list_megas()
    width = max(len(s.name) for s in sweeps + megas)
    for sweep in sweeps:
        print(f"{sweep.name:<{width}}  {len(sweep):>4} scenario(s)  "
              f"{sweep.title}: {sweep.description}")
    for mega in megas:
        print(f"{mega.name:<{width}}  {len(mega):>4} scenario(s)  "
              f"{mega.title}: {mega.description} [mega]")
    return 0


def _cmd_platforms(args: argparse.Namespace) -> int:
    """Render the hardware catalog with its key derived quantities."""
    from ..hw.platform import list_platforms
    rows = [p.describe() for p in list_platforms()]
    header = (f"{'name':<10} {'CUs':>4} {'fp32':>7} {'fp16':>7} "
              f"{'HBM':>8} {'link':>7} {'nic':>6} {'g/node':>6} "
              f"{'vgprs':>9} {'fused occ':>9}")
    print(header)
    print("-" * len(header))
    for r in rows:
        print(f"{r['name']:<10} {r['num_cus']:>4} "
              f"{r['fp32_tflops']:>6.1f}T {r['fp16_tflops']:>6.0f}T "
              f"{r['hbm_tb_per_s']:>5.2f}TB/s "
              f"{r['link_gb_per_s']:>4.0f}GB {r['nic_gb_per_s']:>4.0f}GB "
              f"{r['gpus_per_node']:>6} "
              f"{r['baseline_vgprs']:>3}->{r['fused_vgprs']:<3} "
              f"{100 * r['fused_occupancy']:>8.1f}%")
    print("\nfp32/fp16: peak TFLOP/s; HBM: peak bandwidth; link/nic: "
          "per-link bandwidth;")
    print("vgprs: derived baseline->fused kernel registers/thread; "
          "fused occ: the fused")
    print("kernel's derived occupancy (the calibrated MI210 loses the "
          "paper's 12.5%).")
    return 0


def _cmd_algos(args: argparse.Namespace) -> int:
    """Render the collective-algorithm catalog and selection heuristic."""
    from ..collectives import (
        PAIRWISE_MAX_BYTES,
        TREE_MAX_BYTES,
        algorithm_table,
    )
    rows = algorithm_table()
    if getattr(args, "json", False):
        print(json.dumps([
            {"kind": kind, "name": name, "summary": summary}
            for kind, name, summary in rows
        ], indent=2, sort_keys=True))
        return 0
    width = max(len(name) for _k, name, _s in rows)
    for kind in ("allreduce", "alltoall"):
        print(f"{kind}:")
        for k, name, summary in rows:
            if k == kind:
                print(f"  {name:<{width}}  {summary}")
    print("\nauto-selection: single node -> direct/flat (fully-connected "
          "fabric).")
    print(f"AllReduce across nodes: <= {TREE_MAX_BYTES // 1024} KB is "
          "overhead-bound -> hier (tree on 1-GPU nodes); larger -> ring.")
    print(f"All-to-All across nodes: chunks <= {PAIRWISE_MAX_BYTES // 1024}"
          " KB are message-rate-bound -> hier (pairwise on 1-GPU nodes); "
          "larger -> flat.")
    print("\nSelect per sweep with `run SWEEP --algo NAME` (or `auto`); "
          "scenarios without an")
    print("algo parameter keep the legacy schedule and their existing "
          "cache keys.")
    return 0


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    """Result-store hygiene: record count, bytes, per-sweep breakdown."""
    store = ResultStore(args.cache)
    sizes = {key: store.path_for(key).stat().st_size
             for key in store.keys()}
    total_records, total_bytes = len(sizes), sum(sizes.values())
    rows = []
    claimed = set()
    for sweep in list_sweeps():
        keys = {s.key() for s in sweep.scenarios}
        keys.add(sweep.key())
        cached = keys & sizes.keys()
        claimed |= cached
        rows.append({
            "sweep": sweep.name,
            "records": len(cached),
            "scenarios": len(sweep),
            "bytes": sum(sizes[k] for k in cached),
        })
    other = sizes.keys() - claimed
    if getattr(args, "json", False):
        print(json.dumps({
            "cache": str(store.root),
            "records": total_records,
            "bytes": total_bytes,
            "sweeps": rows,
            "other_records": len(other),
            "other_bytes": sum(sizes[k] for k in other),
        }, indent=2, sort_keys=True))
        return 0
    print(f"{store.root}: {total_records} record(s), {total_bytes} bytes")
    width = max(len(r["sweep"]) for r in rows)
    for r in rows:
        if not r["records"]:
            continue
        # A sweep can claim len(sweep)+1 records: its scenarios plus the
        # sweep-level assembled-figure record.
        print(f"  {r['sweep']:<{width}}  {r['records']:>5}/{r['scenarios'] + 1:<5} "
              f"record(s)  {r['bytes']:>10} bytes")
    if other:
        print(f"  {'(unregistered)':<{width}}  {len(other):>5}       "
              f"record(s)  {sum(sizes[k] for k in other):>10} bytes")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from ..analytic.validate import run_validation
    store = _make_store(args)
    report = run_validation(store=store, workers=args.workers,
                            progress=_progress_printer(args.quiet))
    if getattr(args, "json", False):
        print(json.dumps(report.to_json_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _run_and_render(args: argparse.Namespace, expect_cached: bool) -> int:
    store = _make_store(args)
    report_dir = getattr(args, "report_dir", None)
    if report_dir is not None:
        Path(report_dir).mkdir(parents=True, exist_ok=True)
    status = 0
    backend = getattr(args, "backend", None)
    algo = getattr(args, "algo", None)
    for name in _resolve_names(args.sweeps):
        mega = find_mega(name)
        if mega is not None:
            if backend == "sim":
                print(f"::error::{name}: mega sweeps are analytic-only",
                      file=sys.stderr)
                return 1
            if algo is not None:
                print(f"::error::{name}: mega sweeps fix their algo axis "
                      f"in the grid; --algo does not apply", file=sys.stderr)
                return 1
            print(f"== {name} ({len(mega)} scenarios) ==", file=sys.stderr)
            run = run_mega(mega, store=store, force=args.force)
            report = run.report()
            print(render_report(report))
            print(f"{name}: {len(mega)} scenarios, {run.cache_hits} cached, "
                  f"{run.executed} executed", file=sys.stderr)
            print()
            if report_dir is not None:
                out = Path(report_dir) / f"{name}.json"
                out.write_text(report_json(report), encoding="utf-8")
                print(f"wrote {out}", file=sys.stderr)
            if expect_cached and run.executed:
                print(f"::error::{name}: expected a fully cached run but "
                      f"{run.executed} scenario(s) executed", file=sys.stderr)
                status = 1
            continue
        sweep = get_sweep(name)
        if backend is not None:
            sweep = sweep_with_backend(sweep, backend)
        if algo is not None:
            sweep = sweep_with_algo(sweep, algo)
        print(f"== {name} ({len(sweep)} scenarios) ==", file=sys.stderr)
        run = run_sweep(sweep, store=store, workers=args.workers,
                        force=args.force,
                        progress=_progress_printer(args.quiet))
        report = run.report()
        print(render_report(report))
        print(f"{name}: {len(sweep)} scenarios, {run.cache_hits} cached, "
              f"{run.executed} executed", file=sys.stderr)
        print()
        if report_dir is not None:
            out = Path(report_dir) / f"{name}.json"
            out.write_text(report_json(report), encoding="utf-8")
            print(f"wrote {out}", file=sys.stderr)
        if expect_cached and run.executed:
            print(f"::error::{name}: expected a fully cached run but "
                  f"{run.executed} scenario(s) executed", file=sys.stderr)
            status = 1
    return status


def _cmd_run(args: argparse.Namespace) -> int:
    return _run_and_render(args, expect_cached=args.expect_cached)


def _cmd_report(args: argparse.Namespace) -> int:
    args.force = False
    return _run_and_render(args, expect_cached=False)


def _cmd_trace(args: argparse.Namespace) -> int:
    """Export a Chrome/Perfetto trace of the named sweeps' scenarios.

    Scenarios run inline (no cache interaction — tracing is a profiling
    view, not an execution mode), each inside the process-wide
    :class:`~repro.obs.capture.TraceCapture`, so every simulated cluster
    they build contributes a labelled run to the export.
    """
    from ..obs.capture import TraceCapture
    from ..obs.chrome import write_chrome_trace
    from ..obs.metrics import MetricsRegistry
    from .execution import run_scenario
    host = MetricsRegistry() if args.host_spans else None
    matched = 0
    with TraceCapture() as cap:
        for name in _resolve_names(args.sweeps):
            if find_mega(name) is not None:
                print(f"::error::{name}: mega sweeps are analytic-only; "
                      f"there is no simulated timeline to trace",
                      file=sys.stderr)
                return 1
            sweep = get_sweep(name)
            for spec in sweep.scenarios:
                label = spec.label or spec.runner
                if args.scenario is not None and args.scenario != label:
                    continue
                matched += 1
                cap.begin_scenario(f"{name}:{label}")
                if host is not None:
                    with host.timer(f"{name}:{label}"):
                        run_scenario(spec)
                else:
                    run_scenario(spec)
                if not args.quiet:
                    print(f"  traced {name}:{label}", file=sys.stderr)
    if not matched:
        print(f"::error::no scenario labelled {args.scenario!r} in "
              f"{args.sweeps}", file=sys.stderr)
        return 1
    if cap.n_events == 0:
        print("::error::nothing traced — the selected scenarios build no "
              "simulated cluster (analytic backend?)", file=sys.stderr)
        return 1
    out = write_chrome_trace(
        args.out, cap.runs,
        host_spans=host.host_spans if host is not None else ())
    print(f"wrote {out} ({cap.n_events} trace events, "
          f"{len(cap.runs)} run(s))", file=sys.stderr)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Run sweeps with the metrics registry live and print its snapshot."""
    from ..obs.metrics import MetricsRegistry, enable_metrics, reset_metrics
    store = _make_store(args)
    registry = enable_metrics(MetricsRegistry())
    try:
        for name in _resolve_names(args.sweeps):
            mega = find_mega(name)
            if mega is not None:
                run = run_mega(mega, store=store, force=args.force)
            else:
                run = run_sweep(get_sweep(name), store=store,
                                workers=args.workers, force=args.force,
                                progress=_progress_printer(args.quiet))
            print(f"{name}: {run.cache_hits} cached, {run.executed} "
                  f"executed", file=sys.stderr)
        if getattr(args, "json", False):
            print(json.dumps(registry.snapshot(), indent=2, sort_keys=True))
        else:
            print(registry.render())
    finally:
        reset_metrics()
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from ..lint.cli import run as run_lint_cli
    return run_lint_cli(args)


def _cmd_diff(args: argparse.Namespace) -> int:
    diff = diff_reports(load_report(args.old), load_report(args.new),
                        rtol=args.rtol)
    print(diff.render())
    return 0 if diff.ok else 1


def _add_backend_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", choices=BACKENDS, default=None,
        help="evaluation engine for every scenario (default: whatever the "
             f"sweep declares, usually {DEFAULT_BACKEND!r}; 'analytic' is "
             "the closed-form backend and re-keys the cache records)")
    parser.add_argument(
        "--algo", default=None,
        help="collective-algorithm schedule for every scenario (a "
             "`python -m repro algos` name, or 'auto' for the "
             "size/topology selector; re-keys the cache records). Only "
             "collective-bearing sweeps accept it — runners without a "
             "baseline collective reject the parameter.")


def _add_cache_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache", default=DEFAULT_CACHE_DIR,
                        help="result-store directory "
                             f"(default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result store entirely")
    parser.add_argument("--workers", type=int, default=default_workers(),
                        help="worker processes for uncached scenarios "
                             "(default: $REPRO_WORKERS or 1)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-scenario progress lines")
    parser.add_argument("--report-dir", default=None,
                        help="also write <sweep>.json report files here")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run, cache, and compare the paper's evaluation sweeps.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list registered sweeps")
    p_list.add_argument("--json", action="store_true",
                        help="machine-readable listing (names, sizes, keys)")
    p_list.set_defaults(fn=_cmd_list)

    sub.add_parser(
        "platforms",
        help="list the hardware platform catalog (derived quantities)"
    ).set_defaults(fn=_cmd_platforms)

    p_algos = sub.add_parser(
        "algos",
        help="list the collective-algorithm catalog and selection "
             "heuristic")
    p_algos.add_argument("--json", action="store_true",
                         help="machine-readable listing")
    p_algos.set_defaults(fn=_cmd_algos)

    p_run = sub.add_parser("run", help="execute sweeps")
    p_run.add_argument("sweeps", nargs="+",
                       help="sweep names (or 'all')")
    _add_cache_args(p_run)
    _add_backend_arg(p_run)
    p_run.add_argument("--force", action="store_true",
                       help="re-execute scenarios even on cache hits")
    p_run.add_argument("--expect-cached", action="store_true",
                       help="fail unless every scenario is a cache hit "
                            "(CI cache-behaviour gate)")
    p_run.set_defaults(fn=_cmd_run)

    p_report = sub.add_parser(
        "report", help="render sweeps (cache-aware; cached runs are free)")
    p_report.add_argument("sweeps", nargs="+", help="sweep names (or 'all')")
    _add_cache_args(p_report)
    _add_backend_arg(p_report)
    p_report.set_defaults(fn=_cmd_report)

    p_validate = sub.add_parser(
        "validate",
        help="run matched sim/analytic grids; fail outside the accuracy "
             "budget")
    _add_cache_args(p_validate)
    p_validate.add_argument("--json", action="store_true",
                            help="machine-readable validation report")
    p_validate.set_defaults(fn=_cmd_validate)

    p_cache = sub.add_parser("cache", help="result-store tooling")
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_stats = cache_sub.add_parser(
        "stats", help="record count / bytes / per-sweep breakdown")
    p_stats.add_argument("--cache", default=DEFAULT_CACHE_DIR,
                         help="result-store directory "
                              f"(default: {DEFAULT_CACHE_DIR})")
    p_stats.add_argument("--json", action="store_true",
                         help="machine-readable statistics")
    p_stats.set_defaults(fn=_cmd_cache_stats)

    p_trace = sub.add_parser(
        "trace",
        help="export a Chrome/Perfetto trace of a sweep's scenarios")
    p_trace.add_argument("sweeps", nargs="+",
                         help="sweep names (or 'all')")
    p_trace.add_argument("--out", default="trace.json",
                         help="output path (default: trace.json); load it "
                              "in Perfetto or chrome://tracing")
    p_trace.add_argument("--scenario", default=None,
                         help="only trace the scenario with this label")
    p_trace.add_argument("--host-spans", action="store_true",
                         help="also record host wall-clock per-scenario "
                              "spans (nondeterministic; keep off for "
                              "golden comparisons)")
    p_trace.add_argument("--quiet", action="store_true",
                         help="suppress per-scenario progress lines")
    p_trace.set_defaults(fn=_cmd_trace)

    p_stats = sub.add_parser(
        "stats",
        help="run sweeps with the run-metrics registry live and print "
             "its counters/gauges/timers")
    p_stats.add_argument("sweeps", nargs="+", help="sweep names (or 'all')")
    _add_cache_args(p_stats)
    p_stats.add_argument("--force", action="store_true",
                         help="re-execute scenarios even on cache hits")
    p_stats.add_argument("--json", action="store_true",
                         help="machine-readable metrics snapshot")
    p_stats.set_defaults(fn=_cmd_stats)

    from ..lint.cli import build_parser as build_lint_parser
    p_lint = sub.add_parser(
        "lint",
        help="statically enforce the repo's determinism, mirror-parity, "
             "and hot-path contracts")
    build_lint_parser(p_lint)
    p_lint.set_defaults(fn=_cmd_lint)

    p_diff = sub.add_parser(
        "diff", help="compare two sweep report JSON files")
    p_diff.add_argument("old", help="baseline report path")
    p_diff.add_argument("new", help="candidate report path")
    p_diff.add_argument("--rtol", type=float, default=0.0,
                        help="allowed relative deviation per metric "
                             "(default: exact)")
    p_diff.set_defaults(fn=_cmd_diff)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)
