"""Sweep execution: cache lookup, parallel sharding, result assembly.

:func:`run_sweep` is the subsystem's engine room.  For every scenario in a
sweep it first consults the content-addressed store; only the misses are
executed.  Analytic-backend misses whose runner the vectorized mega-batch
engine supports are evaluated in one NumPy call (bit-identical to the
scalar path, toggled by ``REPRO_BATCH``); whatever remains is sharded
across spawn-safe worker processes (``workers > 1``) or run inline (the
serial fallback, also used for single misses).  Scenario
results are canonicalized through a JSON round-trip *before* any consumer
sees them, so the serial, parallel, and cached paths all yield
byte-identical downstream reports.

Worker processes are started with the ``spawn`` method: each re-imports
the registry and resolves the runner by name, so no simulator state leaks
between scenarios and the parent's interpreter state is irrelevant.
Scenario order in the sweep is preserved regardless of completion order.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from ..obs.metrics import get_metrics
from .registry import call_runner, ensure_registered, get_assembler, get_sweep
from .specs import ScenarioSpec, SweepSpec
from .store import ResultStore

__all__ = ["ScenarioOutcome", "SweepRun", "run_scenario", "run_sweep",
           "default_workers", "batch_enabled"]

#: Callback signature: ``progress(done, total, outcome)``.
ProgressFn = Callable[[int, int, "ScenarioOutcome"], None]


@dataclass(frozen=True)
class ScenarioOutcome:
    """One scenario's result plus its provenance."""

    spec: ScenarioSpec
    key: str
    result: Dict[str, Any]
    cached: bool                    #: served from the store, no simulation


@dataclass
class SweepRun:
    """A completed sweep: per-scenario outcomes plus the assembled figure."""

    sweep: SweepSpec
    outcomes: List[ScenarioOutcome] = field(default_factory=list)
    _figure: Any = field(default=None, repr=False, compare=False)

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def executed(self) -> int:
        return sum(1 for o in self.outcomes if not o.cached)

    def figure(self):
        """The sweep's :class:`FigureResult` (assembled once, then reused)."""
        if self._figure is None:
            fn = get_assembler(self.sweep.assembler)
            self._figure = fn(self.sweep, [o.spec for o in self.outcomes],
                              [o.result for o in self.outcomes],
                              **self.sweep.assembler_params)
        return self._figure

    def report(self) -> Dict[str, Any]:
        from .report import build_report
        return build_report(self)


def _canonical_result(result: Any) -> Dict[str, Any]:
    """JSON round-trip a runner's result so every execution path (inline,
    worker process, cache file) yields the identical Python object."""
    if not isinstance(result, dict):
        raise TypeError(
            f"runner must return a dict of JSON-able metrics, "
            f"got {type(result).__name__}")
    return json.loads(json.dumps(result))


def run_scenario(spec: ScenarioSpec) -> Dict[str, Any]:
    """Execute one scenario inline; returns its canonicalized result."""
    ensure_registered()
    return _canonical_result(call_runner(spec))


def _worker_run(spec: ScenarioSpec) -> Dict[str, Any]:
    """Spawn-safe worker entry point (module-level, picklable)."""
    return run_scenario(spec)


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` (default: serial)."""
    try:
        return max(1, int(os.environ.get("REPRO_WORKERS", "1")))
    except ValueError:
        return 1


def batch_enabled() -> bool:
    """Vectorized fast path toggle (``REPRO_BATCH=0`` forces scalar)."""
    return os.environ.get("REPRO_BATCH", "1") != "0"


def _run_batch_misses(sweep: SweepSpec, misses: List[int],
                      record: Callable[[int, Dict[str, Any]], None]
                      ) -> List[int]:
    """Evaluate analytic cache misses through the vectorized mega-batch
    engine (:mod:`repro.analytic.batch`); returns the miss indices the
    engine did not cover (they fall through to the pool/serial path).

    Only scenarios pinned to the analytic backend are eligible — the
    batch twins are pinned bit-identical to the scalar closed forms, so
    records, store keys, and downstream reports are unchanged; this is
    purely an execution strategy.
    """
    from ..analytic.batch import batch_supported, evaluate_batch_records
    by_runner: Dict[str, List[int]] = {}
    for i in misses:
        spec = sweep.scenarios[i]
        if spec.backend == "analytic" and batch_supported(spec.runner):
            by_runner.setdefault(spec.runner, []).append(i)
    batched: Dict[int, Dict[str, Any]] = {}
    for name, idxs in by_runner.items():
        if len(idxs) < 2:
            continue            # a lone scenario gains nothing from a batch
        results = evaluate_batch_records(
            name, [sweep.scenarios[i].params for i in idxs])
        if results is None:
            continue
        for i, result in zip(idxs, results):
            batched[i] = _canonical_result(result)
    remaining = []
    for i in misses:
        if i in batched:
            record(i, batched[i])
        else:
            remaining.append(i)
    return remaining


def run_sweep(sweep: Union[str, SweepSpec],
              store: Optional[ResultStore] = None,
              workers: int = 1,
              force: bool = False,
              progress: Optional[ProgressFn] = None) -> SweepRun:
    """Run every scenario of ``sweep``, skipping store hits.

    Parameters
    ----------
    sweep:
        A :class:`SweepSpec` or the name of a registered sweep.
    store:
        Content-addressed result store; ``None`` disables caching.
    workers:
        Process count for the misses.  ``1`` (or a single miss) uses the
        in-process serial path; results are identical either way.
    force:
        Re-execute every scenario even on a store hit (hits are
        overwritten with the fresh results).
    progress:
        Optional ``progress(done, total, outcome)`` callback, invoked in
        sweep order as outcomes become available.
    """
    if isinstance(sweep, str):
        sweep = get_sweep(sweep)
    ensure_registered()
    metrics = get_metrics()

    total = len(sweep.scenarios)
    outcomes: List[Optional[ScenarioOutcome]] = [None] * total
    misses: List[int] = []
    done = 0

    def _notify(outcome: ScenarioOutcome) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(done, total, outcome)

    for i, spec in enumerate(sweep.scenarios):
        cached = None if (store is None or force) else store.get(spec)
        if cached is not None:
            outcomes[i] = ScenarioOutcome(spec=spec, key=spec.key(),
                                          result=cached, cached=True)
            _notify(outcomes[i])
        else:
            misses.append(i)
    if metrics.enabled:
        metrics.inc("sweep.cache_hits", total - len(misses))
        metrics.inc("sweep.cache_misses", len(misses))

    def _record(i: int, result: Dict[str, Any]) -> None:
        spec = sweep.scenarios[i]
        if store is not None:
            store.put(spec, result)
        outcomes[i] = ScenarioOutcome(spec=spec, key=spec.key(),
                                      result=result, cached=False)
        _notify(outcomes[i])

    if misses and batch_enabled():
        before = len(misses)
        with metrics.timer("sweep.batch_wall_s"):
            misses = _run_batch_misses(sweep, misses, _record)
        if metrics.enabled:
            metrics.inc("sweep.batch_fastpath_scenarios",
                        before - len(misses))

    if len(misses) > 1 and workers > 1:
        ctx = multiprocessing.get_context("spawn")
        n = min(workers, len(misses))
        with metrics.timer("sweep.pool_wall_s"):
            with ctx.Pool(processes=n) as pool:
                specs = [sweep.scenarios[i] for i in misses]
                for i, result in zip(
                        misses, pool.imap(_worker_run, specs, chunksize=1)):
                    _record(i, result)
    else:
        with metrics.timer("sweep.serial_wall_s"):
            for i in misses:
                _record(i, run_scenario(sweep.scenarios[i]))

    run = SweepRun(sweep=sweep, outcomes=list(outcomes))

    if store is not None:
        # A fully cached run can reuse the stored figure export instead of
        # re-assembling; anything freshly executed refreshes the record.
        payload = store.get_sweep(sweep) if not misses else None
        if payload is not None:
            from ..bench.harness import FigureResult
            run._figure = FigureResult.from_json_dict(payload)
        else:
            store.put_sweep(sweep, run.figure().to_json_dict())
    return run
