"""Mega sweeps: axis-defined analytic grids evaluated in one batch call.

A registered :class:`~repro.experiments.specs.SweepSpec` materializes one
:class:`ScenarioSpec` per point — perfect for the paper figures, far too
heavy for six- or seven-axis design grids where a million frozen
dataclasses (and a million cache files) would dwarf the closed-form math
itself.  A :class:`MegaSweepSpec` instead stores the *axes* and hands the
whole Cartesian product to the vectorized mega-batch engine
(:class:`repro.analytic.batch.ScenarioBatch`); assembly runs on the
output columns with :func:`repro.analytic.explorer.pareto_mask`, so a
100k–1M point sweep is an order of seconds end to end.

Caching is sweep-level only: the assembled figure payload is stored under
the spec's content key (same :class:`~repro.experiments.store.ResultStore`
record shape as ordinary sweeps), so a warm ``run``/``report`` touches no
math at all and the rendered report is byte-identical to the cold one —
the figure payload is canonicalized through a JSON round trip before
either path sees it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..bench.harness import FigureResult, Row
from .specs import SCHEMA_VERSION, canonical_json
from .store import ResultStore

__all__ = [
    "MegaSweepSpec", "MegaRun", "run_mega", "register_mega", "get_mega",
    "find_mega", "list_megas", "dse_mega_sweep", "dse_mega_smoke_sweep",
    "MEGA_SWEEPS", "DSE_MEGA_AXES",
]


@dataclass(frozen=True)
class MegaSweepSpec:
    """An axis-defined sweep: runner + Cartesian axes, no scenario list.

    ``axes_json`` preserves the declared axis order (last axis fastest,
    the :func:`~repro.experiments.specs.grid_params` convention), which is
    part of the sweep's identity: reordering axes reorders the grid.
    """

    name: str
    title: str
    runner: str
    axes_json: str
    description: str = ""
    figure: str = ""

    @classmethod
    def make(cls, name: str, title: str, runner: str,
             axes: Dict[str, Sequence[Any]], description: str = "",
             figure: str = "") -> "MegaSweepSpec":
        axes = {k: list(v) for k, v in axes.items()}
        return cls(name=name, title=title, runner=runner,
                   # Axis order is load-bearing (it defines grid order and
                   # the content key), so this dumps is deliberately
                   # insertion-ordered, not sort_keys.
                   axes_json=json.dumps(axes, separators=(",", ":")),  # repro-lint: ignore[determinism]
                   description=description, figure=figure or title)

    @property
    def axes(self) -> Dict[str, List[Any]]:
        return json.loads(self.axes_json)

    def __len__(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n

    def key(self) -> str:
        """Content hash (axis order included — it defines grid order)."""
        record = canonical_json({
            "schema": SCHEMA_VERSION,
            "kind": "mega",
            "name": self.name,
            "runner": self.runner,
            "axes": [[k, v] for k, v in self.axes.items()],
        })
        return hashlib.sha256(record.encode("utf-8")).hexdigest()


@dataclass
class MegaRun:
    """A completed mega sweep: scale counters plus the assembled figure."""

    spec: MegaSweepSpec
    executed: int                   #: 0 when served from the sweep record
    _figure: FigureResult = field(repr=False)

    @property
    def cache_hits(self) -> int:
        return 0 if self.executed else len(self.spec)

    def figure(self) -> FigureResult:
        return self._figure

    def report(self) -> Dict[str, Any]:
        """Report-shaped like an ordinary sweep's, minus the per-scenario
        entries (a million records would drown the signal — the frontier
        *is* the result)."""
        from .report import REPORT_SCHEMA
        return {
            "schema": REPORT_SCHEMA,
            "sweep": self.spec.name,
            "title": self.spec.title,
            "description": self.spec.description,
            "sweep_key": self.spec.key(),
            "scenarios": [],
            "figure": self._figure.to_json_dict(),
        }


# ----------------------------------------------------------------------
# Assembly: output columns -> the dse_frontier FigureResult shape.
# ----------------------------------------------------------------------

def _axis_index_columns(axes: Dict[str, List[Any]]
                        ) -> Dict[str, np.ndarray]:
    """Per-row value-index column for every axis, in grid-product order."""
    names = list(axes)
    lengths = [len(axes[k]) for k in names]
    n = int(np.prod(lengths, dtype=np.int64)) if names else 1
    cols: Dict[str, np.ndarray] = {}
    inner = n
    for k, ln in zip(names, lengths):
        inner //= ln
        outer = n // (ln * inner)
        cols[k] = np.tile(np.repeat(np.arange(ln), inner), outer)
    return cols


def _display(value: Any) -> str:
    """Platform axis values render by catalog/params name, like the
    registered DSE sweep's labels."""
    if isinstance(value, dict):
        return value.get("name", "custom")
    return str(value)


def _point_label(axes: Dict[str, List[Any]],
                 idx_cols: Dict[str, np.ndarray], row: int) -> str:
    """Compact deterministic label from the varying axes of one grid row."""
    parts: List[str] = []
    for k, values in axes.items():
        if len(values) < 2:
            continue
        v = values[int(idx_cols[k][row])]
        if k == "platform":
            parts.insert(0, _display(v))
        elif k == "algo":
            if v:                   # None = legacy schedule, no suffix
                parts.append(str(v))
        else:
            parts.append(f"{k}={v}")
    return " ".join(parts) or f"#{row}"


def _assemble_frontier(spec: MegaSweepSpec,
                       outputs: Dict[str, np.ndarray]) -> FigureResult:
    """Vectorized twin of the ``dse_frontier`` assembler: per-platform
    Pareto frontiers of (fused latency, fused-over-baseline speedup),
    plus the globally undominated subset — computed with
    :func:`~repro.analytic.explorer.pareto_mask` on the output columns
    instead of per-scenario tuples."""
    from ..analytic.explorer import pareto_mask
    axes = spec.axes
    idx_cols = _axis_index_columns(axes)
    fused = outputs["fused_time"]
    baseline = outputs["baseline_time"]
    speedup = baseline / fused
    objs = np.stack([fused, -speedup], axis=1)

    platforms = axes.get("platform", [None])
    plat_idx = idx_cols.get("platform", np.zeros(len(fused), np.int64))
    by_name: Dict[str, int] = {}
    frontier_rows: List[int] = []
    order = np.argsort([_display(p) for p in platforms], kind="stable")
    for pi in order:
        rows = np.flatnonzero(plat_idx == pi)
        front = rows[pareto_mask(objs[rows])]
        by_name[_display(platforms[pi])] = len(front)
        frontier_rows.extend(int(r) for r in front)

    res = FigureResult(spec.figure or spec.title, spec.description)
    frontier_data = []
    for r in frontier_rows:
        label = _point_label(axes, idx_cols, r)
        res.add(Row(label=label, fused_time=float(fused[r]),
                    baseline_time=float(baseline[r])))
        frontier_data.append({
            "label": label,
            "fused_us": round(float(fused[r]) * 1e6, 3),
            "speedup": round(float(speedup[r]), 4),
        })
    global_rows = np.flatnonzero(pareto_mask(objs))
    best = int(np.argmax(speedup))
    res.extra["n_scenarios"] = len(fused)
    res.extra["n_frontier"] = len(frontier_data)
    res.extra["best_speedup"] = (f"{float(speedup[best]):.2f}x at "
                                 f"{_point_label(axes, idx_cols, best)}")
    res.extra["frontier_by_platform"] = by_name
    res.extra["global_frontier"] = sorted(
        _point_label(axes, idx_cols, int(r)) for r in global_rows)
    res.extra["frontier"] = frontier_data
    return res


# ----------------------------------------------------------------------
# Execution: one batch call, sweep-level cache record.
# ----------------------------------------------------------------------

def run_mega(spec: MegaSweepSpec,
             store: Optional[ResultStore] = None,
             force: bool = False) -> MegaRun:
    """Evaluate a mega sweep (or serve its cached figure record).

    The grid never touches per-scenario records: the only store artifact
    is the sweep-level assembled-figure payload under ``spec.key()``.
    Cold and cached runs produce byte-identical reports because the
    figure is canonicalized through a JSON round trip before either path
    returns it.
    """
    if store is not None and not force:
        payload = store.get_sweep(spec)
        if payload is not None:
            return MegaRun(spec=spec, executed=0,
                           _figure=FigureResult.from_json_dict(payload))
    from ..analytic.batch import ScenarioBatch
    batch = ScenarioBatch.from_grid(spec.runner, spec.axes)
    figure = _assemble_frontier(spec, batch.evaluate())
    payload = json.loads(json.dumps(figure.to_json_dict()))
    if store is not None:
        store.put_sweep(spec, payload)
    return MegaRun(spec=spec, executed=len(spec),
                   _figure=FigureResult.from_json_dict(payload))


# ----------------------------------------------------------------------
# Registry + the shipped mega sweeps.
# ----------------------------------------------------------------------

MEGA_SWEEPS: Dict[str, MegaSweepSpec] = {}


def register_mega(spec: MegaSweepSpec,
                  overwrite: bool = False) -> MegaSweepSpec:
    if spec.name in MEGA_SWEEPS and not overwrite:
        raise ValueError(f"mega sweep {spec.name!r} already registered")
    MEGA_SWEEPS[spec.name] = spec
    return spec


def get_mega(name: str) -> MegaSweepSpec:
    try:
        return MEGA_SWEEPS[name]
    except KeyError:
        raise KeyError(f"unknown mega sweep {name!r}; registered: "
                       f"{sorted(MEGA_SWEEPS)}") from None


def find_mega(name: str) -> Optional[MegaSweepSpec]:
    return MEGA_SWEEPS.get(name)


def list_megas() -> List[MegaSweepSpec]:
    return [MEGA_SWEEPS[name] for name in sorted(MEGA_SWEEPS)]


#: The ``dse_mega`` grid: every axis value satisfies the embedding+A2A
#: config invariants for every topology in the grid (``global_batch`` is
#: a multiple of ``world * slice_vectors`` throughout), so all 103,680
#: points validate.  ~40x the registered ``dse_fused_frontier`` grid.
DSE_MEGA_AXES: Dict[str, List[Any]] = {
    "platform": ["mi210", "mi250x", "mi300x", "h100"],
    "num_nodes": [1, 2],
    "gpus_per_node": [1, 2, 4],
    "global_batch": [512 * k for k in range(1, 19)],
    "tables_per_gpu": [8, 16, 24, 32, 48, 64, 96, 128, 192, 256],
    "slice_vectors": [8, 16, 32, 64],
    "occupancy_of_baseline": [0.25, 0.5, 0.75],
    "algo": [None, "pairwise"],
}


def dse_mega_sweep(name: str = "dse_mega") -> MegaSweepSpec:
    """The headline mega grid: ~104k fused embedding+A2A design points,
    evaluated in one vectorized call (about a second end to end)."""
    return MegaSweepSpec.make(
        name, "DSE mega", "embedding_a2a_pair", DSE_MEGA_AXES,
        description="mega-batch fused embedding+A2A design-space frontier "
                    "(latency vs speedup)",
        figure="DSE mega")


def dse_mega_smoke_sweep(name: str = "dse-mega-smoke") -> MegaSweepSpec:
    """16-point slice of :func:`dse_mega_sweep` for CI cache-behaviour
    checks (cold run, then a byte-identical fully-cached re-run)."""
    return MegaSweepSpec.make(
        name, "DSE mega smoke", "embedding_a2a_pair",
        {
            "platform": ["mi210", "h100"],
            "num_nodes": [2],
            "gpus_per_node": [1],
            "global_batch": [512, 2048],
            "tables_per_gpu": [16, 64],
            "slice_vectors": [32],
            "occupancy_of_baseline": [0.25, 0.75],
            "algo": [None],
        },
        description="CI slice of the dse_mega grid (16 points)",
        figure="DSE mega smoke")


register_mega(dse_mega_sweep())
register_mega(dse_mega_smoke_sweep())
