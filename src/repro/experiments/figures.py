"""The paper's evaluation, ported onto the orchestrator.

Every figure/table of ``repro.bench.figures`` and every ablation that used
to live inline in ``benchmarks/`` is re-expressed here as a
:class:`~repro.experiments.specs.SweepSpec`: a list of independent
scenarios (one simulation — or one fused/baseline pair — each) plus an
assembler that rebuilds the exact :class:`FigureResult` the direct path
produces.  Each runner dispatches on the ``backend`` scenario parameter:
the default discrete-event engine, or the closed-form analytic engine
(:mod:`repro.analytic`) that evaluates the same workload thousands of
times faster — the axis behind the large ``dse_*`` design-space sweeps.  Scenario independence is what buys parallel sharding and
content-addressed caching; the assemblers replicate the direct path's
aggregation (worst-point normalization, skew statistics, paper-comparison
strings) bit for bit, which
``tests/experiments/test_figure_equivalence.py`` enforces.

The sweep factories (``fig8_sweep(grid=...)`` etc.) accept the same grid
parameters as the direct functions so tests and users can build reduced
or enlarged variants; module import registers the paper-default instance
of each under its canonical name (``fig8`` … ``fig15``, ``table1/2``,
``ablation-*``, ``ext-embedding-backward``, and a tiny ``smoke`` sweep
for CI).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..astra import run_dlrm_scaleout
from ..bench.figures import (
    FIG8_GRID,
    FIG9_GRID,
    FIG10_GRID,
    FIG12_GRID,
)
from ..bench.harness import FigureResult, Row, compare
from ..fused.base import OpHarness
from ..fused.embedding_alltoall import (
    BaselineEmbeddingAllToAll,
    EmbeddingA2AConfig,
    FusedEmbeddingAllToAll,
)
from ..fused.embedding_grad_alltoall import (
    BaselineEmbeddingGradAllToAll,
    FusedEmbeddingGradAllToAll,
)
from ..fused.gemm_alltoall import (
    BaselineGemmAllToAll,
    FusedGemmAllToAll,
    GemmA2AConfig,
)
from ..fused.gemv_allreduce import (
    BaselineGemvAllReduce,
    FusedGemvAllReduce,
    GemvAllReduceConfig,
)
from ..hw.platform import PlatformLike, get_platform, \
    max_occupancy_of_baseline
from ..sim import TraceRecorder
from .registry import assembler, register_sweep, runner
from .specs import (
    BACKENDS,
    DEFAULT_BACKEND,
    ScenarioSpec,
    SweepSpec,
    scenario,
)

__all__ = [
    "fig8_sweep", "fig9_sweep", "fig10_sweep", "fig11_sweep", "fig12_sweep",
    "fig13_sweep", "fig14_sweep", "fig15_sweep", "table1_sweep",
    "table2_sweep", "ablation_slice_size_sweep", "ablation_scheduling_sweep",
    "ablation_zero_copy_sweep", "ablation_cpu_proxy_sweep",
    "ext_embedding_backward_sweep", "smoke_sweep", "xhw_embedding_a2a_sweep",
    "xhw_gemv_allreduce_sweep", "xhw_gemm_a2a_sweep", "xhw_scaleout_sweep",
    "xhw_smoke_sweep", "XHW_PLATFORMS", "xalgo_allreduce_sweep",
    "xalgo_alltoall_sweep", "xalgo_smoke_sweep", "XALGO_ALLREDUCE",
    "XALGO_ALLTOALL", "dse_fused_frontier_sweep", "dse_smoke_sweep",
    "DSE_PLATFORMS", "DSE_ALGOS", "trace_smoke_sweep",
]


def _scenario_backend(p: Dict[str, Any]) -> str:
    """Pop and validate a scenario's evaluation engine.

    Runners branch on the result: ``"sim"`` (the default, represented by
    the parameter's *absence* so pre-backend store keys are unchanged)
    runs the discrete-event simulator, ``"analytic"`` the closed-form
    backend (:mod:`repro.analytic`).
    """
    backend = p.pop("backend", DEFAULT_BACKEND)
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {BACKENDS}")
    return backend


def _platform_param(platform: PlatformLike):
    """Canonical ``platform`` scenario parameter (hashed into store keys).

    Resolving first normalizes every accepted spelling (``None``, name,
    :class:`~repro.hw.platform.Platform`, params mapping) to one stable
    JSON value: the catalog name when the platform is registered, else its
    full params mapping.
    """
    return get_platform(platform).param()

def _reject_algo(p: Dict[str, Any], runner: str) -> None:
    """Fail fast when an ``algo`` parameter reaches a runner with no
    baseline collective to schedule.

    Without this, a sweep-wide ``--algo`` (or a typo'd param) would
    either crash deep inside an analytic twin or — worse — run the
    scenario unchanged and cache an identical result under a new key.
    """
    if "algo" in p:
        raise ValueError(
            f"runner {runner!r} has no baseline collective; the 'algo' "
            f"parameter does not apply (drop --algo / the algo param, "
            f"or use a collective-bearing sweep — see "
            f"`python -m repro algos`)")


#: Hidden-scenario convention: labels starting with this prefix feed a
#: figure's ``extra`` statistics but do not appear as rows.
HIDDEN = "_"


# ----------------------------------------------------------------------
# Scenario runners: one simulation (or fused/baseline pair) per call.
# ----------------------------------------------------------------------

@runner("embedding_a2a_pair")
def _embedding_a2a_pair(params: Dict[str, Any]) -> Dict[str, Any]:
    """Fused vs baseline embedding+A2A on fresh clusters.

    ``params`` holds ``num_nodes``/``gpus_per_node`` plus any
    :class:`EmbeddingA2AConfig` fields; an optional ``baseline`` mapping
    gives the baseline operator its own config fields (the zero-copy
    ablation compares against an unmodified baseline).
    """
    p = dict(params)
    if _scenario_backend(p) == "analytic":
        from ..analytic import predict_embedding_a2a
        return predict_embedding_a2a(**p)
    num_nodes = p.pop("num_nodes")
    gpus_per_node = p.pop("gpus_per_node")
    platform = p.pop("platform", None)
    baseline = p.pop("baseline", None)
    cfg = EmbeddingA2AConfig(functional=False, **p)
    # The baseline override inherits the collective schedule unless it
    # names its own (the algo axis compares like against like).
    base_cfg = (cfg if baseline is None
                else EmbeddingA2AConfig(functional=False,
                                        **{"algo": cfg.algo, **baseline}))
    row = compare(cfg.label,
                  lambda h: FusedEmbeddingAllToAll(h, cfg),
                  lambda h: BaselineEmbeddingAllToAll(h, base_cfg),
                  num_nodes=num_nodes, gpus_per_node=gpus_per_node,
                  platform=platform)
    return {"fused_time": row.fused_time, "baseline_time": row.baseline_time}


@runner("embedding_fused")
def _embedding_fused(params: Dict[str, Any]) -> Dict[str, Any]:
    """A single fused embedding+A2A run (occupancy/scheduling/proxy knobs)."""
    p = dict(params)
    if _scenario_backend(p) == "analytic":
        from ..analytic import predict_embedding_fused
        return predict_embedding_fused(**p)
    num_nodes = p.pop("num_nodes", 2)
    gpus_per_node = p.pop("gpus_per_node", 1)
    cpu_proxy = p.pop("cpu_proxy", False)
    platform = p.pop("platform", None)
    cfg = EmbeddingA2AConfig(functional=False, **p)
    h = OpHarness(num_nodes=num_nodes, gpus_per_node=gpus_per_node,
                  cpu_proxy=cpu_proxy, platform=platform)
    out = h.run(FusedEmbeddingAllToAll(h, cfg))
    return {
        "elapsed": out.elapsed,
        "rank_end_times": {str(r): t
                           for r, t in out.stats["rank_end_times"].items()},
    }


@runner("gemv_allreduce_pair")
def _gemv_allreduce_pair(params: Dict[str, Any]) -> Dict[str, Any]:
    p = dict(params)
    if _scenario_backend(p) == "analytic":
        from ..analytic import predict_gemv_allreduce
        return predict_gemv_allreduce(**p)
    world = p.pop("world", 4)
    platform = p.pop("platform", None)
    cfg = GemvAllReduceConfig(functional=False, **p)
    row = compare(cfg.label,
                  lambda h: FusedGemvAllReduce(h, cfg),
                  lambda h: BaselineGemvAllReduce(h, cfg),
                  num_nodes=1, gpus_per_node=world, platform=platform)
    return {"fused_time": row.fused_time, "baseline_time": row.baseline_time}


@runner("gemm_a2a_pair")
def _gemm_a2a_pair(params: Dict[str, Any]) -> Dict[str, Any]:
    p = dict(params)
    if _scenario_backend(p) == "analytic":
        from ..analytic import predict_gemm_a2a
        return predict_gemm_a2a(**p)
    world = p.pop("world", 4)
    platform = p.pop("platform", None)
    cfg = GemmA2AConfig(functional=False, **p)
    row = compare(cfg.label,
                  lambda h: FusedGemmAllToAll(h, cfg),
                  lambda h: BaselineGemmAllToAll(h, cfg),
                  num_nodes=1, gpus_per_node=world, platform=platform)
    return {"fused_time": row.fused_time, "baseline_time": row.baseline_time}


@runner("embedding_grad_pair")
def _embedding_grad_pair(params: Dict[str, Any]) -> Dict[str, Any]:
    p = dict(params)
    if _scenario_backend(p) == "analytic":
        from ..analytic import predict_embedding_grad_a2a
        return predict_embedding_grad_a2a(**p)
    num_nodes = p.pop("num_nodes", 2)
    gpus_per_node = p.pop("gpus_per_node", 1)
    platform = p.pop("platform", None)
    cfg = EmbeddingA2AConfig(functional=False, **p)
    row = compare(cfg.label,
                  lambda h: FusedEmbeddingGradAllToAll(h, cfg),
                  lambda h: BaselineEmbeddingGradAllToAll(h, cfg),
                  num_nodes=num_nodes, gpus_per_node=gpus_per_node,
                  platform=platform)
    return {"fused_time": row.fused_time, "baseline_time": row.baseline_time}


@runner("wg_timeline")
def _wg_timeline(params: Dict[str, Any]) -> Dict[str, Any]:
    """Fig. 11's traced run; mirrors ``bench.figures.fig11_wg_timeline``."""
    p = dict(params)
    _reject_algo(p, "wg_timeline")
    if _scenario_backend(p) == "analytic":
        from ..analytic import predict_wg_timeline
        return predict_wg_timeline(**p)
    batch = params.get("batch", 512)
    tables = params.get("tables", 32)
    wgs_per_slice = params.get("wgs_per_slice", 16)
    timeline_width = params.get("timeline_width", 100)
    trace = TraceRecorder()
    cfg = EmbeddingA2AConfig(global_batch=batch, tables_per_gpu=tables,
                             functional=False, slice_vectors=wgs_per_slice,
                             tasks_per_slice=wgs_per_slice)
    h = OpHarness(num_nodes=2, gpus_per_node=1, trace=trace,
                  platform=params.get("platform"))
    result = h.run(FusedEmbeddingAllToAll(h, cfg))

    puts = trace.filter(kind="put_issue",
                        predicate=lambda e: e.actor.startswith("gpu0"))
    [kernel_span] = [s for s in trace.spans("kernel")
                     if s.detail.get("kernel") == "fused_emb_a2a[0]"]
    kspan = kernel_span.end - kernel_span.start
    first_put = min(p.time for p in puts) - kernel_span.start
    last_put = max(p.time for p in puts) - kernel_span.start
    actors = [f"gpu0/wg{i}" for i in range(0, 32)]
    return {
        "kernel_time": f"{kspan * 1e3:.3f} ms",
        "puts_issued_node0": len(puts),
        "first_put_at": f"{100 * first_put / kspan:.1f}% of kernel",
        "last_put_at": f"{100 * last_put / kspan:.1f}% of kernel",
        "elapsed": f"{result.elapsed * 1e3:.3f} ms",
        "timeline": "\n" + trace.render_timeline(actors=actors,
                                                 width=timeline_width),
        # Raw numeric metrics (underscore keys are dropped from the
        # figure's extra) so ``repro diff`` catches timing regressions
        # that the pre-formatted display strings would hide.
        "_kernel_time_s": kspan,
        "_first_put_frac": first_put / kspan,
        "_last_put_frac": last_put / kspan,
        "_elapsed_s": result.elapsed,
    }


@runner("dlrm_scaleout")
def _dlrm_scaleout(params: Dict[str, Any]) -> Dict[str, Any]:
    # The scale-out pipeline (repro.astra) is closed-form already, so both
    # backends share it and agree exactly; the backend parameter only
    # distinguishes the store keys.
    p = dict(params)
    _reject_algo(p, "dlrm_scaleout")
    _scenario_backend(p)
    r = run_dlrm_scaleout(p["num_nodes"], platform=p.get("platform"))
    return {
        "fused_time": r.fused_time,
        "baseline_time": r.baseline_time,
        "reduction_pct": r.reduction_pct,
        "exposed_a2a_fraction": r.exposed_a2a_fraction(),
    }


@runner("table_setup")
def _table_setup(params: Dict[str, Any]) -> Dict[str, Any]:
    from ..bench.figures import table1_setup, table2_setup
    p = dict(params)
    _reject_algo(p, "table_setup")
    _scenario_backend(p)  # table rendering is closed-form on either engine
    which = p["which"]
    if which == "table1":
        fig = table1_setup(platform=p.get("platform"))
    else:
        fig = table2_setup()
    return {"extra": dict(fig.extra)}


# ----------------------------------------------------------------------
# Assemblers: scenario results -> the direct path's FigureResult.
# ----------------------------------------------------------------------

def _visible(specs: Sequence[ScenarioSpec], results: Sequence[Dict]):
    return [(s, r) for s, r in zip(specs, results)
            if not s.label.startswith(HIDDEN)]


@assembler("rows")
def _assemble_rows(sweep: SweepSpec, specs, results, figure: str = "",
                   description: str = "", paper_mean=None, paper_best=None
                   ) -> FigureResult:
    """Plain paired rows: one fused/baseline scenario per row."""
    res = FigureResult(figure or sweep.title,
                       description or sweep.description,
                       paper_mean=paper_mean, paper_best=paper_best)
    for spec, result in _visible(specs, results):
        res.add(Row(label=spec.label, fused_time=result["fused_time"],
                    baseline_time=result["baseline_time"]))
    return res


@assembler("table")
def _assemble_table(sweep: SweepSpec, specs, results, figure: str = "",
                    description: str = "") -> FigureResult:
    res = FigureResult(figure or sweep.title,
                       description or sweep.description)
    res.extra.update(results[0]["extra"])
    return res


@assembler("timeline")
def _assemble_timeline(sweep: SweepSpec, specs, results, figure: str = "",
                       description: str = "") -> FigureResult:
    res = FigureResult(figure or sweep.title,
                       description or sweep.description)
    # Underscore keys are raw metrics for the diff layer, not part of the
    # figure (whose extra must match the direct path exactly).
    res.extra.update({k: v for k, v in results[0].items()
                      if not k.startswith("_")})
    return res


@assembler("occupancy")
def _assemble_occupancy(sweep: SweepSpec, specs, results, figure: str = "",
                        description: str = "") -> FigureResult:
    """Fig. 13 semantics: each point normalized against the worst point."""
    res = FigureResult(figure or sweep.title,
                       description or sweep.description)
    times = {spec.params["occupancy_of_baseline"]: result["elapsed"]
             for spec, result in zip(specs, results)}
    t_max = max(times.values())
    for frac in times:
        res.add(Row(label=f"{100 * frac:.1f}%", fused_time=times[frac],
                    baseline_time=t_max))
    if 0.25 in times and 0.75 in times and 0.875 in times:
        res.extra["reduction_25_to_75"] = (
            f"{100 * (1 - times[0.75] / times[0.25]):.1f}% "
            f"(paper: 46%)")
        res.extra["increase_75_to_875"] = (
            f"{100 * (times[0.875] / times[0.75] - 1):.1f}% "
            f"(paper: 25%)")
    return res


@assembler("sched_skew")
def _assemble_sched_skew(sweep: SweepSpec, specs, results, figure: str = "",
                         description: str = "") -> FigureResult:
    """Fig. 14 semantics: per-node completion skew by scheduling policy."""
    res = FigureResult(figure or sweep.title,
                       description or sweep.description)
    skews: Dict[str, List[float]] = {"comm_aware": [], "oblivious": []}
    for spec, result in zip(specs, results):
        p = spec.params
        ends = result["rank_end_times"]
        skew = abs(ends["0"] - ends["1"]) / max(ends.values())
        skews[p["scheduler"]].append(skew)
        res.add(Row(label=spec.label, fused_time=ends["0"],
                    baseline_time=ends["1"]))
    res.extra["avg_skew_comm_aware"] = (
        f"{100 * sum(skews['comm_aware']) / len(skews['comm_aware']):.2f}% "
        f"(paper: ~1%)")
    res.extra["avg_skew_oblivious"] = (
        f"{100 * sum(skews['oblivious']) / len(skews['oblivious']):.2f}% "
        f"(paper: ~7%)")
    res.extra["skews"] = skews
    return res


def _platform_display(value) -> str:
    """Display name of a canonical ``platform`` scenario parameter."""
    return value if isinstance(value, str) else value.get("name", "custom")


@assembler("xalgo")
def _assemble_xalgo(sweep: SweepSpec, specs, results, figure: str = "",
                    description: str = "") -> FigureResult:
    """Algorithm-axis semantics: one fused/baseline row per (schedule,
    workload) point, plus the cross-schedule aggregates.

    ``baseline_us_by_algo`` reports the mean baseline collective+compute
    time per schedule; ``best_algo_by_point`` names the winning schedule
    per workload point — the "which schedule wins where" answer the
    sweep exists for.
    """
    res = FigureResult(figure or sweep.title,
                       description or sweep.description)
    by_algo: Dict[str, List[float]] = {}
    by_point: Dict[str, Dict[str, float]] = {}
    for spec, result in _visible(specs, results):
        res.add(Row(label=spec.label, fused_time=result["fused_time"],
                    baseline_time=result["baseline_time"]))
        algo = spec.params.get("algo", "default")
        point = spec.label.split(" ", 1)[-1]
        by_algo.setdefault(algo, []).append(result["baseline_time"])
        by_point.setdefault(point, {})[algo] = result["baseline_time"]
    res.extra["baseline_us_by_algo"] = {
        algo: round(1e6 * sum(v) / len(v), 3)
        for algo, v in sorted(by_algo.items())}
    res.extra["best_algo_by_point"] = {
        point: min(times, key=times.get)
        for point, times in sorted(by_point.items())}
    return res


@assembler("xhw")
def _assemble_xhw(sweep: SweepSpec, specs, results, figure: str = "",
                  description: str = "") -> FigureResult:
    """Cross-hardware semantics: fused/baseline rows per (platform,
    workload) point plus per-platform speedup aggregates.

    ``speedup_by_platform`` reports mean baseline/fused time per platform
    (>1 = the fused operator wins), the headline number of the
    cross-hardware what-if sweeps.
    """
    res = FigureResult(figure or sweep.title,
                       description or sweep.description)
    by_platform: Dict[str, List[float]] = {}
    for spec, result in _visible(specs, results):
        res.add(Row(label=spec.label, fused_time=result["fused_time"],
                    baseline_time=result["baseline_time"]))
        name = _platform_display(spec.params["platform"])
        by_platform.setdefault(name, []).append(
            result["baseline_time"] / result["fused_time"])
    res.extra["speedup_by_platform"] = {
        name: round(sum(v) / len(v), 4)
        for name, v in by_platform.items()}
    return res


@assembler("dse_frontier")
def _assemble_dse_frontier(sweep: SweepSpec, specs, results, figure: str = "",
                           description: str = "") -> FigureResult:
    """Design-space semantics: per-platform Pareto frontiers of
    (fused latency, fused-over-baseline speedup).

    A global frontier would collapse onto the fastest device; per platform
    is the design question the sweep answers — *on this hardware*, which
    configurations are undominated (no other config is both faster and a
    bigger win)?  Rows are the union of the per-platform frontiers
    (minimize fused time, maximize baseline/fused speedup); the full grid
    stays in the scenario records.  ``extra`` carries the grid size, the
    frontier as raw data, and the globally undominated subset.
    """
    from ..analytic import pareto_frontier
    res = FigureResult(figure or sweep.title,
                       description or sweep.description)
    grouped: Dict[str, list] = {}
    points = []
    for spec, result in _visible(specs, results):
        point = (spec, result, result["baseline_time"] / result["fused_time"])
        points.append(point)
        grouped.setdefault(_platform_display(spec.params["platform"]),
                           []).append(point)
    objectives = lambda p: (p[1]["fused_time"], -p[2])  # noqa: E731
    by_platform: Dict[str, int] = {}
    frontier_data = []
    for name in sorted(grouped):
        frontier = pareto_frontier(grouped[name], objectives)
        by_platform[name] = len(frontier)
        for spec, result, speedup in frontier:
            res.add(Row(label=spec.label, fused_time=result["fused_time"],
                        baseline_time=result["baseline_time"]))
            frontier_data.append({
                "label": spec.label,
                "fused_us": round(result["fused_time"] * 1e6, 3),
                "speedup": round(speedup, 4),
            })
    global_frontier = pareto_frontier(points, objectives)
    best = max(points, key=lambda p: p[2])
    res.extra["n_scenarios"] = len(points)
    res.extra["n_frontier"] = len(frontier_data)
    res.extra["best_speedup"] = f"{best[2]:.2f}x at {best[0].label}"
    res.extra["frontier_by_platform"] = by_platform
    res.extra["global_frontier"] = sorted(s.label
                                          for s, _r, _x in global_frontier)
    res.extra["frontier"] = frontier_data
    return res


@assembler("scaleout")
def _assemble_scaleout(sweep: SweepSpec, specs, results, figure: str = "",
                       description: str = "", paper_mean=None) -> FigureResult:
    """Fig. 15: node-count rows + the 128-node headline statistics."""
    res = FigureResult(figure or sweep.title,
                       description or sweep.description,
                       paper_mean=paper_mean)
    for spec, result in _visible(specs, results):
        res.add(Row(label=spec.label, fused_time=result["fused_time"],
                    baseline_time=result["baseline_time"]))
    r128 = next(r for s, r in zip(specs, results)
                if s.params["num_nodes"] == 128)
    res.extra["reduction_128_nodes"] = (
        f"{r128['reduction_pct']:.1f}% (paper: ~21%)")
    res.extra["baseline_exposed_a2a_128"] = (
        f"{100 * r128['exposed_a2a_fraction']:.0f}% "
        f"(motivation claim: >35%)")
    return res


@assembler("slice_ablation")
def _assemble_slice_ablation(sweep: SweepSpec, specs, results,
                             figure: str = "", description: str = ""
                             ) -> FigureResult:
    res = FigureResult(figure or sweep.title,
                       description or sweep.description)
    times = {spec.params["slice_vectors"]: result["elapsed"]
             for spec, result in zip(specs, results)}
    worst = max(times.values())
    for sv in times:
        res.add(Row(label=f"slice={sv}", fused_time=times[sv],
                    baseline_time=worst))
    # String keys: JSON object keys are strings, so an int-keyed dict
    # would serialize in a different order fresh (numeric sort) vs from
    # the cache (lexicographic), breaking byte-identical reports.
    res.extra["times_us"] = {str(sv): round(t * 1e6, 1)
                             for sv, t in times.items()}
    return res


@assembler("sched_ablation")
def _assemble_sched_ablation(sweep: SweepSpec, specs, results,
                             figure: str = "", description: str = ""
                             ) -> FigureResult:
    """End-to-end time pairs: fused=comm_aware, baseline=oblivious."""
    res = FigureResult(figure or sweep.title,
                       description or sweep.description)
    times: Dict[Tuple[int, int], Dict[str, float]] = {}
    for spec, result in zip(specs, results):
        p = spec.params
        point = (p["global_batch"], p["tables_per_gpu"])
        times.setdefault(point, {})[p["scheduler"]] = result["elapsed"]
    for (batch, tables), by_sched in times.items():
        res.add(Row(label=f"{batch}|{tables}",
                    fused_time=by_sched["comm_aware"],
                    baseline_time=by_sched["oblivious"]))
    return res


@assembler("proxy_ablation")
def _assemble_proxy_ablation(sweep: SweepSpec, specs, results,
                             figure: str = "", description: str = ""
                             ) -> FigureResult:
    res = FigureResult(figure or sweep.title,
                       description or sweep.description)
    times = {spec.params.get("cpu_proxy", False): result["elapsed"]
             for spec, result in zip(specs, results)}
    res.add(Row(label="gpu-initiated", fused_time=times[False],
                baseline_time=times[True]))
    res.add(Row(label="cpu-proxy", fused_time=times[True],
                baseline_time=times[True]))
    res.extra["proxy_penalty"] = (
        f"{100 * (times[True] / times[False] - 1):.2f}% slower through "
        f"the proxy")
    return res


# ----------------------------------------------------------------------
# Sweep factories (parameterizable grids) + paper-default registrations.
# ----------------------------------------------------------------------

def _embedding_pair_scenarios(grid, num_nodes: int, gpus_per_node: int,
                              platform: PlatformLike = None
                              ) -> List[ScenarioSpec]:
    return [
        scenario("embedding_a2a_pair", label=f"{batch}|{tables}",
                 global_batch=batch, tables_per_gpu=tables,
                 num_nodes=num_nodes, gpus_per_node=gpus_per_node,
                 platform=_platform_param(platform))
        for batch, tables in grid
    ]


def fig8_sweep(grid=FIG8_GRID, name: str = "fig8",
               platform: PlatformLike = None) -> SweepSpec:
    return SweepSpec.make(
        name, "Fig. 8",
        _embedding_pair_scenarios(grid, num_nodes=1, gpus_per_node=4,
                                  platform=platform),
        assembler="rows", figure="Fig. 8",
        description="Normalized execution time, intra-node embedding+A2A",
        paper_mean=0.80, paper_best=0.68)


def fig12_sweep(grid=FIG12_GRID, name: str = "fig12",
                platform: PlatformLike = None) -> SweepSpec:
    return SweepSpec.make(
        name, "Fig. 12",
        _embedding_pair_scenarios(grid, num_nodes=2, gpus_per_node=1,
                                  platform=platform),
        assembler="rows", figure="Fig. 12",
        description="Normalized execution time, inter-node embedding+A2A",
        paper_mean=0.69, paper_best=0.42)


def fig9_sweep(grid=FIG9_GRID, world: int = 4, name: str = "fig9",
               platform: PlatformLike = None) -> SweepSpec:
    scenarios = [
        scenario("gemv_allreduce_pair",
                 label=GemvAllReduceConfig(m=m, n_per_gpu=n_total // world,
                                           functional=False).label,
                 m=m, n_per_gpu=n_total // world, world=world,
                 platform=_platform_param(platform))
        for m, n_total in grid
    ]
    return SweepSpec.make(
        name, "Fig. 9", scenarios, assembler="rows", figure="Fig. 9",
        description="Normalized execution time, GEMV+AllReduce",
        paper_mean=0.87, paper_best=0.78)


def fig10_sweep(grid=FIG10_GRID, world: int = 4, name: str = "fig10",
                platform: PlatformLike = None) -> SweepSpec:
    scenarios = [
        scenario("gemm_a2a_pair",
                 label=GemmA2AConfig(tokens=tokens, model_dim=model_dim,
                                     ffn_dim=ffn, functional=False).label,
                 tokens=tokens, model_dim=model_dim, ffn_dim=ffn, world=world,
                 platform=_platform_param(platform))
        for tokens, model_dim, ffn in grid
    ]
    return SweepSpec.make(
        name, "Fig. 10", scenarios, assembler="rows", figure="Fig. 10",
        description="Normalized execution time, GEMM+All-to-All",
        paper_mean=0.88, paper_best=0.80)


def fig11_sweep(batch: int = 512, tables: int = 32, wgs_per_slice: int = 16,
                timeline_width: int = 100, name: str = "fig11",
                platform: PlatformLike = None) -> SweepSpec:
    return SweepSpec.make(
        name, "Fig. 11",
        [scenario("wg_timeline", label=f"{batch}|{tables}",
                  batch=batch, tables=tables, wgs_per_slice=wgs_per_slice,
                  timeline_width=timeline_width,
                  platform=_platform_param(platform))],
        assembler="timeline", figure="Fig. 11",
        description="Profiled timeline of persistent WGs (node 0)")


def fig13_sweep(batch: int = 1024, tables: int = 256,
                fractions: Optional[Sequence[float]] = None,
                name: str = "fig13",
                platform: PlatformLike = None) -> SweepSpec:
    from ..bench.figures import occupancy_fractions_for
    fractions = occupancy_fractions_for(platform, fractions)
    scenarios = [
        scenario("embedding_fused", label=f"{100 * frac:.1f}%",
                 global_batch=batch, tables_per_gpu=tables,
                 occupancy_of_baseline=frac, num_nodes=2, gpus_per_node=1,
                 platform=_platform_param(platform))
        for frac in fractions
    ]
    return SweepSpec.make(
        name, "Fig. 13", scenarios, assembler="occupancy", figure="Fig. 13",
        description="Impact of WG occupancy on execution time")


def fig14_sweep(grid: Sequence[Tuple[int, int]] = (
        (1024, 64), (2048, 32), (2048, 64)),
        name: str = "fig14",
        platform: PlatformLike = None) -> SweepSpec:
    scenarios = [
        scenario("embedding_fused", label=f"{sched} {batch}|{tables}",
                 global_batch=batch, tables_per_gpu=tables, scheduler=sched,
                 num_nodes=2, gpus_per_node=1,
                 platform=_platform_param(platform))
        for sched in ("comm_aware", "oblivious")
        for batch, tables in grid
    ]
    return SweepSpec.make(
        name, "Fig. 14", scenarios, assembler="sched_skew", figure="Fig. 14",
        description="Node execution-time skew by scheduling policy")


def fig15_sweep(node_counts: Sequence[int] = (16, 32, 64, 128),
                name: str = "fig15",
                platform: PlatformLike = None) -> SweepSpec:
    plat = _platform_param(platform)
    scenarios = [
        scenario("dlrm_scaleout", label=f"{n} nodes", num_nodes=n,
                 platform=plat)
        for n in node_counts
    ]
    if 128 not in node_counts:
        scenarios.append(
            scenario("dlrm_scaleout", label=f"{HIDDEN}128 nodes",
                     num_nodes=128, platform=plat))
    return SweepSpec.make(
        name, "Fig. 15", scenarios, assembler="scaleout", figure="Fig. 15",
        description="Scale-out DLRM training, fused vs baseline",
        paper_mean=0.79)


def table1_sweep(name: str = "table1",
                 platform: PlatformLike = None) -> SweepSpec:
    return SweepSpec.make(
        name, "Table I",
        [scenario("table_setup", label="setup", which="table1",
                  platform=_platform_param(platform))],
        assembler="table", figure="Table I",
        description="System setup (simulated substrate)")


def table2_sweep(name: str = "table2") -> SweepSpec:
    return SweepSpec.make(
        name, "Table II",
        [scenario("table_setup", label="setup", which="table2")],
        assembler="table", figure="Table II",
        description="Scale-out simulation setup")


#: Slice sizes swept by the granularity ablation.
ABLATION_SLICES: Tuple[int, ...] = (8, 16, 32, 64, 128)


def ablation_slice_size_sweep(batch: int = 1024, tables: int = 64,
                              slices: Sequence[int] = ABLATION_SLICES,
                              name: str = "ablation-slice-size",
                              platform: PlatformLike = None) -> SweepSpec:
    max_frac = max_occupancy_of_baseline(get_platform(platform).gpu)
    scenarios = [
        # Occupancy pinned to the fused kernel's (platform-derived)
        # maximum so the sweep isolates communication granularity from
        # grid-size effects.
        scenario("embedding_fused", label=f"slice={sv}",
                 global_batch=batch, tables_per_gpu=tables, slice_vectors=sv,
                 occupancy_of_baseline=max_frac, num_nodes=2, gpus_per_node=1,
                 platform=_platform_param(platform))
        for sv in slices
    ]
    return SweepSpec.make(
        name, "Ablation", scenarios, assembler="slice_ablation",
        figure="Ablation",
        description=f"slice-size sweep, inter-node {batch}|{tables}")


def ablation_scheduling_sweep(grid: Sequence[Tuple[int, int]] = (
        (1024, 64), (2048, 64)),
        name: str = "ablation-scheduling",
        platform: PlatformLike = None) -> SweepSpec:
    scenarios = [
        scenario("embedding_fused", label=f"{sched} {batch}|{tables}",
                 global_batch=batch, tables_per_gpu=tables, scheduler=sched,
                 num_nodes=2, gpus_per_node=1,
                 platform=_platform_param(platform))
        for batch, tables in grid
        for sched in ("comm_aware", "oblivious")
    ]
    return SweepSpec.make(
        name, "Ablation", scenarios, assembler="sched_ablation",
        figure="Ablation", description="scheduling policy, end-to-end time")


def ablation_zero_copy_sweep(grid: Sequence[Tuple[int, int]] = (
        (1024, 64), (2048, 128)),
        name: str = "ablation-zero-copy",
        platform: PlatformLike = None) -> SweepSpec:
    scenarios = [
        scenario("embedding_a2a_pair",
                 label=f"{batch}|{tables} zc={'on' if zc else 'off'}",
                 global_batch=batch, tables_per_gpu=tables, zero_copy=zc,
                 num_nodes=1, gpus_per_node=4,
                 platform=_platform_param(platform),
                 baseline={"global_batch": batch, "tables_per_gpu": tables})
        for batch, tables in grid
        for zc in (True, False)
    ]
    return SweepSpec.make(
        name, "Ablation", scenarios, assembler="rows", figure="Ablation",
        description="zero-copy contribution (intra-node)")


def ablation_cpu_proxy_sweep(batch: int = 1024, tables: int = 64,
                             name: str = "ablation-cpu-proxy",
                             platform: PlatformLike = None) -> SweepSpec:
    scenarios = [
        scenario("embedding_fused",
                 label="cpu-proxy" if proxy else "gpu-initiated",
                 global_batch=batch, tables_per_gpu=tables, cpu_proxy=proxy,
                 num_nodes=2, gpus_per_node=1,
                 platform=_platform_param(platform))
        for proxy in (False, True)
    ]
    return SweepSpec.make(
        name, "Ablation", scenarios, assembler="proxy_ablation",
        figure="Ablation",
        description="GPU-initiated vs CPU-proxy networking")


def ext_embedding_backward_sweep(grid: Sequence[Tuple[int, int]] = (
        (256, 64), (1024, 64), (1024, 256), (4096, 64)),
        name: str = "ext-embedding-backward",
        platform: PlatformLike = None) -> SweepSpec:
    scenarios = [
        scenario("embedding_grad_pair", label=f"{batch}|{tables}",
                 global_batch=batch, tables_per_gpu=tables,
                 num_nodes=2, gpus_per_node=1,
                 platform=_platform_param(platform))
        for batch, tables in grid
    ]
    return SweepSpec.make(
        name, "Extension", scenarios, assembler="rows", figure="Extension",
        description="fused gradient A2A + scatter-add (inter-node)")


# ----------------------------------------------------------------------
# Cross-hardware sweeps: the platform catalog as a sweep axis.
# ----------------------------------------------------------------------

#: Catalog entries the cross-hardware sweeps grid over by default.
XHW_PLATFORMS: Tuple[str, ...] = ("mi210", "mi250x", "mi300x", "h100")

#: Default workload points per cross-hardware sweep (kept small: the
#: platform axis multiplies them).
XHW_EMB_GRID: Tuple[Tuple[int, int], ...] = ((1024, 64), (4096, 256))
XHW_GEMV_GRID: Tuple[Tuple[int, int], ...] = ((8192, 8192), (32768, 16384))
XHW_GEMM_GRID: Tuple[Tuple[int, int, int], ...] = (
    (2048, 4096, 8192), (8192, 4096, 14336))
XHW_NODE_COUNTS: Tuple[int, ...] = (16, 64)


def xhw_embedding_a2a_sweep(grid=XHW_EMB_GRID,
                            platforms: Sequence[PlatformLike] = XHW_PLATFORMS,
                            name: str = "xhw_embedding_a2a") -> SweepSpec:
    """Fused embedding+A2A (Fig. 8 operator) across hardware platforms."""
    scenarios = [
        scenario("embedding_a2a_pair",
                 label=f"{_platform_display(pp)} {batch}|{tables}",
                 global_batch=batch, tables_per_gpu=tables,
                 num_nodes=1, gpus_per_node=4, platform=pp)
        for pp in map(_platform_param, platforms)
        for batch, tables in grid
    ]
    return SweepSpec.make(
        name, "Cross-HW", scenarios, assembler="xhw",
        figure="Cross-HW embedding+A2A",
        description="fused vs baseline embedding+A2A across platforms")


def xhw_gemv_allreduce_sweep(grid=XHW_GEMV_GRID, world: int = 4,
                             platforms: Sequence[PlatformLike]
                             = XHW_PLATFORMS,
                             name: str = "xhw_gemv_allreduce") -> SweepSpec:
    """Fused GEMV+AllReduce (Fig. 9 operator) across hardware platforms."""
    scenarios = [
        scenario("gemv_allreduce_pair",
                 label=f"{_platform_display(pp)} "
                       f"{GemvAllReduceConfig(m=m, n_per_gpu=n // world, functional=False).label}",
                 m=m, n_per_gpu=n // world, world=world, platform=pp)
        for pp in map(_platform_param, platforms)
        for m, n in grid
    ]
    return SweepSpec.make(
        name, "Cross-HW", scenarios, assembler="xhw",
        figure="Cross-HW GEMV+AllReduce",
        description="fused vs baseline GEMV+AllReduce across platforms")


def xhw_gemm_a2a_sweep(grid=XHW_GEMM_GRID, world: int = 4,
                       platforms: Sequence[PlatformLike] = XHW_PLATFORMS,
                       name: str = "xhw_gemm_a2a") -> SweepSpec:
    """Fused GEMM+A2A (Fig. 10 operator) across hardware platforms."""
    scenarios = [
        scenario("gemm_a2a_pair",
                 label=f"{_platform_display(pp)} "
                       f"{tokens}x{model_dim}x{ffn}",
                 tokens=tokens, model_dim=model_dim, ffn_dim=ffn,
                 world=world, platform=pp)
        for pp in map(_platform_param, platforms)
        for tokens, model_dim, ffn in grid
    ]
    return SweepSpec.make(
        name, "Cross-HW", scenarios, assembler="xhw",
        figure="Cross-HW GEMM+All-to-All",
        description="fused vs baseline GEMM+A2A across platforms")


def xhw_scaleout_sweep(node_counts: Sequence[int] = XHW_NODE_COUNTS,
                       platforms: Sequence[PlatformLike] = XHW_PLATFORMS,
                       name: str = "xhw_scaleout") -> SweepSpec:
    """Scale-out DLRM training (Fig. 15 workload) across platforms."""
    scenarios = [
        scenario("dlrm_scaleout",
                 label=f"{_platform_display(pp)} {n} nodes",
                 num_nodes=n, platform=pp)
        for pp in map(_platform_param, platforms)
        for n in node_counts
    ]
    return SweepSpec.make(
        name, "Cross-HW", scenarios, assembler="xhw",
        figure="Cross-HW DLRM scale-out",
        description="fused vs baseline DLRM iteration across platforms")


def xhw_smoke_sweep(name: str = "xhw-smoke") -> SweepSpec:
    """Two-platform cross-hardware slice for CI cache-behaviour checks."""
    return xhw_gemv_allreduce_sweep(grid=((8192, 8192),),
                                    platforms=("mi210", "h100"), name=name)


# ----------------------------------------------------------------------
# Collective-algorithm sweeps: the schedule menu as a sweep axis.
# ----------------------------------------------------------------------

#: AllReduce schedules the algorithm sweeps grid over (single node, so
#: ``hier`` would just collapse onto ``direct`` — exercised by the
#: multi-node equivalence tests instead).
XALGO_ALLREDUCE: Tuple[str, ...] = ("direct", "ring", "tree")
#: All-to-All schedules on the 2x2 shape, where all three differ.
XALGO_ALLTOALL: Tuple[str, ...] = ("flat", "pairwise", "hier")
XALGO_GEMV_GRID: Tuple[Tuple[int, int], ...] = ((8192, 8192),
                                                (65536, 8192))
XALGO_EMB_GRID: Tuple[Tuple[int, int], ...] = ((1024, 64), (4096, 256))


def xalgo_allreduce_sweep(grid=XALGO_GEMV_GRID, world: int = 4,
                          algos: Sequence[str] = XALGO_ALLREDUCE,
                          platform: PlatformLike = None,
                          name: str = "xalgo_allreduce") -> SweepSpec:
    """GEMV+AllReduce (Fig. 9 operator) across baseline AllReduce
    schedules: the fused operator vs each :mod:`repro.collectives`
    algorithm's bulk collective."""
    scenarios = [
        scenario("gemv_allreduce_pair",
                 label=f"{algo} "
                       f"{GemvAllReduceConfig(m=m, n_per_gpu=n // world, functional=False).label}",
                 m=m, n_per_gpu=n // world, world=world,
                 platform=_platform_param(platform)).with_algo(algo)
        for algo in algos
        for m, n in grid
    ]
    return SweepSpec.make(
        name, "Algorithms", scenarios, assembler="xalgo",
        figure="Collective algorithms: AllReduce",
        description="fused GEMV+AllReduce vs per-schedule baselines")


def xalgo_alltoall_sweep(grid=XALGO_EMB_GRID, num_nodes: int = 2,
                         gpus_per_node: int = 2,
                         algos: Sequence[str] = XALGO_ALLTOALL,
                         platform: PlatformLike = None,
                         name: str = "xalgo_alltoall") -> SweepSpec:
    """Embedding+A2A (Fig. 8/12 operator) on a 2-node x 2-GPU cluster
    across baseline All-to-All schedules (the shape where flat, pairwise
    and hierarchical genuinely differ)."""
    scenarios = [
        scenario("embedding_a2a_pair", label=f"{algo} {batch}|{tables}",
                 global_batch=batch, tables_per_gpu=tables,
                 num_nodes=num_nodes, gpus_per_node=gpus_per_node,
                 platform=_platform_param(platform)).with_algo(algo)
        for algo in algos
        for batch, tables in grid
    ]
    return SweepSpec.make(
        name, "Algorithms", scenarios, assembler="xalgo",
        figure="Collective algorithms: All-to-All",
        description="fused embedding+A2A vs per-schedule baselines")


def xalgo_smoke_sweep(name: str = "xalgo-smoke") -> SweepSpec:
    """One workload x three AllReduce schedules for CI cache checks."""
    return xalgo_allreduce_sweep(grid=((8192, 8192),), name=name)


# ----------------------------------------------------------------------
# Design-space exploration: large analytic grids + Pareto frontiers.
# ----------------------------------------------------------------------

#: Platform axis of the design-space sweeps (the full catalog).
DSE_PLATFORMS: Tuple[str, ...] = ("mi210", "mi250x", "mi300x", "h100")
#: Workload axes: global batch x tables (message volume), slice size
#: (message granularity), occupancy split, and cluster topology.
DSE_BATCHES: Tuple[int, ...] = (256, 512, 1024, 2048, 4096, 8192)
DSE_TABLES: Tuple[int, ...] = (16, 64, 256)
DSE_SLICES: Tuple[int, ...] = (16, 32, 64)
DSE_OCCUPANCIES: Tuple[float, ...] = (0.25, 0.5, 0.75)
DSE_TOPOLOGIES: Tuple[Tuple[int, int], ...] = ((1, 4), (2, 1))
#: Baseline collective-schedule axis.  ``None`` is the legacy flat
#: schedule (keeping those scenarios' store keys identical to the
#: pre-algo grid); ``"pairwise"`` genuinely differs on both default
#: topologies.  Hierarchical schedules collapse to flat on 1-GPU or
#: 1-node shapes, so they live in ``xalgo_alltoall``'s 2x2 sweep.
DSE_ALGOS: Tuple[Optional[str], ...] = (None, "pairwise")


def dse_fused_frontier_sweep(name: str = "dse_fused_frontier",
                             platforms: Sequence[PlatformLike]
                             = DSE_PLATFORMS,
                             batches: Sequence[int] = DSE_BATCHES,
                             tables: Sequence[int] = DSE_TABLES,
                             slices: Sequence[int] = DSE_SLICES,
                             occupancies: Sequence[float] = DSE_OCCUPANCIES,
                             topologies: Sequence[Tuple[int, int]]
                             = DSE_TOPOLOGIES,
                             algos: Sequence[Optional[str]] = DSE_ALGOS,
                             backend: str = "analytic") -> SweepSpec:
    """Fused embedding+A2A design space: platform x batch x tables x
    slice size x occupancy split x topology x collective schedule,
    Pareto-assembled.

    The default grid is ~2,600 scenarios — minutes-per-point under the
    DES, a handful of seconds end to end under the analytic backend.
    """
    scenarios = []
    for pp in map(_platform_param, platforms):
        pname = _platform_display(pp)
        for num_nodes, gpus_per_node in topologies:
            for batch in batches:
                for tb in tables:
                    for sv in slices:
                        for occ in occupancies:
                            for algo in algos:
                                suffix = f" {algo}" if algo else ""
                                s = scenario(
                                    "embedding_a2a_pair",
                                    label=(f"{pname} "
                                           f"{num_nodes}x{gpus_per_node}"
                                           f" {batch}|{tb} sv{sv} occ{occ}"
                                           f"{suffix}"),
                                    global_batch=batch, tables_per_gpu=tb,
                                    slice_vectors=sv,
                                    occupancy_of_baseline=occ,
                                    num_nodes=num_nodes,
                                    gpus_per_node=gpus_per_node, platform=pp)
                                scenarios.append(
                                    s.with_backend(backend).with_algo(algo))
    return SweepSpec.make(
        name, "DSE", scenarios, assembler="dse_frontier", figure="DSE",
        description="fused embedding+A2A design-space frontier "
                    "(latency vs speedup)")


def dse_smoke_sweep(name: str = "dse-smoke") -> SweepSpec:
    """Small analytic slice for CI cache-behaviour checks (8 scenarios)."""
    return dse_fused_frontier_sweep(
        name=name, platforms=("mi210", "h100"), batches=(512, 2048),
        tables=(64,), slices=(32,), occupancies=(0.25, 0.75),
        topologies=((2, 1),))


def trace_smoke_sweep(name: str = "trace-smoke") -> SweepSpec:
    """One tiny pinned traced scenario for the CI golden-trace byte-compare.

    The parameters are frozen: the exported Chrome trace is committed as a
    golden file and compared byte-for-byte, so any change here (or any
    nondeterminism in the simulator/exporter) fails the gate.
    """
    scenarios = [
        scenario("wg_timeline", label="trace 64|4", batch=64, tables=4,
                 wgs_per_slice=8, timeline_width=60,
                 platform=_platform_param(None)),
    ]
    return SweepSpec.make(
        name, "Trace smoke", scenarios, assembler="rows", figure="Trace",
        description="pinned traced scenario for the golden Chrome-trace "
                    "export check")


def smoke_sweep(name: str = "smoke") -> SweepSpec:
    """Small, fast sweep for CI cache-behaviour checks (~2 s serial)."""
    plat = _platform_param(None)
    scenarios = [
        scenario("gemv_allreduce_pair", label="8k|2k",
                 m=8192, n_per_gpu=2048, world=4, platform=plat),
        scenario("embedding_a2a_pair", label="256|16",
                 global_batch=256, tables_per_gpu=16,
                 num_nodes=2, gpus_per_node=1, platform=plat),
        scenario("dlrm_scaleout", label="16 nodes", num_nodes=16,
                 platform=plat),
    ]
    return SweepSpec.make(
        name, "Smoke", scenarios, assembler="rows", figure="Smoke",
        description="CI smoke sweep (mixed runners, small configs)")


#: The paper-default registrations, in ``python -m repro list`` order.
ALL_SWEEPS: Tuple[SweepSpec, ...] = tuple(register_sweep(s) for s in (
    table1_sweep(),
    table2_sweep(),
    fig8_sweep(),
    fig9_sweep(),
    fig10_sweep(),
    fig11_sweep(),
    fig12_sweep(),
    fig13_sweep(),
    fig14_sweep(),
    fig15_sweep(),
    ablation_slice_size_sweep(),
    ablation_scheduling_sweep(),
    ablation_zero_copy_sweep(),
    ablation_cpu_proxy_sweep(),
    ext_embedding_backward_sweep(),
    xhw_embedding_a2a_sweep(),
    xhw_gemv_allreduce_sweep(),
    xhw_gemm_a2a_sweep(),
    xhw_scaleout_sweep(),
    xhw_smoke_sweep(),
    xalgo_allreduce_sweep(),
    xalgo_alltoall_sweep(),
    xalgo_smoke_sweep(),
    dse_fused_frontier_sweep(),
    dse_smoke_sweep(),
    smoke_sweep(),
    trace_smoke_sweep(),
))
