"""Declarative experiment specs: scenarios, sweeps, and parameter grids.

A :class:`ScenarioSpec` names a registered runner plus a JSON-able
parameter mapping; a :class:`SweepSpec` is an ordered collection of
scenarios plus the name of an assembler that turns their results into a
:class:`~repro.bench.harness.FigureResult`.  Both are frozen, hashable,
and serialize canonically, so a scenario's content hash (:meth:`key`) is
stable across processes and machines — the foundation of the
content-addressed result store.

Parameters are stored internally as a canonical JSON string (sorted keys,
no whitespace): that keeps the dataclass hashable, forces every parameter
to be JSON-representable (which the store needs anyway), and makes
equality independent of dict insertion order.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from itertools import product
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "SCHEMA_VERSION",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "ScenarioSpec",
    "SweepSpec",
    "canonical_json",
    "grid_params",
    "zip_params",
    "scenario",
    "sweep_with_backend",
    "sweep_with_algo",
]

#: Version of the scenario/record schema.  Bump whenever a change to the
#: simulation code or the spec layout invalidates previously cached
#: results; every cached key changes with it.  v2: scenario params carry a
#: canonical ``platform`` field (the hardware catalog axis).
SCHEMA_VERSION = 2

#: Evaluation engines a scenario can run under.  ``"sim"`` is the
#: discrete-event simulator; ``"analytic"`` the closed-form backend
#: (:mod:`repro.analytic`).  The backend travels as an ordinary scenario
#: parameter — and is therefore hashed into the store key — but the
#: default is *represented by absence*: a scenario with no ``backend``
#: parameter is a DES scenario with exactly the key it had before the
#: analytic backend existed, so default-path cached results and reports
#: stay byte-identical.
BACKENDS = ("sim", "analytic")
DEFAULT_BACKEND = "sim"


def canonical_json(value: Any) -> str:
    """Canonical (sorted-key, compact) JSON encoding of ``value``."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _check_jsonable(params: Mapping[str, Any], where: str) -> None:
    try:
        canonical_json(dict(params))
    except (TypeError, ValueError) as exc:
        raise TypeError(
            f"{where} parameters must be JSON-representable: {exc}") from exc


@dataclass(frozen=True, order=True)
class ScenarioSpec:
    """One unit of work: a registered runner + its parameters.

    The optional ``backend`` parameter selects the evaluation engine
    (DES or analytic, see :data:`BACKENDS`); everything else describes
    the workload itself.
    """

    runner: str                 #: name in :data:`repro.experiments.registry.RUNNERS`
    params_json: str = "{}"     #: canonical JSON of the parameter mapping
    label: str = ""             #: display label (excluded from the key)

    @classmethod
    def make(cls, runner: str, label: str = "", **params: Any) -> "ScenarioSpec":
        _check_jsonable(params, f"scenario {runner!r}")
        return cls(runner=runner, params_json=canonical_json(params),
                   label=label)

    @property
    def params(self) -> Dict[str, Any]:
        return json.loads(self.params_json)

    def with_params(self, **overrides: Any) -> "ScenarioSpec":
        merged = self.params
        merged.update(overrides)
        _check_jsonable(merged, f"scenario {self.runner!r}")
        return replace(self, params_json=canonical_json(merged))

    def with_backend(self, backend: str) -> "ScenarioSpec":
        """Copy pinned to an evaluation engine (see :data:`BACKENDS`).

        Selecting :data:`DEFAULT_BACKEND` *removes* the parameter, so the
        round trip through any backend lands back on the original spec —
        and the original store key.
        """
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; choose from {BACKENDS}")
        params = self.params
        if backend == DEFAULT_BACKEND:
            params.pop("backend", None)
        else:
            params["backend"] = backend
        return replace(self, params_json=canonical_json(params))

    @property
    def backend(self) -> str:
        return self.params.get("backend", DEFAULT_BACKEND)

    def with_algo(self, algo: Optional[str]) -> "ScenarioSpec":
        """Copy pinned to a collective-algorithm schedule.

        ``algo`` is a :mod:`repro.collectives` name (or ``"auto"``);
        ``None`` — the default schedule — *removes* the parameter, so
        specs that never touched the algo axis keep exactly the store
        keys they had before it existed (the ``backend`` pattern).
        Names are validated by the runner (via the workload config)
        before anything executes or caches.
        """
        params = self.params
        if algo is None:
            params.pop("algo", None)
        else:
            params["algo"] = algo
        return replace(self, params_json=canonical_json(params))

    @property
    def algo(self) -> Optional[str]:
        return self.params.get("algo")

    def key(self) -> str:
        """Stable content hash of (schema version, runner, params).

        The label is display-only and deliberately excluded: renaming a
        scenario must not invalidate its cached result.
        """
        record = canonical_json({
            "schema": SCHEMA_VERSION,
            "runner": self.runner,
            "params": self.params,
        })
        return hashlib.sha256(record.encode("utf-8")).hexdigest()

    def stable_seed(self) -> int:
        """Deterministic per-scenario seed derived from the content hash.

        Identical across processes and runs; distinct scenarios get
        distinct seeds with overwhelming probability.  Runners that take a
        second positional argument receive this value.
        """
        return int(self.key()[:16], 16)


def scenario(runner: str, label: str = "", **params: Any) -> ScenarioSpec:
    """Shorthand for :meth:`ScenarioSpec.make`."""
    return ScenarioSpec.make(runner, label=label, **params)


@dataclass(frozen=True)
class SweepSpec:
    """A named, ordered collection of scenarios plus result assembly."""

    name: str
    title: str
    scenarios: Tuple[ScenarioSpec, ...] = ()
    assembler: str = "rows"         #: name in ``registry.ASSEMBLERS``
    assembler_params_json: str = "{}"
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenarios", tuple(self.scenarios))

    @classmethod
    def make(cls, name: str, title: str, scenarios, assembler: str = "rows",
             description: str = "", **assembler_params: Any) -> "SweepSpec":
        _check_jsonable(assembler_params, f"sweep {name!r} assembler")
        return cls(name=name, title=title, scenarios=tuple(scenarios),
                   assembler=assembler, description=description,
                   assembler_params_json=canonical_json(assembler_params))

    @property
    def assembler_params(self) -> Dict[str, Any]:
        return json.loads(self.assembler_params_json)

    def key(self) -> str:
        """Content hash of the whole sweep (scenario keys + assembly)."""
        record = canonical_json({
            "schema": SCHEMA_VERSION,
            "name": self.name,
            "assembler": self.assembler,
            "assembler_params": self.assembler_params,
            "scenarios": [s.key() for s in self.scenarios],
        })
        return hashlib.sha256(record.encode("utf-8")).hexdigest()

    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self) -> Iterator[ScenarioSpec]:
        return iter(self.scenarios)


def sweep_with_backend(sweep: "SweepSpec", backend: str) -> "SweepSpec":
    """The same sweep with every scenario pinned to ``backend``.

    Works on *any* sweep — registered or ad hoc — because every scenario
    runner dispatches on the ``backend`` parameter.  Choosing
    :data:`DEFAULT_BACKEND` strips the parameter, recovering the original
    sweep (and its cached results) exactly.
    """
    return replace(sweep, scenarios=tuple(s.with_backend(backend)
                                          for s in sweep.scenarios))


def sweep_with_algo(sweep: "SweepSpec", algo: Optional[str]) -> "SweepSpec":
    """The same sweep with every scenario pinned to collective schedule
    ``algo`` (``None`` strips the parameter, recovering the original
    sweep — and its cached results — exactly)."""
    return replace(sweep, scenarios=tuple(s.with_algo(algo)
                                          for s in sweep.scenarios))


def grid_params(**axes: Any) -> List[Dict[str, Any]]:
    """Cartesian product of parameter axes, in the given axis order.

    >>> grid_params(batch=(1, 2), tables=(64,))
    [{'batch': 1, 'tables': 64}, {'batch': 2, 'tables': 64}]

    Scalar (non-list/tuple) axis values are broadcast as constants.
    """
    names = list(axes)
    values = [v if isinstance(v, (list, tuple)) else (v,)
              for v in axes.values()]
    return [dict(zip(names, combo)) for combo in product(*values)]


def zip_params(**axes: Any) -> List[Dict[str, Any]]:
    """Zip parameter axes positionally (all must have equal length).

    >>> zip_params(batch=(512, 1024), tables=(64, 256))
    [{'batch': 512, 'tables': 64}, {'batch': 1024, 'tables': 256}]
    """
    names = list(axes)
    values = [list(v) for v in axes.values()]
    lengths = {len(v) for v in values}
    if len(lengths) > 1:
        raise ValueError(
            f"zip_params axes must have equal lengths, got "
            f"{ {n: len(v) for n, v in zip(names, values)} }")
    return [dict(zip(names, combo)) for combo in zip(*values)]
