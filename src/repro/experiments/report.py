"""Diffable sweep reports and baseline comparison (regression detection).

A sweep report is a deterministic JSON document: schema header, the sweep
identity, one entry per scenario (spec, content key, result payload), and
the assembled figure's JSON export.  It deliberately contains **no**
volatile data — no timestamps, wall-clock times, host names, or
cache-hit flags — so two runs that simulate the same physics produce
byte-identical files, and ``diff``/``git diff`` on stored reports reads
as pure signal.

:func:`diff_reports` is the baseline-comparison API: match scenarios by
label, compare every numeric leaf with a relative tolerance, and report
added/removed scenarios and changed metrics.  CI uses it to fail on
simulation regressions against a committed golden report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Union

__all__ = ["REPORT_SCHEMA", "MetricChange", "ReportDiff", "build_report",
           "report_json", "render_report", "diff_reports",
           "load_report", "compare_to_baseline"]

REPORT_SCHEMA = "repro.experiments.report/v1"


def build_report(run) -> Dict[str, Any]:
    """Deterministic JSON-able report for a completed :class:`SweepRun`."""
    figure = run.figure()
    return {
        "schema": REPORT_SCHEMA,
        "sweep": run.sweep.name,
        "title": run.sweep.title,
        "description": run.sweep.description,
        "sweep_key": run.sweep.key(),
        "scenarios": [
            {
                "label": o.spec.label,
                "runner": o.spec.runner,
                "key": o.key,
                "params": o.spec.params,
                "result": o.result,
            }
            for o in run.outcomes
        ],
        "figure": figure.to_json_dict(),
    }


def report_json(report: Dict[str, Any]) -> str:
    """Stable serialization (sorted keys, trailing newline)."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering: the assembled figure's table."""
    from ..bench.harness import FigureResult
    return FigureResult.from_json_dict(report["figure"]).render()


def load_report(path: Union[str, Path]) -> Dict[str, Any]:
    with open(path, encoding="utf-8") as f:
        report = json.load(f)
    if not isinstance(report, dict) or report.get("schema") != REPORT_SCHEMA:
        raise ValueError(f"{path}: not a sweep report "
                         f"(expected schema {REPORT_SCHEMA!r})")
    return report


@dataclass(frozen=True)
class MetricChange:
    """One numeric leaf that moved between two reports."""

    label: str          #: scenario label
    metric: str         #: dotted path inside the result payload
    old: float
    new: float

    @property
    def rel_delta(self) -> float:
        if self.old == 0:
            return float("inf") if self.new else 0.0
        return (self.new - self.old) / abs(self.old)

    def __str__(self) -> str:
        return (f"{self.label}: {self.metric} {self.old!r} -> {self.new!r} "
                f"({100 * self.rel_delta:+.2f}%)")


@dataclass
class ReportDiff:
    """Outcome of comparing a sweep report against a baseline."""

    sweep: str
    added: List[str] = field(default_factory=list)     #: labels only in new
    removed: List[str] = field(default_factory=list)   #: labels only in old
    changed: List[MetricChange] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (self.added or self.removed or self.changed)

    def render(self) -> str:
        if self.ok:
            return f"{self.sweep}: reports match"
        lines = [f"{self.sweep}: reports differ"]
        lines += [f"  + {label} (only in new)" for label in self.added]
        lines += [f"  - {label} (only in old)" for label in self.removed]
        lines += [f"  ~ {change}" for change in self.changed]
        return "\n".join(lines)


def _numeric_leaves(value: Any, prefix: str = "") -> Dict[str, float]:
    """Flatten a JSON payload to its numeric leaves, dotted-path keyed."""
    out: Dict[str, float] = {}
    if isinstance(value, bool):
        return out
    if isinstance(value, (int, float)):
        out[prefix or "value"] = float(value)
    elif isinstance(value, dict):
        for k in sorted(value):
            out.update(_numeric_leaves(value[k], f"{prefix}.{k}" if prefix
                                       else str(k)))
    elif isinstance(value, list):
        for i, v in enumerate(value):
            out.update(_numeric_leaves(v, f"{prefix}[{i}]"))
    return out


def _by_label(report: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    out: Dict[str, Dict[str, Any]] = {}
    for i, entry in enumerate(report["scenarios"]):
        label = entry.get("label") or f"#{i}"
        if label in out:            # disambiguate duplicate labels by order
            label = f"{label}#{i}"
        out[label] = entry
    return out


def diff_reports(old: Dict[str, Any], new: Dict[str, Any],
                 rtol: float = 0.0) -> ReportDiff:
    """Compare two sweep reports; numeric leaves within ``rtol`` match.

    Scenarios are matched by label (stable under code-schema bumps that
    would change every content key).  ``rtol`` is the allowed relative
    deviation per numeric metric — 0.0 demands exact equality, which is
    the right default for this deterministic simulator.
    """
    diff = ReportDiff(sweep=new.get("sweep", "?"))
    old_by, new_by = _by_label(old), _by_label(new)
    diff.added = sorted(set(new_by) - set(old_by))
    diff.removed = sorted(set(old_by) - set(new_by))
    for label in (label for label in new_by if label in old_by):
        old_leaves = _numeric_leaves(old_by[label]["result"])
        new_leaves = _numeric_leaves(new_by[label]["result"])
        for metric in sorted(set(old_leaves) | set(new_leaves)):
            a = old_leaves.get(metric)
            b = new_leaves.get(metric)
            if a is None or b is None:
                diff.changed.append(MetricChange(
                    label, metric,
                    float("nan") if a is None else a,
                    float("nan") if b is None else b))
                continue
            tol = rtol * abs(a)
            if abs(b - a) > tol:
                diff.changed.append(MetricChange(label, metric, a, b))
    return diff


def compare_to_baseline(run_or_report, baseline: Union[str, Path, Dict],
                        rtol: float = 0.0) -> ReportDiff:
    """Diff a run (or report) against a stored baseline report file."""
    if not isinstance(baseline, dict):
        baseline = load_report(baseline)
    report = (run_or_report if isinstance(run_or_report, dict)
              else run_or_report.report())
    return diff_reports(baseline, report, rtol=rtol)
