"""Experiment orchestration: declarative sweeps, parallel sharded
execution, and a content-addressed result store.

The subsystem has four layers:

* **specs** — frozen, hashable scenario/sweep descriptions with parameter
  grid helpers (:func:`grid_params`, :func:`zip_params`) and stable
  content hashes;
* **runner** — cache-aware execution, sharding uncached scenarios across
  spawn-safe worker processes with a serial fallback;
* **store** — ``.repro-cache/`` JSON records keyed by spec hash, so no
  scenario is ever simulated twice, plus diffable sweep reports and a
  baseline-comparison API (:func:`diff_reports`);
* **cli** — ``python -m repro`` with ``list`` / ``run`` / ``report`` /
  ``diff`` / ``validate`` / ``cache stats`` subcommands.

Every scenario runs under either of two engines — the discrete-event
simulator (default) or the closed-form analytic backend
(:mod:`repro.analytic`), selected per scenario by the ``backend``
parameter (hashed into the store key; absent for the default path, so
pre-existing records stay addressable).

All of the paper's figures/tables, the ablations, and the analytic
design-space grids are registered as sweeps (see
:mod:`repro.experiments.figures`); :func:`regenerate` is the one-call
bridge used by the benchmark suite.
"""

from __future__ import annotations

import os
from typing import Optional

from .registry import (
    assembler,
    ensure_registered,
    get_sweep,
    list_sweeps,
    register_sweep,
    runner,
)
from .report import (
    build_report,
    compare_to_baseline,
    diff_reports,
    load_report,
    render_report,
    report_json,
)
from .execution import (
    ScenarioOutcome,
    SweepRun,
    batch_enabled,
    default_workers,
    run_scenario,
    run_sweep,
)
from .mega import (
    MegaRun,
    MegaSweepSpec,
    get_mega,
    list_megas,
    register_mega,
    run_mega,
)
from .specs import (
    BACKENDS,
    DEFAULT_BACKEND,
    SCHEMA_VERSION,
    ScenarioSpec,
    SweepSpec,
    grid_params,
    scenario,
    sweep_with_backend,
    zip_params,
)
from .store import DEFAULT_CACHE_DIR, ResultStore

__all__ = [
    "SCHEMA_VERSION",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "DEFAULT_CACHE_DIR",
    "sweep_with_backend",
    "ScenarioSpec",
    "SweepSpec",
    "ScenarioOutcome",
    "SweepRun",
    "ResultStore",
    "scenario",
    "grid_params",
    "zip_params",
    "runner",
    "assembler",
    "register_sweep",
    "get_sweep",
    "list_sweeps",
    "ensure_registered",
    "run_scenario",
    "run_sweep",
    "batch_enabled",
    "default_workers",
    "MegaRun",
    "MegaSweepSpec",
    "register_mega",
    "get_mega",
    "list_megas",
    "run_mega",
    "build_report",
    "report_json",
    "render_report",
    "load_report",
    "diff_reports",
    "compare_to_baseline",
    "regenerate",
]


def regenerate(name: str, workers: Optional[int] = None,
               store: Optional[ResultStore] = None):
    """Run the registered sweep ``name``; return its ``FigureResult``.

    This is the benchmark suite's path into the orchestrator.  Caching is
    off unless ``store`` is given or ``REPRO_CACHE_DIR`` is set (tests
    must measure fresh simulations by default; opt in to reuse); worker
    count comes from ``REPRO_WORKERS`` unless given.
    """
    if store is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR")
        if cache_dir:
            store = ResultStore(cache_dir)
    if workers is None:
        workers = default_workers()
    return run_sweep(get_sweep(name), store=store, workers=workers).figure()
