"""Content-addressed result store: ``.repro-cache/`` JSON records.

Every scenario's record lives at ``<root>/<key[:2]>/<key>.json`` where
``key`` is the scenario's content hash (spec + schema version, see
:meth:`ScenarioSpec.key`).  Records are plain JSON so they are diffable,
greppable, and safe to commit as golden baselines; writes are atomic
(tmp file + rename) so parallel workers and concurrent CI jobs never
observe a torn record.

The same store holds sweep-level records (assembled
:class:`~repro.bench.harness.FigureResult` payloads keyed by the sweep's
content hash), so a fully cached ``report`` never re-runs assembly inputs.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Union

from ..obs.metrics import get_metrics
from .specs import ScenarioSpec, SweepSpec

__all__ = ["RECORD_SCHEMA", "DEFAULT_CACHE_DIR", "ResultStore"]

RECORD_SCHEMA = "repro.experiments.record/v1"
DEFAULT_CACHE_DIR = ".repro-cache"


class ResultStore:
    """A directory of content-addressed scenario/sweep result records."""

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR):
        self.root = Path(root)

    # -- paths ---------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # -- scenario records ----------------------------------------------

    def get(self, spec: ScenarioSpec) -> Optional[Dict[str, Any]]:
        """Cached result payload for ``spec``, or ``None`` on a miss.

        Unreadable or schema-mismatched records count as misses (the
        scenario simply re-runs and overwrites them).
        """
        record = self._read(spec.key())
        if record is None or record.get("runner") != spec.runner:
            return None
        return record.get("result")

    def put(self, spec: ScenarioSpec, result: Mapping[str, Any]
            ) -> Dict[str, Any]:
        """Store ``result`` for ``spec``; returns the full record."""
        record = {
            "schema": RECORD_SCHEMA,
            "key": spec.key(),
            "runner": spec.runner,
            "label": spec.label,
            "params": spec.params,
            "result": dict(result),
        }
        self._write(spec.key(), record)
        return record

    # -- sweep records (assembled FigureResult payloads) ---------------

    def get_sweep(self, sweep: SweepSpec) -> Optional[Dict[str, Any]]:
        """Cached assembled-figure payload for ``sweep``, if any."""
        record = self._read(sweep.key())
        if record is None or record.get("sweep") != sweep.name:
            return None
        return record.get("figure")

    def put_sweep(self, sweep: SweepSpec, figure_payload: Mapping[str, Any]
                  ) -> Dict[str, Any]:
        """Store a sweep's assembled figure (JSON export) as its record."""
        record = {
            "schema": RECORD_SCHEMA,
            "key": sweep.key(),
            "sweep": sweep.name,
            "figure": dict(figure_payload),
        }
        self._write(sweep.key(), record)
        return record

    # -- bulk ----------------------------------------------------------

    def keys(self) -> Iterator[str]:
        if not self.root.is_dir():
            return
        for sub in sorted(self.root.iterdir()):
            if not sub.is_dir():
                continue
            for path in sorted(sub.glob("*.json")):
                yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Delete every record; returns the number removed."""
        removed = 0
        for key in list(self.keys()):
            self.path_for(key).unlink(missing_ok=True)
            removed += 1
        return removed

    # -- plumbing ------------------------------------------------------

    def _read(self, key: str) -> Optional[Dict[str, Any]]:
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as f:
                text = f.read()
            record = json.loads(text)
        except (OSError, ValueError):
            return None
        m = get_metrics()
        if m.enabled:
            m.inc("store.reads")
            m.inc("store.read_bytes", len(text.encode("utf-8")))
        if not isinstance(record, dict) or record.get("schema") != RECORD_SCHEMA:
            return None
        if record.get("key") != key:
            return None
        return record

    def _write(self, key: str, record: Mapping[str, Any]) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Serialized up front (byte-identical to streaming json.dump) so the
        # write can be metered without a second encode.
        text = json.dumps(record, indent=2, sort_keys=True) + "\n"
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                f.write(text)
            os.replace(tmp, path)
            m = get_metrics()
            if m.enabled:
                m.inc("store.writes")
                m.inc("store.write_bytes", len(text.encode("utf-8")))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
