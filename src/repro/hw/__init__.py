"""Hardware models: GPUs, HBM, fabric links, NICs, clusters."""

from .fabric import Fabric
from .gpu import Gpu, KernelResources, OccupancyInfo, WgCost
from .memory import HbmModel
from .network import Network
from .nic import Nic
from .specs import (
    IB_NIC,
    IF_LINK,
    MI210,
    ClusterSpec,
    GpuSpec,
    LinkSpec,
    NicSpec,
    NodeSpec,
    mi210_node_spec,
    two_node_cluster_spec,
)
from .topology import Cluster, Node, build_cluster, build_node, from_cluster_spec

__all__ = [
    "Cluster",
    "ClusterSpec",
    "Fabric",
    "Gpu",
    "GpuSpec",
    "HbmModel",
    "IB_NIC",
    "IF_LINK",
    "KernelResources",
    "LinkSpec",
    "MI210",
    "Network",
    "Nic",
    "NicSpec",
    "Node",
    "NodeSpec",
    "OccupancyInfo",
    "WgCost",
    "build_cluster",
    "build_node",
    "from_cluster_spec",
    "mi210_node_spec",
    "two_node_cluster_spec",
]
