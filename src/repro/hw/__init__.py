"""Hardware models: GPUs, HBM, fabric, NICs, clusters, and the pluggable
platform catalog (:mod:`repro.hw.platform`)."""

from .fabric import Fabric
from .gpu import Gpu, KernelResources, OccupancyInfo, WgCost, occupancy_for
from .memory import HbmModel
from .network import Network
from .nic import Nic
from .platform import (
    CATALOG,
    DEFAULT_PLATFORM,
    Platform,
    derived_baseline_resources,
    derived_fused_resources,
    generic,
    get_platform,
    list_platforms,
    register_platform,
)
from .specs import (
    IB_NIC,
    IF_LINK,
    MI210,
    ClusterSpec,
    GpuSpec,
    LinkSpec,
    NicSpec,
    NodeSpec,
    mi210_node_spec,
    two_node_cluster_spec,
)
from .topology import Cluster, Node, build_cluster, build_node, from_cluster_spec

__all__ = [
    "CATALOG",
    "Cluster",
    "ClusterSpec",
    "DEFAULT_PLATFORM",
    "Fabric",
    "Gpu",
    "GpuSpec",
    "HbmModel",
    "IB_NIC",
    "IF_LINK",
    "KernelResources",
    "LinkSpec",
    "MI210",
    "Network",
    "Nic",
    "NicSpec",
    "Node",
    "NodeSpec",
    "OccupancyInfo",
    "Platform",
    "WgCost",
    "build_cluster",
    "build_node",
    "derived_baseline_resources",
    "derived_fused_resources",
    "from_cluster_spec",
    "generic",
    "get_platform",
    "list_platforms",
    "mi210_node_spec",
    "occupancy_for",
    "register_platform",
    "two_node_cluster_spec",
]
