"""GPU device model: occupancy, workgroup timing, and peer stores.

The model is deliberately at the granularity the paper operates at — the
workgroup (WG).  A kernel is a set of logical WGs, each described by a
:class:`WgCost` (FLOPs + HBM bytes).  A WG's duration follows a roofline:
``max(flop_time, mem_time)``, where the memory side uses the
occupancy-dependent achievable bandwidth of :class:`~repro.hw.memory.HbmModel`
shared equally among resident WGs, and the compute side shares CU ALUs.

Occupancy itself is computed from kernel resource usage (registers / LDS /
wave slots) with the same allocation rules real GCN/CDNA hardware uses —
this is how the fused kernels "pay" the paper's reported 12.5% occupancy
loss for their extra communication registers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..sim import NULL_TRACE, Simulator, TraceRecorder
from .memory import HbmModel
from .specs import GpuSpec

__all__ = ["WgCost", "KernelResources", "OccupancyInfo", "Gpu",
           "occupancy_for"]


@dataclass(frozen=True)
class WgCost:
    """Work performed by one logical workgroup.

    Attributes:
        flops: floating-point operations executed.
        bytes: HBM traffic (reads + writes) in bytes.
        dtype: datatype for the FLOP rate ("fp32" or "fp16").
        fixed: additional fixed time (API calls, bookkeeping), seconds.
        access: HBM access pattern — "stream" for coalesced sequential
            traffic (GEMM/GEMV/copies), "gather" for data-dependent lookups
            (embedding pooling).  Gather traffic pays the high-occupancy
            contention knee (row-buffer/TLB thrashing); streams do not.
    """

    flops: float = 0.0
    bytes: float = 0.0
    dtype: str = "fp32"
    fixed: float = 0.0
    access: str = "stream"

    def __post_init__(self):
        if self.flops < 0 or self.bytes < 0 or self.fixed < 0:
            raise ValueError("WgCost components must be non-negative")
        if self.access not in ("stream", "gather"):
            raise ValueError(f"unknown access pattern {self.access!r}")

    def plus(self, flops: float = 0.0, bytes: float = 0.0,
             fixed: float = 0.0) -> "WgCost":
        return WgCost(self.flops + flops, self.bytes + bytes,
                      self.dtype, self.fixed + fixed, self.access)

    def with_bytes(self, bytes: float) -> "WgCost":
        return WgCost(self.flops, bytes, self.dtype, self.fixed, self.access)


@dataclass(frozen=True)
class KernelResources:
    """Per-WG resource usage that determines occupancy."""

    threads_per_wg: int = 256
    vgprs_per_thread: int = 64
    lds_per_wg: int = 0

    def __post_init__(self):
        if self.threads_per_wg < 1:
            raise ValueError("threads_per_wg must be >= 1")
        if self.vgprs_per_thread < 1:
            raise ValueError("vgprs_per_thread must be >= 1")
        if self.lds_per_wg < 0:
            raise ValueError("lds_per_wg must be >= 0")


@dataclass(frozen=True)
class OccupancyInfo:
    """Result of the occupancy calculation for a kernel on a device."""

    waves_per_wg: int
    wgs_per_cu: int
    resident_wgs: int       #: device-wide resident workgroups
    fraction: float         #: resident waves / device wave slots

    def limited_to(self, max_resident: int) -> "OccupancyInfo":
        """Clamp resident WGs (persistent kernels choose their grid size)."""
        if max_resident < 1:
            raise ValueError("max_resident must be >= 1")
        if max_resident >= self.resident_wgs:
            return self
        wgs_per_cu = max(1, self.wgs_per_cu * max_resident // self.resident_wgs)
        frac = self.fraction * max_resident / self.resident_wgs
        return OccupancyInfo(self.waves_per_wg, wgs_per_cu,
                             max_resident, frac)


def occupancy_for(spec: GpuSpec, res: KernelResources) -> OccupancyInfo:
    """Hardware allocation rules applied to kernel resource usage.

    Pure function of two frozen dataclasses; :meth:`Gpu.occupancy` is the
    memoized per-device view of it.
    """
    s = spec
    waves_per_wg = math.ceil(res.threads_per_wg / s.wave_size)
    vgpr_alloc = math.ceil(res.vgprs_per_thread / s.vgpr_granule) * s.vgpr_granule
    waves_per_simd = min(s.max_waves_per_simd, s.vgprs_per_simd // vgpr_alloc)
    if waves_per_simd < 1:
        raise ValueError(
            f"kernel uses {res.vgprs_per_thread} VGPRs/thread; cannot fit "
            f"a single wave on {s.name}")
    waves_per_cu = waves_per_simd * s.simds_per_cu
    wgs_per_cu = waves_per_cu // waves_per_wg
    if res.lds_per_wg > 0:
        wgs_per_cu = min(wgs_per_cu, s.lds_per_cu // res.lds_per_wg)
    wgs_per_cu = min(wgs_per_cu, s.max_wgs_per_cu)
    if wgs_per_cu < 1:
        raise ValueError("kernel resources exceed a single CU")
    resident = wgs_per_cu * s.num_cus
    fraction = (wgs_per_cu * waves_per_wg) / s.max_waves_per_cu
    return OccupancyInfo(waves_per_wg, wgs_per_cu, resident, fraction)


class Gpu:
    """One simulated GPU.

    Fabric ports and the NIC are attached by :mod:`repro.hw.topology`.
    """

    def __init__(self, sim: Simulator, spec: GpuSpec, gpu_id: int,
                 node_id: int = 0, local_id: int = 0,
                 trace: Optional[TraceRecorder] = None):
        self.sim = sim
        self.gpu_id = gpu_id
        self.node_id = node_id
        self.local_id = local_id
        self.trace = trace if trace is not None else NULL_TRACE
        self.fabric = None   # set by topology: repro.hw.fabric.Fabric
        self.nic = None      # set by topology: repro.hw.nic.Nic
        self.spec = spec     # property: also builds the HBM model + caches

    @property
    def spec(self) -> GpuSpec:
        return self._spec

    @spec.setter
    def spec(self, spec: GpuSpec) -> None:
        """Swap the device spec (ablations), dropping every derived cache.

        The occupancy/duration memos and the HBM model are functions of the
        spec's *content*; rebuilding them here guarantees an overridden or
        replaced spec can never read another spec's cached entries.
        """
        self._spec = spec
        self.hbm = HbmModel(spec)
        # Kernels ask for the same handful of (resources, cost, occupancy)
        # combinations thousands of times per launch; both calculations are
        # pure functions of frozen dataclasses, so memoize per device.
        self._occupancy_cache: dict = {}
        self._duration_cache: dict = {}

    def __repr__(self) -> str:
        return f"<Gpu {self.gpu_id} ({self.spec.name}) node={self.node_id}>"

    @property
    def name(self) -> str:
        return f"gpu{self.gpu_id}"

    # -- occupancy ----------------------------------------------------------
    def occupancy(self, res: KernelResources) -> OccupancyInfo:
        """Apply the hardware allocation rules to kernel resource usage."""
        cached = self._occupancy_cache.get(res)
        if cached is not None:
            return cached
        info = occupancy_for(self._spec, res)
        self._occupancy_cache[res] = info
        return info

    # -- timing ---------------------------------------------------------------
    def wg_duration(self, cost: WgCost, occ: OccupancyInfo) -> float:
        """Roofline duration of one WG given the kernel's occupancy."""
        key = (cost, occ)
        cached = self._duration_cache.get(key)
        if cached is not None:
            return cached
        resident = max(occ.resident_wgs, 1)
        mem_time = 0.0
        if cost.bytes > 0:
            bw = self.hbm.achieved_bandwidth(occ.fraction,
                                             access=cost.access) / resident
            mem_time = cost.bytes / bw
        flop_time = 0.0
        if cost.flops > 0:
            # A WG can at most use one CU; beyond num_cus resident WGs they
            # share ALUs evenly.
            per_wg = self.spec.flop_rate(cost.dtype) / max(resident,
                                                           self.spec.num_cus)
            flop_time = cost.flops / per_wg
        out = max(mem_time, flop_time) + cost.fixed
        self._duration_cache[key] = out
        return out

    def kernel_span_estimate(self, n_wgs: int, cost: WgCost,
                             occ: OccupancyInfo) -> float:
        """Closed-form kernel time estimate (rounds of resident WGs)."""
        rounds = math.ceil(n_wgs / max(occ.resident_wgs, 1))
        return (self.spec.kernel_launch_overhead
                + rounds * self.wg_duration(cost, occ))

    # -- data movement -----------------------------------------------------------
    def store_remote(self, peer: "Gpu", nbytes: float, value=None):
        """Direct store of ``nbytes`` into a peer GPU over the fabric.

        Returns the completion event (bytes visible at the peer).  This is
        the zero-copy path: no intermediate local buffer is written.
        """
        if self.fabric is None:
            raise RuntimeError(f"{self!r} has no fabric attached")
        return self.fabric.transfer(self, peer, nbytes, value=value)

    def rdma_put(self, dst_gpu: "Gpu", nbytes: float, value=None):
        """GPU-initiated RDMA put to a GPU on another node (via the NIC)."""
        if self.nic is None:
            raise RuntimeError(f"{self!r} has no NIC attached")
        return self.nic.rdma_put(dst_gpu, nbytes, value=value)
