"""Inter-node network: a non-blocking switch with per-destination ports.

The paper's hardware scale-out setup is two nodes behind an InfiniBand
switch; larger configurations (the 128-node DLRM study) are modelled by
:mod:`repro.astra` analytically.  The switch is non-blocking: each
*destination port* is a FIFO server at NIC bandwidth (so incast — several
sources targeting one node — serializes at the port), plus one propagation
latency per message, pipelined.  Payload bandwidth is charged here, exactly
once per transfer (see :meth:`repro.hw.nic.Nic.rdma_put`).
"""

from __future__ import annotations

from typing import Dict

from ..sim import Event, FifoChannel, Simulator
from .specs import NicSpec

__all__ = ["Network"]


class Network:
    """Switched inter-node network connecting node NICs."""

    def __init__(self, sim: Simulator, spec: NicSpec, num_nodes: int):
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.sim = sim
        self.spec = spec
        self.num_nodes = num_nodes
        self._rx_ports: Dict[int, FifoChannel] = {
            n: FifoChannel(sim, bandwidth=spec.bandwidth,
                           latency=spec.latency, name=f"switch.rx{n}")
            for n in range(num_nodes)
        }
        self.bytes_delivered = 0.0

    def deliver(self, src_node: int, dst_node: int, nbytes: float) -> Event:
        """Carry ``nbytes`` from ``src_node`` to ``dst_node``'s memory."""
        if not (0 <= src_node < self.num_nodes):
            raise ValueError(f"bad src node {src_node}")
        if not (0 <= dst_node < self.num_nodes):
            raise ValueError(f"bad dst node {dst_node}")
        if src_node == dst_node:
            raise ValueError("inter-node delivery to the same node")
        self.bytes_delivered += nbytes
        return self._rx_ports[dst_node].transfer(nbytes)

    def rx_port(self, node: int) -> FifoChannel:
        return self._rx_ports[node]
