"""Pluggable hardware platforms: a named catalog plus derived resources.

A :class:`Platform` bundles everything the simulation needs to know about
one hardware generation — the GPU microarchitecture (:class:`GpuSpec`),
the intra-node fabric link, the NIC, and the default node shape — into a
single frozen, JSON-serializable value that every layer accepts under the
``platform=`` keyword:

* :func:`repro.hw.topology.build_cluster` builds the cluster out of it,
* :class:`repro.fused.base.OpHarness` resolves and forwards it,
* the experiment orchestrator hashes its canonical form into scenario
  store keys (:meth:`Platform.param`), making hardware a sweep axis.

The catalog holds the paper's calibrated ``mi210`` entry (Table I) plus
plausible — *not* calibrated — profiles of neighbouring generations
(``mi250x``, ``mi300x``, ``h100``), and :func:`generic` constructs fully
parameterized devices.  The two HBM calibration knobs (``hbm_concurrency``
and the ``hbm_efficiency`` knee, fitted once against Fig. 13 on the MI210)
are carried over to the uncalibrated profiles as an explicit assumption:
DRAM latency-hiding and contention behaviour is taken to be
generation-invariant until someone calibrates a device for real.

Kernel resource footprints are *derived* here rather than hardcoded: a
compute kernel in this codebase uses 256-thread WGs and as many VGPRs as
still sustain full occupancy on the device, and a fused kernel pays
:data:`COMM_VGPRS` extra registers for its GPU-initiated networking state
(descriptor pointers, flag addresses, slice bookkeeping).  On the MI210
that derivation yields 64 → 72 VGPRs/thread, i.e. the paper's 12.5%
occupancy loss; on other catalog entries the loss follows each device's
own register file and wave-slot geometry.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Union

from ..utils.units import GB_PER_S, GIB, US
from .gpu import KernelResources, occupancy_for
from .specs import (
    IB_NIC,
    IF_LINK,
    MI210,
    ClusterSpec,
    GpuSpec,
    LinkSpec,
    NicSpec,
    NodeSpec,
)

__all__ = [
    "COMM_VGPRS",
    "KERNEL_THREADS_PER_WG",
    "Platform",
    "CATALOG",
    "DEFAULT_PLATFORM",
    "PlatformLike",
    "derived_baseline_resources",
    "derived_fused_resources",
    "generic",
    "get_platform",
    "list_platforms",
    "max_occupancy_of_baseline",
    "register_platform",
]

#: Threads per workgroup used by every compute kernel in this codebase
#: (the paper's kernels launch 256-thread WGs throughout).
KERNEL_THREADS_PER_WG = 256

#: Extra VGPRs/thread a fused kernel spends on GPU-initiated networking
#: state (paper Section III-C: the register pressure behind the reported
#: occupancy loss).  Architecture-independent: it is state the *kernel*
#: carries, not a device property.
COMM_VGPRS = 8


def _baseline_vgprs(spec: GpuSpec) -> int:
    """Largest granule-aligned VGPR budget that still fills every wave slot.

    Real compute kernels are tuned to the register budget of the target:
    ``vgprs_per_simd / max_waves_per_simd`` rounded down to the allocation
    granule is the most registers a kernel can use per thread while the
    device still reaches 100% wave occupancy.  On devices with small
    register files the budget additionally shrinks until the *fused*
    variant (``+ COMM_VGPRS``) still fits at least one whole WG per CU —
    a kernel whose communicating twin cannot launch would be mis-tuned.
    """
    g = spec.vgpr_granule
    budget = spec.vgprs_per_simd // spec.max_waves_per_simd
    aligned = max((budget // g) * g, g)
    waves_per_wg = math.ceil(KERNEL_THREADS_PER_WG / spec.wave_size)
    while True:
        fused_alloc = math.ceil((aligned + COMM_VGPRS) / g) * g
        waves_per_simd = min(spec.max_waves_per_simd,
                             spec.vgprs_per_simd // fused_alloc)
        if waves_per_simd * spec.simds_per_cu >= waves_per_wg:
            return aligned
        if aligned <= g:
            raise ValueError(
                f"{spec.name}: no VGPR budget lets a fused kernel "
                f"(+{COMM_VGPRS} comm VGPRs) fit one "
                f"{KERNEL_THREADS_PER_WG}-thread WG per CU")
        aligned -= g


def derived_baseline_resources(spec: GpuSpec) -> KernelResources:
    """Resource footprint of a baseline (non-communicating) kernel."""
    return KernelResources(threads_per_wg=KERNEL_THREADS_PER_WG,
                           vgprs_per_thread=_baseline_vgprs(spec))


def derived_fused_resources(spec: GpuSpec) -> KernelResources:
    """Resource footprint of a fused kernel (extra comm registers)."""
    return KernelResources(
        threads_per_wg=KERNEL_THREADS_PER_WG,
        vgprs_per_thread=_baseline_vgprs(spec) + COMM_VGPRS)


def max_occupancy_of_baseline(spec: GpuSpec) -> float:
    """The fused kernel's occupancy ceiling as a fraction of the baseline
    kernel's (the Fig. 13 x-axis unit): 0.875 on the calibrated MI210,
    derived from the register-file geometry elsewhere."""
    base = occupancy_for(spec, derived_baseline_resources(spec)).resident_wgs
    fused = occupancy_for(spec, derived_fused_resources(spec)).resident_wgs
    return fused / base


@dataclass(frozen=True)
class Platform:
    """One hardware generation: GPU + fabric + NIC + default node shape.

    ``gpus_per_node`` is the platform's *default* scale-up width;
    experiments may still request any world size.
    """

    name: str
    gpu: GpuSpec
    link: LinkSpec
    nic: NicSpec
    gpus_per_node: int = 4
    nics_per_node: int = 1

    def __post_init__(self):
        if self.gpus_per_node < 1 or self.nics_per_node < 1:
            raise ValueError("node shape counts must be >= 1")

    # -- spec construction --------------------------------------------------
    def node_spec(self, num_gpus: Optional[int] = None) -> NodeSpec:
        """A :class:`NodeSpec` for this platform (default node width)."""
        return NodeSpec(gpu=self.gpu,
                        num_gpus=(num_gpus if num_gpus is not None
                                  else self.gpus_per_node),
                        link=self.link, nic=self.nic,
                        nics_per_node=self.nics_per_node)

    def cluster_spec(self, num_nodes: int,
                     gpus_per_node: Optional[int] = None) -> ClusterSpec:
        return ClusterSpec(node=self.node_spec(gpus_per_node),
                           num_nodes=num_nodes)

    # -- derived kernel footprints ------------------------------------------
    def baseline_resources(self) -> KernelResources:
        return derived_baseline_resources(self.gpu)

    def fused_resources(self) -> KernelResources:
        return derived_fused_resources(self.gpu)

    def describe(self) -> Dict[str, Any]:
        """Key derived quantities (CLI listing, reports, sanity tests)."""
        base = occupancy_for(self.gpu, self.baseline_resources())
        fused = occupancy_for(self.gpu, self.fused_resources())
        return {
            "name": self.name,
            "num_cus": self.gpu.num_cus,
            "fp32_tflops": self.gpu.fp32_flops / 1e12,
            "fp16_tflops": self.gpu.fp16_flops / 1e12,
            "hbm_tb_per_s": self.gpu.hbm_bandwidth / 1e12,
            "hbm_gib": self.gpu.hbm_capacity / GIB,
            "link_gb_per_s": self.link.bandwidth / 1e9,
            "nic_gb_per_s": self.nic.bandwidth / 1e9,
            "gpus_per_node": self.gpus_per_node,
            "baseline_vgprs": self.baseline_resources().vgprs_per_thread,
            "fused_vgprs": self.fused_resources().vgprs_per_thread,
            "baseline_occupancy": base.fraction,
            "fused_occupancy": fused.fraction,
        }

    # -- serialization ------------------------------------------------------
    def to_params(self) -> Dict[str, Any]:
        """JSON-able mapping that round-trips through :meth:`from_params`."""
        gpu = asdict(self.gpu)
        gpu["hbm_efficiency"] = [list(pt) for pt in self.gpu.hbm_efficiency]
        return {
            "name": self.name,
            "gpu": gpu,
            "link": asdict(self.link),
            "nic": asdict(self.nic),
            "gpus_per_node": self.gpus_per_node,
            "nics_per_node": self.nics_per_node,
        }

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "Platform":
        """Inverse of :meth:`to_params` (exact round-trip)."""
        gpu = dict(params["gpu"])
        gpu["hbm_efficiency"] = tuple(tuple(pt)
                                      for pt in gpu["hbm_efficiency"])
        return cls(name=params["name"],
                   gpu=GpuSpec(**gpu),
                   link=LinkSpec(**params["link"]),
                   nic=NicSpec(**params["nic"]),
                   gpus_per_node=params.get("gpus_per_node", 4),
                   nics_per_node=params.get("nics_per_node", 1))

    def param(self) -> Union[str, Dict[str, Any]]:
        """Canonical scenario-parameter form: the catalog name when this
        *is* the built-in entry of that name, else the full mapping.

        Only *built-in* entries collapse to their name: worker processes
        and later runs can always resolve those by import, and their
        content is fixed, so the name is a faithful content address.  A
        platform registered at runtime serializes in full — its name
        alone would neither resolve in a fresh process nor re-key the
        cache if a different device were registered under it.
        """
        if _BUILTIN.get(self.name) == self:
            return self.name
        return self.to_params()

    def with_overrides(self, **kw) -> "Platform":
        """Copy with top-level fields replaced (for ablations)."""
        return replace(self, **kw)


# ---------------------------------------------------------------------------
# Catalog
# ---------------------------------------------------------------------------

#: The paper's calibrated device (Table I): the catalog's only entry whose
#: numbers are fitted to measurements; everything downstream defaults to it.
MI210_PLATFORM = Platform(name="mi210", gpu=MI210, link=IF_LINK, nic=IB_NIC,
                          gpus_per_node=4)

#: MI250X-class profile: one GCD of an MI250X (datasheet-plausible, not
#: calibrated) — 110 CUs, same CDNA2 register geometry as the MI210, with
#: faster Infinity Fabric and a 200G-class NIC.
MI250X_PLATFORM = Platform(
    name="mi250x",
    gpu=MI210.with_overrides(
        name="MI250X-GCD",
        num_cus=110,
        fp32_flops=23.95e12,
        fp16_flops=191.5e12,
        hbm_bandwidth=1638.4 * GB_PER_S,
        hbm_capacity=64 * GIB,
    ),
    link=LinkSpec(bandwidth=100 * GB_PER_S, latency=0.3 * US,
                  name="InfinityFabric3"),
    nic=NicSpec(bandwidth=25 * GB_PER_S, latency=1.3 * US,
                message_overhead=0.3 * US, name="InfiniBand-HDR"),
    gpus_per_node=4,
)

#: MI300X-class profile (datasheet-plausible, not calibrated): 304 CDNA3
#: CUs, HBM3, wider Infinity Fabric mesh, 400G-class NIC.
MI300X_PLATFORM = Platform(
    name="mi300x",
    gpu=MI210.with_overrides(
        name="MI300X",
        num_cus=304,
        fp32_flops=163.4e12,
        fp16_flops=1307.4e12,
        hbm_bandwidth=5300 * GB_PER_S,
        hbm_capacity=192 * GIB,
    ),
    link=LinkSpec(bandwidth=128 * GB_PER_S, latency=0.25 * US,
                  name="InfinityFabric4"),
    nic=NicSpec(bandwidth=50 * GB_PER_S, latency=1.0 * US,
                message_overhead=0.25 * US, name="InfiniBand-NDR"),
    gpus_per_node=8,
)

#: H100-class profile (datasheet-plausible, not calibrated), mapped onto
#: this library's CU/SIMD vocabulary: an SM is a "CU" with 4 schedulers
#: ("SIMDs") of 16 warp slots each, warp size 32, 64K 32-bit registers per
#: SM (512 per lane per scheduler).  Its register file is proportionally
#: smaller per wave slot than CDNA's, so the derived fused-kernel
#: occupancy loss is 25% rather than the MI210's 12.5%.
H100_PLATFORM = Platform(
    name="h100",
    gpu=GpuSpec(
        name="H100",
        num_cus=132,
        wave_size=32,
        simds_per_cu=4,
        max_waves_per_simd=16,
        vgprs_per_simd=512,
        vgpr_granule=8,
        lds_per_cu=228 * 1024,
        max_wgs_per_cu=32,
        fp32_flops=67.0e12,
        fp16_flops=989.0e12,
        hbm_bandwidth=3350 * GB_PER_S,
        hbm_capacity=80 * GIB,
        hbm_concurrency=MI210.hbm_concurrency,
        hbm_efficiency=MI210.hbm_efficiency,
        kernel_launch_overhead=10 * US,
        wg_dispatch_overhead=0.2 * US,
        shmem_api_latency=0.8 * US,
        flag_op_latency=0.1 * US,
    ),
    link=LinkSpec(bandwidth=150 * GB_PER_S, latency=0.3 * US,
                  name="NVLink4"),
    nic=NicSpec(bandwidth=50 * GB_PER_S, latency=1.0 * US,
                message_overhead=0.25 * US, name="InfiniBand-NDR"),
    gpus_per_node=8,
)

#: The built-in entries (immutable; the name-collapsing contract of
#: :meth:`Platform.param` applies to exactly these).
_BUILTIN: Dict[str, Platform] = {
    p.name: p for p in (MI210_PLATFORM, MI250X_PLATFORM,
                        MI300X_PLATFORM, H100_PLATFORM)
}

#: Name → platform.  Mutated only through :func:`register_platform`.
CATALOG: Dict[str, Platform] = dict(_BUILTIN)

#: The default everywhere a ``platform`` is optional — the calibrated
#: device, so omitting the argument reproduces the paper bit for bit.
DEFAULT_PLATFORM = "mi210"

#: Anything :func:`get_platform` resolves.
PlatformLike = Union[None, str, Platform, Mapping[str, Any]]


def register_platform(platform: Platform,
                      overwrite: bool = False) -> Platform:
    """Add a platform to the catalog for name-based lookup.

    Built-in names can never be rebound (``overwrite`` or not): scenario
    store keys hash those bare names as content addresses, so swapping
    their meaning would silently poison every cached result.
    """
    if platform.name in _BUILTIN and platform != _BUILTIN[platform.name]:
        raise ValueError(
            f"platform {platform.name!r} is a built-in catalog entry and "
            f"cannot be replaced (its name is a cache content address)")
    if platform.name in CATALOG and not overwrite:
        raise ValueError(f"platform {platform.name!r} already registered")
    CATALOG[platform.name] = platform
    return platform


def get_platform(value: PlatformLike = None) -> Platform:
    """Resolve a platform from a name, mapping, instance, or ``None``.

    ``None`` resolves to the calibrated default (:data:`DEFAULT_PLATFORM`);
    a mapping is interpreted as :meth:`Platform.to_params` output — the
    form scenario parameters carry for non-catalog devices.
    """
    if value is None:
        return CATALOG[DEFAULT_PLATFORM]
    if isinstance(value, Platform):
        return value
    if isinstance(value, str):
        try:
            return CATALOG[value]
        except KeyError:
            raise KeyError(
                f"unknown platform {value!r}; registered: "
                f"{sorted(CATALOG)}") from None
    if isinstance(value, Mapping):
        return Platform.from_params(value)
    raise TypeError(f"cannot resolve a platform from {type(value).__name__}")


def list_platforms() -> List[Platform]:
    """Catalog entries in name order."""
    return [CATALOG[name] for name in sorted(CATALOG)]


def generic(name: str = "generic",
            base: Optional[GpuSpec] = None,
            link: Optional[LinkSpec] = None,
            nic: Optional[NicSpec] = None,
            gpus_per_node: int = 4,
            nics_per_node: int = 1,
            **gpu_overrides: Any) -> Platform:
    """A fully parameterized device: any :class:`GpuSpec` field as kwargs.

    ``base`` is the microarchitecture template (default: the calibrated
    MI210) and ``gpu_overrides`` replace individual fields::

        generic("big-hbm", hbm_bandwidth=4e12, num_cus=200)

    Link/NIC default to the Table I fabric unless replaced wholesale.
    """
    spec = (base if base is not None else MI210)
    if gpu_overrides:
        gpu_overrides.setdefault("name", name)
        spec = spec.with_overrides(**gpu_overrides)
    elif spec.name == MI210.name:
        spec = spec.with_overrides(name=name)
    return Platform(name=name, gpu=spec,
                    link=link if link is not None else IF_LINK,
                    nic=nic if nic is not None else IB_NIC,
                    gpus_per_node=gpus_per_node,
                    nics_per_node=nics_per_node)
