"""RDMA NIC model (GPU-direct, GPU-initiated networking).

A :class:`Nic` owns a FIFO transmit engine (serialized at link bandwidth,
plus per-message processing overhead) and delivers into the destination
node's NIC through the inter-node :class:`~repro.hw.network.Network`.  The
completion event of :meth:`rdma_put` fires when the payload is fully visible
in the *destination GPU's* memory — the semantics fused kernels rely on when
they send a `sliceRdy` flag after a fence.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Event, FifoChannel, Simulator
from .specs import NicSpec

__all__ = ["Nic"]


class Nic:
    """One RDMA NIC attached to a node (GPU-direct capable)."""

    def __init__(self, sim: Simulator, spec: NicSpec, node_id: int,
                 nic_id: int = 0):
        self.sim = sim
        self.spec = spec
        self.node_id = node_id
        self.nic_id = nic_id
        self.network = None  # set by topology
        self._tx = FifoChannel(sim, bandwidth=spec.bandwidth, latency=0.0,
                               name=f"nic{node_id}.{nic_id}.tx")
        self.messages = 0
        self.bytes = 0.0

    def __repr__(self) -> str:
        return f"<Nic node={self.node_id} {self.spec.name}>"

    def rdma_put(self, dst_gpu: "Gpu", nbytes: float, value=None) -> Event:
        """Transmit ``nbytes`` to a remote GPU; event fires on remote delivery.

        Bandwidth is charged exactly once per payload (at the destination
        port, where incast contention lives); the TX engine serializes only
        the per-message processing cost (doorbell + descriptor), which is
        what bounds a NIC's message rate.  Large transfers are therefore
        pipelined cut-through, as real RDMA NICs do.
        """
        if self.network is None:
            raise RuntimeError(f"{self!r} not attached to a network")
        if dst_gpu.node_id == self.node_id:
            raise ValueError(
                f"rdma_put to local node {dst_gpu.node_id}; use the fabric")
        self.messages += 1
        self.bytes += nbytes
        done = self.sim.event()

        # The TX engine is busy for the message-processing time only.
        overhead_bytes = self.spec.message_overhead * self.spec.bandwidth
        tx_done = self._tx.transfer(overhead_bytes)

        def after_tx(_ev):
            wire = self.network.deliver(self.node_id, dst_gpu.node_id, nbytes)
            wire.add_callback(lambda _e: done.succeed(value))

        tx_done.add_callback(after_tx)
        return done

    @property
    def tx_busy_until(self) -> float:
        return self._tx.busy_until
