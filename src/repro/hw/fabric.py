"""Intra-node GPU fabric: fully-connected fair-share links.

Each *directed* GPU pair gets its own :class:`~repro.sim.FairShareLink` with
the spec's bandwidth — the paper's scale-up setup (4 MI210s fully connected
over 80 GB/s Infinity Fabric).  Processor sharing on a link is what produces
the contention effect the paper reports for the large-M GEMV + AllReduce
configurations (Fig. 9): many WGs streaming stores to the same peer split
the link bandwidth.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from ..sim import Event, FairShareLink, Simulator
from .specs import LinkSpec

__all__ = ["Fabric"]


class Fabric:
    """Fully-connected intra-node interconnect between a set of GPUs."""

    def __init__(self, sim: Simulator, gpus: Iterable["Gpu"], spec: LinkSpec):
        self.sim = sim
        self.spec = spec
        self.gpus = list(gpus)
        if len(self.gpus) < 1:
            raise ValueError("fabric needs at least one GPU")
        self._links: Dict[Tuple[int, int], FairShareLink] = {}
        for src in self.gpus:
            for dst in self.gpus:
                if src.gpu_id == dst.gpu_id:
                    continue
                self._links[(src.gpu_id, dst.gpu_id)] = FairShareLink(
                    sim, bandwidth=spec.bandwidth, latency=spec.latency,
                    name=f"{spec.name}:{src.gpu_id}->{dst.gpu_id}")
            src.fabric = self

    def link(self, src: "Gpu", dst: "Gpu") -> FairShareLink:
        try:
            return self._links[(src.gpu_id, dst.gpu_id)]
        except KeyError:
            raise KeyError(
                f"no fabric link {src.gpu_id}->{dst.gpu_id}; GPUs on this "
                f"fabric: {[g.gpu_id for g in self.gpus]}") from None

    def transfer(self, src: "Gpu", dst: "Gpu", nbytes: float,
                 value=None) -> Event:
        """Move ``nbytes`` from ``src`` to ``dst``; event fires on delivery."""
        if src.gpu_id == dst.gpu_id:
            # Local "transfer" — modelled as immediate (caller accounts HBM).
            ev = self.sim.event()
            ev.succeed(value)
            return ev
        return self.link(src, dst).transfer(nbytes, value=value)

    def total_bytes(self) -> float:
        return sum(l.bytes_sent for l in self._links.values())

    def links(self) -> Dict[Tuple[int, int], FairShareLink]:
        return dict(self._links)
