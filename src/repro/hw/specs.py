"""Hardware specification dataclasses and the calibrated MI210 profile.

All performance numbers are taken from public AMD Instinct MI210 datasheets
and the paper's Table I (4 GPUs fully connected over Infinity Fabric at
80 GB/s; 2 nodes over 20 GB/s InfiniBand).  Two free parameters —
``hbm_concurrency`` and the ``hbm_efficiency`` knee — are calibrated once so
the occupancy sweep of the paper's Fig. 13 reproduces (execution time falls
~46% from 25%→75% occupancy, then rises ~25% at 87.5%); see
:mod:`repro.hw.memory` for the derivation.  They are then used unchanged by
every experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from ..utils.units import GB_PER_S, GIB, US

__all__ = [
    "GpuSpec",
    "LinkSpec",
    "NicSpec",
    "NodeSpec",
    "ClusterSpec",
    "MI210",
    "IF_LINK",
    "IB_NIC",
    "mi210_node_spec",
    "two_node_cluster_spec",
]


@dataclass(frozen=True)
class GpuSpec:
    """Static description of one GPU device.

    Attributes mirror the quantities the execution model needs; see
    :class:`repro.hw.gpu.Gpu` for how they are consumed.
    """

    name: str
    num_cus: int                      #: compute units
    wave_size: int                    #: threads per wavefront
    simds_per_cu: int                 #: SIMD units per CU
    max_waves_per_simd: int           #: HW wave slots per SIMD
    vgprs_per_simd: int               #: architected VGPRs per SIMD per lane
    vgpr_granule: int                 #: VGPR allocation granularity
    lds_per_cu: int                   #: bytes of LDS per CU
    max_wgs_per_cu: int               #: HW limit on resident workgroups per CU
    fp32_flops: float                 #: peak vector fp32 FLOP/s
    fp16_flops: float                 #: peak matrix fp16 FLOP/s
    hbm_bandwidth: float              #: peak HBM bytes/s
    hbm_capacity: float               #: HBM bytes
    hbm_concurrency: float            #: calibration: streams needed to saturate
    hbm_efficiency: Tuple[Tuple[float, float], ...]  #: (occupancy, efficiency)
    kernel_launch_overhead: float     #: seconds per kernel launch
    wg_dispatch_overhead: float       #: seconds per logical-WG task switch
    shmem_api_latency: float          #: GPU-initiated comm API issue cost (s)
    flag_op_latency: float            #: book-keeping atomic (bitmask/flag) cost

    @property
    def max_waves_per_cu(self) -> int:
        return self.simds_per_cu * self.max_waves_per_simd

    def flop_rate(self, dtype: str = "fp32") -> float:
        """Peak device FLOP/s for the given dtype."""
        if dtype in ("fp32", "float32"):
            return self.fp32_flops
        if dtype in ("fp16", "float16", "bf16"):
            return self.fp16_flops
        raise ValueError(f"unknown dtype {dtype!r}")

    def with_overrides(self, **kw) -> "GpuSpec":
        """Return a copy with fields replaced (for ablations)."""
        return replace(self, **kw)


@dataclass(frozen=True)
class LinkSpec:
    """Point-to-point intra-node fabric link (Infinity Fabric / xGMI)."""

    bandwidth: float     #: bytes/s per direction
    latency: float       #: propagation + protocol latency (s)
    name: str = "xgmi"


@dataclass(frozen=True)
class NicSpec:
    """RDMA-capable NIC (GPU-direct path)."""

    bandwidth: float        #: bytes/s
    latency: float          #: end-to-end message latency (s)
    message_overhead: float #: per-message processing cost at the NIC (s)
    name: str = "ib"


@dataclass(frozen=True)
class NodeSpec:
    """One server node: GPUs, the fabric between them, and NICs."""

    gpu: GpuSpec
    num_gpus: int
    link: LinkSpec
    nic: NicSpec
    nics_per_node: int = 1


@dataclass(frozen=True)
class ClusterSpec:
    """A multi-node system."""

    node: NodeSpec
    num_nodes: int


# ---------------------------------------------------------------------------
# Calibrated profiles (paper Table I)
# ---------------------------------------------------------------------------

#: AMD Instinct MI210 calibration.
#:
#: - 104 CUs, 4 SIMDs/CU, 8 wave slots/SIMD, wave size 64.
#: - 22.6 TFLOP/s vector fp32, 181 TFLOP/s matrix fp16.
#: - 1.6384 TB/s HBM2e, 64 GiB.
#: - ``hbm_concurrency`` = 2.16 and the efficiency knee reproduce Fig. 13;
#:   derivation in :mod:`repro.hw.memory`.
MI210 = GpuSpec(
    name="MI210",
    num_cus=104,
    wave_size=64,
    simds_per_cu=4,
    max_waves_per_simd=8,
    vgprs_per_simd=512,
    vgpr_granule=8,
    lds_per_cu=64 * 1024,
    max_wgs_per_cu=16,
    fp32_flops=22.6e12,
    fp16_flops=181.0e12,
    hbm_bandwidth=1638.4 * GB_PER_S,
    hbm_capacity=64 * GIB,
    hbm_concurrency=2.16,
    hbm_efficiency=((0.0, 1.0), (0.78, 1.0), (0.875, 0.80), (1.0, 0.78)),
    kernel_launch_overhead=10 * US,
    wg_dispatch_overhead=0.2 * US,
    shmem_api_latency=0.8 * US,
    flag_op_latency=0.1 * US,
)

#: Infinity Fabric link between two GPUs in a node (Table I: 80 GB/s).
IF_LINK = LinkSpec(bandwidth=80 * GB_PER_S, latency=0.3 * US, name="InfinityFabric")

#: InfiniBand NIC (Table I: 20 GB/s).
IB_NIC = NicSpec(bandwidth=20 * GB_PER_S, latency=1.5 * US,
                 message_overhead=0.3 * US, name="InfiniBand")


def mi210_node_spec(num_gpus: int = 4) -> NodeSpec:
    """Paper scale-up node: ``num_gpus`` MI210s, fully connected at 80 GB/s."""
    return NodeSpec(gpu=MI210, num_gpus=num_gpus, link=IF_LINK, nic=IB_NIC)


def two_node_cluster_spec(gpus_per_node: int = 1) -> ClusterSpec:
    """Paper scale-out setup: 2 nodes, 1 GPU each, IB between them."""
    return ClusterSpec(node=mi210_node_spec(gpus_per_node), num_nodes=2)
