"""Cluster construction: nodes of GPUs + fabric, joined by a network.

These builders wire together every hardware model and are the entry point
for all experiments::

    cluster = build_cluster(sim, num_nodes=2, gpus_per_node=1)
    gpu = cluster.gpu(0)          # global GPU index
    peers = cluster.gpus          # flat list, rank order = global index
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..sim import NULL_TRACE, Simulator, TraceRecorder
from .fabric import Fabric
from .gpu import Gpu
from .network import Network
from .nic import Nic
from .specs import ClusterSpec, NodeSpec

__all__ = ["Node", "Cluster", "build_node", "build_cluster"]


@dataclass
class Node:
    """One server: GPUs connected by an intra-node fabric, plus a NIC."""

    node_id: int
    gpus: List[Gpu]
    fabric: Fabric
    nic: Optional[Nic] = None

    def __post_init__(self):
        for g in self.gpus:
            if g.nic is not None and g.nic is not self.nic:
                # Silently re-pointing a reused Gpu's NIC would reroute
                # its RDMA traffic through the newest node ever built —
                # and corrupt the older node's timing behind its back.
                raise ValueError(
                    f"GPU {g.gpu_id} already belongs to node "
                    f"{g.nic.node_id}'s NIC; build each node (and "
                    f"cluster) with fresh Gpu objects")
            g.nic = self.nic


@dataclass
class Cluster:
    """A set of nodes joined by an inter-node network."""

    nodes: List[Node]
    network: Optional[Network]
    sim: Simulator
    trace: TraceRecorder
    gpus: List[Gpu] = field(init=False)

    def __post_init__(self):
        self.gpus = [g for node in self.nodes for g in node.gpus]
        for rank, g in enumerate(self.gpus):
            if g.gpu_id != rank:
                raise ValueError("GPU ids must equal their flat rank order")

    @property
    def world_size(self) -> int:
        return len(self.gpus)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def gpu(self, rank: int) -> Gpu:
        return self.gpus[rank]

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        return self.gpus[rank_a].node_id == self.gpus[rank_b].node_id


def build_node(sim: Simulator, spec: Optional[NodeSpec] = None,
               node_id: int = 0, first_gpu_id: int = 0,
               trace: Optional[TraceRecorder] = None,
               platform=None) -> Node:
    """Construct one node: GPUs, fully-connected fabric, one NIC.

    Either an explicit :class:`NodeSpec` or a ``platform`` (anything
    :func:`repro.hw.platform.get_platform` resolves) selects the hardware;
    omitting both builds the paper's calibrated MI210 node.
    """
    if spec is not None and platform is not None:
        raise ValueError("pass spec or platform, not both")
    if spec is None:
        from .platform import get_platform
        spec = get_platform(platform).node_spec()
    gpus = [
        Gpu(sim, spec.gpu, gpu_id=first_gpu_id + i, node_id=node_id,
            local_id=i, trace=trace)
        for i in range(spec.num_gpus)
    ]
    fabric = Fabric(sim, gpus, spec.link)
    nic = Nic(sim, spec.nic, node_id=node_id)
    return Node(node_id=node_id, gpus=gpus, fabric=fabric, nic=nic)


def build_cluster(sim: Simulator, num_nodes: int = 1, gpus_per_node: int = 4,
                  node_spec: Optional[NodeSpec] = None,
                  trace: Optional[TraceRecorder] = None,
                  platform=None) -> Cluster:
    """Construct a cluster in rank order (node-major GPU numbering).

    Hardware comes from ``node_spec`` if given, else from ``platform``
    (anything :func:`repro.hw.platform.get_platform` resolves: a catalog
    name, a :class:`~repro.hw.platform.Platform`, or its params mapping);
    the default platform is the paper's calibrated MI210.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if node_spec is not None and platform is not None:
        raise ValueError("pass node_spec or platform, not both")
    if node_spec is not None:
        spec = node_spec
    else:
        from .platform import get_platform
        spec = get_platform(platform).node_spec(gpus_per_node)
    tr = trace if trace is not None else NULL_TRACE
    network = Network(sim, spec.nic, num_nodes) if num_nodes > 1 else None
    nodes = []
    for n in range(num_nodes):
        node = build_node(sim, spec, node_id=n,
                          first_gpu_id=n * spec.num_gpus, trace=tr)
        if node.nic is not None:
            node.nic.network = network
        nodes.append(node)
    return Cluster(nodes=nodes, network=network, sim=sim, trace=tr)


def from_cluster_spec(sim: Simulator, cspec: ClusterSpec,
                      trace: Optional[TraceRecorder] = None) -> Cluster:
    """Build a cluster directly from a :class:`ClusterSpec`."""
    return build_cluster(sim, num_nodes=cspec.num_nodes,
                         gpus_per_node=cspec.node.num_gpus,
                         node_spec=cspec.node, trace=trace)
