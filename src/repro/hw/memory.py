"""HBM bandwidth model with a concurrency ramp and a contention knee.

The model captures two first-order DRAM behaviours that the paper's Fig. 13
exposes for memory-bound kernels (embedding pooling):

1. **Concurrency ramp** — a GPU needs enough in-flight memory streams to
   cover DRAM latency.  With occupancy ``o`` (fraction of the device's wave
   slots that are resident) the achievable bandwidth ramps as
   ``min(concurrency * o, 1) * peak``.  Below the saturation point, adding
   workgroups adds bandwidth nearly linearly (Little's law).

2. **Contention knee** — past a utilization knee, additional concurrent
   streams *reduce* effective bandwidth (row-buffer thrashing / channel
   conflicts).  This is the piecewise-linear ``efficiency(o)`` table on the
   :class:`~repro.hw.specs.GpuSpec`.

Calibration (done once, against the paper's Fig. 13, then frozen):

* time(75%) / time(25%) = 0.54  (the paper's 46% reduction)
  ⇒ with efficiency 1 in that range, ``0.25 * concurrency = 0.54``
  ⇒ ``concurrency = 2.16`` (saturation at ~46% occupancy).
* time(87.5%) / time(75%) = 1.25 (the paper's 25% increase)
  ⇒ ``efficiency(0.875) = 0.80``.
* ``efficiency(1.0) = 0.78``: the contention penalty flattens, so a baseline
  kernel at full occupancy and the fused kernel at 87.5% occupancy run at
  nearly the same memory throughput — consistent with the paper's
  observation that the fused kernel's 12.5% occupancy loss "does not degrade
  performance".
"""

from __future__ import annotations

import numpy as np

from .specs import GpuSpec

__all__ = ["HbmModel"]


class HbmModel:
    """Occupancy-dependent achievable-bandwidth model for one GPU's HBM."""

    def __init__(self, spec: GpuSpec):
        self.spec = spec

    @property
    def spec(self) -> GpuSpec:
        return self._spec

    @spec.setter
    def spec(self, spec: GpuSpec) -> None:
        """Swap the device spec, revalidating and dropping every cache.

        The efficiency table and the bandwidth memo are functions of the
        spec's content; rebuilding them here keeps a swapped-in spec from
        ever reading another spec's cached entries.
        """
        pts = tuple(spec.hbm_efficiency)
        if len(pts) < 2:
            raise ValueError("hbm_efficiency needs at least two points")
        xs = [x for x, _ in pts]
        if xs != sorted(xs):
            raise ValueError("hbm_efficiency occupancies must be increasing")
        if xs[0] != 0.0:
            raise ValueError("hbm_efficiency must start at occupancy 0.0")
        self._spec = spec
        self._points = pts
        self._xs = np.array([x for x, _ in pts], dtype=np.float64)
        self._ys = np.array([y for _, y in pts], dtype=np.float64)
        # Kernels evaluate the model at a handful of distinct occupancies,
        # thousands of times each; the model is a pure function of the frozen
        # spec, so memoize on (occupancy, access).
        self._bw_cache: dict = {}

    def efficiency(self, occupancy: float) -> float:
        """Piecewise-linear DRAM efficiency at the given occupancy."""
        o = min(max(occupancy, 0.0), 1.0)
        pts = self._points
        for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
            if o <= x1:
                if x1 == x0:
                    return y1
                t = (o - x0) / (x1 - x0)
                return y0 + t * (y1 - y0)
        return pts[-1][1]

    def concurrency_ramp(self, occupancy: float) -> float:
        """Fraction of peak reachable given in-flight stream count."""
        o = min(max(occupancy, 0.0), 1.0)
        return min(self.spec.hbm_concurrency * o, 1.0)

    def achieved_bandwidth(self, occupancy: float,
                           access: str = "stream") -> float:
        """Achievable HBM bytes/s at the given occupancy fraction.

        The concurrency ramp applies to every kernel.  The contention knee
        applies to ``access="gather"`` traffic only: data-dependent lookups
        (embedding pooling) thrash DRAM row buffers once too many streams
        are in flight — the paper's Fig. 13 mechanism ("memory intensive
        embedding operations encounter significant memory contention" at
        87.5% occupancy).  Coalesced streams (GEMV/GEMM/copies) prefetch
        and combine well and stay on the ramp.

        A consequence the paper also observes (Section IV-C): a baseline
        gather kernel at 100% occupancy (efficiency 0.78) and the fused one
        at its 87.5% maximum (efficiency 0.80) run at nearly the same
        throughput, so the fused kernels' register-pressure occupancy loss
        "does not degrade performance".
        """
        key = (occupancy, access)
        cached = self._bw_cache.get(key)
        if cached is not None:
            return cached
        if access not in ("stream", "gather"):
            raise ValueError(f"unknown access pattern {access!r}")
        eff = self.efficiency(occupancy) if access == "gather" else 1.0
        bw = self.spec.hbm_bandwidth * self.concurrency_ramp(occupancy) * eff
        self._bw_cache[key] = bw
        return bw

    # -- vectorized twins (scenario-axis arrays; bit-identical to the scalar
    # -- forms above: same clamp, segment choice, and interpolation order) ----
    def efficiency_batch(self, occupancy: np.ndarray) -> np.ndarray:
        """Array twin of :meth:`efficiency` (elementwise bit-identical)."""
        o = np.minimum(np.maximum(np.asarray(occupancy, np.float64), 0.0), 1.0)
        xs, ys = self._xs, self._ys
        # First segment whose right endpoint satisfies ``o <= x1`` — the
        # segment the scalar loop stops at.
        seg = np.searchsorted(xs[1:], o, side="left")
        overflow = seg >= len(xs) - 1          # o beyond the table's last x
        seg = np.minimum(seg, len(xs) - 2)
        x0, x1 = xs[seg], xs[seg + 1]
        y0, y1 = ys[seg], ys[seg + 1]
        with np.errstate(divide="ignore", invalid="ignore"):
            t = (o - x0) / (x1 - x0)
            out = y0 + t * (y1 - y0)
        out = np.where(x1 == x0, y1, out)      # degenerate segment -> y1
        return np.where(overflow, ys[-1], out)

    def concurrency_ramp_batch(self, occupancy: np.ndarray) -> np.ndarray:
        """Array twin of :meth:`concurrency_ramp`."""
        o = np.minimum(np.maximum(np.asarray(occupancy, np.float64), 0.0), 1.0)
        return np.minimum(self.spec.hbm_concurrency * o, 1.0)

    def achieved_bandwidth_batch(self, occupancy: np.ndarray,
                                 access: str = "stream") -> np.ndarray:
        """Array twin of :meth:`achieved_bandwidth` (``access`` is uniform
        over the batch; multiplying streams by ``eff = 1.0`` is exact)."""
        if access not in ("stream", "gather"):
            raise ValueError(f"unknown access pattern {access!r}")
        o = np.asarray(occupancy, np.float64)
        eff = self.efficiency_batch(o) if access == "gather" else 1.0
        return self.spec.hbm_bandwidth * self.concurrency_ramp_batch(o) * eff

    def best_occupancy(self, samples: int = 200,
                       access: str = "gather") -> float:
        """Occupancy that maximizes achieved bandwidth (diagnostic)."""
        best_o, best_bw = 0.0, 0.0
        for i in range(1, samples + 1):
            o = i / samples
            bw = self.achieved_bandwidth(o, access=access)
            if bw > best_bw:
                best_o, best_bw = o, bw
        return best_o
