"""Symmetric heap: identical allocations across all ranks (ROC_SHMEM-style).

A :class:`SymmetricHeap` mirrors ``roc_shmem_malloc``: every allocation
exists at the *same offset on every rank*, is registered for remote access
(NIC/fabric can target it directly), and is backed here by one NumPy array
per rank so the simulated kernels are functionally exact.

The allocator is a first-fit free-list bump allocator with coalescing —
enough to enforce the capacity limits and catch double-free bugs in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["SymmetricHeap", "SymmetricBuffer", "HeapError"]


class HeapError(RuntimeError):
    """Allocation failure or misuse of the symmetric heap."""


@dataclass
class _Block:
    offset: int
    size: int


class SymmetricBuffer:
    """One symmetric allocation: the same shape/dtype on every rank."""

    def __init__(self, heap: "SymmetricHeap", offset: int, shape: Tuple[int, ...],
                 dtype: np.dtype, arrays: List[np.ndarray]):
        self.heap = heap
        self.offset = offset
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self._arrays = arrays
        self._freed = False

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * self.dtype.itemsize

    @property
    def world_size(self) -> int:
        return len(self._arrays)

    def local(self, rank: int) -> np.ndarray:
        """The backing array on ``rank`` (writable view)."""
        if self._freed:
            raise HeapError("use of freed symmetric buffer")
        return self._arrays[rank]

    def fill(self, value) -> None:
        """Fill every rank's copy (test/setup convenience)."""
        for a in self._arrays:
            a[...] = value

    def free(self) -> None:
        self.heap.free(self)

    def __repr__(self) -> str:
        state = "freed" if self._freed else "live"
        return (f"<SymmetricBuffer off={self.offset} shape={self.shape} "
                f"dtype={self.dtype.name} {state}>")


class SymmetricHeap:
    """Per-cluster symmetric heap with a fixed per-rank capacity."""

    def __init__(self, world_size: int, capacity: int = 1 << 32,
                 alignment: int = 256):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if alignment < 1 or (alignment & (alignment - 1)):
            raise ValueError("alignment must be a power of two")
        self.world_size = world_size
        self.capacity = int(capacity)
        self.alignment = alignment
        self._free: List[_Block] = [_Block(0, self.capacity)]
        self._live: Dict[int, SymmetricBuffer] = {}

    # -- allocation ---------------------------------------------------------
    def alloc(self, shape, dtype=np.float32) -> SymmetricBuffer:
        """Allocate ``shape``/``dtype`` on every rank at a common offset."""
        shape = (shape,) if np.isscalar(shape) else tuple(int(s) for s in shape)
        if any(s < 0 for s in shape):
            raise ValueError(f"negative dimension in shape {shape}")
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        size = max(self._align(nbytes), self.alignment)
        offset = self._take(size)
        arrays = [np.zeros(shape, dtype=dtype) for _ in range(self.world_size)]
        buf = SymmetricBuffer(self, offset, shape, dtype, arrays)
        self._live[offset] = buf
        return buf

    def free(self, buf: SymmetricBuffer) -> None:
        if buf._freed:
            raise HeapError("double free of symmetric buffer")
        if self._live.pop(buf.offset, None) is not buf:
            raise HeapError("buffer does not belong to this heap")
        buf._freed = True
        self._release(buf.offset, max(self._align(buf.nbytes), self.alignment))

    # -- accounting -----------------------------------------------------------
    @property
    def used(self) -> int:
        return self.capacity - sum(b.size for b in self._free)

    @property
    def live_buffers(self) -> int:
        return len(self._live)

    # -- internals ----------------------------------------------------------
    def _align(self, n: int) -> int:
        a = self.alignment
        return (n + a - 1) // a * a

    def _take(self, size: int) -> int:
        for i, blk in enumerate(self._free):
            if blk.size >= size:
                offset = blk.offset
                if blk.size == size:
                    self._free.pop(i)
                else:
                    blk.offset += size
                    blk.size -= size
                return offset
        raise HeapError(
            f"symmetric heap exhausted: need {size} bytes, "
            f"largest free block {max((b.size for b in self._free), default=0)}")

    def _release(self, offset: int, size: int) -> None:
        self._free.append(_Block(offset, size))
        self._free.sort(key=lambda b: b.offset)
        merged: List[_Block] = []
        for blk in self._free:
            if merged and merged[-1].offset + merged[-1].size == blk.offset:
                merged[-1].size += blk.size
            else:
                merged.append(blk)
        self._free = merged
