"""Communicator: glues cluster, symmetric heap, SHMEM contexts, collectives.

One :class:`Communicator` per experiment.  It owns the symmetric heap (one
allocation space mirrored on every rank), a :class:`ShmemContext` per rank
for GPU-initiated communication, and a baseline
:class:`~repro.comm.collectives.CollectiveLibrary`.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..hw.topology import Cluster
from .collectives import CollectiveLibrary
from .shmem import FlagArray, ShmemContext
from .symheap import SymmetricBuffer, SymmetricHeap

__all__ = ["Communicator"]


class Communicator:
    """Communication runtime for a cluster."""

    def __init__(self, cluster: Cluster, heap_capacity: int = 1 << 34,
                 cpu_proxy: bool = False):
        self.cluster = cluster
        self.sim = cluster.sim
        self.heap = SymmetricHeap(cluster.world_size, capacity=heap_capacity)
        self.ctxs: List[ShmemContext] = [
            ShmemContext(self.sim, cluster, r, cpu_proxy=cpu_proxy)
            for r in range(cluster.world_size)
        ]
        self.collectives = CollectiveLibrary(cluster)
        self._barrier_count = 0
        self._barrier_event = None

    @property
    def world_size(self) -> int:
        return self.cluster.world_size

    def ctx(self, rank: int) -> ShmemContext:
        return self.ctxs[rank]

    def alloc(self, shape, dtype=np.float32) -> SymmetricBuffer:
        """``roc_shmem_malloc``: symmetric allocation on every rank."""
        return self.heap.alloc(shape, dtype)

    def alloc_flags(self, n_flags: int, name: str = "flags") -> FlagArray:
        """Symmetric flag array (allocated on the heap for accounting)."""
        self.heap.alloc((n_flags,), np.int64)  # reserve heap space
        return FlagArray(self.sim, self.world_size, n_flags, name=name)

    def barrier(self):
        """Counting barrier: event fires when all ranks have arrived."""
        if self._barrier_event is None or self._barrier_event.triggered:
            self._barrier_event = self.sim.event()
            self._barrier_count = 0
        self._barrier_count += 1
        ev = self._barrier_event
        if self._barrier_count == self.world_size:
            ev.succeed()
        return ev
