"""GPU-initiated intra-kernel communication API (ROC_SHMEM-like).

This module provides the primitives the paper's fused kernels are written
against:

* :meth:`ShmemContext.put_nbi` — non-blocking put of a NumPy payload into a
  peer rank's symmetric buffer.  Routed over the intra-node fabric (native
  stores) or the NIC (RDMA) depending on where the destination rank lives.
* :meth:`ShmemContext.fence` — ordering: all prior puts to a destination
  complete before anything issued after the fence.
* :meth:`ShmemContext.quiet` — all outstanding puts from this rank complete.
* :meth:`ShmemContext.put_signal` — the paper's "PUT data, remote fence,
  PUT sliceRdy flag" idiom as one call: the flag write is issued only after
  the payload is delivered.
* :class:`FlagArray` / :meth:`ShmemContext.wait_until` — remote-visible flag
  words that consumer workgroups poll on.

Functional data movement happens eagerly (NumPy copies) while the *timing*
of visibility is carried by events — consumers must gate on flags, exactly
as real fused kernels must.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..sim import Event, Simulator

__all__ = ["FlagArray", "ShmemContext"]

#: Size of one flag word on the wire (bytes).
FLAG_BYTES = 8


class FlagArray:
    """A symmetric array of integer flags with event-based waiters."""

    def __init__(self, sim: Simulator, world_size: int, n_flags: int,
                 name: str = "flags"):
        if n_flags < 1:
            raise ValueError("n_flags must be >= 1")
        self.sim = sim
        self.name = name
        self.n_flags = n_flags
        self._values = np.zeros((world_size, n_flags), dtype=np.int64)
        self._waiters: Dict[Tuple[int, int], List[Tuple[int, Event]]] = {}

    def read(self, rank: int, idx: int) -> int:
        return int(self._values[rank, idx])

    def set(self, rank: int, idx: int, value: int = 1) -> None:
        """Set a flag on ``rank`` *now* and wake satisfied waiters."""
        self._values[rank, idx] = value
        key = (rank, idx)
        waiters = self._waiters.pop(key, [])
        still = []
        for want, ev in waiters:
            if value >= want:
                ev.succeed(value)
            else:
                still.append((want, ev))
        if still:
            self._waiters[key] = still

    def wait_until(self, rank: int, idx: int, value: int = 1) -> Event:
        """Event that fires when flag ``idx`` on ``rank`` reaches ``value``."""
        ev = self.sim.event()
        if self._values[rank, idx] >= value:
            ev.succeed(int(self._values[rank, idx]))
        else:
            self._waiters.setdefault((rank, idx), []).append((value, ev))
        return ev

    def all_set(self, rank: int, value: int = 1) -> bool:
        return bool((self._values[rank] >= value).all())

    def reset(self) -> None:
        if self._waiters:
            raise RuntimeError(f"reset of {self.name!r} with pending waiters")
        self._values[...] = 0


class ShmemContext:
    """Per-rank handle for GPU-initiated communication.

    One context per GPU ("PE" in SHMEM terms); it knows how to route a put
    to any destination rank: same GPU (free — the data is already local),
    same node (fabric stores), or remote node (RDMA through the NIC).
    """

    #: Extra latency when network transactions are triggered through a CPU
    #: proxy thread instead of directly by the GPU (the alternative the
    #: paper's Fig. 5 discussion mentions, e.g. MSCCL++-style proxies):
    #: doorbell-to-CPU wakeup plus the proxy's submission path.
    CPU_PROXY_LATENCY = 2.0e-6

    def __init__(self, sim: Simulator, cluster, rank: int,
                 cpu_proxy: bool = False):
        self.sim = sim
        self.cluster = cluster
        self.rank = rank
        self.gpu = cluster.gpu(rank)
        self.cpu_proxy = cpu_proxy
        # Outstanding put completions, per destination rank, for fence/quiet.
        self._pending: Dict[int, List[Event]] = {}
        self.puts_issued = 0
        self.bytes_put = 0.0

    # -- core put ------------------------------------------------------------
    def put_nbi(self, dst_buf, src: np.ndarray, dst_rank: int,
                dst_index=slice(None)) -> Event:
        """Non-blocking put: copy ``src`` into ``dst_buf`` on ``dst_rank``.

        Returns the delivery event.  The payload lands in the destination
        rank's backing array; visibility ordering is the caller's job (use
        flags / ``put_signal``).
        """
        if not (0 <= dst_rank < self.cluster.world_size):
            raise ValueError(f"bad destination rank {dst_rank}")
        src = np.asarray(src)
        nbytes = float(src.nbytes)
        # Functional effect.
        dst_buf.local(dst_rank)[dst_index] = src
        # Timing effect.
        ev = self._route(dst_rank, nbytes)
        self._pending.setdefault(dst_rank, []).append(ev)
        self.puts_issued += 1
        self.bytes_put += nbytes
        return ev

    def put_bytes(self, dst_rank: int, nbytes: float) -> Event:
        """Timing-only non-blocking put (no functional payload).

        Used by operators running in timing-only mode on paper-scale
        configurations where materializing the tensors is pointless; the
        event/fence/quiet semantics are identical to :meth:`put_nbi`.
        """
        if not (0 <= dst_rank < self.cluster.world_size):
            raise ValueError(f"bad destination rank {dst_rank}")
        if nbytes < 0:
            raise ValueError(f"negative put size {nbytes}")
        ev = self._route(dst_rank, nbytes)
        self._pending.setdefault(dst_rank, []).append(ev)
        self.puts_issued += 1
        self.bytes_put += nbytes
        return ev

    def put_signal_bytes(self, dst_rank: int, nbytes: float,
                         flags: FlagArray, flag_idx: int,
                         flag_value: int = 1,
                         notify: bool = True) -> Optional[Event]:
        """Timing-only variant of :meth:`put_signal`.

        With ``notify=False`` no completion event is materialized (returns
        ``None``) — producers that rely purely on the destination's flag, as
        the fused kernels do, save one heap event per slice.
        """
        data_ev = self.put_bytes(dst_rank, nbytes)
        done = self.sim.event() if notify else None

        def after_data(_ev):
            flag_ev = self._route(dst_rank, FLAG_BYTES)
            self._pending.setdefault(dst_rank, []).append(flag_ev)

            def after_flag(_e):
                flags.set(dst_rank, flag_idx, flag_value)
                if done is not None:
                    done.succeed()

            flag_ev.add_callback(after_flag)

        data_ev.add_callback(after_data)
        return done

    def _route(self, dst_rank: int, nbytes: float) -> Event:
        dst_gpu = self.cluster.gpu(dst_rank)
        if dst_rank == self.rank:
            ev = self.sim.event()
            ev.succeed()
            return ev
        if dst_gpu.node_id == self.gpu.node_id:
            # Fabric stores are native GPU instructions — no proxy involved.
            return self.gpu.store_remote(dst_gpu, nbytes)
        if not self.cpu_proxy:
            return self.gpu.rdma_put(dst_gpu, nbytes)
        # CPU-proxy path: the GPU rings a doorbell; a host thread submits
        # the RDMA work request after the proxy wakeup latency.
        done = self.sim.event()
        wakeup = self.sim.timeout(self.CPU_PROXY_LATENCY)

        def submit(_ev):
            self.gpu.rdma_put(dst_gpu, nbytes).add_callback(
                lambda _e: done.succeed())

        wakeup.add_callback(submit)
        return done

    # -- ordering ----------------------------------------------------------
    def fence(self, dst_rank: int) -> Event:
        """Event: all puts previously issued to ``dst_rank`` are delivered."""
        pending = self._pending.get(dst_rank, [])
        live = [ev for ev in pending if not ev.processed]
        self._pending[dst_rank] = live
        return self.sim.all_of(live)

    def quiet(self) -> Event:
        """Event: all outstanding puts from this rank are delivered."""
        live = []
        for dst, evs in self._pending.items():
            alive = [ev for ev in evs if not ev.processed]
            self._pending[dst] = alive
            live.extend(alive)
        return self.sim.all_of(live)

    # -- composite idioms ------------------------------------------------------
    def put_signal(self, dst_buf, src: np.ndarray, dst_rank: int,
                   flags: FlagArray, flag_idx: int, flag_value: int = 1,
                   dst_index=slice(None)) -> Event:
        """PUT payload, remote fence, PUT flag — the paper's slice handoff.

        The returned event fires when the *flag* is visible at the
        destination, which (because of the fence) implies the payload is too.
        """
        data_ev = self.put_nbi(dst_buf, src, dst_rank, dst_index=dst_index)
        done = self.sim.event()

        def after_data(_ev):
            flag_ev = self._route(dst_rank, FLAG_BYTES)
            self._pending.setdefault(dst_rank, []).append(flag_ev)

            def after_flag(_e):
                flags.set(dst_rank, flag_idx, flag_value)
                done.succeed()

            flag_ev.add_callback(after_flag)

        data_ev.add_callback(after_data)
        return done

    def wait_until(self, flags: FlagArray, flag_idx: int,
                   value: int = 1) -> Event:
        """Poll a local flag until it reaches ``value`` (consumer side)."""
        return flags.wait_until(self.rank, flag_idx, value)
