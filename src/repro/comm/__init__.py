"""Communication substrate: symmetric heap, SHMEM API, collectives."""

from .algorithms import (
    allgather_time,
    alltoall_time,
    direct_allreduce_time,
    reduce_scatter_time,
    ring_allreduce_time,
    ring_schedule,
)
from .collectives import CollectiveLibrary
from .runtime import Communicator
from .shmem import FlagArray, ShmemContext
from .symheap import HeapError, SymmetricBuffer, SymmetricHeap

__all__ = [
    "CollectiveLibrary",
    "Communicator",
    "FlagArray",
    "HeapError",
    "ShmemContext",
    "SymmetricBuffer",
    "SymmetricHeap",
    "allgather_time",
    "alltoall_time",
    "direct_allreduce_time",
    "reduce_scatter_time",
    "ring_allreduce_time",
    "ring_schedule",
]
