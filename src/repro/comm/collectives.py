"""Baseline bulk-synchronous collective library (RCCL-like).

This is the comparison point for every fused operator in the paper: separate
computation and communication *kernels* executing at kernel boundaries.
The step schedules themselves live in :mod:`repro.collectives` — a
pluggable menu of ring/tree/direct/hierarchical AllReduce and
flat/pairwise/hierarchical All-to-All variants selected with the
``algorithm`` argument (``None`` keeps the legacy defaults the paper
evaluates against; ``"auto"`` picks by message size and topology).
Each collective here:

* produces functionally exact outputs (NumPy), and
* advances simulated time the way RCCL does on this hardware — a collective
  kernel launch per rank, blit-kernel copies over the intra-node fabric, or
  GPU-direct RDMA transfers between nodes.

All methods are generators meant to run inside a simulation process::

    def scenario(sim):
        outs = yield from lib.all_to_all(sends)
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..collectives import CommTopology, resolve_allreduce, resolve_alltoall
from ..hw.topology import Cluster
from ..sim import Simulator

__all__ = ["CollectiveLibrary"]


#: Fraction of raw fabric-link bandwidth a blit-kernel copy achieves.
#:
#: RCCL's intra-node collectives move data with copy ("blit") kernels that
#: stage payloads through intermediate buffers using a handful of CUs per
#: channel; measured bus bandwidths sit well below the link peak.  The
#: paper's zero-copy fused kernels bypass this entirely — GPU threads store
#: compute results straight into the peer's destination buffer — which is
#: the "zero-copy" benefit of Section III-B.
BLIT_EFFICIENCY = 0.55


class CollectiveLibrary:
    """Bulk-synchronous collectives over a :class:`~repro.hw.Cluster`."""

    def __init__(self, cluster: Cluster, launch_overhead: bool = True,
                 blit_efficiency: float = BLIT_EFFICIENCY):
        if not (0.0 < blit_efficiency <= 1.0):
            raise ValueError(
                f"blit_efficiency must be in (0, 1], got {blit_efficiency}")
        self.cluster = cluster
        self.sim: Simulator = cluster.sim
        self.launch_overhead = launch_overhead
        self.blit_efficiency = blit_efficiency

    # -- helpers ---------------------------------------------------------------
    def _launch_delay(self) -> float:
        if not self.launch_overhead:
            return 0.0
        return self.cluster.gpus[0].spec.kernel_launch_overhead

    def _local_copy_time(self, rank: int, nbytes: float) -> float:
        """Blit-kernel local copy: read + write through HBM at full occupancy."""
        gpu = self.cluster.gpu(rank)
        return 2.0 * nbytes / gpu.hbm.achieved_bandwidth(1.0)

    def _reduce_time(self, rank: int, n_elems: int, n_sources: int,
                     itemsize: int) -> float:
        """Element-wise reduction of ``n_sources`` buffers on ``rank``."""
        if n_sources <= 1:
            return 0.0
        gpu = self.cluster.gpu(rank)
        flops = float(n_elems) * (n_sources - 1)
        read_bytes = float(n_elems) * itemsize * n_sources
        flop_t = flops / gpu.spec.flop_rate("fp32")
        mem_t = read_bytes / gpu.hbm.achieved_bandwidth(1.0)
        return max(flop_t, mem_t)

    def _route(self, src_rank: int, dst_rank: int, nbytes: float):
        src = self.cluster.gpu(src_rank)
        dst = self.cluster.gpu(dst_rank)
        if src_rank == dst_rank:
            ev = self.sim.event()
            ev.succeed()
            return ev
        if src.node_id == dst.node_id:
            # Blit-kernel staging: the copy engine sustains only a fraction
            # of the link's peak, modelled as inflated on-the-wire time.
            return src.store_remote(dst, nbytes / self.blit_efficiency)
        return src.rdma_put(dst, nbytes)

    def _run_ranks(self, rank_gens):
        """Run one generator per rank concurrently; wait for all."""
        procs = [self.sim.process(g) for g in rank_gens]
        yield self.sim.all_of(procs)

    def topology(self) -> CommTopology:
        """This cluster's shape, for algorithm resolution/selection."""
        return CommTopology.from_cluster(self.cluster)

    # -- timing-only variants ---------------------------------------------------
    def all_to_all_bytes(self, chunk_bytes: float,
                         algorithm: Optional[str] = None) -> "Generator":
        """Timing-only All-to-All where every (src, dst) chunk is
        ``chunk_bytes``; no functional payload (paper-scale benchmarks).

        ``algorithm`` names a schedule from :mod:`repro.collectives`
        (``"flat"``, ``"pairwise"``, ``"hier"``, or ``"auto"`` for the
        size/topology selector); ``None`` is the legacy flat schedule.
        """
        if chunk_bytes < 0:
            raise ValueError("chunk_bytes must be >= 0")
        algo = resolve_alltoall(algorithm, self.topology(), chunk_bytes)
        yield from algo.des_run(self, self.topology(), chunk_bytes)
        return None

    def all_reduce_bytes(self, nbytes: float, n_elems: int, itemsize: int = 4,
                         algorithm: Optional[str] = None) -> "Generator":
        """Timing-only AllReduce of an ``nbytes`` buffer (``n_elems``
        elements) — same step structure as :meth:`all_reduce`.

        ``algorithm`` names a schedule from :mod:`repro.collectives`
        (``"direct"``, ``"ring"``, ``"tree"``, ``"hier"``, or ``"auto"``
        for the size/topology selector); ``None`` keeps the legacy
        default — direct inside a node, ring across nodes.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        topo = self.topology()
        algo = resolve_allreduce(algorithm, topo, nbytes)
        if topo.world == 1:
            yield self.sim.timeout(self._launch_delay())
            return None
        yield from algo.des_run(self, topo, nbytes, n_elems, itemsize)
        return None

    # -- All-to-All ------------------------------------------------------------
    def all_to_all(self, sends: Sequence[np.ndarray]) -> "Generator":
        """All-to-All: ``out[r][s] = sends[s][r]``.

        Each ``sends[r]`` must have leading dimension ``world``.
        """
        world = self.cluster.world_size
        if len(sends) != world:
            raise ValueError(f"need {world} send buffers, got {len(sends)}")
        for r, s in enumerate(sends):
            if s.shape[0] != world:
                raise ValueError(
                    f"send buffer {r} leading dim {s.shape[0]} != world {world}")
        outs = [np.stack([sends[s][r] for s in range(world)])
                for r in range(world)]

        chunk_bytes = float(sends[0][0].nbytes)
        launch = self._launch_delay()

        def rank_proc(r):
            if launch:
                yield self.sim.timeout(launch)
            evs = []
            for dst in range(world):
                if dst == r:
                    evs.append(self.sim.timeout(
                        self._local_copy_time(r, chunk_bytes)))
                else:
                    evs.append(self._route(r, dst, chunk_bytes))
            yield self.sim.all_of(evs)

        yield from self._run_ranks(rank_proc(r) for r in range(world))
        return outs

    # -- AllReduce ------------------------------------------------------------
    def all_reduce(self, arrays: Sequence[np.ndarray],
                   algorithm: Optional[str] = None) -> "Generator":
        """Sum-AllReduce across ranks; returns the reduced array per rank.

        ``algorithm``: any schedule registered in
        :mod:`repro.collectives` ("direct", "ring", "tree", "hier", or
        "auto").  Defaults to "direct" for a single node, "ring"
        otherwise.  The reduced values are schedule-independent; the
        algorithm shapes the simulated timing.
        """
        world = self.cluster.world_size
        if len(arrays) != world:
            raise ValueError(f"need {world} arrays, got {len(arrays)}")
        shapes = {a.shape for a in arrays}
        if len(shapes) != 1:
            raise ValueError(f"mismatched AllReduce shapes: {shapes}")

        total = np.sum(np.stack(arrays), axis=0, dtype=arrays[0].dtype)
        outs = [total.copy() for _ in range(world)]
        if algorithm is None:
            algorithm = "direct" if self.cluster.num_nodes == 1 else "ring"
        if algorithm not in ("direct", "ring"):
            # Non-legacy schedules: validate through the registry and run
            # the matching timing-only schedule (same rounds, no payload
            # re-walk — the functional result is already in ``outs``).
            yield from self.all_reduce_bytes(
                float(arrays[0].nbytes), int(arrays[0].size),
                itemsize=arrays[0].dtype.itemsize, algorithm=algorithm)
            return outs
        if world == 1:
            yield self.sim.timeout(self._launch_delay())
            return outs

        nbytes = float(arrays[0].nbytes)
        n_elems = int(arrays[0].size)
        itemsize = arrays[0].dtype.itemsize
        launch = self._launch_delay()

        if algorithm == "direct":
            chunk_bytes = nbytes / world
            # Same rounding as the timing-only path (all_reduce_bytes),
            # so both spellings of one schedule report identical times.
            chunk_elems = max(1, n_elems // world)

            def rank_proc(r):
                if launch:
                    yield self.sim.timeout(launch)
                # Phase 1 — reduce-scatter: send my copy of chunk j to rank j.
                evs = [self._route(r, dst, chunk_bytes)
                       for dst in range(world) if dst != r]
                yield self.sim.all_of(evs)
                yield self.sim.timeout(self._reduce_time(
                    r, chunk_elems, world, itemsize))
                # Phase 2 — all-gather: broadcast my reduced chunk.
                evs = [self._route(r, dst, chunk_bytes)
                       for dst in range(world) if dst != r]
                yield self.sim.all_of(evs)

            yield from self._run_ranks(rank_proc(r) for r in range(world))
            return outs

        # Ring: 2(p-1) lock-stepped rounds of n/p chunks.
        chunk_bytes = nbytes / world
        chunk_elems = max(1, n_elems // world)

        def ring_round(reduce_phase: bool):
            def rank_proc(r):
                yield self._route(r, (r + 1) % world, chunk_bytes)
                if reduce_phase:
                    yield self.sim.timeout(self._reduce_time(
                        r, chunk_elems, 2, itemsize))
            yield from self._run_ranks(rank_proc(r) for r in range(world))

        if launch:
            yield self.sim.timeout(launch)
        for _ in range(world - 1):
            yield from ring_round(reduce_phase=True)
        for _ in range(world - 1):
            yield from ring_round(reduce_phase=False)
        return outs

    # -- ReduceScatter ---------------------------------------------------------
    def reduce_scatter(self, arrays: Sequence[np.ndarray]) -> "Generator":
        """out[r] = sum_s arrays[s][r]; inputs have leading dim ``world``."""
        world = self.cluster.world_size
        if len(arrays) != world:
            raise ValueError(f"need {world} arrays, got {len(arrays)}")
        for a in arrays:
            if a.shape[0] != world:
                raise ValueError("reduce_scatter inputs need leading dim world")
        outs = [np.sum(np.stack([arrays[s][r] for s in range(world)]), axis=0,
                       dtype=arrays[0].dtype)
                for r in range(world)]
        if world == 1:
            yield self.sim.timeout(self._launch_delay())
            return outs

        chunk_bytes = float(arrays[0][0].nbytes)
        chunk_elems = int(arrays[0][0].size)
        itemsize = arrays[0].dtype.itemsize
        launch = self._launch_delay()

        def rank_proc(r):
            if launch:
                yield self.sim.timeout(launch)
            evs = [self._route(r, dst, chunk_bytes)
                   for dst in range(world) if dst != r]
            yield self.sim.all_of(evs)
            yield self.sim.timeout(self._reduce_time(
                r, chunk_elems, world, itemsize))

        yield from self._run_ranks(rank_proc(r) for r in range(world))
        return outs

    # -- AllGather ------------------------------------------------------------
    def all_gather(self, chunks: Sequence[np.ndarray]) -> "Generator":
        """out[r] = stack(chunks[0..world-1]) on every rank."""
        world = self.cluster.world_size
        if len(chunks) != world:
            raise ValueError(f"need {world} chunks, got {len(chunks)}")
        gathered = np.stack(list(chunks))
        outs = [gathered.copy() for _ in range(world)]
        if world == 1:
            yield self.sim.timeout(self._launch_delay())
            return outs

        chunk_bytes = float(chunks[0].nbytes)
        launch = self._launch_delay()

        def rank_proc(r):
            if launch:
                yield self.sim.timeout(launch)
            evs = [self._route(r, dst, chunk_bytes)
                   for dst in range(world) if dst != r]
            yield self.sim.all_of(evs)

        yield from self._run_ranks(rank_proc(r) for r in range(world))
        return outs

    # -- Broadcast ------------------------------------------------------------
    def broadcast(self, array: np.ndarray, root: int = 0) -> "Generator":
        """Copy ``array`` from ``root`` to every rank."""
        world = self.cluster.world_size
        if not (0 <= root < world):
            raise ValueError(f"bad root {root}")
        outs = [array.copy() for _ in range(world)]
        nbytes = float(array.nbytes)
        if self.launch_overhead:
            yield self.sim.timeout(self._launch_delay())
        evs = [self._route(root, dst, nbytes)
               for dst in range(world) if dst != root]
        yield self.sim.all_of(evs)
        return outs
