"""Analytic collective cost models and step schedules.

Shared between the executable baseline library (:mod:`repro.comm.collectives`)
and the scale-out execution-graph simulator (:mod:`repro.astra`).  The forms
are the standard alpha-beta models:

* ring AllReduce:      ``2 (p-1) * (n/(p*B) + L)``
* direct two-phase AllReduce (fully connected): ``2 * (n*(p-1)/(p*B) + L)``
* pairwise All-to-All: each rank sends ``(p-1)`` chunks of ``n/p``.
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = [
    "ring_allreduce_time",
    "direct_allreduce_time",
    "alltoall_time",
    "allgather_time",
    "reduce_scatter_time",
    "ring_schedule",
]


def _check(nbytes: float, world: int, bandwidth: float) -> None:
    if nbytes < 0:
        raise ValueError(f"negative payload {nbytes}")
    if world < 1:
        raise ValueError(f"world size must be >= 1, got {world}")
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")


def ring_allreduce_time(nbytes: float, world: int, bandwidth: float,
                        latency: float = 0.0) -> float:
    """Ring AllReduce of an ``nbytes`` buffer: 2(p-1) steps of n/p."""
    _check(nbytes, world, bandwidth)
    if world == 1:
        return 0.0
    chunk = nbytes / world
    steps = 2 * (world - 1)
    return steps * (chunk / bandwidth + latency)


def direct_allreduce_time(nbytes: float, world: int, bandwidth: float,
                          latency: float = 0.0) -> float:
    """Two-phase direct AllReduce on a fully-connected topology.

    Reduce-scatter: every rank simultaneously sends (p-1) chunks of n/p out
    of distinct links -> time n*(p-1)/(p*B).  All-gather mirrors it.
    """
    _check(nbytes, world, bandwidth)
    if world == 1:
        return 0.0
    phase = nbytes * (world - 1) / (world * bandwidth) + latency
    return 2 * phase


def alltoall_time(nbytes_per_rank: float, world: int, bandwidth: float,
                  latency: float = 0.0, links_per_rank: int = 1) -> float:
    """Pairwise All-to-All: each rank exchanges n/p with every peer.

    ``nbytes_per_rank`` is the total send-buffer size per rank;
    ``links_per_rank`` models how many independent ports can stream
    concurrently (fully-connected fabric: p-1; single NIC: 1).
    """
    _check(nbytes_per_rank, world, bandwidth)
    if links_per_rank < 1:
        raise ValueError("links_per_rank must be >= 1")
    if world == 1:
        return 0.0
    chunk = nbytes_per_rank / world
    sends = world - 1
    rounds = -(-sends // links_per_rank)  # ceil
    return rounds * (chunk / bandwidth) + latency


def allgather_time(nbytes_chunk: float, world: int, bandwidth: float,
                   latency: float = 0.0) -> float:
    """Ring AllGather of per-rank chunks of ``nbytes_chunk``."""
    _check(nbytes_chunk, world, bandwidth)
    if world == 1:
        return 0.0
    return (world - 1) * (nbytes_chunk / bandwidth + latency)


def reduce_scatter_time(nbytes: float, world: int, bandwidth: float,
                        latency: float = 0.0) -> float:
    """Ring ReduceScatter of an ``nbytes`` buffer."""
    _check(nbytes, world, bandwidth)
    if world == 1:
        return 0.0
    chunk = nbytes / world
    return (world - 1) * (chunk / bandwidth + latency)


def ring_schedule(world: int) -> List[List[Tuple[int, int]]]:
    """Step schedule for a ring: step s has sends (r -> (r+1) % p)."""
    if world < 1:
        raise ValueError("world size must be >= 1")
    if world == 1:
        return []
    return [[(r, (r + 1) % world) for r in range(world)]
            for _ in range(world - 1)]
