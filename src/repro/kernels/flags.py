"""WG-completion bookkeeping: the per-slice ``WG_Done`` bitmask.

The paper tracks, per output slice, which of the logical WGs computing that
slice have finished; the *last* finisher issues the remote PUT for the whole
slice (Section III-A, "Book-keeping Flags" / "Synchronization").  The real
kernels reduce the bitmask with cross-lane operations instead of an
inter-WG barrier; here the single-threaded simulator makes the
test-and-set atomic by construction, and the cross-lane cost is charged by
the caller via ``GpuSpec.flag_op_latency``.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["WgDoneBitmask"]


class WgDoneBitmask:
    """Per-slice completion bitmask local to one GPU."""

    def __init__(self):
        self._expected: Dict[int, int] = {}
        self._done: Dict[int, int] = {}

    def register(self, slice_id: int, n_wgs: int) -> None:
        """Declare that ``slice_id`` is produced by ``n_wgs`` logical WGs."""
        if n_wgs < 1:
            raise ValueError(f"slice needs >= 1 WG, got {n_wgs}")
        if slice_id in self._expected:
            raise ValueError(f"slice {slice_id} already registered")
        self._expected[slice_id] = n_wgs
        self._done[slice_id] = 0

    def set_done(self, slice_id: int, wg_index: int) -> bool:
        """Mark one WG of the slice complete; True iff it was the last.

        ``wg_index`` is the WG's position within the slice (0-based); each
        index may complete only once.
        """
        try:
            expected = self._expected[slice_id]
        except KeyError:
            raise KeyError(f"slice {slice_id} was never registered") from None
        if not (0 <= wg_index < expected):
            raise ValueError(
                f"wg_index {wg_index} out of range for slice {slice_id} "
                f"({expected} WGs)")
        mask = 1 << wg_index
        if self._done[slice_id] & mask:
            raise ValueError(
                f"WG {wg_index} of slice {slice_id} completed twice")
        self._done[slice_id] |= mask
        return self._done[slice_id] == (1 << expected) - 1

    def is_complete(self, slice_id: int) -> bool:
        expected = self._expected.get(slice_id)
        if expected is None:
            return False
        return self._done[slice_id] == (1 << expected) - 1

    def pending_slices(self) -> List[int]:
        return [s for s in self._expected if not self.is_complete(s)]

    def __len__(self) -> int:
        return len(self._expected)
