"""Persistent-workgroup kernel runtime.

Implements the paper's execution model (Section III-A): a kernel is launched
with a *fixed, input-independent grid* of physical workgroups (at most the
device's occupancy limit).  Each physical WG runs a task loop, executing
logical-WG tasks pulled from a shared queue; after each task it runs the
task's ``on_complete`` hook (where fused kernels issue communication), and
after the queue drains it runs the kernel's per-slot ``epilogue`` (where
fused kernels poll their subset of ``sliceRdy`` flags).

The same runtime executes baseline compute kernels — with no hooks, it is
timing-equivalent to an ordinary bulk-synchronous launch under this model.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generator, List, Optional, Sequence

from ..hw.gpu import Gpu, KernelResources, OccupancyInfo, WgCost
from ..sim import Process, Simulator, TraceRecorder
from .grid import SlotContext, WgTask

__all__ = ["PersistentKernel", "run_kernel", "make_uniform_tasks"]

#: Task loops at most this many rounds long get a balanced grid; longer
#: loops amortize their tail and launch at full occupancy.
_BALANCE_ROUNDS = 8


class PersistentKernel:
    """A persistent kernel bound to one GPU, ready to launch."""

    def __init__(self, gpu: Gpu, resources: KernelResources,
                 tasks: Sequence[WgTask], name: str = "kernel",
                 occupancy_limit: Optional[float] = None,
                 epilogue: Optional[Callable[[SlotContext],
                                             Optional[Generator]]] = None,
                 trace: Optional[TraceRecorder] = None):
        """
        Args:
            occupancy_limit: optional fraction in (0, 1] of the kernel's own
                achievable occupancy; persistent kernels choose their grid
                size, which is the knob of the paper's Fig. 13 sweep.
            epilogue: per-physical-WG generator run after the task queue
                drains (e.g. waiting on a distinct subset of sliceRdy flags).
        """
        if not tasks:
            raise ValueError("kernel needs at least one task")
        self.gpu = gpu
        self.sim: Simulator = gpu.sim
        self.resources = resources
        self.tasks = list(tasks)
        self.name = name
        self.epilogue = epilogue
        self.trace = trace if trace is not None else gpu.trace
        occ = gpu.occupancy(resources)
        if occupancy_limit is not None:
            if not (0.0 < occupancy_limit <= 1.0):
                raise ValueError(
                    f"occupancy_limit must be in (0, 1], got {occupancy_limit}")
            occ = occ.limited_to(
                max(1, int(round(occ.resident_wgs * occupancy_limit))))
            if len(self.tasks) < occ.resident_wgs:
                occ = occ.limited_to(len(self.tasks))
        else:
            # Grid-size balancing: a persistent kernel knows its task count
            # up front, so when the task loop is short it launches the
            # largest grid (<= residency limit) that divides the
            # *work-bearing* tasks into whole rounds — avoiding a tail
            # round in which most physical WGs idle.  For long task loops
            # (> _BALANCE_ROUNDS rounds) the tail is amortized and the
            # kernel launches at full occupancy, as the paper's fused
            # embedding kernel does.  Zero-cost bookkeeping tasks do not
            # drive the grid size.
            n_work = sum(1 for t in self.tasks
                         if t.cost.flops > 0 or t.cost.bytes > 0)
            n_work = n_work or len(self.tasks)
            rounds = max(1, -(-n_work // occ.resident_wgs))
            if rounds <= _BALANCE_ROUNDS:
                balanced = min(occ.resident_wgs, -(-n_work // rounds))
                occ = occ.limited_to(balanced)
        self.occupancy: OccupancyInfo = occ
        self.n_slots = min(occ.resident_wgs, len(self.tasks))

    # -- execution ------------------------------------------------------------
    def launch(self) -> Process:
        """Launch the kernel; returns the process that completes with it."""
        return self.sim.process(self.run(), name=self.name)

    def run(self) -> Generator:
        """Generator form, for composing inside an existing process."""
        spec = self.gpu.spec
        self.trace.record(self.sim.now, "kernel_launch", self.gpu.name,
                          kernel=self.name, n_tasks=len(self.tasks),
                          n_slots=self.n_slots,
                          occupancy=self.occupancy.fraction)
        yield self.sim.timeout(spec.kernel_launch_overhead)
        queue = deque(self.tasks)
        slots = [
            self.sim.process(
                self._slot_loop(SlotContext(self.sim, self.gpu, self,
                                            slot_id=s, occupancy=self.occupancy,
                                            trace=self.trace), queue),
                name=f"{self.name}/slot{s}")
            for s in range(self.n_slots)
        ]
        yield self.sim.all_of(slots)
        self.trace.record(self.sim.now, "kernel_end", self.gpu.name,
                          kernel=self.name)

    def _slot_loop(self, ctx: SlotContext, queue: deque) -> Generator:
        spec = self.gpu.spec
        while queue:
            task = queue.popleft()
            ctx.record("wg_start", task=task.task_id, **task.meta)
            if task.compute is not None:
                task.compute()
            dur = task.repeat * (
                self.gpu.wg_duration(task.cost, self.occupancy)
                + spec.wg_dispatch_overhead)
            yield self.sim.timeout(dur)
            ctx.record("wg_end", task=task.task_id)
            if task.on_complete is not None:
                hook = task.on_complete(ctx, task)
                if hook is not None:
                    yield from hook
        if self.epilogue is not None:
            epi = self.epilogue(ctx)
            if epi is not None:
                ctx.record("wait_start")
                yield from epi
                ctx.record("wait_end")

    # -- estimates ------------------------------------------------------------
    def compute_time_estimate(self) -> float:
        """Closed-form compute-only estimate (ignores hooks/epilogues)."""
        total = sum(
            t.repeat * (self.gpu.wg_duration(t.cost, self.occupancy)
                        + self.gpu.spec.wg_dispatch_overhead)
            for t in self.tasks)
        return (self.gpu.spec.kernel_launch_overhead
                + total / max(self.n_slots, 1))


def make_uniform_tasks(n: int, cost: WgCost, repeat: int = 1,
                       **meta) -> List[WgTask]:
    """``n`` identical tasks (typical regular kernels)."""
    if n < 1:
        raise ValueError("need at least one task")
    return [WgTask(task_id=i, cost=cost, repeat=repeat, meta=dict(meta))
            for i in range(n)]


def bulk_kernel_time(gpu: Gpu, n_wgs: int, cost: WgCost,
                     resources: KernelResources) -> float:
    """Closed-form time of a bulk-synchronous kernel of ``n_wgs`` uniform WGs.

    The kernel runs whole rounds of resident WGs at the kernel's occupancy;
    the remainder (tail) round runs at the *tail's* reduced occupancy —
    fewer resident WGs means each gets a larger share of a (ramp-limited)
    smaller aggregate bandwidth.  When the whole grid is smaller than the
    residency limit, the entire kernel is one such reduced-occupancy round
    — the effect behind the paper's observation that small batch sizes
    leave the baseline's per-table embedding kernels underutilized
    (Fig. 12).
    """
    if n_wgs < 1:
        raise ValueError("n_wgs must be >= 1")
    occ = gpu.occupancy(resources)
    total = gpu.spec.kernel_launch_overhead
    full_rounds, tail = divmod(n_wgs, occ.resident_wgs)
    if full_rounds:
        total += full_rounds * (gpu.wg_duration(cost, occ)
                                + gpu.spec.wg_dispatch_overhead)
    if tail:
        tail_occ = occ.limited_to(tail)
        total += (gpu.wg_duration(cost, tail_occ)
                  + gpu.spec.wg_dispatch_overhead)
    return total


def run_kernel(gpu: Gpu, resources: KernelResources, tasks: Sequence[WgTask],
               name: str = "kernel",
               trace: Optional[TraceRecorder] = None) -> Generator:
    """Convenience: execute a plain bulk-synchronous kernel (no hooks)."""
    kern = PersistentKernel(gpu, resources, tasks, name=name, trace=trace)
    yield from kern.run()
