"""Persistent-workgroup kernel runtime.

Implements the paper's execution model (Section III-A): a kernel is launched
with a *fixed, input-independent grid* of physical workgroups (at most the
device's occupancy limit).  Each physical WG runs a task loop, executing
logical-WG tasks pulled from a shared queue; after each task it runs the
task's ``on_complete`` hook (where fused kernels issue communication), and
after the queue drains it runs the kernel's per-slot ``epilogue`` (where
fused kernels poll their subset of ``sliceRdy`` flags).

The same runtime executes baseline compute kernels — with no hooks, it is
timing-equivalent to an ordinary bulk-synchronous launch under this model.

Fast path
---------

Runs of tasks that carry no ``compute`` payload and no ``on_complete`` hook
and share the same ``(cost, repeat)`` collapse into one scheduled wake-up
per physical WG instead of one per task.  Because the task queue is shared,
a slot may only swallow tasks it would actually have been assigned; the two
cases where that assignment is known up front are

* a *fully uniform* kernel (every task identical, hook- and compute-free):
  greedy pulls from the shared queue are exactly round-robin, so slot ``s``
  of ``n`` executes ``ceil((R - s) / n)`` tasks back to back, and
* a single-slot kernel, where any consecutive run belongs to the one slot.

With tracing disabled this is observably equivalent — no intermediate event
exists that anything could react to — and the batch lands on exactly the
timestamps the per-task path produces (the end time is accumulated with the
same sequence of float additions and scheduled absolutely).  Set
``REPRO_SIM_FASTPATH=0`` in the environment to force per-task stepping.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Callable, Generator, List, Optional, Sequence

from ..hw.gpu import Gpu, KernelResources, OccupancyInfo, WgCost
from ..obs.metrics import get_metrics
from ..sim import Process, Simulator, TraceRecorder
from .grid import SlotContext, WgTask

__all__ = ["PersistentKernel", "run_kernel", "make_uniform_tasks",
           "fastpath_enabled"]

#: Task loops at most this many rounds long get a balanced grid; longer
#: loops amortize their tail and launch at full occupancy.
_BALANCE_ROUNDS = 8


def fastpath_enabled() -> bool:
    """Whether run-length task batching is active (``REPRO_SIM_FASTPATH``).

    Consulted at every kernel launch, so flipping the environment variable
    mid-process (e.g. from a test) takes effect immediately.
    """
    return os.environ.get("REPRO_SIM_FASTPATH", "1") != "0"


class PersistentKernel:
    """A persistent kernel bound to one GPU, ready to launch."""

    def __init__(self, gpu: Gpu, resources: KernelResources,
                 tasks: Sequence[WgTask], name: str = "kernel",
                 occupancy_limit: Optional[float] = None,
                 epilogue: Optional[Callable[[SlotContext],
                                             Optional[Generator]]] = None,
                 trace: Optional[TraceRecorder] = None):
        """
        Args:
            occupancy_limit: optional fraction in (0, 1] of the kernel's own
                achievable occupancy; persistent kernels choose their grid
                size, which is the knob of the paper's Fig. 13 sweep.
            epilogue: per-physical-WG generator run after the task queue
                drains (e.g. waiting on a distinct subset of sliceRdy flags).
        """
        if not tasks:
            raise ValueError("kernel needs at least one task")
        self.gpu = gpu
        self.sim: Simulator = gpu.sim
        self.resources = resources
        self.tasks = list(tasks)
        self.name = name
        self.epilogue = epilogue
        self.trace = trace if trace is not None else gpu.trace
        occ = gpu.occupancy(resources)
        if occupancy_limit is not None:
            if not (0.0 < occupancy_limit <= 1.0):
                raise ValueError(
                    f"occupancy_limit must be in (0, 1], got {occupancy_limit}")
            occ = occ.limited_to(
                max(1, int(round(occ.resident_wgs * occupancy_limit))))
            if len(self.tasks) < occ.resident_wgs:
                occ = occ.limited_to(len(self.tasks))
        else:
            # Grid-size balancing: a persistent kernel knows its task count
            # up front, so when the task loop is short it launches the
            # largest grid (<= residency limit) that divides the
            # *work-bearing* tasks into whole rounds — avoiding a tail
            # round in which most physical WGs idle.  For long task loops
            # (> _BALANCE_ROUNDS rounds) the tail is amortized and the
            # kernel launches at full occupancy, as the paper's fused
            # embedding kernel does.  Zero-cost bookkeeping tasks do not
            # drive the grid size.
            n_work = sum(1 for t in self.tasks
                         if t.cost.flops > 0 or t.cost.bytes > 0)
            n_work = n_work or len(self.tasks)
            rounds = max(1, -(-n_work // occ.resident_wgs))
            if rounds <= _BALANCE_ROUNDS:
                balanced = min(occ.resident_wgs, -(-n_work // rounds))
                occ = occ.limited_to(balanced)
        self.occupancy: OccupancyInfo = occ
        self.n_slots = min(occ.resident_wgs, len(self.tasks))

    # -- execution ------------------------------------------------------------
    def launch(self) -> Process:
        """Launch the kernel; returns the process that completes with it."""
        return self.sim.process(self.run(), name=self.name)

    def run(self) -> Generator:
        """Generator form, for composing inside an existing process."""
        spec = self.gpu.spec
        if self.trace.enabled:
            self.trace.record(self.sim.now, "kernel_launch", self.gpu.name,
                              kernel=self.name, n_tasks=len(self.tasks),
                              n_slots=self.n_slots,
                              occupancy=self.occupancy.fraction)
        yield self.sim.timeout(spec.kernel_launch_overhead)
        fast = fastpath_enabled() and not self.trace.enabled
        m = get_metrics()
        if m.enabled:
            m.inc("kernel.launches")
            m.inc("kernel.tasks", len(self.tasks))
        if fast and self.n_slots > 1 and self._tasks_uniform_batchable():
            if m.enabled:
                m.inc("kernel.fastpath_uniform_kernels")
                m.inc("kernel.fastpath_uniform_tasks", len(self.tasks))
            yield from self._run_uniform_fast()
        else:
            queue = deque(self.tasks)
            slots = [
                self.sim.process(
                    self._slot_loop(
                        SlotContext(self.sim, self.gpu, self,
                                    slot_id=s, occupancy=self.occupancy,
                                    trace=self.trace), queue, fast),
                    name=f"{self.name}/slot{s}")
                for s in range(self.n_slots)
            ]
            yield self.sim.all_of(slots)
        if self.trace.enabled:
            self.trace.record(self.sim.now, "kernel_end", self.gpu.name,
                              kernel=self.name)

    def _tasks_uniform_batchable(self) -> bool:
        """True if every task is identical, hook-free and compute-free."""
        first = self.tasks[0]
        if first.on_complete is not None or first.compute is not None:
            return False
        cost, repeat = first.cost, first.repeat
        for t in self.tasks:
            if (t.on_complete is not None or t.compute is not None
                    or t.repeat != repeat
                    or not (t.cost is cost or t.cost == cost)):
                return False
        return True

    def _task_duration(self, task: WgTask) -> float:
        return task.repeat * (self.gpu.wg_duration(task.cost, self.occupancy)
                              + self.gpu.spec.wg_dispatch_overhead)

    def _run_uniform_fast(self) -> Generator:
        """Fast-forward a fully uniform kernel without per-task events.

        Greedy pulls from the shared queue are round-robin here, so slot
        ``s`` executes ``q + 1`` tasks if ``s < r`` else ``q`` (with ``q, r
        = divmod(n_tasks, n_slots)``), back to back.  End times replay the
        per-task ``now + dur`` float accumulation exactly.
        """
        sim = self.sim
        dur = self._task_duration(self.tasks[0])
        q, r = divmod(len(self.tasks), self.n_slots)
        if self.epilogue is None:
            # Only the joint finish is observable: the slot(s) with the
            # largest task count end last.
            end = sim.now
            for _ in range(q + (1 if r else 0)):
                end += dur
            yield sim.timeout_at(end)
            return
        slots = [
            self.sim.process(
                self._slot_fast(SlotContext(self.sim, self.gpu, self,
                                            slot_id=s, occupancy=self.occupancy,
                                            trace=self.trace),
                                q + (1 if s < r else 0), dur),
                name=f"{self.name}/slot{s}")
            for s in range(self.n_slots)
        ]
        yield self.sim.all_of(slots)

    def _slot_fast(self, ctx: SlotContext, count: int, dur: float) -> Generator:
        sim = self.sim
        end = sim.now
        for _ in range(count):
            end += dur
        yield sim.timeout_at(end)
        epi = self.epilogue(ctx)
        if epi is not None:
            yield from epi

    def _slot_loop(self, ctx: SlotContext, queue: deque,
                   fast: bool = False) -> Generator:
        sim = self.sim
        occ = self.occupancy
        wg_duration = self.gpu.wg_duration
        dispatch = self.gpu.spec.wg_dispatch_overhead
        tracing = self.trace.enabled
        # Run-length batching inside one slot is only sound when no other
        # slot contends for the queue (see module docstring).
        batch = fast and self.n_slots == 1
        batched_tasks = 0
        popleft = queue.popleft
        while queue:
            task = popleft()
            if tracing:
                ctx.record("wg_start", task=task.task_id, **task.meta)
            if task.compute is not None:
                task.compute()
            dur = task.repeat * (wg_duration(task.cost, occ) + dispatch)
            if batch and task.on_complete is None:
                # Swallow the run of consecutive tasks with no side effects
                # and the same duration.  ``end`` replays the per-task
                # ``now + dur`` accumulation so the wake-up lands on the
                # bit-identical timestamp, scheduled absolutely.
                end = sim.now + dur
                batched_tasks += 1
                cost, repeat = task.cost, task.repeat
                while queue:
                    nxt = queue[0]
                    if (nxt.on_complete is not None
                            or nxt.compute is not None
                            or nxt.repeat != repeat
                            or not (nxt.cost is cost or nxt.cost == cost)):
                        break
                    popleft()
                    batched_tasks += 1
                    end += dur
                yield sim.timeout_at(end)
                continue
            yield sim.timeout(dur)
            if tracing:
                ctx.record("wg_end", task=task.task_id)
            if task.on_complete is not None:
                hook = task.on_complete(ctx, task)
                if hook is not None:
                    yield from hook
        if batched_tasks:
            m = get_metrics()
            if m.enabled:
                m.inc("kernel.fastpath_batched_tasks", batched_tasks)
        if self.epilogue is not None:
            epi = self.epilogue(ctx)
            if epi is not None:
                ctx.record("wait_start")
                yield from epi
                ctx.record("wait_end")

    # -- estimates ------------------------------------------------------------
    def compute_time_estimate(self) -> float:
        """Closed-form compute-only estimate (ignores hooks/epilogues)."""
        total = sum(
            t.repeat * (self.gpu.wg_duration(t.cost, self.occupancy)
                        + self.gpu.spec.wg_dispatch_overhead)
            for t in self.tasks)
        return (self.gpu.spec.kernel_launch_overhead
                + total / max(self.n_slots, 1))


def make_uniform_tasks(n: int, cost: WgCost, repeat: int = 1,
                       **meta) -> List[WgTask]:
    """``n`` identical tasks (typical regular kernels)."""
    if n < 1:
        raise ValueError("need at least one task")
    return [WgTask(task_id=i, cost=cost, repeat=repeat, meta=dict(meta))
            for i in range(n)]


def bulk_kernel_time(gpu: Gpu, n_wgs: int, cost: WgCost,
                     resources: KernelResources) -> float:
    """Closed-form time of a bulk-synchronous kernel of ``n_wgs`` uniform WGs.

    The kernel runs whole rounds of resident WGs at the kernel's occupancy;
    the remainder (tail) round runs at the *tail's* reduced occupancy —
    fewer resident WGs means each gets a larger share of a (ramp-limited)
    smaller aggregate bandwidth.  When the whole grid is smaller than the
    residency limit, the entire kernel is one such reduced-occupancy round
    — the effect behind the paper's observation that small batch sizes
    leave the baseline's per-table embedding kernels underutilized
    (Fig. 12).
    """
    if n_wgs < 1:
        raise ValueError("n_wgs must be >= 1")
    occ = gpu.occupancy(resources)
    total = gpu.spec.kernel_launch_overhead
    full_rounds, tail = divmod(n_wgs, occ.resident_wgs)
    if full_rounds:
        total += full_rounds * (gpu.wg_duration(cost, occ)
                                + gpu.spec.wg_dispatch_overhead)
    if tail:
        tail_occ = occ.limited_to(tail)
        total += (gpu.wg_duration(cost, tail_occ)
                  + gpu.spec.wg_dispatch_overhead)
    return total


def run_kernel(gpu: Gpu, resources: KernelResources, tasks: Sequence[WgTask],
               name: str = "kernel",
               trace: Optional[TraceRecorder] = None) -> Generator:
    """Convenience: execute a plain bulk-synchronous kernel (no hooks)."""
    kern = PersistentKernel(gpu, resources, tasks, name=name, trace=trace)
    yield from kern.run()
