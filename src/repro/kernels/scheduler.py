"""Logical-WG scheduling policies.

The paper's *communication-aware scheduling* (Sections III-A/IV-C, Fig. 14)
executes logical WGs that produce remotely-communicated slices *before* the
ones producing locally-consumed slices, maximizing the window in which
remote transfers overlap with remaining computation.  The baseline
*communication-oblivious* order starts from WG (0,0,0) and proceeds
sequentially.

Policies are pure functions over task lists (stable — they never reorder
within the remote or local groups), so they compose with any kernel.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from .grid import WgTask

__all__ = ["comm_aware_order", "oblivious_order", "SCHEDULERS", "get_scheduler"]


def oblivious_order(tasks: Sequence[WgTask]) -> List[WgTask]:
    """Baseline: natural task order (WG (0,0,0) onward)."""
    return list(tasks)


def comm_aware_order(tasks: Sequence[WgTask]) -> List[WgTask]:
    """Remote-slice tasks first, each group in stable original order."""
    remote = [t for t in tasks if t.is_remote]
    local = [t for t in tasks if not t.is_remote]
    return remote + local


SCHEDULERS: dict = {
    "comm_aware": comm_aware_order,
    "oblivious": oblivious_order,
}


def get_scheduler(name: str) -> Callable[[Sequence[WgTask]], List[WgTask]]:
    try:
        return SCHEDULERS[name]
    except KeyError:
        raise KeyError(f"unknown scheduler {name!r}; "
                       f"choose from {sorted(SCHEDULERS)}") from None
