"""Logical grids and workgroup tasks.

The paper's kernels (both baseline and fused) are expressed as a list of
:class:`WgTask` — one per *logical* workgroup (or per small cluster of
logical WGs folded together via ``repeat``).  A persistent kernel multiplexes
these tasks onto a fixed number of long-running *physical* WGs
(:mod:`repro.kernels.kernel`).

A task carries:

* ``cost`` — the roofline cost of one logical WG (FLOPs + HBM bytes),
* ``compute`` — optional functional effect (NumPy) applied when the task
  executes, so operators are numerically verifiable,
* ``on_complete`` — optional hook (generator) run by the executing physical
  WG right after the task's compute time elapses.  This is where fused
  kernels issue their non-blocking PUTs, set WG-done bits, and wait on
  flags.  Yielding events inside the hook blocks *that physical WG only* —
  exactly the paper's execution model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional

from ..hw.gpu import Gpu, OccupancyInfo, WgCost
from ..sim import Simulator, TraceRecorder

__all__ = ["WgTask", "SlotContext"]


@dataclass(slots=True)
class WgTask:
    """One schedulable unit of a kernel (a logical WG or WG-cluster)."""

    task_id: int
    cost: WgCost
    repeat: int = 1
    meta: Dict[str, Any] = field(default_factory=dict)
    compute: Optional[Callable[[], None]] = None
    on_complete: Optional[Callable[["SlotContext", "WgTask"],
                                   Optional[Generator]]] = None

    def __post_init__(self):
        if self.repeat < 1:
            raise ValueError(f"repeat must be >= 1, got {self.repeat}")

    @property
    def is_remote(self) -> bool:
        """Convention: tasks whose output leaves this GPU set meta['remote']."""
        return bool(self.meta.get("remote", False))


@dataclass(slots=True)
class SlotContext:
    """Execution context handed to task hooks by a physical WG slot."""

    sim: Simulator
    gpu: Gpu
    kernel: "PersistentKernel"
    slot_id: int
    occupancy: OccupancyInfo
    trace: TraceRecorder

    @property
    def actor(self) -> str:
        return f"{self.gpu.name}/wg{self.slot_id}"

    def charge(self, seconds: float):
        """Spend WG time (API latency, bookkeeping) — yield the result."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        return self.sim.timeout(seconds)

    def record(self, kind: str, **detail) -> None:
        if self.trace.enabled:
            self.trace.record(self.sim.now, kind, self.actor, **detail)
