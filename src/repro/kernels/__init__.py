"""Kernel execution layer: grids, persistent WGs, occupancy, scheduling."""

from .flags import WgDoneBitmask
from .grid import SlotContext, WgTask
from .kernel import PersistentKernel, bulk_kernel_time, make_uniform_tasks, run_kernel
from .occupancy import max_active_wgs, occupancy_sweep_points, suggest_grid
from .scheduler import SCHEDULERS, comm_aware_order, get_scheduler, oblivious_order

__all__ = [
    "PersistentKernel",
    "SCHEDULERS",
    "SlotContext",
    "WgDoneBitmask",
    "WgTask",
    "bulk_kernel_time",
    "comm_aware_order",
    "get_scheduler",
    "make_uniform_tasks",
    "max_active_wgs",
    "oblivious_order",
    "occupancy_sweep_points",
    "run_kernel",
    "suggest_grid",
]
