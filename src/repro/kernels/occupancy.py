"""Occupancy API helpers (the analogue of ``hipOccupancyMaxActiveBlocks``).

The paper launches persistent kernels with a fixed grid no larger than the
occupancy limit returned by the HIP occupancy API; these helpers expose
that query plus the sweep used in Fig. 13.
"""

from __future__ import annotations

from typing import List, Tuple

from ..hw.gpu import Gpu, KernelResources, OccupancyInfo

__all__ = ["max_active_wgs", "suggest_grid", "occupancy_sweep_points"]


def max_active_wgs(gpu: Gpu, resources: KernelResources) -> int:
    """Device-wide resident-WG limit for a kernel (HIP occupancy query)."""
    return gpu.occupancy(resources).resident_wgs


def suggest_grid(gpu: Gpu, resources: KernelResources,
                 occupancy_fraction: float = 1.0) -> OccupancyInfo:
    """Occupancy info for a persistent launch at a fraction of the max.

    ``occupancy_fraction`` is relative to this kernel's own achievable
    occupancy (the Fig. 13 x-axis is relative to the *baseline* kernel;
    callers convert).
    """
    if not (0.0 < occupancy_fraction <= 1.0):
        raise ValueError(
            f"occupancy_fraction must be in (0, 1], got {occupancy_fraction}")
    occ = gpu.occupancy(resources)
    return occ.limited_to(max(1, int(round(occ.resident_wgs
                                           * occupancy_fraction))))


def occupancy_sweep_points(max_fraction: float = 0.875,
                           steps: int = 6) -> List[float]:
    """The paper's Fig. 13 sweep: evenly spaced up to the fused kernel's
    maximum on the calibrated MI210 (87.5%; other platforms derive their
    own maximum from the register-file geometry)."""
    if steps < 2:
        raise ValueError("need at least two sweep points")
    if not (0.0 < max_fraction <= 1.0):
        raise ValueError("max_fraction must be in (0, 1]")
    step = max_fraction / steps
    return [step * (i + 1) for i in range(steps)]
