"""DLRM training-iteration graphs (the paper's Fig. 15 workload).

Builds the per-node execution DAG of one hybrid-parallel DLRM training pass
(model-parallel embeddings + data-parallel MLPs, Table II parameters), with
per-kernel durations taken from this library's GPU model — the same
methodology as the paper, which fed MI210-profiled kernel times into
ASTRA-Sim.

Baseline graph (forward then backward)::

    bottom_mlp ─┐
    embed_fwd ──► a2a_fwd ──► interact_top_fwd ──► top_inter_bwd ─► a2a_bwd
                                                   (wgrad_allreduce ∥ ...)
    a2a_bwd ──► embed_bwd ; bottom_bwd

Fused graph: each (embedding, All-to-All) pair collapses into one ``fused``
node of duration ``max(embedding', a2a) + eps`` where ``embedding'`` is the
pooling time at the fused kernel's platform-derived occupancy (87.5% on
the calibrated MI210) — WG-granular overlap inside a single persistent
kernel (paper Section IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fused.base import baseline_kernel_resources, fused_kernel_resources
from ..hw.gpu import Gpu
from ..hw.platform import PlatformLike, get_platform
from ..kernels.kernel import bulk_kernel_time
from ..models.configs import DlrmModelConfig
from ..ops.embedding import embedding_wg_cost
from ..ops.mlp import mlp_time_on_gpu
from ..sim import Simulator
from .graph import ExecutionGraph
from .network import TorusNetwork

__all__ = ["DlrmIterationTimes", "compute_kernel_times", "build_dlrm_graph"]

#: Share of the Table II MLP stack in the bottom (dense) MLP; the rest is
#: the top (interaction) MLP.  DLRM tops are much deeper than bottoms.
_BOTTOM_FRACTION = 0.3
#: MLP backward is ~2x forward (dgrad + wgrad GEMMs).
_BWD_FACTOR = 2.0
#: Embedding backward (scatter-add of gradient rows) moves the same bytes
#: as forward pooling (no dgrad GEMM exists for an embedding bag) but pays
#: atomic-collision serialization on popular rows.
_EMBED_BWD_FACTOR = 1.5
#: Extra time a fused kernel adds over max(comp, comm): bookkeeping,
#: API latency, flag polling.
_FUSED_OVERHEAD = 0.02


@dataclass(frozen=True)
class DlrmIterationTimes:
    """Per-kernel durations (seconds) for one node's training iteration."""

    bottom_fwd: float
    embed_fwd: float
    a2a_fwd: float
    inter_top_fwd: float
    top_inter_bwd: float
    a2a_bwd: float
    embed_bwd: float
    bottom_bwd: float
    wgrad_allreduce: float
    embed_fused_fwd: float   #: pooling at the fused kernel's occupancy
    embed_fused_bwd: float

    def baseline_total_estimate(self) -> float:
        """Serial critical-path estimate (diagnostics only)."""
        return (self.embed_fwd + self.a2a_fwd + self.inter_top_fwd
                + self.top_inter_bwd + self.a2a_bwd + self.embed_bwd)


def compute_kernel_times(model: DlrmModelConfig, network: TorusNetwork,
                         gpu: Gpu = None,
                         platform: PlatformLike = None) -> DlrmIterationTimes:
    """Measure every kernel of the iteration on the simulated GPU.

    ``platform`` selects the device when no explicit ``gpu`` is passed
    (default: the calibrated MI210 platform).
    """
    model.validate()
    if gpu is None:
        gpu = Gpu(Simulator(), get_platform(platform).gpu, gpu_id=0)
    p = network.num_nodes
    global_batch = model.local_batch * p
    tables_here = max(1, round(model.tables_per_node(p)))

    # MLP stacks (data parallel: local batch).
    n_bottom = max(1, int(model.mlp_layers * _BOTTOM_FRACTION))
    n_top = max(1, model.mlp_layers - n_bottom)
    bottom_sizes = [model.mlp_avg_size] * (n_bottom + 1)
    top_sizes = [model.mlp_avg_size] * (n_top + 1)
    bottom_fwd = mlp_time_on_gpu(gpu, model.local_batch, bottom_sizes)
    top_fwd = mlp_time_on_gpu(gpu, model.local_batch, top_sizes)

    # Embedding pooling (model parallel: global batch x local tables).
    n_vectors = global_batch * tables_here
    cost = embedding_wg_cost(model.avg_pooling, model.embedding_dim)
    embed_fwd = bulk_kernel_time(gpu, n_vectors, cost,
                                 baseline_kernel_resources(gpu.spec))
    # Fused kernel: same pooling at the fused footprint's derived occupancy
    # (87.5% on the calibrated MI210 — the paper's register-pressure loss —
    # and whatever the register-file geometry yields elsewhere), single
    # launch.
    fused_occ = gpu.occupancy(fused_kernel_resources(gpu.spec))
    rounds = max(1.0, n_vectors / fused_occ.resident_wgs)
    embed_fused_fwd = (gpu.spec.kernel_launch_overhead
                       + rounds * (gpu.wg_duration(cost, fused_occ)
                                   + gpu.spec.wg_dispatch_overhead))

    # Collectives.
    a2a = network.alltoall_time(model.alltoall_bytes_per_node())
    mlp_params = sum(a * b for a, b in zip(bottom_sizes, bottom_sizes[1:]))
    mlp_params += sum(a * b for a, b in zip(top_sizes, top_sizes[1:]))
    wgrad_ar = network.allreduce_time(4.0 * mlp_params)

    return DlrmIterationTimes(
        bottom_fwd=bottom_fwd,
        embed_fwd=embed_fwd,
        a2a_fwd=a2a,
        inter_top_fwd=top_fwd,
        top_inter_bwd=_BWD_FACTOR * top_fwd,
        a2a_bwd=a2a,
        embed_bwd=_EMBED_BWD_FACTOR * embed_fwd,
        bottom_bwd=_BWD_FACTOR * bottom_fwd,
        wgrad_allreduce=wgrad_ar,
        embed_fused_fwd=embed_fused_fwd,
        embed_fused_bwd=_EMBED_BWD_FACTOR * embed_fused_fwd,
    )


def build_dlrm_graph(times: DlrmIterationTimes,
                     fused: bool) -> ExecutionGraph:
    """One training iteration as an execution DAG."""
    g = ExecutionGraph()
    if not fused:
        g.add("bottom_fwd", "comp", times.bottom_fwd)
        g.add("embed_fwd", "comp", times.embed_fwd)
        g.add("a2a_fwd", "net", times.a2a_fwd, deps=["embed_fwd"])
        g.add("inter_top_fwd", "comp", times.inter_top_fwd,
              deps=["a2a_fwd", "bottom_fwd"])
        g.add("top_inter_bwd", "comp", times.top_inter_bwd,
              deps=["inter_top_fwd"])
        g.add("a2a_bwd", "net", times.a2a_bwd, deps=["top_inter_bwd"])
        g.add("embed_bwd", "comp", times.embed_bwd, deps=["a2a_bwd"])
        g.add("bottom_bwd", "comp", times.bottom_bwd, deps=["top_inter_bwd"])
        g.add("wgrad_allreduce", "net", times.wgrad_allreduce,
              deps=["top_inter_bwd", "bottom_bwd"])
    else:
        fused_fwd = (max(times.embed_fused_fwd, times.a2a_fwd)
                     * (1.0 + _FUSED_OVERHEAD))
        fused_bwd = (max(times.embed_fused_bwd, times.a2a_bwd)
                     * (1.0 + _FUSED_OVERHEAD))
        g.add("bottom_fwd", "comp", times.bottom_fwd)
        g.add("fused_embed_a2a_fwd", "fused", fused_fwd)
        g.add("inter_top_fwd", "comp", times.inter_top_fwd,
              deps=["fused_embed_a2a_fwd", "bottom_fwd"])
        g.add("top_inter_bwd", "comp", times.top_inter_bwd,
              deps=["inter_top_fwd"])
        g.add("fused_a2a_embed_bwd", "fused", fused_bwd,
              deps=["top_inter_bwd"])
        g.add("bottom_bwd", "comp", times.bottom_bwd, deps=["top_inter_bwd"])
        g.add("wgrad_allreduce", "net", times.wgrad_allreduce,
              deps=["top_inter_bwd", "bottom_bwd"])
    return g
