"""2D-torus network model for the scale-out simulator (paper Table II).

Analytic collective-time models in the ASTRA-Sim style: a node has one
bidirectional link per torus direction (4 in 2D), each at 200 Gb/s with
700 ns hop latency.

* **AllReduce** uses per-dimension rings (the standard torus algorithm):
  ring reduce-scatter + all-gather along X, then along Y.
* **All-to-All** is contention-dominated: every node exchanges with every
  other node, and packets traverse ``avg_hops`` links, multiplying the
  traffic each physical link carries.  ``alltoall_efficiency`` captures the
  additional loss from many-to-many link contention (calibrated once so the
  128-node DLRM baseline exposes the All-to-All fraction reported for
  production systems; see DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..models.configs import TorusNetworkConfig

__all__ = ["TorusNetwork"]

#: Fraction of per-link bandwidth an all-to-all sustains under many-to-many
#: contention on a torus (calibration constant, documented in DESIGN.md).
ALLTOALL_EFFICIENCY = 0.42


@dataclass
class TorusNetwork:
    """A ``dim_x``-by-``dim_y`` torus of nodes."""

    dim_x: int
    dim_y: int
    cfg: TorusNetworkConfig
    alltoall_efficiency: float = ALLTOALL_EFFICIENCY

    def __post_init__(self):
        if self.dim_x < 1 or self.dim_y < 1:
            raise ValueError("torus dimensions must be >= 1")
        if not (0.0 < self.alltoall_efficiency <= 1.0):
            raise ValueError("alltoall_efficiency must be in (0, 1]")
        self.cfg.validate()

    @classmethod
    def square_ish(cls, num_nodes: int,
                   cfg: TorusNetworkConfig) -> "TorusNetwork":
        """Factor ``num_nodes`` into the most square 2D torus."""
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        x = int(math.sqrt(num_nodes))
        while num_nodes % x:
            x -= 1
        return cls(dim_x=num_nodes // x, dim_y=x, cfg=cfg)

    @property
    def num_nodes(self) -> int:
        return self.dim_x * self.dim_y

    def avg_hops(self) -> float:
        """Mean shortest-path hop count between random nodes."""

        def dim_avg(d: int) -> float:
            if d == 1:
                return 0.0
            return sum(min(k, d - k) for k in range(d)) / d

        return max(dim_avg(self.dim_x) + dim_avg(self.dim_y), 1.0)

    # -- collectives ---------------------------------------------------------
    def allreduce_time(self, nbytes: float) -> float:
        """Per-dimension ring reduce-scatter + all-gather."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if self.num_nodes == 1 or nbytes == 0:
            return 0.0
        bw = self.cfg.link_bandwidth
        lat = self.cfg.link_latency
        total = 0.0
        remaining = float(nbytes)
        for d in (self.dim_x, self.dim_y):
            if d == 1:
                continue
            steps = 2 * (d - 1)
            total += steps * (remaining / d / bw + lat)
            remaining /= d  # the next dimension reduces scattered chunks
        return total

    def alltoall_time(self, recv_bytes_per_node: float) -> float:
        """Full-exchange All-to-All with hop-multiplied link traffic."""
        if recv_bytes_per_node < 0:
            raise ValueError("recv_bytes_per_node must be >= 0")
        p = self.num_nodes
        if p == 1 or recv_bytes_per_node == 0:
            return 0.0
        remote = recv_bytes_per_node * (p - 1) / p
        link_traffic = remote * self.avg_hops() / self.cfg.links_per_node
        bw = self.cfg.link_bandwidth * self.alltoall_efficiency
        return link_traffic / bw + (p - 1) * self.cfg.link_latency
