"""Execution graphs for scale-out training simulation (ASTRA-Sim style).

A training iteration is a DAG of named nodes, each bound to a resource:

* ``comp`` — the GPU's compute queue,
* ``net`` — the NIC/network engine (collectives),
* ``fused`` — a fused computation-collective kernel, which occupies *both*
  resources for its duration (it is one kernel doing both things).

Independent ``comp`` and ``net`` nodes overlap (that is how baselines hide
weight-gradient AllReduce behind backward compute); nodes on the same
resource serialize in dependency-respecting FIFO order.  This mirrors how
the paper models its fused kernels inside ASTRA-Sim by modifying the
execution graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = ["GraphNode", "ExecutionGraph"]

_RESOURCES = {"comp": ("comp",), "net": ("net",), "fused": ("comp", "net")}


@dataclass(frozen=True)
class GraphNode:
    """One unit of work in the iteration DAG."""

    name: str
    kind: str                 #: "comp" | "net" | "fused"
    duration: float
    deps: Tuple[str, ...] = ()

    def __post_init__(self):
        if self.kind not in _RESOURCES:
            raise ValueError(f"unknown node kind {self.kind!r}")
        if self.duration < 0:
            raise ValueError(f"negative duration for {self.name!r}")


class ExecutionGraph:
    """A DAG of :class:`GraphNode` with list scheduling."""

    def __init__(self):
        self._nodes: Dict[str, GraphNode] = {}

    def add(self, name: str, kind: str, duration: float,
            deps: Sequence[str] = ()) -> GraphNode:
        if name in self._nodes:
            raise ValueError(f"duplicate node {name!r}")
        for d in deps:
            if d not in self._nodes:
                raise ValueError(f"node {name!r} depends on unknown {d!r}")
        node = GraphNode(name, kind, duration, tuple(deps))
        self._nodes[name] = node
        return node

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> List[GraphNode]:
        return list(self._nodes.values())

    def simulate(self) -> Tuple[float, Dict[str, Tuple[float, float]]]:
        """List-schedule the DAG; returns (makespan, per-node spans).

        Deterministic: among ready nodes, the earliest-startable runs
        first (ties broken by insertion order).
        """
        free_at = {"comp": 0.0, "net": 0.0}
        done: Dict[str, float] = {}
        spans: Dict[str, Tuple[float, float]] = {}
        order = list(self._nodes.values())
        pending = order[:]
        while pending:
            best = None
            best_start = None
            for node in pending:
                if any(d not in done for d in node.deps):
                    continue
                ready = max((done[d] for d in node.deps), default=0.0)
                start = max([ready] + [free_at[r]
                                       for r in _RESOURCES[node.kind]])
                if best_start is None or start < best_start:
                    best, best_start = node, start
            if best is None:
                raise ValueError("dependency cycle in execution graph")
            end = best_start + best.duration
            for r in _RESOURCES[best.kind]:
                free_at[r] = end
            done[best.name] = end
            spans[best.name] = (best_start, end)
            pending.remove(best)
        return (max(done.values()) if done else 0.0), spans

    def critical_path(self) -> List[str]:
        """Longest dependency chain by duration (diagnostics)."""
        memo: Dict[str, Tuple[float, List[str]]] = {}

        def longest(name: str) -> Tuple[float, List[str]]:
            if name in memo:
                return memo[name]
            node = self._nodes[name]
            best_len, best_path = 0.0, []
            for d in node.deps:
                ln, path = longest(d)
                if ln > best_len:
                    best_len, best_path = ln, path
            memo[name] = (best_len + node.duration, best_path + [name])
            return memo[name]

        best: Tuple[float, List[str]] = (0.0, [])
        for name in self._nodes:
            cand = longest(name)
            if cand[0] > best[0]:
                best = cand
        return best[1]
