"""ASTRA-Sim-style scale-out training simulator (paper Fig. 15)."""

from .graph import ExecutionGraph, GraphNode
from .network import TorusNetwork
from .runner import ScaleOutResult, run_dlrm_scaleout, sweep_node_counts
from .workloads import DlrmIterationTimes, build_dlrm_graph, compute_kernel_times

__all__ = [
    "DlrmIterationTimes",
    "ExecutionGraph",
    "GraphNode",
    "ScaleOutResult",
    "TorusNetwork",
    "build_dlrm_graph",
    "compute_kernel_times",
    "run_dlrm_scaleout",
    "sweep_node_counts",
]
