"""Scale-out DLRM training runner (paper Fig. 15).

Fully closed-form — roofline kernel times plus list-scheduled execution
graphs, no event loop — so both evaluation backends (the DES experiments
and :mod:`repro.analytic`) share this code and agree exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..hw.platform import PlatformLike
from ..models.configs import TABLE2_DLRM, TABLE2_TORUS, DlrmModelConfig, \
    TorusNetworkConfig
from .graph import ExecutionGraph
from .network import TorusNetwork
from .workloads import build_dlrm_graph, compute_kernel_times

__all__ = ["ScaleOutResult", "run_dlrm_scaleout", "sweep_node_counts"]


@dataclass(frozen=True)
class ScaleOutResult:
    """Outcome of one scale-out comparison."""

    num_nodes: int
    baseline_time: float
    fused_time: float
    baseline_spans: Dict[str, Tuple[float, float]]
    fused_spans: Dict[str, Tuple[float, float]]

    @property
    def normalized(self) -> float:
        return self.fused_time / self.baseline_time

    @property
    def reduction_pct(self) -> float:
        return 100.0 * (1.0 - self.normalized)

    def exposed_a2a_fraction(self) -> float:
        """Share of the baseline iteration spent in All-to-All (it is fully
        exposed there — nothing overlaps it)."""
        a2a = sum(e - s for name, (s, e) in self.baseline_spans.items()
                  if name.startswith("a2a"))
        return a2a / self.baseline_time


def run_dlrm_scaleout(num_nodes: int = 128,
                      model: Optional[DlrmModelConfig] = None,
                      net_cfg: Optional[TorusNetworkConfig] = None,
                      platform: PlatformLike = None) -> ScaleOutResult:
    """Simulate one DLRM training pass, baseline vs fused.

    ``platform`` selects the per-node GPU that kernel times are profiled
    on (default: the calibrated MI210); the torus network stays governed
    by ``net_cfg``.
    """
    if num_nodes < 2:
        raise ValueError("scale-out needs at least 2 nodes")
    model = model if model is not None else TABLE2_DLRM
    net_cfg = net_cfg if net_cfg is not None else TABLE2_TORUS
    network = TorusNetwork.square_ish(num_nodes, net_cfg)
    times = compute_kernel_times(model, network, platform=platform)
    base_total, base_spans = build_dlrm_graph(times, fused=False).simulate()
    fused_total, fused_spans = build_dlrm_graph(times, fused=True).simulate()
    return ScaleOutResult(num_nodes=num_nodes, baseline_time=base_total,
                          fused_time=fused_total,
                          baseline_spans=base_spans,
                          fused_spans=fused_spans)


def sweep_node_counts(node_counts: List[int] = (16, 32, 64, 128),
                      model: Optional[DlrmModelConfig] = None,
                      net_cfg: Optional[TorusNetworkConfig] = None,
                      platform: PlatformLike = None) -> List[ScaleOutResult]:
    """The Fig. 15 series: normalized time across system sizes."""
    return [run_dlrm_scaleout(n, model=model, net_cfg=net_cfg,
                              platform=platform)
            for n in node_counts]
