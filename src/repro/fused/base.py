"""Shared machinery for fused computation-collective operators.

Every operator in this package comes in two flavours sharing one workload
definition:

* ``Fused*`` — the paper's contribution: a single persistent kernel per rank
  in which workgroups communicate their output fragments as soon as they are
  computed (GPU-initiated, intra-kernel).
* ``baseline_*`` — the comparison point: bulk-synchronous compute kernel(s)
  followed by an RCCL-like collective kernel.

Both run inside the same simulated cluster and, in *functional* mode,
produce numerically identical outputs (verified by the integration tests).
In *timing-only* mode (``functional=False``) the NumPy payloads are skipped
so paper-scale configurations run quickly; all simulated-time behaviour is
unchanged.

Each operator also has a closed-form *analytic* twin
(:mod:`repro.analytic.ops`) predicting the same elapsed times without the
event loop — thousands of scenarios per second for design-space sweeps,
held to an accuracy budget against these simulated operators by
``python -m repro validate``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..comm.runtime import Communicator
from ..hw.gpu import GpuSpec, KernelResources
from ..hw.platform import (
    Platform,
    PlatformLike,
    derived_baseline_resources,
    derived_fused_resources,
    get_platform,
)
from ..hw.topology import Cluster
from ..obs.capture import harness_trace
from ..sim import Simulator, TraceRecorder

__all__ = ["OpResult", "OpHarness", "fused_kernel_resources",
           "baseline_kernel_resources"]


def baseline_kernel_resources(
        spec: Optional[GpuSpec] = None) -> KernelResources:
    """Resource descriptor of a baseline (non-communicating) kernel.

    Derived from the device's occupancy model (see
    :mod:`repro.hw.platform`): 256-thread WGs at the largest VGPR budget
    that still fills every wave slot.  ``spec`` defaults to the calibrated
    default platform's GPU.
    """
    if spec is None:
        spec = get_platform().gpu
    return derived_baseline_resources(spec)


def fused_kernel_resources(spec: Optional[GpuSpec] = None) -> KernelResources:
    """Resource descriptor of a fused kernel (extra comm registers).

    The communication state costs :data:`repro.hw.platform.COMM_VGPRS`
    registers/thread on every device; what occupancy that buys depends on
    the device's register-file geometry — 87.5% on the calibrated MI210
    (the paper's reported 12.5% loss, Section III-C), and correspondingly
    different on other platforms.
    """
    if spec is None:
        spec = get_platform().gpu
    return derived_fused_resources(spec)


@dataclass
class OpResult:
    """Outcome of running an operator end-to-end on a cluster."""

    elapsed: float                         #: simulated seconds, launch → done
    outputs: Optional[List[np.ndarray]]    #: per-rank outputs (functional mode)
    stats: Dict[str, Any] = field(default_factory=dict)

    def normalized_to(self, baseline: "OpResult") -> float:
        """This result's time as a fraction of the baseline's (paper y-axis)."""
        if baseline.elapsed <= 0:
            raise ValueError("baseline elapsed time must be positive")
        return self.elapsed / baseline.elapsed


class OpHarness:
    """Owns the simulator/cluster/communicator for one operator run.

    Operators are single-shot: build a fresh harness per measurement so the
    simulated clock starts at zero and link statistics are clean.
    """

    def __init__(self, num_nodes: int = 1, gpus_per_node: int = 4,
                 trace: Optional[TraceRecorder] = None,
                 cpu_proxy: bool = False,
                 platform: PlatformLike = None):
        self.sim = Simulator()
        # ``None`` normally means NULL_TRACE; inside an active
        # ``repro.obs.capture.TraceCapture`` it means "give me a live
        # recorder and register it" — how `python -m repro trace` profiles
        # runners that never heard of tracing.
        self.trace = harness_trace(trace)
        self.platform: Platform = get_platform(platform)
        from ..hw.topology import build_cluster
        self.cluster: Cluster = build_cluster(
            self.sim, num_nodes=num_nodes, gpus_per_node=gpus_per_node,
            platform=self.platform, trace=self.trace)
        self.comm = Communicator(self.cluster, cpu_proxy=cpu_proxy)

    @property
    def world_size(self) -> int:
        return self.cluster.world_size

    def run(self, op) -> OpResult:
        """Execute an operator (anything with ``.run()`` returning a
        generator of per-rank outputs) and measure elapsed simulated time."""
        start = self.sim.now
        outputs = self.sim.run_process(op.run(), name=type(op).__name__)
        return OpResult(elapsed=self.sim.now - start, outputs=outputs,
                        stats=getattr(op, "stats", {}))
