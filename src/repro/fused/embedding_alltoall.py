"""Fused embedding pooling + All-to-All (the paper's Section III-A operator).

DLRM distributes embedding tables model-parallel (``tables_per_gpu`` per
rank) while the top MLP runs data-parallel, so after pooling each rank must
scatter its pooled vectors to the rank owning each batch shard — the
All-to-All that dominates distributed DLRM time.

**Fused kernel** (one persistent HIP-like kernel per rank):

* Logical WG = one pooled output vector ``(batch item, table)``; a *slice*
  is ``slice_vectors`` consecutive vectors of one table bound for one
  destination rank.
* The last logical WG of a slice (detected through the ``WG_Done`` bitmask)
  issues a non-blocking PUT of the slice plus a fenced ``sliceRdy`` flag to
  the destination, then keeps computing — communication overlaps the
  remaining pooling work.
* *Communication-aware scheduling* runs remote slices before local ones.
* *Zero-copy* (scale-up): slices bound for same-node peers are stored
  directly into the peer's output buffer over the fabric, skipping the
  local HBM write of the output vector.
* Each persistent WG finally polls a distinct subset of the rank's
  ``sliceRdy`` flags, so the kernel returns only when the rank's full
  A2A output ``(local_batch, world*tables, dim)`` is ready.

**Baseline**: one bulk-synchronous pooling kernel *per table* (the public
DLRM/PyTorch ``EmbeddingBag`` structure) followed by an RCCL-like
All-to-All kernel.  Small batches leave each per-table kernel far below
device residency — the utilization gap behind the paper's >fully-overlapped
wins at small global batch sizes (Fig. 12).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..comm.shmem import FlagArray
from ..hw.gpu import WgCost
from ..kernels import PersistentKernel, WgTask, bulk_kernel_time, get_scheduler
from ..ops.embedding import embedding_pooling, embedding_wg_cost
from .base import (
    OpHarness,
    baseline_kernel_resources,
    fused_kernel_resources,
)

__all__ = ["EmbeddingA2AConfig", "FusedEmbeddingAllToAll",
           "BaselineEmbeddingAllToAll", "make_embedding_inputs"]

ITEMSIZE = 4  # fp32 embeddings throughout, as in the public DLRM code


@dataclass(frozen=True)
class EmbeddingA2AConfig:
    """Workload definition shared by the fused and baseline operators.

    The paper labels configurations ``{global batch | tables per GPU}``;
    ``dim=256`` matches its kernel evaluation, ``pooling=70`` its Table II.
    """

    global_batch: int
    tables_per_gpu: int
    dim: int = 256
    pooling: int = 70
    rows_per_table: int = 1000
    slice_vectors: int = 32          #: pooled vectors per communicated slice
    tasks_per_slice: int = 0         #: 0 = auto; >1 exposes intra-slice WGs
    pooling_mode: str = "sum"
    functional: bool = True          #: carry real NumPy payloads
    scheduler: str = "comm_aware"
    occupancy_of_baseline: Optional[float] = None  #: Fig. 13 x-axis knob
    zero_copy: bool = True           #: direct peer stores for same-node dests
    #: Baseline All-to-All schedule (:mod:`repro.collectives` name or
    #: ``"auto"``); ``None`` keeps the legacy flat RCCL-like schedule.
    algo: Optional[str] = None
    seed: int = 0

    def validate(self, world: int) -> None:
        from ..collectives import check_algo
        check_algo("alltoall", self.algo)
        if self.global_batch < 1 or self.tables_per_gpu < 1:
            raise ValueError("batch and tables must be >= 1")
        if self.global_batch % world:
            raise ValueError(
                f"global_batch {self.global_batch} not divisible by "
                f"world {world}")
        local = self.global_batch // world
        if local % self.slice_vectors:
            raise ValueError(
                f"local batch {local} not divisible by slice_vectors "
                f"{self.slice_vectors}")
        if self.tasks_per_slice and self.slice_vectors % self.tasks_per_slice:
            raise ValueError("slice_vectors must be divisible by tasks_per_slice")
        if self.pooling_mode not in ("sum", "mean"):
            raise ValueError(f"bad pooling mode {self.pooling_mode!r}")

    def local_batch(self, world: int) -> int:
        return self.global_batch // world

    def slices_per_stripe(self, world: int) -> int:
        """Slices per (table, destination) stripe."""
        return self.local_batch(world) // self.slice_vectors

    def slice_bytes(self) -> float:
        return float(self.slice_vectors * self.dim * ITEMSIZE)

    @property
    def label(self) -> str:
        return f"{self.global_batch}|{self.tables_per_gpu}"


def make_embedding_inputs(cfg: EmbeddingA2AConfig, world: int):
    """Per-rank tables and lookup indices (functional mode only)."""
    tables, indices = [], []
    for r in range(world):
        rng = np.random.default_rng(cfg.seed + 1000 * r)
        tables.append(rng.standard_normal(
            (cfg.tables_per_gpu, cfg.rows_per_table, cfg.dim))
            .astype(np.float32))
        indices.append(rng.integers(
            0, cfg.rows_per_table,
            size=(cfg.tables_per_gpu, cfg.global_batch, cfg.pooling),
            dtype=np.int64))
    return tables, indices


def reference_output(cfg: EmbeddingA2AConfig, world: int,
                     tables, indices) -> List[np.ndarray]:
    """Ground truth: pool everything, then permute like an All-to-All.

    Output on rank d: ``(local_batch, world*tables, dim)`` where feature
    column ``src*T + t`` holds table ``t`` of rank ``src`` pooled over
    d's batch shard.
    """
    local = cfg.local_batch(world)
    t_per = cfg.tables_per_gpu
    outs = [np.zeros((local, world * t_per, cfg.dim), np.float32)
            for _ in range(world)]
    for src in range(world):
        for t in range(t_per):
            pooled = embedding_pooling(tables[src][t], indices[src][t],
                                       mode=cfg.pooling_mode)
            for d in range(world):
                outs[d][:, src * t_per + t, :] = \
                    pooled[d * local:(d + 1) * local]
    return outs


class FusedEmbeddingAllToAll:
    """The paper's fused operator, one persistent kernel per rank."""

    def __init__(self, harness: OpHarness, cfg: EmbeddingA2AConfig):
        cfg.validate(harness.world_size)
        self.harness = harness
        self.cfg = cfg
        self.sim = harness.sim
        self.cluster = harness.cluster
        self.comm = harness.comm
        self.world = harness.world_size
        self.stats: Dict = {}

        self.tables = self.indices = None
        self.out = None
        if cfg.functional:
            self.tables, self.indices = make_embedding_inputs(cfg, self.world)
            self.out = self.comm.alloc(
                (cfg.local_batch(self.world),
                 self.world * cfg.tables_per_gpu, cfg.dim), np.float32)

        n_s = cfg.slices_per_stripe(self.world)
        self.n_flags = self.world * cfg.tables_per_gpu * n_s
        self.flags = [
            self.comm.alloc_flags(self.n_flags, name=f"sliceRdy[{r}]")
            for r in range(self.world)
        ]

    # -- flag indexing ---------------------------------------------------------
    def flag_index(self, src: int, table: int, s: int) -> int:
        n_s = self.cfg.slices_per_stripe(self.world)
        return (src * self.cfg.tables_per_gpu + table) * n_s + s

    # -- kernel construction ---------------------------------------------------
    def _tasks_per_slice(self, rank: int) -> int:
        """Resolve the task granularity within a slice.

        ``tasks_per_slice == 0`` (auto) splits slices just enough that the
        task count comfortably exceeds the persistent-WG count — otherwise
        coarse tasks quantize the tail of the kernel into idle rounds that
        real logical-WG-granular hardware scheduling would not have.
        """
        cfg, world = self.cfg, self.world
        if cfg.tasks_per_slice:
            return cfg.tasks_per_slice
        n_slices = world * cfg.tables_per_gpu * cfg.slices_per_stripe(world)
        gpu = self.cluster.gpu(rank)
        occ = gpu.occupancy(fused_kernel_resources(gpu.spec))
        slots = min(occ.resident_wgs, n_slices)
        target = math.ceil(8 * slots / n_slices)
        for div in (1, 2, 4, 8, 16, 32):
            if div >= target and cfg.slice_vectors % div == 0:
                return div
        return cfg.slice_vectors

    def _build_tasks(self, rank: int) -> List[WgTask]:
        cfg, world = self.cfg, self.world
        n_s = cfg.slices_per_stripe(world)
        tasks_per_slice = self._tasks_per_slice(rank)
        spec = self.cluster.gpu(rank).spec
        base_cost = embedding_wg_cost(cfg.pooling, cfg.dim, ITEMSIZE)
        # Every logical WG pays the WG_Done bitmask bookkeeping.
        base_cost = base_cost.plus(fixed=spec.flag_op_latency)
        # Zero-copy: same-node remote slices skip the local output write.
        zc_cost = base_cost.with_bytes(base_cost.bytes - cfg.dim * ITEMSIZE)
        repeat = cfg.slice_vectors // tasks_per_slice
        ctx = self.comm.ctx(rank)
        tasks: List[WgTask] = []
        task_id = 0
        # Natural (oblivious) order: output-entry order = global batch order,
        # i.e. destination-major — exactly the paper's WG(0,0,0)-onward order.
        for d in range(world):
            remote = d != rank
            same_node = self.cluster.same_node(rank, d)
            cost = (zc_cost if (remote and same_node and cfg.zero_copy)
                    else base_cost)
            for s in range(n_s):
                for t in range(cfg.tables_per_gpu):
                    for piece in range(tasks_per_slice):
                        last = piece == tasks_per_slice - 1
                        tasks.append(WgTask(
                            task_id=task_id, cost=cost, repeat=repeat,
                            meta={"remote": remote, "dest": d, "table": t,
                                  "slice": s, "last": last},
                            compute=(self._make_compute(rank, d, t, s)
                                     if (last and cfg.functional) else None),
                            on_complete=(self._make_hook(ctx, rank, d, t, s)
                                         if last else None)))
                        task_id += 1
        return get_scheduler(cfg.scheduler)(tasks)

    def _make_compute(self, rank: int, d: int, t: int, s: int):
        cfg, world = self.cfg, self.world
        local = cfg.local_batch(world)
        b0 = d * local + s * cfg.slice_vectors
        b1 = b0 + cfg.slice_vectors

        def compute():
            pooled = embedding_pooling(
                self.tables[rank][t], self.indices[rank][t, b0:b1],
                mode=cfg.pooling_mode)
            if d == rank:
                rows = slice(s * cfg.slice_vectors, (s + 1) * cfg.slice_vectors)
                self.out.local(rank)[rows, rank * cfg.tables_per_gpu + t, :] = \
                    pooled
            else:
                self._payloads[(rank, d, t, s)] = pooled

        return compute

    def _make_hook(self, ctx, rank: int, d: int, t: int, s: int):
        cfg = self.cfg
        fidx = self.flag_index(rank, t, s)
        spec = self.cluster.gpu(rank).spec

        def hook(slot_ctx, task):
            if d == rank:
                # Local slice: data already in place; mark it ready.
                self.flags_for(rank).set(rank, fidx)
                return None
            if slot_ctx.trace.enabled:
                slot_ctx.record("put_issue", dest=d, table=t, slice=s,
                                nbytes=cfg.slice_bytes())
            # The issuing thread pays the API latency; the transfer itself
            # is non-blocking (the WG moves on to its next task).
            if cfg.functional:
                payload = self._payloads.pop((rank, d, t, s))
                rows = slice(s * cfg.slice_vectors,
                             (s + 1) * cfg.slice_vectors)
                ctx.put_signal(
                    self.out, payload, dst_rank=d,
                    flags=self.flags_for(d), flag_idx=fidx,
                    dst_index=(rows, rank * cfg.tables_per_gpu + t,
                               slice(None)))
            else:
                ctx.put_signal_bytes(d, cfg.slice_bytes(),
                                     self.flags_for(d), fidx, notify=False)
            yield slot_ctx.charge(spec.shmem_api_latency)

        return hook

    def flags_for(self, rank: int) -> FlagArray:
        return self.flags[rank]

    def _epilogue(self, rank: int):
        flags = self.flags_for(rank)

        def epilogue(slot_ctx):
            n_slots = slot_ctx.kernel.n_slots
            for fidx in range(slot_ctx.slot_id, self.n_flags, n_slots):
                yield flags.wait_until(rank, fidx)

        return epilogue

    def _kernel_occupancy_limit(self, rank: int) -> Optional[float]:
        """Convert the Fig. 13 knob (fraction of *baseline* occupancy) to a
        fraction of the fused kernel's own achievable occupancy."""
        frac = self.cfg.occupancy_of_baseline
        if frac is None:
            return None
        gpu = self.cluster.gpu(rank)
        base = gpu.occupancy(baseline_kernel_resources(gpu.spec)).resident_wgs
        fused = gpu.occupancy(fused_kernel_resources(gpu.spec)).resident_wgs
        limit = frac * base / fused
        if limit > 1.0 + 1e-9:
            raise ValueError(
                f"occupancy {frac} of baseline exceeds the fused kernel's "
                f"maximum ({fused / base:.3f} of baseline)")
        return min(limit, 1.0)

    # -- execution ------------------------------------------------------------
    def run(self):
        self._payloads: Dict = {}
        self.stats["rank_end_times"] = {}
        kernels = []
        for r in range(self.world):
            tasks = self._build_tasks(r)
            gpu = self.cluster.gpu(r)
            kernels.append(PersistentKernel(
                gpu, fused_kernel_resources(gpu.spec), tasks,
                name=f"fused_emb_a2a[{r}]",
                occupancy_limit=self._kernel_occupancy_limit(r),
                epilogue=self._epilogue(r),
                trace=self.harness.trace))

        def rank_proc(r, kern):
            yield from kern.run()
            self.stats["rank_end_times"][r] = self.sim.now

        procs = [self.sim.process(rank_proc(r, k), name=f"rank{r}")
                 for r, k in enumerate(kernels)]
        yield self.sim.all_of(procs)
        self.stats["occupancy"] = kernels[0].occupancy.fraction
        if self.cfg.functional:
            return [self.out.local(r) for r in range(self.world)]
        return None


class BaselineEmbeddingAllToAll:
    """Bulk-synchronous baseline: per-table pooling kernels, then RCCL A2A."""

    def __init__(self, harness: OpHarness, cfg: EmbeddingA2AConfig):
        cfg.validate(harness.world_size)
        self.harness = harness
        self.cfg = cfg
        self.sim = harness.sim
        self.cluster = harness.cluster
        self.comm = harness.comm
        self.world = harness.world_size
        self.stats: Dict = {}
        self.tables = self.indices = None
        if cfg.functional:
            self.tables, self.indices = make_embedding_inputs(cfg, self.world)

    def run(self):
        cfg, world = self.cfg, self.world
        cost = embedding_wg_cost(cfg.pooling, cfg.dim, ITEMSIZE)
        res = baseline_kernel_resources(self.cluster.gpu(0).spec)

        pooled_all: List[List[np.ndarray]] = [[] for _ in range(world)]

        def rank_compute(r):
            gpu = self.cluster.gpu(r)
            for t in range(cfg.tables_per_gpu):
                if cfg.functional:
                    pooled_all[r].append(embedding_pooling(
                        self.tables[r][t], self.indices[r][t],
                        mode=cfg.pooling_mode))
                yield self.sim.timeout(
                    bulk_kernel_time(gpu, cfg.global_batch, cost, res))

        procs = [self.sim.process(rank_compute(r)) for r in range(world)]
        yield self.sim.all_of(procs)
        self.stats["compute_done"] = self.sim.now

        local = cfg.local_batch(world)
        if cfg.functional:
            # sends[r]: (world, local, T, dim) — shard the pooled outputs.
            sends = []
            for r in range(world):
                stacked = np.stack(pooled_all[r], axis=1)  # (B, T, dim)
                sends.append(stacked.reshape(
                    world, local, cfg.tables_per_gpu, cfg.dim))
            outs = yield from self.comm.collectives.all_to_all(sends)
            # (world, local, T, dim) -> (local, world*T, dim)
            return [o.transpose(1, 0, 2, 3).reshape(
                local, world * cfg.tables_per_gpu, cfg.dim) for o in outs]
        chunk = float(local * cfg.tables_per_gpu * cfg.dim * ITEMSIZE)
        yield from self.comm.collectives.all_to_all_bytes(
            chunk, algorithm=cfg.algo)
        return None
