"""Fused GEMV + AllReduce (the paper's Section III-B scale-up operator).

Tensor-parallel transformer decode: the second MLP weight matrix is
row-sharded, so every GPU computes a *partial* output vector ``y_r = A_r @
x_r`` and an AllReduce sums the partials — a collective the paper reports
contributing up to 46% of decode latency.

**Fused kernel** (zero-copy, two-phase direct AllReduce):

* Each GPU computes all output tiles; tile ownership for the reduction is
  block-distributed (GPU ``o`` reduces rows ``[o*M/W, (o+1)*M/W)``).
* Tiles owned by a *peer* are stored **directly into the peer's partial
  buffer** over the fabric as they are computed (zero-copy: the local HBM
  write is skipped entirely) — communication overlaps the remaining GEMV.
* Communication-aware scheduling computes peer-owned tiles first.
* When a GPU has finished streaming all tiles owned by peer ``o``, it sets
  one ``partialRdy`` flag on ``o`` (after its stores complete).
* Owners then reduce their chunk (local partial + W-1 received) and
  broadcast the reduced tiles to all peers (the all-gather phase), again as
  direct stores, followed by one ``finalRdy`` flag per peer.
* Persistent WGs exit once every owner's ``finalRdy`` flag has arrived —
  the full reduced vector is then present on every GPU.

**Baseline**: a bulk-synchronous GEMV kernel followed by an RCCL-like
two-phase direct AllReduce kernel.

Timing models fp16 decode (``itemsize=2``); functional verification runs
the same dataflow in fp32 NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..hw.gpu import WgCost
from ..kernels import PersistentKernel, WgTask, bulk_kernel_time, get_scheduler
from ..ops.gemv import gemv, gemv_wg_cost, split_tiles
from .base import (
    OpHarness,
    baseline_kernel_resources,
    fused_kernel_resources,
)

__all__ = ["GemvAllReduceConfig", "FusedGemvAllReduce",
           "BaselineGemvAllReduce", "make_gemv_inputs"]


@dataclass(frozen=True)
class GemvAllReduceConfig:
    """Workload: per-GPU weight shard ``(m, n_per_gpu)``, input ``x``.

    The paper labels configurations by matrix size; ``n_per_gpu`` is the
    row-sharded reduction dimension (total N / world).
    """

    m: int
    n_per_gpu: int
    tile_rows: int = 16
    itemsize: int = 2               #: fp16 weights/activations (decode)
    flop_dtype: str = "fp16"
    functional: bool = True
    scheduler: str = "comm_aware"
    #: Baseline AllReduce schedule (:mod:`repro.collectives` name or
    #: ``"auto"``); ``None`` keeps the paper's direct two-phase schedule.
    algo: Optional[str] = None
    seed: int = 0

    def validate(self, world: int) -> None:
        from ..collectives import check_algo
        check_algo("allreduce", self.algo)
        if self.m < 1 or self.n_per_gpu < 1:
            raise ValueError("m and n_per_gpu must be >= 1")
        if self.m % (world * self.tile_rows):
            raise ValueError(
                f"m={self.m} must be divisible by world*tile_rows="
                f"{world * self.tile_rows}")

    def chunk_rows(self, world: int) -> int:
        return self.m // world

    def tile_bytes(self) -> float:
        return float(self.tile_rows * self.itemsize)

    @property
    def label(self) -> str:
        def k(v):
            return f"{v // 1024}k" if v % 1024 == 0 and v >= 1024 else str(v)
        return f"{k(self.m)}|{k(self.n_per_gpu)}"


def make_gemv_inputs(cfg: GemvAllReduceConfig, world: int):
    """Per-rank weight shards and inputs (fp32 for exact verification)."""
    mats, vecs = [], []
    for r in range(world):
        rng = np.random.default_rng(cfg.seed + 31 * r)
        mats.append(rng.standard_normal((cfg.m, cfg.n_per_gpu))
                    .astype(np.float32))
        vecs.append(rng.standard_normal(cfg.n_per_gpu).astype(np.float32))
    return mats, vecs


def reference_output(mats, vecs) -> np.ndarray:
    """Ground truth: sum of per-rank partial GEMVs."""
    return np.sum(np.stack([a @ x for a, x in zip(mats, vecs)]), axis=0)


class FusedGemvAllReduce:
    """The paper's fused scale-up operator."""

    def __init__(self, harness: OpHarness, cfg: GemvAllReduceConfig):
        cfg.validate(harness.world_size)
        if harness.cluster.num_nodes != 1:
            raise ValueError(
                "FusedGemvAllReduce is a scale-up operator (single node)")
        self.harness = harness
        self.cfg = cfg
        self.sim = harness.sim
        self.cluster = harness.cluster
        self.comm = harness.comm
        self.world = harness.world_size
        self.stats: Dict = {}

        self.mats = self.vecs = None
        self.partial = self.y = None
        if cfg.functional:
            self.mats, self.vecs = make_gemv_inputs(cfg, self.world)
            # partial.local(o)[src] holds src's contribution to o's chunk.
            self.partial = self.comm.alloc(
                (self.world, cfg.chunk_rows(self.world)), np.float32)
            self.y = self.comm.alloc((cfg.m,), np.float32)
        self.partial_rdy = self.comm.alloc_flags(self.world, name="partialRdy")
        self.final_rdy = self.comm.alloc_flags(self.world, name="finalRdy")

    # -- task construction ---------------------------------------------------
    def _build_tasks(self, rank: int) -> List[WgTask]:
        cfg, world = self.cfg, self.world
        gpu = self.cluster.gpu(rank)
        spec = gpu.spec
        chunk = cfg.chunk_rows(world)
        ctx = self.comm.ctx(rank)

        base_cost = gemv_wg_cost(cfg.tile_rows, cfg.n_per_gpu, cfg.itemsize)
        base_cost = WgCost(base_cost.flops, base_cost.bytes, cfg.flop_dtype,
                           spec.flag_op_latency, base_cost.access)
        zc_cost = base_cost.with_bytes(
            base_cost.bytes - cfg.tile_rows * cfg.itemsize)

        # Transfers in flight towards each owner, for the partialRdy chain.
        transfers: Dict[int, list] = {o: [] for o in range(world)}
        tasks: List[WgTask] = []
        task_id = 0

        # Phase A — compute all tiles (natural order: tile-index order).
        for owner in range(world):
            tiles = split_tiles(chunk, cfg.tile_rows)
            for i, (t0, t1) in enumerate(tiles):
                remote = owner != rank
                last_of_owner = i == len(tiles) - 1
                tasks.append(WgTask(
                    task_id=task_id,
                    cost=zc_cost if remote else base_cost,
                    meta={"remote": remote, "owner": owner, "phase": "A"},
                    compute=(self._make_gemv_compute(rank, owner, t0, t1)
                             if cfg.functional else None),
                    on_complete=self._make_store_hook(
                        ctx, rank, owner, t0, t1, transfers, last_of_owner)))
                task_id += 1

        # Phase B — reduce my chunk and broadcast (runs after phase A in
        # queue order; flags enforce cross-GPU correctness).
        final_transfers: Dict[int, list] = {d: [] for d in range(world)}
        tiles = split_tiles(chunk, cfg.tile_rows)
        for i, (t0, t1) in enumerate(tiles):
            tasks.append(WgTask(
                task_id=task_id, cost=WgCost(),
                meta={"remote": False, "owner": rank, "phase": "B"},
                on_complete=self._make_reduce_hook(
                    ctx, rank, t0, t1, final_transfers,
                    last=(i == len(tiles) - 1))))
            task_id += 1

        ordered = get_scheduler(self.cfg.scheduler)(tasks)
        # Phase-B tasks must stay after this rank's phase-A tasks; both
        # schedulers preserve that (B tasks are 'local'), but guard anyway.
        return ordered

    def _make_gemv_compute(self, rank: int, owner: int, t0: int, t1: int):
        cfg, world = self.cfg, self.world
        chunk = cfg.chunk_rows(world)
        rows = slice(owner * chunk + t0, owner * chunk + t1)

        def compute():
            tile = gemv(self.mats[rank][rows], self.vecs[rank])
            self._tile_payloads[(rank, owner, t0)] = tile
            if owner == rank:
                self.partial.local(rank)[rank, t0:t1] = tile

        return compute

    def _make_store_hook(self, ctx, rank, owner, t0, t1, transfers, last):
        cfg = self.cfg
        nbytes = float((t1 - t0) * cfg.itemsize)

        def hook(slot_ctx, task):
            if owner != rank:
                if slot_ctx.trace.enabled:
                    slot_ctx.record("put_issue", owner=owner, nbytes=nbytes)
                if cfg.functional:
                    # Functional payloads are fp32 (verification); timing
                    # always models the fp16 wire size.
                    tile = self._tile_payloads.pop((rank, owner, t0))
                    self.partial.local(owner)[rank, t0:t1] = tile
                ev = ctx.put_bytes(owner, nbytes)
                transfers[owner].append(ev)
                if last:
                    self._signal_when_done(ctx, transfers[owner], owner,
                                           self.partial_rdy, rank)
            elif last:
                self.partial_rdy.set(rank, rank)
            return None

        return hook

    def _make_reduce_hook(self, ctx, rank, t0, t1, final_transfers, last):
        cfg, world = self.cfg, self.world
        chunk = cfg.chunk_rows(world)
        itemsize = cfg.itemsize
        reduce_cost = WgCost(
            flops=float((world - 1) * (t1 - t0)),
            bytes=float((world + 1) * (t1 - t0) * itemsize),
            dtype="fp32")

        def hook(slot_ctx, task):
            # Wait for every source's contribution to my chunk.
            for src in range(world):
                yield self.partial_rdy.wait_until(rank, src)
            yield slot_ctx.charge(
                slot_ctx.gpu.wg_duration(reduce_cost, slot_ctx.occupancy))
            if cfg.functional:
                reduced = self.partial.local(rank)[:, t0:t1].sum(axis=0)
                self.y.local(rank)[rank * chunk + t0:rank * chunk + t1] = \
                    reduced
            # Broadcast (all-gather phase): direct stores to every peer.
            nbytes = float((t1 - t0) * itemsize)
            for d in range(world):
                if d == rank:
                    continue
                if slot_ctx.trace.enabled:
                    slot_ctx.record("put_issue", owner=d, nbytes=nbytes,
                                    phase="allgather")
                if cfg.functional:
                    self.y.local(d)[rank * chunk + t0:rank * chunk + t1] = \
                        reduced
                ev = ctx.put_bytes(d, nbytes)
                final_transfers[d].append(ev)
            if last:
                for d in range(world):
                    if d == rank:
                        continue
                    self._signal_when_done(ctx, final_transfers[d], d,
                                           self.final_rdy, rank)

        return hook

    def _signal_when_done(self, ctx, transfer_events, dst_rank, flags, idx):
        """Chain: when all transfers complete, put the flag (fenced)."""
        agg = self.sim.all_of([ev for ev in transfer_events
                               if not ev.processed])

        def fire(_ev):
            flag_ev = ctx.put_bytes(dst_rank, 8.0)
            flag_ev.add_callback(lambda _e: flags.set(dst_rank, idx))

        agg.add_callback(fire)

    def _epilogue(self, rank: int):
        def epilogue(slot_ctx):
            for owner in range(self.world):
                if owner == rank:
                    continue
                yield self.final_rdy.wait_until(rank, owner)

        return epilogue

    # -- execution ------------------------------------------------------------
    def run(self):
        self._tile_payloads: Dict = {}
        self.stats["rank_end_times"] = {}
        kernels = []
        for r in range(self.world):
            tasks = self._build_tasks(r)
            gpu = self.cluster.gpu(r)
            kernels.append(PersistentKernel(
                gpu, fused_kernel_resources(gpu.spec), tasks,
                name=f"fused_gemv_ar[{r}]",
                epilogue=self._epilogue(r),
                trace=self.harness.trace))

        def rank_proc(r, kern):
            yield from kern.run()
            self.stats["rank_end_times"][r] = self.sim.now

        procs = [self.sim.process(rank_proc(r, k), name=f"rank{r}")
                 for r, k in enumerate(kernels)]
        yield self.sim.all_of(procs)
        self.stats["occupancy"] = kernels[0].occupancy.fraction
        if self.cfg.functional:
            return [self.y.local(r) for r in range(self.world)]
        return None


class BaselineGemvAllReduce:
    """Bulk-synchronous baseline: GEMV kernel, then RCCL direct AllReduce."""

    def __init__(self, harness: OpHarness, cfg: GemvAllReduceConfig):
        cfg.validate(harness.world_size)
        self.harness = harness
        self.cfg = cfg
        self.sim = harness.sim
        self.cluster = harness.cluster
        self.comm = harness.comm
        self.world = harness.world_size
        self.stats: Dict = {}
        self.mats = self.vecs = None
        if cfg.functional:
            self.mats, self.vecs = make_gemv_inputs(cfg, self.world)

    def run(self):
        cfg, world = self.cfg, self.world
        n_tiles = cfg.m // cfg.tile_rows
        cost = gemv_wg_cost(cfg.tile_rows, cfg.n_per_gpu, cfg.itemsize)
        cost = WgCost(cost.flops, cost.bytes, cfg.flop_dtype, 0.0)
        res = baseline_kernel_resources(self.cluster.gpu(0).spec)

        partials: List[Optional[np.ndarray]] = [None] * world

        def rank_compute(r):
            if cfg.functional:
                partials[r] = gemv(self.mats[r], self.vecs[r])
            yield self.sim.timeout(
                bulk_kernel_time(self.cluster.gpu(r), n_tiles, cost, res))

        procs = [self.sim.process(rank_compute(r)) for r in range(world)]
        yield self.sim.all_of(procs)
        self.stats["compute_done"] = self.sim.now

        # Timing always models the fp16 wire size; functional outputs are
        # computed in fp32 on the side (matching the fused operator).
        yield from self.comm.collectives.all_reduce_bytes(
            float(cfg.m * cfg.itemsize), cfg.m, itemsize=cfg.itemsize,
            algorithm=cfg.algo or "direct")
        if cfg.functional:
            total = np.sum(np.stack(partials), axis=0)
            return [total.copy() for _ in range(world)]
        return None
