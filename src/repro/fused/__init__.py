"""The paper's fused computation-collective operators."""

from .base import (
    OpHarness,
    OpResult,
    baseline_kernel_resources,
    fused_kernel_resources,
)
from .embedding_alltoall import (
    BaselineEmbeddingAllToAll,
    EmbeddingA2AConfig,
    FusedEmbeddingAllToAll,
)
from .embedding_grad_alltoall import (
    BaselineEmbeddingGradAllToAll,
    FusedEmbeddingGradAllToAll,
)
from .gemm_alltoall import (
    BaselineGemmAllToAll,
    FusedGemmAllToAll,
    GemmA2AConfig,
)
from .gemv_allreduce import (
    BaselineGemvAllReduce,
    FusedGemvAllReduce,
    GemvAllReduceConfig,
)

__all__ = [
    "BaselineEmbeddingAllToAll",
    "BaselineEmbeddingGradAllToAll",
    "BaselineGemmAllToAll",
    "BaselineGemvAllReduce",
    "FusedEmbeddingGradAllToAll",
    "EmbeddingA2AConfig",
    "FusedEmbeddingAllToAll",
    "FusedGemmAllToAll",
    "FusedGemvAllReduce",
    "GemmA2AConfig",
    "GemvAllReduceConfig",
    "OpHarness",
    "OpResult",
    "baseline_kernel_resources",
    "fused_kernel_resources",
]
