"""Fused GEMM + All-to-All, written in the mini-Triton extension.

Mixture-of-Experts expert parallelism: each GPU hosts one expert FFN.
After the dispatch All-to-All, every expert's GEMM input holds token blocks
from each source GPU; the *combine* All-to-All returns output rows to their
origin — the collective this operator fuses (paper Sections II-A / III-B:
"implemented in Triton with communication extensions").

The tile program computes one ``BLOCK_M x BLOCK_N`` output tile; because
token rows are grouped by source GPU, a whole tile belongs to exactly one
destination, and the instance hands it to ``tl.comm.put_tile`` — a direct
store into the destination's output buffer (zero-copy scale-up).  The
operator layer adds the per-destination completion counting (the WG_Done
bitmask role) and fenced ``tileRdy`` signals, and persistent WGs exit after
their incoming flags arrive.

**Baseline**: a bulk-synchronous Triton-style GEMM kernel followed by an
RCCL-like All-to-All.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..frameworks.triton import build_tasks, jit, tl
from ..hw.gpu import WgCost
from ..kernels import PersistentKernel, bulk_kernel_time, get_scheduler
from ..ops.gemm import gemm_wg_cost
from .base import (
    OpHarness,
    baseline_kernel_resources,
    fused_kernel_resources,
)

__all__ = ["GemmA2AConfig", "FusedGemmAllToAll", "BaselineGemmAllToAll",
           "make_gemm_inputs", "gemm_a2a_kernel"]


@dataclass(frozen=True)
class GemmA2AConfig:
    """MoE expert GEMM: ``(tokens, model_dim) @ (model_dim, ffn_dim)``.

    ``tokens`` is the expert's post-dispatch row count (uniform top-k
    routing, as the paper assumes); rows are grouped by source GPU.
    """

    tokens: int
    model_dim: int
    ffn_dim: int
    block_m: int = 64
    block_n: int = 128
    itemsize: int = 2               #: fp16 activations/weights
    flop_dtype: str = "fp16"
    functional: bool = True
    scheduler: str = "comm_aware"
    #: Baseline All-to-All schedule (:mod:`repro.collectives` name or
    #: ``"auto"``); ``None`` keeps the legacy flat RCCL-like schedule.
    algo: Optional[str] = None
    seed: int = 0

    def validate(self, world: int) -> None:
        from ..collectives import check_algo
        check_algo("alltoall", self.algo)
        if min(self.tokens, self.model_dim, self.ffn_dim) < 1:
            raise ValueError("all GEMM dims must be >= 1")
        if self.tokens % (world * self.block_m):
            raise ValueError(
                f"tokens={self.tokens} must divide into world*block_m="
                f"{world * self.block_m}")
        if self.ffn_dim % self.block_n:
            raise ValueError(
                f"ffn_dim={self.ffn_dim} must be divisible by block_n="
                f"{self.block_n}")

    def tokens_per_src(self, world: int) -> int:
        return self.tokens // world

    def tile_wire_bytes(self) -> float:
        return float(self.block_m * self.block_n * self.itemsize)

    @property
    def label(self) -> str:
        def k(v):
            return f"{v // 1024}k" if v % 1024 == 0 and v >= 1024 else str(v)
        return f"{k(self.tokens)}|{k(self.model_dim)}|{k(self.ffn_dim)}"


def make_gemm_inputs(cfg: GemmA2AConfig, world: int):
    """Per-expert activations and weights (fp32 for exact verification)."""
    acts, weights = [], []
    scale = 1.0 / np.sqrt(cfg.model_dim)
    for r in range(world):
        rng = np.random.default_rng(cfg.seed + 17 * r)
        acts.append((rng.standard_normal((cfg.tokens, cfg.model_dim))
                     * scale).astype(np.float32))
        weights.append((rng.standard_normal((cfg.model_dim, cfg.ffn_dim))
                        * scale).astype(np.float32))
    return acts, weights


def reference_output(cfg: GemmA2AConfig, world: int, acts, weights):
    """Ground truth: expert GEMMs, then the combine permutation.

    out[s][r] = (acts[r] @ weights[r])[s-th token block].
    """
    tps = cfg.tokens_per_src(world)
    c = [a @ w for a, w in zip(acts, weights)]
    return [np.stack([c[r][s * tps:(s + 1) * tps] for r in range(world)])
            for s in range(world)]


# ---------------------------------------------------------------------------
# The tile program (what a user of the extended Triton would write)
# ---------------------------------------------------------------------------

@jit
def gemm_a2a_kernel(a, b, out_buf, rank, tokens_per_src, block_m, block_n,
                    wire_bytes):
    """One output tile of the expert GEMM, sent straight to its owner.

    ``out_buf`` is a symmetric ``(world, tokens_per_src, ffn_dim)`` tensor:
    destination ``dst`` receives its token block from expert ``rank`` at
    ``out_buf[dst][rank]``.
    """
    pid_m = tl.program_id(0)
    pid_n = tl.program_id(1)
    m0 = pid_m * block_m
    n0 = pid_n * block_n
    a_tile = tl.load(a, rows=(m0, block_m))            # (BM, K)
    b_tile = tl.load(b, cols=(n0, block_n))            # (K, BN)
    acc = tl.dot(a_tile, b_tile)                       # (BM, BN)
    dst = m0 // tokens_per_src
    row0 = m0 - dst * tokens_per_src
    tl.comm.put_tile(out_buf, acc, dst_rank=dst,
                     index=(rank, slice(row0, row0 + block_m),
                            slice(n0, n0 + block_n)),
                     wire_bytes=wire_bytes)


class FusedGemmAllToAll:
    """The paper's Triton-extension fused operator."""

    def __init__(self, harness: OpHarness, cfg: GemmA2AConfig):
        cfg.validate(harness.world_size)
        if harness.cluster.num_nodes != 1:
            raise ValueError(
                "FusedGemmAllToAll is a scale-up operator (single node)")
        self.harness = harness
        self.cfg = cfg
        self.sim = harness.sim
        self.cluster = harness.cluster
        self.comm = harness.comm
        self.world = harness.world_size
        self.stats: Dict = {}

        self.acts = self.weights = None
        self.out = None
        if cfg.functional:
            self.acts, self.weights = make_gemm_inputs(cfg, self.world)
            self.out = self.comm.alloc(
                (self.world, self.world, cfg.tokens_per_src(self.world),
                 cfg.ffn_dim), np.float32)
            # out.local(s)[r] = token block of s from expert r; the leading
            # world axis of the allocation is unused padding-free view:
            # index [dst] inside put_tile uses (rank, rows, cols) on the
            # destination's (world, tps, ffn) view.
        self.tile_rdy = self.comm.alloc_flags(self.world, name="tileRdy")

    def _grid(self):
        cfg, world = self.cfg, self.world
        return (cfg.tokens // cfg.block_m, cfg.ffn_dim // cfg.block_n)

    def _tile_cost(self, remote: bool) -> WgCost:
        cfg = self.cfg
        spec = self.cluster.gpus[0].spec
        cost = gemm_wg_cost(cfg.block_m, cfg.block_n, cfg.model_dim,
                            itemsize=cfg.itemsize, dtype=cfg.flop_dtype)
        cost = cost.plus(fixed=spec.flag_op_latency)
        if remote:
            # Zero-copy: the tile leaves over the fabric, no local C write.
            cost = cost.with_bytes(
                cost.bytes - cfg.block_m * cfg.block_n * cfg.itemsize)
        return cost

    def _build_tasks(self, rank: int):
        cfg, world = self.cfg, self.world
        grid = self._grid()
        tps = cfg.tokens_per_src(world)
        ctx = self.comm.ctx(rank)
        tiles_per_dest = (tps // cfg.block_m) * grid[1]
        remaining = {d: tiles_per_dest for d in range(world)}
        pending_by_dst: dict = {}

        def meta_fn(pos):
            dst = (pos[0] * cfg.block_m) // tps
            return {"remote": dst != rank, "dest": dst}

        if cfg.functional:
            # View of the destination layout for put_tile indexing: each
            # dest d's buffer is out.local(d)[d] -> (world, tps, ffn).
            out_view = _DestView(self.out)
            tasks = build_tasks(
                gemm_a2a_kernel, grid,
                (self.acts[rank], self.weights[rank], out_view, rank, tps,
                 cfg.block_m, cfg.block_n, cfg.tile_wire_bytes()),
                cost=self._tile_cost(remote=False),  # per-task cost set below
                shmem_ctx=ctx, meta_fn=meta_fn)
            for t in tasks:
                t.cost = self._tile_cost(remote=t.meta["remote"])
        else:
            # Analytic mirror of the Triton path (same tasks, no payloads).
            from ..kernels.grid import WgTask
            spec = self.cluster.gpu(rank).spec
            tasks = []
            for task_id, pos in enumerate(
                    (i, j) for i in range(grid[0]) for j in range(grid[1])):
                meta = meta_fn(pos)
                meta["grid_pos"] = pos

                def hook(slot_ctx, task, dst=meta["dest"]):
                    if slot_ctx.trace.enabled:
                        slot_ctx.record("put_issue", dest=dst)
                    ev = ctx.put_bytes(dst, cfg.tile_wire_bytes())
                    pending_by_dst.setdefault(dst, []).append(ev)
                    yield slot_ctx.charge(spec.shmem_api_latency)

                tasks.append(WgTask(task_id=task_id,
                                    cost=self._tile_cost(meta["remote"]),
                                    meta=meta, on_complete=hook))

        # Per-destination completion counting (the WG_Done bitmask role):
        # when the last tile for dest d has issued its put, chain a fenced
        # tileRdy signal behind the outstanding puts to d.
        for t in tasks:
            t.on_complete = self._wrap_hook(t.on_complete, t.meta["dest"],
                                            rank, ctx, remaining,
                                            pending_by_dst)
        return get_scheduler(cfg.scheduler)(tasks)

    def _wrap_hook(self, inner, dest, rank, ctx, remaining, pending_by_dst):
        def hook(slot_ctx, task):
            if inner is not None:
                gen = inner(slot_ctx, task)
                if gen is not None:
                    yield from gen
            remaining[dest] -= 1
            if remaining[dest] == 0:
                evs = [e for e in pending_by_dst.get(dest, [])
                       if not e.processed]

                def fire(_ev, dest=dest):
                    flag_ev = ctx.put_bytes(dest, 8.0)
                    flag_ev.add_callback(
                        lambda _e: self.tile_rdy.set(dest, rank))

                self.sim.all_of(evs).add_callback(fire)

        return hook

    def _epilogue(self, rank: int):
        def epilogue(slot_ctx):
            for src in range(self.world):
                yield self.tile_rdy.wait_until(rank, src)

        return epilogue

    def run(self):
        self.stats["rank_end_times"] = {}
        kernels = []
        for r in range(self.world):
            # The Triton path shares pending-put tracking between
            # build_tasks and the wrapper via the op's dicts; construct
            # per rank.
            tasks = self._build_tasks(r)
            gpu = self.cluster.gpu(r)
            kernels.append(PersistentKernel(
                gpu, fused_kernel_resources(gpu.spec), tasks,
                name=f"fused_gemm_a2a[{r}]", epilogue=self._epilogue(r),
                trace=self.harness.trace))

        def rank_proc(r, kern):
            yield from kern.run()
            self.stats["rank_end_times"][r] = self.sim.now

        procs = [self.sim.process(rank_proc(r, k), name=f"rank{r}")
                 for r, k in enumerate(kernels)]
        yield self.sim.all_of(procs)
        self.stats["occupancy"] = kernels[0].occupancy.fraction
        if self.cfg.functional:
            return [self.out.local(s)[s] for s in range(self.world)]
        return None


class _DestView:
    """Adapter: ``put_tile`` destination indexing for the output buffer.

    ``local(d)`` exposes dest ``d``'s ``(world, tps, ffn)`` receive buffer
    (row ``d`` of the symmetric allocation).
    """

    def __init__(self, symbuf):
        self._buf = symbuf

    def local(self, rank: int):
        return self._buf.local(rank)[rank]


class BaselineGemmAllToAll:
    """Bulk-synchronous baseline: GEMM kernel, then RCCL All-to-All."""

    def __init__(self, harness: OpHarness, cfg: GemmA2AConfig):
        cfg.validate(harness.world_size)
        self.harness = harness
        self.cfg = cfg
        self.sim = harness.sim
        self.cluster = harness.cluster
        self.comm = harness.comm
        self.world = harness.world_size
        self.stats: Dict = {}
        self.acts = self.weights = None
        if cfg.functional:
            self.acts, self.weights = make_gemm_inputs(cfg, self.world)

    def run(self):
        cfg, world = self.cfg, self.world
        grid = (cfg.tokens // cfg.block_m, cfg.ffn_dim // cfg.block_n)
        n_tiles = grid[0] * grid[1]
        cost = gemm_wg_cost(cfg.block_m, cfg.block_n, cfg.model_dim,
                            itemsize=cfg.itemsize, dtype=cfg.flop_dtype)
        res = baseline_kernel_resources(self.cluster.gpu(0).spec)

        outputs: List[Optional[np.ndarray]] = [None] * world

        def rank_compute(r):
            if cfg.functional:
                outputs[r] = self.acts[r] @ self.weights[r]
            yield self.sim.timeout(
                bulk_kernel_time(self.cluster.gpu(r), n_tiles, cost, res))

        procs = [self.sim.process(rank_compute(r)) for r in range(world)]
        yield self.sim.all_of(procs)
        self.stats["compute_done"] = self.sim.now

        tps = cfg.tokens_per_src(world)
        chunk = float(tps * cfg.ffn_dim * cfg.itemsize)
        yield from self.comm.collectives.all_to_all_bytes(
            chunk, algorithm=cfg.algo)
        if cfg.functional:
            return [np.stack([outputs[r][s * tps:(s + 1) * tps]
                              for r in range(world)])
                    for s in range(world)]
        return None
