"""Fused All-to-All + embedding backward (gradient scatter-add).

The paper's Fig. 15 overlaps the embedding operations of *both* passes with
their dependent All-to-All.  The backward direction inverts the forward
operator's structure: the collective comes *first* (each rank returns
pooled-output gradients to the rank owning the table), and the dependent
computation is the scatter-add of gradient rows into the embedding tables.

**Fused kernel** (receiver-driven): each rank's persistent kernel sends its
gradient slices with ``put_signal`` (non-blocking, communication-aware
order: remote first) and interleaves *apply* tasks that wait on incoming
``sliceRdy`` flags and immediately scatter-add the received slice — so the
gradient application overlaps the still-arriving All-to-All instead of
waiting for the full collective at a kernel boundary.

**Baseline**: an RCCL-like All-to-All kernel, then a bulk-synchronous
scatter-add kernel.

Gradient layout mirrors the forward output: rank ``d`` holds
``(local_batch, world*T, dim)`` gradients; the slice for (src=r, table t,
batch range) returns to rank ``r`` and is accumulated into its table ``t``
rows through the stored lookup indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..hw.gpu import WgCost
from ..kernels import PersistentKernel, WgTask, bulk_kernel_time, get_scheduler
from ..ops.embedding import embedding_wg_cost
from .base import (
    OpHarness,
    baseline_kernel_resources,
    fused_kernel_resources,
)
from .embedding_alltoall import (
    ITEMSIZE,
    EmbeddingA2AConfig,
    make_embedding_inputs,
)

__all__ = ["FusedEmbeddingGradAllToAll", "BaselineEmbeddingGradAllToAll",
           "make_gradients", "reference_table_grads",
           "SCATTER_ATOMIC_FACTOR"]

#: Scatter-add pays atomic-collision serialization over a plain gather.
SCATTER_ATOMIC_FACTOR = 1.5


def make_gradients(cfg: EmbeddingA2AConfig, world: int) -> List[np.ndarray]:
    """Per-rank upstream gradients: (local_batch, world*T, dim)."""
    local = cfg.local_batch(world)
    out = []
    for d in range(world):
        rng = np.random.default_rng(cfg.seed + 7777 * (d + 1))
        out.append(rng.standard_normal(
            (local, world * cfg.tables_per_gpu, cfg.dim)).astype(np.float32))
    return out


def scatter_add(table_grad: np.ndarray, indices: np.ndarray,
                grads: np.ndarray) -> None:
    """Accumulate pooled-output gradients into table rows.

    Each batch item's gradient flows to every row it pooled
    (sum pooling => unit jacobian per looked-up row).
    """
    batch, pooling = indices.shape
    np.add.at(table_grad, indices.reshape(-1),
              np.repeat(grads, pooling, axis=0))


def reference_table_grads(cfg: EmbeddingA2AConfig, world: int,
                          grads_by_dst: List[np.ndarray]) -> List[np.ndarray]:
    """Ground truth: gather all destinations' gradients, scatter per table."""
    _tables, indices = make_embedding_inputs(cfg, world)
    local = cfg.local_batch(world)
    t_per = cfg.tables_per_gpu
    out = []
    for r in range(world):
        tg = np.zeros((t_per, cfg.rows_per_table, cfg.dim), np.float32)
        for t in range(t_per):
            for d in range(world):
                batch_range = slice(d * local, (d + 1) * local)
                scatter_add(tg[t], indices[r][t, batch_range],
                            grads_by_dst[d][:, r * t_per + t, :])
        out.append(tg)
    return out


def _scatter_cost(cfg: EmbeddingA2AConfig, vectors: int) -> WgCost:
    """Scatter-add of ``vectors`` gradient rows (per logical WG batch)."""
    base = embedding_wg_cost(cfg.pooling, cfg.dim, ITEMSIZE)
    return WgCost(flops=base.flops * vectors,
                  bytes=base.bytes * vectors * SCATTER_ATOMIC_FACTOR,
                  dtype="fp32", access="gather")


class FusedEmbeddingGradAllToAll:
    """Backward fusion: gradient All-to-All overlapped with scatter-add."""

    def __init__(self, harness: OpHarness, cfg: EmbeddingA2AConfig):
        cfg.validate(harness.world_size)
        self.harness = harness
        self.cfg = cfg
        self.sim = harness.sim
        self.cluster = harness.cluster
        self.comm = harness.comm
        self.world = harness.world_size
        self.stats: Dict = {}

        self.grads = None
        self.indices = None
        self.table_grads = None
        self.recv = None
        if cfg.functional:
            self.grads = make_gradients(cfg, self.world)
            _tables, self.indices = make_embedding_inputs(cfg, self.world)
            self.table_grads = [
                np.zeros((cfg.tables_per_gpu, cfg.rows_per_table, cfg.dim),
                         np.float32)
                for _ in range(self.world)
            ]
            # Receive staging: (world [src dst-shard], local, T, dim).
            self.recv = self.comm.alloc(
                (self.world, cfg.local_batch(self.world),
                 cfg.tables_per_gpu, cfg.dim), np.float32)
        n_s = cfg.slices_per_stripe(self.world)
        self.n_flags = self.world * cfg.tables_per_gpu * n_s
        self.flags = [self.comm.alloc_flags(self.n_flags, name=f"gradRdy[{r}]")
                      for r in range(self.world)]

    def flag_index(self, src_dst: int, table: int, s: int) -> int:
        n_s = self.cfg.slices_per_stripe(self.world)
        return (src_dst * self.cfg.tables_per_gpu + table) * n_s + s

    # -- task construction ---------------------------------------------------
    def _build_tasks(self, rank: int) -> List[WgTask]:
        cfg, world = self.cfg, self.world
        n_s = cfg.slices_per_stripe(world)
        ctx = self.comm.ctx(rank)
        spec = self.cluster.gpu(rank).spec
        slice_bytes = cfg.slice_bytes()

        # Send tasks: ship my gradient slices to their table owners.  The
        # send itself is bandwidth work, not FLOPs — modelled as a stream
        # read of the slice plus the API latency.
        send_cost = WgCost(bytes=slice_bytes, dtype="fp32",
                           fixed=spec.flag_op_latency)
        tasks: List[WgTask] = []
        task_id = 0
        for owner in range(world):
            remote = owner != rank
            for t in range(cfg.tables_per_gpu):
                for s in range(n_s):
                    tasks.append(WgTask(
                        task_id=task_id, cost=send_cost,
                        meta={"remote": remote, "role": "send",
                              "owner": owner, "table": t, "slice": s},
                        on_complete=self._make_send_hook(
                            ctx, rank, owner, t, s)))
                    task_id += 1

        # Apply tasks: wait for each incoming slice, scatter-add it.
        # Receiver-side communication-aware order: locally-produced
        # gradients first (their flags are set by this rank's own sends),
        # so the scatter-add overlaps the remote slices still in flight —
        # otherwise every physical WG head-of-line blocks on the wire.
        apply_cost = _scatter_cost(cfg, cfg.slice_vectors)
        src_order = ([rank] + [r for r in range(world) if r != rank]
                     if cfg.scheduler == "comm_aware" else range(world))
        for src_dst in src_order:
            for t in range(cfg.tables_per_gpu):
                for s in range(n_s):
                    tasks.append(WgTask(
                        task_id=task_id, cost=WgCost(),
                        meta={"remote": False, "role": "apply",
                              "src": src_dst, "table": t, "slice": s},
                        on_complete=self._make_apply_hook(
                            rank, src_dst, t, s, apply_cost)))
                    task_id += 1
        return get_scheduler(cfg.scheduler)(tasks)

    def _make_send_hook(self, ctx, rank: int, owner: int, t: int, s: int):
        cfg, world = self.cfg, self.world
        t_per = cfg.tables_per_gpu
        fidx = self.flag_index(rank, t, s)
        rows = slice(s * cfg.slice_vectors, (s + 1) * cfg.slice_vectors)

        def hook(slot_ctx, task):
            if slot_ctx.trace.enabled:
                slot_ctx.record("put_issue", owner=owner, table=t, slice=s)
            if cfg.functional:
                payload = self.grads[rank][rows, owner * t_per + t, :]
                ctx.put_signal(self.recv, payload, dst_rank=owner,
                               flags=self.flags[owner], flag_idx=fidx,
                               dst_index=(rank, rows, t, slice(None)))
            else:
                ctx.put_signal_bytes(owner, cfg.slice_bytes(),
                                     self.flags[owner], fidx, notify=False)
            if owner != rank:
                yield slot_ctx.charge(
                    self.cluster.gpu(rank).spec.shmem_api_latency)

        return hook

    def _make_apply_hook(self, rank: int, src_dst: int, t: int, s: int,
                         apply_cost: WgCost):
        cfg, world = self.cfg, self.world
        local = cfg.local_batch(world)
        fidx = self.flag_index(src_dst, t, s)
        rows = slice(s * cfg.slice_vectors, (s + 1) * cfg.slice_vectors)

        def hook(slot_ctx, task):
            yield self.flags[rank].wait_until(rank, fidx)
            yield slot_ctx.charge(
                slot_ctx.gpu.wg_duration(apply_cost, slot_ctx.occupancy))
            if cfg.functional:
                batch = slice(src_dst * local + s * cfg.slice_vectors,
                              src_dst * local + (s + 1) * cfg.slice_vectors)
                scatter_add(self.table_grads[rank][t],
                            self.indices[rank][t, batch],
                            self.recv.local(rank)[src_dst, rows, t, :])

        return hook

    # -- execution ------------------------------------------------------------
    def run(self):
        self.stats["rank_end_times"] = {}
        kernels = []
        for r in range(self.world):
            gpu = self.cluster.gpu(r)
            kernels.append(PersistentKernel(
                gpu, fused_kernel_resources(gpu.spec),
                self._build_tasks(r), name=f"fused_emb_grad_a2a[{r}]",
                trace=self.harness.trace))

        def rank_proc(r, kern):
            yield from kern.run()
            self.stats["rank_end_times"][r] = self.sim.now

        procs = [self.sim.process(rank_proc(r, k), name=f"rank{r}")
                 for r, k in enumerate(kernels)]
        yield self.sim.all_of(procs)
        if self.cfg.functional:
            return self.table_grads
        return None


class BaselineEmbeddingGradAllToAll:
    """Bulk-synchronous: gradient All-to-All kernel, then scatter kernel."""

    def __init__(self, harness: OpHarness, cfg: EmbeddingA2AConfig):
        cfg.validate(harness.world_size)
        self.harness = harness
        self.cfg = cfg
        self.sim = harness.sim
        self.cluster = harness.cluster
        self.comm = harness.comm
        self.world = harness.world_size
        self.stats: Dict = {}
        self.grads = self.indices = None
        if cfg.functional:
            self.grads = make_gradients(cfg, self.world)
            _t, self.indices = make_embedding_inputs(cfg, self.world)

    def run(self):
        cfg, world = self.cfg, self.world
        local = cfg.local_batch(world)
        t_per = cfg.tables_per_gpu
        chunk = float(local * t_per * cfg.dim * ITEMSIZE)
        yield from self.comm.collectives.all_to_all_bytes(
            chunk, algorithm=cfg.algo)

        # Scatter-add kernel: one logical WG per gradient vector.
        n_vectors = cfg.global_batch * t_per
        cost = _scatter_cost(cfg, 1)

        def rank_proc(r):
            gpu = self.cluster.gpu(r)
            yield self.sim.timeout(bulk_kernel_time(
                gpu, n_vectors, cost,
                baseline_kernel_resources(gpu.spec)))

        procs = [self.sim.process(rank_proc(r)) for r in range(world)]
        yield self.sim.all_of(procs)

        if cfg.functional:
            return reference_table_grads(cfg, world, self.grads)
        return None
