"""Alpha-beta(-gamma) communication models for the analytic backend.

Closed-form twins of the DES transport stack:

* **fabric puts** — one :class:`~repro.sim.FairShareLink` per directed GPU
  pair; a single flow costs ``latency + bytes/bandwidth`` (alpha-beta), and
  ``flows`` concurrent streams on one link divide the bandwidth evenly.
* **RDMA puts** — the NIC TX engine serializes the per-message processing
  overhead (the gamma term bounding message rate) while payload bandwidth
  is charged once at the destination port, so drains are pipelined
  cut-through exactly as :meth:`repro.hw.nic.Nic.rdma_put` models them.
* **RCCL-like collectives** — structural mirrors of
  :class:`repro.comm.collectives.CollectiveLibrary`'s timing-only variants
  (launch, blit-kernel staging at :data:`BLIT_EFFICIENCY`, per-phase
  barriers), which the DES itself evaluates in closed form per rank; for
  single-flow-per-link patterns the two engines agree exactly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..collectives import CommTopology, resolve_allreduce, resolve_alltoall
from ..collectives.base import (
    AUTO,
    PAIRWISE_MAX_BYTES,
    TREE_MAX_BYTES,
    default_allreduce,
    default_alltoall,
    get_allreduce,
    get_alltoall,
)
from ..comm.collectives import BLIT_EFFICIENCY
from ..comm.shmem import FLAG_BYTES, ShmemContext
from ..hw.platform import PlatformLike, get_platform
from .device import device_model

__all__ = ["CommModel", "FLAG_BYTES"]


class CommModel:
    """Closed-form communication timing on one platform's cluster shape."""

    def __init__(self, platform: PlatformLike = None, num_nodes: int = 1,
                 gpus_per_node: int = 4, cpu_proxy: bool = False,
                 blit_efficiency: float = BLIT_EFFICIENCY):
        if num_nodes < 1 or gpus_per_node < 1:
            raise ValueError("cluster shape counts must be >= 1")
        self.platform = get_platform(platform)
        self.device = device_model(self.platform)
        self.link = self.platform.link
        self.nic = self.platform.nic
        self.num_nodes = num_nodes
        self.gpus_per_node = gpus_per_node
        self.world = num_nodes * gpus_per_node
        self.cpu_proxy = cpu_proxy
        self.blit_efficiency = blit_efficiency

    # -- GPU-initiated puts (fused-kernel transport) -------------------------
    def _proxy_latency(self) -> float:
        return ShmemContext.CPU_PROXY_LATENCY if self.cpu_proxy else 0.0

    def fabric_put_time(self, nbytes: float, flows: int = 1) -> float:
        """One zero-copy store stream over a directed fabric link."""
        return self.link.latency + nbytes * max(flows, 1) / self.link.bandwidth

    def rdma_put_time(self, nbytes: float) -> float:
        """One GPU-initiated RDMA put, end to end (TX overhead + wire)."""
        return (self._proxy_latency() + self.nic.message_overhead
                + self.nic.latency + nbytes / self.nic.bandwidth)

    def put_time(self, nbytes: float, remote_node: bool) -> float:
        return (self.rdma_put_time(nbytes) if remote_node
                else self.fabric_put_time(nbytes))

    def drain_time(self, total_bytes: float, n_messages: int,
                   remote_node: bool) -> float:
        """Steady-state time to push a stream of puts through one channel.

        Fabric links are pure bandwidth; the NIC is the max of its
        bandwidth term and the per-message gamma term (TX serializes one
        ``message_overhead`` per put; flag writes count as messages too).
        """
        if remote_node:
            return max(total_bytes / self.nic.bandwidth,
                       n_messages * self.nic.message_overhead)
        return total_bytes / self.link.bandwidth

    def signal_tail(self, nbytes: float, remote_node: bool) -> float:
        """Latency from *issuing* the final put to its fenced flag landing:
        the payload's wire time plus the chained flag write (the paper's
        "PUT data, remote fence, PUT sliceRdy" idiom)."""
        return (self.put_time(nbytes, remote_node)
                + self.put_time(FLAG_BYTES, remote_node))

    # -- RCCL-like collectives (baseline transport) --------------------------
    def launch(self) -> float:
        return self.device.spec.kernel_launch_overhead

    def local_copy_time(self, nbytes: float) -> float:
        """Blit-kernel local copy: read + write through HBM (full occ)."""
        return 2.0 * nbytes / self.device.hbm_bandwidth(1.0)

    def reduce_time(self, n_elems: int, n_sources: int,
                    itemsize: int) -> float:
        """Mirror of ``CollectiveLibrary._reduce_time``."""
        if n_sources <= 1:
            return 0.0
        flops = float(n_elems) * (n_sources - 1)
        read_bytes = float(n_elems) * itemsize * n_sources
        flop_t = flops / self.device.spec.flop_rate("fp32")
        mem_t = read_bytes / self.device.hbm_bandwidth(1.0)
        return max(flop_t, mem_t)

    def blit_route_time(self, nbytes: float, remote_node: bool) -> float:
        """One baseline-collective chunk: blit staging intra-node, RDMA
        (no blit, no proxy — collectives are host-launched) inter-node."""
        if remote_node:
            return (self.nic.message_overhead + self.nic.latency
                    + nbytes / self.nic.bandwidth)
        return self.link.latency + (nbytes / self.blit_efficiency
                                    / self.link.bandwidth)

    # Backwards-compatible alias (pre-algorithm-library name).
    _blit_route_time = blit_route_time

    def nic_pipeline_time(self, n_msgs: int, msg_bytes: float,
                          rx_msgs: Optional[int] = None) -> float:
        """``n_msgs`` concurrent off-node messages through one shared NIC.

        The TX engine serializes the per-message overhead of every
        off-node chunk, and the destination's RX port serializes their
        payload bytes — a two-stage pipeline whose last completion is
        bounded by the slower stage plus one unit of the other.
        ``rx_msgs`` overrides the arrival count at the busiest RX port
        when it differs from the TX count (asymmetric schedules like the
        tree's cross-node rounds); it defaults to ``n_msgs``.
        """
        rx = n_msgs if rx_msgs is None else rx_msgs
        mo = self.nic.message_overhead
        wire = msg_bytes / self.nic.bandwidth
        return self.nic.latency + max(n_msgs * mo + wire,
                                      mo + rx * wire)

    def topology(self) -> CommTopology:
        return CommTopology(self.num_nodes, self.gpus_per_node)

    def alltoall_time(self, chunk_bytes: float,
                      algo: Optional[str] = None) -> float:
        """Mirror of ``CollectiveLibrary.all_to_all_bytes`` (symmetric
        ranks).  ``algo`` names a schedule from
        :mod:`repro.collectives` (``None`` = the legacy flat one); each
        closed form mirrors its DES schedule round for round."""
        if chunk_bytes < 0:
            raise ValueError("chunk_bytes must be >= 0")
        algorithm = resolve_alltoall(algo, self.topology(), chunk_bytes)
        return algorithm.analytic_time(self, self.topology(), chunk_bytes)

    def allreduce_time(self, nbytes: float, n_elems: int, itemsize: int = 4,
                       algo: Optional[str] = None) -> float:
        """Mirror of ``CollectiveLibrary.all_reduce_bytes``.  ``algo``
        names a schedule from :mod:`repro.collectives`; ``None`` keeps
        the legacy default (direct inside a node, ring across nodes)."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        topo = self.topology()
        algorithm = resolve_allreduce(algo, topo, nbytes)
        if topo.world == 1:
            return self.launch()
        return algorithm.analytic_time(self, topo, nbytes, n_elems, itemsize)

    def allreduce_direct_time(self, nbytes: float, n_elems: int,
                              itemsize: int = 4) -> float:
        """Mirror of ``all_reduce_bytes(algorithm="direct")``: launch,
        reduce-scatter phase, local reduction, all-gather phase."""
        return self.allreduce_time(nbytes, n_elems, itemsize, algo="direct")

    # -- vectorized twins ----------------------------------------------------
    # Array-over-the-scenario-axis forms of the closed forms above.  The
    # cluster shape (and hence ``remote_node`` at every call site) is
    # uniform over a batch; byte counts are the scenario columns.  Every
    # expression replicates the scalar method's operation order, so the
    # results are elementwise bit-identical.

    def fabric_put_time_batch(self, nbytes, flows: int = 1) -> np.ndarray:
        return (self.link.latency
                + nbytes * max(flows, 1) / self.link.bandwidth)

    def rdma_put_time_batch(self, nbytes) -> np.ndarray:
        return (self._proxy_latency() + self.nic.message_overhead
                + self.nic.latency + nbytes / self.nic.bandwidth)

    def put_time_batch(self, nbytes, remote_node: bool) -> np.ndarray:
        return (self.rdma_put_time_batch(nbytes) if remote_node
                else self.fabric_put_time_batch(nbytes))

    def drain_time_batch(self, total_bytes, n_messages,
                         remote_node: bool) -> np.ndarray:
        if remote_node:
            return np.maximum(total_bytes / self.nic.bandwidth,
                              n_messages * self.nic.message_overhead)
        return total_bytes / self.link.bandwidth

    def signal_tail_batch(self, nbytes, remote_node: bool) -> np.ndarray:
        return (self.put_time_batch(nbytes, remote_node)
                + self.put_time(FLAG_BYTES, remote_node))

    def local_copy_time_batch(self, nbytes) -> np.ndarray:
        return 2.0 * nbytes / self.device.hbm_bandwidth(1.0)

    def reduce_time_batch(self, n_elems, n_sources: int,
                          itemsize: int) -> np.ndarray:
        """Array twin of :meth:`reduce_time` (``n_sources`` is uniform —
        it comes from the batch's topology constants)."""
        if n_sources <= 1:
            return np.zeros(len(np.asarray(n_elems)))
        elems = np.asarray(n_elems, np.float64)
        flops = elems * (n_sources - 1)
        read_bytes = elems * itemsize * n_sources
        flop_t = flops / self.device.spec.flop_rate("fp32")
        mem_t = read_bytes / self.device.hbm_bandwidth(1.0)
        return np.maximum(flop_t, mem_t)

    def blit_route_time_batch(self, nbytes, remote_node: bool) -> np.ndarray:
        if remote_node:
            return (self.nic.message_overhead + self.nic.latency
                    + nbytes / self.nic.bandwidth)
        return self.link.latency + (nbytes / self.blit_efficiency
                                    / self.link.bandwidth)

    def nic_pipeline_time_batch(self, n_msgs, msg_bytes,
                                rx_msgs=None) -> np.ndarray:
        rx = n_msgs if rx_msgs is None else rx_msgs
        mo = self.nic.message_overhead
        wire = msg_bytes / self.nic.bandwidth
        return self.nic.latency + np.maximum(n_msgs * mo + wire,
                                             mo + rx * wire)

    def _check_supported(self, kind: str, name: str, algo) -> None:
        """Mirror of ``collectives.base._resolve``'s topology guard."""
        topo = self.topology()
        reason = algo.supports(topo)
        if reason is not None:
            raise ValueError(
                f"{kind} algorithm {name!r} does not support "
                f"{topo.num_nodes}x{topo.gpus_per_node}: {reason}")

    def alltoall_time_batch(self, chunk_bytes,
                            algo: Optional[str] = None) -> np.ndarray:
        """Array twin of :meth:`alltoall_time`.  A named (or defaulted)
        schedule evaluates the whole batch in one call; ``"auto"``
        replicates the size selector with masks and evaluates each chosen
        schedule on its sub-batch."""
        chunk_bytes = np.asarray(chunk_bytes, np.float64)
        if np.any(chunk_bytes < 0):
            raise ValueError("chunk_bytes must be >= 0")
        topo = self.topology()
        if algo != AUTO:
            name = default_alltoall(topo) if algo is None else algo
            algorithm = get_alltoall(name)
            self._check_supported("alltoall", name, algorithm)
            return algorithm.analytic_time_batch(self, topo, chunk_bytes)
        out = np.empty_like(chunk_bytes)
        if topo.num_nodes == 1:
            masks = {"flat": np.ones(len(chunk_bytes), bool)}
        else:
            small = chunk_bytes <= PAIRWISE_MAX_BYTES
            staged = "hier" if topo.gpus_per_node > 1 else "pairwise"
            masks = {staged: small, "flat": ~small}
        for name, mask in masks.items():
            if not np.any(mask):
                continue
            algorithm = get_alltoall(name)
            self._check_supported("alltoall", name, algorithm)
            out[mask] = algorithm.analytic_time_batch(self, topo,
                                                      chunk_bytes[mask])
        return out

    def allreduce_time_batch(self, nbytes, n_elems, itemsize: int = 4,
                             algo: Optional[str] = None) -> np.ndarray:
        """Array twin of :meth:`allreduce_time` (same ``world == 1``
        early-out after resolution, same auto-selector thresholds)."""
        nbytes = np.asarray(nbytes, np.float64)
        n_elems = np.asarray(n_elems, np.int64)
        if np.any(nbytes < 0):
            raise ValueError("nbytes must be >= 0")
        topo = self.topology()
        if algo != AUTO:
            name = default_allreduce(topo) if algo is None else algo
            algorithm = get_allreduce(name)
            self._check_supported("allreduce", name, algorithm)
            if topo.world == 1:
                return np.full(len(nbytes), self.launch())
            return algorithm.analytic_time_batch(self, topo, nbytes,
                                                 n_elems, itemsize)
        if topo.num_nodes == 1:
            masks = {"direct": np.ones(len(nbytes), bool)}
        else:
            small = nbytes <= TREE_MAX_BYTES
            staged = "hier" if topo.gpus_per_node > 1 else "tree"
            masks = {staged: small, "ring": ~small}
        if topo.world == 1:
            return np.full(len(nbytes), self.launch())
        out = np.empty_like(nbytes)
        for name, mask in masks.items():
            if not np.any(mask):
                continue
            algorithm = get_allreduce(name)
            self._check_supported("allreduce", name, algorithm)
            isz = itemsize[mask] if np.ndim(itemsize) else itemsize
            out[mask] = algorithm.analytic_time_batch(
                self, topo, nbytes[mask], n_elems[mask], isz)
        return out
