"""Per-platform closed-form compute timing (no simulator, no event loop).

:class:`DeviceModel` evaluates exactly the quantities
:class:`repro.hw.gpu.Gpu` computes inside the DES — occupancy from the
hardware allocation rules, roofline WG durations against the
occupancy-dependent HBM model, bulk-kernel spans with the reduced-occupancy
tail round, and the persistent kernel's grid-size balancing — as pure
functions of the frozen :class:`~repro.hw.platform.Platform`.  Wherever the
DES consumes one of these numbers directly (baseline kernels, collectives'
reduce steps), the analytic backend therefore agrees to the last bit; the
approximations live one level up, in :mod:`repro.analytic.ops`.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

from ..hw.gpu import KernelResources, OccupancyInfo, WgCost, occupancy_for
from ..hw.memory import HbmModel
from ..hw.platform import Platform, PlatformLike, get_platform

__all__ = ["DeviceModel", "device_model"]

#: Mirror of :data:`repro.kernels.kernel._BALANCE_ROUNDS` — task loops at
#: most this many rounds long get a balanced persistent-kernel grid.
_BALANCE_ROUNDS = 8


class DeviceModel:
    """Closed-form compute timing for one platform's GPU."""

    def __init__(self, platform: Platform):
        self.platform = platform
        self.spec = platform.gpu
        self.hbm = HbmModel(platform.gpu)
        self.base_res: KernelResources = platform.baseline_resources()
        self.fused_res: KernelResources = platform.fused_resources()

    # -- occupancy -----------------------------------------------------------
    def occupancy(self, res: KernelResources) -> OccupancyInfo:
        return occupancy_for(self.spec, res)

    def persistent_occupancy(self, res: KernelResources, n_tasks: int,
                             n_work: Optional[int] = None,
                             occupancy_limit: Optional[float] = None
                             ) -> OccupancyInfo:
        """Mirror of :class:`~repro.kernels.kernel.PersistentKernel`'s grid
        selection: explicit occupancy limit, or grid-size balancing for
        short task loops (``n_work`` = work-bearing task count)."""
        occ = self.occupancy(res)
        if occupancy_limit is not None:
            if not (0.0 < occupancy_limit <= 1.0):
                raise ValueError(
                    f"occupancy_limit must be in (0, 1], got {occupancy_limit}")
            occ = occ.limited_to(
                max(1, int(round(occ.resident_wgs * occupancy_limit))))
            if n_tasks < occ.resident_wgs:
                occ = occ.limited_to(n_tasks)
        else:
            n_work = n_work if n_work else n_tasks
            rounds = max(1, -(-n_work // occ.resident_wgs))
            if rounds <= _BALANCE_ROUNDS:
                balanced = min(occ.resident_wgs, -(-n_work // rounds))
                occ = occ.limited_to(balanced)
        return occ

    def n_slots(self, occ: OccupancyInfo, n_tasks: int) -> int:
        return min(occ.resident_wgs, n_tasks)

    # -- timing --------------------------------------------------------------
    def wg_time(self, cost: WgCost, occ: OccupancyInfo) -> float:
        """Roofline duration of one WG (mirror of :meth:`Gpu.wg_duration`)."""
        resident = max(occ.resident_wgs, 1)
        mem_time = 0.0
        if cost.bytes > 0:
            bw = self.hbm.achieved_bandwidth(occ.fraction,
                                             access=cost.access) / resident
            mem_time = cost.bytes / bw
        flop_time = 0.0
        if cost.flops > 0:
            per_wg = self.spec.flop_rate(cost.dtype) / max(resident,
                                                           self.spec.num_cus)
            flop_time = cost.flops / per_wg
        return max(mem_time, flop_time) + cost.fixed

    def task_time(self, cost: WgCost, occ: OccupancyInfo,
                  repeat: int = 1) -> float:
        """One logical-WG task: roofline duration plus dispatch overhead."""
        return repeat * (self.wg_time(cost, occ)
                         + self.spec.wg_dispatch_overhead)

    def bulk_kernel_time(self, n_wgs: int, cost: WgCost,
                         res: KernelResources) -> float:
        """Mirror of :func:`repro.kernels.kernel.bulk_kernel_time`."""
        if n_wgs < 1:
            raise ValueError("n_wgs must be >= 1")
        occ = self.occupancy(res)
        total = self.spec.kernel_launch_overhead
        full_rounds, tail = divmod(n_wgs, occ.resident_wgs)
        if full_rounds:
            total += full_rounds * (self.wg_time(cost, occ)
                                    + self.spec.wg_dispatch_overhead)
        if tail:
            tail_occ = occ.limited_to(tail)
            total += (self.wg_time(cost, tail_occ)
                      + self.spec.wg_dispatch_overhead)
        return total

    def hbm_bandwidth(self, occupancy: float = 1.0,
                      access: str = "stream") -> float:
        return self.hbm.achieved_bandwidth(occupancy, access=access)


@lru_cache(maxsize=64)
def _device_model(platform: Platform) -> DeviceModel:
    return DeviceModel(platform)


def device_model(platform: PlatformLike = None) -> DeviceModel:
    """Memoized :class:`DeviceModel` for anything resolving to a platform."""
    return _device_model(get_platform(platform))
