"""Per-platform closed-form compute timing (no simulator, no event loop).

:class:`DeviceModel` evaluates exactly the quantities
:class:`repro.hw.gpu.Gpu` computes inside the DES — occupancy from the
hardware allocation rules, roofline WG durations against the
occupancy-dependent HBM model, bulk-kernel spans with the reduced-occupancy
tail round, and the persistent kernel's grid-size balancing — as pure
functions of the frozen :class:`~repro.hw.platform.Platform`.  Wherever the
DES consumes one of these numbers directly (baseline kernels, collectives'
reduce steps), the analytic backend therefore agrees to the last bit; the
approximations live one level up, in :mod:`repro.analytic.ops`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Union

import numpy as np

from ..hw.gpu import KernelResources, OccupancyInfo, WgCost, occupancy_for
from ..hw.memory import HbmModel
from ..hw.platform import Platform, PlatformLike, get_platform

__all__ = ["BatchOccupancy", "DeviceModel", "device_model"]

#: Mirror of :data:`repro.kernels.kernel._BALANCE_ROUNDS` — task loops at
#: most this many rounds long get a balanced persistent-kernel grid.
_BALANCE_ROUNDS = 8


@dataclass(frozen=True)
class BatchOccupancy:
    """Array-valued :class:`~repro.hw.gpu.OccupancyInfo` over a scenario
    axis.  ``waves_per_wg`` never changes under :meth:`limited_to`, so it
    stays scalar; the three fields the grid-size rules touch are columns.
    """

    waves_per_wg: int
    wgs_per_cu: np.ndarray      #: int64
    resident_wgs: np.ndarray    #: int64
    fraction: np.ndarray        #: float64

    @classmethod
    def broadcast(cls, occ: OccupancyInfo, n: int) -> "BatchOccupancy":
        return cls(occ.waves_per_wg,
                   np.full(n, occ.wgs_per_cu, np.int64),
                   np.full(n, occ.resident_wgs, np.int64),
                   np.full(n, occ.fraction, np.float64))

    def limited_to(self, max_resident: np.ndarray) -> "BatchOccupancy":
        """Array twin of :meth:`OccupancyInfo.limited_to` — the clamp
        applies exactly where ``max_resident < resident_wgs`` (the scalar
        identity short-circuit), elementwise bit-identical."""
        max_resident = np.asarray(max_resident, np.int64)
        if np.any(max_resident < 1):
            raise ValueError("max_resident must be >= 1")
        apply = max_resident < self.resident_wgs
        new_wpc = np.maximum(1, self.wgs_per_cu * max_resident
                             // self.resident_wgs)
        new_frac = self.fraction * max_resident / self.resident_wgs
        return BatchOccupancy(
            self.waves_per_wg,
            np.where(apply, new_wpc, self.wgs_per_cu),
            np.where(apply, max_resident, self.resident_wgs),
            np.where(apply, new_frac, self.fraction))

    def where(self, cond: np.ndarray,
              other: "BatchOccupancy") -> "BatchOccupancy":
        """Elementwise select: ``self`` where ``cond`` else ``other``."""
        return BatchOccupancy(
            self.waves_per_wg,
            np.where(cond, self.wgs_per_cu, other.wgs_per_cu),
            np.where(cond, self.resident_wgs, other.resident_wgs),
            np.where(cond, self.fraction, other.fraction))


class DeviceModel:
    """Closed-form compute timing for one platform's GPU."""

    def __init__(self, platform: Platform):
        self.platform = platform
        self.spec = platform.gpu
        self.hbm = HbmModel(platform.gpu)
        self.base_res: KernelResources = platform.baseline_resources()
        self.fused_res: KernelResources = platform.fused_resources()

    # -- occupancy -----------------------------------------------------------
    def occupancy(self, res: KernelResources) -> OccupancyInfo:
        return occupancy_for(self.spec, res)

    def persistent_occupancy(self, res: KernelResources, n_tasks: int,
                             n_work: Optional[int] = None,
                             occupancy_limit: Optional[float] = None
                             ) -> OccupancyInfo:
        """Mirror of :class:`~repro.kernels.kernel.PersistentKernel`'s grid
        selection: explicit occupancy limit, or grid-size balancing for
        short task loops (``n_work`` = work-bearing task count)."""
        occ = self.occupancy(res)
        if occupancy_limit is not None:
            if not (0.0 < occupancy_limit <= 1.0):
                raise ValueError(
                    f"occupancy_limit must be in (0, 1], got {occupancy_limit}")
            occ = occ.limited_to(
                max(1, int(round(occ.resident_wgs * occupancy_limit))))
            if n_tasks < occ.resident_wgs:
                occ = occ.limited_to(n_tasks)
        else:
            n_work = n_work if n_work else n_tasks
            rounds = max(1, -(-n_work // occ.resident_wgs))
            if rounds <= _BALANCE_ROUNDS:
                balanced = min(occ.resident_wgs, -(-n_work // rounds))
                occ = occ.limited_to(balanced)
        return occ

    def n_slots(self, occ: OccupancyInfo, n_tasks: int) -> int:
        return min(occ.resident_wgs, n_tasks)

    # -- timing --------------------------------------------------------------
    def wg_time(self, cost: WgCost, occ: OccupancyInfo) -> float:
        """Roofline duration of one WG (mirror of :meth:`Gpu.wg_duration`)."""
        resident = max(occ.resident_wgs, 1)
        mem_time = 0.0
        if cost.bytes > 0:
            bw = self.hbm.achieved_bandwidth(occ.fraction,
                                             access=cost.access) / resident
            mem_time = cost.bytes / bw
        flop_time = 0.0
        if cost.flops > 0:
            per_wg = self.spec.flop_rate(cost.dtype) / max(resident,
                                                           self.spec.num_cus)
            flop_time = cost.flops / per_wg
        return max(mem_time, flop_time) + cost.fixed

    def task_time(self, cost: WgCost, occ: OccupancyInfo,
                  repeat: int = 1) -> float:
        """One logical-WG task: roofline duration plus dispatch overhead."""
        return repeat * (self.wg_time(cost, occ)
                         + self.spec.wg_dispatch_overhead)

    def bulk_kernel_time(self, n_wgs: int, cost: WgCost,
                         res: KernelResources) -> float:
        """Mirror of :func:`repro.kernels.kernel.bulk_kernel_time`."""
        if n_wgs < 1:
            raise ValueError("n_wgs must be >= 1")
        occ = self.occupancy(res)
        total = self.spec.kernel_launch_overhead
        full_rounds, tail = divmod(n_wgs, occ.resident_wgs)
        if full_rounds:
            total += full_rounds * (self.wg_time(cost, occ)
                                    + self.spec.wg_dispatch_overhead)
        if tail:
            tail_occ = occ.limited_to(tail)
            total += (self.wg_time(cost, tail_occ)
                      + self.spec.wg_dispatch_overhead)
        return total

    def hbm_bandwidth(self, occupancy: float = 1.0,
                      access: str = "stream") -> float:
        return self.hbm.achieved_bandwidth(occupancy, access=access)

    # -- vectorized twins ----------------------------------------------------
    # Array-over-the-scenario-axis forms of the methods above.  Costs are
    # passed as columns (``flops``/``bytes``/``fixed`` arrays; ``dtype`` and
    # ``access`` uniform over the batch) and occupancies as
    # :class:`BatchOccupancy`.  Every expression replicates the scalar
    # method's operation order, so results are elementwise bit-identical —
    # branches become masks, never approximations.

    def persistent_occupancy_batch(
            self, res: KernelResources, n_tasks: np.ndarray,
            n_work: Optional[np.ndarray] = None,
            occupancy_limit: Optional[np.ndarray] = None) -> BatchOccupancy:
        """Array twin of :meth:`persistent_occupancy`.

        ``occupancy_limit`` is a float column where NaN means "no limit"
        (the scalar ``None``); both branches are evaluated on neutralized
        inputs and selected by that mask.
        """
        n_tasks = np.asarray(n_tasks, np.int64)
        base = self.occupancy(res)
        occ = BatchOccupancy.broadcast(base, len(n_tasks))
        if occupancy_limit is None:
            occupancy_limit = np.full(len(n_tasks), np.nan)
        limit = np.asarray(occupancy_limit, np.float64)
        has_limit = ~np.isnan(limit)
        bad = has_limit & ~((0.0 < limit) & (limit <= 1.0))
        if np.any(bad):
            raise ValueError(
                f"occupancy_limit must be in (0, 1], got "
                f"{limit[bad][0]}")
        # Limit branch (neutral limit 1.0 rounds back to resident_wgs, a
        # no-op clamp; limited_to(n_tasks) is an identity exactly where the
        # scalar guard ``n_tasks < resident_wgs`` is false).
        limit_safe = np.where(has_limit, limit, 1.0)
        lim_res = np.maximum(
            1, np.round(base.resident_wgs * limit_safe).astype(np.int64))
        occ_l = occ.limited_to(lim_res).limited_to(n_tasks)
        # Balance branch (falsy ``n_work`` falls back to ``n_tasks``; rounds
        # beyond _BALANCE_ROUNDS keep the full grid).
        if n_work is None:
            nw = n_tasks
        else:
            n_work = np.asarray(n_work, np.int64)
            nw = np.where(n_work == 0, n_tasks, n_work)
        rounds = np.maximum(1, -(-nw // base.resident_wgs))
        balanced = np.minimum(base.resident_wgs, -(-nw // rounds))
        occ_b = occ.limited_to(
            np.where(rounds <= _BALANCE_ROUNDS, balanced, base.resident_wgs))
        return occ_l.where(has_limit, occ_b)

    def n_slots_batch(self, occ: BatchOccupancy,
                      n_tasks: np.ndarray) -> np.ndarray:
        return np.minimum(occ.resident_wgs, n_tasks)

    def wg_time_batch(self, flops, bytes_, dtype: str, fixed, access: str,
                      occ: Union[BatchOccupancy, OccupancyInfo]) -> np.ndarray:
        """Array twin of :meth:`wg_time`.  ``0 / bw == 0.0`` exactly, so the
        scalar's ``bytes > 0`` / ``flops > 0`` guards need no masks."""
        resident = np.maximum(occ.resident_wgs, 1)
        bw = self.hbm.achieved_bandwidth_batch(
            np.asarray(occ.fraction, np.float64), access=access) / resident
        mem_time = np.asarray(bytes_, np.float64) / bw
        per_wg = self.spec.flop_rate(dtype) / np.maximum(resident,
                                                         self.spec.num_cus)
        flop_time = np.asarray(flops, np.float64) / per_wg
        return np.maximum(mem_time, flop_time) + fixed

    def task_time_batch(self, flops, bytes_, dtype: str, fixed, access: str,
                        occ: Union[BatchOccupancy, OccupancyInfo],
                        repeat=1) -> np.ndarray:
        """Array twin of :meth:`task_time`."""
        return repeat * (self.wg_time_batch(flops, bytes_, dtype, fixed,
                                            access, occ)
                         + self.spec.wg_dispatch_overhead)

    def bulk_kernel_time_batch(self, n_wgs: np.ndarray, flops, bytes_,
                               dtype: str, fixed, access: str,
                               res: KernelResources) -> np.ndarray:
        """Array twin of :meth:`bulk_kernel_time` (tail-round clamp applied
        through a masked :meth:`BatchOccupancy.limited_to`)."""
        n_wgs = np.asarray(n_wgs, np.int64)
        if np.any(n_wgs < 1):
            raise ValueError("n_wgs must be >= 1")
        occ = self.occupancy(res)
        disp = self.spec.wg_dispatch_overhead
        full_rounds, tail = np.divmod(n_wgs, occ.resident_wgs)
        wg_full = self.wg_time_batch(flops, bytes_, dtype, fixed, access, occ)
        tail_occ = BatchOccupancy.broadcast(occ, len(n_wgs)).limited_to(
            np.where(tail > 0, tail, occ.resident_wgs))
        wg_tail = self.wg_time_batch(flops, bytes_, dtype, fixed, access,
                                     tail_occ)
        total = (self.spec.kernel_launch_overhead
                 + full_rounds * (wg_full + disp))
        return total + np.where(tail > 0, wg_tail + disp, 0.0)


@lru_cache(maxsize=64)
def _device_model(platform: Platform) -> DeviceModel:
    return DeviceModel(platform)


def device_model(platform: PlatformLike = None) -> DeviceModel:
    """Memoized :class:`DeviceModel` for anything resolving to a platform."""
    return _device_model(get_platform(platform))
