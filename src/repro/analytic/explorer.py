"""Design-space exploration helpers: Pareto frontiers over sweep results.

The analytic backend makes grids of thousands of scenarios cheap; what a
designer wants back is rarely the full grid but its *frontier* — the
configurations not dominated on the axes they care about (e.g. minimize
fused latency while maximizing fused-over-baseline speedup).  These
helpers are pure functions over ``(point, objective-tuple)`` pairs so the
``dse_*`` sweep assemblers and user code share one definition of
dominance.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, TypeVar

__all__ = ["dominates", "pareto_frontier"]

T = TypeVar("T")


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True if objective vector ``a`` dominates ``b``.

    Objectives are *minimized*: ``a`` dominates ``b`` when it is no worse
    on every axis and strictly better on at least one.  Flip the sign of
    any axis the caller wants maximized.
    """
    if len(a) != len(b):
        raise ValueError(f"objective lengths differ: {len(a)} vs {len(b)}")
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b))


def pareto_frontier(items: Sequence[T],
                    objectives: Callable[[T], Tuple[float, ...]]
                    ) -> List[T]:
    """Non-dominated subset of ``items`` under minimized ``objectives``.

    Stable: frontier members keep their input order.  Duplicate objective
    vectors are all kept (none strictly improves on the other), so
    distinct configurations with identical predicted metrics stay visible.
    """
    objs = [tuple(objectives(it)) for it in items]
    out: List[T] = []
    for i, item in enumerate(items):
        if not any(dominates(objs[j], objs[i]) for j in range(len(items))
                   if j != i):
            out.append(item)
    return out
