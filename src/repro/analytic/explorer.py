"""Design-space exploration helpers: Pareto frontiers over sweep results.

The analytic backend makes grids of thousands of scenarios cheap — and the
vectorized mega-batch engine (:mod:`repro.analytic.batch`) grids of
*millions* — so the frontier extraction itself must scale too.
:func:`pareto_mask` finds the non-dominated subset of an ``(n, k)``
objective array in ``O(n log n)`` for two objectives (a sort plus
prefix-minimum scan) and a sorted frontier-scan for ``k > 2``;
:func:`pareto_frontier` keeps the historical item-level API on top of it.
The original all-pairs implementation survives as
:func:`pareto_frontier_legacy`, the regression oracle.

:func:`refine` adds the first *search-driven* explorer: Pareto-guided
successive grid refinement over continuous axes (for example the
``repro.hw.platform.generic`` geometry knobs ``num_cus`` /
``hbm_bandwidth`` / ``fp16_flops``), shrinking a lattice around each
frontier point every round.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Sequence,
    Tuple,
    TypeVar,
)

import numpy as np

__all__ = ["dominates", "pareto_frontier", "pareto_frontier_legacy",
           "pareto_mask", "refine"]

T = TypeVar("T")


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True if objective vector ``a`` dominates ``b``.

    Objectives are *minimized*: ``a`` dominates ``b`` when it is no worse
    on every axis and strictly better on at least one.  Flip the sign of
    any axis the caller wants maximized.
    """
    if len(a) != len(b):
        raise ValueError(f"objective lengths differ: {len(a)} vs {len(b)}")
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b))


def pareto_mask(objs: np.ndarray) -> np.ndarray:
    """Boolean mask of the non-dominated rows of an ``(n, k)`` array.

    Same dominance semantics as :func:`dominates` (minimize every column;
    duplicate rows are all non-dominated).  ``k == 2`` runs in
    ``O(n log n)``; larger ``k`` falls back to a sorted scan against the
    growing frontier, which is near-linear for typical frontier sizes.
    """
    objs = np.asarray(objs, np.float64)
    if objs.ndim != 2:
        raise ValueError("objs must be 2-D (n points x k objectives)")
    n, k = objs.shape
    if n == 0:
        return np.zeros(0, bool)
    if k == 0:
        raise ValueError("need at least one objective")
    if k == 1:
        return objs[:, 0] == objs[:, 0].min()
    if k == 2:
        return _pareto_mask_2d(objs[:, 0], objs[:, 1])
    # General k: a dominator always sorts lexicographically earlier, and
    # any dominated point is dominated by some frontier member, so one
    # pass against the accumulated frontier suffices.
    order = np.lexsort(tuple(objs[:, j] for j in reversed(range(k))))
    dominated = np.zeros(n, bool)
    frontier = np.empty((0, k))
    for idx in order:
        p = objs[idx]
        if frontier.shape[0] and np.any(
                np.all(frontier <= p, axis=1)
                & np.any(frontier < p, axis=1)):
            dominated[idx] = True
        else:
            frontier = np.vstack([frontier, p[None, :]])
    return ~dominated


def _pareto_mask_2d(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Two-objective mask: sort by ``(a, b)``, then one prefix-min scan.

    A point is dominated iff some strictly-smaller-``a`` point has
    ``b <=`` its own (the prefix minimum over earlier ``a`` groups), or a
    same-``a`` point has strictly smaller ``b`` (the group minimum)."""
    n = len(a)
    order = np.lexsort((b, a))
    a_s, b_s = a[order], b[order]
    new_group = np.r_[True, a_s[1:] != a_s[:-1]]
    gid = np.cumsum(new_group) - 1
    group_min_b = b_s[new_group]            # first-in-group = min (b-sorted)
    prev_min = np.concatenate(
        ([np.inf], np.minimum.accumulate(group_min_b)[:-1]))[gid]
    dominated_s = (prev_min <= b_s) | (group_min_b[gid] < b_s)
    dominated = np.empty(n, bool)
    dominated[order] = dominated_s
    return ~dominated


def pareto_frontier(items: Sequence[T],
                    objectives: Callable[[T], Tuple[float, ...]]
                    ) -> List[T]:
    """Non-dominated subset of ``items`` under minimized ``objectives``.

    Stable: frontier members keep their input order.  Duplicate objective
    vectors are all kept (none strictly improves on the other), so
    distinct configurations with identical predicted metrics stay visible.
    """
    if not items:
        return []
    objs = np.asarray([tuple(objectives(it)) for it in items], np.float64)
    if objs.ndim != 2:
        raise ValueError("objectives must all have the same length")
    keep = pareto_mask(objs)
    return [it for it, k in zip(items, keep) if k]


def pareto_frontier_legacy(items: Sequence[T],
                           objectives: Callable[[T], Tuple[float, ...]]
                           ) -> List[T]:
    """Reference all-pairs ``O(n^2)`` implementation (regression oracle
    for :func:`pareto_frontier`; prefer the vectorized one)."""
    objs = [tuple(objectives(it)) for it in items]
    out: List[T] = []
    for i, item in enumerate(items):
        if not any(dominates(objs[j], objs[i]) for j in range(len(items))
                   if j != i):
            out.append(item)
    return out


def refine(objective_fn: Callable[[Dict[str, np.ndarray]], np.ndarray],
           axes: Mapping[str, Tuple[float, float]], *,
           rounds: int = 3, grid: int = 6, max_regions: int = 8
           ) -> List[Tuple[Dict[str, float], Tuple[float, ...]]]:
    """Pareto-guided successive grid refinement over continuous axes.

    ``axes`` maps axis name to inclusive ``(lo, hi)`` bounds — e.g. the
    :func:`repro.hw.platform.generic` geometry knobs.  Each round lays a
    ``grid``-point lattice per axis over every active region, evaluates
    all lattice points in one ``objective_fn`` call (``dict of 1-D
    columns -> (n, k) minimized-objective array``), and shrinks a
    half-span box around each of the best ``max_regions`` frontier points
    for the next round.  Returns the Pareto frontier over *every* point
    evaluated in any round, as ``(point, objectives)`` pairs in
    evaluation order.
    """
    if rounds < 1 or grid < 2 or max_regions < 1:
        raise ValueError("rounds >= 1, grid >= 2, max_regions >= 1")
    names = list(axes)
    if not names:
        raise ValueError("need at least one axis")
    for name, (lo, hi) in axes.items():
        if not lo <= hi:
            raise ValueError(f"axis {name!r}: lo must be <= hi")
    regions: List[Dict[str, Tuple[float, float]]] = [dict(axes)]
    all_cols: Dict[str, List[np.ndarray]] = {k: [] for k in names}
    all_objs: List[np.ndarray] = []
    for _ in range(rounds):
        cols = {k: [] for k in names}
        for region in regions:
            lattices = [np.linspace(region[k][0], region[k][1], grid)
                        for k in names]
            mesh = np.meshgrid(*lattices, indexing="ij")
            for k, m in zip(names, mesh):
                cols[k].append(m.ravel())
        round_cols = {k: np.concatenate(v) for k, v in cols.items()}
        objs = np.asarray(objective_fn(round_cols), np.float64)
        if objs.ndim != 2 or objs.shape[0] != len(round_cols[names[0]]):
            raise ValueError("objective_fn must return an (n, k) array")
        for k in names:
            all_cols[k].append(round_cols[k])
        all_objs.append(objs)
        # Shrink a half-span box around each frontier point (best first
        # by the first objective, capped at max_regions), clipped to the
        # original bounds.
        front = np.flatnonzero(pareto_mask(objs))
        front = front[np.argsort(objs[front, 0], kind="stable")]
        spans = {k: (regions[0][k][1] - regions[0][k][0]) / 2
                 for k in names}
        next_regions = []
        for idx in front[:max_regions]:
            box = {}
            for k in names:
                c = round_cols[k][idx]
                half = spans[k] / 2
                lo = max(axes[k][0], c - half)
                hi = min(axes[k][1], c + half)
                box[k] = (lo, hi)
            next_regions.append(box)
        regions = next_regions or regions
    merged = {k: np.concatenate(v) for k, v in all_cols.items()}
    objs = np.concatenate(all_objs, axis=0)
    keep = np.flatnonzero(pareto_mask(objs))
    return [({k: float(merged[k][i]) for k in names},
             tuple(float(x) for x in objs[i])) for i in keep]
