"""Fidelity subsystem: analytic-vs-DES validation with an accuracy budget.

``python -m repro validate`` runs matched scenario grids under both
evaluation engines and reports per-metric relative error against the
declared budget below.  The contract has two tiers:

* **Workload geometry is exact.**  Matched sim/analytic scenarios must
  have identical labels and identical parameters (minus the ``backend``
  axis), and purely combinatorial metrics (e.g. Fig. 11's put count) must
  agree exactly — the two engines must be evaluating the *same* physics,
  not merely similar numbers.
* **Headline timings fit the budget.**  Per-row normalized execution
  times (the paper's y-axis) and figure means must sit within
  :data:`ACCURACY_BUDGET` of the DES.  Closed-form-shared paths (the
  Fig. 15 scale-out pipeline) are held to exact agreement.

Validation grids are reduced versions of the paper sweeps, chosen so a
cold run costs seconds of DES time; scenario records share content keys
with the full figure sweeps, so a warmed cache makes ``validate``
near-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..experiments.execution import run_sweep
from ..experiments.specs import SweepSpec, sweep_with_backend

__all__ = ["ACCURACY_BUDGET", "ValidationMetric", "ValidationReport",
           "validation_cases", "run_validation"]

#: Declared per-case relative-error budget for timing metrics.  Exact-tier
#: cases (shared closed forms) carry a float-noise epsilon instead of a
#: modelling allowance.
ACCURACY_BUDGET: Dict[str, float] = {
    "fig8": 0.10,
    "fig9": 0.10,
    "fig10": 0.10,
    "fig11": 0.10,
    "fig12": 0.10,
    "fig15": 1e-12,
    "ext-backward": 0.10,
}

#: Reduced validation grids (small/large corners of each paper grid).
_FIG8_GRID = ((512, 64), (2048, 256))
_FIG9_GRID = ((8192, 8192), (32768, 16384), (65536, 8192))
_FIG10_GRID = ((2048, 4096, 8192), (8192, 4096, 14336))
_FIG12_GRID = ((256, 64), (1024, 256), (4096, 64))
_EXT_GRID = ((256, 64), (1024, 256))
_FIG15_NODES = (16, 128)


def validation_cases() -> List[Tuple[str, SweepSpec]]:
    """The matched validation grids, as (case name, DES sweep) pairs.

    The analytic twin of each sweep is derived with
    :func:`~repro.experiments.specs.sweep_with_backend`, so the grids are
    structurally identical by construction.
    """
    from ..experiments import figures as f
    return [
        ("fig8", f.fig8_sweep(grid=_FIG8_GRID, name="validate-fig8")),
        ("fig9", f.fig9_sweep(grid=_FIG9_GRID, name="validate-fig9")),
        ("fig10", f.fig10_sweep(grid=_FIG10_GRID, name="validate-fig10")),
        ("fig11", f.fig11_sweep(name="validate-fig11")),
        ("fig12", f.fig12_sweep(grid=_FIG12_GRID, name="validate-fig12")),
        ("fig15", f.fig15_sweep(node_counts=_FIG15_NODES,
                                name="validate-fig15")),
        ("ext-backward", f.ext_embedding_backward_sweep(
            grid=_EXT_GRID, name="validate-ext-backward")),
    ]


def _rel_err(sim: float, analytic: float) -> float:
    if sim == 0:
        return 0.0 if analytic == 0 else float("inf")
    return abs(analytic - sim) / abs(sim)


@dataclass(frozen=True)
class ValidationMetric:
    """One compared quantity."""

    case: str
    metric: str
    sim: float
    analytic: float
    budget: float

    @property
    def rel_err(self) -> float:
        return _rel_err(self.sim, self.analytic)

    @property
    def ok(self) -> bool:
        return self.rel_err <= self.budget

    def __str__(self) -> str:
        flag = "ok" if self.ok else "FAIL"
        return (f"{self.case:<14} {self.metric:<34} "
                f"sim {self.sim:<12.6g} analytic {self.analytic:<12.6g} "
                f"err {100 * self.rel_err:6.2f}% "
                f"(budget {100 * self.budget:g}%)  {flag}")


@dataclass
class ValidationReport:
    """Outcome of one full validation run."""

    metrics: List[ValidationMetric] = field(default_factory=list)
    geometry_failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.geometry_failures and all(m.ok for m in self.metrics)

    @property
    def worst(self) -> Optional[ValidationMetric]:
        return max(self.metrics, key=lambda m: m.rel_err / max(m.budget, 1e-30),
                   default=None)

    def render(self) -> str:
        lines = ["== analytic-vs-DES validation =="]
        lines += [str(m) for m in self.metrics]
        lines += [f"GEOMETRY MISMATCH: {g}" for g in self.geometry_failures]
        n_bad = sum(not m.ok for m in self.metrics)
        verdict = ("all metrics within budget" if self.ok else
                   f"{n_bad + len(self.geometry_failures)} metric(s) over "
                   f"budget")
        lines.append(f"-- {len(self.metrics)} metrics, {verdict} --")
        return "\n".join(lines)

    def to_json_dict(self) -> Dict:
        return {
            "schema": "repro.analytic.validation/v1",
            "ok": self.ok,
            "geometry_failures": list(self.geometry_failures),
            "metrics": [
                {"case": m.case, "metric": m.metric, "sim": m.sim,
                 "analytic": m.analytic, "rel_err": m.rel_err,
                 "budget": m.budget, "ok": m.ok}
                for m in self.metrics
            ],
        }


def _check_geometry(case: str, sim_sweep: SweepSpec, ana_sweep: SweepSpec,
                    report: ValidationReport) -> None:
    """Exact-tier check: the two engines saw the same workloads."""
    for s, a in zip(sim_sweep.scenarios, ana_sweep.scenarios):
        if s.label != a.label:
            report.geometry_failures.append(
                f"{case}: label {s.label!r} != {a.label!r}")
            continue
        sp, ap = s.params, a.params
        sp.pop("backend", None)
        ap.pop("backend", None)
        if sp != ap:
            report.geometry_failures.append(
                f"{case}: {s.label}: workload params differ")


def _pair_metrics(case: str, budget: float, sim_run, ana_run,
                  report: ValidationReport) -> None:
    """Timing tier for fused/baseline pair sweeps: per-row normalized time
    (the paper's y-axis) plus the figure mean."""
    sim_fig, ana_fig = sim_run.figure(), ana_run.figure()
    for s_row, a_row in zip(sim_fig.rows, ana_fig.rows):
        report.metrics.append(ValidationMetric(
            case, f"normalized[{s_row.label}]",
            s_row.normalized, a_row.normalized, budget))
    report.metrics.append(ValidationMetric(
        case, "mean_normalized", sim_fig.mean_normalized,
        ana_fig.mean_normalized, budget))


def _fig11_metrics(case: str, budget: float, sim_run, ana_run,
                   report: ValidationReport) -> None:
    sim_r = sim_run.outcomes[0].result
    ana_r = ana_run.outcomes[0].result
    report.metrics.append(ValidationMetric(
        case, "puts_issued_node0", float(sim_r["puts_issued_node0"]),
        float(ana_r["puts_issued_node0"]), 0.0))
    for key in ("_elapsed_s", "_kernel_time_s", "_last_put_frac"):
        report.metrics.append(ValidationMetric(
            case, key, sim_r[key], ana_r[key], budget))


def _fig15_metrics(case: str, budget: float, sim_run, ana_run,
                   report: ValidationReport) -> None:
    """Shared-closed-form tier: per-scenario times must agree exactly."""
    for s_out, a_out in zip(sim_run.outcomes, ana_run.outcomes):
        for key in ("fused_time", "baseline_time"):
            report.metrics.append(ValidationMetric(
                case, f"{key}[{s_out.spec.label}]",
                s_out.result[key], a_out.result[key], budget))


_CASE_METRICS: Dict[str, Callable] = {
    "fig11": _fig11_metrics,
    "fig15": _fig15_metrics,
}


def run_validation(store=None, workers: int = 1,
                   cases: Optional[Sequence[str]] = None,
                   progress=None) -> ValidationReport:
    """Run the matched grids under both engines and compare.

    ``cases`` restricts to a subset of case names (default: all).
    ``store``/``workers``/``progress`` are forwarded to
    :func:`~repro.experiments.execution.run_sweep`; validation scenarios
    share content keys with the paper sweeps, so a warm cache is honored.
    """
    report = ValidationReport()
    all_cases = validation_cases()
    if cases is not None:
        unknown = set(cases) - {case for case, _sweep in all_cases}
        if unknown:
            raise KeyError(
                f"unknown validation case(s) {sorted(unknown)}; "
                f"available: {sorted(c for c, _s in all_cases)}")
    for case, sim_sweep in all_cases:
        if cases is not None and case not in cases:
            continue
        budget = ACCURACY_BUDGET[case]
        ana_sweep = sweep_with_backend(sim_sweep, "analytic")
        _check_geometry(case, sim_sweep, ana_sweep, report)
        sim_run = run_sweep(sim_sweep, store=store, workers=workers,
                            progress=progress)
        ana_run = run_sweep(ana_sweep, store=store, workers=workers,
                            progress=progress)
        _CASE_METRICS.get(case, _pair_metrics)(
            case, budget, sim_run, ana_run, report)
    return report
