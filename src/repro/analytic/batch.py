"""Vectorized mega-batch engine over the analytic closed forms.

A :class:`ScenarioBatch` is a columnar table of scenarios for one runner:
numeric workload knobs (batch sizes, table counts, tile shapes, ...) are
NumPy columns over the scenario axis, while *structural* parameters — the
ones that change control flow or object identity (platform, cluster shape,
scheduler, ``algo``, dtypes, the baseline-override mapping) — partition the
table into groups that each evaluate in one vectorized call.

Every group core mirrors its scalar ``predict_*`` twin in
:mod:`repro.analytic.ops` expression for expression (same operation order,
same associativity), so batch results are elementwise **bit-identical** to
the scalar oracle, not merely close.  Branchy/integer logic (occupancy
allocation, grid balancing, divisor search, collective auto-selection) is
handled by masked or piecewise evaluation in the vectorized twins this
module composes — never by approximation.

Scenarios whose parameters the columnar schema cannot represent (unknown
keys, non-integer values where the schema expects integers) transparently
fall back to per-row scalar evaluation, so ``records()`` is always a safe
drop-in for looping over ``predict_*``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..collectives import check_algo
from ..fused.embedding_alltoall import ITEMSIZE, EmbeddingA2AConfig
from ..fused.embedding_grad_alltoall import SCATTER_ATOMIC_FACTOR
from ..hw.platform import get_platform
from ..obs.metrics import get_metrics
from .comm import FLAG_BYTES, CommModel
from .device import device_model
from .ops import (
    _embedding_baseline_time,
    _occupancy_limit_batch,
    _overlap_finish_batch,
    _queue_span_batch,
    _tasks_per_slice_batch,
    predict_dlrm_scaleout,
    predict_embedding_a2a,
    predict_embedding_fused,
    predict_embedding_grad_a2a,
    predict_gemm_a2a,
    predict_gemv_allreduce,
    predict_wg_timeline,
)

__all__ = ["ScenarioBatch", "batch_runners", "batch_supported",
           "evaluate_batch_records"]

#: Sentinel for parameters the caller must supply (no default).
_REQUIRED = object()


def _canonical(value: Any) -> str:
    """Deterministic grouping key for a structural-parameter mapping."""
    return json.dumps(value, sort_keys=True, default=repr)


def _is_int(v: Any) -> bool:
    return isinstance(v, (int, np.integer)) and not isinstance(v, bool)


# ---------------------------------------------------------------------------
# Group cores — one vectorized call per structural group.  ``s`` is the
# structural mapping with defaults applied; ``c`` the numeric columns.
# ---------------------------------------------------------------------------

def _emb_validate(c: Dict[str, np.ndarray], world: int, pooling_mode: str,
                  algo: Optional[str]) -> None:
    """Vectorized mirror of :meth:`EmbeddingA2AConfig.validate`."""
    check_algo("alltoall", algo)
    if np.any(c["global_batch"] < 1) or np.any(c["tables_per_gpu"] < 1):
        raise ValueError("batch and tables must be >= 1")
    if np.any(c["global_batch"] % world):
        bad = c["global_batch"][c["global_batch"] % world != 0][0]
        raise ValueError(
            f"global_batch {bad} not divisible by world {world}")
    local = c["global_batch"] // world
    if np.any(local % c["slice_vectors"]):
        raise ValueError("local batch not divisible by slice_vectors")
    tps = c["tasks_per_slice"]
    if np.any((tps != 0)
              & (c["slice_vectors"] % np.where(tps != 0, tps, 1) != 0)):
        raise ValueError("slice_vectors must be divisible by tasks_per_slice")
    if pooling_mode not in ("sum", "mean"):
        raise ValueError(f"bad pooling mode {pooling_mode!r}")


def _emb_fused_cols(num_nodes: int, gpus_per_node: int, scheduler: str,
                    zero_copy: bool, pooling_mode: str, platform: Any,
                    cpu_proxy: bool, algo: Optional[str],
                    c: Dict[str, np.ndarray]) -> Dict[str, Any]:
    """Columnar twin of :func:`repro.analytic.ops._embedding_fused_time`."""
    world = num_nodes * gpus_per_node
    _emb_validate(c, world, pooling_mode, algo)
    plat = get_platform(platform)
    d = device_model(plat)
    cm = CommModel(plat, num_nodes, gpus_per_node, cpu_proxy=cpu_proxy)
    spec = d.spec

    T = c["tables_per_gpu"]
    n_s = c["global_batch"] // world // c["slice_vectors"]
    tps = _tasks_per_slice_batch(d, T, n_s, c["slice_vectors"],
                                 c["tasks_per_slice"], world)
    repeat = c["slice_vectors"] // tps
    per_dest_tasks = T * n_s * tps
    n_tasks = world * per_dest_tasks

    occ = d.persistent_occupancy_batch(
        d.fused_res, n_tasks,
        occupancy_limit=_occupancy_limit_batch(
            d, c["occupancy_of_baseline"]))
    slots = d.n_slots_batch(occ, n_tasks)

    # embedding_wg_cost(pooling, dim, ITEMSIZE), plus the flag-op charge.
    bytes_base = ((c["pooling"] + 1) * c["dim"] * ITEMSIZE).astype(np.float64)
    flops_base = (c["pooling"] * c["dim"]).astype(np.float64)
    bytes_zc = bytes_base - c["dim"] * ITEMSIZE
    fixed = spec.flag_op_latency
    dur_base = d.task_time_batch(flops_base, bytes_base, "fp32", fixed,
                                 "gather", occ, repeat)
    dur_zc = d.task_time_batch(flops_base, bytes_zc, "fp32", fixed,
                               "gather", occ, repeat)
    same_node_remote = gpus_per_node - 1
    other_node = world - gpus_per_node
    dur_same = dur_zc if zero_copy else dur_base

    remote_compute = per_dest_tasks * (same_node_remote * dur_same
                                       + other_node * dur_base)
    hook_charge = (world - 1) * T * n_s * spec.shmem_api_latency
    total = per_dest_tasks * dur_base + remote_compute + hook_charge

    launch = spec.kernel_launch_overhead
    compute_end = launch + _queue_span_batch(total, n_tasks, slots)
    first_task = dur_same if same_node_remote else dur_base
    first_issue = launch + first_task * np.ceil(tps / slots)
    if scheduler == "comm_aware":
        last_issue = launch + (remote_compute + hook_charge) / slots
    else:
        last_issue = compute_end

    slice_bytes = (c["slice_vectors"] * c["dim"]
                   * ITEMSIZE).astype(np.float64)
    msgs = T * n_s
    finish = compute_end
    if same_node_remote:
        drain = cm.drain_time_batch(msgs * (slice_bytes + FLAG_BYTES),
                                    2 * msgs, remote_node=False)
        finish = np.maximum(finish, _overlap_finish_batch(
            compute_end, first_issue, last_issue, drain,
            cm.signal_tail_batch(slice_bytes, remote_node=False)))
    if other_node:
        nic_msgs = gpus_per_node * other_node * msgs
        drain = cm.drain_time_batch(nic_msgs * (slice_bytes + FLAG_BYTES),
                                    2 * nic_msgs, remote_node=True)
        first_nic = first_issue
        if same_node_remote:
            same_total = per_dest_tasks * same_node_remote * dur_same \
                + same_node_remote * T * n_s * spec.shmem_api_latency
            first_nic = launch + same_total / slots
        finish = np.maximum(finish, _overlap_finish_batch(
            compute_end, first_nic, last_issue, drain,
            cm.signal_tail_batch(slice_bytes, remote_node=True)))
    return {"elapsed": finish, "first_issue": first_issue,
            "last_issue": last_issue, "launch": launch,
            "puts_per_remote_dest": msgs}


def _emb_baseline_cols(num_nodes: int, gpus_per_node: int, pooling_mode: str,
                       platform: Any, algo: Optional[str],
                       c: Dict[str, np.ndarray]) -> np.ndarray:
    """Columnar twin of :func:`_embedding_baseline_time`."""
    world = num_nodes * gpus_per_node
    _emb_validate(c, world, pooling_mode, algo)
    plat = get_platform(platform)
    d = device_model(plat)
    cm = CommModel(plat, num_nodes, gpus_per_node)
    bytes_base = ((c["pooling"] + 1) * c["dim"] * ITEMSIZE).astype(np.float64)
    flops_base = (c["pooling"] * c["dim"]).astype(np.float64)
    compute = c["tables_per_gpu"] * d.bulk_kernel_time_batch(
        c["global_batch"], flops_base, bytes_base, "fp32", 0.0, "gather",
        d.base_res)
    chunk = (c["global_batch"] // world * c["tables_per_gpu"]
             * c["dim"] * ITEMSIZE).astype(np.float64)
    return compute + cm.alltoall_time_batch(chunk, algo=algo)


def _embedding_a2a_core(s: Dict[str, Any],
                        c: Dict[str, np.ndarray]) -> Dict[str, Any]:
    fused = _emb_fused_cols(s["num_nodes"], s["gpus_per_node"],
                            s["scheduler"], s["zero_copy"],
                            s["pooling_mode"], s["platform"], False,
                            s["algo"], c)
    if s["baseline"] is None:
        baseline = _emb_baseline_cols(s["num_nodes"], s["gpus_per_node"],
                                      s["pooling_mode"], s["platform"],
                                      s["algo"], c)
    else:
        # The override builds its own config from class defaults + the
        # mapping — constant over the group, so one scalar call suffices.
        base_cfg = EmbeddingA2AConfig(
            functional=False, **{"algo": s["algo"], **s["baseline"]})
        baseline = np.full(
            len(c["global_batch"]),
            _embedding_baseline_time(s["num_nodes"], s["gpus_per_node"],
                                     base_cfg, platform=s["platform"]))
    return {"fused_time": fused["elapsed"], "baseline_time": baseline}


def _embedding_fused_core(s: Dict[str, Any],
                          c: Dict[str, np.ndarray]) -> Dict[str, Any]:
    fused = _emb_fused_cols(s["num_nodes"], s["gpus_per_node"],
                            s["scheduler"], s["zero_copy"],
                            s["pooling_mode"], s["platform"],
                            s["cpu_proxy"], s["algo"], c)
    return {"elapsed": fused["elapsed"]}


def _embedding_grad_core(s: Dict[str, Any],
                         c: Dict[str, np.ndarray]) -> Dict[str, Any]:
    """Columnar twin of :func:`predict_embedding_grad_a2a`."""
    num_nodes, gpn = s["num_nodes"], s["gpus_per_node"]
    world = num_nodes * gpn
    _emb_validate(c, world, s["pooling_mode"], s["algo"])
    plat = get_platform(s["platform"])
    d = device_model(plat)
    cm = CommModel(plat, num_nodes, gpn)
    spec = d.spec

    T = c["tables_per_gpu"]
    local = c["global_batch"] // world
    n_s = local // c["slice_vectors"]
    n_send = world * T * n_s
    slice_bytes = (c["slice_vectors"] * c["dim"]
                   * ITEMSIZE).astype(np.float64)

    occ = d.persistent_occupancy_batch(d.fused_res, 2 * n_send,
                                       n_work=n_send)
    slots = d.n_slots_batch(occ, 2 * n_send)
    send_dur = d.task_time_batch(0.0, slice_bytes, "fp32",
                                 spec.flag_op_latency, "stream", occ)
    n_remote = (world - 1) * T * n_s
    send_total = n_send * send_dur + n_remote * spec.shmem_api_latency

    # _scatter_cost(cfg, slice_vectors): the pooled-gradient scatter-add.
    flops_b = (c["pooling"] * c["dim"]).astype(np.float64)
    bytes_b = ((c["pooling"] + 1) * c["dim"] * ITEMSIZE).astype(np.float64)
    apply_dur = d.wg_time_batch(flops_b * c["slice_vectors"],
                                bytes_b * c["slice_vectors"]
                                * SCATTER_ATOMIC_FACTOR,
                                "fp32", 0.0, "gather", occ)
    apply_total = n_send * (spec.wg_dispatch_overhead + apply_dur)

    launch = spec.kernel_launch_overhead
    send_end = launch + _queue_span_batch(send_total, n_send, slots)
    first_issue = launch + send_dur
    last_issue = launch + ((n_remote * send_dur
                            + n_remote * spec.shmem_api_latency) / slots)
    remote_dst = num_nodes > 1
    per_channel = n_remote // max(world - 1, 1)
    drain = cm.drain_time_batch(per_channel * (slice_bytes + FLAG_BYTES),
                                2 * per_channel, remote_node=remote_dst)
    arrival = (np.maximum(last_issue, first_issue + drain)
               + cm.signal_tail_batch(slice_bytes, remote_node=remote_dst))
    finish = np.maximum(
        send_end + _queue_span_batch(apply_total, n_send, slots),
        arrival + spec.wg_dispatch_overhead + apply_dur)

    chunk = (local * T * c["dim"] * ITEMSIZE).astype(np.float64)
    baseline = (cm.alltoall_time_batch(chunk, algo=s["algo"])
                + d.bulk_kernel_time_batch(
                    c["global_batch"] * T, flops_b,
                    bytes_b * SCATTER_ATOMIC_FACTOR, "fp32", 0.0,
                    "gather", d.base_res))
    return {"fused_time": finish, "baseline_time": baseline}


def _gemv_core(s: Dict[str, Any],
               c: Dict[str, np.ndarray]) -> Dict[str, Any]:
    """Columnar twin of :func:`predict_gemv_allreduce`."""
    world = s["world"]
    check_algo("allreduce", s["algo"])
    if np.any(c["m"] < 1) or np.any(c["n_per_gpu"] < 1):
        raise ValueError("m and n_per_gpu must be >= 1")
    if np.any(c["m"] % (world * c["tile_rows"])):
        raise ValueError("m must be divisible by world*tile_rows")
    plat = get_platform(s["platform"])
    d = device_model(plat)
    cm = CommModel(plat, num_nodes=1, gpus_per_node=world)
    spec = d.spec

    chunk = c["m"] // world
    tiles_per_owner = chunk // c["tile_rows"]
    n_a = world * tiles_per_owner
    n_b = tiles_per_owner
    tile_bytes = (c["tile_rows"] * c["itemsize"]).astype(np.float64)

    occ = d.persistent_occupancy_batch(d.fused_res, n_a + n_b, n_work=n_a)
    slots = d.n_slots_batch(occ, n_a + n_b)
    # gemv_wg_cost(tile_rows, n_per_gpu, itemsize), with the flag charge
    # and the workload's flop dtype swapped in.
    bytes_g = ((c["tile_rows"] * c["n_per_gpu"] + c["n_per_gpu"]
                + c["tile_rows"]) * c["itemsize"]).astype(np.float64)
    flops_g = 2.0 * c["tile_rows"] * c["n_per_gpu"]
    bytes_zc = bytes_g - c["tile_rows"] * c["itemsize"]
    dt = s["flop_dtype"]
    t_a = _queue_span_batch(
        tiles_per_owner * (d.task_time_batch(flops_g, bytes_g, dt,
                                             spec.flag_op_latency,
                                             "stream", occ)
                           + (world - 1)
                           * d.task_time_batch(flops_g, bytes_zc, dt,
                                               spec.flag_op_latency,
                                               "stream", occ)),
        n_a, slots)
    launch = spec.kernel_launch_overhead
    partial_ready = launch + t_a + cm.signal_tail_batch(tile_bytes,
                                                        remote_node=False)

    red_flops = ((world - 1) * c["tile_rows"]).astype(np.float64)
    red_bytes = ((world + 1) * c["tile_rows"]
                 * c["itemsize"]).astype(np.float64)
    reduce_dur = d.wg_time_batch(red_flops, red_bytes, "fp32", 0.0,
                                 "stream", occ)
    rounds_b = np.ceil(n_b / slots)
    t_b = rounds_b * (spec.wg_dispatch_overhead + reduce_dur)
    bcast_drain = chunk * c["itemsize"] / cm.link.bandwidth
    fused = (partial_ready + np.maximum(t_b, bcast_drain)
             + cm.signal_tail_batch(tile_bytes, remote_node=False))

    baseline = (d.bulk_kernel_time_batch(c["m"] // c["tile_rows"], flops_g,
                                         bytes_g, dt, 0.0, "stream",
                                         d.base_res)
                + cm.allreduce_time_batch(
                    (c["m"] * c["itemsize"]).astype(np.float64), c["m"],
                    itemsize=c["itemsize"], algo=s["algo"] or "direct"))
    return {"fused_time": fused, "baseline_time": baseline}


def _gemm_core(s: Dict[str, Any],
               c: Dict[str, np.ndarray]) -> Dict[str, Any]:
    """Columnar twin of :func:`predict_gemm_a2a`."""
    world = s["world"]
    check_algo("alltoall", s["algo"])
    if (np.any(c["tokens"] < 1) or np.any(c["model_dim"] < 1)
            or np.any(c["ffn_dim"] < 1)):
        raise ValueError("all GEMM dims must be >= 1")
    if np.any(c["tokens"] % (world * c["block_m"])):
        raise ValueError("tokens must divide into world*block_m")
    if np.any(c["ffn_dim"] % c["block_n"]):
        raise ValueError("ffn_dim must be divisible by block_n")
    plat = get_platform(s["platform"])
    d = device_model(plat)
    cm = CommModel(plat, num_nodes=1, gpus_per_node=world)
    spec = d.spec

    grid_m = c["tokens"] // c["block_m"]
    grid_n = c["ffn_dim"] // c["block_n"]
    n_tasks = grid_m * grid_n
    tiles_per_dest = n_tasks // world
    tile_wire = (c["block_m"] * c["block_n"]
                 * c["itemsize"]).astype(np.float64)

    occ = d.persistent_occupancy_batch(d.fused_res, n_tasks)
    slots = d.n_slots_batch(occ, n_tasks)
    # gemm_wg_cost(block_m, block_n, model_dim, itemsize, dtype).
    bytes_g = ((c["model_dim"] * (c["block_m"] + c["block_n"])
                + c["block_m"] * c["block_n"])
               * c["itemsize"]).astype(np.float64)
    flops_g = 2.0 * c["block_m"] * c["block_n"] * c["model_dim"]
    dt = s["flop_dtype"]
    fixed = spec.flag_op_latency
    dur_base = d.task_time_batch(flops_g, bytes_g, dt, fixed, "stream", occ)
    dur_zc = d.task_time_batch(flops_g, bytes_g - tile_wire, dt, fixed,
                               "stream", occ)
    remote_compute = ((world - 1) * tiles_per_dest
                      * (dur_zc + spec.shmem_api_latency))
    total = (tiles_per_dest * (dur_base + spec.shmem_api_latency)
             + remote_compute)

    launch = spec.kernel_launch_overhead
    compute_end = launch + _queue_span_batch(total, n_tasks, slots)
    first_issue = launch + dur_zc
    last_issue = launch + remote_compute / slots
    if s["scheduler"] != "comm_aware":
        last_issue = compute_end
    drain = cm.drain_time_batch(tiles_per_dest * (tile_wire + FLAG_BYTES),
                                2 * tiles_per_dest, remote_node=False)
    fused = _overlap_finish_batch(
        compute_end, first_issue, last_issue, drain,
        cm.signal_tail_batch(tile_wire, remote_node=False))

    tps = c["tokens"] // world
    chunk = (tps * c["ffn_dim"] * c["itemsize"]).astype(np.float64)
    baseline = (d.bulk_kernel_time_batch(n_tasks, flops_g, bytes_g, dt,
                                         0.0, "stream", d.base_res)
                + cm.alltoall_time_batch(chunk, algo=s["algo"]))
    return {"fused_time": fused, "baseline_time": baseline}


def _dlrm_core(s: Dict[str, Any],
               c: Dict[str, np.ndarray]) -> Dict[str, Any]:
    """Scale-out DLRM has no closed batch form (list-scheduled execution
    graphs); its sweeps are tiny, so evaluate per row."""
    n = len(c["num_nodes"])
    out = {k: np.empty(n) for k in ("fused_time", "baseline_time",
                                    "reduction_pct",
                                    "exposed_a2a_fraction")}
    for i in range(n):
        r = predict_dlrm_scaleout(int(c["num_nodes"][i]),
                                  platform=s["platform"])
        for k, col in out.items():
            col[i] = r[k]
    return out


def _wg_timeline_core(s: Dict[str, Any],
                      c: Dict[str, np.ndarray]) -> Dict[str, Any]:
    """Columnar twin of :func:`predict_wg_timeline`."""
    n = len(c["batch"])
    cols = {
        "global_batch": c["batch"],
        "tables_per_gpu": c["tables"],
        "dim": np.full(n, 256, np.int64),
        "pooling": np.full(n, 70, np.int64),
        "slice_vectors": c["wgs_per_slice"],
        "tasks_per_slice": c["wgs_per_slice"],
        "occupancy_of_baseline": np.full(n, np.nan),
    }
    fused = _emb_fused_cols(2, 1, "comm_aware", True, "sum", s["platform"],
                            False, None, cols)
    kspan = fused["elapsed"]
    return {"_kernel_time_s": kspan,
            "_first_put_frac": fused["first_issue"] / kspan,
            "_last_put_frac": fused["last_issue"] / kspan,
            "_elapsed_s": kspan,
            "puts_issued_node0": fused["puts_per_remote_dest"],
            "first_issue": fused["first_issue"],
            "last_issue": fused["last_issue"]}


# ---------------------------------------------------------------------------
# Per-runner record builders (exact scalar result-dict shapes)
# ---------------------------------------------------------------------------

def _pair_record(s: Dict[str, Any], row: Dict[str, Any]) -> Dict[str, Any]:
    return {"fused_time": row["fused_time"],
            "baseline_time": row["baseline_time"]}


def _fused_record(s: Dict[str, Any], row: Dict[str, Any]) -> Dict[str, Any]:
    world = s["num_nodes"] * s["gpus_per_node"]
    return {"elapsed": row["elapsed"],
            "rank_end_times": {str(r): row["elapsed"]
                               for r in range(world)}}


def _dlrm_record(s: Dict[str, Any], row: Dict[str, Any]) -> Dict[str, Any]:
    return {k: row[k] for k in ("fused_time", "baseline_time",
                                "reduction_pct", "exposed_a2a_fraction")}


def _wg_timeline_record(s: Dict[str, Any],
                        row: Dict[str, Any]) -> Dict[str, Any]:
    kspan = row["_kernel_time_s"]
    first = row["first_issue"]
    last = row["last_issue"]
    return {
        "kernel_time": f"{kspan * 1e3:.3f} ms",
        "puts_issued_node0": row["puts_issued_node0"],
        "first_put_at": f"{100 * first / kspan:.1f}% of kernel",
        "last_put_at": f"{100 * last / kspan:.1f}% of kernel",
        "elapsed": f"{kspan * 1e3:.3f} ms",
        "timeline": "\n(per-WG timeline requires the DES trace; run this "
                    "sweep under backend=sim to render it)",
        "_kernel_time_s": kspan,
        "_first_put_frac": first / kspan,
        "_last_put_frac": last / kspan,
        "_elapsed_s": kspan,
    }


# ---------------------------------------------------------------------------
# Runner schemas
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _RunnerBatch:
    """Columnar schema + vectorized core for one scenario runner."""

    scalar: Callable[..., Dict[str, Any]]
    numeric: Mapping[str, Any]              #: int64 columns (default/_REQUIRED)
    structural: Mapping[str, Any]           #: group params (default/_REQUIRED)
    core: Callable[[Dict[str, Any], Dict[str, np.ndarray]], Dict[str, Any]]
    float_out: Tuple[str, ...]
    record: Callable[[Dict[str, Any], Dict[str, Any]], Dict[str, Any]]
    nan_numeric: Tuple[str, ...] = ()       #: float columns, None -> NaN
    int_out: Tuple[str, ...] = ()
    extra_out: Tuple[str, ...] = ()         #: record-only core outputs


_EMB_NUMERIC = {"global_batch": _REQUIRED, "tables_per_gpu": _REQUIRED,
                "dim": 256, "pooling": 70, "rows_per_table": 1000,
                "slice_vectors": 32, "tasks_per_slice": 0, "seed": 0}
_EMB_STRUCTURAL = {"scheduler": "comm_aware", "zero_copy": True,
                   "pooling_mode": "sum", "algo": None, "platform": None,
                   "functional": False}

_RUNNERS: Dict[str, _RunnerBatch] = {
    "embedding_a2a_pair": _RunnerBatch(
        scalar=predict_embedding_a2a,
        numeric=_EMB_NUMERIC,
        nan_numeric=("occupancy_of_baseline",),
        structural={**_EMB_STRUCTURAL, "num_nodes": _REQUIRED,
                    "gpus_per_node": _REQUIRED, "baseline": None},
        core=_embedding_a2a_core,
        float_out=("fused_time", "baseline_time"),
        record=_pair_record),
    "embedding_fused": _RunnerBatch(
        scalar=predict_embedding_fused,
        numeric=_EMB_NUMERIC,
        nan_numeric=("occupancy_of_baseline",),
        structural={**_EMB_STRUCTURAL, "num_nodes": 2, "gpus_per_node": 1,
                    "cpu_proxy": False},
        core=_embedding_fused_core,
        float_out=("elapsed",),
        record=_fused_record),
    "embedding_grad_pair": _RunnerBatch(
        scalar=predict_embedding_grad_a2a,
        numeric=_EMB_NUMERIC,
        nan_numeric=("occupancy_of_baseline",),
        structural={**_EMB_STRUCTURAL, "num_nodes": 2, "gpus_per_node": 1},
        core=_embedding_grad_core,
        float_out=("fused_time", "baseline_time"),
        record=_pair_record),
    "gemv_allreduce_pair": _RunnerBatch(
        scalar=predict_gemv_allreduce,
        numeric={"m": _REQUIRED, "n_per_gpu": _REQUIRED, "tile_rows": 16,
                 "itemsize": 2, "seed": 0},
        structural={"world": 4, "platform": None, "flop_dtype": "fp16",
                    "scheduler": "comm_aware", "algo": None,
                    "functional": False},
        core=_gemv_core,
        float_out=("fused_time", "baseline_time"),
        record=_pair_record),
    "gemm_a2a_pair": _RunnerBatch(
        scalar=predict_gemm_a2a,
        numeric={"tokens": _REQUIRED, "model_dim": _REQUIRED,
                 "ffn_dim": _REQUIRED, "block_m": 64, "block_n": 128,
                 "itemsize": 2, "seed": 0},
        structural={"world": 4, "platform": None, "flop_dtype": "fp16",
                    "scheduler": "comm_aware", "algo": None,
                    "functional": False},
        core=_gemm_core,
        float_out=("fused_time", "baseline_time"),
        record=_pair_record),
    "dlrm_scaleout": _RunnerBatch(
        scalar=predict_dlrm_scaleout,
        numeric={"num_nodes": _REQUIRED},
        structural={"platform": None},
        core=_dlrm_core,
        float_out=("fused_time", "baseline_time", "reduction_pct",
                   "exposed_a2a_fraction"),
        record=_dlrm_record),
    "wg_timeline": _RunnerBatch(
        scalar=predict_wg_timeline,
        numeric={"batch": 512, "tables": 32, "wgs_per_slice": 16,
                 "timeline_width": 100},
        structural={"platform": None},
        core=_wg_timeline_core,
        float_out=("_kernel_time_s", "_first_put_frac", "_last_put_frac",
                   "_elapsed_s"),
        int_out=("puts_issued_node0",),
        extra_out=("first_issue", "last_issue"),
        record=_wg_timeline_record),
}


def batch_runners() -> Tuple[str, ...]:
    """Runner names the vectorized engine can evaluate."""
    return tuple(_RUNNERS)


def batch_supported(runner: str) -> bool:
    return runner in _RUNNERS


# ---------------------------------------------------------------------------
# The scenario table
# ---------------------------------------------------------------------------

@dataclass
class _Group:
    """One structurally-uniform slice of the batch.  ``structural is None``
    marks a scalar-fallback group (rows the columnar schema can't hold)."""

    rows: np.ndarray
    structural: Optional[Dict[str, Any]] = None
    columns: Optional[Dict[str, np.ndarray]] = None
    fallback_params: Optional[List[Dict[str, Any]]] = None


@dataclass
class ScenarioBatch:
    """Columnar table of scenarios for one analytic runner.

    Build with :meth:`from_params` (a sweep's parameter dicts),
    :meth:`from_columns` (pre-built columns, zero per-row overhead), or
    :meth:`from_grid` (the cartesian product of axis lists, mirroring
    ``grid_params`` row order).  :meth:`evaluate` returns output columns
    over the whole batch; :meth:`records` the exact per-scenario result
    dicts the scalar ``predict_*`` functions produce.
    """

    runner: str
    n: int
    groups: List[_Group] = field(default_factory=list)

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_params(cls, runner: str,
                    params_list: Sequence[Mapping[str, Any]]
                    ) -> "ScenarioBatch":
        spec = _RUNNERS[runner]
        num_names = set(spec.numeric) | set(spec.nan_numeric)
        buckets: Dict[str, Tuple[Dict[str, Any], List[int]]] = {}
        fallback_rows: List[int] = []
        for i, params in enumerate(params_list):
            p = dict(params)
            p.pop("backend", None)
            structural = {k: v for k, v in p.items() if k not in num_names}
            if not cls._representable(spec, structural, p):
                fallback_rows.append(i)
                continue
            key = _canonical(structural)
            if key not in buckets:
                buckets[key] = (structural, [])
            buckets[key][1].append(i)
        groups = []
        for structural, rows in buckets.values():
            merged = {k: structural.get(k, d)
                      for k, d in spec.structural.items()}
            cols = cls._build_columns(spec, [params_list[i] for i in rows])
            groups.append(_Group(rows=np.asarray(rows, np.int64),
                                 structural=merged, columns=cols))
        if fallback_rows:
            groups.append(_Group(
                rows=np.asarray(fallback_rows, np.int64),
                fallback_params=[
                    {k: v for k, v in params_list[i].items()
                     if k != "backend"} for i in fallback_rows]))
        return cls(runner=runner, n=len(params_list), groups=groups)

    @classmethod
    def from_columns(cls, runner: str, columns: Mapping[str, Any],
                     structural: Optional[Mapping[str, Any]] = None
                     ) -> "ScenarioBatch":
        spec = _RUNNERS[runner]
        s = dict(structural or {})
        unknown = set(s) - set(spec.structural)
        if unknown:
            raise ValueError(f"unknown structural params {sorted(unknown)}")
        missing = [k for k, d in spec.structural.items()
                   if d is _REQUIRED and k not in s]
        if missing:
            raise ValueError(f"missing structural params {missing}")
        merged = {k: s.get(k, d) for k, d in spec.structural.items()}
        lengths = {len(np.asarray(v)) for v in columns.values()}
        if len(lengths) != 1:
            raise ValueError("columns must share one length")
        n = lengths.pop()
        cols: Dict[str, np.ndarray] = {}
        for name, default in spec.numeric.items():
            if name in columns:
                cols[name] = np.asarray(columns[name], np.int64)
            elif default is _REQUIRED:
                raise ValueError(f"missing required column {name!r}")
            else:
                cols[name] = np.full(n, default, np.int64)
        for name in spec.nan_numeric:
            if name in columns:
                cols[name] = np.asarray(columns[name], np.float64)
            else:
                cols[name] = np.full(n, np.nan)
        extra = set(columns) - set(cols)
        if extra:
            raise ValueError(f"unknown columns {sorted(extra)}")
        return cls(runner=runner, n=n,
                   groups=[_Group(rows=np.arange(n, dtype=np.int64),
                                  structural=merged, columns=cols)])

    @classmethod
    def from_grid(cls, runner: str,
                  axes: Mapping[str, Sequence[Any]]) -> "ScenarioBatch":
        """Cartesian product of axis value lists, in ``grid_params`` row
        order (last axis fastest)."""
        spec = _RUNNERS[runner]
        num_names = set(spec.numeric) | set(spec.nan_numeric)
        unknown = set(axes) - num_names - set(spec.structural)
        if unknown:
            raise ValueError(f"unknown axes {sorted(unknown)}")
        names = list(axes)
        lengths = [len(axes[k]) for k in names]
        if any(ln < 1 for ln in lengths):
            raise ValueError("every axis needs at least one value")
        n = int(np.prod(lengths, dtype=np.int64)) if names else 1
        # Value-index column per axis, in product order.
        idx_cols: Dict[str, np.ndarray] = {}
        inner = n
        for k, ln in zip(names, lengths):
            inner //= ln
            outer = n // (inner * ln)
            idx_cols[k] = np.tile(np.repeat(np.arange(ln), inner), outer)
        struct_names = [k for k in names if k not in num_names]
        groups: List[_Group] = []
        for combo_rows, struct_vals in cls._structural_combos(
                struct_names, axes, idx_cols, n):
            structural = dict(zip(struct_names, struct_vals))
            merged = {k: structural.get(k, d)
                      for k, d in spec.structural.items()}
            missing = [k for k, d in merged.items() if d is _REQUIRED]
            if missing:
                raise ValueError(f"missing structural axes {missing}")
            cols: Dict[str, np.ndarray] = {}
            for name, default in spec.numeric.items():
                if name in axes:
                    vals = np.asarray(axes[name], np.int64)
                    cols[name] = vals[idx_cols[name][combo_rows]]
                elif default is _REQUIRED:
                    raise ValueError(f"missing required axis {name!r}")
                else:
                    cols[name] = np.full(len(combo_rows), default, np.int64)
            for name in spec.nan_numeric:
                if name in axes:
                    vals = np.asarray(
                        [np.nan if v is None else float(v)
                         for v in axes[name]])
                    cols[name] = vals[idx_cols[name][combo_rows]]
                else:
                    cols[name] = np.full(len(combo_rows), np.nan)
            groups.append(_Group(rows=combo_rows, structural=merged,
                                 columns=cols))
        return cls(runner=runner, n=n, groups=groups)

    @staticmethod
    def _structural_combos(struct_names, axes, idx_cols, n):
        if not struct_names:
            yield np.arange(n, dtype=np.int64), ()
            return
        shape = [len(axes[k]) for k in struct_names]
        combo_id = np.zeros(n, np.int64)
        for k, ln in zip(struct_names, shape):
            combo_id = combo_id * ln + idx_cols[k]
        order = np.argsort(combo_id, kind="stable")
        sorted_ids = combo_id[order]
        starts = np.flatnonzero(np.r_[True, sorted_ids[1:]
                                      != sorted_ids[:-1]])
        bounds = np.r_[starts, n]
        for b, e in zip(bounds[:-1], bounds[1:]):
            cid = int(sorted_ids[b])
            vals = []
            for ln, k in zip(reversed(shape), reversed(struct_names)):
                vals.append(axes[k][cid % ln])
                cid //= ln
            yield np.sort(order[b:e]), tuple(reversed(vals))

    # -- schema guards -------------------------------------------------------
    @staticmethod
    def _representable(spec: _RunnerBatch, structural: Dict[str, Any],
                       params: Dict[str, Any]) -> bool:
        if set(structural) - set(spec.structural):
            return False
        if any(d is _REQUIRED and k not in structural
               for k, d in spec.structural.items()
               if k not in spec.numeric):
            return False
        for name, default in spec.numeric.items():
            v = params.get(name, 0 if default is _REQUIRED else default)
            if name not in params and default is _REQUIRED:
                return False
            if not _is_int(v):
                return False
        for name in spec.nan_numeric:
            v = params.get(name)
            if v is not None and not isinstance(v, (int, float)):
                return False
        return True

    @staticmethod
    def _build_columns(spec: _RunnerBatch,
                       rows: List[Mapping[str, Any]]
                       ) -> Dict[str, np.ndarray]:
        cols: Dict[str, np.ndarray] = {}
        for name, default in spec.numeric.items():
            cols[name] = np.asarray([r[name] if default is _REQUIRED
                                     else r.get(name, default)
                                     for r in rows], np.int64)
        for name in spec.nan_numeric:
            cols[name] = np.asarray(
                [np.nan if r.get(name) is None else float(r[name])
                 for r in rows], np.float64)
        return cols

    # -- evaluation ----------------------------------------------------------
    def _group_outputs(self) -> List[Tuple[_Group, Dict[str, Any]]]:
        spec = _RUNNERS[self.runner]
        m = get_metrics()
        out = []
        for g in self.groups:
            if g.structural is None:
                results = [spec.scalar(**p) for p in g.fallback_params]
                cols: Dict[str, Any] = {
                    k: np.asarray([r[k] for r in results])
                    for k in spec.float_out + spec.int_out}
                cols["_records"] = results
                out.append((g, cols))
                if m.enabled:
                    m.inc("batch.scalar_fallback_rows", len(g.rows))
            else:
                out.append((g, spec.core(g.structural, g.columns)))
        if m.enabled:
            m.inc("batch.rows", self.n)
            m.inc("batch.groups", len(self.groups))
        return out

    def evaluate(self) -> Dict[str, np.ndarray]:
        """Output columns over the full batch, in input-row order."""
        spec = _RUNNERS[self.runner]
        out: Dict[str, np.ndarray] = {
            k: np.empty(self.n) for k in spec.float_out}
        out.update({k: np.empty(self.n, np.int64) for k in spec.int_out})
        for g, cols in self._group_outputs():
            for k in spec.float_out + spec.int_out:
                out[k][g.rows] = cols[k]
        return out

    def records(self) -> List[Dict[str, Any]]:
        """Exact per-scenario result dicts (the scalar oracle's shapes)."""
        spec = _RUNNERS[self.runner]
        results: List[Optional[Dict[str, Any]]] = [None] * self.n
        names = spec.float_out + spec.int_out + spec.extra_out
        for g, cols in self._group_outputs():
            if g.structural is None:
                for i, r in zip(g.rows, cols["_records"]):
                    results[i] = r
                continue
            for j, i in enumerate(g.rows):
                row = {}
                for k in names:
                    v = cols[k][j]
                    row[k] = int(v) if k in spec.int_out else float(v)
                results[i] = spec.record(g.structural, row)
        return results


def evaluate_batch_records(runner: str,
                           params_list: Sequence[Mapping[str, Any]]
                           ) -> Optional[List[Dict[str, Any]]]:
    """Batch-evaluate a runner's scenarios; ``None`` if unsupported."""
    if runner not in _RUNNERS or not params_list:
        return None
    return ScenarioBatch.from_params(runner, params_list).records()
