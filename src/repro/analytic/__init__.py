"""Analytic evaluation backend: closed-form twins of the DES metrics.

The discrete-event simulator answers roughly one scenario per second; this
package answers thousands per second by evaluating the same first-order
physics — roofline WG timing with the HBM ramp/knee, alpha-beta(-gamma)
link/NIC models, occupancy-scaled compute/communication overlap — in
closed form, with no event loop.

The backend deliberately *shares* the DES's pure cost models
(:func:`repro.hw.gpu.occupancy_for`, :class:`repro.hw.memory.HbmModel`,
the ``repro.ops`` WG cost functions, the :mod:`repro.astra` graphs): where
the simulator is already analytic at heart, the two engines agree exactly;
where event interleaving matters (persistent-kernel queues, link
contention, flag waits) the backend substitutes explicit serial-fraction
and drain-time terms.  ``python -m repro validate`` quantifies the
residual error against an enforced accuracy budget
(:mod:`repro.analytic.validate`).

Calibration caveat: every platform inherits the HBM concurrency ramp and
contention knee fitted once against the paper's Fig. 13 on the MI210 (see
:mod:`repro.hw.specs`), so analytic predictions on other catalog entries
are exactly as (un)calibrated as their DES counterparts.
"""

from .batch import (
    ScenarioBatch,
    batch_runners,
    batch_supported,
    evaluate_batch_records,
)
from .comm import CommModel
from .device import DeviceModel, device_model
from .explorer import (
    dominates,
    pareto_frontier,
    pareto_frontier_legacy,
    pareto_mask,
    refine,
)
from .ops import (
    predict_dlrm_scaleout,
    predict_embedding_a2a,
    predict_embedding_fused,
    predict_embedding_grad_a2a,
    predict_gemm_a2a,
    predict_gemv_allreduce,
    predict_wg_timeline,
)

__all__ = [
    "CommModel",
    "DeviceModel",
    "ScenarioBatch",
    "batch_runners",
    "batch_supported",
    "device_model",
    "dominates",
    "evaluate_batch_records",
    "pareto_frontier",
    "pareto_frontier_legacy",
    "pareto_mask",
    "refine",
    "predict_dlrm_scaleout",
    "predict_embedding_a2a",
    "predict_embedding_fused",
    "predict_embedding_grad_a2a",
    "predict_gemm_a2a",
    "predict_gemv_allreduce",
    "predict_wg_timeline",
]
