"""Closed-form predictions of every DES scenario runner's metrics.

One ``predict_*`` function per scenario runner in
:mod:`repro.experiments.figures`, each returning the same result mapping
shape the DES runner produces, so the two backends are interchangeable
behind the experiment orchestrator.

Model structure (per fused operator):

* **Compute span** — the persistent kernel's task queue evaluated in
  aggregate: total roofline task time (at the kernel's *derived* fused
  occupancy, including the grid-balancing the runtime applies) divided by
  the physical slot count, plus the per-hook API charges the issuing WGs
  pay.
* **Communication drain** — each channel (per-destination fabric link, or
  the shared NIC) drains the operator's put stream at its alpha-beta(-
  gamma) rate, starting when the first slice is computed; with
  communication-aware scheduling the last remote put issues after the
  *remote* share of the queue, with oblivious scheduling at the very end.
* **Overlap** — the operator completes at
  ``max(compute span, comm drain) + signal tail``: the paper's
  occupancy-scaled compute/communication overlap in one expression.

Baseline operators (bulk kernels + RCCL-like collectives) are evaluated
through the same pure closed forms the DES consumes, so baseline times
agree with the simulator essentially exactly; the approximation error
lives in the fused-kernel queue/drain terms and is quantified by
``python -m repro validate``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

import numpy as np

from ..fused.embedding_alltoall import ITEMSIZE, EmbeddingA2AConfig
from ..fused.embedding_grad_alltoall import _scatter_cost
from ..fused.gemm_alltoall import GemmA2AConfig
from ..fused.gemv_allreduce import GemvAllReduceConfig
from ..hw.gpu import WgCost
from ..hw.platform import PlatformLike, get_platform
from ..ops.embedding import embedding_wg_cost
from ..ops.gemm import gemm_wg_cost
from ..ops.gemv import gemv_wg_cost
from .comm import FLAG_BYTES, CommModel
from .device import DeviceModel, device_model

__all__ = [
    "predict_embedding_a2a",
    "predict_embedding_fused",
    "predict_embedding_grad_a2a",
    "predict_gemv_allreduce",
    "predict_gemm_a2a",
    "predict_dlrm_scaleout",
    "predict_wg_timeline",
]


# ---------------------------------------------------------------------------
# Shared fused-kernel machinery
# ---------------------------------------------------------------------------

def _tasks_per_slice(d: DeviceModel, cfg: EmbeddingA2AConfig,
                     world: int) -> int:
    """Mirror of ``FusedEmbeddingAllToAll._tasks_per_slice`` (auto split)."""
    if cfg.tasks_per_slice:
        return cfg.tasks_per_slice
    n_slices = world * cfg.tables_per_gpu * cfg.slices_per_stripe(world)
    occ = d.occupancy(d.fused_res)
    slots = min(occ.resident_wgs, n_slices)
    target = math.ceil(8 * slots / n_slices)
    for div in (1, 2, 4, 8, 16, 32):
        if div >= target and cfg.slice_vectors % div == 0:
            return div
    return cfg.slice_vectors


def _occupancy_limit(d: DeviceModel, frac: Optional[float]) -> Optional[float]:
    """Mirror of ``_kernel_occupancy_limit``: the Fig. 13 knob converts a
    fraction of *baseline* occupancy into the fused kernel's own limit."""
    if frac is None:
        return None
    base = d.occupancy(d.base_res).resident_wgs
    fused = d.occupancy(d.fused_res).resident_wgs
    limit = frac * base / fused
    if limit > 1.0 + 1e-9:
        raise ValueError(
            f"occupancy {frac} of baseline exceeds the fused kernel's "
            f"maximum ({fused / base:.3f} of baseline)")
    return min(limit, 1.0)


def _overlap_finish(compute_end: float, first_issue: float,
                    last_issue: float, drain: float, tail: float) -> float:
    """Completion time of an overlapped put stream: the channel drains from
    the first computed slice, cannot finish before the last put is issued,
    and the final payload's fenced flag still has to land."""
    return max(compute_end, max(last_issue, first_issue + drain) + tail)


def _queue_span(total_dur: float, n_tasks: int, slots: int) -> float:
    """Makespan of ``n_tasks`` greedily pulled from a shared queue.

    ``total_dur / slots`` is the work-conserving lower bound; the last
    round is quantized to whole tasks (the slot executing the final task
    of a non-divisible queue finishes one mean task-duration late), which
    is exact for uniform tasks and the round-robin fast path."""
    if n_tasks < 1:
        return 0.0
    avg = total_dur / n_tasks
    return total_dur / slots + avg * (math.ceil(n_tasks / slots)
                                      - n_tasks / slots)


# ---------------------------------------------------------------------------
# Vectorized twins of the shared helpers (scenario-axis arrays; each mirrors
# its scalar form expression-for-expression so results are bit-identical)
# ---------------------------------------------------------------------------

def _tasks_per_slice_batch(d: DeviceModel, tables_per_gpu: np.ndarray,
                           slices_per_stripe: np.ndarray,
                           slice_vectors: np.ndarray,
                           tasks_per_slice: np.ndarray,
                           world: int) -> np.ndarray:
    """Array twin of :func:`_tasks_per_slice`: the first divisor in
    ``(1, 2, 4, 8, 16, 32)`` meeting the 8-rounds target, per scenario."""
    n_slices = world * tables_per_gpu * slices_per_stripe
    occ = d.occupancy(d.fused_res)
    slots = np.minimum(occ.resident_wgs, n_slices)
    target = np.ceil(8 * slots / n_slices)
    out = np.where(tasks_per_slice != 0, tasks_per_slice, slice_vectors)
    resolved = tasks_per_slice != 0
    for div in (1, 2, 4, 8, 16, 32):
        take = ~resolved & (div >= target) & (slice_vectors % div == 0)
        out[take] = div
        resolved |= take
    return out


def _occupancy_limit_batch(d: DeviceModel, frac: np.ndarray) -> np.ndarray:
    """Array twin of :func:`_occupancy_limit`; ``NaN`` encodes ``None``
    (no limit) and passes through untouched."""
    base = d.occupancy(d.base_res).resident_wgs
    fused = d.occupancy(d.fused_res).resident_wgs
    limit = frac * base / fused
    bad = limit > 1.0 + 1e-9        # NaN compares False: None rows pass
    if np.any(bad):
        raise ValueError(
            f"occupancy {float(np.asarray(frac)[bad][0])} of baseline "
            f"exceeds the fused kernel's maximum "
            f"({fused / base:.3f} of baseline)")
    return np.minimum(limit, 1.0)   # NaN propagates (still "no limit")


def _overlap_finish_batch(compute_end, first_issue, last_issue,
                          drain, tail):
    """Array twin of :func:`_overlap_finish`."""
    return np.maximum(compute_end,
                      np.maximum(last_issue, first_issue + drain) + tail)


def _queue_span_batch(total_dur, n_tasks, slots):
    """Array twin of :func:`_queue_span`."""
    n = np.asarray(n_tasks)
    ok = n >= 1
    avg = total_dur / np.where(ok, n, 1)
    span = total_dur / slots + avg * (np.ceil(n / slots) - n / slots)
    return np.where(ok, span, 0.0)


# ---------------------------------------------------------------------------
# Embedding + All-to-All (forward)
# ---------------------------------------------------------------------------

def _embedding_fused_time(num_nodes: int, gpus_per_node: int,
                          cfg: EmbeddingA2AConfig,
                          platform: PlatformLike = None,
                          cpu_proxy: bool = False) -> Dict[str, float]:
    """Fused embedding+A2A span plus the put-issue window (for Fig. 11)."""
    world = num_nodes * gpus_per_node
    cfg.validate(world)
    plat = get_platform(platform)
    d = device_model(plat)
    cm = CommModel(plat, num_nodes, gpus_per_node, cpu_proxy=cpu_proxy)
    spec = d.spec

    T = cfg.tables_per_gpu
    n_s = cfg.slices_per_stripe(world)
    tps = _tasks_per_slice(d, cfg, world)
    repeat = cfg.slice_vectors // tps
    per_dest_tasks = T * n_s * tps
    n_tasks = world * per_dest_tasks

    occ = d.persistent_occupancy(
        d.fused_res, n_tasks,
        occupancy_limit=_occupancy_limit(d, cfg.occupancy_of_baseline))
    slots = d.n_slots(occ, n_tasks)

    base_cost = embedding_wg_cost(cfg.pooling, cfg.dim, ITEMSIZE).plus(
        fixed=spec.flag_op_latency)
    zc_cost = base_cost.with_bytes(base_cost.bytes - cfg.dim * ITEMSIZE)
    dur_base = d.task_time(base_cost, occ, repeat)
    dur_zc = d.task_time(zc_cost, occ, repeat)
    # Destination classes as seen from any rank (the topology is symmetric).
    same_node_remote = gpus_per_node - 1
    other_node = world - gpus_per_node
    dur_same = dur_zc if cfg.zero_copy else dur_base

    remote_compute = per_dest_tasks * (same_node_remote * dur_same
                                       + other_node * dur_base)
    hook_charge = (world - 1) * T * n_s * spec.shmem_api_latency
    total = per_dest_tasks * dur_base + remote_compute + hook_charge

    launch = spec.kernel_launch_overhead
    compute_end = launch + _queue_span(total, n_tasks, slots)
    # First remote slice: its tps pieces run in parallel across slots.
    first_task = dur_same if same_node_remote else dur_base
    first_issue = launch + first_task * math.ceil(tps / slots)
    if cfg.scheduler == "comm_aware":
        last_issue = launch + (remote_compute + hook_charge) / slots
    else:
        last_issue = compute_end

    slice_bytes = cfg.slice_bytes()
    msgs = T * n_s                       # slices per remote destination
    finish = compute_end
    if same_node_remote:
        drain = cm.drain_time(msgs * (slice_bytes + FLAG_BYTES), 2 * msgs,
                              remote_node=False)
        finish = max(finish, _overlap_finish(
            compute_end, first_issue, last_issue, drain,
            cm.signal_tail(slice_bytes, remote_node=False)))
    if other_node:
        # The NIC is a *node* resource: all gpus_per_node ranks drain
        # their off-node slices through the same TX engine (a no-op on
        # 1-GPU nodes, where this has always been exact).
        nic_msgs = gpus_per_node * other_node * msgs
        drain = cm.drain_time(nic_msgs * (slice_bytes + FLAG_BYTES),
                              2 * nic_msgs, remote_node=True)
        first_nic = first_issue
        if same_node_remote:
            # Destinations are walked in ascending order, so on the
            # worst-placed node every same-node-remote stripe computes
            # before the first off-node put issues — the NIC drain
            # starts one intra-node stripe late (mixed shapes only;
            # 1-GPU nodes have no such stripe and stay exact).
            same_total = per_dest_tasks * same_node_remote * dur_same \
                + same_node_remote * T * n_s * spec.shmem_api_latency
            first_nic = launch + same_total / slots
        finish = max(finish, _overlap_finish(
            compute_end, first_nic, last_issue, drain,
            cm.signal_tail(slice_bytes, remote_node=True)))
    return {"elapsed": finish, "first_issue": first_issue,
            "last_issue": last_issue, "launch": launch,
            "puts_per_remote_dest": msgs}


def _embedding_baseline_time(num_nodes: int, gpus_per_node: int,
                             cfg: EmbeddingA2AConfig,
                             platform: PlatformLike = None) -> float:
    """Per-table bulk pooling kernels, then the RCCL-like All-to-All."""
    world = num_nodes * gpus_per_node
    cfg.validate(world)
    plat = get_platform(platform)
    d = device_model(plat)
    cm = CommModel(plat, num_nodes, gpus_per_node)
    cost = embedding_wg_cost(cfg.pooling, cfg.dim, ITEMSIZE)
    compute = cfg.tables_per_gpu * d.bulk_kernel_time(
        cfg.global_batch, cost, d.base_res)
    chunk = float(cfg.local_batch(world) * cfg.tables_per_gpu
                  * cfg.dim * ITEMSIZE)
    return compute + cm.alltoall_time(chunk, algo=cfg.algo)


def predict_embedding_a2a(num_nodes: int, gpus_per_node: int,
                          platform: PlatformLike = None,
                          baseline: Optional[Dict[str, Any]] = None,
                          **cfg_fields: Any) -> Dict[str, float]:
    """Analytic twin of the ``embedding_a2a_pair`` runner."""
    cfg = EmbeddingA2AConfig(functional=False, **cfg_fields)
    # The baseline override inherits the collective schedule unless it
    # names its own (the algo axis compares like against like).
    base_cfg = (cfg if baseline is None
                else EmbeddingA2AConfig(functional=False,
                                        **{"algo": cfg.algo, **baseline}))
    fused = _embedding_fused_time(num_nodes, gpus_per_node, cfg,
                                  platform=platform)
    return {
        "fused_time": fused["elapsed"],
        "baseline_time": _embedding_baseline_time(
            num_nodes, gpus_per_node, base_cfg, platform=platform),
    }


def predict_embedding_fused(num_nodes: int = 2, gpus_per_node: int = 1,
                            cpu_proxy: bool = False,
                            platform: PlatformLike = None,
                            **cfg_fields: Any) -> Dict[str, Any]:
    """Analytic twin of the ``embedding_fused`` runner (Figs. 13/14 and
    the slice/proxy ablations).  Rank timelines are symmetric in closed
    form, so every rank reports the same end time (zero predicted skew)."""
    cfg = EmbeddingA2AConfig(functional=False, **cfg_fields)
    fused = _embedding_fused_time(num_nodes, gpus_per_node, cfg,
                                  platform=platform, cpu_proxy=cpu_proxy)
    world = num_nodes * gpus_per_node
    return {
        "elapsed": fused["elapsed"],
        "rank_end_times": {str(r): fused["elapsed"] for r in range(world)},
    }


# ---------------------------------------------------------------------------
# Embedding gradient All-to-All (backward)
# ---------------------------------------------------------------------------

def predict_embedding_grad_a2a(num_nodes: int = 2, gpus_per_node: int = 1,
                               platform: PlatformLike = None,
                               **cfg_fields: Any) -> Dict[str, float]:
    """Analytic twin of the ``embedding_grad_pair`` runner."""
    cfg = EmbeddingA2AConfig(functional=False, **cfg_fields)
    world = num_nodes * gpus_per_node
    cfg.validate(world)
    plat = get_platform(platform)
    d = device_model(plat)
    cm = CommModel(plat, num_nodes, gpus_per_node)
    spec = d.spec

    T = cfg.tables_per_gpu
    n_s = cfg.slices_per_stripe(world)
    n_send = world * T * n_s
    slice_bytes = cfg.slice_bytes()

    occ = d.persistent_occupancy(d.fused_res, 2 * n_send, n_work=n_send)
    slots = d.n_slots(occ, 2 * n_send)
    send_cost = WgCost(bytes=slice_bytes, dtype="fp32",
                       fixed=spec.flag_op_latency)
    send_dur = d.task_time(send_cost, occ)
    n_remote = (world - 1) * T * n_s
    send_total = n_send * send_dur + n_remote * spec.shmem_api_latency

    apply_dur = d.wg_time(_scatter_cost(cfg, cfg.slice_vectors), occ)
    apply_total = n_send * (spec.wg_dispatch_overhead + apply_dur)

    launch = spec.kernel_launch_overhead
    send_end = launch + _queue_span(send_total, n_send, slots)
    # Remote sends go first (comm-aware); their payloads drain through the
    # NIC/fabric while sends and local applies proceed, and the receiver's
    # final apply cannot run before the last slice's fenced flag lands.
    first_issue = launch + send_dur
    last_issue = launch + ((n_remote * send_dur
                            + n_remote * spec.shmem_api_latency) / slots)
    remote_dst = num_nodes > 1      # 2-node shape: the peer is off-node
    per_channel = n_remote // max(world - 1, 1)
    drain = cm.drain_time(per_channel * (slice_bytes + FLAG_BYTES),
                          2 * per_channel, remote_node=remote_dst)
    arrival = max(last_issue, first_issue + drain) + cm.signal_tail(
        slice_bytes, remote_node=remote_dst)
    # Applies sit at the back of the shared queue, so the apply phase pays
    # its own last-round quantization on top of the send phase.
    finish = max(send_end + _queue_span(apply_total, n_send, slots),
                 arrival + spec.wg_dispatch_overhead + apply_dur)

    # Baseline: All-to-All kernel, then a bulk scatter-add kernel.
    chunk = float(cfg.local_batch(world) * T * cfg.dim * ITEMSIZE)
    baseline = (cm.alltoall_time(chunk, algo=cfg.algo)
                + d.bulk_kernel_time(cfg.global_batch * T,
                                     _scatter_cost(cfg, 1), d.base_res))
    return {"fused_time": finish, "baseline_time": baseline}


# ---------------------------------------------------------------------------
# GEMV + AllReduce (scale-up)
# ---------------------------------------------------------------------------

def predict_gemv_allreduce(world: int = 4, platform: PlatformLike = None,
                           **cfg_fields: Any) -> Dict[str, float]:
    """Analytic twin of the ``gemv_allreduce_pair`` runner."""
    cfg = GemvAllReduceConfig(functional=False, **cfg_fields)
    cfg.validate(world)
    plat = get_platform(platform)
    d = device_model(plat)
    cm = CommModel(plat, num_nodes=1, gpus_per_node=world)
    spec = d.spec

    chunk = cfg.chunk_rows(world)
    tiles_per_owner = chunk // cfg.tile_rows
    n_a = world * tiles_per_owner
    n_b = tiles_per_owner
    tile_bytes = cfg.tile_bytes()

    occ = d.persistent_occupancy(d.fused_res, n_a + n_b, n_work=n_a)
    slots = d.n_slots(occ, n_a + n_b)
    base_cost = gemv_wg_cost(cfg.tile_rows, cfg.n_per_gpu, cfg.itemsize)
    base_cost = WgCost(base_cost.flops, base_cost.bytes, cfg.flop_dtype,
                       spec.flag_op_latency, base_cost.access)
    zc_cost = base_cost.with_bytes(base_cost.bytes
                                   - cfg.tile_rows * cfg.itemsize)
    t_a = _queue_span(
        tiles_per_owner * (d.task_time(base_cost, occ)
                           + (world - 1) * d.task_time(zc_cost, occ)),
        n_a, slots)
    launch = spec.kernel_launch_overhead
    # Every owner's partialRdy: the last streamed tile plus its chained
    # fenced flag (put issued behind an all-of over the tile transfers).
    partial_ready = launch + t_a + cm.signal_tail(tile_bytes,
                                                  remote_node=False)

    reduce_cost = WgCost(flops=float((world - 1) * cfg.tile_rows),
                         bytes=float((world + 1) * cfg.tile_rows
                                     * cfg.itemsize),
                         dtype="fp32")
    reduce_dur = d.wg_time(reduce_cost, occ)
    rounds_b = math.ceil(n_b / slots)
    t_b = rounds_b * (spec.wg_dispatch_overhead + reduce_dur)
    # All-gather phase: each owner streams its reduced chunk to every peer
    # over dedicated links, finishing with a fenced finalRdy flag.
    bcast_drain = chunk * cfg.itemsize / cm.link.bandwidth
    fused = (partial_ready + max(t_b, bcast_drain)
             + cm.signal_tail(tile_bytes, remote_node=False))

    # Baseline: bulk GEMV kernel, then RCCL-like direct AllReduce.
    bulk_cost = gemv_wg_cost(cfg.tile_rows, cfg.n_per_gpu, cfg.itemsize)
    bulk_cost = WgCost(bulk_cost.flops, bulk_cost.bytes, cfg.flop_dtype, 0.0)
    baseline = (d.bulk_kernel_time(cfg.m // cfg.tile_rows, bulk_cost,
                                   d.base_res)
                + cm.allreduce_time(float(cfg.m * cfg.itemsize), cfg.m,
                                    itemsize=cfg.itemsize,
                                    algo=cfg.algo or "direct"))
    return {"fused_time": fused, "baseline_time": baseline}


# ---------------------------------------------------------------------------
# GEMM + All-to-All (MoE expert)
# ---------------------------------------------------------------------------

def predict_gemm_a2a(world: int = 4, platform: PlatformLike = None,
                     **cfg_fields: Any) -> Dict[str, float]:
    """Analytic twin of the ``gemm_a2a_pair`` runner."""
    cfg = GemmA2AConfig(functional=False, **cfg_fields)
    cfg.validate(world)
    plat = get_platform(platform)
    d = device_model(plat)
    cm = CommModel(plat, num_nodes=1, gpus_per_node=world)
    spec = d.spec

    grid_m = cfg.tokens // cfg.block_m
    grid_n = cfg.ffn_dim // cfg.block_n
    n_tasks = grid_m * grid_n
    tiles_per_dest = n_tasks // world
    tile_wire = cfg.tile_wire_bytes()

    occ = d.persistent_occupancy(d.fused_res, n_tasks)
    slots = d.n_slots(occ, n_tasks)
    base_cost = gemm_wg_cost(cfg.block_m, cfg.block_n, cfg.model_dim,
                             itemsize=cfg.itemsize,
                             dtype=cfg.flop_dtype).plus(
        fixed=spec.flag_op_latency)
    zc_cost = base_cost.with_bytes(base_cost.bytes - tile_wire)
    dur_base = d.task_time(base_cost, occ)
    dur_zc = d.task_time(zc_cost, occ)
    # Every tile's hook issues a put (self-puts are free but still charge
    # the API latency to the issuing WG).
    remote_compute = ((world - 1) * tiles_per_dest
                      * (dur_zc + spec.shmem_api_latency))
    total = (tiles_per_dest * (dur_base + spec.shmem_api_latency)
             + remote_compute)

    launch = spec.kernel_launch_overhead
    compute_end = launch + _queue_span(total, n_tasks, slots)
    first_issue = launch + dur_zc
    last_issue = launch + remote_compute / slots  # comm-aware: remote first
    if cfg.scheduler != "comm_aware":
        last_issue = compute_end
    drain = cm.drain_time(tiles_per_dest * (tile_wire + FLAG_BYTES),
                          2 * tiles_per_dest, remote_node=False)
    fused = _overlap_finish(compute_end, first_issue, last_issue, drain,
                            cm.signal_tail(tile_wire, remote_node=False))

    bulk_cost = gemm_wg_cost(cfg.block_m, cfg.block_n, cfg.model_dim,
                             itemsize=cfg.itemsize, dtype=cfg.flop_dtype)
    tps = cfg.tokens_per_src(world)
    chunk = float(tps * cfg.ffn_dim * cfg.itemsize)
    baseline = (d.bulk_kernel_time(n_tasks, bulk_cost, d.base_res)
                + cm.alltoall_time(chunk, algo=cfg.algo))
    return {"fused_time": fused, "baseline_time": baseline}


# ---------------------------------------------------------------------------
# DLRM scale-out and the Fig. 11 timeline
# ---------------------------------------------------------------------------

def predict_dlrm_scaleout(num_nodes: int,
                          platform: PlatformLike = None) -> Dict[str, float]:
    """Scale-out DLRM iteration — **shared** with the DES backend.

    The Fig. 15 pipeline (:mod:`repro.astra`) is already closed-form: per-
    kernel durations from the same roofline model plus list-scheduled
    execution graphs, no event loop involved.  Both backends therefore
    call the same code and agree exactly.
    """
    from ..astra import run_dlrm_scaleout
    r = run_dlrm_scaleout(num_nodes, platform=platform)
    return {
        "fused_time": r.fused_time,
        "baseline_time": r.baseline_time,
        "reduction_pct": r.reduction_pct,
        "exposed_a2a_fraction": r.exposed_a2a_fraction(),
    }


def predict_wg_timeline(batch: int = 512, tables: int = 32,
                        wgs_per_slice: int = 16, timeline_width: int = 100,
                        platform: PlatformLike = None) -> Dict[str, Any]:
    """Analytic twin of the ``wg_timeline`` runner (Fig. 11).

    Geometry (put count) is exact; kernel span and the put-issue window
    come from the closed-form queue model.  The per-WG timeline rendering
    requires the DES trace and is replaced by a pointer to it.
    """
    cfg = EmbeddingA2AConfig(global_batch=batch, tables_per_gpu=tables,
                             functional=False, slice_vectors=wgs_per_slice,
                             tasks_per_slice=wgs_per_slice)
    fused = _embedding_fused_time(2, 1, cfg, platform=platform)
    kspan = fused["elapsed"]
    first = fused["first_issue"]
    last = fused["last_issue"]
    return {
        "kernel_time": f"{kspan * 1e3:.3f} ms",
        "puts_issued_node0": fused["puts_per_remote_dest"],
        "first_put_at": f"{100 * first / kspan:.1f}% of kernel",
        "last_put_at": f"{100 * last / kspan:.1f}% of kernel",
        "elapsed": f"{kspan * 1e3:.3f} ms",
        "timeline": "\n(per-WG timeline requires the DES trace; run this "
                    "sweep under backend=sim to render it)",
        "_kernel_time_s": kspan,
        "_first_put_frac": first / kspan,
        "_last_put_frac": last / kspan,
        "_elapsed_s": kspan,
    }
