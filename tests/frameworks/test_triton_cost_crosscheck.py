"""Cross-checks: Triton-recorded costs vs the analytic cost models.

The fused GEMM operator *times* tiles with the analytic
:func:`repro.ops.gemm.gemm_wg_cost`; the tile program *records* what it
actually loaded/stored/multiplied.  These tests pin the two together so the
cost model cannot silently drift from the executed dataflow.
"""

import numpy as np
import pytest

from repro.frameworks.triton import jit, tl
from repro.fused.base import OpHarness
from repro.fused.gemm_alltoall import FusedGemmAllToAll, GemmA2AConfig, \
    gemm_a2a_kernel, make_gemm_inputs
from repro.ops.gemm import gemm_wg_cost


def test_recorded_flops_match_analytic_gemm_cost():
    cfg = GemmA2AConfig(tokens=256, model_dim=64, ffn_dim=256,
                        block_m=64, block_n=128)
    world = 4
    acts, weights = make_gemm_inputs(cfg, world)

    class _NullBuf:
        def local(self, rank):
            return None

    # Run one instance through the interpreter-style API.
    report_ctx = gemm_a2a_kernel.run_instance(
        (cfg.tokens // cfg.block_m, cfg.ffn_dim // cfg.block_n), (0, 0),
        acts[0], weights[0], None, 0, cfg.tokens_per_src(world),
        cfg.block_m, cfg.block_n, cfg.tile_wire_bytes())
    analytic = gemm_wg_cost(cfg.block_m, cfg.block_n, cfg.model_dim,
                            itemsize=4)  # functional payloads are fp32
    assert report_ctx.flops == pytest.approx(analytic.flops)
    # Recorded bytes: A tile + B tile loads (the analytic model adds the C
    # write, which goes through put_tile here).
    expected_loads = (cfg.block_m * cfg.model_dim
                      + cfg.model_dim * cfg.block_n) * 4
    assert report_ctx.bytes == pytest.approx(expected_loads)
    assert len(report_ctx.comm_actions) == 1


def test_every_instance_emits_exactly_one_put():
    cfg = GemmA2AConfig(tokens=256, model_dim=32, ffn_dim=128,
                        block_m=64, block_n=128)
    h = OpHarness(1, 4)
    op = FusedGemmAllToAll(h, cfg)
    h.run(op)
    grid = (cfg.tokens // cfg.block_m, cfg.ffn_dim // cfg.block_n)
    # world ranks x all tiles, one wire put per tile plus one flag per
    # (src, dst) pair.
    n_tiles = grid[0] * grid[1]
    total_puts = sum(h.comm.ctx(r).puts_issued for r in range(4))
    assert total_puts == 4 * n_tiles + 4 * 4  # tiles + tileRdy flags


@jit
def double_dot(a, b):
    tl.dot(a, b)
    tl.dot(a, b)
    return None


def test_recorder_accumulates_across_ops():
    a = np.ones((2, 3), np.float32)
    b = np.ones((3, 4), np.float32)
    ctx = double_dot.run_instance((1,), (0,), a, b)
    assert ctx.flops == 2 * (2 * 2 * 3 * 4)


def test_interpret_is_deterministic():
    cfg = GemmA2AConfig(tokens=128, model_dim=16, ffn_dim=128,
                        block_m=32, block_n=128)
    acts, weights = make_gemm_inputs(cfg, 4)

    from repro.comm import Communicator
    from repro.hw import build_cluster
    from repro.sim import Simulator

    outs = []
    for _ in range(2):
        comm = Communicator(build_cluster(Simulator(), 1, 4))
        buf = comm.alloc((4, cfg.tokens_per_src(4), cfg.ffn_dim), np.float32)

        class View:
            def local(self, rank):
                return buf.local(rank)

        gemm_a2a_kernel.interpret(
            (cfg.tokens // cfg.block_m, cfg.ffn_dim // cfg.block_n),
            acts[0], weights[0], View(), 0, cfg.tokens_per_src(4),
            cfg.block_m, cfg.block_n, cfg.tile_wire_bytes())
        outs.append(buf.local(1).copy())
    np.testing.assert_array_equal(outs[0], outs[1])
