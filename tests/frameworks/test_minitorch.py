"""Tests for the minitorch integration layer."""

import numpy as np
import pytest

from repro.comm import Communicator
from repro.comm.symheap import HeapError
from repro.frameworks.minitorch import (
    Device,
    OPS,
    SymmetricTensor,
    Tensor,
    embedding_all_to_all_op,
    gemm_all_to_all_op,
    gemv_all_reduce_op,
    get_op,
    register_op,
    tensor,
    to_symmetric,
)
from repro.fused import EmbeddingA2AConfig, GemmA2AConfig, GemvAllReduceConfig
from repro.hw import build_cluster
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# Tensor / Device
# ---------------------------------------------------------------------------

def test_tensor_basics():
    t = tensor([[1.0, 2.0], [3.0, 4.0]])
    assert t.shape == (2, 2)
    assert t.device == Device("cpu")
    assert t.ndim == 2


def test_device_parse_and_errors():
    assert Device.parse("gpu:3") == Device("gpu", 3)
    assert Device.parse("cpu").kind == "cpu"
    with pytest.raises(ValueError):
        Device.parse("tpu:0")
    with pytest.raises(ValueError):
        Device("gpu")
    with pytest.raises(ValueError):
        Device("quantum")


def test_to_copies_data():
    t = tensor([1.0, 2.0])
    g = t.to("gpu:1")
    g.numpy()[0] = 99.0
    assert t.numpy()[0] == 1.0
    assert g.device == Device("gpu", 1)


def test_arithmetic_and_matmul():
    a = tensor([[1.0, 0.0], [0.0, 1.0]])
    b = tensor([[2.0, 3.0], [4.0, 5.0]])
    np.testing.assert_array_equal((a @ b).numpy(), b.numpy())
    np.testing.assert_array_equal((a + b).numpy(), a.numpy() + b.numpy())
    np.testing.assert_array_equal((b - a).numpy(), b.numpy() - a.numpy())
    np.testing.assert_array_equal((a * 2).numpy(), 2 * a.numpy())
    np.testing.assert_array_equal(b[0].numpy(), [2.0, 3.0])


def test_clone_independent():
    t = tensor([1.0])
    c = t.clone()
    c.numpy()[0] = 7.0
    assert t.numpy()[0] == 1.0


# ---------------------------------------------------------------------------
# Symmetric tensors
# ---------------------------------------------------------------------------

def make_comm(world=4):
    sim = Simulator()
    return Communicator(build_cluster(sim, 1, world))


def test_to_symmetric_places_payload_on_rank():
    comm = make_comm()
    host = tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
    st = to_symmetric(host, comm, rank=2)
    assert isinstance(st, SymmetricTensor)
    np.testing.assert_array_equal(st.numpy(2), host.numpy())
    assert np.all(st.numpy(0) == 0)
    assert st.world_size == 4


def test_symmetric_on_shares_storage():
    comm = make_comm()
    st = to_symmetric(np.zeros((2, 2), np.float32), comm)
    view = st.on(1)
    view.numpy()[0, 0] = 5.0
    assert st.numpy(1)[0, 0] == 5.0
    assert view.device == Device("gpu", 1)


def test_symmetric_free():
    comm = make_comm()
    st = to_symmetric(np.zeros(4, np.float32), comm)
    st.free()
    with pytest.raises(HeapError):
        st.numpy(0)


# ---------------------------------------------------------------------------
# Operator registry
# ---------------------------------------------------------------------------

def test_registry_contains_paper_ops():
    assert {"embeddingAll2AllOp", "gemvAllReduceOp", "gemmAll2AllOp"} <= set(OPS)
    assert get_op("embeddingAll2AllOp") is embedding_all_to_all_op
    with pytest.raises(KeyError):
        get_op("noSuchOp")


def test_register_op_rejects_duplicates():
    with pytest.raises(ValueError, match="already registered"):
        register_op("embeddingAll2AllOp")(lambda: None)


def test_embedding_op_end_to_end():
    cfg = EmbeddingA2AConfig(global_batch=64, tables_per_gpu=4, dim=16,
                             pooling=5, rows_per_table=50, slice_vectors=8)
    outs, elapsed = embedding_all_to_all_op(cfg, num_nodes=2, gpus_per_node=1)
    assert len(outs) == 2
    assert outs[0].shape == (32, 8, 16)
    assert outs[0].device == Device("gpu", 0)
    assert elapsed > 0
    outs_b, elapsed_b = embedding_all_to_all_op(
        cfg, num_nodes=2, gpus_per_node=1, fused=False)
    np.testing.assert_allclose(outs[0].numpy(), outs_b[0].numpy(), rtol=1e-5)
    assert elapsed < elapsed_b


def test_gemv_op_end_to_end():
    cfg = GemvAllReduceConfig(m=256, n_per_gpu=64)
    outs, elapsed = gemv_all_reduce_op(cfg)
    assert len(outs) == 4 and outs[0].shape == (256,)
    outs_b, _ = gemv_all_reduce_op(cfg, fused=False)
    np.testing.assert_allclose(outs[0].numpy(), outs_b[0].numpy(), rtol=1e-4)


def test_gemm_op_end_to_end():
    cfg = GemmA2AConfig(tokens=512, model_dim=128, ffn_dim=256, block_m=64)
    outs, elapsed = gemm_all_to_all_op(cfg)
    assert len(outs) == 4 and outs[0].shape == (4, 128, 256)
    outs_b, _ = gemm_all_to_all_op(cfg, fused=False)
    np.testing.assert_allclose(outs[0].numpy(), outs_b[0].numpy(), rtol=1e-4)
