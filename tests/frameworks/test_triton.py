"""Tests for the mini-Triton tile language, compiler and comm extension."""

import numpy as np
import pytest

from repro.comm import Communicator
from repro.frameworks.triton import build_tasks, jit, tl
from repro.frameworks.triton.language import TritonError, TileContext, \
    pop_context, push_context
from repro.hw import build_cluster
from repro.kernels import PersistentKernel
from repro.hw.gpu import WgCost
from repro.fused.base import fused_kernel_resources
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# Tile language
# ---------------------------------------------------------------------------

def with_ctx(grid, pos, fn):
    ctx = TileContext(grid=grid, grid_pos=pos)
    push_context(ctx)
    try:
        fn()
    finally:
        pop_context()
    return ctx


def test_ops_outside_program_raise():
    with pytest.raises(TritonError, match="outside"):
        tl.program_id(0)


def test_program_id_and_num_programs():
    got = {}

    def body():
        got["pid"] = (tl.program_id(0), tl.program_id(1))
        got["n"] = (tl.num_programs(0), tl.num_programs(1))

    with_ctx((3, 5), (2, 4), body)
    assert got["pid"] == (2, 4)
    assert got["n"] == (3, 5)


def test_program_id_bad_axis():
    def body():
        tl.program_id(2)

    with pytest.raises(TritonError, match="axis"):
        with_ctx((2, 2), (0, 0), body)


def test_load_records_bytes_and_copies():
    a = np.arange(24, dtype=np.float32).reshape(4, 6)
    got = {}

    def body():
        blk = tl.load(a, rows=(1, 2), cols=(2, 3))
        got["blk"] = blk
        blk[:] = 0  # must not affect the source (loads copy)

    ctx = with_ctx((1,), (0,), body)
    assert ctx.bytes == 2 * 3 * 4
    assert a[1, 2] == 8.0
    np.testing.assert_array_equal(got["blk"], 0)


def test_load_out_of_bounds():
    a = np.zeros((4, 4), np.float32)

    def body():
        tl.load(a, rows=(2, 3))

    with pytest.raises(TritonError, match="out of bounds"):
        with_ctx((1,), (0,), body)


def test_store_records_and_writes():
    a = np.zeros((4, 4), np.float32)

    def body():
        tl.store(a, np.ones((2, 2), np.float32), rows=(0, 2), cols=(0, 2))

    ctx = with_ctx((1,), (0,), body)
    assert ctx.bytes == 16
    assert a[:2, :2].sum() == 4


def test_dot_records_flops():
    a = np.ones((4, 8), np.float32)
    b = np.ones((8, 3), np.float32)
    got = {}

    def body():
        got["c"] = tl.dot(a, b)

    ctx = with_ctx((1,), (0,), body)
    assert ctx.flops == 2 * 4 * 8 * 3
    assert np.all(got["c"] == 8.0)


def test_dot_shape_mismatch():
    def body():
        tl.dot(np.ones((2, 3)), np.ones((4, 2)))

    with pytest.raises(TritonError, match="dot"):
        with_ctx((1,), (0,), body)


def test_zeros_full_arange_where_maximum():
    def body():
        z = tl.zeros((2, 2))
        f = tl.full((2,), 7.0)
        r = tl.arange(0, 4)
        m = tl.maximum(z, f[0])
        w = tl.where(r > 1, 1.0, 0.0)
        assert z.sum() == 0 and f[1] == 7.0
        assert m[0, 0] == 7.0
        np.testing.assert_array_equal(w, [0, 0, 1, 1])

    with_ctx((1,), (0,), body)
    with pytest.raises(TritonError):
        with_ctx((1,), (0,), lambda: tl.arange(3, 3))


# ---------------------------------------------------------------------------
# JIT / interpreter
# ---------------------------------------------------------------------------

@jit
def scale_kernel(x, out, block):
    pid = tl.program_id(0)
    blk = tl.load(x, rows=(pid * block, block))
    tl.store(out, 2.0 * blk, rows=(pid * block, block))


def test_interpret_runs_whole_grid():
    x = np.arange(32, dtype=np.float32).reshape(8, 4)
    out = np.zeros_like(x)
    report = scale_kernel.interpret((4,), x, out, 2)
    np.testing.assert_array_equal(out, 2 * x)
    assert report.instances == 4
    assert report.bytes == 2 * x.nbytes  # loads + stores


def test_direct_call_rejected():
    with pytest.raises(TypeError, match="cannot be called directly"):
        scale_kernel(1, 2, 3)


# ---------------------------------------------------------------------------
# Simulated launch with comm extension
# ---------------------------------------------------------------------------

@jit
def put_kernel(src, dst_buf, world, rows_per_rank):
    pid = tl.program_id(0)
    blk = tl.load(src, rows=(pid * rows_per_rank, rows_per_rank))
    tl.comm.put_tile(dst_buf, blk, dst_rank=pid,
                     index=(slice(0, rows_per_rank), slice(None)))


def test_build_tasks_simulated_launch_moves_data():
    sim = Simulator()
    cluster = build_cluster(sim, num_nodes=1, gpus_per_node=4)
    comm = Communicator(cluster)
    src = np.arange(16, dtype=np.float32).reshape(4, 4) * 10
    dst = comm.alloc((1, 4), np.float32)

    tasks = build_tasks(put_kernel, (4,), (src, dst, 4, 1),
                        cost=WgCost(bytes=16.0),
                        shmem_ctx=comm.ctx(0))
    kern = PersistentKernel(cluster.gpu(0), fused_kernel_resources(), tasks,
                            name="put")

    def proc(sim):
        yield from kern.run()
        ctx = comm.ctx(0)
        yield ctx.quiet()

    sim.run_process(proc(sim))
    for r in range(4):
        np.testing.assert_array_equal(dst.local(r)[0], src[r])
    assert comm.ctx(0).puts_issued == 4


def test_meta_fn_tags_tasks_for_scheduler():
    sim = Simulator()
    cluster = build_cluster(sim, num_nodes=1, gpus_per_node=2)
    comm = Communicator(cluster)
    src = np.zeros((2, 2), np.float32)
    dst = comm.alloc((1, 2), np.float32)
    tasks = build_tasks(put_kernel, (2,), (src, dst, 2, 1),
                        cost=WgCost(bytes=8.0), shmem_ctx=comm.ctx(0),
                        meta_fn=lambda pos: {"remote": pos[0] != 0})
    assert [t.meta["remote"] for t in tasks] == [False, True]
    assert tasks[1].meta["grid_pos"] == (1,)
