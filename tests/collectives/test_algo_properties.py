"""Hypothesis properties of the collective-algorithm closed forms.

* **hierarchical <= flat once the NIC's message pipeline is the
  bottleneck** — staging trades ``gpus_per_node``-fold fewer NIC
  messages for one fabric hop, so deep in the message-rate-bound regime
  (TX overhead at least twice every other term) it can only win.
* **ring AllReduce is monotone in message size** — more bytes never
  predict less time, on any shape.
* **selected-by-auto is never worse than the legacy default** at the
  selector's own operating points (the heuristic must not pessimize).
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analytic import CommModel
from repro.collectives import CommTopology, select_alltoall
from repro.hw.platform import get_platform

_NIC = get_platform("mi210").nic

shapes = st.tuples(st.integers(min_value=2, max_value=8),
                   st.integers(min_value=2, max_value=8))


@given(shape=shapes,
       chunk=st.floats(min_value=8.0, max_value=16384.0))
@settings(max_examples=60, deadline=None)
def test_hier_alltoall_beats_flat_when_message_bound(shape, chunk):
    num_nodes, gpus_per_node = shape
    n_flat = gpus_per_node * (num_nodes * gpus_per_node - gpus_per_node)
    wire = chunk / _NIC.bandwidth
    mo = _NIC.message_overhead
    # Deep message-rate-bound regime: the flat incast's TX-overhead chain
    # dominates its wire stage with a 2x margin (right at the boundary
    # the extra fabric hop is not yet amortized — genuinely a wash).
    assume(n_flat * mo >= 2 * (mo + n_flat * wire))
    cm = CommModel("mi210", num_nodes=num_nodes,
                   gpus_per_node=gpus_per_node)
    assert cm.alltoall_time(chunk, algo="hier") <= \
        cm.alltoall_time(chunk, algo="flat") * (1 + 1e-9)


@given(shape=st.tuples(st.integers(min_value=1, max_value=8),
                       st.integers(min_value=1, max_value=8)),
       n_elems=st.integers(min_value=64, max_value=1 << 22),
       factor=st.floats(min_value=1.0, max_value=64.0))
@settings(max_examples=80, deadline=None)
def test_ring_allreduce_monotone_in_message_size(shape, n_elems, factor):
    num_nodes, gpus_per_node = shape
    assume(num_nodes * gpus_per_node >= 2)
    cm = CommModel("mi210", num_nodes=num_nodes,
                   gpus_per_node=gpus_per_node)
    small = cm.allreduce_time(float(4 * n_elems), n_elems, algo="ring")
    bigger_elems = int(n_elems * factor)
    big = cm.allreduce_time(float(4 * bigger_elems), bigger_elems,
                            algo="ring")
    assert big >= small * (1 - 1e-9)


@given(shape=shapes,
       chunk=st.floats(min_value=8.0, max_value=float(1 << 24)))
@settings(max_examples=60, deadline=None)
def test_auto_alltoall_never_pessimizes_the_default(shape, chunk):
    num_nodes, gpus_per_node = shape
    topo = CommTopology(num_nodes, gpus_per_node)
    picked = select_alltoall(topo, chunk)
    cm = CommModel("mi210", num_nodes=num_nodes,
                   gpus_per_node=gpus_per_node)
    # The heuristic's operating points are coarse; hold it to "within 5%
    # of the legacy flat schedule or better" rather than exact argmin.
    assert cm.alltoall_time(chunk, algo=picked) <= \
        cm.alltoall_time(chunk, algo="flat") * 1.05
