"""The collective-algorithm library: registry, degenerate collapse,
DES-vs-analytic equivalence, and the auto-selector.

The equivalence tests are the library's core contract (mirroring
``tests/analytic/test_device_comm.py``): every algorithm's closed form
must track its DES schedule.  Lock-stepped schedules (ring, tree,
pairwise) and two-stage hierarchies agree to float noise on every tested
shape; the flat/direct incast forms inherit the pre-existing shared-NIC
pipeline approximation on 3+-node shapes and are held to the analytic
backend's accuracy budget there.
"""

import pytest

from repro.analytic import CommModel
from repro.analytic.validate import ACCURACY_BUDGET
from repro.collectives import (
    AUTO,
    CommTopology,
    allreduce_names,
    alltoall_names,
    check_algo,
    default_allreduce,
    default_alltoall,
    get_allreduce,
    get_alltoall,
    resolve_allreduce,
    select_allreduce,
    select_alltoall,
)
from repro.fused.base import OpHarness

BUDGET = max(v for v in ACCURACY_BUDGET.values())

#: Shapes the equivalence grid runs on.
SHAPES = [(1, 1), (1, 4), (2, 1), (2, 2), (2, 4), (3, 2), (4, 2)]

#: (algorithm, shape) pairs where the closed form is the DES schedule's
#: exact per-round mirror.  Everything else must sit inside the budget.
_EXACT_AR = {
    "direct": {(1, 1), (1, 4), (2, 1)},
    "ring": set(SHAPES),
    "tree": set(SHAPES),
    "hier": set(SHAPES),
}
_EXACT_A2A = {
    "flat": {(1, 1), (1, 4), (2, 1), (2, 2), (2, 4)},
    "pairwise": set(SHAPES),
    "hier": {(1, 1), (1, 4), (2, 1), (2, 2), (2, 4)},
}


def des_allreduce(nodes, gpn, nbytes, n_elems, itemsize, algo):
    h = OpHarness(num_nodes=nodes, gpus_per_node=gpn)
    start = h.sim.now
    h.sim.run_process(h.comm.collectives.all_reduce_bytes(
        nbytes, n_elems, itemsize=itemsize, algorithm=algo))
    return h.sim.now - start


def des_alltoall(nodes, gpn, chunk, algo):
    h = OpHarness(num_nodes=nodes, gpus_per_node=gpn)
    start = h.sim.now
    h.sim.run_process(h.comm.collectives.all_to_all_bytes(
        chunk, algorithm=algo))
    return h.sim.now - start


# ---------------------------------------------------------------------------
# Registry + validation
# ---------------------------------------------------------------------------

def test_registry_contents():
    assert set(allreduce_names()) >= {"direct", "ring", "tree", "hier"}
    assert set(alltoall_names()) >= {"flat", "pairwise", "hier"}


def test_unknown_algorithm_raises_keyerror_with_choices():
    with pytest.raises(KeyError, match=r"unknown AllReduce algorithm "
                                       r"'bogus'.*registered.*ring"):
        get_allreduce("bogus")
    with pytest.raises(KeyError, match=r"unknown All-to-All algorithm "
                                       r"'bogus'.*registered.*flat"):
        get_alltoall("bogus")


def test_check_algo():
    check_algo("allreduce", None)
    check_algo("allreduce", AUTO)
    check_algo("allreduce", "tree")
    check_algo("alltoall", "pairwise")
    with pytest.raises(KeyError):
        check_algo("allreduce", "flat")      # an alltoall-only name
    with pytest.raises(KeyError):
        check_algo("alltoall", "ring")       # an allreduce-only name
    with pytest.raises(ValueError, match="kind"):
        check_algo("gather", "ring")


def test_topology_helpers():
    topo = CommTopology(2, 4)
    assert topo.world == 8
    assert topo.node_of(5) == 1 and topo.local_index(5) == 1
    assert topo.leader_of(6) == 4
    assert topo.leaders() == [0, 4]
    assert topo.counterpart(1, 1) == 5
    assert topo.local_peers(5) == [4, 6, 7]
    with pytest.raises(ValueError):
        CommTopology(0, 4)


def test_topology_from_cluster_matches_build():
    h = OpHarness(num_nodes=2, gpus_per_node=2)
    topo = CommTopology.from_cluster(h.cluster)
    assert (topo.num_nodes, topo.gpus_per_node) == (2, 2)


# ---------------------------------------------------------------------------
# DES vs analytic equivalence (the library's core contract)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("nodes,gpn", SHAPES)
@pytest.mark.parametrize("algo", ["direct", "ring", "tree", "hier"])
@pytest.mark.parametrize("n_elems", [4096, 1 << 20])
def test_allreduce_des_vs_analytic(nodes, gpn, algo, n_elems):
    nbytes = float(n_elems * 2)
    sim_time = des_allreduce(nodes, gpn, nbytes, n_elems, 2, algo)
    cm = CommModel("mi210", num_nodes=nodes, gpus_per_node=gpn)
    pred = cm.allreduce_time(nbytes, n_elems, itemsize=2, algo=algo)
    if (nodes, gpn) in _EXACT_AR[algo]:
        assert pred == pytest.approx(sim_time, rel=1e-9)
    else:
        assert pred == pytest.approx(sim_time, rel=BUDGET)


@pytest.mark.parametrize("nodes,gpn", SHAPES)
@pytest.mark.parametrize("algo", ["flat", "pairwise", "hier"])
@pytest.mark.parametrize("chunk", [4096.0, 8.0 * 1024 * 1024])
def test_alltoall_des_vs_analytic(nodes, gpn, algo, chunk):
    sim_time = des_alltoall(nodes, gpn, chunk, algo)
    cm = CommModel("mi210", num_nodes=nodes, gpus_per_node=gpn)
    pred = cm.alltoall_time(chunk, algo=algo)
    if (nodes, gpn) in _EXACT_A2A[algo]:
        assert pred == pytest.approx(sim_time, rel=1e-9)
    else:
        assert pred == pytest.approx(sim_time, rel=BUDGET)


@pytest.mark.parametrize("name", ["mi250x", "h100"])
def test_equivalence_holds_across_platforms(name):
    """Spot-check a non-default catalog entry per engine pair."""
    h = OpHarness(num_nodes=2, gpus_per_node=2, platform=name)
    n_elems = 65536
    start = h.sim.now
    h.sim.run_process(h.comm.collectives.all_reduce_bytes(
        float(n_elems * 4), n_elems, itemsize=4, algorithm="hier"))
    sim_time = h.sim.now - start
    cm = CommModel(name, num_nodes=2, gpus_per_node=2)
    assert cm.allreduce_time(float(n_elems * 4), n_elems, itemsize=4,
                             algo="hier") == pytest.approx(sim_time,
                                                           rel=1e-9)


# ---------------------------------------------------------------------------
# Degenerate hierarchical shapes collapse to the flat schedules
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("nodes,gpn,flat_equiv", [
    (1, 4, "direct"),   # one node: no NIC stage to split off
    (1, 1, "direct"),
    (2, 1, "ring"),     # no fabric peers: nothing to stage over
    (4, 1, "ring"),
])
def test_hier_allreduce_degenerates_exactly(nodes, gpn, flat_equiv):
    n_elems = 4096
    nbytes = float(n_elems * 4)
    assert des_allreduce(nodes, gpn, nbytes, n_elems, 4, "hier") == \
        des_allreduce(nodes, gpn, nbytes, n_elems, 4, flat_equiv)
    cm = CommModel("mi210", num_nodes=nodes, gpus_per_node=gpn)
    assert cm.allreduce_time(nbytes, n_elems, algo="hier") == \
        cm.allreduce_time(nbytes, n_elems, algo=flat_equiv)


@pytest.mark.parametrize("nodes,gpn", [(1, 4), (1, 1), (2, 1), (4, 1)])
def test_hier_alltoall_degenerates_to_flat(nodes, gpn):
    """Single-GPU nodes (and single nodes) must collapse to the flat
    schedule — not divide by zero on the empty fabric-peer set."""
    chunk = 32768.0
    assert des_alltoall(nodes, gpn, chunk, "hier") == \
        des_alltoall(nodes, gpn, chunk, "flat")
    cm = CommModel("mi210", num_nodes=nodes, gpus_per_node=gpn)
    assert cm.alltoall_time(chunk, algo="hier") == \
        cm.alltoall_time(chunk, algo="flat")


# ---------------------------------------------------------------------------
# Auto-selection
# ---------------------------------------------------------------------------

def test_defaults_are_the_legacy_schedules():
    assert default_allreduce(CommTopology(1, 4)) == "direct"
    assert default_allreduce(CommTopology(2, 1)) == "ring"
    assert default_alltoall(CommTopology(1, 4)) == "flat"
    assert default_alltoall(CommTopology(2, 4)) == "flat"


def test_selector_by_regime():
    assert select_allreduce(CommTopology(1, 4), 1 << 30) == "direct"
    assert select_allreduce(CommTopology(2, 1), 4096) == "tree"
    assert select_allreduce(CommTopology(2, 1), 1 << 24) == "ring"
    assert select_allreduce(CommTopology(2, 4), 4096) == "hier"
    assert select_allreduce(CommTopology(2, 4), 1 << 24) == "ring"
    assert select_alltoall(CommTopology(1, 4), 1 << 24) == "flat"
    assert select_alltoall(CommTopology(2, 1), 1024) == "pairwise"
    assert select_alltoall(CommTopology(2, 4), 1024) == "hier"
    assert select_alltoall(CommTopology(2, 4), 1 << 24) == "flat"


def test_selector_picks_win_over_alternative():
    """At representative points the selected schedule actually beats the
    schedule the selector rejected (on the calibrated MI210 models)."""
    # Tree needs the log2(p) round count to pay off: 4+ nodes, small
    # payloads (at 2 nodes tree and ring are the same two hops).
    cm41 = CommModel("mi210", num_nodes=4, gpus_per_node=1)
    n = 1024
    assert cm41.allreduce_time(float(4 * n), n, algo="tree") < \
        cm41.allreduce_time(float(4 * n), n, algo="ring")
    n = 1 << 22
    assert cm41.allreduce_time(float(4 * n), n, algo="ring") < \
        cm41.allreduce_time(float(4 * n), n, algo="tree")
    cm24 = CommModel("mi210", num_nodes=2, gpus_per_node=4)
    assert cm24.alltoall_time(512.0, algo="hier") < \
        cm24.alltoall_time(512.0, algo="flat")
    assert cm24.alltoall_time(8.0 * 1024 * 1024, algo="flat") < \
        cm24.alltoall_time(8.0 * 1024 * 1024, algo="hier")


def test_auto_resolves_and_runs_everywhere():
    topo = CommTopology(2, 4)
    assert resolve_allreduce(AUTO, topo, 4096.0).name == "hier"
    assert des_allreduce(2, 2, 4096.0, 1024, 4, "auto") > 0
    assert des_alltoall(2, 2, 4096.0, "auto") > 0
    cm = CommModel("mi210", num_nodes=2, gpus_per_node=2)
    assert cm.allreduce_time(4096.0, 1024, algo="auto") > 0
    assert cm.alltoall_time(4096.0, algo="auto") > 0


def test_functional_allreduce_new_algorithms_preserve_semantics():
    """Functional outputs are schedule-independent; new schedules still
    reduce correctly and advance simulated time."""
    import numpy as np

    for algo in ("tree", "hier", "auto"):
        h = OpHarness(num_nodes=2, gpus_per_node=2)
        arrays = [np.full(64, float(r + 1), np.float32) for r in range(4)]
        start = h.sim.now
        outs = h.sim.run_process(h.comm.collectives.all_reduce(
            arrays, algorithm=algo))
        assert h.sim.now > start
        for out in outs:
            np.testing.assert_array_equal(out, np.full(64, 10.0, np.float32))
