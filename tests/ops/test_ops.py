"""Tests for functional operators and their cost models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.hw import MI210, Gpu, KernelResources
from repro.ops import (
    Mlp,
    embedding_pooling,
    embedding_table_bytes,
    embedding_wg_cost,
    gelu,
    gemm,
    gemm_tile_grid,
    gemm_wg_cost,
    gemv,
    gemv_wg_cost,
    interaction,
    interaction_output_dim,
    interaction_wg_cost,
    mlp_flops,
    mlp_time_on_gpu,
    relu,
    sigmoid,
    split_tiles,
)
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# Embedding pooling
# ---------------------------------------------------------------------------

def test_embedding_sum_matches_manual():
    rng = np.random.default_rng(0)
    table = rng.standard_normal((100, 8)).astype(np.float32)
    idx = rng.integers(0, 100, size=(4, 5))
    out = embedding_pooling(table, idx, mode="sum")
    for b in range(4):
        np.testing.assert_allclose(out[b], table[idx[b]].sum(0), rtol=1e-5)


def test_embedding_mean():
    table = np.ones((10, 4), np.float32) * 3.0
    idx = np.zeros((2, 6), np.int64)
    out = embedding_pooling(table, idx, mode="mean")
    assert np.allclose(out, 3.0)


def test_embedding_validation():
    table = np.zeros((10, 4), np.float32)
    good_idx = np.zeros((2, 3), np.int64)
    with pytest.raises(ValueError):
        embedding_pooling(table[0], good_idx)
    with pytest.raises(ValueError):
        embedding_pooling(table, good_idx[0])
    with pytest.raises(TypeError):
        embedding_pooling(table, good_idx.astype(np.float32))
    with pytest.raises(IndexError):
        embedding_pooling(table, np.full((2, 3), 99, np.int64))
    with pytest.raises(ValueError):
        embedding_pooling(table, good_idx, mode="max")


def test_embedding_cost_is_memory_bound_on_mi210():
    cost = embedding_wg_cost(pooling=70, dim=92)
    gpu = Gpu(Simulator(), MI210, gpu_id=0)
    occ = gpu.occupancy(KernelResources(256, 64))
    mem_t = cost.bytes / (gpu.hbm.achieved_bandwidth(occ.fraction)
                          / occ.resident_wgs)
    flop_t = cost.flops / (MI210.fp32_flops / occ.resident_wgs)
    assert mem_t > flop_t


def test_embedding_cost_and_bytes_validation():
    with pytest.raises(ValueError):
        embedding_wg_cost(0, 4)
    assert embedding_table_bytes(1000, 92) == 1000 * 92 * 4


@given(hnp.arrays(np.float32, st.tuples(st.integers(2, 30), st.integers(1, 8)),
                  elements=st.floats(-10, 10, width=32)),
       st.data())
@settings(max_examples=40)
def test_embedding_pooling_linearity(table, data):
    """sum-pooling is linear: pooling(2*T) == 2*pooling(T)."""
    batch = data.draw(st.integers(1, 4))
    pool = data.draw(st.integers(1, 5))
    idx = data.draw(hnp.arrays(np.int64, (batch, pool),
                               elements=st.integers(0, table.shape[0] - 1)))
    out1 = embedding_pooling(table, idx)
    out2 = embedding_pooling((2.0 * table).astype(np.float32), idx)
    np.testing.assert_allclose(out2, 2.0 * out1, rtol=1e-4, atol=1e-4)


# ---------------------------------------------------------------------------
# GEMV / GEMM / tiles
# ---------------------------------------------------------------------------

def test_gemv_matches_numpy():
    rng = np.random.default_rng(1)
    a = rng.standard_normal((32, 16)).astype(np.float32)
    x = rng.standard_normal(16).astype(np.float32)
    np.testing.assert_allclose(gemv(a, x), a @ x, rtol=1e-5)


def test_gemv_validation():
    with pytest.raises(ValueError):
        gemv(np.zeros(4), np.zeros(4))
    with pytest.raises(ValueError):
        gemv(np.zeros((4, 4)), np.zeros((4, 4)))
    with pytest.raises(ValueError):
        gemv(np.zeros((4, 5)), np.zeros(4))


def test_split_tiles():
    assert split_tiles(10, 4) == [(0, 4), (4, 8), (8, 10)]
    assert split_tiles(4, 8) == [(0, 4)]
    with pytest.raises(ValueError):
        split_tiles(0, 4)
    with pytest.raises(ValueError):
        split_tiles(4, 0)


def test_gemv_cost_memory_dominated():
    cost = gemv_wg_cost(tile_rows=64, n_cols=8192)
    # GEMV: 2 flops per 4 bytes -> far below MI210's flop:byte balance.
    assert cost.flops / cost.bytes < MI210.fp32_flops / MI210.hbm_bandwidth


def test_gemm_matches_numpy():
    rng = np.random.default_rng(2)
    a = rng.standard_normal((24, 12)).astype(np.float32)
    b = rng.standard_normal((12, 18)).astype(np.float32)
    np.testing.assert_allclose(gemm(a, b), a @ b, rtol=1e-5)


def test_gemm_validation():
    with pytest.raises(ValueError):
        gemm(np.zeros(4), np.zeros((4, 4)))
    with pytest.raises(ValueError):
        gemm(np.zeros((4, 5)), np.zeros((4, 5)))


def test_gemm_tile_grid_covers_output():
    grid = gemm_tile_grid(300, 200, 128, 128)
    assert len(grid) == 3 * 2
    covered = np.zeros((300, 200), bool)
    for (m0, m1), (n0, n1) in grid:
        assert not covered[m0:m1, n0:n1].any()  # no overlap
        covered[m0:m1, n0:n1] = True
    assert covered.all()


def test_gemm_cost_compute_bound_for_moe_shapes():
    cost = gemm_wg_cost(128, 128, k=4096)
    assert cost.flops / cost.bytes > MI210.fp32_flops / MI210.hbm_bandwidth


@given(st.integers(1, 200), st.integers(1, 64))
def test_split_tiles_partition_property(extent, tile):
    tiles = split_tiles(extent, tile)
    assert tiles[0][0] == 0 and tiles[-1][1] == extent
    for (a0, a1), (b0, b1) in zip(tiles, tiles[1:]):
        assert a1 == b0
        assert a1 - a0 == tile
    assert all(t1 - t0 <= tile for t0, t1 in tiles)


# ---------------------------------------------------------------------------
# Activations
# ---------------------------------------------------------------------------

def test_relu():
    x = np.array([-1.0, 0.0, 2.0], np.float32)
    np.testing.assert_array_equal(relu(x), [0.0, 0.0, 2.0])


def test_gelu_reference_points():
    x = np.array([0.0, 1.0, -1.0], np.float64)
    out = gelu(x)
    assert out[0] == 0.0
    assert out[1] == pytest.approx(0.841192, abs=1e-4)
    assert out[2] == pytest.approx(-0.158808, abs=1e-4)


def test_sigmoid_stable_at_extremes():
    x = np.array([-1000.0, 0.0, 1000.0], np.float64)
    out = sigmoid(x)
    assert out == pytest.approx([0.0, 0.5, 1.0])
    assert np.isfinite(out).all()


# ---------------------------------------------------------------------------
# Interaction
# ---------------------------------------------------------------------------

def test_interaction_shape_and_content():
    batch, f, d = 3, 4, 8
    rng = np.random.default_rng(3)
    dense = rng.standard_normal((batch, d)).astype(np.float32)
    emb = rng.standard_normal((batch, f, d)).astype(np.float32)
    out = interaction(dense, emb)
    assert out.shape == (batch, interaction_output_dim(f, d))
    # First d columns are the dense passthrough.
    np.testing.assert_array_equal(out[:, :d], dense)
    # First pair term is dense . emb[0].
    np.testing.assert_allclose(out[:, d],
                               np.einsum("bd,bd->b", dense, emb[:, 0]),
                               rtol=1e-4)


def test_interaction_validation():
    with pytest.raises(ValueError):
        interaction(np.zeros(4), np.zeros((1, 2, 4)))
    with pytest.raises(ValueError):
        interaction(np.zeros((2, 4)), np.zeros((2, 4)))
    with pytest.raises(ValueError):
        interaction(np.zeros((2, 4)), np.zeros((3, 2, 4)))
    with pytest.raises(ValueError):
        interaction(np.zeros((2, 4)), np.zeros((2, 2, 5)))


def test_interaction_cost_positive():
    c = interaction_wg_cost(26, 92)
    assert c.flops > 0 and c.bytes > 0


# ---------------------------------------------------------------------------
# MLP
# ---------------------------------------------------------------------------

def test_mlp_forward_shapes_and_determinism():
    mlp = Mlp.create([16, 32, 8], rng=np.random.default_rng(7))
    x = np.random.default_rng(8).standard_normal((5, 16)).astype(np.float32)
    out1, out2 = mlp(x), mlp(x)
    assert out1.shape == (5, 8)
    np.testing.assert_array_equal(out1, out2)


def test_mlp_relu_applied_between_but_not_after():
    mlp = Mlp.create([4, 4, 4], activation="relu",
                     rng=np.random.default_rng(9))
    x = np.random.default_rng(10).standard_normal((50, 4)).astype(np.float32)
    out = mlp(x)
    assert (out < 0).any()  # last layer is linear -> negatives survive


def test_mlp_create_validation():
    with pytest.raises(ValueError):
        Mlp.create([4])
    with pytest.raises(ValueError):
        Mlp.create([4, 4], activation="tanhh")


def test_mlp_flops():
    assert mlp_flops(10, [4, 8, 2]) == 2 * 10 * 4 * 8 + 2 * 10 * 8 * 2


def test_mlp_time_positive_and_scales():
    gpu = Gpu(Simulator(), MI210, gpu_id=0)
    t_small = mlp_time_on_gpu(gpu, 128, [512, 512])
    t_big = mlp_time_on_gpu(gpu, 128, [512, 512, 512])
    assert 0 < t_small < t_big
