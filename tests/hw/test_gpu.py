"""Tests for the GPU model: occupancy rules and workgroup timing."""

import pytest

from repro.hw import MI210, Gpu, KernelResources, WgCost
from repro.sim import Simulator


@pytest.fixture
def gpu():
    return Gpu(Simulator(), MI210, gpu_id=0)


# ---------------------------------------------------------------------------
# Occupancy calculation
# ---------------------------------------------------------------------------

def test_baseline_kernel_reaches_full_occupancy(gpu):
    """256 threads (4 waves), 64 VGPRs -> 8 waves/SIMD -> 100% occupancy."""
    occ = gpu.occupancy(KernelResources(threads_per_wg=256, vgprs_per_thread=64))
    assert occ.waves_per_wg == 4
    assert occ.wgs_per_cu == 8
    assert occ.fraction == pytest.approx(1.0)
    assert occ.resident_wgs == 8 * MI210.num_cus


def test_fused_kernel_pays_12_5_pct_occupancy(gpu):
    """The paper's fused kernel uses extra VGPRs for ROC_SHMEM-style comm
    and lands at 87.5% of baseline occupancy."""
    occ = gpu.occupancy(KernelResources(threads_per_wg=256, vgprs_per_thread=72))
    assert occ.fraction == pytest.approx(0.875)
    assert occ.wgs_per_cu == 7


def test_vgpr_granule_rounding(gpu):
    """65 VGPRs rounds up to 72 (granule 8) -> 7 waves/SIMD, not 7.87."""
    occ_65 = gpu.occupancy(KernelResources(threads_per_wg=256, vgprs_per_thread=65))
    occ_72 = gpu.occupancy(KernelResources(threads_per_wg=256, vgprs_per_thread=72))
    assert occ_65.fraction == occ_72.fraction


def test_lds_limits_occupancy(gpu):
    res = KernelResources(threads_per_wg=256, vgprs_per_thread=32,
                          lds_per_wg=32 * 1024)
    occ = gpu.occupancy(res)
    assert occ.wgs_per_cu == 2  # 64KB LDS / 32KB per WG


def test_small_wg_hits_max_wgs_per_cu(gpu):
    res = KernelResources(threads_per_wg=64, vgprs_per_thread=16)
    occ = gpu.occupancy(res)
    assert occ.wgs_per_cu == MI210.max_wgs_per_cu


def test_huge_vgpr_usage_rejected(gpu):
    with pytest.raises(ValueError, match="cannot fit"):
        gpu.occupancy(KernelResources(threads_per_wg=256, vgprs_per_thread=1024))


def test_occupancy_limited_to(gpu):
    occ = gpu.occupancy(KernelResources(threads_per_wg=256, vgprs_per_thread=64))
    half = occ.limited_to(occ.resident_wgs // 2)
    assert half.resident_wgs == occ.resident_wgs // 2
    assert half.fraction == pytest.approx(occ.fraction / 2)
    same = occ.limited_to(10 ** 9)
    assert same.resident_wgs == occ.resident_wgs
    with pytest.raises(ValueError):
        occ.limited_to(0)


# ---------------------------------------------------------------------------
# WG timing
# ---------------------------------------------------------------------------

def test_wgcost_validation():
    with pytest.raises(ValueError):
        WgCost(flops=-1)
    c = WgCost(flops=10, bytes=20, fixed=1e-6)
    c2 = c.plus(flops=5, fixed=1e-6)
    assert c2.flops == 15 and c2.fixed == pytest.approx(2e-6)


def test_memory_bound_wg_duration_scales_with_bytes(gpu):
    occ = gpu.occupancy(KernelResources(256, 64))
    t1 = gpu.wg_duration(WgCost(bytes=1e6), occ)
    t2 = gpu.wg_duration(WgCost(bytes=2e6), occ)
    assert t2 == pytest.approx(2 * t1)


def test_compute_bound_wg_duration_scales_with_flops(gpu):
    occ = gpu.occupancy(KernelResources(256, 64))
    t1 = gpu.wg_duration(WgCost(flops=1e9, dtype="fp16"), occ)
    t2 = gpu.wg_duration(WgCost(flops=3e9, dtype="fp16"), occ)
    assert t2 == pytest.approx(3 * t1)


def test_roofline_max_of_compute_and_memory(gpu):
    occ = gpu.occupancy(KernelResources(256, 64))
    mem_only = gpu.wg_duration(WgCost(bytes=1e6), occ)
    flop_only = gpu.wg_duration(WgCost(flops=1e9), occ)
    both = gpu.wg_duration(WgCost(bytes=1e6, flops=1e9), occ)
    assert both == pytest.approx(max(mem_only, flop_only))


def test_fixed_cost_is_additive(gpu):
    occ = gpu.occupancy(KernelResources(256, 64))
    base = gpu.wg_duration(WgCost(bytes=1e6), occ)
    with_fixed = gpu.wg_duration(WgCost(bytes=1e6, fixed=5e-6), occ)
    assert with_fixed == pytest.approx(base + 5e-6)


def test_aggregate_memory_throughput_independent_of_resident_count(gpu):
    """Memory-bound: total kernel bytes/s depends only on occupancy fraction,
    so fewer resident WGs each run proportionally faster."""
    occ_full = gpu.occupancy(KernelResources(256, 64))
    occ_half = occ_full.limited_to(occ_full.resident_wgs // 2)
    t_full = gpu.wg_duration(WgCost(bytes=1e6), occ_full)
    t_half = gpu.wg_duration(WgCost(bytes=1e6), occ_half)
    # Per-WG time = bytes * resident / achieved_bw(fraction): half the
    # resident WGs each get twice the share, scaled by the occupancy-
    # dependent achieved bandwidth ratio.
    expected = (0.5 * gpu.hbm.achieved_bandwidth(occ_full.fraction)
                / gpu.hbm.achieved_bandwidth(occ_half.fraction))
    assert t_half / t_full == pytest.approx(expected)
    assert t_half < t_full


def test_kernel_span_estimate_rounds(gpu):
    occ = gpu.occupancy(KernelResources(256, 64))
    one_round = gpu.kernel_span_estimate(occ.resident_wgs, WgCost(bytes=1e5), occ)
    two_rounds = gpu.kernel_span_estimate(occ.resident_wgs + 1, WgCost(bytes=1e5), occ)
    wg_t = gpu.wg_duration(WgCost(bytes=1e5), occ)
    assert two_rounds == pytest.approx(one_round + wg_t)
    assert one_round > MI210.kernel_launch_overhead


def test_store_remote_requires_fabric(gpu):
    with pytest.raises(RuntimeError, match="fabric"):
        gpu.store_remote(gpu, 100)


def test_rdma_requires_nic(gpu):
    with pytest.raises(RuntimeError, match="NIC"):
        gpu.rdma_put(gpu, 100)
