"""Tests for hardware specs and the HBM bandwidth model calibration."""

import pytest

from repro.hw import MI210, HbmModel, mi210_node_spec, two_node_cluster_spec
from repro.utils.units import GB_PER_S


def test_mi210_headline_numbers():
    assert MI210.num_cus == 104
    assert MI210.max_waves_per_cu == 32
    assert MI210.hbm_bandwidth == pytest.approx(1638.4 * GB_PER_S)
    assert MI210.fp16_flops > MI210.fp32_flops


def test_flop_rate_dtype_dispatch():
    assert MI210.flop_rate("fp32") == MI210.fp32_flops
    assert MI210.flop_rate("fp16") == MI210.fp16_flops
    with pytest.raises(ValueError):
        MI210.flop_rate("int8")


def test_spec_override_for_ablation():
    faster = MI210.with_overrides(hbm_bandwidth=2 * MI210.hbm_bandwidth)
    assert faster.hbm_bandwidth == 2 * MI210.hbm_bandwidth
    assert faster.num_cus == MI210.num_cus
    assert MI210.hbm_bandwidth == pytest.approx(1638.4 * GB_PER_S)  # frozen


def test_node_and_cluster_specs():
    node = mi210_node_spec(4)
    assert node.num_gpus == 4
    assert node.link.bandwidth == pytest.approx(80 * GB_PER_S)
    cl = two_node_cluster_spec()
    assert cl.num_nodes == 2
    assert cl.node.nic.bandwidth == pytest.approx(20 * GB_PER_S)


# ---------------------------------------------------------------------------
# HBM model — the Fig. 13 calibration must hold exactly.
# ---------------------------------------------------------------------------

def test_hbm_efficiency_interpolation():
    hbm = HbmModel(MI210)
    assert hbm.efficiency(0.0) == 1.0
    assert hbm.efficiency(0.5) == 1.0
    assert hbm.efficiency(0.78) == 1.0
    assert hbm.efficiency(0.875) == pytest.approx(0.80)
    assert hbm.efficiency(1.0) == pytest.approx(0.78)
    # midway between knee points
    mid = hbm.efficiency((0.78 + 0.875) / 2)
    assert 0.80 < mid < 1.0


def test_hbm_efficiency_clamps_out_of_range():
    hbm = HbmModel(MI210)
    assert hbm.efficiency(-1.0) == 1.0
    assert hbm.efficiency(2.0) == pytest.approx(0.78)


def test_hbm_concurrency_ramp():
    hbm = HbmModel(MI210)
    assert hbm.concurrency_ramp(0.25) == pytest.approx(0.54)
    assert hbm.concurrency_ramp(0.75) == 1.0
    assert hbm.concurrency_ramp(1.0) == 1.0


def test_fig13_calibration_46pct_reduction_25_to_75():
    """Paper: occupancy 25% -> 75% cuts memory-bound time by 46%."""
    hbm = HbmModel(MI210)
    t25 = 1.0 / hbm.achieved_bandwidth(0.25, access="gather")
    t75 = 1.0 / hbm.achieved_bandwidth(0.75, access="gather")
    assert 1.0 - t75 / t25 == pytest.approx(0.46, abs=0.01)


def test_fig13_calibration_25pct_increase_75_to_875():
    """Paper: occupancy 75% -> 87.5% increases time by 25%."""
    hbm = HbmModel(MI210)
    t75 = 1.0 / hbm.achieved_bandwidth(0.75, access="gather")
    t875 = 1.0 / hbm.achieved_bandwidth(0.875, access="gather")
    assert t875 / t75 == pytest.approx(1.25, abs=0.01)


def test_fused_occupancy_loss_does_not_degrade_memory_rate():
    """The fused kernel's 87.5% occupancy (efficiency 0.80) and the
    baseline's 100% (efficiency 0.78) land within ~3% of each other —
    the paper's 'loss of occupancy does not degrade performance'."""
    hbm = HbmModel(MI210)
    ratio = (hbm.achieved_bandwidth(0.875, access="gather")
             / hbm.achieved_bandwidth(1.0, access="gather"))
    assert abs(ratio - 1.0) < 0.03


def test_best_occupancy_near_75pct():
    hbm = HbmModel(MI210)
    best = hbm.best_occupancy()
    assert 0.46 <= best <= 0.79


def test_hbm_model_validates_efficiency_table():
    bad = MI210.with_overrides(hbm_efficiency=((0.5, 1.0), (1.0, 0.8)))
    with pytest.raises(ValueError, match="start at occupancy 0"):
        HbmModel(bad)
    unsorted = MI210.with_overrides(
        hbm_efficiency=((0.0, 1.0), (0.9, 0.8), (0.5, 0.9)))
    with pytest.raises(ValueError, match="increasing"):
        HbmModel(unsorted)
