"""Tests for fabric, NIC, network and cluster construction."""

import pytest

from repro.hw import IB_NIC, IF_LINK, build_cluster, build_node, mi210_node_spec
from repro.hw.network import Network
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# Fabric
# ---------------------------------------------------------------------------

def test_node_fabric_fully_connected():
    sim = Simulator()
    node = build_node(sim, mi210_node_spec(4))
    links = node.fabric.links()
    assert len(links) == 4 * 3  # directed pairs
    for (s, d), link in links.items():
        assert s != d
        assert link.bandwidth == IF_LINK.bandwidth


def test_fabric_transfer_timing():
    sim = Simulator()
    node = build_node(sim, mi210_node_spec(2))
    g0, g1 = node.gpus

    def proc(sim):
        yield g0.store_remote(g1, IF_LINK.bandwidth)  # exactly 1 second of bytes
        return sim.now

    end = sim.run_process(proc(sim))
    assert end == pytest.approx(1.0 + IF_LINK.latency)


def test_fabric_local_transfer_is_free():
    sim = Simulator()
    node = build_node(sim, mi210_node_spec(2))
    g0 = node.gpus[0]

    def proc(sim):
        yield node.fabric.transfer(g0, g0, 1e9)
        return sim.now

    assert sim.run_process(proc(sim)) == 0.0


def test_fabric_contention_halves_per_flow_bandwidth():
    """Two flows on the same directed link take 2x (paper Fig. 9 mechanism)."""
    sim = Simulator()
    node = build_node(sim, mi210_node_spec(2))
    g0, g1 = node.gpus
    nbytes = IF_LINK.bandwidth  # 1 second solo

    def proc(sim):
        e1 = g0.store_remote(g1, nbytes)
        e2 = g0.store_remote(g1, nbytes)
        yield sim.all_of([e1, e2])
        return sim.now

    end = sim.run_process(proc(sim))
    assert end == pytest.approx(2.0 + IF_LINK.latency)


def test_fabric_unknown_gpu_rejected():
    sim = Simulator()
    node_a = build_node(sim, mi210_node_spec(2), node_id=0, first_gpu_id=0)
    node_b = build_node(sim, mi210_node_spec(2), node_id=1, first_gpu_id=2)
    with pytest.raises(KeyError):
        node_a.fabric.link(node_a.gpus[0], node_b.gpus[0])


def test_fabric_byte_accounting():
    sim = Simulator()
    node = build_node(sim, mi210_node_spec(2))
    g0, g1 = node.gpus
    g0.store_remote(g1, 1000.0)
    g1.store_remote(g0, 500.0)
    sim.run()
    assert node.fabric.total_bytes() == pytest.approx(1500.0)


# ---------------------------------------------------------------------------
# NIC + network
# ---------------------------------------------------------------------------

def test_rdma_put_crosses_nodes():
    sim = Simulator()
    cluster = build_cluster(sim, num_nodes=2, gpus_per_node=1)
    g0, g1 = cluster.gpus
    nbytes = IB_NIC.bandwidth  # 1 second of payload

    def proc(sim):
        yield g0.rdma_put(g1, nbytes)
        return sim.now

    end = sim.run_process(proc(sim))
    # tx service (payload + message overhead) + rx service + wire latency
    assert end > 1.0
    assert end < 3.0 + IB_NIC.latency


def test_rdma_put_to_same_node_rejected():
    sim = Simulator()
    cluster = build_cluster(sim, num_nodes=2, gpus_per_node=2)
    g0, g1 = cluster.nodes[0].gpus
    with pytest.raises(ValueError, match="local node"):
        g0.rdma_put(g1, 10)


def test_rdma_bandwidth_charged_once():
    """A transfer pays size/bandwidth exactly once (cut-through), so two
    concurrent 0.5s payloads to the same destination share the rx port and
    both finish at ~1.0s total."""
    sim = Simulator()
    cluster = build_cluster(sim, num_nodes=2, gpus_per_node=1)
    g0, g1 = cluster.gpus
    nbytes = IB_NIC.bandwidth / 2  # 0.5s each

    def proc(sim):
        e1 = g0.rdma_put(g1, nbytes)
        e2 = g0.rdma_put(g1, nbytes)
        yield sim.all_of([e1, e2])
        return sim.now

    end = sim.run_process(proc(sim))
    assert end == pytest.approx(1.0, rel=0.01)  # shared port, one charge
    assert cluster.nodes[0].nic.messages == 2


def test_rdma_message_overhead_bounds_message_rate():
    """Tiny messages are limited by the TX engine's per-message cost."""
    sim = Simulator()
    cluster = build_cluster(sim, num_nodes=2, gpus_per_node=1)
    g0, g1 = cluster.gpus
    n = 100

    def proc(sim):
        evs = [g0.rdma_put(g1, 8.0) for _ in range(n)]
        yield sim.all_of(evs)
        return sim.now

    end = sim.run_process(proc(sim))
    assert end >= n * IB_NIC.message_overhead


def test_network_validates_nodes():
    sim = Simulator()
    net = Network(sim, IB_NIC, num_nodes=2)
    with pytest.raises(ValueError):
        net.deliver(0, 0, 10)
    with pytest.raises(ValueError):
        net.deliver(0, 5, 10)
    with pytest.raises(ValueError):
        Network(sim, IB_NIC, num_nodes=0)


# ---------------------------------------------------------------------------
# Cluster
# ---------------------------------------------------------------------------

def test_cluster_rank_ordering():
    sim = Simulator()
    cluster = build_cluster(sim, num_nodes=2, gpus_per_node=4)
    assert cluster.world_size == 8
    assert [g.gpu_id for g in cluster.gpus] == list(range(8))
    assert cluster.gpu(5).node_id == 1
    assert cluster.gpu(5).local_id == 1
    assert cluster.same_node(0, 3)
    assert not cluster.same_node(3, 4)


def test_single_node_cluster_has_no_network():
    sim = Simulator()
    cluster = build_cluster(sim, num_nodes=1, gpus_per_node=4)
    assert cluster.network is None
    assert cluster.nodes[0].nic.network is None


# ---------------------------------------------------------------------------
# Node construction
# ---------------------------------------------------------------------------

def test_node_rejects_gpus_already_attached_to_another_nic():
    """Regression: ``Node.__post_init__`` used to silently re-point
    ``gpu.nic`` when a Gpu object was reused across builds, rerouting the
    first node's RDMA traffic through the new node's NIC."""
    from repro.hw.fabric import Fabric
    from repro.hw.nic import Nic
    from repro.hw.topology import Node

    sim = Simulator()
    spec = mi210_node_spec(num_gpus=2)
    first = build_node(sim, spec, node_id=0)
    other_nic = Nic(sim, spec.nic, node_id=1)
    with pytest.raises(ValueError, match="already belongs to node 0"):
        Node(node_id=1, gpus=first.gpus,
             fabric=Fabric(sim, first.gpus, spec.link), nic=other_nic)
    # The original wiring is untouched.
    assert all(g.nic is first.nic for g in first.gpus)


def test_node_accepts_rebuild_with_same_nic():
    sim = Simulator()
    spec = mi210_node_spec(num_gpus=2)
    node = build_node(sim, spec, node_id=0)
    from repro.hw.fabric import Fabric
    from repro.hw.topology import Node
    # Re-wrapping the same GPUs with the *same* NIC is legal (idempotent).
    Node(node_id=0, gpus=node.gpus,
         fabric=Fabric(sim, node.gpus, spec.link), nic=node.nic)
