"""Property-based tests for hardware-model invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import MI210, Gpu, HbmModel, KernelResources, WgCost, \
    build_cluster
from repro.sim import Simulator


@pytest.fixture
def gpu():
    return Gpu(Simulator(), MI210, gpu_id=0)


# ---------------------------------------------------------------------------
# Occupancy monotonicity
# ---------------------------------------------------------------------------

@given(vgprs=st.integers(16, 128), threads=st.sampled_from([64, 128, 256, 512]))
@settings(max_examples=60, deadline=None)
def test_more_vgprs_never_raise_occupancy(vgprs, threads):
    gpu = Gpu(Simulator(), MI210, gpu_id=0)
    occ_a = gpu.occupancy(KernelResources(threads, vgprs))
    occ_b = gpu.occupancy(KernelResources(threads, vgprs + 8))
    assert occ_b.fraction <= occ_a.fraction + 1e-12
    assert occ_b.resident_wgs <= occ_a.resident_wgs


@given(lds=st.integers(0, 64 * 1024), threads=st.sampled_from([64, 256]))
@settings(max_examples=40, deadline=None)
def test_more_lds_never_raises_occupancy(lds, threads):
    gpu = Gpu(Simulator(), MI210, gpu_id=0)
    occ_a = gpu.occupancy(KernelResources(threads, 32, lds_per_wg=lds))
    occ_b = gpu.occupancy(KernelResources(threads, 32,
                                          lds_per_wg=min(lds + 1024,
                                                         64 * 1024)))
    assert occ_b.resident_wgs <= occ_a.resident_wgs


@given(threads=st.integers(1, 1024), vgprs=st.integers(1, 256))
@settings(max_examples=60, deadline=None)
def test_occupancy_fraction_bounded(threads, vgprs):
    gpu = Gpu(Simulator(), MI210, gpu_id=0)
    try:
        occ = gpu.occupancy(KernelResources(threads, vgprs))
    except ValueError:
        return  # kernel doesn't fit: acceptable rejection
    assert 0.0 < occ.fraction <= 1.0
    assert occ.resident_wgs >= MI210.num_cus  # at least 1 WG per CU


# ---------------------------------------------------------------------------
# HBM model shape
# ---------------------------------------------------------------------------

@given(o=st.floats(0.0, 1.0), access=st.sampled_from(["stream", "gather"]))
@settings(max_examples=60, deadline=None)
def test_achieved_bandwidth_within_physical_bounds(o, access):
    hbm = HbmModel(MI210)
    bw = hbm.achieved_bandwidth(o, access=access)
    assert 0.0 <= bw <= MI210.hbm_bandwidth + 1e-3


@given(o=st.floats(0.01, 1.0))
@settings(max_examples=40, deadline=None)
def test_gather_never_exceeds_stream_bandwidth(o):
    hbm = HbmModel(MI210)
    assert (hbm.achieved_bandwidth(o, access="gather")
            <= hbm.achieved_bandwidth(o, access="stream") + 1e-6)


def test_stream_bandwidth_monotone_in_occupancy():
    hbm = HbmModel(MI210)
    samples = [i / 100 for i in range(1, 101)]
    bws = [hbm.achieved_bandwidth(o, access="stream") for o in samples]
    assert all(b2 >= b1 - 1e-6 for b1, b2 in zip(bws, bws[1:]))


def test_unknown_access_pattern_rejected():
    hbm = HbmModel(MI210)
    with pytest.raises(ValueError):
        hbm.achieved_bandwidth(0.5, access="random")
    with pytest.raises(ValueError):
        WgCost(bytes=1.0, access="random")


# ---------------------------------------------------------------------------
# WG timing monotonicity
# ---------------------------------------------------------------------------

@given(b1=st.floats(1.0, 1e8), b2=st.floats(1.0, 1e8))
@settings(max_examples=40, deadline=None)
def test_wg_duration_monotone_in_bytes(b1, b2):
    gpu = Gpu(Simulator(), MI210, gpu_id=0)
    occ = gpu.occupancy(KernelResources(256, 64))
    lo, hi = sorted((b1, b2))
    assert (gpu.wg_duration(WgCost(bytes=lo), occ)
            <= gpu.wg_duration(WgCost(bytes=hi), occ) + 1e-18)


@given(f1=st.floats(1.0, 1e12), f2=st.floats(1.0, 1e12))
@settings(max_examples=40, deadline=None)
def test_wg_duration_monotone_in_flops(f1, f2):
    gpu = Gpu(Simulator(), MI210, gpu_id=0)
    occ = gpu.occupancy(KernelResources(256, 64))
    lo, hi = sorted((f1, f2))
    assert (gpu.wg_duration(WgCost(flops=lo), occ)
            <= gpu.wg_duration(WgCost(flops=hi), occ) + 1e-18)


# ---------------------------------------------------------------------------
# Cluster-wide byte conservation
# ---------------------------------------------------------------------------

@given(transfers=st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(1, 1 << 20)),
    min_size=1, max_size=20))
@settings(max_examples=30, deadline=None)
def test_fabric_conserves_bytes(transfers):
    sim = Simulator()
    cluster = build_cluster(sim, num_nodes=1, gpus_per_node=4)
    total = 0.0
    for src, dst, n in transfers:
        if src == dst:
            continue
        cluster.gpu(src).store_remote(cluster.gpu(dst), float(n))
        total += n
    sim.run()
    assert cluster.nodes[0].fabric.total_bytes() == pytest.approx(total)


@given(sizes=st.lists(st.integers(1, 1 << 22), min_size=1, max_size=10))
@settings(max_examples=30, deadline=None)
def test_nic_accounts_messages_and_bytes(sizes):
    sim = Simulator()
    cluster = build_cluster(sim, num_nodes=2, gpus_per_node=1)
    g0, g1 = cluster.gpus
    for s in sizes:
        g0.rdma_put(g1, float(s))
    sim.run()
    nic = cluster.nodes[0].nic
    assert nic.messages == len(sizes)
    assert nic.bytes == pytest.approx(sum(sizes))
    assert cluster.network.bytes_delivered == pytest.approx(sum(sizes))
