"""Platform catalog: round-trips, stable hashes, derived resources."""

import hashlib
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.specs import canonical_json
from repro.hw import (
    CATALOG,
    MI210,
    Gpu,
    KernelResources,
    Platform,
    build_cluster,
    build_node,
    derived_baseline_resources,
    derived_fused_resources,
    generic,
    get_platform,
    list_platforms,
    mi210_node_spec,
    occupancy_for,
    register_platform,
)
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# Catalog contents and resolution
# ---------------------------------------------------------------------------

def test_catalog_names():
    assert {"mi210", "mi250x", "mi300x", "h100"} <= set(CATALOG)
    assert [p.name for p in list_platforms()] == sorted(CATALOG)


def test_mi210_entry_is_the_calibrated_profile():
    assert get_platform() is CATALOG["mi210"]
    assert get_platform("mi210").gpu is MI210
    assert get_platform("mi210").node_spec(4) == mi210_node_spec(4)


def test_get_platform_resolution_forms():
    p = CATALOG["h100"]
    assert get_platform(p) is p
    assert get_platform("h100") is p
    assert get_platform(p.to_params()) == p
    with pytest.raises(KeyError, match="unknown platform"):
        get_platform("tpu9000")
    with pytest.raises(TypeError):
        get_platform(42)


def test_register_platform_rejects_duplicates():
    with pytest.raises(ValueError, match="already registered"):
        register_platform(CATALOG["mi210"].with_overrides())


def test_generic_constructor():
    g = generic("fat-hbm", hbm_bandwidth=4e12, num_cus=200)
    assert g.gpu.name == "fat-hbm"
    assert g.gpu.hbm_bandwidth == 4e12
    assert g.gpu.num_cus == 200
    # Non-overridden microarchitecture comes from the MI210 template.
    assert g.gpu.wave_size == MI210.wave_size
    # Not in the catalog -> canonical param is the full mapping.
    assert isinstance(g.param(), dict)
    assert get_platform(g.param()) == g


# ---------------------------------------------------------------------------
# Serialization round-trips and cross-process hash stability
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted("mi210 mi250x mi300x h100".split()))
def test_params_round_trip(name):
    p = CATALOG[name]
    again = Platform.from_params(p.to_params())
    assert again == p
    assert again.gpu.hbm_efficiency == p.gpu.hbm_efficiency
    assert p.param() == name


def test_params_round_trip_generic():
    g = generic("oddball", vgprs_per_simd=256, max_waves_per_simd=10)
    assert Platform.from_params(g.to_params()) == g


def test_platform_hash_stable_across_processes():
    """The canonical JSON of a platform's params (what scenario keys hash)
    must not depend on the process that produced it."""
    here = {p.name: hashlib.sha256(
        canonical_json(p.to_params()).encode()).hexdigest()
        for p in list_platforms()}
    code = (
        "import hashlib, json\n"
        "from repro.hw import list_platforms\n"
        "from repro.experiments.specs import canonical_json\n"
        "print(json.dumps({p.name: hashlib.sha256("
        "canonical_json(p.to_params()).encode()).hexdigest()"
        " for p in list_platforms()}))\n"
    )
    out = subprocess.run([sys.executable, "-c", code], check=True,
                         capture_output=True, text=True).stdout
    import json
    assert json.loads(out) == here


# ---------------------------------------------------------------------------
# Derived kernel resources
# ---------------------------------------------------------------------------

def test_mi210_derivation_matches_the_paper():
    """On the calibrated device the derivation must yield the paper's
    numbers: 64 -> 72 VGPRs, 100% -> 87.5% occupancy (12.5% loss)."""
    assert derived_baseline_resources(MI210) == KernelResources(256, 64)
    assert derived_fused_resources(MI210) == KernelResources(256, 72)
    gpu = Gpu(Simulator(), MI210, gpu_id=0)
    assert gpu.occupancy(derived_baseline_resources(MI210)).fraction == 1.0
    assert gpu.occupancy(derived_fused_resources(MI210)).fraction == 0.875


@pytest.mark.parametrize("name", sorted("mi210 mi250x mi300x h100".split()))
def test_derived_resources_valid_on_every_catalog_entry(name):
    p = CATALOG[name]
    base = occupancy_for(p.gpu, p.baseline_resources())
    fused = occupancy_for(p.gpu, p.fused_resources())
    # The baseline footprint fills the device; the fused footprint pays a
    # strictly positive register bill but still fits.
    assert base.fraction == 1.0
    assert 0.0 < fused.fraction <= base.fraction
    assert fused.resident_wgs >= p.gpu.num_cus
    d = p.describe()
    assert d["fused_vgprs"] == d["baseline_vgprs"] + 8


@given(vgprs_per_simd=st.sampled_from([128, 256, 512, 1024]),
       max_waves=st.sampled_from([4, 8, 10, 16]),
       granule=st.sampled_from([4, 8, 16]),
       wave_size=st.sampled_from([32, 64]),
       simds=st.sampled_from([2, 4]))
@settings(max_examples=60, deadline=None)
def test_derived_resources_valid_on_generic_geometry(
        vgprs_per_simd, max_waves, granule, wave_size, simds):
    """Any plausible register-file geometry yields a valid occupancy."""
    p = generic("prop", vgprs_per_simd=vgprs_per_simd,
                max_waves_per_simd=max_waves, vgpr_granule=granule,
                wave_size=wave_size, simds_per_cu=simds)
    base = occupancy_for(p.gpu, p.baseline_resources())
    fused = occupancy_for(p.gpu, p.fused_resources())
    assert 0.0 < fused.fraction <= base.fraction <= 1.0
    assert fused.resident_wgs >= 1


# ---------------------------------------------------------------------------
# Cluster construction from platforms
# ---------------------------------------------------------------------------

def test_build_cluster_from_platform():
    sim = Simulator()
    cluster = build_cluster(sim, num_nodes=1, gpus_per_node=4,
                            platform="h100")
    assert all(g.spec.name == "H100" for g in cluster.gpus)
    assert cluster.nodes[0].fabric.spec.name == "NVLink4"
    assert cluster.nodes[0].nic.spec.name == "InfiniBand-NDR"


def test_build_cluster_rejects_both_spec_and_platform():
    with pytest.raises(ValueError, match="not both"):
        build_cluster(Simulator(), node_spec=mi210_node_spec(2),
                      platform="h100")


def test_build_node_from_platform_uses_default_width():
    node = build_node(Simulator(), platform="mi300x")
    assert len(node.gpus) == CATALOG["mi300x"].gpus_per_node


def test_default_build_is_bitwise_mi210():
    """Omitting the platform must build exactly the seed's MI210 node."""
    a = build_cluster(Simulator(), num_nodes=1, gpus_per_node=2)
    b = build_cluster(Simulator(), num_nodes=1, gpus_per_node=2,
                      platform="mi210")
    assert a.gpus[0].spec is b.gpus[0].spec is MI210


def test_registered_custom_platform_serializes_in_full():
    """Only built-in entries collapse to a bare name: a runtime-registered
    platform must carry its full params (workers re-importing the catalog
    cannot replay the registration, and the store key must hash the
    device's content, not a reusable name)."""
    p = register_platform(generic("param-test-dev", hbm_bandwidth=2e12))
    try:
        assert isinstance(p.param(), dict)
        assert get_platform(p.param()) == p
    finally:
        del CATALOG["param-test-dev"]


def test_build_node_rejects_both_spec_and_platform():
    import pytest as _pytest
    with _pytest.raises(ValueError, match="not both"):
        build_node(Simulator(), mi210_node_spec(2), platform="h100")


def test_max_occupancy_of_baseline():
    from repro.hw.platform import max_occupancy_of_baseline
    assert max_occupancy_of_baseline(MI210) == 0.875
    assert max_occupancy_of_baseline(CATALOG["h100"].gpu) == 0.75


def test_register_platform_never_rebinds_builtins():
    """Built-in names are cache content addresses — not even overwrite=True
    may change what they mean."""
    impostor = generic("mi210", num_cus=999)
    with pytest.raises(ValueError, match="built-in"):
        register_platform(impostor, overwrite=True)
    assert get_platform("mi210").gpu is MI210


def test_derivation_raises_early_when_no_fused_kernel_fits():
    """A device too small for any fused footprint fails at derivation time
    (clear message), not at kernel launch."""
    with pytest.raises(ValueError, match="fused kernel"):
        generic("tiny", simds_per_cu=1, vgprs_per_simd=64,
                vgpr_granule=16, max_waves_per_simd=8).fused_resources()
