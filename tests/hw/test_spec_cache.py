"""Spec-identity regression tests for the hardware-model memoization.

The occupancy/duration/bandwidth caches are pure functions of the device
spec's *content*; swapping a spec (a ``with_overrides`` ablation) or
simulating two platforms in one process must never serve one spec's
cached entries for another.
"""

from repro.hw import Gpu, HbmModel, KernelResources, WgCost, get_platform
from repro.hw.specs import MI210
from repro.sim import Simulator

RES = KernelResources(threads_per_wg=256, vgprs_per_thread=72)
COST = WgCost(flops=1e6, bytes=1 << 20, access="gather")


def test_gpu_spec_swap_invalidates_caches():
    gpu = Gpu(Simulator(), MI210, gpu_id=0)
    occ_before = gpu.occupancy(RES)
    dur_before = gpu.wg_duration(COST, occ_before)

    halved = MI210.with_overrides(hbm_bandwidth=MI210.hbm_bandwidth / 2,
                                  vgprs_per_simd=256)
    gpu.spec = halved
    fresh = Gpu(Simulator(), halved, gpu_id=1)

    # Post-swap answers must match a GPU built with the new spec...
    occ_after = gpu.occupancy(RES)
    assert occ_after == fresh.occupancy(RES)
    assert gpu.wg_duration(COST, occ_after) == \
        fresh.wg_duration(COST, occ_after)
    # ...and must not be the old spec's cached entries.
    assert occ_after != occ_before
    assert gpu.wg_duration(COST, occ_after) != dur_before
    # The HBM model was rebuilt around the new spec too.
    assert gpu.hbm.spec is halved


def test_gpu_spec_swap_back_restores_original_results():
    gpu = Gpu(Simulator(), MI210, gpu_id=0)
    occ = gpu.occupancy(RES)
    dur = gpu.wg_duration(COST, occ)
    gpu.spec = MI210.with_overrides(hbm_bandwidth=1e11)
    gpu.wg_duration(COST, gpu.occupancy(RES))
    gpu.spec = MI210
    assert gpu.occupancy(RES) == occ
    assert gpu.wg_duration(COST, occ) == dur


def test_hbm_model_spec_swap_invalidates_cache():
    hbm = HbmModel(MI210)
    before = hbm.achieved_bandwidth(0.5, access="gather")
    halved = MI210.with_overrides(hbm_bandwidth=MI210.hbm_bandwidth / 2)
    hbm.spec = halved
    assert hbm.achieved_bandwidth(0.5, access="gather") == \
        HbmModel(halved).achieved_bandwidth(0.5, access="gather")
    assert hbm.achieved_bandwidth(0.5, access="gather") == before / 2


def test_two_platforms_in_one_process_stay_independent():
    sim = Simulator()
    a = Gpu(sim, get_platform("mi210").gpu, gpu_id=0)
    b = Gpu(sim, get_platform("h100").gpu, gpu_id=1)
    # Interleave queries so any shared cache would cross-contaminate.
    occ_a1 = a.occupancy(RES)
    occ_b1 = b.occupancy(RES)
    occ_a2 = a.occupancy(RES)
    assert occ_a1 == occ_a2
    assert occ_a1 != occ_b1
    assert a.wg_duration(COST, occ_a1) != b.wg_duration(COST, occ_b1)
    assert a.hbm.achieved_bandwidth(0.5) != b.hbm.achieved_bandwidth(0.5)
