"""Tests for the benchmark harness and figure definitions."""

import pytest

from repro.bench import (
    FigureResult,
    Row,
    compare,
    fig9_gemv_allreduce,
    fig11_wg_timeline,
    fig13_occupancy_sweep,
    fig15_scaleout,
    table1_setup,
    table2_setup,
)
from repro.fused import (
    BaselineEmbeddingAllToAll,
    EmbeddingA2AConfig,
    FusedEmbeddingAllToAll,
)


def test_row_normalized():
    r = Row(label="x", fused_time=1.0, baseline_time=2.0)
    assert r.normalized == 0.5


def test_figure_result_aggregates_and_render():
    res = FigureResult("Fig. X", "demo", paper_mean=0.8, paper_best=0.7)
    res.add(Row("a", 1.0, 2.0))
    res.add(Row("b", 3.0, 4.0))
    assert res.mean_normalized == pytest.approx((0.5 + 0.75) / 2)
    assert res.best_normalized == 0.5
    out = res.render()
    assert "Fig. X" in out and "paper reports" in out and "mean" in out
    summary = res.summary()
    assert summary["paper_mean"] == 0.8
    assert summary["mean_normalized"] == pytest.approx(0.625)


def test_figure_result_empty_rows():
    res = FigureResult("T", "extra only")
    res.extra["k"] = "v"
    assert "k: v" in res.render()
    with pytest.raises(ValueError):
        _ = res.mean_normalized


def test_compare_runs_fresh_clusters():
    cfg = EmbeddingA2AConfig(global_batch=64, tables_per_gpu=4, dim=16,
                             pooling=5, rows_per_table=50, slice_vectors=8,
                             functional=False)
    row = compare("64|4",
                  lambda h: FusedEmbeddingAllToAll(h, cfg),
                  lambda h: BaselineEmbeddingAllToAll(h, cfg),
                  num_nodes=2, gpus_per_node=1)
    assert row.fused_time > 0 and row.baseline_time > 0
    assert row.normalized < 1.0


def test_table_setups_have_paper_values():
    t1 = table1_setup()
    assert "104 CUs" in t1.extra["GPU"]
    t2 = table2_setup()
    assert t2.extra["Embedding dimension"] == 92


def test_fig9_reduced_grid_shape():
    res = fig9_gemv_allreduce(grid=((8192, 8192), (65536, 8192)))
    assert len(res.rows) == 2
    assert res.rows[0].normalized < res.rows[1].normalized


def test_fig11_small_trace():
    res = fig11_wg_timeline(batch=128, tables=8, wgs_per_slice=8)
    assert res.extra["puts_issued_node0"] > 0
    assert "timeline" in res.extra


def test_fig13_sparse_sweep():
    res = fig13_occupancy_sweep(batch=512, tables=64,
                                fractions=(0.25, 0.75, 0.875))
    t = {r.label: r.fused_time for r in res.rows}
    assert t["75.0%"] < t["25.0%"] and t["87.5%"] > t["75.0%"]


def test_fig15_small_sweep():
    res = fig15_scaleout(node_counts=(16, 128))
    assert len(res.rows) == 2
    assert all(r.normalized < 1.0 for r in res.rows)
