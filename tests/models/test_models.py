"""Tests for workload models: DLRM, tensor-parallel MLP, MoE, datagen."""

import numpy as np
import pytest

from repro.models import (
    Dlrm,
    DlrmModelConfig,
    MoeLayer,
    MoeLayerConfig,
    TABLE2_DLRM,
    TABLE2_TORUS,
    TensorParallelMlp,
    TransformerMlpConfig,
    categorical_indices,
    dense_features,
    token_batch,
    top_k_gating,
)
from repro.ops import gelu


# ---------------------------------------------------------------------------
# Configs (Table II fidelity)
# ---------------------------------------------------------------------------

def test_table2_values_match_paper():
    assert TABLE2_DLRM.embedding_dim == 92
    assert TABLE2_DLRM.mlp_avg_size == 682
    assert TABLE2_DLRM.mlp_layers == 43
    assert TABLE2_DLRM.avg_pooling == 70
    assert TABLE2_TORUS.link_bandwidth == pytest.approx(200e9 / 8)
    assert TABLE2_TORUS.link_latency == pytest.approx(700e-9)


def test_dlrm_config_helpers():
    cfg = DlrmModelConfig(total_tables=128, local_batch=64, embedding_dim=8)
    assert cfg.tables_per_node(16) == 8
    assert cfg.alltoall_bytes_per_node() == 64 * 128 * 8 * 4
    with pytest.raises(ValueError):
        DlrmModelConfig(embedding_dim=0).validate()


def test_transformer_config():
    cfg = TransformerMlpConfig(hidden=1024, ffn_multiplier=4,
                               tensor_parallel=4)
    assert cfg.ffn == 4096
    assert cfg.shard_columns() == 1024
    with pytest.raises(ValueError):
        TransformerMlpConfig(hidden=10, tensor_parallel=3).validate()


def test_moe_config_validation():
    with pytest.raises(ValueError):
        MoeLayerConfig(tokens=10, num_experts=4).validate()
    with pytest.raises(ValueError):
        MoeLayerConfig(top_k=9).validate()


# ---------------------------------------------------------------------------
# Data generators
# ---------------------------------------------------------------------------

def test_dense_features_deterministic():
    a = dense_features(8, 4, seed=1)
    b = dense_features(8, 4, seed=1)
    np.testing.assert_array_equal(a, b)
    assert a.shape == (8, 4) and a.dtype == np.float32


def test_categorical_indices_bounds():
    idx = categorical_indices(16, 3, 5, rows_per_table=100, seed=2)
    assert idx.shape == (3, 16, 5)
    assert idx.min() >= 0 and idx.max() < 100


def test_categorical_zipf_skews_distribution():
    uniform = categorical_indices(500, 1, 20, 1000, seed=3)
    skewed = categorical_indices(500, 1, 20, 1000, seed=3, zipf_alpha=1.2)
    # Zipf concentrates mass on low row ids.
    assert np.median(skewed) < np.median(uniform)
    with pytest.raises(ValueError):
        categorical_indices(1, 1, 1, 1, zipf_alpha=-1)


def test_token_batch():
    acts, pos = token_batch(32, 16, seed=4)
    assert acts.shape == (32, 16)
    np.testing.assert_array_equal(pos, np.arange(32))


# ---------------------------------------------------------------------------
# DLRM
# ---------------------------------------------------------------------------

@pytest.fixture
def dlrm():
    return Dlrm.create(dense_dim=13, embedding_dim=16, num_tables=4,
                       rows_per_table=50, bottom_sizes=[32],
                       top_sizes=[64, 32],
                       rng=np.random.default_rng(5))


def test_dlrm_forward_shape_and_range(dlrm):
    dense = dense_features(8, 13, seed=6)
    idx = categorical_indices(8, 4, 5, 50, seed=7)
    out = dlrm(dense, idx)
    assert out.shape == (8,)
    assert np.all((out > 0) & (out < 1))  # sigmoid output


def test_dlrm_deterministic(dlrm):
    dense = dense_features(4, 13, seed=8)
    idx = categorical_indices(4, 4, 5, 50, seed=9)
    np.testing.assert_array_equal(dlrm(dense, idx), dlrm(dense, idx))


def test_dlrm_input_validation(dlrm):
    with pytest.raises(ValueError, match="index tables"):
        dlrm(dense_features(4, 13), categorical_indices(4, 3, 5, 50))
    with pytest.raises(ValueError, match="batch mismatch"):
        dlrm(dense_features(5, 13), categorical_indices(4, 4, 5, 50))


# ---------------------------------------------------------------------------
# Tensor-parallel transformer MLP
# ---------------------------------------------------------------------------

def test_tp_mlp_matches_unsharded():
    cfg = TransformerMlpConfig(hidden=64, ffn_multiplier=4, tensor_parallel=4)
    mlp = TensorParallelMlp.create(cfg, rng=np.random.default_rng(10))
    x = dense_features(3, 64, seed=11)
    # Unsharded reference: concatenate the shards.
    w0 = np.concatenate(mlp.w0_shards, axis=1)
    w1 = np.concatenate(mlp.w1_shards, axis=0)
    ref = gelu(x @ w0) @ w1
    np.testing.assert_allclose(mlp(x), ref, rtol=1e-4, atol=1e-5)


def test_tp_mlp_partials_sum_to_forward():
    cfg = TransformerMlpConfig(hidden=32, ffn_multiplier=2, tensor_parallel=2)
    mlp = TensorParallelMlp.create(cfg)
    x = dense_features(2, 32, seed=12)
    partials = sum(mlp.partial_output(r, x) for r in range(2))
    np.testing.assert_allclose(partials, mlp(x), rtol=1e-5)


def test_tp_mlp_gemv_config_mapping():
    cfg = TransformerMlpConfig(hidden=8192, ffn_multiplier=4,
                               tensor_parallel=4)
    mlp = TensorParallelMlp.create(cfg)
    gcfg = mlp.gemv_config()
    assert gcfg.m == 8192
    assert gcfg.n_per_gpu == 8192  # ffn(32768) / 4


# ---------------------------------------------------------------------------
# MoE
# ---------------------------------------------------------------------------

def test_top_k_gating_properties():
    rng = np.random.default_rng(13)
    logits = rng.standard_normal((10, 4)).astype(np.float32)
    idx, w = top_k_gating(logits, 2)
    assert idx.shape == (10, 2) and w.shape == (10, 2)
    np.testing.assert_allclose(w.sum(axis=1), 1.0, rtol=1e-5)
    # The top-1 expert really is the argmax.
    np.testing.assert_array_equal(idx[:, 0], logits.argmax(axis=1))
    with pytest.raises(ValueError):
        top_k_gating(logits, 0)
    with pytest.raises(ValueError):
        top_k_gating(logits[0], 2)


def test_moe_forward_matches_manual():
    cfg = MoeLayerConfig(tokens=16, model_dim=8, ffn_dim=12, num_experts=4,
                         top_k=2)
    layer = MoeLayer.create(cfg, rng=np.random.default_rng(14))
    x, _pos = token_batch(16, 8, seed=15)
    out = layer(x)
    assert out.shape == (16, 12)
    # Manual recomputation for token 0.
    idx, w = top_k_gating(x @ layer.router, 2)
    manual = sum(w[0, j] * (x[0] @ layer.expert_weights[idx[0, j]])
                 for j in range(2))
    np.testing.assert_allclose(out[0], manual, rtol=1e-4, atol=1e-6)


def test_moe_dispatch_counts_cover_topk():
    cfg = MoeLayerConfig(tokens=64, model_dim=16, ffn_dim=8, num_experts=4)
    layer = MoeLayer.create(cfg)
    x, _ = token_batch(64, 16, seed=16)
    counts = layer.dispatch_counts(x)
    assert counts.sum() == 64 * 2  # top-2: every token counted twice


def test_moe_gemm_config_mapping():
    cfg = MoeLayerConfig(model_dim=4096, ffn_dim=8192)
    layer = MoeLayer.create(cfg)
    gcfg = layer.gemm_config(tokens_per_expert=4096)
    assert gcfg.model_dim == 4096 and gcfg.ffn_dim == 8192
    assert gcfg.tokens == 4096
