"""Model workload builders forward the hardware platform to the harness."""

from repro.models.configs import MoeLayerConfig, TransformerMlpConfig
from repro.models.moe import MoeLayer
from repro.models.transformer import TensorParallelMlp


def test_transformer_decode_harness_forwards_platform():
    mlp = TensorParallelMlp.create(TransformerMlpConfig(hidden=1024,
                                                        tensor_parallel=4))
    h = mlp.decode_harness(platform="h100")
    assert h.platform.name == "h100"
    assert h.world_size == 4
    assert h.cluster.gpus[0].spec.name == "H100"
    assert mlp.decode_harness().platform.name == "mi210"


def test_transformer_decode_workload_runs_on_both_platforms():
    from repro.fused.gemv_allreduce import FusedGemvAllReduce
    mlp = TensorParallelMlp.create(TransformerMlpConfig(hidden=1024,
                                                        tensor_parallel=4))
    cfg = mlp.gemv_config(functional=False)
    elapsed = {}
    for plat in ("mi210", "h100"):
        h = mlp.decode_harness(platform=plat)
        elapsed[plat] = h.run(FusedGemvAllReduce(h, cfg)).elapsed
    assert elapsed["mi210"] != elapsed["h100"]


def test_moe_expert_harness_forwards_platform():
    layer = MoeLayer.create(MoeLayerConfig(tokens=256, model_dim=256,
                                           ffn_dim=512, num_experts=4))
    h = layer.expert_harness(platform="mi300x")
    assert h.platform.name == "mi300x"
    assert h.world_size == layer.num_experts
