"""Exact-mirror tests: the analytic device/comm models vs the DES.

The closed forms the analytic backend shares with the simulator must not
merely be *close* — they are the same math, so the tests here demand
exact equality: bulk-kernel spans, occupancy (including the persistent
kernel's grid balancing), and the RCCL-like collectives whose per-rank
timing the DES already evaluates in closed form.
"""

import pytest

from repro.analytic import CommModel, device_model
from repro.fused.base import OpHarness
from repro.hw.gpu import Gpu, WgCost
from repro.hw.platform import get_platform, list_platforms
from repro.kernels import PersistentKernel, bulk_kernel_time, \
    make_uniform_tasks
from repro.sim import Simulator

COSTS = [
    WgCost(bytes=64 * 1024, access="gather"),
    WgCost(bytes=256 * 1024),
    WgCost(flops=2e6, bytes=32 * 1024, dtype="fp16"),
    WgCost(flops=1e6, fixed=1e-7),
]


@pytest.mark.parametrize("name", [p.name for p in list_platforms()])
def test_bulk_kernel_time_matches_simulator_helper(name):
    plat = get_platform(name)
    d = device_model(plat)
    gpu = Gpu(Simulator(), plat.gpu, gpu_id=0)
    for cost in COSTS:
        for n_wgs in (1, 7, d.occupancy(d.base_res).resident_wgs, 5000):
            assert d.bulk_kernel_time(n_wgs, cost, d.base_res) == \
                bulk_kernel_time(gpu, n_wgs, cost, d.base_res)


@pytest.mark.parametrize("name", [p.name for p in list_platforms()])
def test_wg_time_matches_gpu_duration(name):
    plat = get_platform(name)
    d = device_model(plat)
    gpu = Gpu(Simulator(), plat.gpu, gpu_id=0)
    for res in (d.base_res, d.fused_res):
        occ = d.occupancy(res)
        assert occ == gpu.occupancy(res)
        for cost in COSTS:
            assert d.wg_time(cost, occ) == gpu.wg_duration(cost, occ)


@pytest.mark.parametrize("n_tasks,limit", [
    (100, None), (3000, None), (10000, None), (3000, 0.5), (64, 0.25),
])
def test_persistent_occupancy_mirrors_kernel_grid(n_tasks, limit):
    plat = get_platform("mi210")
    d = device_model(plat)
    gpu = Gpu(Simulator(), plat.gpu, gpu_id=0)
    kern = PersistentKernel(gpu, d.fused_res,
                            make_uniform_tasks(n_tasks, COSTS[0]),
                            occupancy_limit=limit)
    occ = d.persistent_occupancy(d.fused_res, n_tasks,
                                 occupancy_limit=limit)
    assert occ == kern.occupancy
    assert d.n_slots(occ, n_tasks) == kern.n_slots


@pytest.mark.parametrize("num_nodes,gpus_per_node", [(1, 4), (2, 1), (2, 2)])
@pytest.mark.parametrize("chunk", [0.0, 4096.0, 8.0 * 1024 * 1024])
def test_alltoall_matches_des_collective(num_nodes, gpus_per_node, chunk):
    h = OpHarness(num_nodes=num_nodes, gpus_per_node=gpus_per_node)
    start = h.sim.now
    h.sim.run_process(h.comm.collectives.all_to_all_bytes(chunk))
    sim_time = h.sim.now - start
    cm = CommModel("mi210", num_nodes=num_nodes, gpus_per_node=gpus_per_node)
    assert cm.alltoall_time(chunk) == pytest.approx(sim_time, rel=1e-12)


@pytest.mark.parametrize("world", [2, 4])
@pytest.mark.parametrize("n_elems", [4096, 65536])
def test_allreduce_direct_matches_des_collective(world, n_elems):
    h = OpHarness(num_nodes=1, gpus_per_node=world)
    nbytes = float(n_elems * 2)
    start = h.sim.now
    h.sim.run_process(h.comm.collectives.all_reduce_bytes(
        nbytes, n_elems, itemsize=2, algorithm="direct"))
    sim_time = h.sim.now - start
    cm = CommModel("mi210", num_nodes=1, gpus_per_node=world)
    assert cm.allreduce_direct_time(nbytes, n_elems, itemsize=2) == \
        pytest.approx(sim_time, rel=1e-12)


def test_device_model_is_memoized():
    assert device_model("mi210") is device_model(get_platform("mi210"))
    assert device_model("mi210") is not device_model("h100")


@pytest.mark.parametrize("name", ["mi210", "h100"])
@pytest.mark.parametrize("batch,tables,sv,occ_frac", [
    (256, 16, 32, None), (1024, 64, 32, 0.5), (4096, 256, 16, 0.25),
    (2048, 32, 64, None),
])
def test_ops_mirrors_match_fused_operator(name, batch, tables, sv,
                                          occ_frac):
    """The two operator-level mirrors in ``analytic.ops`` — tasks-per-
    slice auto-split and the Fig. 13 occupancy-limit conversion — must
    reproduce the DES operator's internals exactly (the device/comm
    mirrors are pinned above; this pins the remaining hand-mirrored
    pair so DES edits cannot silently desynchronize the engines)."""
    from repro.analytic.ops import _occupancy_limit, _tasks_per_slice
    from repro.fused.embedding_alltoall import (
        EmbeddingA2AConfig,
        FusedEmbeddingAllToAll,
    )
    cfg = EmbeddingA2AConfig(global_batch=batch, tables_per_gpu=tables,
                             slice_vectors=sv, functional=False,
                             occupancy_of_baseline=occ_frac)
    h = OpHarness(num_nodes=2, gpus_per_node=1, platform=name)
    op = FusedEmbeddingAllToAll(h, cfg)
    d = device_model(get_platform(name))
    assert _tasks_per_slice(d, cfg, h.world_size) == op._tasks_per_slice(0)
    assert _occupancy_limit(d, occ_frac) == op._kernel_occupancy_limit(0)
