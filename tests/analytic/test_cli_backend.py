"""CLI surface for the analytic backend: list --json, cache stats,
run --backend, validate."""

import json

import pytest

from repro.experiments.cli import main


def test_list_json_is_machine_readable(capsys):
    assert main(["list", "--json"]) == 0
    listing = json.loads(capsys.readouterr().out)
    by_name = {entry["name"]: entry for entry in listing}
    assert by_name["smoke"]["scenarios"] == 3
    assert by_name["smoke"]["backends"] == ["sim"]
    assert by_name["dse_fused_frontier"]["scenarios"] >= 1000
    assert by_name["dse_fused_frontier"]["backends"] == ["analytic"]
    for entry in listing:
        assert set(entry) == {"name", "title", "description", "scenarios",
                              "assembler", "backends", "key"}
        assert len(entry["key"]) == 64


def test_run_backend_analytic_rekeys_cache(tmp_path, capsys):
    cache = tmp_path / "cache"
    reports = tmp_path / "reports"
    assert main(["run", "smoke", "--backend", "analytic", "--cache",
                 str(cache), "--report-dir", str(reports), "--quiet"]) == 0
    assert "3 scenarios, 0 cached, 3 executed" in capsys.readouterr().err
    # Analytic records are content-addressed under their own keys: the
    # re-run is fully cached and byte-identical.
    assert main(["run", "smoke", "--backend", "analytic", "--cache",
                 str(cache), "--quiet", "--expect-cached"]) == 0
    capsys.readouterr()
    # ...while the sim variant of the same sweep is still entirely cold.
    assert main(["run", "smoke", "--cache", str(cache), "--quiet",
                 "--expect-cached"]) == 1
    capsys.readouterr()
    report = json.loads((reports / "smoke.json").read_text())
    assert all(s["params"]["backend"] == "analytic"
               for s in report["scenarios"])


def test_cache_stats_counts_records(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(["run", "dse-smoke", "--cache", str(cache), "--quiet"]) == 0
    capsys.readouterr()
    assert main(["cache", "stats", "--cache", str(cache), "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    # 16 scenario records (8 points x 2 algos) + 1 sweep-level
    # figure record.
    assert stats["records"] == 17
    assert stats["bytes"] > 0
    by_sweep = {row["sweep"]: row for row in stats["sweeps"]}
    assert by_sweep["dse-smoke"]["records"] == 17
    assert by_sweep["dse-smoke"]["scenarios"] == 16
    assert by_sweep["fig8"]["records"] == 0
    assert stats["other_records"] == 0

    assert main(["cache", "stats", "--cache", str(cache)]) == 0
    text = capsys.readouterr().out
    assert "17 record(s)" in text
    assert "dse-smoke" in text


def test_cache_stats_empty_store(tmp_path, capsys):
    assert main(["cache", "stats", "--cache", str(tmp_path / "none")]) == 0
    assert "0 record(s)" in capsys.readouterr().out


@pytest.mark.slow
def test_validate_cli_passes_budget(tmp_path, capsys):
    assert main(["validate", "--cache", str(tmp_path / "cache"),
                 "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "all metrics within budget" in out
