"""Batch-vs-scalar equivalence: the vectorized engine against its oracle.

The scalar ``predict_*`` functions are the pinned reference; every
vectorized closed form must agree elementwise to <= 1e-9 relative (the
implementation actually mirrors expression order, so the assertions here
demand *exact* equality and the tolerance is pure headroom).
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic import CommModel, device_model
from repro.analytic.batch import (
    ScenarioBatch,
    batch_runners,
    batch_supported,
    evaluate_batch_records,
)
from repro.analytic.ops import (
    predict_dlrm_scaleout,
    predict_embedding_a2a,
    predict_embedding_fused,
    predict_embedding_grad_a2a,
    predict_gemm_a2a,
    predict_gemv_allreduce,
    predict_wg_timeline,
)
from repro.hw.platform import generic
from repro.utils.units import GB_PER_S

platforms = st.builds(
    lambda cus, per_cu_gb, flops16: generic(
        "prop", num_cus=cus, hbm_bandwidth=cus * per_cu_gb * GB_PER_S,
        fp32_flops=flops16 * 1e12 / 8, fp16_flops=flops16 * 1e12,
    ).with_overrides(gpus_per_node=4),
    cus=st.integers(min_value=64, max_value=320),
    per_cu_gb=st.floats(min_value=12.0, max_value=30.0),
    flops16=st.floats(min_value=100.0, max_value=1500.0),
)


def _assert_records_equal(batch_records, scalar_records):
    assert len(batch_records) == len(scalar_records)
    for got, want in zip(batch_records, scalar_records):
        assert set(got) == set(want)
        for k, w in want.items():
            g = got[k]
            if isinstance(w, float):
                assert g == pytest.approx(w, rel=1e-9, abs=0.0), k
                assert g == w, f"{k}: {g!r} != {w!r} (bit drift)"
            else:
                assert g == w, k


def _check(runner, scalar_fn, params_list):
    got = evaluate_batch_records(runner, params_list)
    assert got is not None
    want = [scalar_fn(**p) for p in params_list]
    _assert_records_equal(got, want)


# ---------------------------------------------------------------------------
# Deterministic matrices over topologies / platforms / algos
# ---------------------------------------------------------------------------

TOPOS = [(1, 1), (1, 4), (2, 1), (2, 2), (2, 4)]


@pytest.mark.parametrize("platform", ["mi210", "mi300x"])
@pytest.mark.parametrize("algo", [None, "auto", "flat", "pairwise", "hier"])
def test_embedding_a2a_matrix(platform, algo):
    params = [
        dict(num_nodes=nn, gpus_per_node=gpn, platform=platform, algo=algo,
             global_batch=gb, tables_per_gpu=t)
        for (nn, gpn), gb, t in itertools.product(
            TOPOS, (256, 1024, 4096), (8, 64))
        if gb % (nn * gpn) == 0 and (gb // (nn * gpn)) % 32 == 0
    ]
    _check("embedding_a2a_pair", predict_embedding_a2a, params)


def test_embedding_a2a_knobs():
    params = [
        dict(num_nodes=2, gpus_per_node=2, global_batch=1024,
             tables_per_gpu=32, occupancy_of_baseline=occ, zero_copy=zc,
             scheduler=sched, slice_vectors=sv, dim=dim, pooling=pool)
        for occ, zc, sched, sv, dim, pool in itertools.product(
            (None, 0.25, 0.5), (True, False), ("comm_aware", "round_robin"),
            (16, 32), (64, 256), (10, 70))
    ]
    _check("embedding_a2a_pair", predict_embedding_a2a, params)


def test_embedding_a2a_baseline_override_and_tasks_per_slice():
    params = [
        dict(num_nodes=1, gpus_per_node=4, global_batch=2048,
             tables_per_gpu=16, tasks_per_slice=tps,
             baseline={"global_batch": 2048, "tables_per_gpu": 16})
        for tps in (0, 4, 32)
    ] + [
        dict(num_nodes=2, gpus_per_node=1, global_batch=b,
             tables_per_gpu=8,
             baseline={"global_batch": 512, "tables_per_gpu": 8,
                       "algo": "pairwise"})
        for b in (512, 1024)
    ]
    _check("embedding_a2a_pair", predict_embedding_a2a, params)


@pytest.mark.parametrize("topo", [(2, 1), (1, 4), (2, 4)])
def test_embedding_fused_matrix(topo):
    nn, gpn = topo
    params = [
        dict(num_nodes=nn, gpus_per_node=gpn, cpu_proxy=proxy,
             global_batch=gb, tables_per_gpu=16,
             occupancy_of_baseline=occ)
        for proxy, gb, occ in itertools.product(
            (False, True), (256 * nn * gpn, 1024 * nn * gpn),
            (None, 0.5))
    ]
    _check("embedding_fused", predict_embedding_fused, params)


@pytest.mark.parametrize("algo", [None, "auto", "hier"])
def test_embedding_grad_matrix(algo):
    params = [
        dict(num_nodes=nn, gpus_per_node=gpn, platform=plat, algo=algo,
             global_batch=gb, tables_per_gpu=t, slice_vectors=sv)
        for (nn, gpn), plat, gb, t, sv in itertools.product(
            [(2, 1), (2, 2)], ["mi210", "h100"], (512, 2048), (8, 64),
            (16, 32))
        if (gb // (nn * gpn)) % sv == 0
    ]
    _check("embedding_grad_pair", predict_embedding_grad_a2a, params)


@pytest.mark.parametrize("algo", [None, "auto", "direct"])
def test_gemv_matrix(algo):
    params = [
        dict(world=w, platform=plat, algo=algo, m=m, n_per_gpu=n,
             tile_rows=tr, itemsize=isz)
        for w, plat, m, n, tr, isz in itertools.product(
            (2, 4, 8), ["mi210", "mi250x"], (4096, 16384, 65536),
            (1024, 8192), (16, 32), (2, 4))
        if m % (w * tr) == 0
    ]
    _check("gemv_allreduce_pair", predict_gemv_allreduce, params)


@pytest.mark.parametrize("algo", [None, "auto", "pairwise"])
def test_gemm_matrix(algo):
    params = [
        dict(world=w, platform=plat, algo=algo, tokens=tok,
             model_dim=md, ffn_dim=ffn, flop_dtype=dt)
        for w, plat, tok, md, ffn, dt in itertools.product(
            (2, 4), ["mi210", "h100"], (512, 4096), (1024, 4096),
            (1024, 8192), ("fp16", "fp32"))
        if tok % (w * 64) == 0
    ]
    _check("gemm_a2a_pair", predict_gemm_a2a, params)


def test_dlrm_scaleout_matrix():
    params = [dict(num_nodes=nn, platform=plat)
              for nn in (2, 4, 8) for plat in ("mi210", "mi300x")]
    _check("dlrm_scaleout", predict_dlrm_scaleout, params)


def test_wg_timeline_matrix():
    params = [dict(batch=b, tables=t, wgs_per_slice=w)
              for b, t, w in itertools.product((256, 512), (16, 32),
                                               (8, 16))]
    _check("wg_timeline", predict_wg_timeline, params)


# ---------------------------------------------------------------------------
# Schema plumbing: grouping, grids, columns, fallback
# ---------------------------------------------------------------------------

def test_mixed_structural_groups_keep_input_order():
    params = []
    for i in range(12):
        topo = [(2, 1), (1, 4), (2, 2)][i % 3]
        params.append(dict(num_nodes=topo[0], gpus_per_node=topo[1],
                           global_batch=256 * (1 + i % 4) * topo[0] * topo[1],
                           tables_per_gpu=8 + 8 * (i % 2),
                           algo=[None, "auto"][i % 2]))
    _check("embedding_a2a_pair", predict_embedding_a2a, params)


def test_from_grid_matches_grid_param_order():
    axes = {"num_nodes": [1, 2], "global_batch": [512, 1024, 2048],
            "gpus_per_node": [1, 2], "tables_per_gpu": [8, 32],
            "algo": [None, "auto"]}
    batch = ScenarioBatch.from_grid("embedding_a2a_pair", axes)
    names = list(axes)
    combos = [dict(zip(names, vals))
              for vals in itertools.product(*axes.values())]
    assert batch.n == len(combos)
    want = [predict_embedding_a2a(**p) for p in combos]
    _assert_records_equal(batch.records(), want)
    cols = batch.evaluate()
    assert cols["fused_time"].shape == (len(combos),)
    for i, w in enumerate(want):
        assert cols["fused_time"][i] == w["fused_time"]
        assert cols["baseline_time"][i] == w["baseline_time"]


def test_from_columns_matches_scalar():
    rng = np.random.default_rng(7)
    n = 64
    m = 16 * 4 * rng.integers(1, 200, n)
    npg = 256 * rng.integers(1, 40, n)
    batch = ScenarioBatch.from_columns(
        "gemv_allreduce_pair", {"m": m, "n_per_gpu": npg},
        structural={"world": 4, "algo": "auto"})
    cols = batch.evaluate()
    for i in range(n):
        want = predict_gemv_allreduce(world=4, algo="auto", m=int(m[i]),
                                      n_per_gpu=int(npg[i]))
        assert cols["fused_time"][i] == want["fused_time"]
        assert cols["baseline_time"][i] == want["baseline_time"]


def test_unrepresentable_rows_fall_back_to_scalar():
    # Platform objects and unknown keys can't join a columnar group; the
    # engine must still return exact scalar results for them.
    plat = generic("fb", num_cus=100)
    params = [
        dict(num_nodes=2, gpus_per_node=1, global_batch=512,
             tables_per_gpu=8, platform=plat),
        dict(num_nodes=2, gpus_per_node=1, global_batch=1024,
             tables_per_gpu=8),
    ]
    _check("embedding_a2a_pair", predict_embedding_a2a, params)


def test_unsupported_runner_returns_none():
    assert evaluate_batch_records("table_setup", [{}]) is None
    assert not batch_supported("table_setup")
    assert batch_supported("embedding_a2a_pair")
    assert "gemm_a2a_pair" in batch_runners()


def test_batch_validation_mirrors_scalar():
    with pytest.raises(ValueError):
        evaluate_batch_records("embedding_a2a_pair", [
            dict(num_nodes=2, gpus_per_node=1, global_batch=513,
                 tables_per_gpu=8)])
    with pytest.raises(ValueError):
        evaluate_batch_records("gemv_allreduce_pair", [
            dict(world=4, m=100, n_per_gpu=64)])
    with pytest.raises(ValueError):
        evaluate_batch_records("embedding_a2a_pair", [
            dict(num_nodes=2, gpus_per_node=1, global_batch=512,
                 tables_per_gpu=8, occupancy_of_baseline=2.0)])


# ---------------------------------------------------------------------------
# Property tests: randomized platform geometries (hypothesis)
# ---------------------------------------------------------------------------

@given(plat=platforms, batch_k=st.integers(min_value=1, max_value=16),
       tables=st.sampled_from((8, 32, 256)),
       topo=st.sampled_from(((1, 4), (2, 1), (2, 4))),
       algo=st.sampled_from((None, "auto", "flat", "hier")),
       occ=st.sampled_from((None, 0.25, 0.75)))
@settings(max_examples=40, deadline=None)
def test_embedding_batch_equals_scalar_on_random_platforms(
        plat, batch_k, tables, topo, algo, occ):
    nn, gpn = topo
    params = [dict(num_nodes=nn, gpus_per_node=gpn, platform=plat,
                   global_batch=256 * batch_k * nn * gpn,
                   tables_per_gpu=tables, algo=algo,
                   occupancy_of_baseline=occ)]
    _check("embedding_a2a_pair", predict_embedding_a2a, params)


@given(plat=platforms, m_k=st.integers(min_value=1, max_value=64),
       n=st.sampled_from((1024, 4096, 16384)),
       world=st.sampled_from((2, 4, 8)),
       algo=st.sampled_from((None, "auto", "direct")))
@settings(max_examples=40, deadline=None)
def test_gemv_batch_equals_scalar_on_random_platforms(
        plat, m_k, n, world, algo):
    params = [dict(world=world, platform=plat, m=world * 16 * 8 * m_k,
                   n_per_gpu=n, algo=algo)]
    _check("gemv_allreduce_pair", predict_gemv_allreduce, params)


@given(plat=platforms, tokens_k=st.integers(min_value=1, max_value=32),
       ffn=st.sampled_from((1024, 8192)),
       algo=st.sampled_from((None, "auto", "pairwise")))
@settings(max_examples=30, deadline=None)
def test_gemm_batch_equals_scalar_on_random_platforms(
        plat, tokens_k, ffn, algo):
    params = [dict(world=4, platform=plat, tokens=256 * tokens_k,
                   model_dim=2048, ffn_dim=ffn, algo=algo)]
    _check("gemm_a2a_pair", predict_gemm_a2a, params)


@given(plat=platforms, batch_k=st.integers(min_value=1, max_value=16),
       tables=st.sampled_from((8, 64)),
       topo=st.sampled_from(((2, 1), (2, 2))))
@settings(max_examples=30, deadline=None)
def test_grad_batch_equals_scalar_on_random_platforms(
        plat, batch_k, tables, topo):
    nn, gpn = topo
    params = [dict(num_nodes=nn, gpus_per_node=gpn, platform=plat,
                   global_batch=32 * batch_k * nn * gpn,
                   tables_per_gpu=tables)]
    _check("embedding_grad_pair", predict_embedding_grad_a2a, params)


@given(plat=platforms,
       chunk=st.floats(min_value=0.0, max_value=1e9),
       nn=st.sampled_from((1, 2, 4)), gpn=st.sampled_from((1, 4)),
       algo=st.sampled_from((None, "auto", "flat", "pairwise", "hier")))
@settings(max_examples=60, deadline=None)
def test_alltoall_batch_equals_scalar(plat, chunk, nn, gpn, algo):
    cm = CommModel(plat, num_nodes=nn, gpus_per_node=gpn)
    chunks = np.array([0.0, chunk, chunk / 3, 64 * 1024.0, 64 * 1024.0 + 1])
    got = cm.alltoall_time_batch(chunks, algo=algo)
    for i, c in enumerate(chunks):
        assert got[i] == cm.alltoall_time(float(c), algo=algo)


@given(plat=platforms,
       elems=st.integers(min_value=1, max_value=10_000_000),
       nn=st.sampled_from((1, 2, 4)), gpn=st.sampled_from((1, 4)),
       algo=st.sampled_from((None, "auto", "direct", "ring")))
@settings(max_examples=60, deadline=None)
def test_allreduce_batch_equals_scalar(plat, elems, nn, gpn, algo):
    cm = CommModel(plat, num_nodes=nn, gpus_per_node=gpn)
    n_elems = np.array([1, elems, max(1, elems // 7), 8 * 1024, 8 * 1024 + 1])
    nbytes = 4.0 * n_elems
    got = cm.allreduce_time_batch(nbytes, n_elems, itemsize=4, algo=algo)
    for i in range(len(n_elems)):
        assert got[i] == cm.allreduce_time(float(nbytes[i]),
                                           int(n_elems[i]), itemsize=4,
                                           algo=algo)


@given(plat=platforms,
       n_tasks=st.integers(min_value=1, max_value=100_000),
       n_work=st.sampled_from((None, 0, 17, 4096)),
       limit=st.sampled_from((None, 0.1, 0.5, 1.0)))
@settings(max_examples=60, deadline=None)
def test_persistent_occupancy_batch_equals_scalar(plat, n_tasks, n_work,
                                                  limit):
    d = device_model(plat)
    tasks = np.array([1, 2, n_tasks, n_tasks + 1, 10 * n_tasks])
    work = None if n_work is None else np.full(len(tasks), n_work)
    lim = None if limit is None else np.full(len(tasks), float(limit))
    occ_b = d.persistent_occupancy_batch(d.fused_res, tasks, n_work=work,
                                         occupancy_limit=lim)
    for i, nt in enumerate(tasks):
        occ_s = d.persistent_occupancy(d.fused_res, int(nt),
                                       n_work=n_work,
                                       occupancy_limit=limit)
        assert occ_b.wgs_per_cu[i] == occ_s.wgs_per_cu
        assert occ_b.resident_wgs[i] == occ_s.resident_wgs
        assert occ_b.fraction[i] == occ_s.fraction


@given(plat=platforms,
       n_wgs=st.integers(min_value=1, max_value=1_000_000),
       flops=st.floats(min_value=0.0, max_value=1e9),
       nbytes=st.floats(min_value=0.0, max_value=1e9),
       access=st.sampled_from(("stream", "gather")))
@settings(max_examples=60, deadline=None)
def test_bulk_kernel_time_batch_equals_scalar(plat, n_wgs, flops, nbytes,
                                              access):
    from repro.hw.gpu import WgCost
    d = device_model(plat)
    wgs = np.array([1, n_wgs, max(1, n_wgs // 3)])
    got = d.bulk_kernel_time_batch(wgs, flops, nbytes, "fp32", 0.0, access,
                                   d.base_res)
    cost = WgCost(flops=flops, bytes=nbytes, dtype="fp32", access=access)
    for i, n in enumerate(wgs):
        assert got[i] == d.bulk_kernel_time(int(n), cost, d.base_res)
