"""Fidelity subsystem tests: budget enforcement and report mechanics."""

import json

import pytest

from repro.analytic.validate import (
    ACCURACY_BUDGET,
    ValidationMetric,
    run_validation,
    validation_cases,
)
from repro.experiments import ResultStore


def test_validation_cases_cover_headline_figures():
    names = [case for case, _sweep in validation_cases()]
    for required in ("fig9", "fig11", "fig12", "fig15"):
        assert required in names
    assert set(names) <= set(ACCURACY_BUDGET)


def test_headline_budget_is_declared_at_ten_percent():
    for case in ("fig9", "fig11", "fig12"):
        assert ACCURACY_BUDGET[case] == pytest.approx(0.10)
    # Shared closed forms are held to exact agreement, not a 10% window.
    assert ACCURACY_BUDGET["fig15"] < 1e-9


def test_metric_flags_over_budget():
    good = ValidationMetric("c", "m", sim=1.0, analytic=1.05, budget=0.10)
    bad = ValidationMetric("c", "m", sim=1.0, analytic=1.25, budget=0.10)
    assert good.ok and good.rel_err == pytest.approx(0.05)
    assert not bad.ok
    assert "FAIL" in str(bad)


def test_fig15_and_fig9_validation_within_budget(tmp_path):
    """One exact-tier and one modelled-tier case end to end (the full run
    is CI's job; this keeps a fidelity regression inside tier-1)."""
    store = ResultStore(tmp_path / "cache")
    report = run_validation(store=store, cases=("fig9", "fig15"))
    assert report.metrics
    assert not report.geometry_failures
    assert report.ok, report.render()
    fig15 = [m for m in report.metrics if m.case == "fig15"]
    assert fig15 and all(m.rel_err == 0.0 for m in fig15)
    payload = report.to_json_dict()
    assert payload["ok"] is True
    json.dumps(payload)  # must be JSON-serializable as-is

    # Second run: every scenario is served from the store.
    rerun = run_validation(store=store, cases=("fig9", "fig15"))
    assert rerun.ok
    assert [ (m.case, m.metric, m.sim, m.analytic) for m in rerun.metrics] \
        == [(m.case, m.metric, m.sim, m.analytic) for m in report.metrics]


def test_validation_report_render_mentions_budget(tmp_path):
    report = run_validation(store=ResultStore(tmp_path / "c"),
                            cases=("fig15",))
    text = report.render()
    assert "analytic-vs-DES validation" in text
    assert "within budget" in text
