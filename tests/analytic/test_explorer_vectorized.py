"""Vectorized Pareto frontier vs the legacy all-pairs oracle, plus the
successive-refinement explorer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic.explorer import (
    dominates,
    pareto_frontier,
    pareto_frontier_legacy,
    pareto_mask,
    refine,
)


def _random_grid(rng, n, k, levels):
    # Quantized values force plenty of exact ties and duplicate rows.
    return rng.integers(0, levels, size=(n, k)).astype(float)


@pytest.mark.parametrize("k", [2, 3, 4])
@pytest.mark.parametrize("levels", [3, 8, 50])
def test_matches_legacy_on_random_grids(k, levels):
    rng = np.random.default_rng(20240807 + 10 * k + levels)
    for n in (1, 2, 17, 200):
        objs = _random_grid(rng, n, k, levels)
        items = list(range(n))
        got = pareto_frontier(items, lambda i: tuple(objs[i]))
        want = pareto_frontier_legacy(items, lambda i: tuple(objs[i]))
        assert got == want


@given(st.lists(st.tuples(st.floats(-1e6, 1e6), st.floats(-1e6, 1e6)),
                min_size=0, max_size=60))
@settings(max_examples=60, deadline=None)
def test_matches_legacy_on_float_pairs(pts):
    items = list(range(len(pts)))
    got = pareto_frontier(items, lambda i: pts[i])
    want = pareto_frontier_legacy(items, lambda i: pts[i])
    assert got == want


def test_keeps_input_order_and_duplicates():
    pts = [(2.0, 1.0), (1.0, 2.0), (2.0, 1.0), (3.0, 3.0), (1.0, 2.0)]
    items = ["a", "b", "c", "d", "e"]
    got = pareto_frontier(items, lambda it: pts[items.index(it)])
    assert got == ["a", "b", "c", "e"]


def test_mask_semantics_match_dominates():
    rng = np.random.default_rng(7)
    objs = _random_grid(rng, 80, 3, 5)
    mask = pareto_mask(objs)
    for i in range(len(objs)):
        dominated = any(dominates(tuple(objs[j]), tuple(objs[i]))
                        for j in range(len(objs)) if j != i)
        assert mask[i] == (not dominated)


def test_mask_single_objective_and_empty():
    assert pareto_mask(np.zeros((0, 2))).shape == (0,)
    mask = pareto_mask(np.array([[3.0], [1.0], [1.0], [2.0]]))
    assert mask.tolist() == [False, True, True, False]
    with pytest.raises(ValueError):
        pareto_mask(np.zeros(4))


def test_mask_is_fast_enough_for_mega_grids():
    rng = np.random.default_rng(11)
    objs = rng.random((200_000, 2))
    mask = pareto_mask(objs)
    # Random uniform squares have tiny frontiers; just sanity-check shape
    # and that the frontier is mutually non-dominated.
    front = objs[mask]
    assert 1 <= len(front) < 100
    assert pareto_mask(front).all()


def test_refine_converges_on_analytic_objective():
    # Frontier of (f1, f2) = ((x-2)^2 + y^2, x^2 + (y-2)^2) is the segment
    # between (2, 0) and (0, 2); refinement should approach both ends.
    def objective(cols):
        x, y = cols["x"], cols["y"]
        return np.stack([(x - 2.0) ** 2 + y ** 2,
                         x ** 2 + (y - 2.0) ** 2], axis=1)

    coarse = refine(objective, {"x": (-4.0, 4.0), "y": (-4.0, 4.0)},
                    rounds=1, grid=5)
    fine = refine(objective, {"x": (-4.0, 4.0), "y": (-4.0, 4.0)},
                  rounds=4, grid=5)
    best_f1 = min(obj[0] for _, obj in fine)
    best_f2 = min(obj[1] for _, obj in fine)
    assert best_f1 <= min(obj[0] for _, obj in coarse)
    assert best_f1 < 0.05 and best_f2 < 0.05
    # Every returned point is mutually non-dominated.
    objs = np.array([obj for _, obj in fine])
    assert pareto_mask(objs).all()


def test_refine_validates_arguments():
    def objective(cols):
        return np.stack([cols["x"], -cols["x"]], axis=1)

    with pytest.raises(ValueError):
        refine(objective, {}, rounds=1)
    with pytest.raises(ValueError):
        refine(objective, {"x": (1.0, 0.0)})
    with pytest.raises(ValueError):
        refine(objective, {"x": (0.0, 1.0)}, rounds=0)


def test_refine_over_generic_platform_geometry():
    # The ISSUE's headline use: search generic() GPU geometry for designs
    # trading fused latency against CU count (a cost proxy).
    from repro.analytic import predict_embedding_a2a
    from repro.hw.platform import generic

    def objective(cols):
        out = np.empty((len(cols["num_cus"]), 2))
        for i, (cus, bw) in enumerate(zip(cols["num_cus"], cols["hbm_tbps"])):
            plat = generic("probe", num_cus=int(round(cus)),
                           hbm_bandwidth=float(bw) * 1e12)
            rec = predict_embedding_a2a(
                num_nodes=1, gpus_per_node=4, global_batch=4096,
                tables_per_gpu=16, platform=plat)
            out[i] = (rec["fused_time"], float(cus))
        return out

    front = refine(objective, {"num_cus": (64.0, 160.0),
                               "hbm_tbps": (1.0, 2.0)},
                   rounds=2, grid=3, max_regions=2)
    assert front
    objs = np.array([obj for _, obj in front])
    assert pareto_mask(objs).all()
    for point, _ in front:
        assert 64.0 <= point["num_cus"] <= 160.0
        assert 1.0 <= point["hbm_tbps"] <= 2.0
