"""Backend axis threading: keys, dispatch, default-path bit-identity.

The contract under test:

* a scenario with no ``backend`` parameter is a DES scenario with exactly
  the content key it had before the analytic backend existed (default
  path bit-identical);
* pinning a backend re-keys the scenario; round-tripping through
  ``"sim"`` recovers the original spec and key exactly;
* every runner dispatches on the parameter, and the closed-form-shared
  runners (tables, DLRM scale-out) return identical payloads under both
  engines.
"""

import json

import pytest

from repro.experiments import (
    ensure_registered,
    get_sweep,
    run_scenario,
    run_sweep,
    scenario,
    sweep_with_backend,
)
from repro.experiments.report import report_json


@pytest.fixture(autouse=True)
def _registered():
    ensure_registered()


#: Sweeps that predate the backend axis: their scenarios must carry no
#: backend parameter at all (absence *is* the default path).
PRE_BACKEND_SWEEPS = [
    "table1", "table2", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
    "fig14", "fig15", "ablation-slice-size", "ablation-scheduling",
    "ablation-zero-copy", "ablation-cpu-proxy", "ext-embedding-backward",
    "xhw_embedding_a2a", "xhw_gemv_allreduce", "xhw_gemm_a2a",
    "xhw_scaleout", "xhw-smoke", "smoke",
]


def test_default_path_has_no_backend_parameter():
    for name in PRE_BACKEND_SWEEPS:
        for spec in get_sweep(name).scenarios:
            assert "backend" not in spec.params, (name, spec.label)
            assert spec.backend == "sim"


def test_seed_scenario_key_unchanged():
    # Golden hash: the smoke sweep's GEMV scenario key as of the platform
    # PR (schema v2).  The analytic backend must not move default-path
    # keys — cached seed results stay addressable.
    spec = get_sweep("smoke").scenarios[0]
    assert spec.runner == "gemv_allreduce_pair"
    assert spec.key() == scenario(
        "gemv_allreduce_pair", label="anything", m=8192, n_per_gpu=2048,
        world=4, platform="mi210").key()


def test_with_backend_rekeys_and_round_trips():
    spec = scenario("gemv_allreduce_pair", m=8192, n_per_gpu=2048, world=4,
                    platform="mi210")
    ana = spec.with_backend("analytic")
    assert ana.backend == "analytic"
    assert ana.params["backend"] == "analytic"
    assert ana.key() != spec.key()
    assert ana.with_backend("sim") == spec
    assert ana.with_backend("sim").key() == spec.key()
    with pytest.raises(ValueError, match="unknown backend"):
        spec.with_backend("quantum")


def test_sweep_with_backend_round_trips():
    sweep = get_sweep("smoke")
    ana = sweep_with_backend(sweep, "analytic")
    assert ana.key() != sweep.key()
    assert all(s.backend == "analytic" for s in ana.scenarios)
    back = sweep_with_backend(ana, "sim")
    assert back == sweep
    assert [s.label for s in ana.scenarios] == [s.label
                                                for s in sweep.scenarios]


def test_unknown_backend_rejected_at_run_time():
    spec = scenario("gemv_allreduce_pair", m=8192, n_per_gpu=2048, world=4,
                    backend="quantum")
    with pytest.raises(ValueError, match="unknown backend"):
        run_scenario(spec)


@pytest.mark.parametrize("runner,params", [
    ("gemv_allreduce_pair", dict(m=8192, n_per_gpu=2048, world=4)),
    ("gemm_a2a_pair", dict(tokens=2048, model_dim=4096, ffn_dim=8192,
                           world=4)),
    ("embedding_a2a_pair", dict(global_batch=512, tables_per_gpu=16,
                                num_nodes=2, gpus_per_node=1)),
    ("embedding_grad_pair", dict(global_batch=512, tables_per_gpu=16,
                                 num_nodes=2, gpus_per_node=1)),
])
def test_analytic_dispatch_returns_positive_pair(runner, params):
    result = run_scenario(scenario(runner, backend="analytic", **params))
    assert result["fused_time"] > 0
    assert result["baseline_time"] > 0


def test_embedding_fused_analytic_shape():
    result = run_scenario(scenario(
        "embedding_fused", backend="analytic", global_batch=512,
        tables_per_gpu=16, num_nodes=2, gpus_per_node=1))
    assert result["elapsed"] > 0
    assert set(result["rank_end_times"]) == {"0", "1"}


def test_shared_closed_forms_identical_across_backends():
    for params in (dict(which="table1"), dict(which="table2")):
        sim = run_scenario(scenario("table_setup", **params))
        ana = run_scenario(scenario("table_setup", backend="analytic",
                                    **params))
        assert sim == ana
    sim = run_scenario(scenario("dlrm_scaleout", num_nodes=16))
    ana = run_scenario(scenario("dlrm_scaleout", backend="analytic",
                                num_nodes=16))
    assert sim == ana


def test_wg_timeline_analytic_geometry_and_keys():
    sim = run_scenario(scenario("wg_timeline", batch=512, tables=32,
                                wgs_per_slice=16, timeline_width=100))
    ana = run_scenario(scenario("wg_timeline", backend="analytic",
                                batch=512, tables=32, wgs_per_slice=16,
                                timeline_width=100))
    assert ana["puts_issued_node0"] == sim["puts_issued_node0"]
    assert set(ana) == set(sim)


def test_default_sim_report_unaffected_by_analytic_twin(tmp_path):
    """Running the analytic twin must not perturb the sim report bytes."""
    from repro.experiments import ResultStore
    store = ResultStore(tmp_path / "cache")
    sweep = get_sweep("smoke")
    before = report_json(run_sweep(sweep, store=store).report())
    run_sweep(sweep_with_backend(sweep, "analytic"), store=store)
    after = report_json(run_sweep(sweep, store=store).report())
    assert after == before


# ----------------------------------------------------------------------
# Design-space sweeps
# ----------------------------------------------------------------------

def test_dse_fused_frontier_is_registered_and_large():
    sweep = get_sweep("dse_fused_frontier")
    assert len(sweep) >= 1000
    assert all(s.backend == "analytic" for s in sweep.scenarios)
    labels = [s.label for s in sweep.scenarios]
    assert len(set(labels)) == len(labels)


def test_dse_smoke_runs_and_assembles():
    run = run_sweep(get_sweep("dse-smoke"), store=None)
    fig = run.figure()
    assert fig.extra["n_scenarios"] == 16  # 8 points x 2 algos
    assert 1 <= fig.extra["n_frontier"] <= 8
    assert fig.rows
    # Frontier rows must come from the grid and be non-dominated within
    # their platform.
    speedups = {r.label: r.baseline_time / r.fused_time for r in fig.rows}
    assert all(v > 0 for v in speedups.values())


def test_pareto_frontier_properties():
    from repro.analytic import dominates, pareto_frontier
    pts = [(1.0, 5.0), (2.0, 1.0), (1.5, 4.0), (1.0, 6.0), (3.0, 0.5)]
    front = pareto_frontier(pts, lambda p: p)
    for f in front:
        assert not any(dominates(o, f) for o in pts if o != f)
    for p in pts:
        if p not in front:
            assert any(dominates(o, p) for o in pts)
    assert dominates((1.0, 1.0), (1.0, 2.0))
    assert not dominates((1.0, 2.0), (2.0, 1.0))
    with pytest.raises(ValueError):
        dominates((1.0,), (1.0, 2.0))


def test_dse_full_grid_runs_fast(tmp_path):
    """The 1000+-scenario grid must stay cheap (the DSE contract)."""
    import time
    sweep = get_sweep("dse_fused_frontier")
    start = time.perf_counter()
    run = run_sweep(sweep, store=None)
    elapsed = time.perf_counter() - start
    fig = run.figure()
    assert fig.extra["n_scenarios"] == len(sweep) >= 1000
    # CI boxes are slow; locally this is ~0.2 s.  The DES equivalent is
    # ~1 scenario/second — three orders of magnitude over this bound.
    assert elapsed < 30.0, f"analytic DSE grid took {elapsed:.1f}s"
    report = run.report()
    assert len(json.loads(report_json(report))["scenarios"]) == len(sweep)
