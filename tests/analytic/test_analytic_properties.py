"""Property tests for the analytic models (hypothesis).

Three families, over randomized ``generic()`` platforms:

* **positivity** — every predicted duration is strictly positive;
* **monotonicity** — more work (message volume, table count, matrix rows,
  tokens) never predicts less time;
* **overlap bound** — a fused operator never exceeds its baseline's
  serial compute + communication time.

The overlap bound is deliberately scoped to the regime where it is true
*of the simulator as well*: real HBM-per-CU ratios (the catalog spans
~15-25 GB/s per CU) and workloads large enough that the persistent
kernel's task list fills the device.  Outside it, fusion genuinely can
lose — starved-DRAM devices where the baseline's underfilled kernels
dodge the Fig. 13 contention knee, or task lists so short the fused
kernel launches at a sliver of occupancy — and the DES shows the same
normalized times the analytic model does (cross-checked in
``tests/analytic/test_device_comm.py`` and the validate subsystem).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic import (
    device_model,
    predict_embedding_a2a,
    predict_embedding_grad_a2a,
    predict_gemm_a2a,
    predict_gemv_allreduce,
)
from repro.hw.platform import generic
from repro.utils.units import GB_PER_S

#: Randomized-but-plausible device geometry.  HBM scales with CU count at
#: a real-GPU ratio, and overhead/latency parameters stay at the
#: calibrated MI210 values (they are not a design axis here).
platforms = st.builds(
    lambda cus, per_cu_gb, flops16: generic(
        "prop", num_cus=cus, hbm_bandwidth=cus * per_cu_gb * GB_PER_S,
        fp32_flops=flops16 * 1e12 / 8, fp16_flops=flops16 * 1e12,
    ).with_overrides(gpus_per_node=4),
    cus=st.integers(min_value=64, max_value=320),
    per_cu_gb=st.floats(min_value=12.0, max_value=30.0),
    flops16=st.floats(min_value=100.0, max_value=1500.0),
)


def _positive_pair(result):
    assert result["fused_time"] > 0
    assert result["baseline_time"] > 0


def _fused_resident(plat) -> int:
    d = device_model(plat)
    return d.occupancy(d.fused_res).resident_wgs


@given(plat=platforms,
       batch_k=st.integers(min_value=2, max_value=16),
       tables=st.sampled_from((32, 64, 256)),
       topo=st.sampled_from(((1, 4), (2, 1))))
@settings(max_examples=40, deadline=None)
def test_embedding_positive_and_fused_bounded_by_serial(plat, batch_k,
                                                        tables, topo):
    num_nodes, gpus_per_node = topo
    world = num_nodes * gpus_per_node
    batch = 256 * batch_k
    res = predict_embedding_a2a(
        num_nodes=num_nodes, gpus_per_node=gpus_per_node, platform=plat,
        global_batch=batch, tables_per_gpu=tables)
    _positive_pair(res)
    # The overlap bound applies in the saturating regime only: the fused
    # kernel's slice list fills the device (see module docstring).
    if world * tables * (batch // world // 32) >= _fused_resident(plat):
        assert res["fused_time"] <= res["baseline_time"] * (1 + 1e-9)


@given(plat=platforms, batch_k=st.integers(min_value=1, max_value=12))
@settings(max_examples=30, deadline=None)
def test_embedding_monotone_in_batch(plat, batch_k):
    small = predict_embedding_a2a(num_nodes=2, gpus_per_node=1,
                                  platform=plat, global_batch=256 * batch_k,
                                  tables_per_gpu=32)
    big = predict_embedding_a2a(num_nodes=2, gpus_per_node=1, platform=plat,
                                global_batch=512 * batch_k,
                                tables_per_gpu=32)
    _positive_pair(small)
    assert big["fused_time"] >= small["fused_time"] * (1 - 1e-9)
    assert big["baseline_time"] >= small["baseline_time"] * (1 - 1e-9)


@given(plat=platforms, tables=st.integers(min_value=1, max_value=128))
@settings(max_examples=30, deadline=None)
def test_embedding_monotone_in_tables(plat, tables):
    small = predict_embedding_a2a(num_nodes=2, gpus_per_node=1,
                                  platform=plat, global_batch=1024,
                                  tables_per_gpu=tables)
    big = predict_embedding_a2a(num_nodes=2, gpus_per_node=1, platform=plat,
                                global_batch=1024,
                                tables_per_gpu=2 * tables)
    assert big["fused_time"] >= small["fused_time"] * (1 - 1e-9)
    assert big["baseline_time"] >= small["baseline_time"] * (1 - 1e-9)


@given(plat=platforms, m_k=st.integers(min_value=1, max_value=16),
       n=st.sampled_from((1024, 4096, 16384)))
@settings(max_examples=40, deadline=None)
def test_gemv_positive_monotone_bounded(plat, m_k, n):
    small = predict_gemv_allreduce(world=4, platform=plat, m=1024 * m_k,
                                   n_per_gpu=n)
    big = predict_gemv_allreduce(world=4, platform=plat, m=2048 * m_k,
                                 n_per_gpu=n)
    _positive_pair(small)
    # Monotone in the message size (the AllReduced vector is m elements).
    assert big["fused_time"] >= small["fused_time"] * (1 - 1e-9)
    assert big["baseline_time"] >= small["baseline_time"] * (1 - 1e-9)
    # The overlap bound needs the task list to *comfortably* fill the
    # device: right at one-task-per-slot the queue model's last-round
    # quantization can nudge the fused time a fraction of a percent past
    # the baseline (observed 0.3% at ratio ~1.03 on odd CU counts), which
    # is a discretization artifact, not a modelling claim.
    if 1024 * m_k // 16 >= 2 * _fused_resident(plat):
        assert small["fused_time"] <= small["baseline_time"] * (1 + 1e-9)


@given(plat=platforms, tokens_k=st.integers(min_value=1, max_value=16),
       ffn=st.sampled_from((1024, 8192)))
@settings(max_examples=30, deadline=None)
def test_gemm_positive_monotone_bounded(plat, tokens_k, ffn):
    small = predict_gemm_a2a(world=4, platform=plat, tokens=512 * tokens_k,
                             model_dim=2048, ffn_dim=ffn)
    big = predict_gemm_a2a(world=4, platform=plat, tokens=1024 * tokens_k,
                           model_dim=2048, ffn_dim=ffn)
    _positive_pair(small)
    assert big["fused_time"] >= small["fused_time"] * (1 - 1e-9)
    assert big["baseline_time"] >= small["baseline_time"] * (1 - 1e-9)
    assert small["fused_time"] <= small["baseline_time"] * (1 + 1e-9)


@given(plat=platforms, batch_k=st.integers(min_value=1, max_value=8),
       tables=st.sampled_from((64, 256)))
@settings(max_examples=30, deadline=None)
def test_grad_positive_and_bounded(plat, batch_k, tables):
    batch = 512 * batch_k
    res = predict_embedding_grad_a2a(num_nodes=2, gpus_per_node=1,
                                     platform=plat, global_batch=batch,
                                     tables_per_gpu=tables)
    _positive_pair(res)
    if 2 * tables * (batch // 2 // 32) >= _fused_resident(plat):
        assert res["fused_time"] <= res["baseline_time"] * (1 + 1e-9)


@given(plat=platforms,
       link_gb=st.floats(min_value=10.0, max_value=400.0),
       chunk=st.floats(min_value=0.0, max_value=1e8))
@settings(max_examples=40, deadline=None)
def test_collectives_monotone_in_message_size(plat, link_gb, chunk):
    from repro.analytic import CommModel
    from repro.hw.specs import LinkSpec
    plat = plat.with_overrides(link=LinkSpec(bandwidth=link_gb * GB_PER_S,
                                             latency=3e-7))
    cm = CommModel(plat, num_nodes=1, gpus_per_node=4)
    assert cm.alltoall_time(chunk) > 0
    assert cm.alltoall_time(2 * chunk + 1) >= cm.alltoall_time(chunk)
    assert (cm.allreduce_direct_time(2 * chunk + 8, max(1, int(chunk)))
            >= cm.allreduce_direct_time(chunk, max(1, int(chunk // 2) or 1)))
