"""Tests for the fused gradient All-to-All + scatter-add (backward pass)."""

import numpy as np
import pytest

from repro.fused import (
    BaselineEmbeddingGradAllToAll,
    EmbeddingA2AConfig,
    FusedEmbeddingGradAllToAll,
    OpHarness,
)
from repro.fused.embedding_grad_alltoall import (
    SCATTER_ATOMIC_FACTOR,
    make_gradients,
    reference_table_grads,
    scatter_add,
)

SMALL = dict(global_batch=64, tables_per_gpu=4, dim=16, pooling=5,
             rows_per_table=50, slice_vectors=8)


def test_scatter_add_matches_dense_jacobian():
    """sum-pooling backward: each looked-up row receives the full gradient."""
    rng = np.random.default_rng(0)
    table_grad = np.zeros((10, 4), np.float32)
    idx = rng.integers(0, 10, size=(3, 2))
    grads = rng.standard_normal((3, 4)).astype(np.float32)
    scatter_add(table_grad, idx, grads)
    expected = np.zeros_like(table_grad)
    for b in range(3):
        for p in range(2):
            expected[idx[b, p]] += grads[b]
    np.testing.assert_allclose(table_grad, expected, rtol=1e-6)


@pytest.mark.parametrize("nodes,gpn", [(2, 1), (1, 4), (2, 2)])
def test_fused_backward_matches_reference(nodes, gpn):
    cfg = EmbeddingA2AConfig(**SMALL)
    world = nodes * gpn
    h1 = OpHarness(num_nodes=nodes, gpus_per_node=gpn)
    fused = h1.run(FusedEmbeddingGradAllToAll(h1, cfg))
    ref = reference_table_grads(cfg, world, make_gradients(cfg, world))
    for r in range(world):
        np.testing.assert_allclose(fused.outputs[r], ref[r],
                                   rtol=1e-4, atol=1e-5)


def test_fused_equals_baseline_backward():
    cfg = EmbeddingA2AConfig(**SMALL)
    h1 = OpHarness(num_nodes=2, gpus_per_node=1)
    fused = h1.run(FusedEmbeddingGradAllToAll(h1, cfg))
    h2 = OpHarness(num_nodes=2, gpus_per_node=1)
    base = h2.run(BaselineEmbeddingGradAllToAll(h2, cfg))
    for f, b in zip(fused.outputs, base.outputs):
        np.testing.assert_allclose(f, b, rtol=1e-4, atol=1e-5)


def test_fused_backward_wins_at_paper_scale():
    cfg = EmbeddingA2AConfig(global_batch=1024, tables_per_gpu=64,
                             functional=False)
    h1 = OpHarness(num_nodes=2, gpus_per_node=1)
    fused = h1.run(FusedEmbeddingGradAllToAll(h1, cfg))
    h2 = OpHarness(num_nodes=2, gpus_per_node=1)
    base = h2.run(BaselineEmbeddingGradAllToAll(h2, cfg))
    assert fused.normalized_to(base) < 0.95


def test_timing_only_matches_functional_time_backward():
    times = {}
    for functional in (True, False):
        cfg = EmbeddingA2AConfig(**{**SMALL, "functional": functional})
        h = OpHarness(num_nodes=2, gpus_per_node=1)
        times[functional] = h.run(FusedEmbeddingGradAllToAll(h, cfg)).elapsed
    assert times[True] == pytest.approx(times[False], rel=1e-9)


def test_scatter_cost_pays_atomic_factor():
    from repro.fused.embedding_grad_alltoall import _scatter_cost
    from repro.ops.embedding import embedding_wg_cost

    cfg = EmbeddingA2AConfig(**SMALL)
    sc = _scatter_cost(cfg, 1)
    fwd = embedding_wg_cost(cfg.pooling, cfg.dim)
    assert sc.bytes == pytest.approx(fwd.bytes * SCATTER_ATOMIC_FACTOR)
    assert sc.access == "gather"


def test_apply_tasks_gated_by_incoming_flags():
    """Every apply waits for its slice's gradRdy flag — the operator must
    still complete (no deadlock) and consume every flag exactly once."""
    cfg = EmbeddingA2AConfig(**SMALL)
    h = OpHarness(num_nodes=2, gpus_per_node=1)
    op = FusedEmbeddingGradAllToAll(h, cfg)
    h.run(op)
    for rank in range(2):
        assert op.flags[rank].all_set(rank)
