"""Tests for the fused GEMV + AllReduce operator."""

import numpy as np
import pytest

from repro.fused.base import OpHarness
from repro.fused.gemv_allreduce import (
    BaselineGemvAllReduce,
    FusedGemvAllReduce,
    GemvAllReduceConfig,
    make_gemv_inputs,
    reference_output,
)
from repro.sim import TraceRecorder

SMALL = dict(m=256, n_per_gpu=64, tile_rows=16)


def run_pair(gpus=4, **kw):
    cfg = GemvAllReduceConfig(**{**SMALL, **kw})
    h1 = OpHarness(num_nodes=1, gpus_per_node=gpus)
    fused = h1.run(FusedGemvAllReduce(h1, cfg))
    h2 = OpHarness(num_nodes=1, gpus_per_node=gpus)
    base = h2.run(BaselineGemvAllReduce(h2, cfg))
    return cfg, fused, base


# ---------------------------------------------------------------------------
# Functional correctness
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("gpus", [2, 4])
def test_fused_matches_reference(gpus):
    cfg, fused, base = run_pair(gpus=gpus)
    mats, vecs = make_gemv_inputs(cfg, gpus)
    ref = reference_output(mats, vecs)
    for r in range(gpus):
        np.testing.assert_allclose(fused.outputs[r], ref, rtol=1e-4)
        np.testing.assert_allclose(base.outputs[r], ref, rtol=1e-4)


def test_every_rank_gets_full_vector():
    cfg, fused, _ = run_pair()
    for r in range(1, 4):
        np.testing.assert_allclose(fused.outputs[r], fused.outputs[0],
                                   rtol=1e-6)


def test_fused_requires_single_node():
    cfg = GemvAllReduceConfig(**SMALL)
    h = OpHarness(num_nodes=2, gpus_per_node=2)
    with pytest.raises(ValueError, match="scale-up"):
        FusedGemvAllReduce(h, cfg)


def test_config_validation():
    with pytest.raises(ValueError, match="divisible"):
        GemvAllReduceConfig(m=100, n_per_gpu=64).validate(4)
    with pytest.raises(ValueError, match=">= 1"):
        GemvAllReduceConfig(m=0, n_per_gpu=64).validate(4)


def test_label_formatting():
    assert GemvAllReduceConfig(m=8192, n_per_gpu=2048).label == "8k|2k"
    assert GemvAllReduceConfig(m=100, n_per_gpu=64).label == "100|64"


# ---------------------------------------------------------------------------
# Timing behaviour (Fig. 9 shape)
# ---------------------------------------------------------------------------

def paper_norm(m, n_total, world=4):
    cfg = GemvAllReduceConfig(m=m, n_per_gpu=n_total // world,
                              functional=False)
    h1 = OpHarness(num_nodes=1, gpus_per_node=world)
    fused = h1.run(FusedGemvAllReduce(h1, cfg))
    h2 = OpHarness(num_nodes=1, gpus_per_node=world)
    base = h2.run(BaselineGemvAllReduce(h2, cfg))
    return fused.elapsed / base.elapsed


def test_fused_wins_at_paper_scale():
    assert paper_norm(8192, 8192) < 0.9  # paper: avg 13%, up to 22% lower


def test_benefit_shrinks_for_large_m():
    """Paper: the M=64k configurations benefit least (link contention /
    compute domination)."""
    assert paper_norm(8192, 8192) < paper_norm(65536, 8192)


def test_timing_only_matches_functional_time():
    times = {}
    for functional in (True, False):
        cfg = GemvAllReduceConfig(**{**SMALL, "functional": functional})
        h = OpHarness(num_nodes=1, gpus_per_node=4)
        times[functional] = h.run(FusedGemvAllReduce(h, cfg)).elapsed
    assert times[True] == pytest.approx(times[False], rel=1e-9)


def test_flags_gate_consumption():
    """The final vector must not be considered ready before every owner's
    finalRdy flag arrives; kernel end time reflects the slowest chunk."""
    cfg = GemvAllReduceConfig(**SMALL)
    trace = TraceRecorder()
    h = OpHarness(num_nodes=1, gpus_per_node=4, trace=trace)
    op = FusedGemvAllReduce(h, cfg)
    h.run(op)
    # All four final flags are set on every rank by completion.
    for r in range(4):
        assert op.final_rdy.all_set(r) or all(
            op.final_rdy.read(r, o) for o in range(4) if o != r)


def test_allgather_puts_traced():
    cfg = GemvAllReduceConfig(**SMALL)
    trace = TraceRecorder()
    h = OpHarness(num_nodes=1, gpus_per_node=4, trace=trace)
    h.run(FusedGemvAllReduce(h, cfg))
    ag = trace.filter(kind="put_issue",
                      predicate=lambda e: e.detail.get("phase") == "allgather")
    assert ag, "no all-gather stores traced"
    # Phase-A (reduce-scatter) stores must also exist and come first.
    rs = trace.filter(kind="put_issue",
                      predicate=lambda e: "phase" not in e.detail)
    assert rs and min(e.time for e in rs) < min(e.time for e in ag)


def test_comm_aware_issues_remote_tiles_first():
    cfg = GemvAllReduceConfig(**SMALL)
    trace = TraceRecorder()
    h = OpHarness(num_nodes=1, gpus_per_node=4, trace=trace)
    h.run(FusedGemvAllReduce(h, cfg))
    wg_starts = trace.filter(
        kind="wg_start",
        predicate=lambda e: e.actor.startswith("gpu0") and
        e.detail.get("phase") == "A")
    first = wg_starts[0]
    assert first.detail["remote"] is True
