"""Edge cases and cross-checks for the fused operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fused import (
    BaselineEmbeddingAllToAll,
    BaselineGemvAllReduce,
    EmbeddingA2AConfig,
    FusedEmbeddingAllToAll,
    FusedGemvAllReduce,
    GemvAllReduceConfig,
    OpHarness,
)
from repro.fused.embedding_alltoall import make_embedding_inputs, \
    reference_output


# ---------------------------------------------------------------------------
# Embedding + A2A edge cases
# ---------------------------------------------------------------------------

def test_single_table_per_gpu():
    cfg = EmbeddingA2AConfig(global_batch=32, tables_per_gpu=1, dim=8,
                             pooling=3, rows_per_table=20, slice_vectors=4)
    h = OpHarness(num_nodes=2, gpus_per_node=1)
    res = h.run(FusedEmbeddingAllToAll(h, cfg))
    tables, indices = make_embedding_inputs(cfg, 2)
    ref = reference_output(cfg, 2, tables, indices)
    np.testing.assert_allclose(res.outputs[0], ref[0], rtol=1e-5)


def test_slice_equals_local_batch():
    """One slice per (table, destination) stripe — the coarsest legal
    granularity."""
    cfg = EmbeddingA2AConfig(global_batch=32, tables_per_gpu=2, dim=8,
                             pooling=3, rows_per_table=20, slice_vectors=16)
    h = OpHarness(num_nodes=2, gpus_per_node=1)
    res = h.run(FusedEmbeddingAllToAll(h, cfg))
    tables, indices = make_embedding_inputs(cfg, 2)
    ref = reference_output(cfg, 2, tables, indices)
    np.testing.assert_allclose(res.outputs[1], ref[1], rtol=1e-5)


def test_pooling_of_one_row():
    cfg = EmbeddingA2AConfig(global_batch=16, tables_per_gpu=2, dim=4,
                             pooling=1, rows_per_table=10, slice_vectors=8)
    h = OpHarness(num_nodes=2, gpus_per_node=1)
    res = h.run(FusedEmbeddingAllToAll(h, cfg))
    assert res.outputs[0].shape == (8, 4, 4)


def test_zero_copy_flag_does_not_change_functional_result():
    outs = {}
    for zc in (True, False):
        cfg = EmbeddingA2AConfig(global_batch=32, tables_per_gpu=2, dim=8,
                                 pooling=3, rows_per_table=20,
                                 slice_vectors=8, zero_copy=zc)
        h = OpHarness(num_nodes=1, gpus_per_node=4)
        outs[zc] = h.run(FusedEmbeddingAllToAll(h, cfg)).outputs
    for a, b in zip(outs[True], outs[False]):
        np.testing.assert_array_equal(a, b)


def test_zero_copy_off_is_slower_intranode():
    times = {}
    for zc in (True, False):
        cfg = EmbeddingA2AConfig(global_batch=1024, tables_per_gpu=64,
                                 functional=False, zero_copy=zc)
        h = OpHarness(num_nodes=1, gpus_per_node=4)
        times[zc] = h.run(FusedEmbeddingAllToAll(h, cfg)).elapsed
    assert times[True] < times[False]


def test_zero_copy_irrelevant_internode():
    """Zero-copy only applies to same-node destinations; on a 2x1 cluster
    the flag must not change timing."""
    times = {}
    for zc in (True, False):
        cfg = EmbeddingA2AConfig(global_batch=256, tables_per_gpu=16,
                                 functional=False, zero_copy=zc)
        h = OpHarness(num_nodes=2, gpus_per_node=1)
        times[zc] = h.run(FusedEmbeddingAllToAll(h, cfg)).elapsed
    assert times[True] == pytest.approx(times[False], rel=1e-12)


def test_hybrid_cluster_two_nodes_two_gpus():
    """Mixed fabric + RDMA destinations in one kernel (2 nodes x 2 GPUs)."""
    cfg = EmbeddingA2AConfig(global_batch=64, tables_per_gpu=2, dim=8,
                             pooling=3, rows_per_table=20, slice_vectors=8)
    h = OpHarness(num_nodes=2, gpus_per_node=2)
    res = h.run(FusedEmbeddingAllToAll(h, cfg))
    tables, indices = make_embedding_inputs(cfg, 4)
    ref = reference_output(cfg, 4, tables, indices)
    for r in range(4):
        np.testing.assert_allclose(res.outputs[r], ref[r], rtol=1e-5)


@given(world_shape=st.sampled_from([(2, 1), (1, 2), (1, 4), (2, 2)]),
       tables=st.integers(1, 4), seed=st.integers(0, 1000))
@settings(max_examples=15, deadline=None)
def test_fused_equals_baseline_for_random_configs(world_shape, tables, seed):
    nodes, gpn = world_shape
    world = nodes * gpn
    cfg = EmbeddingA2AConfig(global_batch=16 * world, tables_per_gpu=tables,
                             dim=8, pooling=3, rows_per_table=25,
                             slice_vectors=8, seed=seed)
    h1 = OpHarness(num_nodes=nodes, gpus_per_node=gpn)
    fused = h1.run(FusedEmbeddingAllToAll(h1, cfg))
    h2 = OpHarness(num_nodes=nodes, gpus_per_node=gpn)
    base = h2.run(BaselineEmbeddingAllToAll(h2, cfg))
    for f, b in zip(fused.outputs, base.outputs):
        np.testing.assert_allclose(f, b, rtol=1e-5)


# ---------------------------------------------------------------------------
# GEMV + AllReduce edge cases
# ---------------------------------------------------------------------------

def test_gemv_two_gpus_minimum_chunking():
    cfg = GemvAllReduceConfig(m=64, n_per_gpu=16, tile_rows=16)
    h = OpHarness(num_nodes=1, gpus_per_node=2)
    res = h.run(FusedGemvAllReduce(h, cfg))
    from repro.fused.gemv_allreduce import make_gemv_inputs, reference_output

    mats, vecs = make_gemv_inputs(cfg, 2)
    ref = reference_output(mats, vecs)
    np.testing.assert_allclose(res.outputs[0], ref, rtol=1e-4)


def test_gemv_single_tile_per_chunk():
    cfg = GemvAllReduceConfig(m=64, n_per_gpu=8, tile_rows=16)
    h = OpHarness(num_nodes=1, gpus_per_node=4)
    res = h.run(FusedGemvAllReduce(h, cfg))
    assert res.outputs[0].shape == (64,)


@given(m_chunks=st.integers(1, 8), n=st.integers(8, 128),
       seed=st.integers(0, 500))
@settings(max_examples=15, deadline=None)
def test_gemv_fused_equals_baseline_random(m_chunks, n, seed):
    world = 4
    cfg = GemvAllReduceConfig(m=world * 16 * m_chunks, n_per_gpu=n,
                              tile_rows=16, seed=seed)
    h1 = OpHarness(num_nodes=1, gpus_per_node=world)
    fused = h1.run(FusedGemvAllReduce(h1, cfg))
    h2 = OpHarness(num_nodes=1, gpus_per_node=world)
    base = h2.run(BaselineGemvAllReduce(h2, cfg))
    for f, b in zip(fused.outputs, base.outputs):
        np.testing.assert_allclose(f, b, rtol=1e-3, atol=1e-4)


def test_oblivious_gemv_still_correct():
    cfg = GemvAllReduceConfig(m=128, n_per_gpu=32, tile_rows=16,
                              scheduler="oblivious")
    h = OpHarness(num_nodes=1, gpus_per_node=4)
    res = h.run(FusedGemvAllReduce(h, cfg))
    from repro.fused.gemv_allreduce import make_gemv_inputs, reference_output

    mats, vecs = make_gemv_inputs(cfg, 4)
    np.testing.assert_allclose(res.outputs[2], reference_output(mats, vecs),
                               rtol=1e-4)


def test_gemv_comm_aware_not_slower_than_oblivious():
    times = {}
    for sched in ("comm_aware", "oblivious"):
        cfg = GemvAllReduceConfig(m=16384, n_per_gpu=4096,
                                  functional=False, scheduler=sched)
        h = OpHarness(num_nodes=1, gpus_per_node=4)
        times[sched] = h.run(FusedGemvAllReduce(h, cfg)).elapsed
    assert times["comm_aware"] <= times["oblivious"] * (1 + 1e-9)
