"""Tests for the fused GEMM + All-to-All operator (Triton extension)."""

import numpy as np
import pytest

from repro.fused.base import OpHarness
from repro.fused.gemm_alltoall import (
    BaselineGemmAllToAll,
    FusedGemmAllToAll,
    GemmA2AConfig,
    make_gemm_inputs,
    reference_output,
)
from repro.sim import TraceRecorder

SMALL = dict(tokens=512, model_dim=128, ffn_dim=256, block_m=64, block_n=128)


@pytest.mark.parametrize("gpus", [2, 4])
def test_fused_matches_reference(gpus):
    cfg = GemmA2AConfig(**SMALL)
    h1 = OpHarness(1, gpus)
    fused = h1.run(FusedGemmAllToAll(h1, cfg))
    h2 = OpHarness(1, gpus)
    base = h2.run(BaselineGemmAllToAll(h2, cfg))
    acts, weights = make_gemm_inputs(cfg, gpus)
    ref = reference_output(cfg, gpus, acts, weights)
    for s in range(gpus):
        np.testing.assert_allclose(fused.outputs[s], ref[s], rtol=1e-4)
        np.testing.assert_allclose(base.outputs[s], ref[s], rtol=1e-4)


def test_functional_and_analytic_paths_time_identically():
    """The Triton execution path and the timing-only analytic mirror must
    be indistinguishable in simulated time."""
    times = {}
    for functional in (True, False):
        cfg = GemmA2AConfig(**{**SMALL, "functional": functional})
        h = OpHarness(1, 4)
        times[functional] = h.run(FusedGemmAllToAll(h, cfg)).elapsed
    assert times[True] == pytest.approx(times[False], rel=1e-12)


def test_fused_wins_at_paper_scale():
    cfg = GemmA2AConfig(tokens=4096, model_dim=4096, ffn_dim=8192,
                        functional=False)
    h1 = OpHarness(1, 4)
    fused = h1.run(FusedGemmAllToAll(h1, cfg))
    h2 = OpHarness(1, 4)
    base = h2.run(BaselineGemmAllToAll(h2, cfg))
    norm = fused.normalized_to(base)
    assert 0.75 < norm < 1.0  # paper: 12% avg, up to 20% lower


def test_gemm_dominates_fused_runtime():
    """Paper Fig. 10: the (generic) GEMM dominates, limiting the benefit —
    the win must be smaller than the embedding operator's."""
    cfg = GemmA2AConfig(tokens=8192, model_dim=4096, ffn_dim=8192,
                        functional=False)
    h1 = OpHarness(1, 4)
    fused = h1.run(FusedGemmAllToAll(h1, cfg))
    h2 = OpHarness(1, 4)
    base = h2.run(BaselineGemmAllToAll(h2, cfg))
    assert fused.normalized_to(base) > 0.85


def test_tile_destination_mapping():
    cfg = GemmA2AConfig(**SMALL)
    h = OpHarness(1, 4)
    op = FusedGemmAllToAll(h, cfg)
    tasks = op._build_tasks(0)
    tps = cfg.tokens_per_src(4)
    for t in tasks:
        pid_m, _pid_n = t.meta["grid_pos"]
        assert t.meta["dest"] == (pid_m * cfg.block_m) // tps
        assert t.meta["remote"] == (t.meta["dest"] != 0)


def test_comm_aware_order_by_default():
    cfg = GemmA2AConfig(**SMALL)
    h = OpHarness(1, 4)
    op = FusedGemmAllToAll(h, cfg)
    tasks = op._build_tasks(1)
    seen_local = False
    for t in tasks:
        if not t.meta["remote"]:
            seen_local = True
        else:
            assert not seen_local, "remote tile scheduled after local"


def test_flags_set_once_per_source():
    cfg = GemmA2AConfig(**SMALL)
    h = OpHarness(1, 4)
    op = FusedGemmAllToAll(h, cfg)
    h.run(op)
    for dst in range(4):
        for src in range(4):
            assert op.tile_rdy.read(dst, src) == 1


def test_put_issue_traced_mid_kernel():
    cfg = GemmA2AConfig(**SMALL)
    trace = TraceRecorder()
    h = OpHarness(1, 4, trace=trace)
    h.run(FusedGemmAllToAll(h, cfg))
    puts = trace.filter(kind="put_issue")
    assert puts
    [k0] = [s for s in trace.spans("kernel")
            if s.detail.get("kernel") == "fused_gemm_a2a[0]"]
    gpu0_puts = [p for p in puts if p.actor.startswith("gpu0/")]
    assert all(k0.start < p.time <= k0.end for p in gpu0_puts)


def test_validation():
    with pytest.raises(ValueError, match="divide"):
        GemmA2AConfig(tokens=100, model_dim=64, ffn_dim=128).validate(4)
    with pytest.raises(ValueError, match="block_n"):
        GemmA2AConfig(tokens=512, model_dim=64, ffn_dim=100).validate(4)
    with pytest.raises(ValueError, match="scale-up"):
        FusedGemmAllToAll(OpHarness(2, 1), GemmA2AConfig(**SMALL))


def test_label():
    assert GemmA2AConfig(tokens=4096, model_dim=4096,
                         ffn_dim=14336).label == "4k|4k|14k"
