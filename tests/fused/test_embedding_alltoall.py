"""Tests for the fused embedding + All-to-All operator."""

import numpy as np
import pytest

from repro.fused.base import OpHarness
from repro.fused.embedding_alltoall import (
    BaselineEmbeddingAllToAll,
    EmbeddingA2AConfig,
    FusedEmbeddingAllToAll,
    make_embedding_inputs,
    reference_output,
)
from repro.sim import TraceRecorder

SMALL = dict(global_batch=64, tables_per_gpu=4, dim=16, pooling=5,
             rows_per_table=50, slice_vectors=8)


def run_pair(num_nodes, gpus_per_node, **kw):
    cfg = EmbeddingA2AConfig(**{**SMALL, **kw})
    h1 = OpHarness(num_nodes=num_nodes, gpus_per_node=gpus_per_node)
    fused = h1.run(FusedEmbeddingAllToAll(h1, cfg))
    h2 = OpHarness(num_nodes=num_nodes, gpus_per_node=gpus_per_node)
    base = h2.run(BaselineEmbeddingAllToAll(h2, cfg))
    return cfg, fused, base


# ---------------------------------------------------------------------------
# Functional correctness
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("nodes,gpn", [(2, 1), (1, 4), (2, 2)])
def test_fused_matches_reference(nodes, gpn):
    cfg, fused, base = run_pair(nodes, gpn)
    world = nodes * gpn
    tables, indices = make_embedding_inputs(cfg, world)
    ref = reference_output(cfg, world, tables, indices)
    for r in range(world):
        np.testing.assert_allclose(fused.outputs[r], ref[r], rtol=1e-5)
        np.testing.assert_allclose(base.outputs[r], ref[r], rtol=1e-5)


def test_fused_equals_baseline_bitwise_layout():
    """Fused and baseline produce the same output tensor layout."""
    cfg, fused, base = run_pair(2, 1)
    for f, b in zip(fused.outputs, base.outputs):
        assert f.shape == b.shape
        np.testing.assert_allclose(f, b, rtol=1e-5)


def test_mean_pooling_mode():
    cfg, fused, base = run_pair(2, 1, pooling_mode="mean")
    world = 2
    tables, indices = make_embedding_inputs(cfg, world)
    ref = reference_output(cfg, world, tables, indices)
    np.testing.assert_allclose(fused.outputs[0], ref[0], rtol=1e-5)


# ---------------------------------------------------------------------------
# Timing behaviour
# ---------------------------------------------------------------------------

def test_fused_beats_baseline_at_paper_scale_internode():
    cfg = EmbeddingA2AConfig(global_batch=1024, tables_per_gpu=64,
                             functional=False)
    h1 = OpHarness(num_nodes=2, gpus_per_node=1)
    fused = h1.run(FusedEmbeddingAllToAll(h1, cfg))
    h2 = OpHarness(num_nodes=2, gpus_per_node=1)
    base = h2.run(BaselineEmbeddingAllToAll(h2, cfg))
    norm = fused.normalized_to(base)
    assert norm < 0.9  # the paper reports 0.69 average inter-node


def test_fused_beats_baseline_at_paper_scale_intranode():
    cfg = EmbeddingA2AConfig(global_batch=512, tables_per_gpu=64,
                             functional=False)
    h1 = OpHarness(num_nodes=1, gpus_per_node=4)
    fused = h1.run(FusedEmbeddingAllToAll(h1, cfg))
    h2 = OpHarness(num_nodes=1, gpus_per_node=4)
    base = h2.run(BaselineEmbeddingAllToAll(h2, cfg))
    assert fused.normalized_to(base) < 1.0


def test_smaller_batch_gives_bigger_internode_win():
    """Paper Fig. 12: poor baseline utilization at small global batch."""
    norms = {}
    for batch in (256, 2048):
        cfg = EmbeddingA2AConfig(global_batch=batch, tables_per_gpu=64,
                                 functional=False)
        h1 = OpHarness(num_nodes=2, gpus_per_node=1)
        fused = h1.run(FusedEmbeddingAllToAll(h1, cfg))
        h2 = OpHarness(num_nodes=2, gpus_per_node=1)
        base = h2.run(BaselineEmbeddingAllToAll(h2, cfg))
        norms[batch] = fused.normalized_to(base)
    assert norms[256] < norms[2048]


def test_timing_only_matches_functional_time():
    """functional=False must not change simulated time."""
    times = {}
    for functional in (True, False):
        cfg = EmbeddingA2AConfig(**{**SMALL, "functional": functional})
        h = OpHarness(num_nodes=2, gpus_per_node=1)
        times[functional] = h.run(FusedEmbeddingAllToAll(h, cfg)).elapsed
    assert times[True] == pytest.approx(times[False], rel=1e-9)


def test_fused_occupancy_is_87_5_pct():
    """At paper scale the fused kernel launches at its 87.5% maximum
    (12.5% below baseline, from the extra communication registers)."""
    cfg = EmbeddingA2AConfig(global_batch=1024, tables_per_gpu=256,
                             functional=False)
    h = OpHarness(num_nodes=2, gpus_per_node=1)
    res = h.run(FusedEmbeddingAllToAll(h, cfg))
    assert res.stats["occupancy"] == pytest.approx(0.875)


# ---------------------------------------------------------------------------
# Occupancy knob (Fig. 13)
# ---------------------------------------------------------------------------

def test_occupancy_sweep_u_shape():
    """25% -> 75% improves execution time; 75% -> 87.5% degrades it."""
    times = {}
    for frac in (0.25, 0.75, 0.875):
        cfg = EmbeddingA2AConfig(global_batch=1024, tables_per_gpu=64,
                                 functional=False,
                                 occupancy_of_baseline=frac)
        h = OpHarness(num_nodes=2, gpus_per_node=1)
        times[frac] = h.run(FusedEmbeddingAllToAll(h, cfg)).elapsed
    assert times[0.75] < times[0.25]
    assert times[0.875] > times[0.75]


def test_occupancy_knob_rejects_unreachable_fraction():
    cfg = EmbeddingA2AConfig(**{**SMALL, "occupancy_of_baseline": 0.95})
    h = OpHarness(num_nodes=2, gpus_per_node=1)
    with pytest.raises(ValueError, match="exceeds"):
        h.run(FusedEmbeddingAllToAll(h, cfg))


# ---------------------------------------------------------------------------
# Scheduling (Fig. 14)
# ---------------------------------------------------------------------------

def test_comm_aware_scheduling_reduces_skew():
    skews = {}
    for sched in ("comm_aware", "oblivious"):
        cfg = EmbeddingA2AConfig(global_batch=2048, tables_per_gpu=32,
                                 functional=False, scheduler=sched)
        h = OpHarness(num_nodes=2, gpus_per_node=1)
        res = h.run(FusedEmbeddingAllToAll(h, cfg))
        ends = res.stats["rank_end_times"]
        skews[sched] = abs(ends[0] - ends[1]) / max(ends.values())
    assert skews["comm_aware"] < skews["oblivious"]


# ---------------------------------------------------------------------------
# Tracing (Fig. 11)
# ---------------------------------------------------------------------------

def test_puts_are_issued_mid_kernel():
    """Remote PUTs must be issued while the kernel is still computing —
    the fine-grained overlap the paper profiles in Fig. 11."""
    cfg = EmbeddingA2AConfig(**SMALL)
    trace = TraceRecorder()
    h = OpHarness(num_nodes=2, gpus_per_node=1, trace=trace)
    h.run(FusedEmbeddingAllToAll(h, cfg))
    [k0] = [s for s in trace.spans("kernel")
            if s.detail.get("kernel") == "fused_emb_a2a[0]"]
    puts = trace.filter(kind="put_issue",
                        predicate=lambda e: e.actor.startswith("gpu0"))
    assert puts, "no remote puts traced"
    # All puts happen strictly inside the kernel span, before its end.
    assert all(k0.start < p.time < k0.end for p in puts)
    # With comm-aware scheduling the first put comes in the first half.
    assert min(p.time for p in puts) < (k0.start + k0.end) / 2


def test_wait_spans_recorded_for_epilogue():
    cfg = EmbeddingA2AConfig(**SMALL)
    trace = TraceRecorder()
    h = OpHarness(num_nodes=2, gpus_per_node=1, trace=trace)
    h.run(FusedEmbeddingAllToAll(h, cfg))
    assert trace.spans("wait"), "epilogue waits not traced"


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------

def test_config_validation():
    h = OpHarness(num_nodes=2, gpus_per_node=1)
    with pytest.raises(ValueError, match="divisible by"):
        FusedEmbeddingAllToAll(h, EmbeddingA2AConfig(
            global_batch=63, tables_per_gpu=4))
    with pytest.raises(ValueError, match="slice_vectors"):
        FusedEmbeddingAllToAll(OpHarness(2, 1), EmbeddingA2AConfig(
            global_batch=64, tables_per_gpu=4, slice_vectors=7))
    with pytest.raises(ValueError, match="pooling mode"):
        FusedEmbeddingAllToAll(OpHarness(2, 1), EmbeddingA2AConfig(
            global_batch=64, tables_per_gpu=4, slice_vectors=8,
            pooling_mode="max"))
    with pytest.raises(ValueError, match="tasks_per_slice"):
        EmbeddingA2AConfig(global_batch=64, tables_per_gpu=4,
                           slice_vectors=8, tasks_per_slice=3).validate(2)
