"""Tests for scheduling policies, WG-done bitmask, and occupancy helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import MI210, Gpu, KernelResources, WgCost
from repro.kernels import (
    WgDoneBitmask,
    WgTask,
    comm_aware_order,
    get_scheduler,
    max_active_wgs,
    oblivious_order,
    occupancy_sweep_points,
    suggest_grid,
)
from repro.sim import Simulator


def make_tasks(pattern):
    """pattern: string of 'R'/'L' -> remote/local tasks in order."""
    return [WgTask(task_id=i, cost=WgCost(bytes=1.0),
                   meta={"remote": ch == "R"})
            for i, ch in enumerate(pattern)]


# ---------------------------------------------------------------------------
# Schedulers
# ---------------------------------------------------------------------------

def test_oblivious_preserves_order():
    tasks = make_tasks("LRLR")
    assert [t.task_id for t in oblivious_order(tasks)] == [0, 1, 2, 3]


def test_comm_aware_puts_remote_first():
    tasks = make_tasks("LRLR")
    assert [t.task_id for t in comm_aware_order(tasks)] == [1, 3, 0, 2]


def test_comm_aware_is_stable_within_groups():
    tasks = make_tasks("RRLLRR")
    ordered = comm_aware_order(tasks)
    remote_ids = [t.task_id for t in ordered if t.is_remote]
    local_ids = [t.task_id for t in ordered if not t.is_remote]
    assert remote_ids == [0, 1, 4, 5]
    assert local_ids == [2, 3]


def test_get_scheduler():
    assert get_scheduler("comm_aware") is comm_aware_order
    assert get_scheduler("oblivious") is oblivious_order
    with pytest.raises(KeyError):
        get_scheduler("bogus")


@given(st.lists(st.booleans(), min_size=1, max_size=50))
def test_comm_aware_is_a_permutation(flags):
    tasks = [WgTask(task_id=i, cost=WgCost(bytes=1.0), meta={"remote": f})
             for i, f in enumerate(flags)]
    ordered = comm_aware_order(tasks)
    assert sorted(t.task_id for t in ordered) == list(range(len(flags)))
    # No local task may precede any remote task.
    seen_local = False
    for t in ordered:
        if not t.is_remote:
            seen_local = True
        elif seen_local:
            pytest.fail("remote task after a local task")


# ---------------------------------------------------------------------------
# WG-done bitmask
# ---------------------------------------------------------------------------

def test_bitmask_last_wg_detection():
    bm = WgDoneBitmask()
    bm.register(0, n_wgs=3)
    assert bm.set_done(0, 0) is False
    assert bm.set_done(0, 2) is False
    assert bm.set_done(0, 1) is True
    assert bm.is_complete(0)


def test_bitmask_single_wg_slice():
    bm = WgDoneBitmask()
    bm.register(5, n_wgs=1)
    assert bm.set_done(5, 0) is True


def test_bitmask_double_completion_rejected():
    bm = WgDoneBitmask()
    bm.register(0, 2)
    bm.set_done(0, 1)
    with pytest.raises(ValueError, match="twice"):
        bm.set_done(0, 1)


def test_bitmask_validation():
    bm = WgDoneBitmask()
    with pytest.raises(ValueError):
        bm.register(0, 0)
    bm.register(0, 2)
    with pytest.raises(ValueError):
        bm.register(0, 2)
    with pytest.raises(KeyError):
        bm.set_done(1, 0)
    with pytest.raises(ValueError):
        bm.set_done(0, 5)


def test_bitmask_pending_slices():
    bm = WgDoneBitmask()
    bm.register(0, 1)
    bm.register(1, 2)
    bm.set_done(0, 0)
    assert bm.pending_slices() == [1]
    assert len(bm) == 2


@given(n_wgs=st.integers(1, 32), data=st.data())
@settings(max_examples=50)
def test_bitmask_exactly_one_last_wg(n_wgs, data):
    """For any completion order there is exactly one 'last' WG."""
    order = data.draw(st.permutations(range(n_wgs)))
    bm = WgDoneBitmask()
    bm.register(0, n_wgs)
    lasts = [bm.set_done(0, i) for i in order]
    assert sum(lasts) == 1
    assert lasts[-1] is True


# ---------------------------------------------------------------------------
# Occupancy helpers
# ---------------------------------------------------------------------------

def test_max_active_wgs_matches_gpu():
    gpu = Gpu(Simulator(), MI210, gpu_id=0)
    res = KernelResources(256, 64)
    assert max_active_wgs(gpu, res) == gpu.occupancy(res).resident_wgs


def test_suggest_grid_fraction():
    gpu = Gpu(Simulator(), MI210, gpu_id=0)
    res = KernelResources(256, 64)
    full = suggest_grid(gpu, res, 1.0)
    half = suggest_grid(gpu, res, 0.5)
    assert half.resident_wgs == full.resident_wgs // 2
    with pytest.raises(ValueError):
        suggest_grid(gpu, res, 0.0)


def test_occupancy_sweep_points_match_fig13():
    pts = occupancy_sweep_points()
    assert pts == pytest.approx([0.875 / 6 * i for i in range(1, 7)])
    assert pts[-1] == pytest.approx(0.875)
    with pytest.raises(ValueError):
        occupancy_sweep_points(steps=1)
    with pytest.raises(ValueError):
        occupancy_sweep_points(max_fraction=0.0)
