"""Property-based tests and failure injection for the kernel runtime."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import MI210, Gpu, KernelResources, WgCost
from repro.kernels import (
    PersistentKernel,
    WgTask,
    bulk_kernel_time,
    comm_aware_order,
    make_uniform_tasks,
)
from repro.sim import SimulationError, Simulator

RES = KernelResources(threads_per_wg=256, vgprs_per_thread=64)


def run_kernel_on_fresh_gpu(tasks, **kw):
    gpu = Gpu(Simulator(), MI210, gpu_id=0)
    kern = PersistentKernel(gpu, RES, tasks, **kw)
    proc = kern.launch()
    gpu.sim.run()
    assert proc.ok
    return gpu.sim.now, kern


# ---------------------------------------------------------------------------
# Makespan bounds (work conservation)
# ---------------------------------------------------------------------------

@given(n_tasks=st.integers(1, 3000),
       kbytes=st.integers(1, 200))
@settings(max_examples=30, deadline=None)
def test_makespan_bounds(n_tasks, kbytes):
    """launch + total_work/slots <= makespan <= launch + ceil-rounds work."""
    cost = WgCost(bytes=kbytes * 1024.0)
    end, kern = run_kernel_on_fresh_gpu(make_uniform_tasks(n_tasks, cost))
    gpu = Gpu(Simulator(), MI210, gpu_id=0)
    per = (gpu.wg_duration(cost, kern.occupancy)
           + MI210.wg_dispatch_overhead)
    lower = MI210.kernel_launch_overhead + (n_tasks / kern.n_slots) * per
    upper = MI210.kernel_launch_overhead + (-(-n_tasks // kern.n_slots)) * per
    assert lower - 1e-12 <= end <= upper + 1e-12


@given(n_tasks=st.integers(1, 500), frac=st.floats(0.05, 1.0))
@settings(max_examples=30, deadline=None)
def test_occupancy_limit_never_exceeds_request(n_tasks, frac):
    gpu = Gpu(Simulator(), MI210, gpu_id=0)
    kern = PersistentKernel(gpu, RES,
                            make_uniform_tasks(n_tasks, WgCost(bytes=1e3)),
                            occupancy_limit=frac)
    max_resident = gpu.occupancy(RES).resident_wgs
    assert kern.occupancy.resident_wgs <= max(1, round(max_resident * frac))


@given(flags=st.lists(st.booleans(), min_size=1, max_size=40),
       seed=st.integers(0, 100))
@settings(max_examples=30, deadline=None)
def test_scheduler_does_not_change_total_time_for_uniform_tasks(flags, seed):
    """Reordering uniform tasks cannot change the compute makespan (it
    only changes *when* communication is issued)."""
    cost = WgCost(bytes=5e4)

    def build():
        return [WgTask(task_id=i, cost=cost, meta={"remote": f})
                for i, f in enumerate(flags)]

    t_natural, _ = run_kernel_on_fresh_gpu(build())
    t_aware, _ = run_kernel_on_fresh_gpu(comm_aware_order(build()))
    assert t_natural == pytest.approx(t_aware)


# ---------------------------------------------------------------------------
# bulk_kernel_time properties
# ---------------------------------------------------------------------------

@given(n=st.integers(1, 50_000))
@settings(max_examples=50, deadline=None)
def test_bulk_kernel_time_monotone_in_grid(n):
    gpu = Gpu(Simulator(), MI210, gpu_id=0)
    cost = WgCost(bytes=1e4)
    t_n = bulk_kernel_time(gpu, n, cost, RES)
    t_n1 = bulk_kernel_time(gpu, n + 1, cost, RES)
    assert t_n1 >= t_n - 1e-15


@given(n=st.integers(1, 10_000), kb=st.integers(1, 100))
@settings(max_examples=30, deadline=None)
def test_bulk_kernel_time_at_least_roofline(n, kb):
    """No kernel beats total-bytes / peak-bandwidth + launch."""
    gpu = Gpu(Simulator(), MI210, gpu_id=0)
    cost = WgCost(bytes=kb * 1024.0)
    t = bulk_kernel_time(gpu, n, cost, RES)
    floor = (MI210.kernel_launch_overhead
             + n * cost.bytes / MI210.hbm_bandwidth)
    assert t >= floor - 1e-15


def test_bulk_kernel_time_validates():
    gpu = Gpu(Simulator(), MI210, gpu_id=0)
    with pytest.raises(ValueError):
        bulk_kernel_time(gpu, 0, WgCost(bytes=1.0), RES)


# ---------------------------------------------------------------------------
# Failure injection
# ---------------------------------------------------------------------------

def test_exception_in_compute_fails_kernel_process():
    def boom():
        raise RuntimeError("compute exploded")

    gpu = Gpu(Simulator(), MI210, gpu_id=0)
    tasks = [WgTask(task_id=0, cost=WgCost(bytes=1e3), compute=boom)]
    kern = PersistentKernel(gpu, RES, tasks)
    proc = kern.launch()
    gpu.sim.run()
    assert proc.triggered and not proc.ok
    with pytest.raises(RuntimeError, match="compute exploded"):
        raise proc._value


def test_exception_in_hook_fails_kernel_process():
    def bad_hook(ctx, task):
        raise KeyError("hook exploded")

    gpu = Gpu(Simulator(), MI210, gpu_id=0)
    tasks = [WgTask(task_id=0, cost=WgCost(bytes=1e3), on_complete=bad_hook)]
    kern = PersistentKernel(gpu, RES, tasks)
    proc = kern.launch()
    gpu.sim.run()
    assert proc.triggered and not proc.ok


def test_epilogue_waiting_on_never_set_flag_deadlocks_cleanly():
    """A fused kernel whose sliceRdy flag never arrives must surface as a
    deadlock, not hang or silently complete."""
    from repro.comm import Communicator
    from repro.hw import build_cluster

    sim = Simulator()
    cluster = build_cluster(sim, num_nodes=2, gpus_per_node=1)
    comm = Communicator(cluster)
    flags = comm.alloc_flags(1)

    def epilogue(ctx):
        yield flags.wait_until(0, 0)  # nobody ever sets it

    kern = PersistentKernel(cluster.gpu(0), RES,
                            make_uniform_tasks(4, WgCost(bytes=1e3)),
                            epilogue=epilogue)

    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_process(kern.run())


def test_negative_charge_rejected():
    from repro.kernels.grid import SlotContext
    from repro.sim import TraceRecorder

    gpu = Gpu(Simulator(), MI210, gpu_id=0)
    kern = PersistentKernel(gpu, RES,
                            make_uniform_tasks(1, WgCost(bytes=1e3)))
    ctx = SlotContext(gpu.sim, gpu, kern, slot_id=0,
                      occupancy=kern.occupancy, trace=TraceRecorder())
    with pytest.raises(ValueError):
        ctx.charge(-1.0)
