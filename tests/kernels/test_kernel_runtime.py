"""Tests for the persistent-kernel runtime."""

import numpy as np
import pytest

from repro.hw import MI210, Gpu, KernelResources, WgCost
from repro.kernels import PersistentKernel, WgTask, make_uniform_tasks, run_kernel
from repro.sim import Simulator, TraceRecorder

RES = KernelResources(threads_per_wg=256, vgprs_per_thread=64)


@pytest.fixture
def gpu():
    return Gpu(Simulator(), MI210, gpu_id=0, trace=TraceRecorder())


def launch_and_time(gpu, kernel):
    proc = kernel.launch()
    gpu.sim.run()
    assert proc.ok
    return gpu.sim.now


def test_single_task_time(gpu):
    cost = WgCost(bytes=1e6)
    kern = PersistentKernel(gpu, RES, make_uniform_tasks(1, cost))
    end = launch_and_time(gpu, kern)
    expected = (MI210.kernel_launch_overhead
                + gpu.wg_duration(cost, kern.occupancy)
                + MI210.wg_dispatch_overhead)
    assert end == pytest.approx(expected)


def test_tasks_fill_slots_in_parallel(gpu):
    """At a fixed grid, n_resident tasks take one round; +1 takes two."""
    cost = WgCost(bytes=1e5)
    occ = gpu.occupancy(RES)
    k1 = PersistentKernel(gpu, RES, make_uniform_tasks(occ.resident_wgs, cost),
                          occupancy_limit=1.0)
    t1 = launch_and_time(gpu, k1)

    gpu2 = Gpu(Simulator(), MI210, gpu_id=0)
    k2 = PersistentKernel(gpu2, RES,
                          make_uniform_tasks(occ.resident_wgs + 1, cost),
                          occupancy_limit=1.0)
    t2 = launch_and_time(gpu2, k2)
    wg_t = gpu.wg_duration(cost, k1.occupancy) + MI210.wg_dispatch_overhead
    assert t2 == pytest.approx(t1 + wg_t)


def test_balanced_grid_avoids_idle_tail(gpu):
    """Without an explicit limit, a short task loop launches a grid that
    divides tasks into whole rounds (resident+1 tasks -> 2 even rounds)."""
    cost = WgCost(bytes=1e5)
    occ = gpu.occupancy(RES)
    n = occ.resident_wgs + 1
    kern = PersistentKernel(gpu, RES, make_uniform_tasks(n, cost))
    assert kern.n_slots == -(-n // 2)  # ceil(n/2): two balanced rounds
    assert kern.occupancy.resident_wgs == kern.n_slots


def test_long_task_loops_launch_at_full_occupancy(gpu):
    cost = WgCost(bytes=1e5)
    occ = gpu.occupancy(RES)
    n = occ.resident_wgs * 20 + 5  # 21 rounds > balancing threshold
    kern = PersistentKernel(gpu, RES, make_uniform_tasks(n, cost))
    assert kern.n_slots == occ.resident_wgs
    assert kern.occupancy.fraction == pytest.approx(occ.fraction)


def test_repeat_folds_logical_wgs(gpu):
    cost = WgCost(bytes=1e5)
    kern = PersistentKernel(
        gpu, RES, [WgTask(task_id=0, cost=cost, repeat=5)])
    end = launch_and_time(gpu, kern)
    per = gpu.wg_duration(cost, kern.occupancy) + MI210.wg_dispatch_overhead
    assert end == pytest.approx(MI210.kernel_launch_overhead + 5 * per)


def test_compute_callable_runs_exactly_once(gpu):
    counter = {"n": 0}

    def bump():
        counter["n"] += 1

    tasks = [WgTask(task_id=i, cost=WgCost(bytes=1e4), compute=bump)
             for i in range(10)]
    launch_and_time(gpu, PersistentKernel(gpu, RES, tasks))
    assert counter["n"] == 10


def test_on_complete_hook_runs_after_task_time(gpu):
    seen = {}

    def hook(ctx, task):
        seen["t"] = ctx.sim.now
        seen["task"] = task.task_id
        return None

    cost = WgCost(bytes=1e6)
    tasks = [WgTask(task_id=7, cost=cost, on_complete=hook)]
    kern = PersistentKernel(gpu, RES, tasks)
    launch_and_time(gpu, kern)
    assert seen["task"] == 7
    assert seen["t"] >= MI210.kernel_launch_overhead


def test_hook_generator_blocks_only_its_slot(gpu):
    """A blocking hook on one task must not delay other slots' tasks."""
    sim = gpu.sim
    gate = sim.event()
    log = []

    def blocking_hook(ctx, task):
        yield gate
        log.append(("blocked_done", sim.now))

    def release(sim):
        yield sim.timeout(1.0)
        gate.succeed()

    cost = WgCost(bytes=1e4)
    tasks = [WgTask(0, cost, on_complete=blocking_hook)] + \
            [WgTask(i, cost) for i in range(1, 50)]
    kern = PersistentKernel(gpu, RES, tasks)
    sim.process(release(sim))
    end = launch_and_time(gpu, kern)
    # Kernel ends when the gated slot finishes at t=1.0; others were done
    # long before (they did not wait for the gate).
    assert end == pytest.approx(1.0)
    assert log[0][1] == pytest.approx(1.0)


def test_epilogue_runs_per_slot(gpu):
    calls = []

    def epilogue(ctx):
        calls.append(ctx.slot_id)
        return None
        yield  # pragma: no cover

    tasks = make_uniform_tasks(5, WgCost(bytes=1e4))
    kern = PersistentKernel(gpu, RES, tasks, epilogue=epilogue)
    launch_and_time(gpu, kern)
    assert sorted(calls) == list(range(kern.n_slots))


def test_occupancy_limit_shrinks_slots(gpu):
    tasks = make_uniform_tasks(2000, WgCost(bytes=1e4))
    full = PersistentKernel(gpu, RES, tasks, occupancy_limit=1.0)
    half = PersistentKernel(gpu, RES, tasks, occupancy_limit=0.5)
    assert half.n_slots == full.n_slots // 2
    assert half.occupancy.fraction == pytest.approx(
        full.occupancy.fraction / 2)


def test_occupancy_limit_validation(gpu):
    tasks = make_uniform_tasks(1, WgCost(bytes=1e4))
    with pytest.raises(ValueError):
        PersistentKernel(gpu, RES, tasks, occupancy_limit=0.0)
    with pytest.raises(ValueError):
        PersistentKernel(gpu, RES, tasks, occupancy_limit=1.5)


def test_empty_task_list_rejected(gpu):
    with pytest.raises(ValueError):
        PersistentKernel(gpu, RES, [])


def test_trace_records_kernel_and_wgs(gpu):
    tasks = make_uniform_tasks(3, WgCost(bytes=1e4))
    kern = PersistentKernel(gpu, RES, tasks, name="k")
    launch_and_time(gpu, kern)
    tr = gpu.trace
    assert len(tr.filter(kind="kernel_launch")) == 1
    assert len(tr.filter(kind="wg_start")) == 3
    assert len(tr.filter(kind="wg_end")) == 3
    [kspan] = tr.spans("kernel")
    assert kspan.end == gpu.sim.now


def test_run_kernel_convenience(gpu):
    def proc(sim):
        yield from run_kernel(gpu, RES, make_uniform_tasks(4, WgCost(bytes=1e4)),
                              name="plain")
        return sim.now

    end = gpu.sim.run_process(proc(gpu.sim))
    assert end > MI210.kernel_launch_overhead


def test_compute_time_estimate_matches_uniform_run(gpu):
    import math

    n, cost = 1000, WgCost(bytes=2e4)
    tasks = make_uniform_tasks(n, cost)
    kern = PersistentKernel(gpu, RES, tasks)
    est = kern.compute_time_estimate()
    end = launch_and_time(gpu, kern)
    wg_t = gpu.wg_duration(cost, kern.occupancy) + MI210.wg_dispatch_overhead
    rounds = math.ceil(n / kern.n_slots)
    # Actual run quantizes to whole rounds of resident WGs.
    assert end == pytest.approx(MI210.kernel_launch_overhead + rounds * wg_t)
    # The smooth estimate is a lower bound within one round of the actual.
    assert est <= end + 1e-12
    assert end - est <= wg_t + 1e-12
