"""CLI surface of ``python -m repro lint``: exit codes, JSON schema, golden."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.experiments.cli import main
from repro.lint.cli import FINDINGS_SCHEMA

FIXTURE = Path(__file__).parent / "fixtures" / "tree"
GOLDEN = Path(__file__).parent / "data" / "golden_findings.json"


def test_exit_zero_on_clean_real_tree():
    assert main(["lint"]) == 0


def test_exit_one_on_fixture_findings(capsys):
    assert main(["lint", "--root", str(FIXTURE),
                 "--rules", "determinism"]) == 1
    captured = capsys.readouterr()
    assert "src/repro/util.py" in captured.out
    assert "[determinism]" in captured.out
    assert "9 findings" in captured.err


def test_exit_two_on_unknown_rule(capsys):
    assert main(["lint", "--rules", "no-such-rule"]) == 2
    assert "unknown lint rule" in capsys.readouterr().err


def test_exit_two_on_missing_tree(tmp_path, capsys):
    assert main(["lint", "--root", str(tmp_path)]) == 2
    assert "no src/repro package" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("determinism", "hot-path-guards", "layering",
                 "mirror-parity", "param-compat", "registry-integrity"):
        assert rule in out


def test_json_document_schema(capsys):
    assert main(["lint", "--json", "--root", str(FIXTURE),
                 "--rules", "determinism,layering"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == FINDINGS_SCHEMA
    assert doc["rules"] == ["determinism", "layering"]
    assert doc["count"] == len(doc["findings"]) == 11
    for f in doc["findings"]:
        assert set(f) == {"file", "line", "rule", "message"}
        assert not Path(f["file"]).is_absolute()
    assert doc["findings"] == sorted(
        doc["findings"],
        key=lambda f: (f["file"], f["line"], f["rule"], f["message"]))


def test_json_matches_golden(capsys):
    """The committed golden file pins the findings document byte-for-byte
    (minus the machine-specific root path)."""
    assert main(["lint", "--json", "--root", str(FIXTURE),
                 "--rules", "determinism"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert Path(doc.pop("root")) == FIXTURE.resolve()
    assert doc == json.loads(GOLDEN.read_text(encoding="utf-8"))


def test_module_entrypoint_subprocess():
    root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(root / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--json"],
        capture_output=True, text=True, env=env, cwd=str(root))
    assert proc.returncode == 0, proc.stderr
    doc = json.loads(proc.stdout)
    assert doc["schema"] == FINDINGS_SCHEMA
    assert doc["count"] == 0
