"""Meta-gates: the real tree is lint-clean and the manifest is in sync.

These are the tests that make the linter *binding*: adding a determinism
hazard, an unguarded hot-loop metrics call, or an unblessed batch-twin
edit anywhere in ``src/repro`` fails the suite, not just CI's lint step.
"""

from repro.lint import RULES, run_lint
from repro.lint.core import detect_root


def test_detect_root_finds_this_repo():
    root = detect_root()
    assert (root / "src" / "repro" / "lint" / "core.py").is_file()
    assert (root / "ROADMAP.md").is_file()


def test_real_tree_is_clean():
    findings, _ = run_lint()
    assert findings == [], "\n".join(f.render() for f in findings)


def test_mirror_manifest_is_current():
    # Isolated from the full run so a failure names the actual problem:
    # someone edited a scalar/batch twin without --update-manifest.
    findings, _ = run_lint(rules=["mirror-parity"])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_all_advertised_rules_registered():
    run_lint(rules=[])  # force rule-module import
    assert sorted(RULES) == [
        "determinism", "hot-path-guards", "layering",
        "mirror-parity", "param-compat", "registry-integrity"]
    for rule in RULES.values():
        assert rule.summary


def test_suppression_comments_are_rare_and_justified():
    """Every in-tree suppression must name its rule explicitly — the bare
    catch-all form is reserved for truly exceptional sites."""
    _, ctx = run_lint(rules=[])
    suppressions = [(src.relpath, line, rules)
                    for src in ctx.files
                    # The lint package's own docs quote the syntax.
                    if not src.relpath.startswith("src/repro/lint/")
                    for line, rules in sorted(src.suppressions.items())]
    assert len(suppressions) <= 3, suppressions
    for relpath, line, rules in suppressions:
        assert rules is not None, \
            f"{relpath}:{line}: bare 'repro-lint: ignore' in production code"
