"""Mirror-parity manifest lifecycle: bless, drift, stale, re-bless.

Includes the acceptance scenario: a copy of the *real* tree with a
single-line edit to one batch twin must fail the gate.
"""

import ast
import shutil
from pathlib import Path

from repro.lint import MANIFEST_RELPATH, Manifest, run_lint
from repro.lint.core import detect_root

SCALAR = "def put_time(size, bw):\n    return size / bw\n"
BATCH = "\n\ndef put_time_batch(size, bw):\n    return size / bw\n"


def _mini_tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "analytic"
    pkg.mkdir(parents=True)
    (pkg / "comm.py").write_text(SCALAR + BATCH, encoding="utf-8")
    return tmp_path


def _mirror(root, **kw):
    found, ctx = run_lint(root=root, rules=["mirror-parity"], **kw)
    return found, ctx


def test_bless_then_clean_then_drift_then_rebless(tmp_path):
    root = _mini_tree(tmp_path)
    comm = root / "src/repro/analytic/comm.py"

    # Unblessed pair: both sides flagged.
    found, _ = _mirror(root)
    assert len(found) == 2
    assert all("no blessed fingerprint" in f.message for f in found)

    # Bless: manifest is created, notes describe it, gate goes green.
    found, ctx = _mirror(root, update_manifest=True)
    assert found == []
    assert sum("blessed new mirror" in n for n in ctx.notes) == 2
    manifest = Manifest.load(root / MANIFEST_RELPATH)
    assert set(manifest.fingerprints) == {
        "repro.analytic.comm:put_time", "repro.analytic.comm:put_time_batch"}
    found, _ = _mirror(root)
    assert found == []

    # Re-blessing an unchanged tree is a no-op.
    _, ctx = _mirror(root, update_manifest=True)
    assert any("already current" in n for n in ctx.notes)

    # Drift: edit only the batch twin -> exactly that side is flagged.
    comm.write_text(SCALAR + BATCH.replace("size / bw", "size / bw + 0.0"),
                    encoding="utf-8")
    found, _ = _mirror(root)
    assert len(found) == 1
    assert "repro.analytic.comm:put_time_batch" in found[0].message
    assert "changed since" in found[0].message
    assert found[0].file == "src/repro/analytic/comm.py"

    # Re-bless the edit; green again.
    _, ctx = _mirror(root, update_manifest=True)
    assert any("re-blessed edited repro.analytic.comm:put_time_batch" in n
               for n in ctx.notes)
    found, _ = _mirror(root)
    assert found == []


def test_stale_manifest_entries_flagged_and_dropped(tmp_path):
    root = _mini_tree(tmp_path)
    _mirror(root, update_manifest=True)

    (root / "src/repro/analytic/comm.py").write_text("", encoding="utf-8")
    found, _ = _mirror(root)
    assert len(found) == 2
    assert all("no longer exists" in f.message for f in found)
    assert all(f.file == MANIFEST_RELPATH for f in found)

    _, ctx = _mirror(root, update_manifest=True)
    assert sum("dropped stale" in n for n in ctx.notes) == 2
    found, _ = _mirror(root)
    assert found == []


def test_docstring_and_comment_edits_do_not_drift(tmp_path):
    root = _mini_tree(tmp_path)
    _mirror(root, update_manifest=True)
    reworded = ('def put_time(size, bw):\n'
                '    """Reworded docstring, new comment."""\n'
                '    # a comment\n'
                '    return size / bw\n')
    (root / "src/repro/analytic/comm.py").write_text(
        reworded + BATCH, encoding="utf-8")
    found, _ = _mirror(root)
    assert found == []


def test_real_tree_single_line_batch_twin_edit_fails_gate(tmp_path):
    """Acceptance: copy the real tree, touch one line of a batch twin."""
    real = detect_root()
    shutil.copytree(real / "src", tmp_path / "src")

    batch = tmp_path / "src/repro/analytic/batch.py"
    text = batch.read_text(encoding="utf-8")
    fn = next(node for node in ast.parse(text).body
              if isinstance(node, ast.FunctionDef)
              and node.name == "_gemv_core")
    lines = text.splitlines()
    indent = " " * fn.body[0].col_offset
    lines.insert(fn.body[0].lineno - 1, f"{indent}drift_probe = 1.0")
    batch.write_text("\n".join(lines) + "\n", encoding="utf-8")

    found, _ = _mirror(tmp_path)
    assert len(found) == 1
    assert "repro.analytic.batch:_gemv_core" in found[0].message
    assert found[0].file == "src/repro/analytic/batch.py"


def test_unresolvable_extra_pair_flagged(tmp_path):
    root = _mini_tree(tmp_path)
    manifest = Manifest(extra_pairs=[("repro.analytic.comm:put_time",
                                      "repro.analytic.nowhere:gone")])
    manifest.save(root / MANIFEST_RELPATH)
    found, _ = _mirror(root)
    assert any("does not resolve" in f.message
               and "repro.analytic.nowhere:gone" in f.message
               for f in found)
