"""Each rule fires on its fixture violation and only there.

The fixture tree (``fixtures/tree``) is a miniature repo: every file
carries the violations one rule should catch next to clean twins the rule
must leave alone, so these tests pin both the true-positive and the
false-positive behaviour of each rule.
"""

from pathlib import Path

import pytest

from repro.lint import run_lint

FIXTURE = Path(__file__).parent / "fixtures" / "tree"


def _findings(rule):
    found, _ctx = run_lint(root=FIXTURE, rules=[rule])
    return found


def _lines(findings, relpath):
    return [f.line for f in findings if f.file == relpath]


class TestDeterminism:
    def test_exact_violation_set(self):
        found = _findings("determinism")
        assert [f.file for f in found] == ["src/repro/util.py"] * 9
        text = (FIXTURE / "src/repro/util.py").read_text()
        lines = text.splitlines()
        flagged = {lines[f.line - 1].strip() for f in found}
        assert flagged == {
            "return time.time()",
            "return pc()",
            "return random.random()",
            "return np.random.default_rng()",
            "return np.random.rand(4)",
            "return json.dumps(payload)",
            "return [x for x in {3, 1, 2}]",
            "for x in {3, 1, 2}:",
            "return list({3, 1, 2})",
        }

    def test_suppressions_hide_both_forms(self):
        found = _findings("determinism")
        text = (FIXTURE / "src/repro/util.py").read_text()
        for f in found:
            assert "repro-lint" not in text.splitlines()[f.line - 1]

    def test_clean_twins_pass(self):
        found = _findings("determinism")
        messages = " ".join(f.message for f in found)
        assert "sort_keys=True" in messages          # the bad dumps
        for f in found:
            line = (FIXTURE / "src/repro/util.py").read_text() \
                .splitlines()[f.line - 1]
            assert "_ok" not in line


class TestHotPath:
    def test_unguarded_loop_call_flagged(self):
        found = _findings("hot-path-guards")
        assert len(found) == 1
        (f,) = found
        assert f.file == "src/repro/sim/engine.py"
        assert ".inc(...)" in f.message
        line = (FIXTURE / f.file).read_text().splitlines()[f.line - 1]
        assert line.strip() == 'm.inc("events")'

    def test_guarded_and_out_of_loop_calls_pass(self):
        # The same fixture file contains a guarded gauge, a post-loop inc,
        # and a hoisted-alias-guarded record; none may be flagged.
        found = _findings("hot-path-guards")
        assert len(found) == 1


class TestLayering:
    def test_module_scope_obs_imports_flagged(self):
        found = _findings("layering")
        assert [f.file for f in found] == ["src/repro/sim/engine.py"] * 2
        assert sorted(_lines(found, "src/repro/sim/engine.py")) == [3, 4]

    def test_lazy_in_function_import_passes(self):
        found = _findings("layering")
        text = (FIXTURE / "src/repro/sim/engine.py").read_text()
        lazy_line = next(i for i, ln in enumerate(text.splitlines(), 1)
                         if "get_metrics as gm" in ln)
        assert lazy_line not in _lines(found, "src/repro/sim/engine.py")


class TestMirrorParity:
    def test_unblessed_pair_and_orphan_flagged(self):
        found = _findings("mirror-parity")
        assert len(found) == 3
        messages = [f.message for f in found]
        assert sum("no blessed fingerprint" in m for m in messages) == 2
        assert sum("no scalar sibling" in m for m in messages) == 1
        orphan = next(f for f in found if "no scalar sibling" in f.message)
        assert "orphan_batch" in orphan.message


class TestParamCompat:
    def test_new_field_without_none_default_flagged(self):
        found = _findings("param-compat")
        by_file = {f.file for f in found}
        assert by_file == {"src/repro/experiments/specs.py",
                           "src/repro/fused/widget.py"}
        spec = next(f for f in found
                    if f.file == "src/repro/experiments/specs.py")
        assert ".tuned" in spec.message
        widget = next(f for f in found
                      if f.file == "src/repro/fused/widget.py")
        assert "no entry" in widget.message

    def test_grandfathered_and_none_default_fields_pass(self):
        found = _findings("param-compat")
        messages = " ".join(f.message for f in found)
        for ok_name in ("runner", "new_knob", "blessed"):
            assert f".{ok_name} " not in messages


class TestRegistryIntegrity:
    def test_unregistered_names_flagged(self):
        found = _findings("registry-integrity")
        assert len(found) == 2
        assert {f.file for f in found} == {"src/repro/experiments/sweeps.py"}
        messages = " ".join(f.message for f in found)
        assert "'missing_runner'" in messages
        assert "'missing_assembler'" in messages
        assert "'good_runner'" not in messages.split("names:")[0]


def test_unknown_rule_rejected():
    with pytest.raises(KeyError, match="unknown lint rule"):
        run_lint(root=FIXTURE, rules=["no-such-rule"])


def test_missing_tree_rejected(tmp_path):
    with pytest.raises(FileNotFoundError, match="no src/repro package"):
        run_lint(root=tmp_path)


def test_findings_are_sorted_and_deterministic():
    a, _ = run_lint(root=FIXTURE)
    b, _ = run_lint(root=FIXTURE)
    assert a == b == sorted(a)
