"""Engine unit tests: suppression parsing, findings, file lookups."""

from pathlib import Path

from repro.lint import Finding, SourceFile, fingerprint, run_lint
from repro.lint.names import import_aliases, resolve_call

FIXTURE = Path(__file__).parent / "fixtures" / "tree"


def _source(tmp_path, text, rel="src/repro/mod.py"):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return SourceFile(tmp_path, path)


def test_suppression_parsing(tmp_path):
    src = _source(tmp_path, (
        "a = 1  # repro-lint: ignore[determinism]\n"
        "b = 2  # repro-lint: ignore[determinism, hot-path-guards]\n"
        "c = 3  # repro-lint: ignore\n"
        "d = 4  # unrelated comment\n"))
    assert src.suppressed(1, "determinism")
    assert not src.suppressed(1, "layering")
    assert src.suppressed(2, "hot-path-guards")
    assert src.suppressed(3, "determinism") and src.suppressed(3, "layering")
    assert not src.suppressed(4, "determinism")
    assert not src.suppressed(99, "determinism")


def test_module_name_derivation(tmp_path):
    assert _source(tmp_path, "", "src/repro/sim/engine.py").module \
        == "repro.sim.engine"
    assert _source(tmp_path, "", "src/repro/lint/__init__.py").module \
        == "repro.lint"


def test_finding_render_and_order():
    a = Finding("a.py", 3, "determinism", "x")
    b = Finding("a.py", 3, "layering", "x")
    c = Finding("b.py", 1, "determinism", "x")
    assert sorted([c, b, a]) == [a, b, c]
    assert a.render() == "a.py:3: [determinism] x"
    assert a.to_dict() == {"file": "a.py", "line": 3,
                           "rule": "determinism", "message": "x"}


def test_rules_subset_runs_only_selected():
    found, _ = run_lint(root=FIXTURE, rules=["layering"])
    assert found and all(f.rule == "layering" for f in found)


def test_import_alias_resolution(tmp_path):
    src = _source(tmp_path, (
        "import time\n"
        "import numpy as np\n"
        "from time import perf_counter as pc\n"
        "from ..obs.metrics import get_metrics\n"))
    aliases = import_aliases(src.tree)
    assert aliases["time"] == "time"
    assert aliases["np"] == "numpy"
    assert aliases["pc"] == "time.perf_counter"
    assert aliases["get_metrics"] == "..obs.metrics.get_metrics"

    import ast
    call = ast.parse("np.random.default_rng()").body[0].value
    assert resolve_call(call.func, aliases) == "numpy.random.default_rng"
    unknown = ast.parse("self.nic.latency()").body[0].value
    assert resolve_call(unknown.func, aliases) is None


def test_fingerprint_ignores_position_and_docstrings(tmp_path):
    import ast

    def fp(text):
        return fingerprint(ast.parse(text).body[0])

    base = fp("def f(x):\n    return x + 1\n")
    assert fp('def f(x):\n    """Doc."""\n    return x + 1\n') == base
    assert fp("\n\ndef f(x):\n    # comment\n    return x + 1\n") == base
    assert fp("def f(x):\n    return x + 2\n") != base
    assert fp("def f(x):\n    return 1 + x\n") != base
