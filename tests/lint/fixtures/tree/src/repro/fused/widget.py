"""Fixture: a fused op config class with no param-baseline entry."""

from dataclasses import dataclass


@dataclass(frozen=True)
class WidgetConfig:
    width: int
    depth: int = 2
