"""Fixture: hot-path-guards and layering violations in a fake engine."""

from repro.obs.metrics import get_metrics
from ..obs import capture


class Engine:
    def __init__(self, trace, metrics):
        self.trace = trace
        self.metrics = metrics

    def run(self, events):
        m = self.metrics
        for ev in events:
            m.inc("events")
            if m.enabled:
                m.gauge("queue", ev)
        m.inc("runs")
        return get_metrics, capture

    def run_hoisted(self, events):
        tracing = self.trace.enabled
        while events:
            ev = events.pop()
            if tracing:
                self.trace.record(ev)

    def lazy_ok(self):
        from repro.obs.metrics import get_metrics as gm
        return gm()
