"""Fixture: one function per determinism violation class, plus clean twins."""

import json
import random
import time
from time import perf_counter as pc

import numpy as np


def stamp():
    return time.time()


def stamp_suppressed():
    return time.time()  # repro-lint: ignore[determinism]


def stamp_bare_suppressed():
    return time.time()  # repro-lint: ignore


def aliased():
    return pc()


def draw():
    return random.random()


def unseeded():
    return np.random.default_rng()


def legacy():
    return np.random.rand(4)


def seeded_ok(seed):
    return np.random.default_rng(seed)


def dump(payload):
    return json.dumps(payload)


def canonical_ok(payload):
    return json.dumps(payload, sort_keys=True)


def roundtrip_ok(payload):
    return json.loads(json.dumps(payload))


def comprehension_over_set():
    return [x for x in {3, 1, 2}]


def loop_over_set():
    out = []
    for x in {3, 1, 2}:
        out.append(x)
    return out


def materialize_set():
    return list({3, 1, 2})


def sorted_ok():
    return sorted({3, 1, 2})
