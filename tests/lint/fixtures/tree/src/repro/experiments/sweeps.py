"""Fixture: registry-integrity — one resolving name, two typos."""

from .registry import runner
from .specs import ScenarioSpec, SweepSpec


@runner("good_runner")
def run_good(params):
    return {}


SWEEP = SweepSpec.make(
    "fixture", "Fixture",
    [ScenarioSpec.make("good_runner"),
     ScenarioSpec.make("missing_runner")],
    assembler="missing_assembler")
