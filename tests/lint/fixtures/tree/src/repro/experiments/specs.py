"""Fixture: param-compat — one grandfathered, one new-good, one new-bad."""

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class ScenarioSpec:
    runner: str
    new_knob: Optional[str] = None
    tuned: int = 3
    blessed: Optional[int] = field(default=None)
