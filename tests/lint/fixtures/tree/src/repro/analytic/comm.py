"""Fixture: mirror-parity convention pairs (unblessed) plus an orphan."""


def put_time(size, bw):
    return size / bw


def put_time_batch(size, bw):
    return size / bw


def orphan_batch(x):
    return x
