"""Unit tests for the run-metrics registry and its NULL pattern."""

import json

from repro.obs.metrics import (
    ENV_VAR,
    NULL_METRICS,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_metrics,
    metrics_env_enabled,
    reset_metrics,
)


# -- registry basics ---------------------------------------------------------

def test_counters_accumulate():
    m = MetricsRegistry()
    m.inc("a")
    m.inc("a", 4)
    m.inc("b", 2.5)
    assert m.counters == {"a": 5, "b": 2.5}


def test_gauge_latest_wins():
    m = MetricsRegistry()
    m.gauge("depth", 3)
    m.gauge("depth", 1)
    assert m.gauges["depth"] == 1


def test_gauge_max_keeps_peak():
    m = MetricsRegistry()
    m.gauge_max("peak", 3)
    m.gauge_max("peak", 7)
    m.gauge_max("peak", 5)
    assert m.gauges["peak"] == 7


def test_timer_records_count_total_and_span():
    m = MetricsRegistry()
    with m.timer("phase"):
        pass
    with m.timer("phase"):
        pass
    count, total = m.timers["phase"]
    assert count == 2
    assert total >= 0.0
    assert len(m.host_spans) == 2
    name, t0, t1 = m.host_spans[0]
    assert name == "phase" and t1 >= t0


def test_clear_empties_everything():
    m = MetricsRegistry()
    m.inc("a")
    m.gauge("g", 1)
    with m.timer("t"):
        pass
    m.clear()
    assert not m.counters and not m.gauges
    assert not m.timers and not m.host_spans


def test_snapshot_is_json_able_and_sorted():
    m = MetricsRegistry()
    m.inc("z")
    m.inc("a")
    m.gauge("g", 2)
    with m.timer("t"):
        pass
    snap = m.snapshot()
    json.dumps(snap)  # must not raise
    assert list(snap["counters"]) == ["a", "z"]
    assert snap["timers"]["t"]["count"] == 1


def test_render_mentions_each_metric():
    m = MetricsRegistry()
    m.inc("runs", 3)
    m.gauge("peak", 9)
    with m.timer("wall"):
        pass
    out = m.render()
    for needle in ("counters:", "runs", "gauges:", "peak", "timers:", "wall"):
        assert needle in out


def test_render_empty():
    assert MetricsRegistry().render() == "(no metrics recorded)"


def test_write_jsonl_appends_deterministic_lines(tmp_path):
    m = MetricsRegistry()
    m.inc("c", 2)
    m.gauge("g", 1)
    path = tmp_path / "metrics.jsonl"
    n = m.write_jsonl(path)
    assert n == 2
    first = path.read_text()
    m.write_jsonl(path)
    assert path.read_text() == first * 2  # append, identical bytes
    lines = [json.loads(line) for line in first.splitlines()]
    assert {ln["kind"] for ln in lines} == {"counter", "gauge"}
    assert all(set(ln) <= {"kind", "name", "value", "count", "total_s"}
               for ln in lines)  # no timestamps/hostnames


# -- NULL_METRICS ------------------------------------------------------------

def test_null_metrics_disabled_and_inert():
    assert not NULL_METRICS.enabled
    NULL_METRICS.inc("x")
    NULL_METRICS.gauge("x", 1)
    NULL_METRICS.gauge_max("x", 1)
    with NULL_METRICS.timer("x"):
        pass
    assert not NULL_METRICS.counters
    assert not NULL_METRICS.gauges
    assert not NULL_METRICS.timers
    assert not NULL_METRICS.host_spans


def test_null_metrics_timer_is_shared_singleton():
    assert NULL_METRICS.timer("a") is NULL_METRICS.timer("b")


# -- activation --------------------------------------------------------------

def test_default_is_null():
    assert get_metrics() is NULL_METRICS


def test_env_opt_in(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "1")
    reset_metrics()
    assert metrics_env_enabled()
    m = get_metrics()
    assert m.enabled and m is not NULL_METRICS
    assert get_metrics() is m  # stable across calls


def test_env_zero_means_off(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "0")
    reset_metrics()
    assert not metrics_env_enabled()
    assert get_metrics() is NULL_METRICS


def test_enable_disable_reset(monkeypatch):
    m = enable_metrics()
    assert get_metrics() is m and m.enabled
    disable_metrics()
    assert get_metrics() is NULL_METRICS
    monkeypatch.setenv(ENV_VAR, "1")
    reset_metrics()
    assert get_metrics().enabled  # reset re-reads the environment


def test_enable_accepts_existing_registry():
    mine = MetricsRegistry()
    assert enable_metrics(mine) is mine
    get_metrics().inc("hello")
    assert mine.counters == {"hello": 1}


def test_atexit_sink_writes_jsonl(tmp_path):
    # The exit hook is exercised in-process via a subprocess interpreter.
    import subprocess
    import sys
    out = tmp_path / "sink.jsonl"
    code = (
        "from repro.obs.metrics import get_metrics\n"
        "get_metrics().inc('boot', 3)\n"
    )
    env = {"REPRO_METRICS": "1", "REPRO_METRICS_JSONL": str(out)}
    import os
    subprocess.run([sys.executable, "-c", code], check=True,
                   env={**os.environ, **env})
    lines = [json.loads(line) for line in out.read_text().splitlines()]
    assert {"kind": "counter", "name": "boot", "value": 3} in lines
