"""Unit tests for TraceCapture and the harness hook."""

import pytest

from repro.obs.capture import TraceCapture, active_capture, harness_trace
from repro.sim import NULL_TRACE, TraceRecorder


# -- passthrough (no capture) ------------------------------------------------

def test_no_capture_none_maps_to_null_trace():
    assert harness_trace(None) is NULL_TRACE


def test_no_capture_explicit_recorder_passes_through():
    tr = TraceRecorder()
    assert harness_trace(tr) is tr


# -- capture semantics -------------------------------------------------------

def test_capture_hands_out_fresh_recorders():
    with TraceCapture() as cap:
        tr = harness_trace(None)
        assert isinstance(tr, TraceRecorder)
        assert tr.enabled and tr is not NULL_TRACE
        assert cap.runs == [("run/run0", tr)]
    assert harness_trace(None) is NULL_TRACE  # capture closed


def test_capture_registers_explicit_recorders():
    mine = TraceRecorder()
    with TraceCapture() as cap:
        assert harness_trace(mine) is mine
    assert cap.runs == [("run/run0", mine)]


def test_capture_never_captures_null_trace():
    with TraceCapture() as cap:
        assert harness_trace(NULL_TRACE) is NULL_TRACE
    assert cap.runs == []


def test_scenario_labels_and_run_indices():
    with TraceCapture() as cap:
        cap.begin_scenario("sweep:a")
        harness_trace(None)
        harness_trace(None)
        cap.begin_scenario("sweep:b")
        harness_trace(None)
    assert [label for label, _ in cap.runs] == [
        "sweep:a/run0", "sweep:a/run1", "sweep:b/run0"]


def test_n_events_sums_runs():
    with TraceCapture() as cap:
        a = harness_trace(None)
        b = harness_trace(None)
        a.record(0.0, "put_issue", "x")
        b.record(0.0, "put_issue", "y")
        b.record(1.0, "put_issue", "y")
    assert cap.n_events == 3


def test_active_capture_visibility():
    assert active_capture() is None
    with TraceCapture() as cap:
        assert active_capture() is cap
    assert active_capture() is None


def test_nested_capture_rejected():
    with TraceCapture():
        with pytest.raises(RuntimeError):
            with TraceCapture():
                pass
    # The failed inner enter must not have torn down the outer state.
    assert active_capture() is None


def test_capture_released_on_exception():
    with pytest.raises(RuntimeError, match="boom"):
        with TraceCapture():
            raise RuntimeError("boom")
    assert active_capture() is None


# -- integration with OpHarness ---------------------------------------------

def test_op_harness_joins_active_capture():
    from repro.fused.base import OpHarness
    with TraceCapture() as cap:
        cap.begin_scenario("test:h")
        h = OpHarness(num_nodes=1, gpus_per_node=2)
    assert h.trace is not NULL_TRACE and h.trace.enabled
    assert cap.runs == [("test:h/run0", h.trace)]


def test_op_harness_default_outside_capture_unchanged():
    from repro.fused.base import OpHarness
    h = OpHarness(num_nodes=1, gpus_per_node=2)
    assert h.trace is NULL_TRACE
