"""Shared fixtures: every obs test starts from a clean metrics state."""

import pytest

from repro.obs.metrics import ENV_VAR, JSONL_ENV_VAR, reset_metrics


@pytest.fixture(autouse=True)
def _clean_metrics(monkeypatch):
    """Isolate each test from the environment and any prior registry."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    monkeypatch.delenv(JSONL_ENV_VAR, raising=False)
    reset_metrics()
    yield
    reset_metrics()
