"""Unit tests for the Chrome trace-event exporter."""

import json

import pytest

from repro.obs.chrome import (
    EXPORT_SCHEMA,
    chrome_trace_dict,
    chrome_trace_json,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.sim import TraceRecorder


def make_trace():
    tr = TraceRecorder()
    tr.record(0.0, "kernel_launch", "gpu0", kernel="k")
    tr.record(0.0, "wg_start", "gpu0/wg0", task=0)
    tr.record(1e-6, "wg_end", "gpu0/wg0", task=0)
    tr.record(1e-6, "put_issue", "gpu0/wg0", nbytes=128, dest=1)
    tr.record(2e-6, "kernel_end", "gpu0", kernel="k")
    return tr


def events_of(data, ph=None):
    evs = data["traceEvents"]
    return [e for e in evs if ph is None or e["ph"] == ph]


def test_single_recorder_becomes_one_process():
    data = chrome_trace_dict(make_trace())
    names = [e for e in events_of(data, "M") if e["name"] == "process_name"]
    assert [n["args"]["name"] for n in names] == ["trace"]
    assert {e["pid"] for e in data["traceEvents"]} == {0}


def test_threads_in_first_seen_order():
    data = chrome_trace_dict(make_trace())
    threads = [e for e in events_of(data, "M") if e["name"] == "thread_name"]
    by_tid = {e["tid"]: e["args"]["name"] for e in threads}
    assert by_tid == {0: "gpu0", 1: "gpu0/wg0"}


def test_spans_become_complete_events_in_microseconds():
    data = chrome_trace_dict(make_trace())
    wg = [e for e in events_of(data, "X") if e["name"] == "wg"]
    assert len(wg) == 1
    assert wg[0]["ts"] == pytest.approx(0.0)
    assert wg[0]["dur"] == pytest.approx(1.0)  # 1e-6 s -> 1 us
    assert wg[0]["args"]["task"] == 0
    kernel = [e for e in events_of(data, "X") if e["name"] == "kernel"]
    assert kernel[0]["dur"] == pytest.approx(2.0)


def test_non_span_kinds_become_instants():
    data = chrome_trace_dict(make_trace())
    inst = events_of(data, "i")
    assert [e["name"] for e in inst] == ["put_issue"]
    assert inst[0]["s"] == "t"
    assert inst[0]["args"] == {"nbytes": 128, "dest": 1}


def test_span_boundary_kinds_not_duplicated_as_instants():
    data = chrome_trace_dict(make_trace())
    names = {e["name"] for e in events_of(data, "i")}
    assert names.isdisjoint(
        {"wg_start", "wg_end", "kernel_launch", "kernel_end"})


def test_multiple_runs_get_distinct_pids():
    runs = [("a", make_trace()), ("b", make_trace())]
    data = chrome_trace_dict(runs)
    names = {e["pid"]: e["args"]["name"]
             for e in events_of(data, "M") if e["name"] == "process_name"}
    assert names == {0: "a", 1: "b"}


def test_host_spans_on_dedicated_process_rebased():
    runs = [("a", make_trace())]
    host = [("phase1", 100.0, 100.5), ("phase2", 100.5, 101.0)]
    data = chrome_trace_dict(runs, host_spans=host)
    host_pid = max(e["pid"] for e in data["traceEvents"])
    assert host_pid == 1
    spans = [e for e in events_of(data, "X") if e["pid"] == host_pid]
    assert [s["name"] for s in spans] == ["phase1", "phase2"]
    assert spans[0]["ts"] == pytest.approx(0.0)      # rebased to zero
    assert spans[1]["ts"] == pytest.approx(0.5e6)


def test_json_text_is_deterministic_and_parses():
    tr = make_trace()
    text = chrome_trace_json(tr)
    assert text == chrome_trace_json(make_trace())
    data = json.loads(text)
    assert data == chrome_trace_dict(tr)
    assert data["otherData"]["exporter"] == EXPORT_SCHEMA
    assert text.endswith("\n")


def test_unjsonable_detail_falls_back_to_repr():
    tr = TraceRecorder()
    tr.record(0.0, "put_issue", "a", obj={1, 2})
    data = chrome_trace_dict(tr)
    [ev] = events_of(data, "i")
    assert isinstance(ev["args"]["obj"], str)
    json.dumps(data)  # export always serializes


def test_write_and_validate_roundtrip(tmp_path):
    path = write_chrome_trace(tmp_path / "t.json", make_trace())
    data = json.loads(path.read_text())
    n = validate_chrome_trace(data)
    assert n == len(data["traceEvents"]) > 0


def test_validate_rejects_garbage():
    with pytest.raises(ValueError):
        validate_chrome_trace([])
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": "nope"})
    with pytest.raises(ValueError, match="phase"):
        validate_chrome_trace({"traceEvents": [{"ph": "Q"}]})
    with pytest.raises(ValueError, match="ts"):
        validate_chrome_trace({"traceEvents": [
            {"ph": "X", "pid": 0, "tid": 0, "name": "x", "ts": -1, "dur": 0}]})


def test_validate_accepts_empty_trace():
    assert validate_chrome_trace({"traceEvents": []}) == 0
