"""Integration tests for the profiling hooks and their two guarantees:

* disabled path: NULL_METRICS / NULL_TRACE record nothing and allocate
  nothing measurable — observability off means off;
* enabled path: metrics never change simulated results, report bytes, or
  cache records — they read the run, they never feed back into it.
"""

import tracemalloc

from repro.experiments.execution import run_scenario, run_sweep
from repro.experiments.registry import ensure_registered, get_sweep
from repro.experiments.report import report_json
from repro.experiments.store import ResultStore
from repro.obs.metrics import (
    NULL_METRICS,
    enable_metrics,
    reset_metrics,
)
from repro.sim import NULL_TRACE, Simulator


def _ticker(sim, n=50):
    for _ in range(n):
        yield sim.timeout(0.5)
    return "ok"


# -- engine hooks ------------------------------------------------------------

def test_engine_counts_events_and_heap_peak():
    m = enable_metrics()
    sim = Simulator()
    assert sim.run_process(_ticker(sim)) == "ok"
    assert m.counters["sim.events_processed"] >= 50
    assert m.gauges["sim.heap_peak"] >= 1


def test_engine_instrumented_run_times_match():
    sim_off = Simulator()
    assert sim_off.run_process(_ticker(sim_off)) == "ok"
    enable_metrics()
    sim_on = Simulator()
    assert sim_on.run_process(_ticker(sim_on)) == "ok"
    assert sim_on.now == sim_off.now  # bit-identical clock


def test_kernel_and_sweep_hooks_fire():
    ensure_registered()
    m = enable_metrics()
    run_scenario(get_sweep("smoke").scenarios[0])
    assert m.counters["kernel.launches"] >= 1
    assert m.counters["kernel.tasks"] >= 1
    assert m.counters["sim.events_processed"] > 0


def test_batch_and_cache_hooks_fire(tmp_path):
    ensure_registered()
    m = enable_metrics()
    store = ResultStore(tmp_path / "cache")
    n = len(get_sweep("dse-smoke").scenarios)
    run_sweep("dse-smoke", store=store)
    assert m.counters["sweep.cache_misses"] == n
    assert m.counters["sweep.batch_fastpath_scenarios"] > 0
    assert m.counters["batch.rows"] > 0
    assert m.counters["batch.groups"] >= 1
    assert m.counters["store.writes"] > 0
    assert m.counters["store.write_bytes"] > 0
    m.clear()
    run_sweep("dse-smoke", store=store)
    assert m.counters["sweep.cache_hits"] == n
    assert m.counters["store.reads"] > 0
    assert m.counters["store.read_bytes"] > 0


def test_collectives_auto_selection_counted():
    from repro.collectives import CommTopology, resolve_allreduce
    m = enable_metrics()
    topo = CommTopology(num_nodes=4, gpus_per_node=1)
    algo = resolve_allreduce("auto", topo, nbytes=1 << 20)
    assert m.counters == {f"collectives.auto.allreduce.{algo.name}": 1}
    resolve_allreduce(None, topo, nbytes=1 << 20)  # defaults are not "auto"
    assert sum(m.counters.values()) == 1


# -- disabled-path guarantees ------------------------------------------------

def test_null_paths_allocate_nothing_measurable():
    # Warm every code path first so caches (method wrappers, small ints)
    # are populated, then assert the steady-state loop does not allocate.
    NULL_METRICS.inc("warm")
    with NULL_METRICS.timer("warm"):
        pass
    NULL_TRACE.record(0.0, "warm", "a")
    tracemalloc.start()
    try:
        tracemalloc.clear_traces()
        for _ in range(10_000):
            NULL_METRICS.inc("sim.events_processed", 17)
            NULL_METRICS.gauge_max("sim.heap_peak", 3)
            with NULL_METRICS.timer("sweep.serial_wall_s"):
                pass
            NULL_TRACE.record(1.5, "wg_start", "gpu0/wg0", task=1)
        current, _peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert current < 2048  # no per-call allocation survives the loop


def test_null_metrics_state_untouched_after_use():
    NULL_METRICS.inc("x", 100)
    NULL_METRICS.gauge("y", 5)
    assert NULL_METRICS.snapshot() == {
        "counters": {}, "gauges": {}, "timers": {}}


# -- byte-identity with metrics enabled --------------------------------------

def _run_smoke(cache_dir, metrics_on):
    reset_metrics()
    if metrics_on:
        enable_metrics()
    store = ResultStore(cache_dir)
    run = run_sweep("smoke", store=store)
    report = report_json(run.report())
    records = {
        str(p.relative_to(cache_dir)): p.read_bytes()
        for p in sorted(cache_dir.rglob("*.json"))
    }
    return report, records


def test_metrics_enabled_run_is_byte_identical(tmp_path):
    ensure_registered()
    report_off, records_off = _run_smoke(tmp_path / "off", metrics_on=False)
    report_on, records_on = _run_smoke(tmp_path / "on", metrics_on=True)
    assert report_on == report_off
    assert records_on == records_off
    assert records_on  # the comparison actually covered cache records
