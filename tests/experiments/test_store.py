"""Content-addressed store tests: round-trips, misses, robustness."""

import json

from repro.bench.harness import FigureResult, Row
from repro.experiments import ResultStore, scenario
from repro.experiments.figures import table1_sweep


def test_put_get_roundtrip(tmp_path):
    store = ResultStore(tmp_path / "cache")
    spec = scenario("r", label="a", x=1)
    assert store.get(spec) is None
    record = store.put(spec, {"elapsed": 0.25})
    assert store.get(spec) == {"elapsed": 0.25}
    assert record["key"] == spec.key()
    assert record["params"] == {"x": 1}
    assert len(store) == 1


def test_layout_is_sharded_json(tmp_path):
    store = ResultStore(tmp_path)
    spec = scenario("r", x=1)
    store.put(spec, {"v": 1})
    path = store.path_for(spec.key())
    assert path.parent.name == spec.key()[:2]
    assert path.suffix == ".json"
    with open(path) as f:
        on_disk = json.load(f)
    assert on_disk["result"] == {"v": 1}


def test_different_specs_do_not_collide(tmp_path):
    store = ResultStore(tmp_path)
    a, b = scenario("r", x=1), scenario("r", x=2)
    store.put(a, {"v": "a"})
    store.put(b, {"v": "b"})
    assert store.get(a) == {"v": "a"}
    assert store.get(b) == {"v": "b"}


def test_corrupted_record_is_a_miss(tmp_path):
    store = ResultStore(tmp_path)
    spec = scenario("r", x=1)
    store.put(spec, {"v": 1})
    store.path_for(spec.key()).write_text("{not json", encoding="utf-8")
    assert store.get(spec) is None


def test_runner_mismatch_is_a_miss(tmp_path):
    """A hash collision across runners (or a tampered file) never serves
    the wrong runner's payload."""
    store = ResultStore(tmp_path)
    spec = scenario("r", x=1)
    record = store.put(spec, {"v": 1})
    record["runner"] = "other"
    store.path_for(spec.key()).write_text(json.dumps(record),
                                          encoding="utf-8")
    assert store.get(spec) is None


def test_clear_and_keys(tmp_path):
    store = ResultStore(tmp_path)
    specs = [scenario("r", x=i) for i in range(3)]
    for s in specs:
        store.put(s, {"v": 1})
    assert sorted(store.keys()) == sorted(s.key() for s in specs)
    assert store.clear() == 3
    assert len(store) == 0


def test_sweep_record_payload_is_figure_json(tmp_path):
    """The sweep-level record stores the FigureResult JSON export."""
    store = ResultStore(tmp_path)
    sweep = table1_sweep(name="t1-store-test")
    fig = FigureResult("Table I", "demo")
    fig.add(Row("a", 1.0, 2.0))
    fig.extra["k"] = "v"
    store.put_sweep(sweep, fig.to_json_dict())
    payload = store.get_sweep(sweep)
    restored = FigureResult.from_json_dict(payload)
    assert restored.to_json_dict() == fig.to_json_dict()
    assert restored.rows[0].normalized == 0.5
