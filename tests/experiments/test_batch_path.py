"""The vectorized batch fast path inside ``run_sweep``: byte-identical
reports, unchanged cache records, and the ``REPRO_BATCH`` opt-out."""

import pytest

from repro.experiments import execution
from repro.experiments.execution import batch_enabled, run_sweep
from repro.experiments.figures import dse_smoke_sweep, smoke_sweep
from repro.experiments.report import report_json
from repro.experiments.specs import sweep_with_backend
from repro.experiments.store import ResultStore


def test_batch_enabled_env_toggle(monkeypatch):
    monkeypatch.delenv("REPRO_BATCH", raising=False)
    assert batch_enabled()
    monkeypatch.setenv("REPRO_BATCH", "0")
    assert not batch_enabled()
    monkeypatch.setenv("REPRO_BATCH", "1")
    assert batch_enabled()


def test_batch_and_scalar_sweep_reports_are_byte_identical(tmp_path,
                                                           monkeypatch):
    sweep = dse_smoke_sweep()

    monkeypatch.setenv("REPRO_BATCH", "0")
    scalar_store = ResultStore(tmp_path / "scalar")
    scalar = run_sweep(sweep, store=scalar_store)

    monkeypatch.setenv("REPRO_BATCH", "1")
    batch_store = ResultStore(tmp_path / "batch")
    batch = run_sweep(sweep, store=batch_store)

    assert report_json(scalar.report()) == report_json(batch.report())
    # The store records themselves are byte-identical too: same keys,
    # same payload bytes.
    for spec in sweep.scenarios:
        a = scalar_store.path_for(spec.key()).read_bytes()
        b = batch_store.path_for(spec.key()).read_bytes()
        assert a == b


def test_batch_path_actually_covers_analytic_misses(monkeypatch):
    # With the scalar executor disabled, an analytic sweep must still
    # complete — proof the batch engine served every miss.
    def boom(spec):
        raise AssertionError(f"scalar path reached for {spec.runner}")

    monkeypatch.setattr(execution, "run_scenario", boom)
    run = run_sweep(dse_smoke_sweep(), store=None)
    assert run.executed == len(run.sweep)
    assert all(o.result["fused_time"] > 0 for o in run.outcomes)


def test_sim_scenarios_never_take_the_batch_path(monkeypatch):
    # The default-backend smoke sweep must keep using the scalar path
    # even with batching on (its scenarios are DES scenarios).
    called = []
    original = execution._run_batch_misses

    def spy(sweep, misses, record):
        called.append(list(misses))
        return original(sweep, misses, record)

    monkeypatch.setattr(execution, "_run_batch_misses", spy)
    run = run_sweep(smoke_sweep(), store=None)
    assert run.executed == len(run.sweep)
    assert called and called[0]          # invoked, but covered nothing:
    # every miss fell through to the scalar executor.


def test_opt_out_matches_batch_results(monkeypatch):
    sweep = sweep_with_backend(smoke_sweep(), "analytic")
    monkeypatch.setenv("REPRO_BATCH", "1")
    a = run_sweep(sweep, store=None)
    monkeypatch.setenv("REPRO_BATCH", "0")
    b = run_sweep(sweep, store=None)
    assert [o.result for o in a.outcomes] == [o.result for o in b.outcomes]


def test_batch_path_preserves_validation_errors():
    from repro.experiments.specs import scenario, SweepSpec
    bad = scenario("embedding_a2a_pair", label="bad",
                   global_batch=100, tables_per_gpu=16, num_nodes=2,
                   gpus_per_node=1, slice_vectors=32).with_backend("analytic")
    ok = scenario("embedding_a2a_pair", label="ok",
                  global_batch=256, tables_per_gpu=16, num_nodes=2,
                  gpus_per_node=1).with_backend("analytic")
    sweep = SweepSpec.make("bad-batch", "Bad", [ok, bad], assembler="rows")
    with pytest.raises(ValueError):
        run_sweep(sweep, store=None)
