"""The ``algo`` scenario axis: absent-is-default byte identity, the
xalgo sweeps, and fail-fast behaviour for unknown schedules.

The pinned keys below were captured from ``main`` immediately before the
collective-algorithm library landed.  They enforce the axis's core
contract: scenarios and sweeps that never name an ``algo`` keep exactly
the store keys (and therefore cached results and reports) they had
before the axis existed.  If ``SCHEMA_VERSION`` is deliberately bumped,
re-pin them in the same commit.
"""

import json
import pathlib

import pytest

from repro.experiments.execution import run_scenario, run_sweep
from repro.experiments.registry import get_sweep
from repro.experiments.report import report_json
from repro.experiments.specs import scenario, sweep_with_algo
from repro.experiments.store import ResultStore

DATA = pathlib.Path(__file__).parent / "data"

#: Sweep content keys captured from main before the algo axis existed.
#: (``dse_fused_frontier`` and ``dse-smoke`` deliberately gained the
#: axis; their pre-axis generations are pinned separately below.)
PRE_ALGO_SWEEP_KEYS = {
    "ablation-cpu-proxy": "0498d7f6e8aa0ec4deebe0270b06be3f9ea59b80eb20ea02e7657296677aff05",
    "ablation-scheduling": "c97b79fe525411920034b0aee452d3a08b7f13454b31c5a9c4d76cfb2d1ba88b",
    "ablation-slice-size": "61f24991c274b52c2823e42937c68d2c427984639c6bed8b60ff0a471d7118da",
    "ablation-zero-copy": "791104fa818b9f3cd4fc6515578593884e601b22467b7c5b9937af5f56e48683",
    "ext-embedding-backward": "49e54ca827689cada3403a72d4a2359c3ffc7ff2b66badbabc9439950ef4186c",
    "fig10": "c6a4ea91b9d21f88498a523fa7d99f183e1c65af540c1abd9fc17d7a9b82881a",
    "fig11": "63804bc6b52f0b310f4818ef11263f0e7e7c561da7575483635cad2d48d03262",
    "fig12": "a84192e9532b3ef443572c89256e9193de26f0f2a87b51adb8c05b124923ca32",
    "fig13": "ddd2165a48f4d6c1e02dba64aa06cb1b567c94b64a7cd5f5d3a878a4ef26bc0e",
    "fig14": "a26716f7e3400561907a6353f88080fa26ee0aaa743596a4c60eff3409e3912c",
    "fig15": "c1778a3559a81b6629ce81a5f9a2fc8e3a8245f26621dc1cb2f63a63487da641",
    "fig8": "adecdabb8fedb76a661118706bd494c62ea6a5d70a72ef18f786be37e80448c2",
    "fig9": "8f044f44917285ad0d9f9f022f33cafd0ecb0e183da4104d5b646ea7036777f4",
    "smoke": "04ac2ce85b0bc7735998cfb287505e58e97d394679529354bd47f05ef79bd89e",
    "table1": "b8127d9c017f0fb8987f5454b5aa5f9f496eb6ba3b457ce3effa028e324247cf",
    "table2": "c2c197c6f14fa738e0018dd03d44e925be333b3b34461c30f65936977fadca77",
    "xhw-smoke": "09cabf7cc6c5ff3f6476f4d1be521168a2a6d018e6d8fa83c3a0b3459d5b5186",
    "xhw_embedding_a2a": "67b942496ba508d090fcd8f9202da72a08286f817704deb0645b8c63fefea1f2",
    "xhw_gemm_a2a": "258bcb790150293484c7773b953f5d89296aef4b6cfeec5d079bee4105c3ff71",
    "xhw_gemv_allreduce": "c972414f79b547f366e15d496f77b55853b99df2174dcce23f96f6829e573512",
    "xhw_scaleout": "163cc265e4e4234cc0d0a88e2f665775b27b108e5fde538874c2384684ce9452",
}

PRE_ALGO_DSE_FRONTIER_KEY = \
    "c0f6eb37562d79ac72382359dcfe0821c9eb062bfa2e55b6320d2683264e8511"
PRE_ALGO_DSE_SMOKE_KEY = \
    "84280d8d6b7e08d87df06fdb1243b5afa1ffc8f8f0a38ae575b20d6d0f008f74"


# ---------------------------------------------------------------------------
# Byte identity of the default (algo-absent) paths
# ---------------------------------------------------------------------------

def test_default_path_sweep_keys_are_unchanged():
    for name, key in PRE_ALGO_SWEEP_KEYS.items():
        assert get_sweep(name).key() == key, (
            f"sweep {name!r} changed its content key — algo-absent "
            f"store keys must stay byte-identical to main")


def test_dse_sweeps_with_algo_axis_stripped_match_pre_axis_keys():
    from repro.experiments.figures import dse_fused_frontier_sweep
    assert dse_fused_frontier_sweep(algos=(None,)).key() == \
        PRE_ALGO_DSE_FRONTIER_KEY
    assert dse_fused_frontier_sweep(
        name="dse-smoke", platforms=("mi210", "h100"), batches=(512, 2048),
        tables=(64,), slices=(32,), occupancies=(0.25, 0.75),
        topologies=((2, 1),), algos=(None,)).key() == PRE_ALGO_DSE_SMOKE_KEY


def test_with_algo_none_is_parameter_absence():
    spec = scenario("gemv_allreduce_pair", m=8192, n_per_gpu=2048, world=4)
    assert spec.with_algo(None) == spec
    assert spec.with_algo("ring").with_algo(None) == spec
    assert spec.with_algo("ring").params["algo"] == "ring"
    assert spec.with_algo("ring").key() != spec.key()
    assert spec.algo is None
    assert spec.with_algo("ring").algo == "ring"


def test_sweep_with_algo_round_trips():
    sweep = get_sweep("smoke")
    pinned = sweep_with_algo(sweep, "pairwise")
    assert all(s.params["algo"] == "pairwise" for s in pinned.scenarios)
    assert sweep_with_algo(pinned, None).key() == sweep.key()


def test_smoke_report_is_byte_identical_to_main():
    """The full default-path report — keys, rows, formatted numbers —
    must match the byte-for-byte snapshot captured from main."""
    golden = (DATA / "golden_smoke_report.json").read_text(encoding="utf-8")
    run = run_sweep(get_sweep("smoke"), store=None)
    assert report_json(run.report()) == golden


def test_dse_smoke_algo_absent_report_is_byte_identical_to_main():
    """Re-generating dse-smoke with the algo axis stripped reproduces
    main's report byte for byte (analytic backend included)."""
    from repro.experiments.figures import dse_fused_frontier_sweep
    golden = (DATA / "golden_dse_smoke_report.json").read_text(
        encoding="utf-8")
    pre = dse_fused_frontier_sweep(
        name="dse-smoke", platforms=("mi210", "h100"), batches=(512, 2048),
        tables=(64,), slices=(32,), occupancies=(0.25, 0.75),
        topologies=((2, 1),), algos=(None,))
    run = run_sweep(pre, store=None)
    assert report_json(run.report()) == golden


# ---------------------------------------------------------------------------
# Unknown schedules fail fast, before any cache record exists
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", [None, "analytic"])
@pytest.mark.parametrize("runner,params", [
    ("gemv_allreduce_pair", dict(m=8192, n_per_gpu=2048, world=4)),
    ("embedding_a2a_pair", dict(global_batch=256, tables_per_gpu=16,
                                num_nodes=2, gpus_per_node=1)),
])
def test_unknown_algo_raises_before_caching(tmp_path, backend, runner,
                                            params):
    spec = scenario(runner, label="bad", **params).with_algo("warp-drive")
    if backend is not None:
        spec = spec.with_backend(backend)
    with pytest.raises(KeyError, match="warp-drive"):
        run_scenario(spec)
    store = ResultStore(tmp_path / "cache")
    from repro.experiments.specs import SweepSpec
    sweep = SweepSpec.make("bad-algo", "Bad", [spec])
    with pytest.raises(KeyError, match="warp-drive"):
        run_sweep(sweep, store=store)
    assert store.get(spec) is None
    assert list(store.keys()) == []


@pytest.mark.parametrize("backend", [None, "analytic"])
@pytest.mark.parametrize("runner,params", [
    ("dlrm_scaleout", dict(num_nodes=16)),
    ("wg_timeline", dict(batch=256, tables=16)),
    ("table_setup", dict(which="table2")),
])
def test_collective_free_runners_reject_algo(tmp_path, backend, runner,
                                             params):
    """Runners with no baseline collective must reject an ``algo``
    parameter — even a *registered* name — instead of crashing in an
    analytic twin or silently caching identical results under new keys."""
    spec = scenario(runner, label="x", **params).with_algo("ring")
    if backend is not None:
        spec = spec.with_backend(backend)
    with pytest.raises(ValueError, match="no baseline collective"):
        run_scenario(spec)
    store = ResultStore(tmp_path / "cache")
    from repro.experiments.specs import SweepSpec
    with pytest.raises(ValueError, match="no baseline collective"):
        run_sweep(SweepSpec.make("reject", "R", [spec]), store=store)
    assert list(store.keys()) == []


def test_wrong_kind_algo_also_fails_fast():
    # "ring" is an AllReduce schedule; an All-to-All runner must reject it.
    spec = scenario("embedding_a2a_pair", global_batch=256,
                    tables_per_gpu=16, num_nodes=2,
                    gpus_per_node=1).with_algo("ring")
    with pytest.raises(KeyError, match="All-to-All"):
        run_scenario(spec)


# ---------------------------------------------------------------------------
# The xalgo sweeps under both backends
# ---------------------------------------------------------------------------

def test_xalgo_sweeps_registered():
    assert len(get_sweep("xalgo_allreduce")) == 6     # 3 algos x 2 points
    assert len(get_sweep("xalgo_alltoall")) == 6
    assert len(get_sweep("xalgo-smoke")) == 3
    algos = {s.params["algo"] for s in get_sweep("xalgo_alltoall")}
    assert algos == {"flat", "pairwise", "hier"}


def test_dse_frontier_gained_the_algo_axis():
    sweep = get_sweep("dse_fused_frontier")
    algos = {s.params.get("algo") for s in sweep.scenarios}
    assert algos == {None, "pairwise"}
    assert len(sweep) == 2592


def test_xalgo_smoke_runs_cold_then_fully_cached(tmp_path):
    store = ResultStore(tmp_path / "cache")
    sweep = get_sweep("xalgo-smoke")
    cold = run_sweep(sweep, store=store)
    assert cold.executed == len(sweep)
    warm = run_sweep(sweep, store=store)
    assert warm.executed == 0 and warm.cache_hits == len(sweep)
    assert report_json(cold.report()) == report_json(warm.report())
    fig = cold.figure()
    assert set(fig.extra["baseline_us_by_algo"]) == {"direct", "ring",
                                                     "tree"}
    assert fig.extra["best_algo_by_point"]["8k|2k"] in ("direct", "ring",
                                                        "tree")


@pytest.mark.parametrize("algo", ["flat", "pairwise", "hier"])
def test_xalgo_pair_agrees_across_backends(algo):
    """Per-algorithm DES/analytic agreement at the runner level: the
    baseline collective is closed-form-shared (exact), the fused side is
    held to the analytic accuracy budget."""
    from repro.analytic.validate import ACCURACY_BUDGET
    budget = max(ACCURACY_BUDGET.values())
    # A device-filling workload: the fused closed form's accuracy
    # contract is scoped to saturating task lists (see analytic/ops.py).
    spec = scenario("embedding_a2a_pair", global_batch=1024,
                    tables_per_gpu=64, num_nodes=2,
                    gpus_per_node=2).with_algo(algo)
    sim = run_scenario(spec)
    ana = run_scenario(spec.with_backend("analytic"))
    assert ana["baseline_time"] == pytest.approx(sim["baseline_time"],
                                                 rel=1e-9)
    assert ana["fused_time"] == pytest.approx(sim["fused_time"],
                                              rel=budget)


@pytest.mark.parametrize("algo", ["direct", "ring", "tree"])
def test_gemv_algo_pair_agrees_across_backends(algo):
    from repro.analytic.validate import ACCURACY_BUDGET
    budget = max(ACCURACY_BUDGET.values())
    spec = scenario("gemv_allreduce_pair", m=8192, n_per_gpu=2048,
                    world=4).with_algo(algo)
    sim = run_scenario(spec)
    ana = run_scenario(spec.with_backend("analytic"))
    assert ana["baseline_time"] == pytest.approx(sim["baseline_time"],
                                                 rel=budget)
    assert ana["fused_time"] == pytest.approx(sim["fused_time"],
                                              rel=budget)
