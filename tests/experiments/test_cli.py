"""CLI surface tests: list/run/report/diff through ``cli.main``."""

import json

import pytest

from repro.experiments.cli import main
from repro.experiments.report import REPORT_SCHEMA


def test_list_names_registered_sweeps(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig8", "fig15", "ablation-slice-size", "smoke"):
        assert name in out


def test_run_writes_report_and_caches(tmp_path, capsys):
    cache = tmp_path / "cache"
    reports = tmp_path / "reports"
    assert main(["run", "smoke", "--cache", str(cache),
                 "--report-dir", str(reports), "--quiet"]) == 0
    captured = capsys.readouterr()
    assert "Smoke" in captured.out
    assert "3 scenarios, 0 cached, 3 executed" in captured.err

    report_path = reports / "smoke.json"
    report = json.loads(report_path.read_text())
    assert report["schema"] == REPORT_SCHEMA
    assert len(report["scenarios"]) == 3

    # Second run: fully cached; --expect-cached passes.
    assert main(["run", "smoke", "--cache", str(cache), "--quiet",
                 "--expect-cached"]) == 0
    assert "3 cached, 0 executed" in capsys.readouterr().err


def test_expect_cached_fails_on_cold_cache(tmp_path, capsys):
    assert main(["run", "smoke", "--cache", str(tmp_path / "cold"),
                 "--quiet", "--expect-cached"]) == 1
    assert "expected a fully cached run" in capsys.readouterr().err


def test_report_subcommand_reads_cache(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(["run", "smoke", "--cache", str(cache), "--quiet"]) == 0
    capsys.readouterr()
    assert main(["report", "smoke", "--cache", str(cache), "--quiet"]) == 0
    captured = capsys.readouterr()
    assert "3 cached, 0 executed" in captured.err
    assert "Smoke" in captured.out


def test_diff_subcommand(tmp_path, capsys):
    cache = tmp_path / "cache"
    reports = tmp_path / "reports"
    main(["run", "smoke", "--cache", str(cache),
          "--report-dir", str(reports), "--quiet"])
    path = reports / "smoke.json"
    assert main(["diff", str(path), str(path)]) == 0
    assert "reports match" in capsys.readouterr().out

    tweaked = json.loads(path.read_text())
    tweaked["scenarios"][0]["result"]["fused_time"] *= 1.5
    other = tmp_path / "tweaked.json"
    other.write_text(json.dumps(tweaked))
    assert main(["diff", str(path), str(other)]) == 1
    assert "fused_time" in capsys.readouterr().out


def test_no_cache_flag_disables_store(tmp_path, capsys):
    assert main(["run", "smoke", "--no-cache", "--quiet",
                 "--cache", str(tmp_path / "never")]) == 0
    capsys.readouterr()
    assert not (tmp_path / "never").exists()
    # Without a store, a re-run executes everything again.
    assert main(["run", "smoke", "--no-cache", "--quiet"]) == 0
    assert "0 cached, 3 executed" in capsys.readouterr().err


def test_unknown_sweep_errors():
    with pytest.raises(KeyError, match="unknown sweep"):
        main(["run", "definitely-not-a-sweep"])


def test_platforms_subcommand_lists_catalog(capsys):
    assert main(["platforms"]) == 0
    out = capsys.readouterr().out
    for name in ("mi210", "mi250x", "mi300x", "h100"):
        assert name in out
    # The calibrated entry shows the paper's derived footprint.
    assert "64->72" in out
    assert "87.5%" in out


def test_run_xhw_smoke_caches_and_reports_speedups(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(["run", "xhw-smoke", "--cache", str(cache), "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "speedup_by_platform" in out
    assert "h100" in out
    assert main(["run", "xhw-smoke", "--cache", str(cache), "--quiet",
                 "--expect-cached"]) == 0
