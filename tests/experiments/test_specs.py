"""Spec-layer tests: grids, canonicalization, and hash stability.

The content-addressed store only works if a spec's key is *stable* —
identical across param orderings, processes, and machines — and
*sensitive* — any changed field yields a new key.  Both properties are
pinned here, including a subprocess check for cross-process stability.
"""

import os
import subprocess
import sys

import pytest

import repro
from repro.experiments import (
    SCHEMA_VERSION,
    ScenarioSpec,
    SweepSpec,
    grid_params,
    scenario,
    zip_params,
)


def test_grid_params_cartesian_order():
    combos = grid_params(batch=(1, 2), tables=(64, 256))
    assert combos == [
        {"batch": 1, "tables": 64}, {"batch": 1, "tables": 256},
        {"batch": 2, "tables": 64}, {"batch": 2, "tables": 256},
    ]


def test_grid_params_scalar_broadcast():
    assert grid_params(batch=(1, 2), world=4) == [
        {"batch": 1, "world": 4}, {"batch": 2, "world": 4}]


def test_zip_params():
    assert zip_params(batch=(512, 1024), tables=(64, 256)) == [
        {"batch": 512, "tables": 64}, {"batch": 1024, "tables": 256}]
    with pytest.raises(ValueError):
        zip_params(a=(1, 2), b=(1, 2, 3))


def test_params_canonical_under_ordering():
    a = scenario("r", x=1, y=2)
    b = scenario("r", y=2, x=1)
    assert a == b
    assert a.key() == b.key()
    assert hash(a) == hash(b)


def test_params_must_be_jsonable():
    with pytest.raises(TypeError):
        scenario("r", bad=object())


def test_key_sensitivity():
    base = scenario("r", x=1, y=2)
    assert base.key() != scenario("r", x=1, y=3).key()        # value change
    assert base.key() != scenario("r", x=1).key()             # field removed
    assert base.key() != scenario("r2", x=1, y=2).key()       # runner change
    assert base.key() != scenario("r", x=1, y=2, z=0).key()   # field added


def test_label_excluded_from_key():
    assert (scenario("r", label="a", x=1).key()
            == scenario("r", label="b", x=1).key())


def test_with_params_overrides():
    spec = scenario("r", x=1, y=2)
    bumped = spec.with_params(y=3)
    assert bumped.params == {"x": 1, "y": 3}
    assert bumped.key() != spec.key()
    assert spec.params == {"x": 1, "y": 2}      # original untouched


def test_stable_seed_deterministic_and_distinct():
    a = scenario("r", x=1)
    assert a.stable_seed() == scenario("r", x=1).stable_seed()
    assert a.stable_seed() != scenario("r", x=2).stable_seed()
    assert 0 <= a.stable_seed() < 2 ** 64


def test_key_stable_across_processes():
    """Same spec hashed in a fresh interpreter yields the same key."""
    spec = scenario("embedding_a2a_pair", label="x",
                    global_batch=1024, tables_per_gpu=64,
                    num_nodes=2, gpus_per_node=1)
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))
    code = (
        "from repro.experiments import scenario;"
        "print(scenario('embedding_a2a_pair', label='other',"
        " global_batch=1024, tables_per_gpu=64, num_nodes=2,"
        " gpus_per_node=1).key())"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run([sys.executable, "-c", code], env=env,
                         capture_output=True, text=True, check=True)
    assert out.stdout.strip() == spec.key()


def test_sweep_key_covers_scenarios_and_assembly():
    def make(**kw):
        defaults = dict(name="s", title="T",
                        scenarios=[scenario("r", label="a", x=1)],
                        assembler="rows")
        defaults.update(kw)
        return SweepSpec.make(**defaults)

    base = make()
    assert base.key() == make().key()
    assert base.key() != make(scenarios=[scenario("r", label="a", x=2)]).key()
    assert base.key() != make(assembler="table").key()
    assert base.key() != make(figure="Fig. 1").key()   # assembler params


def test_schema_version_feeds_key(monkeypatch):
    spec = scenario("r", x=1)
    before = spec.key()
    monkeypatch.setattr("repro.experiments.specs.SCHEMA_VERSION",
                        SCHEMA_VERSION + 1)
    assert spec.key() != before
