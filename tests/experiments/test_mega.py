"""Mega sweeps: axis-defined grids, sweep-level caching, and the
vectorized frontier assembly vs the scalar dse_frontier semantics."""

import numpy as np

from repro.analytic import pareto_frontier_legacy, predict_embedding_a2a
from repro.experiments.mega import (
    MegaSweepSpec,
    dse_mega_smoke_sweep,
    dse_mega_sweep,
    find_mega,
    get_mega,
    run_mega,
)
from repro.experiments.report import report_json
from repro.experiments.specs import grid_params
from repro.experiments.store import ResultStore


def test_spec_len_and_key_stability():
    spec = dse_mega_smoke_sweep()
    assert len(spec) == 16
    assert spec.key() == dse_mega_smoke_sweep().key()
    assert len(dse_mega_sweep()) >= 100_000
    # Axis order is part of the identity: reordering reorders the grid.
    axes = spec.axes
    reordered = dict(reversed(list(axes.items())))
    other = MegaSweepSpec.make(spec.name, spec.title, spec.runner, reordered)
    assert other.key() != spec.key()


def test_registry_lookup():
    assert find_mega("dse_mega") is not None
    assert find_mega("dse-mega-smoke") is not None
    assert find_mega("smoke") is None
    assert get_mega("dse_mega").runner == "embedding_a2a_pair"


def test_cold_then_cached_runs_are_byte_identical(tmp_path):
    spec = dse_mega_smoke_sweep()
    store = ResultStore(tmp_path / "cache")
    cold = run_mega(spec, store=store)
    assert cold.executed == len(spec)
    assert store.path_for(spec.key()).is_file()
    cached = run_mega(spec, store=store)
    assert cached.executed == 0
    assert cached.cache_hits == len(spec)
    assert report_json(cold.report()) == report_json(cached.report())
    # force re-executes but lands on the same bytes (deterministic math).
    forced = run_mega(spec, store=store, force=True)
    assert forced.executed == len(spec)
    assert report_json(forced.report()) == report_json(cold.report())


def test_only_one_store_record_for_the_whole_grid(tmp_path):
    store = ResultStore(tmp_path / "cache")
    run_mega(dse_mega_smoke_sweep(), store=store)
    assert len(store) == 1


def test_frontier_matches_scalar_dse_assembly():
    """The vectorized assembler must select exactly the points the scalar
    dse_frontier logic (legacy all-pairs Pareto over per-scenario predict
    calls) selects, per platform and globally."""
    spec = dse_mega_smoke_sweep()
    run = run_mega(spec)
    fig = run.figure()

    points = []
    for p in grid_params(**spec.axes):
        p.pop("algo")       # None = legacy schedule (matches the grid)
        res = predict_embedding_a2a(**p)
        points.append((p, res, res["baseline_time"] / res["fused_time"]))
    objectives = lambda pt: (pt[1]["fused_time"], -pt[2])  # noqa: E731

    by_platform = {}
    expected_rows = []
    for name in sorted({p["platform"] for p, _r, _s in points}):
        mine = [pt for pt in points if pt[0]["platform"] == name]
        frontier = pareto_frontier_legacy(mine, objectives)
        by_platform[name] = len(frontier)
        expected_rows.extend((r["fused_time"], r["baseline_time"])
                             for _p, r, _s in frontier)

    assert fig.extra["n_scenarios"] == len(points)
    assert fig.extra["frontier_by_platform"] == by_platform
    got_rows = [(r.fused_time, r.baseline_time) for r in fig.rows]
    assert got_rows == expected_rows
    n_global = len(pareto_frontier_legacy(points, objectives))
    assert len(fig.extra["global_frontier"]) == n_global


def test_report_shape_and_render():
    run = run_mega(dse_mega_smoke_sweep())
    report = run.report()
    assert report["scenarios"] == []
    assert report["sweep"] == "dse-mega-smoke"
    assert report["figure"]["rows"]
    from repro.experiments.report import render_report
    text = render_report(report)
    assert "DSE mega smoke" in text


def test_full_dse_mega_grid_runs_fast_and_validates():
    import time
    spec = dse_mega_sweep()
    t0 = time.perf_counter()
    run = run_mega(spec)
    elapsed = time.perf_counter() - t0
    fig = run.figure()
    assert fig.extra["n_scenarios"] == len(spec) >= 100_000
    assert fig.extra["n_frontier"] == len(fig.rows) > 0
    speedups = np.array([r.baseline_time / r.fused_time for r in fig.rows])
    assert (speedups > 0).all()
    # Generous wall-clock bound (the point of the engine); typically ~0.2s.
    assert elapsed < 30.0
