"""Orchestrator runner tests: caching, force, parallel byte-identity.

The fake-runner sweeps exercise the machinery cheaply in-process; the
parallel tests use real registered runners (worker processes re-import
the registry by name, so test-local fakes can't cross the process
boundary) on deliberately small configurations.
"""

import pytest

from repro.experiments import (
    ResultStore,
    SweepSpec,
    register_sweep,
    report_json,
    run_sweep,
    scenario,
)
from repro.experiments.figures import fig9_sweep, smoke_sweep
from repro.experiments.registry import RUNNERS, runner

CALLS = {"count": 0}


@runner("test_counting_pair")
def _counting_pair(params):
    CALLS["count"] += 1
    return {"fused_time": float(params["x"]), "baseline_time": 2.0}


@runner("test_seeded")
def _seeded(params, seed):
    return {"fused_time": float(seed % 1000) + 1.0, "baseline_time": 1.0}


def _counting_sweep(n=3, name="test-counting"):
    return SweepSpec.make(
        name, "Counting",
        [scenario("test_counting_pair", label=f"x={i + 1}", x=i + 1)
         for i in range(n)],
        assembler="rows", figure="Counting", description="fake sweep")


def test_serial_run_and_figure():
    run = run_sweep(_counting_sweep())
    assert run.executed == 3 and run.cache_hits == 0
    fig = run.figure()
    assert [r.label for r in fig.rows] == ["x=1", "x=2", "x=3"]
    assert fig.rows[0].normalized == 0.5


def test_cached_rerun_executes_zero_scenarios(tmp_path):
    """The acceptance criterion: a cached re-run simulates nothing."""
    sweep = _counting_sweep()
    store = ResultStore(tmp_path)
    CALLS["count"] = 0
    first = run_sweep(sweep, store=store)
    assert first.executed == 3 and CALLS["count"] == 3

    second = run_sweep(sweep, store=store)
    assert second.executed == 0 and second.cache_hits == 3
    assert CALLS["count"] == 3        # runner never invoked again
    assert report_json(second.report()) == report_json(first.report())


def test_force_reexecutes_hits(tmp_path):
    sweep = _counting_sweep()
    store = ResultStore(tmp_path)
    run_sweep(sweep, store=store)
    CALLS["count"] = 0
    forced = run_sweep(sweep, store=store, force=True)
    assert forced.executed == 3 and CALLS["count"] == 3


def test_cache_shared_across_sweeps(tmp_path):
    """Scenario records are content-addressed, not sweep-scoped: a second
    sweep containing an already-computed scenario reuses its record."""
    store = ResultStore(tmp_path)
    run_sweep(_counting_sweep(n=3), store=store)
    CALLS["count"] = 0
    wider = _counting_sweep(n=4, name="test-counting-wider")
    run = run_sweep(wider, store=store)
    assert run.cache_hits == 3 and run.executed == 1
    assert CALLS["count"] == 1


def test_changed_params_miss_the_cache(tmp_path):
    store = ResultStore(tmp_path)
    base = scenario("test_counting_pair", label="a", x=1)
    run_sweep(SweepSpec.make("test-miss-a", "T", [base], assembler="rows"),
              store=store)
    CALLS["count"] = 0
    changed = SweepSpec.make("test-miss-b", "T",
                             [base.with_params(x=99)], assembler="rows")
    run = run_sweep(changed, store=store)
    assert run.executed == 1 and CALLS["count"] == 1


def test_seeded_runner_gets_stable_seed():
    sweep = SweepSpec.make(
        "test-seeded", "T",
        [scenario("test_seeded", label="a", x=1),
         scenario("test_seeded", label="b", x=2)],
        assembler="rows")
    a = run_sweep(sweep)
    b = run_sweep(sweep)
    assert a.outcomes[0].result == b.outcomes[0].result   # deterministic
    assert a.outcomes[0].result != a.outcomes[1].result   # per-scenario


def test_progress_callback_order():
    seen = []
    run_sweep(_counting_sweep(),
              progress=lambda done, total, o: seen.append((done, total,
                                                           o.spec.label)))
    assert seen == [(1, 3, "x=1"), (2, 3, "x=2"), (3, 3, "x=3")]


def test_unknown_sweep_and_runner_errors():
    with pytest.raises(KeyError, match="unknown sweep"):
        run_sweep("no-such-sweep")
    bad = SweepSpec.make("test-bad-runner", "T",
                         [scenario("no_such_runner", label="a")],
                         assembler="rows")
    with pytest.raises(KeyError, match="unknown runner"):
        run_sweep(bad)


def test_duplicate_labels_rejected():
    with pytest.raises(ValueError, match="duplicate scenario labels"):
        register_sweep(SweepSpec.make(
            "test-dupes", "T",
            [scenario("test_counting_pair", label="same", x=1),
             scenario("test_counting_pair", label="same", x=2)],
            assembler="rows"))


def test_runner_must_return_dict():
    @runner("test_returns_list")
    def _bad(params):
        return [1, 2]

    sweep = SweepSpec.make("test-bad-return", "T",
                           [scenario("test_returns_list", label="a")],
                           assembler="rows")
    try:
        with pytest.raises(TypeError, match="must return a dict"):
            run_sweep(sweep)
    finally:
        RUNNERS.pop("test_returns_list", None)


# ----------------------------------------------------------------------
# Parallel execution (spawned workers, real registered runners).
# ----------------------------------------------------------------------

@pytest.mark.slow
def test_parallel_report_byte_identical_to_serial():
    """Acceptance criterion: >= 2 workers, byte-identical sweep report."""
    sweep = fig9_sweep(((8192, 8192), (16384, 8192), (8192, 16384)),
                       name="test-f9-parallel")
    serial = run_sweep(sweep, workers=1)
    parallel = run_sweep(sweep, workers=2)
    assert parallel.executed == 3
    assert report_json(parallel.report()) == report_json(serial.report())


@pytest.mark.slow
def test_parallel_fills_store_like_serial(tmp_path):
    sweep = smoke_sweep(name="test-smoke-parallel")
    store = ResultStore(tmp_path)
    first = run_sweep(sweep, store=store, workers=2)
    assert first.executed == len(sweep.scenarios)
    rerun = run_sweep(sweep, store=store, workers=2)
    assert rerun.executed == 0
    assert rerun.cache_hits == len(sweep.scenarios)
    assert report_json(rerun.report()) == report_json(first.report())
