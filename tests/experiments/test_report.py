"""Sweep report / diff / baseline-comparison tests."""

import json

import pytest

from repro.experiments import (
    SweepSpec,
    compare_to_baseline,
    diff_reports,
    load_report,
    render_report,
    report_json,
    run_sweep,
    scenario,
)
from repro.experiments.report import REPORT_SCHEMA, _numeric_leaves
from repro.experiments.registry import runner

RESULTS = {}


@runner("test_report_pair")
def _report_pair(params):
    fused, baseline = RESULTS[params["x"]]
    return {"fused_time": fused, "baseline_time": baseline}


def _sweep(xs=(1, 2), name="test-report"):
    return SweepSpec.make(
        name, "Report",
        [scenario("test_report_pair", label=f"x={x}", x=x) for x in xs],
        assembler="rows", figure="Report", description="report test sweep")


def _run(xs=(1, 2), values=None):
    RESULTS.clear()
    RESULTS.update(values or {x: (1.0 * x, 2.0 * x) for x in xs})
    return run_sweep(_sweep(xs)).report()


def test_report_shape_and_stability():
    report = _run()
    assert report["schema"] == REPORT_SCHEMA
    assert report["sweep"] == "test-report"
    assert [s["label"] for s in report["scenarios"]] == ["x=1", "x=2"]
    assert report["figure"]["schema"] == "repro.bench.figure/v1"
    # No volatile fields anywhere: serializing twice is byte-identical,
    # and a re-run of the same physics produces the same bytes.
    assert report_json(report) == report_json(_run())
    # Stable serialization ends with a newline and parses back.
    text = report_json(report)
    assert text.endswith("\n")
    assert json.loads(text) == report


def test_render_report_is_figure_table():
    out = render_report(_run())
    assert "Report" in out and "x=1" in out and "normalized" in out


def test_load_report_rejects_foreign_json(tmp_path):
    path = tmp_path / "x.json"
    path.write_text(json.dumps({"schema": "something/else"}))
    with pytest.raises(ValueError, match="not a sweep report"):
        load_report(path)
    path.write_text(report_json(_run()))
    assert load_report(path)["sweep"] == "test-report"


def test_diff_identical_reports_ok():
    diff = diff_reports(_run(), _run())
    assert diff.ok
    assert "reports match" in diff.render()


def test_diff_detects_metric_change():
    old = _run()
    new = _run(values={1: (1.0, 2.0), 2: (2.5, 4.0)})
    diff = diff_reports(old, new)
    assert not diff.ok
    assert [c.metric for c in diff.changed] == ["fused_time"]
    change = diff.changed[0]
    assert change.label == "x=2"
    assert change.old == 2.0 and change.new == 2.5
    assert change.rel_delta == pytest.approx(0.25)
    assert "x=2" in diff.render()


def test_diff_rtol_tolerates_small_drift():
    old = _run()
    new = _run(values={1: (1.0, 2.0), 2: (2.0 * 1.0001, 4.0)})
    assert not diff_reports(old, new).ok
    assert diff_reports(old, new, rtol=1e-3).ok


def test_diff_added_and_removed_scenarios():
    old = _run(xs=(1, 2))
    new = _run(xs=(2, 3))
    diff = diff_reports(old, new)
    assert diff.added == ["x=3"]
    assert diff.removed == ["x=1"]
    assert not diff.ok


def test_compare_to_baseline_from_path(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(report_json(_run()))
    RESULTS.update({2: (2.2, 4.0)})
    run = run_sweep(_sweep())
    diff = compare_to_baseline(run, baseline_path)
    assert not diff.ok
    assert diff.changed[0].label == "x=2"
    # An unchanged run matches its own baseline.
    assert compare_to_baseline(_run(), baseline_path.parent
                               / "baseline.json").ok


def test_numeric_leaves_flattening():
    leaves = _numeric_leaves({"a": 1, "b": {"c": 2.5}, "d": [1, {"e": 3}],
                              "s": "text", "t": True})
    assert leaves == {"a": 1.0, "b.c": 2.5, "d[0]": 1.0, "d[1].e": 3.0}
